file(REMOVE_RECURSE
  "CMakeFiles/test_optim_hylo.dir/test_optim_hylo.cpp.o"
  "CMakeFiles/test_optim_hylo.dir/test_optim_hylo.cpp.o.d"
  "test_optim_hylo"
  "test_optim_hylo.pdb"
  "test_optim_hylo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optim_hylo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
