# Empty compiler generated dependencies file for test_optim_hylo.
# This may be replaced when dependencies are built.
