# Empty compiler generated dependencies file for test_optim_kfac.
# This may be replaced when dependencies are built.
