file(REMOVE_RECURSE
  "CMakeFiles/test_optim_kfac.dir/test_optim_kfac.cpp.o"
  "CMakeFiles/test_optim_kfac.dir/test_optim_kfac.cpp.o.d"
  "test_optim_kfac"
  "test_optim_kfac.pdb"
  "test_optim_kfac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optim_kfac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
