# Empty dependencies file for test_optim_sngd.
# This may be replaced when dependencies are built.
