file(REMOVE_RECURSE
  "CMakeFiles/test_optim_sngd.dir/test_optim_sngd.cpp.o"
  "CMakeFiles/test_optim_sngd.dir/test_optim_sngd.cpp.o.d"
  "test_optim_sngd"
  "test_optim_sngd.pdb"
  "test_optim_sngd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optim_sngd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
