# Empty dependencies file for test_optim_first_order.
# This may be replaced when dependencies are built.
