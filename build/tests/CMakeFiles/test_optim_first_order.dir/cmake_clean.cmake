file(REMOVE_RECURSE
  "CMakeFiles/test_optim_first_order.dir/test_optim_first_order.cpp.o"
  "CMakeFiles/test_optim_first_order.dir/test_optim_first_order.cpp.o.d"
  "test_optim_first_order"
  "test_optim_first_order.pdb"
  "test_optim_first_order[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optim_first_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
