file(REMOVE_RECURSE
  "CMakeFiles/test_sngd_cnn.dir/test_sngd_cnn.cpp.o"
  "CMakeFiles/test_sngd_cnn.dir/test_sngd_cnn.cpp.o.d"
  "test_sngd_cnn"
  "test_sngd_cnn.pdb"
  "test_sngd_cnn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sngd_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
