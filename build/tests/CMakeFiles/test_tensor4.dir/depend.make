# Empty dependencies file for test_tensor4.
# This may be replaced when dependencies are built.
