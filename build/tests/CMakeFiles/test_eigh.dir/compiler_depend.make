# Empty compiler generated dependencies file for test_eigh.
# This may be replaced when dependencies are built.
