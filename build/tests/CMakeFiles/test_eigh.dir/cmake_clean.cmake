file(REMOVE_RECURSE
  "CMakeFiles/test_eigh.dir/test_eigh.cpp.o"
  "CMakeFiles/test_eigh.dir/test_eigh.cpp.o.d"
  "test_eigh"
  "test_eigh.pdb"
  "test_eigh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eigh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
