# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_tensor4[1]_include.cmake")
include("/root/repo/build/tests/test_cholesky[1]_include.cmake")
include("/root/repo/build/tests/test_lu[1]_include.cmake")
include("/root/repo/build/tests/test_eigh[1]_include.cmake")
include("/root/repo/build/tests/test_qr[1]_include.cmake")
include("/root/repo/build/tests/test_id[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_nn_layers[1]_include.cmake")
include("/root/repo/build/tests/test_loss[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_datasets[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_optim_sngd[1]_include.cmake")
include("/root/repo/build/tests/test_optim_hylo[1]_include.cmake")
include("/root/repo/build/tests/test_optim_kfac[1]_include.cmake")
include("/root/repo/build/tests/test_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_optim_first_order[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_sngd_cnn[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
