# Empty dependencies file for bench_tab1_complexity.
# This may be replaced when dependencies are built.
