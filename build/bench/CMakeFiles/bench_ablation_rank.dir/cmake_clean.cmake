file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rank.dir/bench_ablation_rank.cpp.o"
  "CMakeFiles/bench_ablation_rank.dir/bench_ablation_rank.cpp.o.d"
  "bench_ablation_rank"
  "bench_ablation_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
