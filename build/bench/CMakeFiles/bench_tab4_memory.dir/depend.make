# Empty dependencies file for bench_tab4_memory.
# This may be replaced when dependencies are built.
