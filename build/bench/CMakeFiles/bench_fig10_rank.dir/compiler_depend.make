# Empty compiler generated dependencies file for bench_fig10_rank.
# This may be replaced when dependencies are built.
