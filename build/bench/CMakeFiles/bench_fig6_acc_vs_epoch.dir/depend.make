# Empty dependencies file for bench_fig6_acc_vs_epoch.
# This may be replaced when dependencies are built.
