file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_layer_dims.dir/bench_fig2_layer_dims.cpp.o"
  "CMakeFiles/bench_fig2_layer_dims.dir/bench_fig2_layer_dims.cpp.o.d"
  "bench_fig2_layer_dims"
  "bench_fig2_layer_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_layer_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
