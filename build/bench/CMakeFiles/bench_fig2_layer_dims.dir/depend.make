# Empty dependencies file for bench_fig2_layer_dims.
# This may be replaced when dependencies are built.
