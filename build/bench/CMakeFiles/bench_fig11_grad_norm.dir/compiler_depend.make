# Empty compiler generated dependencies file for bench_fig11_grad_norm.
# This may be replaced when dependencies are built.
