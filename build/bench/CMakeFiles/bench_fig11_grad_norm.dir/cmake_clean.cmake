file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_grad_norm.dir/bench_fig11_grad_norm.cpp.o"
  "CMakeFiles/bench_fig11_grad_norm.dir/bench_fig11_grad_norm.cpp.o.d"
  "bench_fig11_grad_norm"
  "bench_fig11_grad_norm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_grad_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
