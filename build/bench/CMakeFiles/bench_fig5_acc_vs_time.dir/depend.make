# Empty dependencies file for bench_fig5_acc_vs_time.
# This may be replaced when dependencies are built.
