file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_acc_vs_time.dir/bench_fig5_acc_vs_time.cpp.o"
  "CMakeFiles/bench_fig5_acc_vs_time.dir/bench_fig5_acc_vs_time.cpp.o.d"
  "bench_fig5_acc_vs_time"
  "bench_fig5_acc_vs_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_acc_vs_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
