file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_switching.dir/bench_tab3_switching.cpp.o"
  "CMakeFiles/bench_tab3_switching.dir/bench_tab3_switching.cpp.o.d"
  "bench_tab3_switching"
  "bench_tab3_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
