
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/check.cpp" "src/CMakeFiles/hylo.dir/common/check.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/common/check.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/CMakeFiles/hylo.dir/common/csv.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/common/csv.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/hylo.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/common/rng.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/hylo.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/core/trainer.cpp.o.d"
  "/root/repo/src/data/datasets.cpp" "src/CMakeFiles/hylo.dir/data/datasets.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/data/datasets.cpp.o.d"
  "/root/repo/src/dist/comm.cpp" "src/CMakeFiles/hylo.dir/dist/comm.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/dist/comm.cpp.o.d"
  "/root/repo/src/dist/cost_model.cpp" "src/CMakeFiles/hylo.dir/dist/cost_model.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/dist/cost_model.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/CMakeFiles/hylo.dir/linalg/cholesky.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/linalg/cholesky.cpp.o.d"
  "/root/repo/src/linalg/eigh.cpp" "src/CMakeFiles/hylo.dir/linalg/eigh.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/linalg/eigh.cpp.o.d"
  "/root/repo/src/linalg/id.cpp" "src/CMakeFiles/hylo.dir/linalg/id.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/linalg/id.cpp.o.d"
  "/root/repo/src/linalg/kernels.cpp" "src/CMakeFiles/hylo.dir/linalg/kernels.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/linalg/kernels.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/CMakeFiles/hylo.dir/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/linalg/lu.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/CMakeFiles/hylo.dir/linalg/qr.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/linalg/qr.cpp.o.d"
  "/root/repo/src/models/zoo.cpp" "src/CMakeFiles/hylo.dir/models/zoo.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/models/zoo.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/CMakeFiles/hylo.dir/nn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/CMakeFiles/hylo.dir/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/layers_basic.cpp" "src/CMakeFiles/hylo.dir/nn/layers_basic.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/nn/layers_basic.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/hylo.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/hylo.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/CMakeFiles/hylo.dir/nn/network.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/nn/network.cpp.o.d"
  "/root/repo/src/optim/hylo_optimizer.cpp" "src/CMakeFiles/hylo.dir/optim/hylo_optimizer.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/optim/hylo_optimizer.cpp.o.d"
  "/root/repo/src/optim/kfac.cpp" "src/CMakeFiles/hylo.dir/optim/kfac.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/optim/kfac.cpp.o.d"
  "/root/repo/src/optim/optimizer.cpp" "src/CMakeFiles/hylo.dir/optim/optimizer.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/optim/optimizer.cpp.o.d"
  "/root/repo/src/optim/second_order.cpp" "src/CMakeFiles/hylo.dir/optim/second_order.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/optim/second_order.cpp.o.d"
  "/root/repo/src/optim/sngd.cpp" "src/CMakeFiles/hylo.dir/optim/sngd.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/optim/sngd.cpp.o.d"
  "/root/repo/src/tensor/matrix.cpp" "src/CMakeFiles/hylo.dir/tensor/matrix.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/tensor/matrix.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/hylo.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/tensor4.cpp" "src/CMakeFiles/hylo.dir/tensor/tensor4.cpp.o" "gcc" "src/CMakeFiles/hylo.dir/tensor/tensor4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
