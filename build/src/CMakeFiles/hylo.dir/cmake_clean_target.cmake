file(REMOVE_RECURSE
  "libhylo.a"
)
