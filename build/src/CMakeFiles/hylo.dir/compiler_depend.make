# Empty compiler generated dependencies file for hylo.
# This may be replaced when dependencies are built.
