# Empty compiler generated dependencies file for segmentation_unet.
# This may be replaced when dependencies are built.
