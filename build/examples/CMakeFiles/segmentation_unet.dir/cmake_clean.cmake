file(REMOVE_RECURSE
  "CMakeFiles/segmentation_unet.dir/segmentation_unet.cpp.o"
  "CMakeFiles/segmentation_unet.dir/segmentation_unet.cpp.o.d"
  "segmentation_unet"
  "segmentation_unet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmentation_unet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
