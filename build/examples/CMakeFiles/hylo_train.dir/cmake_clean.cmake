file(REMOVE_RECURSE
  "CMakeFiles/hylo_train.dir/hylo_train.cpp.o"
  "CMakeFiles/hylo_train.dir/hylo_train.cpp.o.d"
  "hylo_train"
  "hylo_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hylo_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
