# Empty dependencies file for hylo_train.
# This may be replaced when dependencies are built.
