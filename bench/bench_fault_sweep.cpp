// Ablation: training under deterministic fault injection. Sweeps the
// per-collective fault rate (and a rank_down-heavy mix) on the same seeded
// workload and reports what degradation costs: accuracy under stale
// curvature, modeled comm overhead from retries/backoff, and the
// comm/faults/* + stale-refresh counts. The run must *complete* at every
// rate — unrecoverable curvature collectives degrade to stale factors, they
// never abort training.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

struct SweepPoint {
  std::string label;
  std::string spec;  // HYLO_FAULTS-style seed:rate[:mix]; "" = faults off
};

struct SweepResult {
  real_t best_metric = 0.0;
  double comm_s = 0.0;
  std::int64_t injected = 0, unrecoverable = 0, stale = 0;
};

SweepResult run_point(const SweepPoint& point, index_t world) {
  const std::uint64_t seed = 42;
  DataSplit data = make_spirals(1536, 384, 3, 0.05, seed);
  Network net = make_mlp({2, 1, 1}, {64, 64}, 3, seed);

  OptimConfig oc = method_config("HyLo");
  HyloOptimizer opt(oc);

  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.world = world;
  tc.interconnect = mist_v100();
  tc.data_seed = seed;
  // Pin the schedule explicitly: an empty spec yields a disabled config, so
  // the baseline row ignores any ambient HYLO_FAULTS.
  tc.faults = point.spec.empty() ? FaultConfig{} : FaultConfig::parse(point.spec);
  apply_env_telemetry(tc, "fault_sweep_" + point.label);

  Trainer trainer(net, opt, data, tc);
  const TrainResult res = trainer.run();

  SweepResult out;
  out.best_metric = res.best_metric();
  out.comm_s = res.comm_seconds;
  auto& reg = trainer.comm().profiler().registry();
  out.injected = reg.counter_value("comm/faults/injected");
  out.unrecoverable = reg.counter_value("comm/faults/unrecoverable");
  for (const auto& [name, c] : reg.counters())
    if (name.rfind("optim/", 0) == 0 &&
        name.find("/stale_refreshes") != std::string::npos)
      out.stale += c.value();
  return out;
}

}  // namespace

int main() {
  const index_t world = 8;
  std::cout << "Ablation — fault injection sweep (HyLo, MLP/spirals, P="
            << world << ", seed 42)\n\n";
  const std::vector<SweepPoint> points = {
      {"clean", ""},
      {"rate05", "7:0.05"},
      {"rate10", "7:0.10"},
      {"rate20", "7:0.20"},
      {"gather_loss", "7:0.15:rank_down=1"},
  };
  CsvWriter table({"label", "spec", "best_metric", "comm_s", "injected",
                   "unrecoverable", "stale_refreshes"});
  for (const auto& p : points) {
    const SweepResult r = run_point(p, world);
    table.add(p.label, p.spec.empty() ? "off" : p.spec, r.best_metric,
              r.comm_s, static_cast<double>(r.injected),
              static_cast<double>(r.unrecoverable),
              static_cast<double>(r.stale));
  }
  table.print_table();
  table.write_file("ablation_faults.csv");
  std::cout << "\nExpected: accuracy degrades gracefully as the rate grows "
               "(stale factors still precondition better than plain SGD), "
               "comm seconds inflate with retry/backoff charges, and the "
               "rank_down-only mix shows unrecoverable gathers converting "
               "into stale refreshes rather than aborts.\n";
  return 0;
}
