// Checkpoint overhead: RunSnapshot size and write/restore cost vs cadence
// for the ResNet-32 proxy under the HyLo optimizer. For every cadence in
// {off, 8, 2, 1} the same schedule runs with snapshots at that cadence;
// each run's wall time, snapshot count and bytes-on-disk are recorded, and
// its final weights are checked bitwise against the snapshot-free baseline
// (checkpointing must be a pure observer of training). A final section
// resumes from the last snapshot of the every=1 run, times the restore,
// and checks the resumed weights match the baseline bitwise. Writes
// BENCH_ckpt.json for the repo record.
//
// Geometry: HYLO_BENCH_SCALE=large quadruples the iterations per epoch.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace fs = std::filesystem;

namespace {

struct RunOut {
  double wall_seconds = 0.0;
  std::vector<real_t> weights;
  TrainResult result;
};

std::vector<real_t> flat_weights(Network& net) {
  std::vector<real_t> out;
  for (auto* pb : net.param_blocks())
    out.insert(out.end(), pb->w.data(), pb->w.data() + pb->w.size());
  for (auto pp : net.plain_params())
    out.insert(out.end(), pp.value->begin(), pp.value->end());
  return out;
}

bool bitwise_equal(const std::vector<real_t>& x, const std::vector<real_t>& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i)
    if (x[i] != y[i]) return false;
  return true;
}

std::uintmax_t dir_bytes(const fs::path& dir, index_t* files) {
  std::uintmax_t total = 0;
  *files = 0;
  if (fs::exists(dir))
    for (const auto& e : fs::directory_iterator(dir))
      if (e.is_regular_file()) {
        total += e.file_size();
        ++*files;
      }
  return total;
}

}  // namespace

int main() {
  const Workload w = make_workload("resnet32");
  const index_t iters = large_scale() ? 48 : 12;
  const fs::path root = fs::temp_directory_path() / "hylo_bench_ckpt";
  fs::remove_all(root);

  auto config_for = [&](index_t every, const fs::path& dir) {
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 8;
    tc.world = 4;
    tc.interconnect = mist_v100();
    tc.max_iters_per_epoch = iters;
    tc.faults = FaultConfig{};  // pin ambient HYLO_FAULTS off: runs compare bitwise
    tc.checkpoint.dir = dir.string();  // non-empty dir pins ambient HYLO_CKPT_* off
    tc.checkpoint.every = every;
    tc.checkpoint.keep = 1 << 20;  // retain everything: we count bytes per cadence
    return tc;
  };

  auto run_at = [&](index_t every, const fs::path& dir) {
    Network net = w.make_model();
    OptimConfig oc = method_config("HyLo");
    auto opt = make_optimizer("HyLo", oc);
    TrainConfig tc = config_for(every, dir);
    Trainer trainer(net, *opt, w.data, tc);
    RunOut out;
    WallTimer timer;
    out.result = trainer.run();
    out.wall_seconds = timer.seconds();
    out.weights = flat_weights(net);
    return out;
  };

  std::cout << "Checkpoint overhead — " << w.paper_name << " proxy ("
            << w.proxy_desc << "), HyLo, P=4, 2 epochs x " << iters
            << " iters\n\n";

  const fs::path off_dir = root / "off";
  const RunOut base = run_at(0, off_dir);
  std::cout << "  cadence off: " << base.wall_seconds << " s (baseline)\n";

  CsvWriter table({"every", "snapshots", "bytes_per_snapshot", "wall_seconds",
                   "overhead_vs_off", "write_cost_per_snapshot_s",
                   "bitwise_vs_off"});
  obs::Json rows = obs::Json::array();
  fs::path last_snapshot;
  bool all_bitwise = true;
  for (const index_t every : {index_t{8}, index_t{2}, index_t{1}}) {
    const fs::path dir = root / ("every" + std::to_string(every));
    const RunOut out = run_at(every, dir);
    index_t files = 0;
    const std::uintmax_t bytes = dir_bytes(dir, &files);
    const bool bitwise = bitwise_equal(out.weights, base.weights);
    all_bitwise = all_bitwise && bitwise;
    const double overhead = out.wall_seconds / base.wall_seconds;
    const double per_snap =
        files > 0 ? (out.wall_seconds - base.wall_seconds) / files : 0.0;
    table.add(every, files, files > 0 ? bytes / files : 0, out.wall_seconds,
              overhead, per_snap, bitwise ? "yes" : "NO");
    obs::Json row = obs::Json::object();
    row.set("every", every);
    row.set("snapshots", files);
    row.set("bytes_per_snapshot",
            static_cast<std::int64_t>(files > 0 ? bytes / files : 0));
    row.set("total_bytes", static_cast<std::int64_t>(bytes));
    row.set("wall_seconds", out.wall_seconds);
    row.set("overhead_vs_off_x", overhead);
    row.set("write_cost_per_snapshot_seconds", per_snap);
    row.set("bitwise_final_weights", bitwise);
    rows.push(std::move(row));
    if (every == 1) {
      const auto snaps = ckpt::list_snapshots(dir.string());
      HYLO_CHECK(!snaps.empty(), "every=1 run wrote no snapshots");
      last_snapshot = snaps.back();
    }
  }
  table.print_table();

  // Restore cost: resume from the very last snapshot of the every=1 run.
  // That snapshot sits on the final iteration boundary, so the resumed run
  // only replays the epoch tail — the wall time is dominated by restore.
  Network net = w.make_model();
  OptimConfig oc = method_config("HyLo");
  auto opt = make_optimizer("HyLo", oc);
  TrainConfig tc = config_for(0, root / "resume");
  Trainer trainer(net, *opt, w.data, tc);
  WallTimer timer;
  trainer.resume(last_snapshot.string());
  const double restore_wall = timer.seconds();
  const bool resume_bitwise = bitwise_equal(flat_weights(net), base.weights);
  all_bitwise = all_bitwise && resume_bitwise;
  std::cout << "\n  restore+tail from " << last_snapshot.filename().string()
            << ": " << restore_wall << " s, weights bitwise vs baseline: "
            << (resume_bitwise ? "yes" : "NO") << "\n";

  obs::Json restore = obs::Json::object();
  restore.set("snapshot", last_snapshot.filename().string());
  restore.set("restore_wall_seconds", restore_wall);
  restore.set("bitwise_final_weights", resume_bitwise);

  obs::Json doc = obs::Json::object();
  doc.set("bench", "ckpt_overhead");
  doc.set("workload", w.paper_name);
  doc.set("proxy", w.proxy_desc);
  doc.set("world", 4);
  doc.set("epochs", 2);
  doc.set("iters_per_epoch", iters);
  doc.set("baseline_wall_seconds", base.wall_seconds);
  doc.set("cadences", std::move(rows));
  doc.set("restore", std::move(restore));
  std::ofstream out("BENCH_ckpt.json");
  doc.dump(out);
  out << "\n";
  std::cout << "wrote BENCH_ckpt.json\n";

  fs::remove_all(root);
  if (!all_bitwise) {
    std::cerr << "bitwise mismatch: checkpointing perturbed training\n";
    return 1;
  }
  return 0;
}
