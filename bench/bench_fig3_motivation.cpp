// Fig. 3 reproduction: computation + communication time of KFAC, standard
// SNGD and HyLo on ResNet-50-shaped layers for the iterations that refresh
// second-order information, as the worker count grows 8 -> 64.
//
// Geometry: representative ResNet-50 layer dimensions (scaled 1/4 so a
// single CPU core can execute the KFAC inversions), local batch m per
// worker. Compute is measured and divided by P (each stage is either
// distributed over workers or over layers); communication is charged by the
// α-β model. The paper's claims are about the *growth* (KFAC flat-but-high
// in d, SNGD blowing up with P·m, HyLo low and flat), which survives the
// scaling.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

// Representative scaled ResNet-50 layer dims: (d_in, d_out).
std::vector<std::pair<index_t, index_t>> layer_dims_scaled() {
  const auto ref = reference_layer_dims("ResNet-50");
  // Take a spread of 6 layers from small to the largest, scale 1/4.
  std::vector<std::pair<index_t, index_t>> picked;
  for (const std::size_t idx : {0ul, 10ul, 20ul, 30ul, 40ul, ref.size() - 2}) {
    const auto& ld = ref[idx];
    picked.push_back({std::max<index_t>(16, ld.d_in / 4),
                      std::max<index_t>(16, ld.d_out / 4)});
  }
  return picked;
}

struct StageTimes {
  double comp_ms = 0.0;
  double comm_ms = 0.0;
  double total() const { return comp_ms + comm_ms; }
};

StageTimes run_refresh(const std::string& method, index_t world, index_t m) {
  const auto dims = layer_dims_scaled();
  Rng rng(1234 + world);
  CommSim comm(world, mist_v100());

  OptimConfig cfg = method_config(method == "KFAC" ? "KFAC" : method);
  std::unique_ptr<Optimizer> opt;
  if (method == "HyLo") {
    auto hylo = std::make_unique<HyloOptimizer>(cfg);
    hylo->set_policy(HyloOptimizer::Policy::kAlwaysKis);
    hylo->begin_epoch(0, false);
    opt = std::move(hylo);
  } else {
    opt = make_optimizer(method, cfg);
  }

  // One ParamBlock stand-in per layer.
  std::vector<ParamBlock> blocks(dims.size());
  std::vector<ParamBlock*> block_ptrs;
  CaptureSet cap;
  cap.a.resize(dims.size());
  cap.g.resize(dims.size());
  for (std::size_t l = 0; l < dims.size(); ++l) {
    block_ptrs.push_back(&blocks[l]);
    for (index_t r = 0; r < world; ++r) {
      CaptureSet one = synth_capture(rng, 1, 1, m, dims[l].first,
                                     dims[l].second, /*latent_rank=*/4);
      cap.a[l].push_back(std::move(one.a[0][0]));
      cap.g[l].push_back(std::move(one.g[0][0]));
    }
  }

  opt->update_curvature(block_ptrs, cap, &comm);
  const auto& prof = comm.profiler();
  StageTimes t;
  const double inv_wall =
      std::max(prof.seconds("comp/inversion") / static_cast<double>(world),
               prof.seconds("comp/inversion_critical"));
  t.comp_ms = (prof.seconds("comp/factorization") / static_cast<double>(world) +
               inv_wall) *
              1e3;
  t.comm_ms = comm.comm_seconds() * 1e3;
  return t;
}

}  // namespace

int main() {
  const index_t m = 16;  // local batch per worker
  std::cout << "Fig. 3 — second-order refresh cost on ResNet-50-shaped "
               "layers (scaled 1/4), local batch m=" << m << "\n\n";
  CsvWriter table({"P", "method", "comp_ms", "comm_ms", "total_ms"});
  std::vector<index_t> worlds = {8, 16, 32, 64};
  double kfac64 = 0, sngd64 = 0, hylo64 = 0;
  for (const index_t p : worlds) {
    for (const std::string method : {"KFAC", "SNGD", "HyLo"}) {
      const StageTimes t = run_refresh(method, p, m);
      table.add(p, method, t.comp_ms, t.comm_ms, t.total());
      if (p == 64) {
        if (method == "KFAC") kfac64 = t.total();
        if (method == "SNGD") sngd64 = t.total();
        if (method == "HyLo") hylo64 = t.total();
      }
    }
  }
  table.print_table();
  table.write_file("fig3_motivation.csv");

  std::cout << "\nAt P=64: HyLo reduces the refresh time "
            << kfac64 / hylo64 << "x vs KFAC and " << sngd64 / hylo64
            << "x vs standard SNGD (paper: 28x and 20x).\n"
            << "Shape checks: KFAC's cost is ~flat in P but high (O(d^3) "
               "inversion); SNGD's grows steeply with P (O(P^3 m^3)); HyLo "
               "stays low and flat.\n";
  return 0;
}
