// Ablation: HyLo's rank budget r (as a fraction of the global batch).
// Sweeps rank_ratio and reports accuracy, gradient error vs exact SNGD, and
// per-refresh curvature cost — the accuracy/cost trade-off behind the
// paper's choice of r = 10% (Sec. V-A) and the Fig. 8 r-sweep.
#include <iostream>

#include "bench_common.hpp"
#include "hylo/optim/sngd.hpp"

using namespace hylo;
using namespace hylo::bench;

int main() {
  const Workload w = make_workload("resnet32");
  const index_t epochs = large_scale() ? 12 : 6;

  std::cout << "Ablation — HyLo rank ratio on " << w.paper_name
            << " (P=4)\n\n";
  CsvWriter table({"rank_ratio", "best_acc", "sim_seconds",
                   "curvature_ms_per_refresh"});
  for (const real_t ratio : {0.05, 0.1, 0.25, 0.5}) {
    Network net = w.make_model();
    OptimConfig oc = method_config("HyLo");
    oc.rank_ratio = ratio;
    oc.update_freq = 5;
    HyloOptimizer opt(oc);
    TrainConfig tc;
    tc.epochs = epochs;
    tc.batch_size = 8;
    tc.world = 4;
    tc.interconnect = mist_v100();
    tc.max_iters_per_epoch = large_scale() ? -1 : 10;
    tc.lr_schedule = {{epochs * 2 / 3}, 0.1};
    apply_env_telemetry(tc, "ablation_rank/r" + std::to_string(ratio));
    Trainer trainer(net, opt, w.data, tc);
    const TrainResult res = trainer.run();
    const auto& prof = trainer.profiler();
    const double refreshes =
        static_cast<double>(std::max<std::int64_t>(1, prof.calls("comp/inversion")));
    const double curv_ms = (prof.seconds("comp/factorization") +
                            prof.seconds("comp/inversion")) /
                           refreshes * 1e3;
    table.add(ratio, res.best_metric(), res.total_seconds, curv_ms);
  }
  table.print_table();
  table.write_file("ablation_rank.csv");
  std::cout << "\nExpected: curvature cost grows with r; accuracy saturates "
               "near the kernel's numerical rank (Fig. 10), which is why "
               "the paper fixes r = 10% of the global batch.\n";
  return 0;
}
