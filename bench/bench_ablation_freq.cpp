// Ablation: curvature update frequency. All second-order methods in the
// paper refresh the Fisher approximation every `freq` iterations (KAISA's
// default protocol, scaled with P in Fig. 8). This sweep quantifies the
// accuracy/cost trade-off for HyLo on the ResNet-32 proxy.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

int main() {
  const Workload w = make_workload("resnet32");
  const index_t epochs = large_scale() ? 12 : 6;

  std::cout << "Ablation — curvature refresh period on " << w.paper_name
            << " (P=4)\n\n";
  CsvWriter table({"update_freq", "refreshes", "best_acc", "sim_seconds"});
  for (const index_t freq : {1, 5, 10, 20}) {
    Network net = w.make_model();
    OptimConfig oc = method_config("HyLo");
    oc.update_freq = freq;
    HyloOptimizer opt(oc);
    TrainConfig tc;
    tc.epochs = epochs;
    tc.batch_size = 8;
    tc.world = 4;
    tc.interconnect = mist_v100();
    tc.max_iters_per_epoch = large_scale() ? -1 : 10;
    tc.lr_schedule = {{epochs * 2 / 3}, 0.1};
    apply_env_telemetry(tc, "ablation_freq/f" + std::to_string(freq));
    Trainer trainer(net, opt, w.data, tc);
    const TrainResult res = trainer.run();
    table.add(freq, trainer.profiler().calls("comp/inversion"),
              res.best_metric(), res.total_seconds);
  }
  table.print_table();
  table.write_file("ablation_freq.csv");
  std::cout << "\nExpected: freq=1 pays maximal curvature cost for little "
               "extra accuracy; very sparse refreshes (20+) start to lag on "
               "the epochs right after LR changes — the same trade-off that "
               "motivates scaling freq with P in Fig. 8.\n";
  return 0;
}
