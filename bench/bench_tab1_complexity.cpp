// Table I reproduction: empirical validation of the per-stage computation
// and communication complexities of HyLo, KFAC and standard SNGD. Each
// stage is timed over a parameter sweep and the log-log slope is fitted;
// communication terms are validated against the α-β model's byte counts.
#include <iostream>

#include "bench_common.hpp"
#include "hylo/linalg/id.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

// Median-of-3 timing of a callable.
template <typename F>
double time_once(F&& f) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer t;
    f();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main() {
  Rng rng(7);
  CsvWriter table({"method", "stage", "theory", "swept", "fitted_exponent"});

  // --- KFAC inversion: O(d^3) over d -----------------------------------
  {
    std::vector<real_t> xs, ys;
    for (const index_t d : {64, 128, 256, 384}) {
      const Matrix c = gram_tn(synth_capture(rng, 1, 1, 32, d, 8, 4).a[0][0]);
      xs.push_back(static_cast<real_t>(d));
      ys.push_back(time_once([&] { damped_spd_inverse(c, 1e-3); }));
    }
    table.add("KFAC", "inversion", "O(d^3)", "d=64..384",
              loglog_slope(xs, ys));
  }

  // --- KFAC factorization: O(m d^2) over d ------------------------------
  {
    std::vector<real_t> xs, ys;
    const index_t m = 64;
    for (const index_t d : {128, 256, 512, 768}) {
      CaptureSet cap = synth_capture(rng, 1, 1, m, d, 8, 4);
      xs.push_back(static_cast<real_t>(d));
      ys.push_back(time_once([&] { gram_tn(cap.a[0][0]); }));
    }
    table.add("KFAC", "factorization", "O(m d^2)", "d=128..768",
              loglog_slope(xs, ys));
  }

  // --- SNGD inversion: O(P^3 m^3) over the global batch n = P m ---------
  {
    std::vector<real_t> xs, ys;
    for (const index_t n : {96, 192, 384, 576}) {
      CaptureSet cap = synth_capture(rng, 1, 1, n, 64, 64, 4);
      const Matrix k = kernel_matrix(cap.a[0][0], cap.g[0][0]);
      xs.push_back(static_cast<real_t>(n));
      ys.push_back(time_once([&] { damped_cholesky(k, 1e-2); }));
    }
    table.add("SNGD", "inversion", "O(P^3 m^3)", "Pm=96..576",
              loglog_slope(xs, ys));
  }

  // --- HyLo (KID) factorization: O(m^2 d + m^3) over m ------------------
  {
    std::vector<real_t> xs, ys;
    for (const index_t m : {48, 96, 192, 288}) {
      CaptureSet cap = synth_capture(rng, 1, 1, m, 64, 64, 4);
      const index_t r = std::max<index_t>(4, m / 10);
      xs.push_back(static_cast<real_t>(m));
      ys.push_back(time_once([&] {
        const Matrix q = kernel_matrix(cap.a[0][0], cap.g[0][0]);
        row_interpolative_decomposition(q, r);
      }));
    }
    table.add("HyLo/KID", "factorization", "O(m^2 d + m^3)", "m=48..288",
              loglog_slope(xs, ys));
  }

  // --- HyLo inversion: O(r^3 + r^2 d) over r -----------------------------
  {
    std::vector<real_t> xs, ys;
    const index_t d = 128;
    for (const index_t r : {32, 64, 128, 192}) {
      CaptureSet cap = synth_capture(rng, 1, 1, r, d, d, 4);
      xs.push_back(static_cast<real_t>(r));
      ys.push_back(time_once([&] {
        const Matrix k = kernel_matrix(cap.a[0][0], cap.g[0][0]);
        damped_cholesky(k, 1e-2);
      }));
    }
    table.add("HyLo", "inversion", "O(r^3 + r^2 d)", "r=32..192",
              loglog_slope(xs, ys));
  }

  // --- Communication volumes (modeled bytes, exact by construction) -----
  {
    // HyLo gather is O(ρ d) per worker vs SNGD's O(m d) raw rows and
    // KFAC's O(d^2) factors; broadcast O(r^2) vs O(P^2 m^2) vs O(d^2).
    const index_t P = 16, m = 64, d = 512;
    const index_t r = static_cast<index_t>(0.1 * static_cast<real_t>(P * m));
    const index_t rho = r / P;
    const auto model = mist_v100();
    const double hylo_gather = allgather_seconds(model, P, rho * d * 4);
    const double sngd_gather = allgather_seconds(model, P, m * d * 4);
    const double kfac_gather = allreduce_seconds(model, P, d * d * 4);
    const double hylo_bcast = broadcast_seconds(model, P, r * r * 4);
    const double sngd_bcast = broadcast_seconds(model, P, P * m * P * m * 4);
    const double kfac_bcast = broadcast_seconds(model, P, d * d * 4);
    table.add("HyLo", "gather(model)", "O(rho d)", "P=16,m=64,d=512",
              hylo_gather * 1e6);
    table.add("SNGD", "gather(model)", "O(m d)", "(usec)", sngd_gather * 1e6);
    table.add("KFAC", "gather(model)", "O(d^2)", "(usec)", kfac_gather * 1e6);
    table.add("HyLo", "broadcast(model)", "O(r^2)", "(usec)", hylo_bcast * 1e6);
    table.add("SNGD", "broadcast(model)", "O(P^2 m^2)", "(usec)",
              sngd_bcast * 1e6);
    table.add("KFAC", "broadcast(model)", "O(d^2)", "(usec)", kfac_bcast * 1e6);
  }

  std::cout << "Table I — empirical complexity validation (fitted log-log "
               "exponents for compute stages; modeled usec for comm)\n\n";
  table.print_table();
  table.write_file("tab1_complexity.csv");
  std::cout << "\nExpected exponents: KFAC inversion ~3 in d, factorization "
               "~2 in d; SNGD inversion ~3 in Pm; KID factorization ~2-3 in "
               "m; HyLo inversion ~2-3 in r. Comm rows show HyLo's modeled "
               "volumes are the smallest of the three methods.\n";
  return 0;
}
