// Compute/comm overlap: what the event-timeline simulator (DESIGN.md §15)
// buys over lockstep execution. Both modes replay the same KAISA-style
// iteration stream — modeled fwd/bwd compute, a gradient allreduce every
// step, and a curvature refresh (factor allgather + inverse broadcast)
// every F steps — against the same α-β interconnect. Lockstep serializes
// refresh traffic into the step; the async timeline issues it nonblocking
// at the refresh boundary, so it drains behind the next iterations'
// compute and only the horizon pays for what failed to overlap. The gap
// widens with P: factor gathers grow as (P-1)·Σ bytes while the per-step
// compute window is fixed, exactly the regime (P >= 64) where KAISA's
// refreshes start dominating the step.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

struct Shape {
  index_t params;          // network parameters (grad allreduce payload)
  index_t factor_scalars;  // per-rank curvature payload per refresh
  index_t inverse_scalars; // broadcast payload per refresh
  index_t batch;           // per-worker local batch
};

// ResNet-32-like proxy at paper scale: ~0.5M params, a few hundred KB of
// Kronecker factors per refresh.
Shape paper_shape() {
  Shape s;
  s.params = 460'000;
  s.factor_scalars = 180'000;
  s.inverse_scalars = 180'000;
  s.batch = 32;
  return s;
}

struct StepTimes {
  double sync_ms = 0.0;
  double async_ms = 0.0;
};

StepTimes modeled_step(index_t world, index_t iters, index_t refresh_freq) {
  const Shape sh = paper_shape();
  const ComputeModel dev = v100_fp32();
  const double comp_s = compute_seconds(dev, train_step_flops(sh.params,
                                                              sh.batch));
  const InterconnectModel net = mist_v100();

  StepTimes out;
  {
    // Lockstep: every collective lands inside its own step.
    CommSim comm(world, net);
    for (index_t i = 0; i < iters; ++i) {
      comm.charge_allreduce(comm.wire_bytes(sh.params),
                            "comm/grad_allreduce");
      if (i % refresh_freq == 0) {
        comm.charge_allgather(comm.wire_bytes(sh.factor_scalars),
                              "comm/gather");
        comm.charge_broadcast(comm.wire_bytes(sh.inverse_scalars),
                              "comm/broadcast");
      }
    }
    const double total = static_cast<double>(iters) * comp_s +
                         comm.comm_seconds();
    out.sync_ms = total / static_cast<double>(iters) * 1e3;
  }
  {
    // Event timeline: the same stream, refresh traffic issued nonblocking.
    CommSim comm(world, net);
    comm.set_mode(CommMode::kAsync);
    EventTimeline* tl = comm.timeline();
    const std::vector<index_t> per_rank(
        static_cast<std::size_t>(world),
        comm.wire_bytes((sh.factor_scalars + world - 1) / world));
    for (index_t i = 0; i < iters; ++i) {
      for (index_t r = 0; r < world; ++r) tl->advance(r, comp_s);
      // The gradient allreduce stays blocking (the update needs it).
      comm.charge_allreduce(comm.wire_bytes(sh.params),
                            "comm/grad_allreduce");
      if (i % refresh_freq == 0) {
        const CommEvent g =
            comm.icharge_allgather(per_rank, "comm/gather", tl->max_clock());
        comm.icharge_broadcast(comm.wire_bytes(sh.inverse_scalars),
                               "comm/broadcast", g.ready_s);
      }
    }
    out.async_ms = tl->horizon() / static_cast<double>(iters) * 1e3;
  }
  return out;
}

}  // namespace

int main() {
  const index_t iters = large_scale() ? 400 : 60;
  const index_t refresh_freq = 5;
  std::cout << "Compute/comm overlap — lockstep vs event-timeline modeled "
               "step time (KAISA-style refresh every " << refresh_freq
            << " iters, " << iters << " iters)\n\n";
  CsvWriter table({"world", "sync_step_ms", "async_step_ms", "speedup"});
  for (index_t world : {8, 16, 32, 64, 128, 256}) {
    const StepTimes t = modeled_step(world, iters, refresh_freq);
    table.add(world, t.sync_ms, t.async_ms, t.sync_ms / t.async_ms);
  }
  table.print_table();
  table.write_file("comm_overlap.csv");
  std::cout << "\nExpected: near parity at small P (refresh traffic fits "
               "the compute shadow with room to spare either way) and a "
               "widening async win from P >= 64, where lockstep serializes "
               "ever-larger factor gathers into every fifth step.\n";
  return 0;
}
