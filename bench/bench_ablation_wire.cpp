// Ablation: wire precision for second-order collectives. The paper's
// related work (Ueno et al. [7]) compresses K-FAC communication with a
// custom 21-bit float; this bench quantifies what that buys each method
// under our α-β model — and shows HyLo's O(r²) messages gain the least
// because they are already small (often latency-bound).
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

double refresh_comm_ms(const std::string& method, double wire_bytes,
                       index_t world) {
  Rng rng(42);
  CommSim comm(world, mist_v100());
  comm.set_wire_scalar_bytes(wire_bytes);
  OptimConfig cfg = method_config(method);
  std::unique_ptr<Optimizer> opt;
  if (method == "HyLo") {
    auto hy = std::make_unique<HyloOptimizer>(cfg);
    hy->set_policy(HyloOptimizer::Policy::kAlwaysKis);
    hy->begin_epoch(0, false);
    opt = std::move(hy);
  } else {
    opt = make_optimizer(method, cfg);
  }
  // One wide layer at paper-like shape: d=1024, m=16/worker.
  ParamBlock pb;
  CaptureSet cap = synth_capture(rng, 1, world, 16, 1024, 256, 4);
  opt->update_curvature({&pb}, cap, &comm);
  return comm.comm_seconds() * 1e3;
}

}  // namespace

int main() {
  const index_t world = 16;
  std::cout << "Ablation — wire precision for curvature collectives "
               "(d=1024 layer, m=16, P=" << world << ")\n\n";
  CsvWriter table({"method", "FP32_ms", "21bit_ms", "FP16_ms",
                   "FP32/FP16"});
  for (const std::string method : {"HyLo", "KFAC", "SNGD"}) {
    const double fp32 = refresh_comm_ms(method, 4.0, world);
    const double bits21 = refresh_comm_ms(method, 2.625, world);
    const double fp16 = refresh_comm_ms(method, 2.0, world);
    table.add(method, fp32, bits21, fp16, fp32 / fp16);
  }
  table.print_table();
  table.write_file("ablation_wire.csv");
  std::cout << "\nExpected: KFAC/SNGD shrink nearly 2x at FP16 (bandwidth-"
               "bound factors); HyLo gains less — its low-rank messages are "
               "already near the latency floor, so precision tricks matter "
               "least for it.\n";
  return 0;
}
