// Fig. 6 reproduction: multi-worker test accuracy vs *epoch* for ResNet-50,
// U-Net and ResNet-32 against KAISA, SGD and ADAM. Same runs as Fig. 5 but
// on the epoch axis — the paper's claim here is per-epoch convergence
// quality: HyLo matches or beats KAISA per epoch and clearly beats SGD/ADAM.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

int main() {
  struct Setup {
    std::string workload;
    index_t world;
  };
  const bool big = large_scale();
  const index_t epochs = big ? 12 : 5;
  const std::vector<Setup> setups = {
      {"resnet50", 8}, {"unet", 4}, {"resnet32", 8}};

  for (const auto& setup : setups) {
    const Workload w = make_workload(setup.workload);
    std::cout << "\nFig. 6 — " << w.paper_name << " accuracy vs epoch (P="
              << setup.world << ")\n\n";

    // Collect per-epoch metric per optimizer, print as one aligned table
    // with epochs as rows.
    std::vector<std::string> names = {"HyLo", "KAISA", "SGD", "ADAM"};
    std::vector<std::vector<real_t>> metric(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
      Network net = w.make_model();
      OptimConfig oc = method_config(names[i]);
      auto opt = make_optimizer(names[i], oc);
      TrainConfig tc;
      tc.epochs = epochs;
      tc.batch_size = 8;
      tc.world = setup.world;
      tc.interconnect = mist_v100();
      tc.lr_schedule = {{epochs * 2 / 3}, 0.1};
      tc.max_iters_per_epoch = big ? -1 : 8;
      apply_env_telemetry(tc, "fig6/" + setup.workload + "/" + names[i]);
      Trainer trainer(net, *opt, w.data, tc);
      const TrainResult res = trainer.run();
      for (const auto& e : res.epochs) metric[i].push_back(e.test_metric);
    }
    CsvWriter table({"epoch", names[0], names[1], names[2], names[3]});
    for (index_t e = 0; e < epochs; ++e) {
      std::vector<std::string> row = {std::to_string(e)};
      for (std::size_t i = 0; i < names.size(); ++i)
        row.push_back(
            e < static_cast<index_t>(metric[i].size())
                ? std::to_string(metric[i][static_cast<std::size_t>(e)])
                : "-");
      table.add_row(std::move(row));
    }
    table.print_table();
    table.write_file("fig6_" + setup.workload + "_epochs.csv");
  }
  std::cout << "\nPaper's claim: HyLo's per-epoch accuracy matches or beats "
               "KAISA and clearly beats SGD/ADAM early in training.\n";
  return 0;
}
