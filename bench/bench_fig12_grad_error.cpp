// Fig. 12 reproduction: normalized gradient error ε = ‖ĝ − g‖/‖g‖ of the
// KID and KIS approximations through training, where g is the exact
// SNGD-preconditioned gradient (Eq. 7, no compression) and ĝ the HyLo
// preconditioned gradient at r = 10% of the global batch. The paper's
// claim: KID's error is around an order of magnitude below KIS's (tighter
// kernel approximation bound), on both ResNet-50 and ResNet-32.
#include <iostream>

#include "bench_common.hpp"
#include "hylo/nn/loss.hpp"
#include "hylo/optim/sngd.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

struct ErrorSample {
  real_t kid = 0, kis = 0;
};

// Capture a batch from the (trained-for-a-bit) network, build exact SNGD and
// both HyLo variants from the identical capture, and compare preconditioned
// gradients averaged over layers.
ErrorSample measure_errors(Network& net, const Workload& w, index_t batch,
                           std::uint64_t seed) {
  DataLoader loader(w.data.train, batch, seed);
  Batch b;
  HYLO_CHECK(loader.next(b), "batch too large");
  const PassContext ctx{.training = true, .capture = true};
  net.zero_grad();
  const Tensor4& out = net.forward(b.images, ctx);
  LossResult lr = w.classes > 0 ? SoftmaxCrossEntropy().compute(out, b.labels)
                                : DiceBceLoss().compute(out, b.masks);
  net.backward(lr.grad, ctx);

  auto blocks = net.param_blocks();
  CaptureSet cap;
  cap.a.resize(blocks.size());
  cap.g.resize(blocks.size());
  for (std::size_t l = 0; l < blocks.size(); ++l) {
    cap.a[l].push_back(blocks[l]->a_samples);
    cap.g[l].push_back(blocks[l]->g_samples);
  }

  OptimConfig oc = method_config("HyLo");
  // r must sit above the kernel's numerical rank (Fig. 10: ~10-20 at this
  // batch) for the compression comparison to be meaningful; the paper's
  // 10% of a 512-4096 batch satisfies that, 10% of 128 does not.
  oc.rank_ratio = 0.25;
  // The paper's Eq. 4 normalizes F by the batch (F = U'U/m); our stack
  // keeps F = U'U with damping absorbing the scale. Match the paper's
  // effective operating point: alpha_here = m * alpha_paper.
  oc.damping = 0.1 * 256;
  Sngd exact(oc);
  HyloOptimizer kid(oc), kis(oc);
  kid.set_policy(HyloOptimizer::Policy::kAlwaysKid);
  kis.set_policy(HyloOptimizer::Policy::kAlwaysKis);
  kid.begin_epoch(0, false);
  kis.begin_epoch(0, false);
  CommSim c0(1, loopback()), c1(1, loopback()), c2(1, loopback());
  exact.update_curvature(blocks, cap, &c0);
  kid.update_curvature(blocks, cap, &c1);
  kis.update_curvature(blocks, cap, &c2);

  // Per-layer normalized errors, aggregated by median (the paper plots the
  // typical layer; a few high-rank layers would otherwise dominate a mean).
  std::vector<real_t> kid_errs, kis_errs;
  for (std::size_t l = 0; l < blocks.size(); ++l) {
    const Matrix& g = blocks[l]->gw;
    if (frobenius_norm(g) <= 0) continue;
    const Matrix pg = exact.preconditioned(g, static_cast<index_t>(l));
    const real_t pnorm = frobenius_norm(pg);
    if (pnorm <= 0) continue;
    kid_errs.push_back(
        frobenius_norm(kid.preconditioned(g, static_cast<index_t>(l)) - pg) /
        pnorm);
    kis_errs.push_back(
        frobenius_norm(kis.preconditioned(g, static_cast<index_t>(l)) - pg) /
        pnorm);
  }
  ErrorSample err;
  err.kid = percentile(kid_errs, 50);
  err.kis = percentile(kis_errs, 50);
  return err;
}

}  // namespace

int main() {
  for (const std::string wname : {"resnet50", "resnet32"}) {
    const Workload w = make_workload(wname);
    std::cout << "\nFig. 12 — normalized gradient error of KID vs KIS at "
                 "r=25% of batch, " << w.paper_name << "\n\n";
    Network net = w.make_model();
    OptimConfig sgd_cfg = method_config("SGD");
    Sgd warmup(sgd_cfg);
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 32;
    tc.max_iters_per_epoch = 4;
    CsvWriter table({"checkpoint", "eps_KID", "eps_KIS", "KIS/KID"});
    const index_t checkpoints = large_scale() ? 8 : 4;
    for (index_t step = 0; step < checkpoints; ++step) {
      const ErrorSample e = measure_errors(net, w, 256, 100 + step);
      table.add(step, e.kid, e.kis, e.kis / std::max(e.kid, real_t{1e-12}));
      // Train a little more between checkpoints.
      apply_env_telemetry(tc, "fig12/" + w.paper_name + "/warmup" +
                                  std::to_string(step));
      Trainer trainer(net, warmup, w.data, tc);
      trainer.run();
    }
    table.print_table();
    table.write_file("fig12_" + wname + "_grad_error.csv");
  }
  // Controlled section: when the kernel is genuinely low-rank relative to
  // r (the regime Fig. 10 shows holds at the paper's 512-4096 global
  // batches), KID's interpolative decomposition is near-exact while KIS
  // still pays sampling noise — the mechanism behind the paper's
  // order-of-magnitude gap.
  std::cout << "\nFig. 12 (controlled) — noiseless rank-4 captures, m=64, r=16\n\n";
  CsvWriter ctrl({"trial", "eps_KID", "eps_KIS", "KIS/KID"});
  Rng rng(9);
  for (index_t trial = 0; trial < 4; ++trial) {
    CaptureSet cap = synth_capture(rng, 1, 1, 64, 48, 32, 4, /*noise=*/0.0);
    OptimConfig oc = method_config("HyLo");
    oc.rank_ratio = 0.25;
    Sngd exact(oc);
    HyloOptimizer kid(oc), kis(oc);
    kid.set_policy(HyloOptimizer::Policy::kAlwaysKid);
    kis.set_policy(HyloOptimizer::Policy::kAlwaysKis);
    kid.begin_epoch(0, false);
    kis.begin_epoch(0, false);
    ParamBlock p0, p1, p2;
    CommSim c0(1, loopback()), c1(1, loopback()), c2(1, loopback());
    exact.update_curvature({&p0}, cap, &c0);
    kid.update_curvature({&p1}, cap, &c1);
    kis.update_curvature({&p2}, cap, &c2);
    Matrix g(32, 48);
    for (index_t i = 0; i < g.size(); ++i) g.data()[i] = rng.normal();
    const Matrix pg = exact.preconditioned(g, 0);
    const real_t pnorm = frobenius_norm(pg);
    const real_t ek = frobenius_norm(kid.preconditioned(g, 0) - pg) / pnorm;
    const real_t es = frobenius_norm(kis.preconditioned(g, 0) - pg) / pnorm;
    ctrl.add(trial, ek, es, es / std::max(ek, real_t{1e-15}));
  }
  ctrl.print_table();
  ctrl.write_file("fig12_controlled.csv");

  std::cout << "\nPaper's claim: ε(KID) is roughly an order of magnitude "
               "below ε(KIS) throughout training. At proxy scale the "
               "live-training spectra carry heavier tails than the paper's "
               "(r sits near the numerical rank), so the live table shows "
               "KID <= KIS uniformly but compressed; the controlled table "
               "isolates the low-rank regime where the full gap appears.\n";
  return 0;
}
