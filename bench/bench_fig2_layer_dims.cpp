// Fig. 2 reproduction: distribution of layer dimensions across DNN models.
// Shows that the KFAC-relevant dimension d = max(d_in, d_out) is large for
// most layers of the paper's full-size architectures (here from the
// published architecture tables) and reports our trainable proxies next to
// them for scale.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {
void summarize(const std::string& tag, const std::vector<LayerDim>& dims,
               CsvWriter& table) {
  std::vector<real_t> d;
  index_t over512 = 0, over1k = 0;
  for (const auto& ld : dims) {
    const real_t v = static_cast<real_t>(std::max(ld.d_in, ld.d_out));
    d.push_back(v);
    over512 += v >= 512;
    over1k += v >= 1024;
  }
  table.add(tag, dims.size(), percentile(d, 25), percentile(d, 50),
            percentile(d, 75), percentile(d, 100),
            100.0 * static_cast<real_t>(over512) / static_cast<real_t>(dims.size()),
            100.0 * static_cast<real_t>(over1k) / static_cast<real_t>(dims.size()));
}
}  // namespace

int main() {
  std::cout << "Fig. 2 — layer-dimension distribution (d = max(d_in, d_out) "
               "of each preconditionable layer)\n\n";
  CsvWriter table({"model", "layers", "p25", "median", "p75", "max",
                   "%>=512", "%>=1024"});
  for (const auto& name : reference_model_names())
    summarize(name, reference_layer_dims(name), table);

  // Our trainable proxies, for scale comparison.
  for (const std::string wname :
       {"resnet50", "resnet32", "unet", "densenet", "c3f1"}) {
    Workload w = make_workload(wname);
    Network net = w.make_model();
    summarize("proxy:" + wname, layer_dims(net, wname), table);
  }
  table.print_table();
  table.write_file("fig2_layer_dims.csv");

  std::cout << "\nPaper's observation: the layer dimension is large across "
               "all models — e.g. most ResNet-50 layers exceed 512, which "
               "is what makes KFAC's O(d^3) inversion expensive.\n";
  return 0;
}
