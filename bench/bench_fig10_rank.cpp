// Fig. 10 reproduction: distribution of the kernel matrix's numerical rank
// (the number of eigenvalues covering 90% of the eigenvalue sum) across the
// layers of ResNet-50 and ResNet-32 proxies, for global batch sizes from
// 128 to 1024 (the paper sweeps 512-4096 on GPUs). The paper's claim: the
// kernel stays low-rank at every batch size — the median rank is a small,
// shrinking *fraction* of the global batch (20% -> 8.5% on ResNet-50).
#include <iostream>

#include "bench_common.hpp"
#include "hylo/linalg/eigh.hpp"
#include "hylo/linalg/kernels.hpp"
#include "hylo/nn/loss.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

// Per-layer numerical ranks of the kernel matrices captured from one batch
// of a briefly-trained model (ranks of an untrained net are unrepresentative).
std::vector<real_t> layer_ranks(const Workload& w, index_t global_batch) {
  Network net = w.make_model();
  // Brief warmup so the gradients carry signal.
  {
    OptimConfig oc = method_config("SGD");
    Sgd opt(oc);
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 32;
    tc.max_iters_per_epoch = 8;
    apply_env_telemetry(tc, "fig10/" + w.paper_name + "/warmup");
    Trainer trainer(net, opt, w.data, tc);
    trainer.run();
  }

  // One captured pass over a global batch.
  DataLoader loader(w.data.train, global_batch, /*seed=*/5);
  Batch batch;
  HYLO_CHECK(loader.next(batch), "dataset smaller than requested batch");
  const PassContext ctx{.training = true, .capture = true};
  net.zero_grad();
  const Tensor4& out = net.forward(batch.images, ctx);
  LossResult lr = w.classes > 0
                      ? SoftmaxCrossEntropy().compute(out, batch.labels)
                      : DiceBceLoss().compute(out, batch.masks);
  net.backward(lr.grad, ctx);

  // Rank at 90% coverage is insensitive to the eigensolver's last digits:
  // a loose tolerance keeps the Jacobi sweeps cheap at batch-sized kernels.
  std::vector<real_t> ranks;
  const auto blocks = net.param_blocks();
  // Subsample every other layer at the default scale (distribution shape is
  // preserved; the full sweep is available with HYLO_BENCH_SCALE=large).
  const std::size_t stride = large_scale() ? 1 : 2;
  for (std::size_t l = 0; l < blocks.size(); l += stride) {
    const Matrix k =
        kernel_matrix(blocks[l]->a_samples, blocks[l]->g_samples);
    const auto eigs = eigvalsh(k, 1e-7, 20);
    ranks.push_back(static_cast<real_t>(numerical_rank(eigs, 0.9)));
  }
  return ranks;
}

}  // namespace

int main() {
  const std::vector<index_t> batches =
      large_scale() ? std::vector<index_t>{256, 512, 1024}
                    : std::vector<index_t>{96, 192, 384};
  for (const std::string wname : {"resnet50", "resnet32"}) {
    const Workload w = make_workload(wname);
    std::cout << "\nFig. 10 — kernel-matrix numerical rank (90% eigenvalue "
                 "coverage) per layer, " << w.paper_name << "\n\n";
    CsvWriter table({"global_batch", "min", "p25", "median", "p75", "max",
                     "median/batch_%"});
    for (const index_t b : batches) {
      const auto ranks = layer_ranks(w, b);
      table.add(b, percentile(ranks, 0), percentile(ranks, 25),
                percentile(ranks, 50), percentile(ranks, 75),
                percentile(ranks, 100),
                100.0 * percentile(ranks, 50) / static_cast<real_t>(b));
    }
    table.print_table();
    table.write_file("fig10_" + wname + "_rank.csv");
  }
  std::cout << "\nPaper's claims: the kernel matrix is low-rank at every "
               "global batch size, and the median rank grows sublinearly "
               "with the batch (ResNet-50: 20%, 16%, 12%, 8.5% of batch at "
               "512..4096).\n";
  return 0;
}
