// Table IV reproduction: optimizer-state memory overhead of HyLo, KAISA,
// ADAM and SGD on the three multi-GPU workloads. Measured as the actual
// bytes held by each optimizer after a curvature refresh and one step
// (momentum + curvature factors + gathered low-rank factors). The paper's
// claims: HyLo is ~2x (ResNet-50) to ~20x (U-Net) below KAISA, roughly at
// ADAM's level, and everything is above SGD.
#include <iostream>

#include "bench_common.hpp"
#include "hylo/nn/loss.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

index_t measure_state_bytes(const Workload& w, const std::string& method,
                            index_t world) {
  Network net = w.make_model();
  OptimConfig oc = method_config(method);
  oc.update_freq = 1;
  auto opt = make_optimizer(method, oc);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  tc.world = world;
  tc.interconnect = mist_v100();
  tc.max_iters_per_epoch = 2;
  apply_env_telemetry(tc, "tab4/" + w.paper_name + "/" + method + "/P" +
                              std::to_string(world));
  Trainer trainer(net, *opt, w.data, tc);
  trainer.run();
  return opt->state_bytes();
}

}  // namespace

int main() {
  struct Setup {
    std::string workload;
    index_t world;
  };
  const std::vector<Setup> setups = {
      {"resnet50", 8}, {"resnet32", 8}, {"unet", 4}};

  std::cout << "Table IV — optimizer-state memory overhead (KiB)\n\n";
  CsvWriter table(
      {"model", "HyLo", "KAISA", "ADAM", "SGD", "KAISA/HyLo"});
  for (const auto& setup : setups) {
    const Workload w = make_workload(setup.workload);
    std::vector<index_t> bytes;
    for (const std::string m : {"HyLo", "KAISA", "ADAM", "SGD"})
      bytes.push_back(measure_state_bytes(w, m, setup.world));
    table.add(w.paper_name, bytes[0] / 1024, bytes[1] / 1024, bytes[2] / 1024,
              bytes[3] / 1024,
              static_cast<real_t>(bytes[1]) / static_cast<real_t>(bytes[0]));
  }
  table.print_table();
  table.write_file("tab4_memory.csv");
  std::cout << "\nPaper (MB at full scale): ResNet-50 317/714/307/102, "
               "ResNet-32 35.5/34.9/5.6/1.9, U-Net 31.5/603/93/31. The "
               "orderings to check: KAISA > HyLo everywhere (by ~2x on "
               "ResNet-50-like and much more on U-Net-like layer shapes), "
               "SGD smallest.\n";
  return 0;
}
