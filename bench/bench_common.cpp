#include "bench_common.hpp"

namespace hylo::bench {

Network Workload::make_model() const {
  const bool big = large_scale();
  if (paper_name == "ResNet-50")
    return make_resnet({3, 16, 16}, 10, big ? 3 : 2, big ? 16 : 12, model_seed);
  if (paper_name == "ResNet-32")
    return make_resnet({3, 16, 16}, 10, big ? 5 : 2, 8, model_seed);
  if (paper_name == "U-Net")
    return make_unet({1, 16, 16}, big ? 16 : 8, 2, model_seed);
  if (paper_name == "DenseNet")
    return make_densenet({3, 16, 16}, 10, big ? 12 : 8, big ? 6 : 4,
                         model_seed);
  if (paper_name == "3C1F")
    return make_c3f1({1, 16, 16}, 10, big ? 16 : 8, model_seed);
  HYLO_CHECK(false, "unknown workload " << paper_name);
  return Network{};
}

Workload make_workload(const std::string& name) {
  const bool big = large_scale();
  const index_t n_train = big ? 4096 : 1536;
  const index_t n_test = big ? 1024 : 384;
  Workload w;
  if (name == "resnet50") {
    w.paper_name = "ResNet-50";
    w.proxy_desc = "resnet-14 (w=12) on 10-class noisy textures 3x16x16";
    w.data = make_texture_images(n_train, n_test, 10, 3, 16, 16, 1.2, 101);
    w.classes = 10;
    w.target_metric = 0.85;
  } else if (name == "resnet32") {
    w.paper_name = "ResNet-32";
    w.proxy_desc = "resnet-14 (w=8) on 10-class noisy textures 3x16x16";
    w.data = make_texture_images(n_train, n_test, 10, 3, 16, 16, 1.3, 102);
    w.classes = 10;
    w.target_metric = 0.8;
  } else if (name == "unet") {
    w.paper_name = "U-Net";
    w.proxy_desc = "unet (base=8, depth=2) on blob segmentation 16x16";
    w.data = make_blob_segmentation(big ? 1024 : 512, 128, 16, 16, 0.25, 103);
    w.classes = 0;
    w.target_metric = 0.85;
  } else if (name == "densenet") {
    w.paper_name = "DenseNet";
    w.proxy_desc = "densenet (growth=8, 2x4 layers) on 10-class textures";
    w.data = make_texture_images(n_train, n_test, 10, 3, 16, 16, 0.4, 104);
    w.classes = 10;
    w.target_metric = 0.8;
  } else if (name == "c3f1") {
    w.paper_name = "3C1F";
    w.proxy_desc = "3 conv + 1 fc on 10-class gaussian images 1x16x16";
    w.data = make_gaussian_images(n_train, n_test, 10, 1, 16, 16, 0.9, 105);
    w.classes = 10;
    w.target_metric = 0.9;
  } else {
    HYLO_CHECK(false, "unknown workload " << name);
  }
  return w;
}

OptimConfig method_config(const std::string& optimizer) {
  OptimConfig oc;
  oc.momentum = 0.9;
  oc.weight_decay = 5e-4;
  oc.update_freq = 10;
  oc.stat_decay = 0.95;
  // The KAISA-style trust region: 0.001 (the usual GPU-scale setting) is too
  // tight for these small proxies and strangles every NGD method's steps.
  oc.kl_clip = 0.01;
  oc.rank_ratio = 0.1;
  if (optimizer == "SGD") {
    oc.lr = 0.1;
  } else if (optimizer == "ADAM") {
    oc.lr = 0.002;
    oc.weight_decay = 1e-4;
  } else if (optimizer == "KFAC" || optimizer == "KAISA" ||
             optimizer == "EKFAC") {
    oc.lr = 0.05;
    oc.damping = 0.03;
  } else if (optimizer == "KBFGS-L" || optimizer == "KBFGS") {
    oc.lr = 0.05;
    oc.damping = 0.1;
  } else if (optimizer == "SNGD" || optimizer == "HyLo") {
    oc.lr = 0.1;
    oc.damping = 0.3;
  } else {
    HYLO_CHECK(false, "unknown optimizer " << optimizer);
  }
  return oc;
}

CaptureSet synth_capture(Rng& rng, index_t layers, index_t world, index_t m,
                         index_t d_in, index_t d_out, index_t latent_rank,
                         real_t noise) {
  CaptureSet cap;
  cap.a.resize(static_cast<std::size_t>(layers));
  cap.g.resize(static_cast<std::size_t>(layers));
  for (index_t l = 0; l < layers; ++l) {
    for (index_t r = 0; r < world; ++r) {
      // Low-rank structure plus noise: matches the observed spectra of real
      // per-sample factor matrices (Fig. 10).
      auto lowrank = [&](index_t rows, index_t cols) {
        Matrix base(rows, latent_rank);
        Matrix mix(latent_rank, cols);
        for (index_t i = 0; i < base.size(); ++i) base.data()[i] = rng.normal();
        for (index_t i = 0; i < mix.size(); ++i) mix.data()[i] = rng.normal();
        Matrix out = matmul(base, mix);
        for (index_t i = 0; i < out.size(); ++i)
          out.data()[i] += noise * rng.normal();
        return out;
      };
      cap.a[static_cast<std::size_t>(l)].push_back(lowrank(m, d_in));
      cap.g[static_cast<std::size_t>(l)].push_back(lowrank(m, d_out));
    }
  }
  return cap;
}

}  // namespace hylo::bench
