// Fig. 4 reproduction: single-device test accuracy vs (simulated) time for
// DenseNet and 3C1F against KFAC, EKFAC, KBFGS-L, SGD and ADAM. The paper's
// claims: HyLo reaches the target accuracy first, beats KBFGS-L/KFAC/EKFAC
// accuracy, and is ~1.4x (DenseNet) to ~3x (3C1F) faster than KFAC/EKFAC.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

int main() {
  const bool big = large_scale();
  const index_t epochs = big ? 20 : 8;
  for (const std::string wname : {"densenet", "c3f1"}) {
    const Workload w = make_workload(wname);
    // Mirror the paper's targets: DenseNet 75%, 3C1F 93%.
    const real_t target = wname == "densenet" ? 0.75 : 0.93;
    std::cout << "\nFig. 4 — " << w.paper_name << " (" << w.proxy_desc
              << "), single device, target acc " << target << "\n\n";

    CsvWriter curves({"optimizer", "epoch", "sim_seconds", "test_acc"});
    CsvWriter summary({"optimizer", "best_acc", "final_acc", "sim_seconds",
                       "so2_overhead_s", "time_to_target"});
    double kfac_over = -1.0, hylo_over = -1.0;
    for (const std::string name :
         {"HyLo", "KFAC", "EKFAC", "KBFGS-L", "SGD", "ADAM"}) {
      Network net = w.make_model();
      OptimConfig oc = method_config(name);
      auto opt = make_optimizer(name, oc);
      TrainConfig tc;
      tc.epochs = epochs;
      tc.batch_size = 32;
      tc.world = 1;
      tc.max_iters_per_epoch = big ? -1 : 24;
      tc.lr_schedule = {{epochs * 2 / 3}, 0.1};
      tc.target_metric = target;
      apply_env_telemetry(tc, "fig4/" + w.paper_name + "/" + name);
      Trainer trainer(net, *opt, w.data, tc);
      const TrainResult res = trainer.run();
      for (const auto& e : res.epochs)
        curves.add(name, e.epoch, e.wall_seconds, e.test_metric);
      // Second-order overhead: everything beyond plain fwd/bwd+allreduce —
      // the component the paper's Fig. 7 timings isolate.
      const auto& prof = trainer.profiler();
      const double overhead = prof.seconds("comp/factorization") +
                              prof.seconds("comp/inversion") +
                              prof.seconds("comp/step");
      const std::string ttt = res.time_to_target
                                  ? std::to_string(*res.time_to_target)
                                  : "not reached";
      summary.add(name, res.best_metric(), res.epochs.back().test_metric,
                  res.total_seconds, overhead, ttt);
      if (name == "KFAC") kfac_over = overhead;
      if (name == "HyLo") hylo_over = overhead;
    }
    summary.print_table();
    curves.write_file("fig4_" + wname + "_curves.csv");
    if (kfac_over > 0 && hylo_over > 0)
      std::cout << "\nKFAC/HyLo second-order overhead ratio: "
                << kfac_over / hylo_over
                << "x (the fwd/bwd time shared by all methods dominates the "
                   "absolute sim_seconds on these CPU-scaled proxies; the "
                   "paper's 1.4x-3x end-to-end gap comes from this "
                   "overhead at full layer dimensions, cf. Fig. 2/3)\n";
  }
  return 0;
}
