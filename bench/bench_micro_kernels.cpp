// Micro-benchmarks (google-benchmark) of the dense kernels underlying the
// Table I complexity rows: GEMM, Gram products, Cholesky, LU, Jacobi
// eigendecomposition, column-pivoted QR, interpolative decomposition, and
// the kernel-matrix + SMW application path.
#include <benchmark/benchmark.h>

#include "hylo/hylo.hpp"

namespace hylo {
namespace {

Matrix random_matrix(Rng& rng, index_t r, index_t c) {
  Matrix m(r, c);
  for (index_t i = 0; i < m.size(); ++i) m[i] = rng.normal();
  return m;
}

void BM_Gemm(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  const Matrix a = random_matrix(rng, n, n);
  const Matrix b = random_matrix(rng, n, n);
  Matrix c;
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Complexity(benchmark::oNCubed);

void BM_GramNt(benchmark::State& state) {
  const index_t m = state.range(0);
  Rng rng(2);
  const Matrix a = random_matrix(rng, m, 128);
  for (auto _ : state) {
    Matrix g = gram_nt(a);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_GramNt)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_Cholesky(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(3);
  Matrix spd = gram_nt(random_matrix(rng, n, n));
  add_diagonal(spd, static_cast<real_t>(n));
  for (auto _ : state) {
    Matrix l = cholesky(spd);
    benchmark::DoNotOptimize(l.data());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Cholesky)->Arg(64)->Arg(128)->Arg(256)->Complexity(benchmark::oNCubed);

void BM_LuInverse(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(4);
  const Matrix a = random_matrix(rng, n, n);
  for (auto _ : state) {
    Matrix inv = lu_inverse(a);
    benchmark::DoNotOptimize(inv.data());
  }
}
BENCHMARK(BM_LuInverse)->Arg(64)->Arg(128)->Arg(256);

void BM_JacobiEigh(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(5);
  Matrix sym = gram_nt(random_matrix(rng, n, n / 2 + 1));
  for (auto _ : state) {
    auto res = eigh(sym);
    benchmark::DoNotOptimize(res.eigenvalues.data());
  }
}
BENCHMARK(BM_JacobiEigh)->Arg(32)->Arg(64)->Arg(128);

void BM_PivotedQr(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(6);
  const Matrix a = random_matrix(rng, n, n);
  for (auto _ : state) {
    PivotedQr f = pivoted_qr(a);
    benchmark::DoNotOptimize(f.r.data());
  }
}
BENCHMARK(BM_PivotedQr)->Arg(64)->Arg(128)->Arg(256);

void BM_RowId(benchmark::State& state) {
  const index_t m = state.range(0);
  Rng rng(7);
  // KID's call shape: symmetric m x m Gram, rank = m/10.
  const Matrix a = random_matrix(rng, m, 64);
  const Matrix g = random_matrix(rng, m, 64);
  const Matrix q = kernel_matrix(a, g);
  const index_t r = std::max<index_t>(2, m / 10);
  for (auto _ : state) {
    RowId id = row_interpolative_decomposition(q, r);
    benchmark::DoNotOptimize(id.projection.data());
  }
}
BENCHMARK(BM_RowId)->Arg(64)->Arg(128)->Arg(256);

void BM_KernelMatrix(benchmark::State& state) {
  const index_t m = state.range(0);
  Rng rng(8);
  const Matrix a = random_matrix(rng, m, 256);
  const Matrix g = random_matrix(rng, m, 128);
  for (auto _ : state) {
    Matrix k = kernel_matrix(a, g);
    benchmark::DoNotOptimize(k.data());
  }
}
BENCHMARK(BM_KernelMatrix)->Arg(64)->Arg(128)->Arg(256);

void BM_SmwApply(benchmark::State& state) {
  // The per-step preconditioning cost of SNGD/HyLo: U g, solve, Uᵀ y.
  const index_t r = state.range(0);
  Rng rng(9);
  const Matrix a = random_matrix(rng, r, 256);
  const Matrix g = random_matrix(rng, r, 128);
  Matrix k = kernel_matrix(a, g);
  add_diagonal(k, 1.0);
  const Matrix chol = cholesky(k);
  const Matrix grad = random_matrix(rng, 128, 256);
  for (auto _ : state) {
    const Matrix uv = apply_jacobian(a, g, grad);
    const Matrix y = cholesky_solve(chol, uv);
    Matrix out = grad - apply_jacobian_t(a, g, y);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SmwApply)->Arg(16)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  const index_t hw = state.range(0);
  Rng rng(10);
  Tensor4 x(1, 16, hw, hw);
  for (index_t i = 0; i < x.size(); ++i) x[i] = rng.normal();
  const ConvGeometry geom{.in_c = 16, .in_h = hw, .in_w = hw, .kernel_h = 3,
                          .kernel_w = 3, .stride = 1, .pad = 1};
  Matrix cols;
  for (auto _ : state) {
    im2col(x.sample_ptr(0), geom, cols);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace hylo

BENCHMARK_MAIN();
