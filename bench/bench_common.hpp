#pragma once
// Shared setup for the figure/table reproduction benches: the proxy-model
// catalogue (DESIGN.md §2 maps each paper model to its CPU-scaled proxy),
// per-method hyperparameters, and small statistics helpers.
//
// Every bench binary runs standalone with defaults sized for a single CPU
// core; set HYLO_BENCH_SCALE=large in the environment to run closer to the
// paper's geometry (slower).

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "hylo/hylo.hpp"

namespace hylo::bench {

inline bool large_scale() {
  const char* env = std::getenv("HYLO_BENCH_SCALE");
  return env != nullptr && std::string(env) == "large";
}

/// Opt-in telemetry for every bench driver: when HYLO_TELEMETRY_DIR is set,
/// the Trainer writes <dir>/<tag>/run.jsonl and <dir>/<tag>/trace.json for
/// each training run the bench performs (per-step records off — bench runs
/// are short but many). No-op otherwise.
inline void apply_env_telemetry(TrainConfig& tc, const std::string& tag) {
  const char* dir = std::getenv("HYLO_TELEMETRY_DIR");
  if (dir == nullptr || *dir == '\0') return;
  tc.telemetry.dir = std::string(dir) + "/" + tag;
  tc.telemetry.per_step = false;
}

/// One experiment setup: proxy model + matching synthetic dataset.
struct Workload {
  std::string paper_name;   // what the paper calls it
  std::string proxy_desc;   // what we actually build
  DataSplit data;
  index_t classes = 0;      // 0 for segmentation
  real_t target_metric = 0.0;
  std::uint64_t model_seed = 42;

  Network make_model() const;
};

/// The paper's five workloads as CPU proxies. `name` ∈ {"resnet50",
/// "resnet32", "unet", "densenet", "c3f1"}.
Workload make_workload(const std::string& name);

/// Per-method hyperparameters tuned for the proxy workloads (the paper
/// likewise tunes lr/damping per method, Sec. V-A).
OptimConfig method_config(const std::string& optimizer);

/// p-th percentile (0..100) of a vector (copied, nearest-rank).
inline real_t percentile(std::vector<real_t> v, real_t p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min<real_t>(static_cast<real_t>(v.size()) - 1,
                       p / 100.0 * static_cast<real_t>(v.size())));
  return v[idx];
}

/// Least-squares slope of log(y) vs log(x) — empirical complexity exponent.
inline real_t loglog_slope(const std::vector<real_t>& x,
                           const std::vector<real_t>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  real_t sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const real_t lx = std::log(x[i]);
    const real_t ly = std::log(std::max(y[i], real_t{1e-12}));
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const real_t denom = static_cast<real_t>(n) * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (static_cast<real_t>(n) * sxy - sx * sy) / denom;
}

/// Random per-layer capture for kernel-level benches (no training needed):
/// world ranks of m samples each with the given layer dims and latent rank.
CaptureSet synth_capture(Rng& rng, index_t layers, index_t world, index_t m,
                         index_t d_in, index_t d_out, index_t latent_rank,
                         real_t noise = 0.05);

}  // namespace hylo::bench
