// Health-probe overhead: wall-time cost of the per-layer curvature probes
// (DESIGN.md §12) vs probing cadence for the ResNet-32 proxy under the
// HyLo optimizer. The same schedule runs with probes off, then at cadence
// {4, 1}; each run's wall time and probe count are recorded and the final
// weights are checked bitwise against the probe-free baseline — the probes
// are pure observers and must not perturb training at ANY cadence, not just
// when disabled. Writes BENCH_health.json for the repo record.
//
// Geometry: HYLO_BENCH_SCALE=large quadruples the iterations per epoch.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

struct RunOut {
  double wall_seconds = 0.0;
  std::vector<real_t> weights;
  index_t probes = 0;
  index_t alerts = 0;
  TrainResult result;
};

std::vector<real_t> flat_weights(Network& net) {
  std::vector<real_t> out;
  for (auto* pb : net.param_blocks())
    out.insert(out.end(), pb->w.data(), pb->w.data() + pb->w.size());
  for (auto pp : net.plain_params())
    out.insert(out.end(), pp.value->begin(), pp.value->end());
  return out;
}

bool bitwise_equal(const std::vector<real_t>& x, const std::vector<real_t>& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i)
    if (x[i] != y[i]) return false;
  return true;
}

}  // namespace

int main() {
  const Workload w = make_workload("resnet32");
  const index_t iters = large_scale() ? 48 : 12;

  // cadence < 0 encodes "probes disabled" (the baseline).
  auto run_at = [&](index_t cadence) {
    Network net = w.make_model();
    OptimConfig oc = method_config("HyLo");
    auto opt = make_optimizer("HyLo", oc);
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 8;
    tc.world = 4;
    tc.interconnect = mist_v100();
    tc.max_iters_per_epoch = iters;
    tc.faults = FaultConfig{};  // pin ambient HYLO_FAULTS off: runs compare bitwise
    obs::HealthConfig hc;       // pin ambient HYLO_HEALTH off likewise
    hc.enabled = cadence >= 0;
    hc.cadence = cadence >= 0 ? cadence : 1;
    tc.health = hc;
    Trainer trainer(net, *opt, w.data, tc);
    RunOut out;
    WallTimer timer;
    out.result = trainer.run();
    out.wall_seconds = timer.seconds();
    out.weights = flat_weights(net);
    out.probes = trainer.health().probes();
    out.alerts = out.result.alerts_fired;
    return out;
  };

  std::cout << "Health-probe overhead — " << w.paper_name << " proxy ("
            << w.proxy_desc << "), HyLo, P=4, 2 epochs x " << iters
            << " iters\n\n";

  const RunOut base = run_at(-1);
  std::cout << "  probes off: " << base.wall_seconds << " s (baseline)\n";

  CsvWriter table({"cadence", "probes", "wall_seconds", "overhead_vs_off",
                   "alerts", "bitwise_vs_off"});
  obs::Json rows = obs::Json::array();
  bool all_bitwise = true;
  for (const index_t cadence : {index_t{4}, index_t{1}}) {
    const RunOut out = run_at(cadence);
    const bool bitwise = bitwise_equal(out.weights, base.weights);
    all_bitwise = all_bitwise && bitwise;
    const double overhead = out.wall_seconds / base.wall_seconds;
    table.add(cadence, out.probes, out.wall_seconds, overhead, out.alerts,
              bitwise ? "yes" : "NO");
    obs::Json row = obs::Json::object();
    row.set("cadence", cadence);
    row.set("probes", out.probes);
    row.set("wall_seconds", out.wall_seconds);
    row.set("overhead_vs_off_x", overhead);
    row.set("alerts_fired", out.alerts);
    row.set("bitwise_final_weights", bitwise);
    rows.push(std::move(row));
  }
  table.print_table();

  obs::Json doc = obs::Json::object();
  doc.set("bench", "health_overhead");
  doc.set("workload", w.paper_name);
  doc.set("proxy", w.proxy_desc);
  doc.set("world", 4);
  doc.set("epochs", 2);
  doc.set("iters_per_epoch", iters);
  doc.set("baseline_wall_seconds", base.wall_seconds);
  doc.set("cadences", std::move(rows));
  std::ofstream out("BENCH_health.json");
  doc.dump(out);
  out << "\n";
  std::cout << "wrote BENCH_health.json\n";

  if (!all_bitwise) {
    std::cerr << "bitwise mismatch: health probes perturbed training\n";
    return 1;
  }
  return 0;
}
