// Fig. 11 reproduction: per-layer gradient norms across ResNet-32 training
// epochs, plus the resulting HyLo switching decisions. The paper's claims:
// the gradient norm changes rapidly in the first epochs and right after
// learning-rate decays, and the gradient-based heuristic therefore picks
// KID in ~20-30% of epochs (the critical ones) and KIS elsewhere.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

int main() {
  const Workload w = make_workload("resnet32");
  const index_t epochs = large_scale() ? 20 : 12;
  const index_t decay_epoch = epochs * 2 / 3;

  Network net = w.make_model();
  OptimConfig oc = method_config("HyLo");
  oc.update_freq = 5;
  // Proxy-scale gradient norms are noisier than the paper's; a higher
  // threshold keeps "critical" meaning genuine regime changes.
  oc.switch_threshold = 0.5;
  HyloOptimizer opt(oc);
  TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 16;
  tc.world = 4;
  tc.interconnect = aws_p2_k80();
  tc.max_iters_per_epoch = large_scale() ? -1 : 10;
  tc.lr_schedule = {{decay_epoch}, 0.1};
  apply_env_telemetry(tc, "fig11/" + w.paper_name);
  Trainer trainer(net, opt, w.data, tc);

  // Record per-layer gradient norms at each epoch boundary via the hook.
  std::vector<std::vector<real_t>> norms;  // [epoch][layer]
  trainer.set_epoch_hook([&](const EpochStats&, Network& n) {
    std::vector<real_t> row;
    for (auto* pb : n.param_blocks()) row.push_back(frobenius_norm(pb->gw));
    norms.push_back(std::move(row));
  });
  trainer.run();

  std::cout << "Fig. 11 — gradient norms through ResNet-32 training (LR "
               "decays at epoch " << decay_epoch << ")\n\n";
  CsvWriter table({"epoch", "first_conv", "mid_conv", "fc", "total_delta_norm",
                   "hylo_mode"});
  const auto& modes = opt.mode_history();
  const auto& deltas = opt.delta_norm_history();
  for (std::size_t e = 0; e < norms.size(); ++e) {
    const auto& row = norms[e];
    table.add(e, row.front(), row[row.size() / 2], row.back(),
              e < deltas.size() ? deltas[e] : 0.0,
              e < modes.size() ? (modes[e] == HyloMode::kKid ? "KID" : "KIS")
                               : "-");
  }
  table.print_table();
  table.write_file("fig11_grad_norms.csv");

  index_t kid = 0;
  for (const auto m : modes) kid += m == HyloMode::kKid;
  std::cout << "\nKID chosen in " << kid << "/" << modes.size()
            << " epochs (paper: ~20% on ResNet-32 — warmup epochs and the "
               "epochs right after the LR decay).\n";
  return 0;
}
