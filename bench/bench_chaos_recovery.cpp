// Ablation: silent-corruption storms vs. the two SDC resilience layers
// (DESIGN.md §16). For each storm rate, the same seeded workload runs in
// three protection modes:
//
//   guards_off      — numeric commit gates disabled, no recovery: escaped
//                     bit-flips commit unchecked, so hot storms end in a
//                     non-finite "result" or a numeric abort.
//   guards_on       — commit gates only: poisoned refreshes degrade to
//                     stale factors, but a flip the sanity bounds cannot
//                     see (a mantissa flip is a plausible value) can still
//                     poison the run.
//   guards_rollback — gates + checkpoint-rollback recovery: a non-finite
//                     loss or critical alert rolls back to the last
//                     verified-good snapshot and re-runs.
//
// A row's status is the self-healing contract: "ok" (finite completion),
// "nonfinite" (completed with a poisoned result — silent corruption, the
// outcome the PR exists to eliminate), "crashed" (loud numeric abort), or
// "exhausted" (recovery budget spent, loud by construction).
//
// Usage: bench_chaos_recovery [smoke]   (smoke = fewer epochs, CI-sized)
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

enum class Mode { kGuardsOff, kGuardsOn, kGuardsRollback };

const char* to_label(Mode m) {
  switch (m) {
    case Mode::kGuardsOff: return "guards_off";
    case Mode::kGuardsOn: return "guards_on";
    case Mode::kGuardsRollback: return "guards_rollback";
  }
  return "?";
}

struct CellResult {
  std::string status;  // ok | nonfinite | crashed | exhausted
  index_t completed = 0;
  real_t final_metric = 0.0;
  std::int64_t rollbacks = 0, guard_rejects = 0, escaped = 0, critical = 0;
};

CellResult run_cell(double rate, Mode mode, index_t epochs) {
  const std::uint64_t seed = 42;
  DataSplit data = make_spirals(1536, 384, 3, 0.05, seed);
  Network net = make_mlp({2, 1, 1}, {64, 64}, 3, seed);

  OptimConfig oc = method_config("HyLo");
  oc.update_freq = 2;  // refresh often: more factor collectives in the storm
  oc.guard_gates = mode != Mode::kGuardsOff;
  HyloOptimizer opt(oc);

  TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 16;
  tc.world = 8;
  tc.interconnect = mist_v100();
  tc.data_seed = seed;
  // Health probes run in every mode (they are pure observers): they are the
  // detector that makes finite-but-poisoned state loud, and the critical
  // alerts they fire are the recovery engine's second trigger.
  obs::HealthConfig hc;
  hc.enabled = true;
  hc.cadence = 1;
  tc.health = hc;
  if (rate > 0.0) {
    std::ostringstream spec;
    spec << "97:" << rate << ":silent=1,escape=1.0";
    tc.faults = FaultConfig::parse(spec.str());
  } else {
    tc.faults = FaultConfig{};  // pin: clean baseline ignores HYLO_FAULTS
  }
  const std::string snap_dir =
      "/tmp/hylo_bench_chaos_" + std::to_string(::getpid());
  if (mode == Mode::kGuardsRollback) {
    tc.checkpoint.dir = snap_dir;
    tc.checkpoint.every = 8;
    tc.recovery = RecoveryConfig::parse("6:16:0.5");
  } else {
    tc.checkpoint.dir = snap_dir;
    tc.checkpoint.every = 0;  // pin: snapshots off
    tc.recovery = RecoveryConfig{};  // pin: recovery off
  }
  std::ostringstream tag;
  tag << "chaos_" << to_label(mode) << "_rate" << rate;
  apply_env_telemetry(tc, tag.str());

  Trainer trainer(net, opt, data, tc);
  CellResult out;
  bool threw = false, exhausted = false;
  TrainResult res;
  try {
    res = trainer.run();
  } catch (const Error& e) {
    threw = true;
    exhausted =
        std::string(e.what()).find("recovery budget exhausted") !=
        std::string::npos;
  }
  bool nonfinite = false;
  for (const auto& ep : res.epochs)
    if (!std::isfinite(ep.train_loss) || !std::isfinite(ep.test_metric))
      nonfinite = true;
  out.status = threw ? (exhausted ? "exhausted" : "crashed")
               : nonfinite ? "nonfinite"
                           : "ok";
  out.completed = static_cast<index_t>(res.epochs.size());
  out.final_metric = res.epochs.empty() ? 0.0 : res.epochs.back().test_metric;
  // From the trainer, not TrainResult: an exhausted run throws before the
  // result is assembled, but its rollbacks still happened.
  out.rollbacks = trainer.recovery().rollbacks();
  out.critical = res.critical_alerts;
  auto& reg = trainer.comm().profiler().registry();
  out.escaped = reg.counter_value("comm/faults/sdc_escaped");
  for (const auto& [name, c] : reg.counters())
    if (name.rfind("optim/", 0) == 0 &&
        name.find("/guard_rejects") != std::string::npos)
      out.guard_rejects += c.value();
  std::filesystem::remove_all(snap_dir);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "smoke";
  const index_t epochs = smoke ? 4 : 10;
  std::cout << "Ablation — silent-corruption storm vs. SDC resilience "
               "layers (HyLo, MLP/spirals, P=8, seed 42, " << epochs
            << " epochs)\n\n";
  CsvWriter table({"rate", "mode", "status", "completed", "final_metric",
                   "rollbacks", "guard_rejects", "escaped", "critical_alerts"});
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.5}
            : std::vector<double>{0.0, 0.2, 0.5, 0.9};
  for (const double rate : rates) {
    for (const Mode mode :
         {Mode::kGuardsOff, Mode::kGuardsOn, Mode::kGuardsRollback}) {
      const CellResult r = run_cell(rate, mode, epochs);
      std::ostringstream rt;
      rt << rate;
      table.add(rt.str(), to_label(mode), r.status,
                static_cast<double>(r.completed), r.final_metric,
                static_cast<double>(r.rollbacks),
                static_cast<double>(r.guard_rejects),
                static_cast<double>(r.escaped),
                static_cast<double>(r.critical));
    }
  }
  table.print_table();
  table.write_file("ablation_chaos.csv");
  std::cout << "\nExpected: at rate 0 the three modes are identical (gates "
               "and recovery are bitwise invisible on clean runs). Under a "
               "hot storm guards_off ends nonfinite or crashed — escaped "
               "bit-flips commit unchecked into factors — while the gated "
               "modes complete finite: gates reject what the sanity bounds "
               "can see, health alerts make the remainder loud, and "
               "guards_rollback additionally exercises the rollback ladder "
               "on those critical triggers.\n";
  return 0;
}
