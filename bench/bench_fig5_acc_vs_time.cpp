// Fig. 5 reproduction: multi-worker test accuracy vs simulated time for
// ResNet-50 (P=8), U-Net (P=4) and ResNet-32 (P=8) against KAISA
// (distributed KFAC), SGD and ADAM. The paper's claim: HyLo converges to
// the target 1.3x-2.4x faster than every baseline.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

int main() {
  struct Setup {
    std::string workload;
    index_t world;
    index_t epochs;
  };
  const bool big = large_scale();
  const std::vector<Setup> setups = {{"resnet50", 8, big ? index_t{12} : index_t{5}},
                                     {"unet", 4, big ? index_t{12} : index_t{5}},
                                     {"resnet32", 8, big ? index_t{12} : index_t{5}}};

  for (const auto& setup : setups) {
    const Workload w = make_workload(setup.workload);
    std::cout << "\nFig. 5 — " << w.paper_name << " on P=" << setup.world
              << " simulated workers (" << w.proxy_desc << "), target "
              << w.target_metric << "\n\n";

    CsvWriter curves({"optimizer", "epoch", "sim_seconds", "test_metric"});
    CsvWriter summary(
        {"optimizer", "best_metric", "sim_seconds", "time_to_target"});
    double hylo_t = -1.0;
    std::vector<std::pair<std::string, double>> others;
    for (const std::string name : {"HyLo", "KAISA", "SGD", "ADAM"}) {
      Network net = w.make_model();
      OptimConfig oc = method_config(name);
      auto opt = make_optimizer(name, oc);
      TrainConfig tc;
      tc.epochs = setup.epochs;
      tc.batch_size = 8;
      tc.world = setup.world;
      tc.interconnect = mist_v100();
      tc.lr_schedule = {{setup.epochs * 2 / 3}, 0.1};
      tc.target_metric = w.target_metric;
      tc.max_iters_per_epoch = big ? -1 : 12;
      apply_env_telemetry(tc, "fig5/" + setup.workload + "/" + name);
      Trainer trainer(net, *opt, w.data, tc);
      const TrainResult res = trainer.run();
      for (const auto& e : res.epochs)
        curves.add(name, e.epoch, e.wall_seconds, e.test_metric);
      const double reach =
          res.time_to_target ? *res.time_to_target : res.total_seconds;
      summary.add(name, res.best_metric(), res.total_seconds,
                  res.time_to_target ? std::to_string(*res.time_to_target)
                                     : "not reached");
      if (name == "HyLo")
        hylo_t = reach;
      else
        others.push_back({name, reach});
    }
    summary.print_table();
    curves.write_file("fig5_" + setup.workload + "_curves.csv");
    std::cout << "\nSpeedup of HyLo over baselines (time to reach "
                 "target-or-end):";
    for (const auto& [name, t] : others)
      std::cout << "  " << name << " " << t / hylo_t << "x";
    std::cout << "  (paper: 1.3x-2.4x)\n";
  }
  return 0;
}
