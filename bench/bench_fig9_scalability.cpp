// Fig. 9 reproduction: HyLo's scalability — time-per-epoch speedup relative
// to its own single-worker time as P grows, on the ResNet-50, ResNet-32 and
// U-Net proxies. The paper reports superlinear scaling for ResNet-50 and
// U-Net (second-order refresh cost per sample *drops* as the per-worker
// factor work shrinks) and linear scaling for ResNet-32.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

// Time-per-epoch for HyLo at world P with a fixed *global* workload: the
// per-epoch sample count is fixed by the dataset, so growing P shrinks each
// worker's share (strong scaling, as in the paper's Fig. 9).
double epoch_seconds(const Workload& w, index_t world) {
  Network net = w.make_model();
  OptimConfig oc = method_config("HyLo");
  oc.update_freq = std::max<index_t>(1, 80 / world);
  auto opt = make_optimizer("HyLo", oc);
  const index_t batch = 8;
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = batch;
  tc.world = world;
  tc.interconnect = mist_v100();
  tc.max_iters_per_epoch = std::max<index_t>(2, 48 / world);
  apply_env_telemetry(tc, "fig9/" + w.paper_name + "/P" + std::to_string(world));
  Trainer trainer(net, *opt, w.data, tc);
  const TrainResult res = trainer.run();
  // Project to one pass over the dataset: at P workers each iteration
  // consumes P*batch samples, so the epoch shrinks with P (strong scaling).
  const double per_iter =
      res.total_seconds / static_cast<double>(res.iterations);
  return per_iter * static_cast<double>(w.data.train.size()) /
         static_cast<double>(world * batch);
}

}  // namespace

int main() {
  const std::vector<index_t> worlds = {1, 2, 4, 8, 16, 32};
  for (const std::string wname : {"resnet50", "resnet32", "unet"}) {
    const Workload w = make_workload(wname);
    std::cout << "\nFig. 9 — HyLo strong-scaling speedup vs its own P=1 "
                 "time, " << w.paper_name << "\n\n";
    CsvWriter table({"P", "epoch_seconds", "speedup_vs_P1", "ideal"});
    double base = 0.0;
    for (const index_t p : worlds) {
      const double t = epoch_seconds(w, p);
      if (p == 1) base = t;
      table.add(p, t, base / t, p);
    }
    table.print_table();
    table.write_file("fig9_" + wname + "_scaling.csv");
  }
  std::cout << "\nPaper's claim: near-linear (ResNet-32) to superlinear "
               "(ResNet-50, U-Net) scaling, because the per-worker "
               "factorization shrinks faster than linearly once the local "
               "batch share drops.\n";
  return 0;
}
