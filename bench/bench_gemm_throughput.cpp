// GEMM throughput across kernel tiers and hylo::par thread counts. For
// every available tier (scalar + packed SIMD, DESIGN.md §13) this times the
// kernels the optimizer pipeline leans on — gemm (C = AB), gemm_tn (AᵀB,
// the factor-contraction shape), gram_nt (AAᵀ, the kernel-matrix shape) and
// the fused-im2col conv forward — at 512³-equivalent work over thread
// counts {1, 2, 4, hw}, checks every multithreaded result bitwise against
// the same tier's single-thread reference (the per-tier determinism
// contract), and writes BENCH_gemm.json with the per-tier numbers, the
// seed's pre-packing baseline for before/after comparison, roofline-style
// notes (arithmetic intensity, attained vs peak), and a perf note locking
// the removal of the `aik == 0.0` inner-loop early-out. A final section
// times gemm with the hylo::audit checked mode off vs on.
//
// Geometry: HYLO_BENCH_SCALE=large doubles the edge to 1024.
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "hylo/tensor/kernel_dispatch.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

// Best-of-reps wall time of a callable (first call warms the cache).
template <typename F>
double time_best(F&& f, int reps) {
  double best = 1e300;
  for (int rep = 0; rep <= reps; ++rep) {
    WallTimer t;
    f();
    if (rep > 0) best = std::min(best, t.seconds());
  }
  return best;
}

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         std::memcmp(x.data(), y.data(),
                     sizeof(real_t) * static_cast<std::size_t>(x.size())) == 0;
}

bool bitwise_equal(const Tensor4& x, const Tensor4& y) {
  return x.size() == y.size() &&
         std::memcmp(x.data(), y.data(),
                     sizeof(real_t) * static_cast<std::size_t>(x.size())) == 0;
}

}  // namespace

int main() {
  const index_t n = large_scale() ? 1024 : 512;
  const int reps = 3;
  Rng rng(20240806);

  Matrix a(n, n), b(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
    }

  // Fused-conv workload: batch of NCHW samples through a Conv2d layer (the
  // SIMD tiers run the fused-im2col packed GEMM, the scalar tier the
  // materialized per-sample patch matrices — the before/after pair).
  const index_t cn = large_scale() ? 32 : 16;
  Rng wrng(7);
  Conv2d conv(/*out_channels=*/32, /*kernel=*/3, /*stride=*/1, /*pad=*/1,
              wrng, "bench_conv");
  const Shape cin{16, 28, 28};
  const Shape cout_shape = conv.infer_shape({cin});
  Tensor4 cx(cn, cin.c, cin.h, cin.w);
  for (index_t i = 0; i < cx.size(); ++i) cx[i] = rng.normal();
  const index_t conv_s = cout_shape.h * cout_shape.w;
  const index_t conv_patch = cin.c * 3 * 3;
  const double conv_flops = 2.0 * static_cast<double>(cn) *
                            static_cast<double>(cout_shape.c) *
                            static_cast<double>(conv_patch) *
                            static_cast<double>(conv_s);
  const PassContext cctx{.training = false, .capture = false};

  // Thread counts to sweep: 1, 2, 4 and the hardware default, deduplicated.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> counts{1, 2, 4};
  if (hw > 0 && std::find(counts.begin(), counts.end(), hw) == counts.end())
    counts.push_back(hw);

  struct Kernel {
    const char* name;
    double flops;      // credited for the headline gflops field
    double flops_alt;  // secondary accounting (0 = none)
    const char* alt_name;
    Matrix (*run)(const Matrix&, const Matrix&);
  };
  const double nn = static_cast<double>(n) * static_cast<double>(n);
  const Kernel kernels[] = {
      {"gemm", 2.0 * nn * static_cast<double>(n), 0.0, nullptr,
       [](const Matrix& x, const Matrix& y) { return matmul(x, y); }},
      {"gemm_tn", 2.0 * nn * static_cast<double>(n), 0.0, nullptr,
       [](const Matrix& x, const Matrix& y) { return matmul_tn(x, y); }},
      // gram_nt delivers the same full n×n C = AAᵀ a plain gemm would, so
      // its headline gflops are dense-equivalent (2n³/t) — the apples-to-
      // apples score against gemm. gflops_triangle credits only the
      // computed upper triangle, n(n+1)/2 length-n dot products (the seed
      // bench's accounting, kept for the before/after comparison).
      {"gram_nt", 2.0 * nn * static_cast<double>(n),
       static_cast<double>(n) * (static_cast<double>(n) + 1.0) *
           static_cast<double>(n),
       "gflops_triangle",
       [](const Matrix& x, const Matrix&) { return gram_nt(x); }},
  };

  std::vector<kern::Tier> tiers{kern::Tier::kScalar};
  for (const kern::Tier t :
       {kern::Tier::kNeon, kern::Tier::kAvx2, kern::Tier::kAvx512})
    if (kern::available(t)) tiers.push_back(t);
  const kern::Tier ambient = kern::active();

  obs::Json tiers_json = obs::Json::array();
  for (const kern::Tier tier : tiers) {
    kern::set_tier(tier);
    std::cout << "tier=" << kern::tier_name(tier) << "\n";

    // Single-thread in-tier references for the per-tier bitwise contract.
    par::set_num_threads(1);
    std::vector<Matrix> reference;
    for (const auto& k : kernels) reference.push_back(k.run(a, b));
    Tensor4 conv_ref;
    conv.forward({&cx}, conv_ref, cctx);

    obs::Json by_threads = obs::Json::array();
    for (const int t : counts) {
      par::set_num_threads(t);
      obs::Json row = obs::Json::object();
      row.set("threads", t);
      std::cout << "  threads=" << t << "\n";
      for (std::size_t ki = 0; ki < std::size(kernels); ++ki) {
        const Kernel& k = kernels[ki];
        Matrix out;
        const double sec = time_best([&] { out = k.run(a, b); }, reps);
        const double gflops = k.flops / sec * 1e-9;
        const bool bitwise = bitwise_equal(out, reference[ki]);
        obs::Json jk = obs::Json::object();
        jk.set("seconds", sec);
        jk.set("gflops", gflops);
        if (k.flops_alt > 0.0) jk.set(k.alt_name, k.flops_alt / sec * 1e-9);
        jk.set("bitwise_identical", bitwise);
        row.set(k.name, std::move(jk));
        std::cout << "    " << k.name << ": " << gflops << " GFLOP/s"
                  << (bitwise ? "" : "  [MISMATCH vs 1-thread]") << "\n";
        if (!bitwise) {
          std::cerr << "bitwise mismatch: " << k.name << " at " << t
                    << " threads, tier " << kern::tier_name(tier) << "\n";
          return 1;
        }
      }
      {
        Tensor4 cy;
        const double sec =
            time_best([&] { conv.forward({&cx}, cy, cctx); }, reps);
        const double gflops = conv_flops / sec * 1e-9;
        const bool bitwise = bitwise_equal(cy, conv_ref);
        obs::Json jk = obs::Json::object();
        jk.set("seconds", sec);
        jk.set("gflops", gflops);
        jk.set("bitwise_identical", bitwise);
        row.set("conv_fused", std::move(jk));
        std::cout << "    conv_fused: " << gflops << " GFLOP/s"
                  << (bitwise ? "" : "  [MISMATCH vs 1-thread]") << "\n";
        if (!bitwise) {
          std::cerr << "bitwise mismatch: conv at " << t << " threads, tier "
                    << kern::tier_name(tier) << "\n";
          return 1;
        }
      }
      by_threads.push(std::move(row));
    }
    obs::Json tj = obs::Json::object();
    tj.set("tier", kern::tier_name(tier));
    tj.set("results", std::move(by_threads));
    tiers_json.push(std::move(tj));
  }

  // Early-out perf note (locked here): the seed kernels skipped
  // `aik == 0.0` terms inside the innermost GEMM loop. The branch is gone —
  // a 90%-sparse A must now cost the same as a dense one in the scalar
  // tier, which this measurement records.
  kern::set_tier(kern::Tier::kScalar);
  par::set_num_threads(1);
  Matrix a_sparse = a;
  Rng srng(11);
  for (index_t i = 0; i < a_sparse.size(); ++i)
    if (srng.uniform() < 0.9) a_sparse[i] = 0.0;
  Matrix tmp_out;
  const double sec_dense = time_best([&] { tmp_out = matmul(a, b); }, reps);
  const double sec_sparse =
      time_best([&] { tmp_out = matmul(a_sparse, b); }, reps);
  obs::Json early_out = obs::Json::object();
  early_out.set("note",
                "data-dependent `aik == 0.0` early-outs were removed from "
                "the GEMM inner loops: they defeat vectorization and only "
                "pay off for pathological sparsity; dense and 90%-sparse "
                "inputs now run at the same rate (scalar tier, 1 thread)");
  early_out.set("gflops_dense", kernels[0].flops / sec_dense * 1e-9);
  early_out.set("gflops_90pct_sparse", kernels[0].flops / sec_sparse * 1e-9);

  // Audit-mode overhead: gemm with checked execution off vs on. Audit mode
  // runs chunks serially, so compare at 1 thread for like-for-like numbers
  // (scalar tier — the lane CI runs the auditor in).
  const double gemm_flops = kernels[0].flops;
  const bool audit_was = audit::set_enabled(false);
  Matrix audit_out;
  const double sec_off = time_best([&] { audit_out = matmul(a, b); }, reps);
  audit::set_enabled(true);
  const double sec_on = time_best([&] { audit_out = matmul(a, b); }, reps);
  audit::set_enabled(audit_was);
  obs::Json audit_row = obs::Json::object();
  audit_row.set("kernel", "gemm");
  audit_row.set("tier", "scalar");
  audit_row.set("threads", 1);
  audit_row.set("gflops_audit_off", gemm_flops / sec_off * 1e-9);
  audit_row.set("gflops_audit_on", gemm_flops / sec_on * 1e-9);
  audit_row.set("overhead_x", sec_on / sec_off);
  std::cout << "audit overhead (gemm, scalar, 1 thread): "
            << sec_on / sec_off << "x\n";

  par::set_num_threads(0);  // restore the environment defaults
  kern::set_tier(ambient);

  // Roofline context for the numbers above: at n=512 the GEMM streams
  // 3n²·8 bytes for 2n³ flops (AI = n/12 ≈ 42.7 flop/byte with packing
  // reuse), far above the ~0.1 flop/byte ridge of any modern core — the
  // kernel is compute-bound and attained/peak is the honest score.
  obs::Json roofline = obs::Json::object();
  roofline.set("arithmetic_intensity_flops_per_byte",
               static_cast<double>(n) / 12.0);
  roofline.set("ai_formula", "2n^3 / (3 n^2 * 8 bytes) = n/12; compute-bound "
                             "for any n >= ~8 on current cores");
  roofline.set("peak_formula",
               "freq_ghz * simd_lanes * 2 (fma) * fma_ports GFLOP/s per "
               "core; doubles/vector: scalar 1, neon 2, avx2 4, avx512 8");
  roofline.set(
      "note",
      "the packed microkernel (8 rows x 1 B-vector, k innermost) sustains "
      "one B load + MR broadcast-fmas per k step from L1-resident panels; "
      "attained/peak is bounded by the 2-load-per-fma-group port pressure "
      "and the packing traffic, not DRAM bandwidth");

  // The seed's pre-packing single-thread numbers (scalar i-k-j loop nests,
  // commit 849c1ed) — the "before" for the tiered results above.
  obs::Json seed = obs::Json::object();
  seed.set("n", static_cast<std::int64_t>(512));
  seed.set("threads", 1);
  seed.set("gemm_gflops", 2.9497340502276876);
  seed.set("gemm_tn_gflops", 3.871743540505168);
  seed.set("gram_nt_gflops_triangle", 1.5723236539657957);
  // Dense-equivalent rescale of the same measurement: x 2n^3 / (n(n+1)n).
  seed.set("gram_nt_gflops", 1.5723236539657957 * 2.0 * 512.0 / 513.0);
  seed.set("note",
           "seed gram_nt ran at half the speed of plain gemm under "
           "triangle-credited accounting, i.e. its symmetric shortcut "
           "barely broke even with a dense gemm; the packed path computes "
           "the upper triangle through the microkernel and mirrors once "
           "per row block, so its dense-equivalent gflops now beat gemm");

  obs::Json doc = obs::Json::object();
  doc.set("bench", "gemm_throughput");
  doc.set("n", static_cast<std::int64_t>(n));
  doc.set("reps", reps);
  doc.set("hardware_concurrency", hw);
  doc.set("conv_workload",
          "batch " + std::to_string(cn) + " x 16x28x28, conv 32c 3x3 s1 p1, "
          "forward (fused im2col in SIMD tiers, materialized in scalar)");
  doc.set("tiers", std::move(tiers_json));
  doc.set("seed_baseline", std::move(seed));
  doc.set("roofline", std::move(roofline));
  doc.set("notes", std::move(early_out));
  doc.set("audit_overhead", std::move(audit_row));
  std::ofstream out("BENCH_gemm.json");
  doc.dump(out);
  out << "\n";
  std::cout << "wrote BENCH_gemm.json\n";
  return 0;
}
