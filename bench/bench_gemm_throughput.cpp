// GEMM throughput across hylo::par thread counts. Times the three kernels
// the optimizer pipeline leans on — gemm (C = AB), gemm_tn (AᵀB, the
// factor-contraction shape) and gram_nt (AAᵀ, the kernel-matrix shape) — at
// 512³ over HYLO thread counts {1, 2, 4, hw}, checks every multithreaded
// result bitwise against the single-thread reference, and writes
// BENCH_gemm.json (GFLOP/s per kernel per thread count) for the repo record.
// A final section times gemm with the hylo::audit checked mode toggled off
// vs on (same geometry, 1 thread — audit serializes anyway) so the cost of
// HYLO_AUDIT=1 is recorded next to the numbers it guards.
//
// Geometry: HYLO_BENCH_SCALE=large doubles the edge to 1024.
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

// Best-of-reps wall time of a callable (first call warms the cache).
template <typename F>
double time_best(F&& f, int reps) {
  double best = 1e300;
  for (int rep = 0; rep <= reps; ++rep) {
    WallTimer t;
    f();
    if (rep > 0) best = std::min(best, t.seconds());
  }
  return best;
}

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         std::memcmp(x.data(), y.data(),
                     sizeof(real_t) * static_cast<std::size_t>(x.size())) == 0;
}

struct KernelResult {
  std::string name;
  double seconds = 0.0;
  double gflops = 0.0;
  bool bitwise = true;  ///< matches the 1-thread result exactly
};

}  // namespace

int main() {
  const index_t n = large_scale() ? 1024 : 512;
  const int reps = 3;
  Rng rng(20240806);

  Matrix a(n, n), b(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
    }

  // Thread counts to sweep: 1, 2, 4 and the hardware default, deduplicated.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> counts{1, 2, 4};
  if (hw > 0 && std::find(counts.begin(), counts.end(), hw) == counts.end())
    counts.push_back(hw);

  struct Kernel {
    const char* name;
    double flops;
    Matrix (*run)(const Matrix&, const Matrix&);
  };
  const double nn = static_cast<double>(n) * static_cast<double>(n);
  const Kernel kernels[] = {
      {"gemm", 2.0 * nn * static_cast<double>(n),
       [](const Matrix& x, const Matrix& y) { return matmul(x, y); }},
      {"gemm_tn", 2.0 * nn * static_cast<double>(n),
       [](const Matrix& x, const Matrix& y) { return matmul_tn(x, y); }},
      // Symmetric output: n(n+1)/2 dot products of length n.
      {"gram_nt",
       static_cast<double>(n) * (static_cast<double>(n) + 1.0) *
           static_cast<double>(n),
       [](const Matrix& x, const Matrix&) { return gram_nt(x); }},
  };

  // Single-thread reference results for the bitwise check.
  par::set_num_threads(1);
  std::vector<Matrix> reference;
  for (const auto& k : kernels) reference.push_back(k.run(a, b));

  obs::Json by_threads = obs::Json::array();
  for (const int t : counts) {
    par::set_num_threads(t);
    obs::Json row = obs::Json::object();
    row.set("threads", t);
    std::cout << "threads=" << t << "\n";
    for (std::size_t ki = 0; ki < std::size(kernels); ++ki) {
      const Kernel& k = kernels[ki];
      KernelResult r;
      r.name = k.name;
      Matrix out;
      r.seconds = time_best([&] { out = k.run(a, b); }, reps);
      r.gflops = k.flops / r.seconds * 1e-9;
      r.bitwise = bitwise_equal(out, reference[ki]);
      obs::Json jk = obs::Json::object();
      jk.set("seconds", r.seconds);
      jk.set("gflops", r.gflops);
      jk.set("bitwise_identical", r.bitwise);
      row.set(r.name, std::move(jk));
      std::cout << "  " << r.name << ": " << r.gflops << " GFLOP/s"
                << (r.bitwise ? "" : "  [MISMATCH vs 1-thread]") << "\n";
      if (!r.bitwise) {
        std::cerr << "bitwise mismatch: " << r.name << " at " << t
                  << " threads\n";
        return 1;
      }
    }
    by_threads.push(std::move(row));
  }
  par::set_num_threads(0);  // restore the environment default

  // Audit-mode overhead: gemm with checked execution off vs on. Audit mode
  // runs chunks serially, so compare at 1 thread for like-for-like numbers.
  par::set_num_threads(1);
  const double gemm_flops = kernels[0].flops;
  const bool audit_was = audit::set_enabled(false);
  Matrix audit_out;
  const double sec_off =
      time_best([&] { audit_out = matmul(a, b); }, reps);
  audit::set_enabled(true);
  const double sec_on = time_best([&] { audit_out = matmul(a, b); }, reps);
  const bool audit_bitwise = bitwise_equal(audit_out, reference[0]);
  audit::set_enabled(audit_was);
  par::set_num_threads(0);
  obs::Json audit_row = obs::Json::object();
  audit_row.set("kernel", "gemm");
  audit_row.set("threads", 1);
  audit_row.set("gflops_audit_off", gemm_flops / sec_off * 1e-9);
  audit_row.set("gflops_audit_on", gemm_flops / sec_on * 1e-9);
  audit_row.set("overhead_x", sec_on / sec_off);
  audit_row.set("bitwise_identical", audit_bitwise);
  std::cout << "audit overhead (gemm, 1 thread): off="
            << gemm_flops / sec_off * 1e-9 << " GFLOP/s, on="
            << gemm_flops / sec_on * 1e-9 << " GFLOP/s ("
            << sec_on / sec_off << "x)"
            << (audit_bitwise ? "" : "  [MISMATCH]") << "\n";
  if (!audit_bitwise) {
    std::cerr << "bitwise mismatch under audit mode\n";
    return 1;
  }

  obs::Json doc = obs::Json::object();
  doc.set("bench", "gemm_throughput");
  doc.set("n", static_cast<std::int64_t>(n));
  doc.set("reps", reps);
  doc.set("hardware_concurrency", hw);
  doc.set("results", std::move(by_threads));
  doc.set("audit_overhead", std::move(audit_row));
  std::ofstream out("BENCH_gemm.json");
  doc.dump(out);
  out << "\n";
  std::cout << "wrote BENCH_gemm.json\n";
  return 0;
}
