// Fig. 7 reproduction: per-stage computation (factorization, inversion) and
// communication (gather, broadcast) time of HyLo — reported separately for
// its KID and KIS iterations, as the paper does — against KAISA, on the
// ResNet-50 (P=8), U-Net (P=4) and ResNet-32 (P=8) proxies.
//
// Each method runs a fixed number of curvature-refresh iterations on live
// captures from real training batches (update_freq=1); the table reports
// the average per-refresh stage times. Compute stages are measured and
// scaled by the parallelism rule (DESIGN.md §5); gather/broadcast are
// charged by the α-β model.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

struct Breakdown {
  double factor_ms = 0, invert_ms = 0, gather_ms = 0, bcast_ms = 0;
  double total() const { return factor_ms + invert_ms + gather_ms + bcast_ms; }
};

Breakdown profile_method(const Workload& w, const std::string& method,
                         index_t world, index_t refreshes) {
  Network net = w.make_model();
  OptimConfig oc = method_config(method == "KAISA" ? "KAISA" : "HyLo");
  oc.update_freq = 1;  // every iteration refreshes

  std::unique_ptr<Optimizer> opt;
  if (method == "KAISA") {
    opt = make_optimizer("KAISA", oc);
  } else {
    auto hylo = std::make_unique<HyloOptimizer>(oc);
    hylo->set_policy(method == "HyLo/KID" ? HyloOptimizer::Policy::kAlwaysKid
                                          : HyloOptimizer::Policy::kAlwaysKis);
    opt = std::move(hylo);
  }
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  tc.world = world;
  tc.interconnect = mist_v100();
  tc.max_iters_per_epoch = refreshes;
  apply_env_telemetry(tc, "fig7/" + w.paper_name + "/" + method);
  Trainer trainer(net, *opt, w.data, tc);
  trainer.run();

  // Read the per-phase timings straight from the metrics registry (the
  // Profiler facade writes into it); same numbers the run log snapshots.
  const obs::MetricsRegistry& reg = trainer.profiler().registry();
  const double n = static_cast<double>(refreshes);
  const double pw = static_cast<double>(world);
  Breakdown b;
  b.factor_ms = reg.timing_seconds("comp/factorization") / pw / n * 1e3;
  b.invert_ms = std::max(reg.timing_seconds("comp/inversion") / pw,
                         reg.timing_seconds("comp/inversion_critical")) /
                n * 1e3;
  b.gather_ms = reg.timing_seconds("comm/gather") / n * 1e3;
  b.bcast_ms = reg.timing_seconds("comm/broadcast") / n * 1e3;
  return b;
}

}  // namespace

int main() {
  struct Setup {
    std::string workload;
    index_t world;
  };
  const std::vector<Setup> setups = {
      {"resnet50", 8}, {"unet", 4}, {"resnet32", 8}};
  const index_t refreshes = large_scale() ? 10 : 3;

  for (const auto& setup : setups) {
    const Workload w = make_workload(setup.workload);
    std::cout << "\nFig. 7 — per-refresh stage times, " << w.paper_name
              << " (P=" << setup.world << ")\n\n";
    CsvWriter table({"method", "factorization_ms", "inversion_ms",
                     "gather_ms", "broadcast_ms", "total_ms"});
    Breakdown kaisa;
    double hylo_best_total = 1e300;
    for (const std::string method : {"HyLo/KID", "HyLo/KIS", "KAISA"}) {
      const Breakdown b = profile_method(w, method, setup.world, refreshes);
      table.add(method, b.factor_ms, b.invert_ms, b.gather_ms, b.bcast_ms,
                b.total());
      if (method == "KAISA") kaisa = b;
      else hylo_best_total = std::min(hylo_best_total, b.total());
    }
    table.print_table();
    table.write_file("fig7_" + setup.workload + "_breakdown.csv");
    std::cout << "\nKAISA/HyLo total-stage ratio: "
              << kaisa.total() / hylo_best_total
              << "x (paper reports 9x-350x per stage on full-size layers; "
                 "KIS factorization is the cheapest stage, KID the more "
                 "accurate-but-slower one)\n";
  }
  return 0;
}
