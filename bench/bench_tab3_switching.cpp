// Table III reproduction: HyLo's gradient-based switching vs Random
// switching (KID/KIS with probability 0.5 each epoch) on the ResNet-50,
// ResNet-32 and U-Net proxies. The paper's claims: Random matches or
// slightly trails HyLo's accuracy but is 7.5%-91% *slower*, because it runs
// the expensive KID updates on non-critical epochs.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

struct Outcome {
  real_t accuracy = 0;
  double seconds = 0;
  index_t kid_epochs = 0, total_epochs = 0;
};

Outcome run(const Workload& w, HyloOptimizer::Policy policy, index_t world,
            index_t epochs) {
  Network net = w.make_model();
  OptimConfig oc = method_config("HyLo");
  oc.update_freq = 5;
  HyloOptimizer opt(oc);
  opt.set_policy(policy);
  TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 8;
  tc.world = world;
  tc.interconnect = mist_v100();
  tc.max_iters_per_epoch = large_scale() ? -1 : 8;
  tc.lr_schedule = {{epochs * 2 / 3}, 0.1};
  apply_env_telemetry(
      tc, "tab3/" + w.paper_name + "/" +
              (policy == HyloOptimizer::Policy::kGradientBased ? "gradient"
                                                               : "random"));
  Trainer trainer(net, opt, w.data, tc);
  const TrainResult res = trainer.run();
  Outcome o;
  o.accuracy = res.best_metric();
  o.seconds = res.total_seconds;
  for (const auto m : opt.mode_history()) o.kid_epochs += m == HyloMode::kKid;
  o.total_epochs = static_cast<index_t>(opt.mode_history().size());
  return o;
}

}  // namespace

int main() {
  struct Setup {
    std::string workload;
    index_t world;
  };
  const std::vector<Setup> setups = {
      {"resnet50", 8}, {"resnet32", 8}, {"unet", 4}};
  const index_t epochs = large_scale() ? 16 : 7;

  std::cout << "Table III — gradient-based switching (HyLo) vs Random "
               "switching\n\n";
  CsvWriter table({"model", "policy", "best_metric", "sim_seconds",
                   "KID_epochs", "slowdown_vs_HyLo_%"});
  for (const auto& setup : setups) {
    const Workload w = make_workload(setup.workload);
    const Outcome hylo =
        run(w, HyloOptimizer::Policy::kGradientBased, setup.world, epochs);
    const Outcome random =
        run(w, HyloOptimizer::Policy::kRandom, setup.world, epochs);
    table.add(w.paper_name, "HyLo", hylo.accuracy, hylo.seconds,
              std::to_string(hylo.kid_epochs) + "/" +
                  std::to_string(hylo.total_epochs),
              0.0);
    table.add(w.paper_name, "Random", random.accuracy, random.seconds,
              std::to_string(random.kid_epochs) + "/" +
                  std::to_string(random.total_epochs),
              100.0 * (random.seconds - hylo.seconds) / hylo.seconds);
  }
  table.print_table();
  table.write_file("tab3_switching.csv");
  std::cout << "\nPaper: Random is 7.5% (ResNet-50), 91% (ResNet-32) and "
               "8.5% (U-Net) slower at equal-or-lower accuracy, because it "
               "wastes KID updates on non-critical epochs.\n";
  return 0;
}
