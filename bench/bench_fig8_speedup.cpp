// Fig. 8 reproduction: projected end-to-end training speedup of HyLo over
// SGD as the worker count grows, for r = 10%, 20% and 40% of the global
// batch. Following the paper's protocol: measure the average time-per-epoch
// of each method over a few epochs, project to the full training length
// (SGD needs more epochs than HyLo — 90 vs 50 for ResNet-50, 200 vs 100 for
// ResNet-32, 50 vs 30 for U-Net), and report the ratio. The curvature
// update frequency is scaled inversely with P (as the paper does) to keep
// updates-per-sample constant.
#include <iostream>

#include "bench_common.hpp"

using namespace hylo;
using namespace hylo::bench;

namespace {

double epoch_seconds(const Workload& w, const std::string& method,
                     index_t world, real_t rank_ratio, index_t freq_base) {
  Network net = w.make_model();
  OptimConfig oc = method_config(method);
  oc.rank_ratio = rank_ratio;
  // Keep second-order updates per training sample constant across P.
  oc.update_freq = std::max<index_t>(1, freq_base / world);
  auto opt = make_optimizer(method, oc);
  const index_t batch = 8;
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = batch;
  tc.world = world;
  tc.interconnect = mist_v100();
  // Sample a few iterations and project to a full epoch over the dataset
  // (the paper likewise measures 3 epochs and projects the whole training).
  tc.max_iters_per_epoch =
      large_scale() ? -1 : std::max<index_t>(2, 48 / world);
  apply_env_telemetry(tc, "fig8/" + w.paper_name + "/" + method + "/P" +
                              std::to_string(world));
  Trainer trainer(net, *opt, w.data, tc);
  const TrainResult res = trainer.run();
  const double per_iter =
      res.total_seconds / static_cast<double>(res.iterations);
  const double iters_per_epoch = static_cast<double>(w.data.train.size()) /
                                 static_cast<double>(world * batch);
  return per_iter * iters_per_epoch;
}

}  // namespace

int main() {
  struct Setup {
    std::string workload;
    double sgd_epochs, hylo_epochs;  // projection lengths from the paper
    std::vector<index_t> worlds;
  };
  const std::vector<Setup> setups = {
      {"resnet50", 90, 50, {8, 16, 32, 64}},
      {"resnet32", 200, 100, {4, 8, 16, 32}},
      {"unet", 50, 30, {4, 8, 16, 32}}};

  for (const auto& setup : setups) {
    const Workload w = make_workload(setup.workload);
    std::cout << "\nFig. 8 — projected end-to-end speedup of HyLo over SGD, "
              << w.paper_name << " (SGD " << setup.sgd_epochs
              << " epochs vs HyLo " << setup.hylo_epochs << ")\n\n";
    CsvWriter table({"P", "r=10%", "r=20%", "r=40%"});
    for (const index_t p : setup.worlds) {
      const double sgd =
          epoch_seconds(w, "SGD", p, 0.1, 160) * setup.sgd_epochs;
      std::vector<std::string> row = {std::to_string(p)};
      for (const real_t ratio : {0.1, 0.2, 0.4}) {
        const double hylo =
            epoch_seconds(w, "HyLo", p, ratio, 160) * setup.hylo_epochs;
        row.push_back(std::to_string(sgd / hylo));
      }
      table.add_row(std::move(row));
    }
    table.print_table();
    table.write_file("fig8_" + setup.workload + "_speedup.csv");
  }
  std::cout << "\nPaper's claims: speedup improves with P (up to ~1.9x at "
               "the largest scale), and smaller r gives a faster HyLo "
               "(r=10% > r=20% > r=40%).\n";
  return 0;
}
