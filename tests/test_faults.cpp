// Deterministic fault injection: spec parsing, schedule determinism, the
// comm-path accounting split (kRetryUntilSuccess vs kMayFail), optimizer
// stale-curvature degradation, and trainer-level resilience. Every test
// pins cfg.faults (or configure_faults) explicitly so an ambient
// HYLO_FAULTS environment — e.g. the faults_env ctest variant — cannot
// perturb the assertions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "hylo/hylo.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

FaultConfig only_rank_down(std::uint64_t seed, double rate) {
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.rate = rate;
  cfg.timeout_weight = cfg.straggler_weight = cfg.corrupt_weight = 0.0;
  cfg.rank_down_weight = 1.0;
  return cfg;
}

CaptureSet make_capture(Rng& rng, index_t world, index_t m, index_t din,
                        index_t dout) {
  CaptureSet cap;
  cap.a.resize(1);
  cap.g.resize(1);
  for (index_t r = 0; r < world; ++r) {
    cap.a[0].push_back(testutil::random_matrix(rng, m, din));
    cap.g[0].push_back(testutil::random_matrix(rng, m, dout));
  }
  return cap;
}

TEST(FaultConfig, ParsesSeedRateAndMix) {
  const FaultConfig plain = FaultConfig::parse("7:0.1");
  EXPECT_EQ(plain.seed, 7u);
  EXPECT_EQ(plain.rate, 0.1);
  EXPECT_EQ(plain.timeout_weight, 1.0);
  EXPECT_EQ(plain.rank_down_weight, 1.0);
  EXPECT_TRUE(plain.enabled());

  // An explicit mix replaces the all-ones default: unnamed kinds are off.
  const FaultConfig mix = FaultConfig::parse("42:0.25:timeout=1,rank_down=2");
  EXPECT_EQ(mix.seed, 42u);
  EXPECT_EQ(mix.timeout_weight, 1.0);
  EXPECT_EQ(mix.straggler_weight, 0.0);
  EXPECT_EQ(mix.corrupt_weight, 0.0);
  EXPECT_EQ(mix.rank_down_weight, 2.0);

  // "corrupt" and "corrupt_payload" are aliases.
  EXPECT_EQ(FaultConfig::parse("1:0.5:corrupt=3").corrupt_weight, 3.0);
  EXPECT_EQ(FaultConfig::parse("1:0.5:corrupt_payload=3").corrupt_weight, 3.0);

  // rate 0 is a valid, disabled config (the bench baseline uses this).
  EXPECT_FALSE(FaultConfig::parse("7:0").enabled());
}

TEST(FaultConfig, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultConfig::parse(""), Error);
  EXPECT_THROW(FaultConfig::parse("7"), Error);
  EXPECT_THROW(FaultConfig::parse("x:0.1"), Error);
  EXPECT_THROW(FaultConfig::parse("-1:0.1"), Error);
  EXPECT_THROW(FaultConfig::parse("7:1.5"), Error);
  EXPECT_THROW(FaultConfig::parse("7:-0.1"), Error);
  EXPECT_THROW(FaultConfig::parse("7:0.1:bogus=1"), Error);
  EXPECT_THROW(FaultConfig::parse("7:0.1:timeout"), Error);
  EXPECT_THROW(FaultConfig::parse("7:0.1:timeout=-1"), Error);
  // rate > 0 with every kind weighted zero can never draw an event.
  EXPECT_THROW(FaultConfig::parse("7:0.1:timeout=0"), Error);
}

TEST(FaultConfig, ReadsEnvironmentSpec) {
  ::setenv("HYLO_FAULTS", "5:0.2:straggler=2", 1);
  const auto cfg = FaultConfig::from_env();
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->seed, 5u);
  EXPECT_EQ(cfg->rate, 0.2);
  EXPECT_EQ(cfg->straggler_weight, 2.0);
  EXPECT_EQ(cfg->timeout_weight, 0.0);
  ::unsetenv("HYLO_FAULTS");
  EXPECT_FALSE(FaultConfig::from_env().has_value());
}

TEST(FaultPlan, SameSeedSameSchedule) {
  const FaultConfig cfg = FaultConfig::parse("13:0.3");
  FaultPlan a(cfg), b(cfg);
  int injected = 0;
  for (int i = 0; i < 500; ++i) {
    const FaultEvent ea = a.next(8), eb = b.next(8);
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.rank, eb.rank);
    EXPECT_EQ(ea.slowdown, eb.slowdown);
    EXPECT_EQ(ea.retries, eb.retries);
    EXPECT_EQ(ea.recoverable, eb.recoverable);
    if (ea.kind != FaultKind::kNone) ++injected;
  }
  EXPECT_EQ(a.drawn(), 500);
  EXPECT_EQ(b.drawn(), 500);
  // A 30% rate over 500 draws lands well inside [100, 200] for any seed.
  EXPECT_GT(injected, 100);
  EXPECT_LT(injected, 200);

  // A different seed diverges somewhere in the schedule.
  FaultConfig other = cfg;
  other.seed = 14;
  FaultPlan c(other);
  bool diverged = false;
  FaultPlan a2(cfg);
  for (int i = 0; i < 500 && !diverged; ++i)
    diverged = a2.next(8).kind != c.next(8).kind;
  EXPECT_TRUE(diverged);
}

TEST(FaultPlan, RateBoundsAndKindSelection) {
  // rate 0: every draw is kNone (and the plan reports inactive).
  FaultPlan quiet(FaultConfig::parse("7:0"));
  EXPECT_FALSE(quiet.active());
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(quiet.next(4).kind, FaultKind::kNone);

  // rate 1 with a rank_down-only mix: every draw is an unrecoverable
  // rank_down with a sane affected-rank index.
  FaultPlan storm(only_rank_down(3, 1.0));
  for (int i = 0; i < 100; ++i) {
    const FaultEvent ev = storm.next(4);
    EXPECT_EQ(ev.kind, FaultKind::kRankDown);
    EXPECT_FALSE(ev.recoverable);
    EXPECT_GE(ev.rank, 0);
    EXPECT_LT(ev.rank, 4);
  }

  // Straggler slowdowns stay inside the documented 2x..16x band.
  FaultPlan slow(FaultConfig::parse("11:1:straggler=1"));
  for (int i = 0; i < 100; ++i) {
    const FaultEvent ev = slow.next(4);
    EXPECT_EQ(ev.kind, FaultKind::kStraggler);
    EXPECT_GE(ev.slowdown, 2.0);
    EXPECT_LE(ev.slowdown, 16.0);
  }
}

TEST(CommSimFaults, RetryUntilSuccessNeverThrows) {
  // Even a 100% rank_down storm cannot fail a must-complete collective:
  // the fabric re-forms and the extra attempts are charged as time.
  CommSim comm(4, mist_v100());
  comm.configure_faults(only_rank_down(3, 1.0));
  for (int i = 0; i < 20; ++i)
    comm.charge_allreduce(1 << 16, "comm/grad_allreduce",
                          FailMode::kRetryUntilSuccess);
  auto& reg = comm.profiler().registry();
  EXPECT_EQ(reg.counter_value("comm/faults/injected"), 20);
  EXPECT_EQ(reg.counter_value("comm/faults/forced_recovery"), 20);
  EXPECT_EQ(reg.counter_value("comm/faults/unrecoverable"), 0);
  // Each recovery costs strictly more than the clean collective.
  const double clean = 20.0 * allreduce_seconds(comm.model(), 4, 1 << 16);
  EXPECT_GT(comm.comm_seconds(), clean);
}

TEST(CommSimFaults, MayFailThrowsChargedCommFailure) {
  CommSim comm(4, mist_v100());
  comm.configure_faults(only_rank_down(3, 1.0));
  EXPECT_THROW(comm.charge_broadcast(1 << 16, "comm/factor_bcast"), CommFailure);
  auto& reg = comm.profiler().registry();
  EXPECT_EQ(reg.counter_value("comm/faults/injected"), 1);
  EXPECT_EQ(reg.counter_value("comm/faults/rank_down"), 1);
  EXPECT_EQ(reg.counter_value("comm/faults/unrecoverable"), 1);
  // The wasted attempt is charged even though the collective failed...
  EXPECT_GT(comm.profiler().seconds("comm/faults/wasted"), 0.0);
  // ...but the section itself never completed: no seconds, bytes, or msgs.
  EXPECT_EQ(comm.profiler().seconds("comm/factor_bcast"), 0.0);
  EXPECT_EQ(comm.wire_bytes_charged("comm/factor_bcast"), 0);
  EXPECT_EQ(comm.messages("comm/factor_bcast"), 0);
}

TEST(CommSimFaults, FaultsInflateTimeNotWireBytes) {
  // The fault plan perturbs modeled seconds only: the logical payload
  // accounting (bytes/messages per section) is identical to a clean run.
  auto charge_all = [](CommSim& comm) {
    for (int i = 0; i < 40; ++i) {
      comm.charge_allreduce(1 << 14, "comm/grad_allreduce",
                            FailMode::kRetryUntilSuccess);
      comm.charge_allgather(1 << 12, "comm/gather",
                            FailMode::kRetryUntilSuccess);
    }
  };
  CommSim clean(8, mist_v100()), faulty(8, mist_v100());
  FaultConfig cfg = FaultConfig::parse("17:0.5");
  faulty.configure_faults(cfg);
  charge_all(clean);
  charge_all(faulty);
  EXPECT_GT(faulty.comm_seconds(), clean.comm_seconds());
  EXPECT_EQ(faulty.total_wire_bytes(), clean.total_wire_bytes());
  EXPECT_EQ(faulty.total_messages(), clean.total_messages());
  EXPECT_GT(faulty.profiler().registry().counter_value("comm/faults/injected"),
            0);
}

TEST(CommSimFaults, RetryStormLandsInSeparateRetryLedger) {
  // A timeout-only storm at high rate: every retried attempt re-sends its
  // payload, and those bytes must land in total_retry_bytes() — never in
  // total_wire_bytes(), which stays equal to a clean run's total so
  // compression/volume comparisons remain apples-to-apples.
  const index_t payload = 1 << 14;
  CommSim comm(8, mist_v100());
  comm.configure_faults(FaultConfig::parse("9:0.9:timeout=1"));
  for (int i = 0; i < 50; ++i)
    comm.charge_allreduce(payload, "comm/grad_allreduce",
                          FailMode::kRetryUntilSuccess);
  const auto& reg = comm.profiler().registry();
  const std::int64_t retries = reg.counter_value("comm/faults/retries");
  ASSERT_GT(retries, 0);  // rate 0.9 over 50 collectives: storm happened
  // Every retry re-sent exactly one allreduce payload.
  EXPECT_EQ(comm.total_retry_bytes(), payload * retries);
  // The logical wire ledger is what a clean run would have charged.
  CommSim clean(8, mist_v100());
  for (int i = 0; i < 50; ++i)
    clean.charge_allreduce(payload, "comm/grad_allreduce",
                           FailMode::kRetryUntilSuccess);
  EXPECT_EQ(clean.total_retry_bytes(), 0);
  EXPECT_EQ(comm.total_wire_bytes(), clean.total_wire_bytes());
  // Everything-that-moved = logical + waste.
  EXPECT_EQ(comm.total_wire_bytes() + comm.total_retry_bytes(),
            clean.total_wire_bytes() + payload * retries);
}

TEST(OptimizerDegradation, HyloKeepsStaleFactorsOnUnrecoverableGather) {
  Rng rng(5);
  const index_t world = 2, m = 8, din = 6, dout = 5;
  const CaptureSet cap1 = make_capture(rng, world, m, din, dout);
  const CaptureSet cap2 = make_capture(rng, world, m, din, dout);

  OptimConfig cfg;
  cfg.damping = 0.3;
  cfg.rank_ratio = 1.0;
  HyloOptimizer opt(cfg);
  opt.set_policy(HyloOptimizer::Policy::kAlwaysKid);
  opt.begin_epoch(0, false);

  ParamBlock pb;
  CommSim comm(world, mist_v100());
  opt.update_curvature({&pb}, cap1, &comm);
  EXPECT_EQ(opt.layer_staleness(0), 0);
  const Matrix grad = testutil::random_matrix(rng, dout, din);
  const Matrix fresh = opt.preconditioned(grad, 0);

  // Every collective now dies: the refresh must not throw, and the layer
  // keeps serving the factors from the refresh that landed.
  comm.configure_faults(only_rank_down(3, 1.0));
  EXPECT_NO_THROW(opt.update_curvature({&pb}, cap2, &comm));
  EXPECT_EQ(opt.layer_staleness(0), 1);
  EXPECT_EQ(max_abs_diff(opt.preconditioned(grad, 0), fresh), 0.0);
  auto& reg = comm.profiler().registry();
  EXPECT_EQ(reg.counter_value("optim/hylo/stale_refreshes"), 1);

  // Staleness keeps aging across further lost refreshes...
  opt.update_curvature({&pb}, cap1, &comm);
  EXPECT_EQ(opt.layer_staleness(0), 2);

  // ...and one successful refresh resets it.
  comm.configure_faults(FaultConfig{});
  opt.update_curvature({&pb}, cap2, &comm);
  EXPECT_EQ(opt.layer_staleness(0), 0);
}

TEST(OptimizerDegradation, NeverBuiltLayerHasNoFactorsButCounts) {
  Rng rng(6);
  const index_t world = 2;
  const CaptureSet cap = make_capture(rng, world, 8, 6, 5);
  OptimConfig cfg;
  cfg.damping = 0.3;
  HyloOptimizer opt(cfg);
  opt.set_policy(HyloOptimizer::Policy::kAlwaysKid);
  opt.begin_epoch(0, false);

  ParamBlock pb;
  CommSim comm(world, mist_v100());
  comm.configure_faults(only_rank_down(3, 1.0));
  EXPECT_NO_THROW(opt.update_curvature({&pb}, cap, &comm));
  // The very first refresh was lost: no factors exist (step() falls back to
  // the plain SGD direction via layer_ready()), but the staleness age and
  // the stale-refresh counter still record the loss.
  EXPECT_EQ(opt.layer_staleness(0), 1);
  EXPECT_THROW(opt.preconditioned(
                   testutil::random_matrix(rng, 5, 6), 0),
               Error);
  EXPECT_EQ(comm.profiler().registry().counter_value(
                "optim/hylo/stale_refreshes"),
            1);
}

TEST(OptimizerDegradation, SngdKeepsStaleFactors) {
  Rng rng(7);
  const index_t world = 2, m = 8, din = 6, dout = 5;
  const CaptureSet cap1 = make_capture(rng, world, m, din, dout);
  const CaptureSet cap2 = make_capture(rng, world, m, din, dout);
  OptimConfig cfg;
  cfg.damping = 0.3;
  Sngd opt(cfg);
  ParamBlock pb;
  CommSim comm(world, mist_v100());
  opt.update_curvature({&pb}, cap1, &comm);
  const Matrix grad = testutil::random_matrix(rng, dout, din);
  const Matrix fresh = opt.preconditioned(grad, 0);

  comm.configure_faults(only_rank_down(9, 1.0));
  EXPECT_NO_THROW(opt.update_curvature({&pb}, cap2, &comm));
  EXPECT_EQ(opt.layer_staleness(0), 1);
  EXPECT_EQ(max_abs_diff(opt.preconditioned(grad, 0), fresh), 0.0);
  EXPECT_EQ(comm.profiler().registry().counter_value(
                "optim/sngd/stale_refreshes"),
            1);
}

TEST(TrainerFaults, CompletesUnderHeavyGatherFailure) {
  // A rank_down-only storm at 25% per collective: curvature refreshes keep
  // losing their gathers/broadcasts, yet training must run to completion
  // with the degradation visible in the counters.
  const DataSplit data = make_spirals(512, 128, 2, 0.08, 11);
  Network net = make_mlp({2, 1, 1}, {16, 16}, 2, 7);
  OptimConfig oc;
  oc.lr = 0.05;
  oc.damping = 0.3;
  oc.update_freq = 2;
  oc.rank_ratio = 0.25;
  HyloOptimizer opt(oc);
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 32;
  tc.world = 4;
  tc.interconnect = mist_v100();
  tc.faults = FaultConfig::parse("9:0.25:rank_down=1");
  Trainer trainer(net, opt, data, tc);
  const TrainResult res = trainer.run();

  EXPECT_EQ(res.epochs.size(), 3u);
  EXPECT_TRUE(std::isfinite(res.best_metric()));
  EXPECT_GT(res.best_metric(), 0.0);
  auto& reg = trainer.comm().profiler().registry();
  EXPECT_GT(reg.counter_value("comm/faults/injected"), 0);
  EXPECT_GT(reg.counter_value("comm/faults/unrecoverable"), 0);
  // Gradient allreduces survived every hit as forced recoveries.
  EXPECT_GT(reg.counter_value("comm/faults/forced_recovery"), 0);
  EXPECT_GT(reg.counter_value("optim/hylo/stale_refreshes"), 0);
  ASSERT_NE(trainer.comm().fault_plan(), nullptr);
  EXPECT_GT(trainer.comm().fault_plan()->drawn(), 0);
}

TEST(TrainerFaults, SameSeedRunsAreIdentical) {
  const DataSplit data = make_spirals(512, 128, 2, 0.08, 11);
  struct Snapshot {
    TrainResult res;
    std::int64_t wire_bytes = 0, injected = 0, drawn = 0;
  };
  auto run_once = [&] {
    Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
    OptimConfig oc;
    oc.lr = 0.05;
    oc.damping = 0.3;
    oc.update_freq = 2;
    HyloOptimizer opt(oc);
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 32;
    tc.world = 4;
    tc.interconnect = mist_v100();
    tc.faults = FaultConfig::parse("21:0.2");
    Trainer trainer(net, opt, data, tc);
    Snapshot s;
    s.res = trainer.run();
    s.wire_bytes = trainer.comm().total_wire_bytes();
    s.injected = trainer.comm().profiler().registry().counter_value(
        "comm/faults/injected");
    s.drawn = trainer.comm().fault_plan()->drawn();
    return s;
  };
  const Snapshot a = run_once(), b = run_once();
  ASSERT_EQ(a.res.epochs.size(), b.res.epochs.size());
  // wall_seconds mixes in *measured* compute time and is never run-to-run
  // identical; the determinism contract covers the modeled quantities.
  for (std::size_t e = 0; e < a.res.epochs.size(); ++e) {
    EXPECT_EQ(a.res.epochs[e].train_loss, b.res.epochs[e].train_loss);
    EXPECT_EQ(a.res.epochs[e].test_metric, b.res.epochs[e].test_metric);
  }
  EXPECT_EQ(a.res.comm_seconds, b.res.comm_seconds);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.drawn, b.drawn);
  EXPECT_GT(a.injected, 0);
}

TEST(TrainerFaults, DisabledFaultsAreBitwiseInvisible) {
  // With HYLO_FAULTS unset, a run with no fault config and a run with an
  // explicitly disabled config must be bitwise identical: the comm path
  // takes zero new branches when the plan is absent.
  ::unsetenv("HYLO_FAULTS");
  const DataSplit data = make_spirals(512, 128, 2, 0.08, 11);
  struct Snapshot {
    TrainResult res;
    std::int64_t wire_bytes = 0, messages = 0;
  };
  auto run_once = [&](bool with_disabled_config) {
    Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
    OptimConfig oc;
    oc.lr = 0.05;
    oc.damping = 0.3;
    oc.update_freq = 2;
    HyloOptimizer opt(oc);
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 32;
    tc.world = 4;
    tc.interconnect = mist_v100();
    if (with_disabled_config) tc.faults = FaultConfig{};
    Trainer trainer(net, opt, data, tc);
    Snapshot s;
    s.res = trainer.run();
    s.wire_bytes = trainer.comm().total_wire_bytes();
    s.messages = trainer.comm().total_messages();
    EXPECT_FALSE(trainer.comm().faults_active());
    EXPECT_EQ(trainer.comm().profiler().registry().counter_value(
                  "comm/faults/injected"),
              0);
    return s;
  };
  const Snapshot base = run_once(false), off = run_once(true);
  ASSERT_EQ(base.res.epochs.size(), off.res.epochs.size());
  for (std::size_t e = 0; e < base.res.epochs.size(); ++e) {
    EXPECT_EQ(base.res.epochs[e].train_loss, off.res.epochs[e].train_loss);
    EXPECT_EQ(base.res.epochs[e].test_loss, off.res.epochs[e].test_loss);
    EXPECT_EQ(base.res.epochs[e].test_metric, off.res.epochs[e].test_metric);
  }
  EXPECT_EQ(base.res.comm_seconds, off.res.comm_seconds);
  EXPECT_EQ(base.wire_bytes, off.wire_bytes);
  EXPECT_EQ(base.messages, off.messages);
}

}  // namespace
}  // namespace hylo
