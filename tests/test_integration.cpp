// Cross-module integration properties of the distributed simulation.
#include <gtest/gtest.h>

#include <memory>

#include "hylo/hylo.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

// The lockstep world=2 trainer must produce exactly the update that two
// physical data-parallel replicas would: average of the two shards' batch
// gradients, applied identically.
TEST(Integration, DistributedGradientEqualsManualAverage) {
  const index_t m = 8;
  const DataSplit data = make_spirals(4 * m, 8, 2, 0.1, 3);

  // --- Trainer path: world=2, one iteration, plain SGD ------------------
  Network net_a = make_mlp({2, 1, 1}, {6}, 2, 11);
  OptimConfig oc;
  oc.lr = 0.25;
  oc.momentum = 0.0;
  oc.weight_decay = 0.0;
  Sgd opt(oc);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = m;
  tc.world = 2;
  tc.max_iters_per_epoch = 1;
  tc.data_seed = 99;
  Trainer trainer(net_a, opt, data, tc);
  trainer.run();

  // --- Manual path: same shards through an identical replica ------------
  Network net_b = make_mlp({2, 1, 1}, {6}, 2, 11);
  const PassContext ctx{.training = true, .capture = false};
  net_b.zero_grad();
  SoftmaxCrossEntropy ce;
  for (index_t rank = 0; rank < 2; ++rank) {
    DataLoader loader(data.train, m, 99, rank, 2);
    loader.start_epoch(0);
    Batch b;
    ASSERT_TRUE(loader.next(b));
    const Tensor4& out = net_b.forward(b.images, ctx);
    const LossResult lr = ce.compute(out, b.labels);
    net_b.backward(lr.grad, ctx);
  }
  for (auto* pb : net_b.param_blocks()) {
    pb->gw *= 0.5;  // allreduce-average
    axpy(pb->w, pb->gw, -oc.lr);
  }

  auto pa = net_a.param_blocks();
  auto pb = net_b.param_blocks();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t l = 0; l < pa.size(); ++l)
    EXPECT_LT(max_abs_diff(pa[l]->w, pb[l]->w), 1e-12) << "layer " << l;
}

// Training with more workers at the same global batch must not change the
// number of samples consumed per epoch.
TEST(Integration, GlobalSamplesPerEpochIndependentOfWorld) {
  const DataSplit data = make_spirals(256, 16, 2, 0.1, 5);
  for (const index_t world : {1, 2, 4}) {
    Network net = make_mlp({2, 1, 1}, {8}, 2, 1);
    OptimConfig oc;
    Sgd opt(oc);
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 32 / world;  // constant global batch of 32
    tc.world = world;
    Trainer trainer(net, opt, data, tc);
    const TrainResult res = trainer.run();
    EXPECT_EQ(res.iterations * 32 / world * world, 256)
        << "world=" << world;
  }
}

// HyLo inside the full trainer at full rank behaves like SNGD inside the
// full trainer: identical weights after identical schedules.
TEST(Integration, TrainerHyloFullRankTracksSngd) {
  const DataSplit data = make_spirals(128, 32, 2, 0.1, 7);
  auto run = [&](const std::string& which) {
    Network net = make_mlp({2, 1, 1}, {8}, 2, 21);
    OptimConfig oc;
    oc.lr = 0.1;
    oc.damping = 0.5;
    oc.update_freq = 2;
    oc.rank_ratio = 1.0;
    std::unique_ptr<Optimizer> opt;
    if (which == "HyLo") {
      auto hy = std::make_unique<HyloOptimizer>(oc);
      hy->set_policy(HyloOptimizer::Policy::kAlwaysKid);
      opt = std::move(hy);
    } else {
      opt = std::make_unique<Sngd>(oc);
    }
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 16;
    tc.world = 2;
    Trainer trainer(net, *opt, data, tc);
    trainer.run();
    Matrix w = net.param_blocks()[0]->w;
    return w;
  };
  const Matrix hylo_w = run("HyLo");
  const Matrix sngd_w = run("SNGD");
  EXPECT_LT(max_abs_diff(hylo_w, sngd_w), 1e-6);
}

// Second-order methods must beat plain SGD on the spiral task at equal
// epoch budget — the qualitative claim behind the whole NGD line of work.
TEST(Integration, SecondOrderBeatsFirstOrderAtEqualEpochs) {
  const DataSplit data = make_spirals(512, 128, 3, 0.05, 13);
  auto best_acc = [&](const std::string& name) {
    Network net = make_mlp({2, 1, 1}, {32, 32}, 3, 5);
    OptimConfig oc;
    oc.lr = name == "SGD" ? 0.1 : 0.05;
    oc.damping = name == "KFAC" ? 0.03 : 0.3;
    oc.kl_clip = 0.01;
    oc.update_freq = 5;
    oc.rank_ratio = 0.25;
    auto opt = make_optimizer(name, oc);
    TrainConfig tc;
    tc.epochs = 20;
    tc.batch_size = 32;
    tc.lr_schedule = {{13}, 0.1};
    Trainer trainer(net, *opt, data, tc);
    return trainer.run().best_metric();
  };
  const real_t sgd = best_acc("SGD");
  const real_t hylo = best_acc("HyLo");
  const real_t kfac = best_acc("KFAC");
  EXPECT_GT(hylo, sgd);
  EXPECT_GT(kfac, sgd);
}

// The modeled communication of HyLo must be below KAISA's and far below
// SNGD's for an identical training schedule — Table I's comm column,
// observed end-to-end. This ordering holds in the bandwidth-dominated
// regime the paper targets (large layer dim d AND large global batch P·m);
// for tiny messages per-collective latency dominates and the ordering is
// genuinely different.
TEST(Integration, CommunicationOrderingHyloKaisaSngd) {
  const DataSplit data = make_spirals(1024, 16, 2, 0.1, 17);
  auto comm_time = [&](const std::string& name) {
    Network net = make_mlp({2, 1, 1}, {256, 256}, 2, 5);
    OptimConfig oc;
    oc.update_freq = 1;
    oc.rank_ratio = 0.1;
    auto opt = make_optimizer(name, oc);
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 64;  // global batch 512 > d = 257
    tc.world = 8;
    tc.max_iters_per_epoch = 1;
    tc.interconnect = mist_v100();
    Trainer trainer(net, *opt, data, tc);
    TrainResult res = trainer.run();
    // Exclude the gradient allreduce shared by all methods.
    return res.comm_seconds -
           trainer.profiler().seconds("comm/grad_allreduce");
  };
  const double hylo = comm_time("HyLo");
  const double kaisa = comm_time("KAISA");
  const double sngd = comm_time("SNGD");
  EXPECT_LT(hylo, kaisa);
  EXPECT_LT(kaisa, sngd);
}

}  // namespace
}  // namespace hylo
