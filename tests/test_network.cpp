// Network graph mechanics: construction validation, forward/backward
// lifecycle, parameter enumeration.
#include <gtest/gtest.h>

#include <memory>

#include "hylo/nn/layers.hpp"
#include "hylo/nn/network.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

TEST(Network, RequiresInputFirst) {
  Rng rng(1);
  Network net;
  EXPECT_THROW(net.add(std::make_unique<ReLU>(), 0), Error);
  net.add_input({1, 2, 2});
  EXPECT_THROW(net.add_input({1, 2, 2}), Error);  // only one input node
}

TEST(Network, ValidatesInputEdges) {
  Network net;
  net.add_input({1, 2, 2});
  EXPECT_THROW(net.add(std::make_unique<ReLU>(), 5), Error);
  EXPECT_THROW(net.add(std::make_unique<ReLU>(), -1), Error);
  EXPECT_THROW(net.add(nullptr, 0), Error);
  EXPECT_THROW(net.add(std::make_unique<ReLU>(), std::vector<int>{}), Error);
}

TEST(Network, ShapePropagation) {
  Rng rng(2);
  Network net;
  int x = net.add_input({3, 8, 8});
  x = net.add(std::make_unique<Conv2d>(5, 3, 2, 1, rng), x);
  EXPECT_EQ(net.output_shape().c, 5);
  EXPECT_EQ(net.output_shape().h, 4);
  x = net.add(std::make_unique<Linear>(7, rng), x);
  EXPECT_EQ(net.output_shape(), (Shape{7, 1, 1}));
  EXPECT_EQ(net.input_shape(), (Shape{3, 8, 8}));
  EXPECT_EQ(net.num_nodes(), 3);
}

TEST(Network, ForwardRejectsWrongShape) {
  Rng rng(3);
  Network net;
  int x = net.add_input({2, 4, 4});
  net.add(std::make_unique<Linear>(3, rng), x);
  const PassContext ctx{};
  EXPECT_THROW(net.forward(Tensor4(1, 3, 4, 4), ctx), Error);
}

TEST(Network, BackwardRequiresForward) {
  Rng rng(4);
  Network net;
  int x = net.add_input({2, 2, 2});
  net.add(std::make_unique<Linear>(3, rng), x);
  EXPECT_THROW(net.backward(Tensor4(1, 3, 1, 1), PassContext{}), Error);
  EXPECT_THROW(net.output(), Error);
}

TEST(Network, BackwardValidatesGradShape) {
  Rng rng(5);
  Network net;
  int x = net.add_input({2, 2, 2});
  net.add(std::make_unique<Linear>(3, rng), x);
  net.forward(Tensor4(2, 2, 2, 2), PassContext{});
  EXPECT_THROW(net.backward(Tensor4(2, 4, 1, 1), PassContext{}), Error);
}

TEST(Network, NumParamsCountsEverything) {
  Rng rng(6);
  Network net;
  int x = net.add_input({2, 4, 4});
  x = net.add(std::make_unique<Conv2d>(3, 3, 1, 1, rng), x);  // 3*(2*9+1)=57
  x = net.add(std::make_unique<BatchNorm2d>(), x);            // 2*3=6
  net.add(std::make_unique<Linear>(5, rng), x);  // 5*(48+1)=245
  EXPECT_EQ(net.num_params(), 57 + 6 + 245);
  EXPECT_EQ(net.param_blocks().size(), 2u);
  EXPECT_EQ(net.plain_params().size(), 2u);
}

TEST(Network, ZeroGradClearsAll) {
  Rng rng(7);
  Network net;
  int x = net.add_input({1, 4, 4});
  x = net.add(std::make_unique<Conv2d>(2, 3, 1, 1, rng), x);
  x = net.add(std::make_unique<BatchNorm2d>(), x);
  net.add(std::make_unique<Linear>(2, rng), x);

  Tensor4 in(3, 1, 4, 4);
  for (index_t i = 0; i < in.size(); ++i) in[i] = rng.normal();
  const PassContext ctx{.training = true, .capture = false};
  net.forward(in, ctx);
  Tensor4 g(3, 2, 1, 1);
  for (index_t i = 0; i < g.size(); ++i) g[i] = rng.normal();
  net.backward(g, ctx);
  for (auto* pb : net.param_blocks()) EXPECT_GT(frobenius_norm(pb->gw), 0.0);

  net.zero_grad();
  for (auto* pb : net.param_blocks()) EXPECT_EQ(frobenius_norm(pb->gw), 0.0);
  for (auto pp : net.plain_params())
    for (const auto v : *pp.grad) EXPECT_EQ(v, 0.0);
}

TEST(Network, GradientsAccumulateAcrossBackwards) {
  // Two identical backward passes double the parameter gradient — the
  // property the multi-rank trainer loop relies on.
  Rng rng(8);
  Network net;
  int x = net.add_input({2, 1, 1});
  net.add(std::make_unique<Linear>(2, rng), x);
  Tensor4 in(2, 2, 1, 1);
  for (index_t i = 0; i < in.size(); ++i) in[i] = rng.normal();
  Tensor4 g(2, 2, 1, 1);
  for (index_t i = 0; i < g.size(); ++i) g[i] = rng.normal();
  const PassContext ctx{};
  net.zero_grad();
  net.forward(in, ctx);
  net.backward(g, ctx);
  const Matrix once = net.param_blocks()[0]->gw;
  net.forward(in, ctx);
  net.backward(g, ctx);
  EXPECT_LT(max_abs_diff(net.param_blocks()[0]->gw, once * 2.0), 1e-12);
}

TEST(Network, DagFanOutAccumulatesInputGradients) {
  // One node feeding two consumers must receive the sum of their gradients:
  // y = relu(x) + relu(x) means dL/dx = 2 * dL/dy (for positive x).
  Network net;
  int x = net.add_input({1, 1, 1});
  int r1 = net.add(std::make_unique<ReLU>(), x);
  int r2 = net.add(std::make_unique<ReLU>(), x);
  net.add(std::make_unique<Add>(), {r1, r2});
  Tensor4 in(1, 1, 1, 1);
  in[0] = 3.0;
  const PassContext ctx{};
  const Tensor4& out = net.forward(in, ctx);
  EXPECT_EQ(out[0], 6.0);
}

TEST(Network, MoveSemantics) {
  Rng rng(9);
  Network a;
  int x = a.add_input({2, 1, 1});
  a.add(std::make_unique<Linear>(3, rng), x);
  Network b = std::move(a);
  EXPECT_EQ(b.num_nodes(), 2);
  const PassContext ctx{};
  EXPECT_NO_THROW(b.forward(Tensor4(1, 2, 1, 1), ctx));
}

}  // namespace
}  // namespace hylo
