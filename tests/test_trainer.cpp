// Trainer integration: end-to-end convergence, determinism, simulated-time
// accounting, distributed bookkeeping, early stop, segmentation path.
#include <gtest/gtest.h>

#include "hylo/hylo.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

DataSplit spiral_data() { return make_spirals(512, 128, 2, 0.08, 11); }

TrainConfig quick_config(index_t epochs, index_t world = 1) {
  TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.world = world;
  tc.interconnect = world > 1 ? mist_v100() : loopback();
  return tc;
}

TEST(Trainer, SgdLearnsSpirals) {
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {32, 32}, 2, 1);
  OptimConfig oc;
  oc.lr = 0.1;
  Sgd opt(oc);
  Trainer trainer(net, opt, data, quick_config(12));
  const TrainResult res = trainer.run();
  EXPECT_GT(res.best_metric(), 0.9);
  EXPECT_GT(res.iterations, 0);
}

TEST(Trainer, HyloLearnsSpirals) {
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {32, 32}, 2, 1);
  OptimConfig oc;
  oc.lr = 0.05;
  oc.damping = 0.3;  // NGD damping is the dominant knob (paper tunes it)
  oc.update_freq = 5;
  oc.rank_ratio = 0.1;
  HyloOptimizer opt(oc);
  Trainer trainer(net, opt, data, quick_config(16));
  const TrainResult res = trainer.run();
  EXPECT_GT(res.best_metric(), 0.9);
  // HyLo warmup epochs ran KID, and the mode history covers every epoch.
  EXPECT_EQ(opt.mode_history().size(), res.epochs.size());
  EXPECT_EQ(opt.mode_history()[0], HyloMode::kKid);
}

TEST(Trainer, DeterministicAcrossRuns) {
  const DataSplit data = spiral_data();
  auto run_once = [&] {
    Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
    OptimConfig oc;
    oc.lr = 0.1;
    Sgd opt(oc);
    Trainer trainer(net, opt, data, quick_config(3));
    return trainer.run();
  };
  const TrainResult a = run_once();
  const TrainResult b = run_once();
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].train_loss, b.epochs[e].train_loss);
    EXPECT_EQ(a.epochs[e].test_metric, b.epochs[e].test_metric);
  }
}

TEST(Trainer, LrScheduleDecays) {
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
  OptimConfig oc;
  oc.lr = 0.1;
  Sgd opt(oc);
  TrainConfig tc = quick_config(4);
  tc.lr_schedule = {{2}, 0.1};
  Trainer trainer(net, opt, data, tc);
  trainer.run();
  EXPECT_NEAR(opt.lr(), 0.01, 1e-12);
}

TEST(Trainer, CommTimeZeroAtWorldOne) {
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
  OptimConfig oc;
  Sgd opt(oc);
  TrainConfig tc = quick_config(2);
  tc.interconnect = loopback();
  Trainer trainer(net, opt, data, tc);
  const TrainResult res = trainer.run();
  EXPECT_EQ(res.comm_seconds, 0.0);
  EXPECT_GT(res.compute_seconds, 0.0);
}

TEST(Trainer, DistributedChargesCommunication) {
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
  OptimConfig oc;
  oc.update_freq = 2;
  HyloOptimizer opt(oc);
  Trainer trainer(net, opt, data, quick_config(2, /*world=*/4));
  const TrainResult res = trainer.run();
  EXPECT_GT(res.comm_seconds, 0.0);
  EXPECT_GT(trainer.profiler().seconds("comm/grad_allreduce"), 0.0);
  EXPECT_GT(trainer.profiler().seconds("comm/gather"), 0.0);
}

TEST(Trainer, WallTimeIsMonotonePerEpoch) {
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
  OptimConfig oc;
  Sgd opt(oc);
  Trainer trainer(net, opt, data, quick_config(4));
  const TrainResult res = trainer.run();
  for (std::size_t e = 1; e < res.epochs.size(); ++e)
    EXPECT_GT(res.epochs[e].wall_seconds, res.epochs[e - 1].wall_seconds);
  EXPECT_NEAR(res.total_seconds,
              res.compute_seconds + res.replicated_seconds + res.comm_seconds,
              1e-9);
}

TEST(Trainer, EarlyStopOnTarget) {
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {32, 32}, 2, 1);
  OptimConfig oc;
  oc.lr = 0.1;
  Sgd opt(oc);
  TrainConfig tc = quick_config(50);
  tc.target_metric = 0.85;
  Trainer trainer(net, opt, data, tc);
  const TrainResult res = trainer.run();
  ASSERT_TRUE(res.time_to_target.has_value());
  ASSERT_TRUE(res.epochs_to_target.has_value());
  EXPECT_LT(*res.epochs_to_target, 50);
  EXPECT_EQ(res.epochs.back().wall_seconds, *res.time_to_target);
}

TEST(Trainer, EpochHookObservesTraining) {
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
  OptimConfig oc;
  Sgd opt(oc);
  Trainer trainer(net, opt, data, quick_config(3));
  int calls = 0;
  trainer.set_epoch_hook([&](const EpochStats& s, Network&) {
    EXPECT_EQ(s.epoch, calls);
    ++calls;
  });
  trainer.run();
  EXPECT_EQ(calls, 3);
}

TEST(Trainer, SegmentationPathTrainsUnet) {
  const DataSplit data = make_blob_segmentation(96, 24, 16, 16, 0.15, 5);
  Network net = make_unet({1, 16, 16}, 4, 2, 9);
  OptimConfig oc;
  oc.lr = 0.05;
  oc.damping = 0.3;
  oc.update_freq = 5;
  HyloOptimizer opt(oc);
  TrainConfig tc = quick_config(6);
  tc.batch_size = 8;
  Trainer trainer(net, opt, data, tc);
  const TrainResult res = trainer.run();
  // Dice must clearly beat the trivial all-background predictor.
  EXPECT_GT(res.best_metric(), 0.5);
}

TEST(Trainer, MaxItersCapsEpoch) {
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
  OptimConfig oc;
  Sgd opt(oc);
  TrainConfig tc = quick_config(2);
  tc.max_iters_per_epoch = 3;
  Trainer trainer(net, opt, data, tc);
  const TrainResult res = trainer.run();
  EXPECT_EQ(res.iterations, 6);
}

TEST(Trainer, CurvatureRefreshRespectsFrequency) {
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
  OptimConfig oc;
  oc.update_freq = 4;
  KFac opt(oc);
  TrainConfig tc = quick_config(1);
  tc.max_iters_per_epoch = 9;
  Trainer trainer(net, opt, data, tc);
  trainer.run();
  // Iterations 0, 4, 8 refresh: inversion runs 3 times over 2 layers... the
  // section call count equals the number of refresh iterations.
  EXPECT_EQ(trainer.profiler().calls("comp/inversion"), 3);
}

TEST(Trainer, EvaluateRejectsEmptyTestSplit) {
  // Regression: evaluate() used to divide by a zero sample count when the
  // test split was empty; it must fail loudly instead.
  const DataSplit data = make_spirals(256, 0, 2, 0.08, 11);
  Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
  OptimConfig oc;
  Sgd opt(oc);
  Trainer trainer(net, opt, data, quick_config(1));
  EXPECT_THROW(trainer.evaluate(), Error);
  EXPECT_THROW(trainer.run(), Error);
}

TEST(MakeOptimizer, FactoryNames) {
  OptimConfig oc;
  for (const std::string name :
       {"SGD", "ADAM", "KFAC", "KAISA", "EKFAC", "KBFGS-L", "SNGD", "HyLo"}) {
    auto opt = make_optimizer(name, oc);
    ASSERT_NE(opt, nullptr) << name;
  }
  EXPECT_THROW(make_optimizer("NOPE", oc), Error);
}

}  // namespace
}  // namespace hylo
