// KFAC-family baselines: factor accumulation, preconditioning formulas,
// EKFAC eigenbasis rescaling, KBFGS inverse behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "hylo/linalg/cholesky.hpp"
#include "hylo/linalg/eigh.hpp"
#include "hylo/optim/kfac.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

CaptureSet make_capture(Rng& rng, index_t world, index_t m, index_t din,
                        index_t dout) {
  CaptureSet cap;
  cap.a.resize(1);
  cap.g.resize(1);
  for (index_t r = 0; r < world; ++r) {
    cap.a[0].push_back(testutil::random_matrix(rng, m, din));
    cap.g[0].push_back(testutil::random_matrix(rng, m, dout));
  }
  return cap;
}

TEST(KFac, PreconditionMatchesManualFormula) {
  Rng rng(1);
  const index_t m = 12, din = 5, dout = 4;
  const CaptureSet cap = make_capture(rng, 1, m, din, dout);

  OptimConfig cfg;
  cfg.damping = 0.1;
  cfg.stat_decay = 0.0;  // factors = this capture exactly

  // Expose the precondition hook through a minimal subclass.
  struct TestKFac : KFac {
    using KFac::KFac;
    using KFac::layer_ready;
    using KFac::precondition_block;
  };
  TestKFac opt(cfg);
  ParamBlock pb;
  CommSim comm(1, loopback());
  opt.update_curvature({&pb}, cap, &comm);
  ASSERT_TRUE(opt.layer_ready(0));

  const Matrix grad = testutil::random_matrix(rng, dout, din);
  pb.gw = grad;
  opt.precondition_block(pb, 0);

  // Manual: C1 = AᵀA/m, C2 = GᵀG/m, π-corrected damping, pg = C2⁻¹ g C1⁻¹.
  Matrix c1 = gram_tn(cap.a[0][0]) * (1.0 / static_cast<real_t>(m));
  Matrix c2 = gram_tn(cap.g[0][0]) * (1.0 / static_cast<real_t>(m));
  const real_t pi = std::sqrt((trace(c1) / static_cast<real_t>(din)) /
                              (trace(c2) / static_cast<real_t>(dout)));
  add_diagonal(c1, pi * std::sqrt(cfg.damping));
  add_diagonal(c2, std::sqrt(cfg.damping) / pi);
  const Matrix want = matmul(spd_inverse(c2), matmul(grad, spd_inverse(c1)));
  EXPECT_LT(max_abs_diff(pb.gw, want), 1e-8);
}

TEST(KFac, FactorsAverageAcrossWorkers) {
  // Factors from a world=2 capture equal those from the stacked global
  // batch: (A1ᵀA1 + A2ᵀA2)/(2m) == AᵀA/(2m).
  Rng rng(2);
  const CaptureSet cap = make_capture(rng, 2, 8, 5, 4);
  OptimConfig cfg;
  cfg.stat_decay = 0.0;
  struct TestKFac : KFac {
    using KFac::KFac;
    using KFac::layers_;
    using KFac::refresh_factors;
  };
  TestKFac opt(cfg);
  ParamBlock pb;
  CommSim comm(2, loopback());
  opt.refresh_factors({&pb}, cap, &comm);

  std::vector<Matrix> ap(cap.a[0].begin(), cap.a[0].end());
  const Matrix want = gram_tn(vstack(ap)) * (1.0 / 16.0);
  EXPECT_LT(max_abs_diff(opt.layers_[0].a_factor, want), 1e-10);
}

TEST(KFac, StatDecayBlendsOldAndNew) {
  Rng rng(3);
  OptimConfig cfg;
  cfg.stat_decay = 0.5;
  struct TestKFac : KFac {
    using KFac::KFac;
    using KFac::layers_;
  };
  TestKFac opt(cfg);
  ParamBlock pb;
  CommSim comm(1, loopback());
  const CaptureSet cap1 = make_capture(rng, 1, 8, 4, 3);
  const CaptureSet cap2 = make_capture(rng, 1, 8, 4, 3);
  opt.update_curvature({&pb}, cap1, &comm);
  const Matrix f1 = opt.layers_[0].a_factor;
  opt.update_curvature({&pb}, cap2, &comm);
  const Matrix f2_new = gram_tn(cap2.a[0][0]) * (1.0 / 8.0);
  const Matrix want = f1 * 0.5 + f2_new * 0.5;
  EXPECT_LT(max_abs_diff(opt.layers_[0].a_factor, want), 1e-10);
}

TEST(KFac, ChargesFactorAllreduceAndInverseBroadcast) {
  Rng rng(4);
  OptimConfig cfg;
  KFac opt(cfg);
  ParamBlock pb;
  CommSim comm(8, mist_v100());
  opt.update_curvature({&pb}, make_capture(rng, 8, 4, 6, 5), &comm);
  EXPECT_GT(comm.profiler().seconds("comm/gather"), 0.0);
  EXPECT_GT(comm.profiler().seconds("comm/broadcast"), 0.0);
  EXPECT_GT(comm.profiler().seconds("comp/factorization"), 0.0);
  EXPECT_GT(comm.profiler().seconds("comp/inversion"), 0.0);
}

TEST(EKFac, MatchesManualEigenbasisFormula) {
  Rng rng(5);
  const index_t m = 10, din = 4, dout = 3;
  const CaptureSet cap = make_capture(rng, 1, m, din, dout);
  OptimConfig cfg;
  cfg.damping = 0.05;
  cfg.stat_decay = 0.0;
  struct TestEKFac : EKFac {
    using EKFac::EKFac;
    using EKFac::layer_ready;
    using EKFac::precondition_block;
  };
  TestEKFac opt(cfg);
  ParamBlock pb;
  CommSim comm(1, loopback());
  opt.update_curvature({&pb}, cap, &comm);
  ASSERT_TRUE(opt.layer_ready(0));

  const Matrix grad = testutil::random_matrix(rng, dout, din);
  pb.gw = grad;
  opt.precondition_block(pb, 0);

  // Manual reference.
  const Matrix& a = cap.a[0][0];
  const Matrix& g = cap.g[0][0];
  const Matrix va = eigh(gram_tn(a) * (1.0 / static_cast<real_t>(m))).eigenvectors;
  const Matrix vg = eigh(gram_tn(g) * (1.0 / static_cast<real_t>(m))).eigenvectors;
  Matrix pa = matmul(a, va), pg = matmul(g, vg);
  hadamard_inplace(pa, pa);
  hadamard_inplace(pg, pg);
  const Matrix s = matmul_tn(pg, pa) * (1.0 / static_cast<real_t>(m));
  Matrix t = matmul(matmul_tn(vg, grad), va);
  for (index_t i = 0; i < t.rows(); ++i)
    for (index_t j = 0; j < t.cols(); ++j) t(i, j) /= s(i, j) + cfg.damping;
  const Matrix want = matmul_nt(matmul(vg, t), va);
  EXPECT_LT(max_abs_diff(pb.gw, want), 1e-7);
}

TEST(EKFac, ExactDiagonalRescalingBeatsKfacOnFisherDiagonal) {
  // EKFAC's scalings are the *exact* second moments in the eigenbasis — on
  // the basis directions themselves its implied curvature matches the true
  // Fisher diagonal there, KFAC's Kronecker product generally doesn't.
  // Sanity-level check: preconditioners differ.
  Rng rng(6);
  const CaptureSet cap = make_capture(rng, 1, 10, 4, 3);
  OptimConfig cfg;
  cfg.stat_decay = 0.0;
  struct TK : KFac {
    using KFac::KFac;
    using KFac::precondition_block;
  };
  struct TE : EKFac {
    using EKFac::EKFac;
    using EKFac::precondition_block;
  };
  TK kfac(cfg);
  TE ekfac(cfg);
  ParamBlock p1, p2;
  CommSim c1(1, loopback()), c2(1, loopback());
  kfac.update_curvature({&p1}, cap, &c1);
  ekfac.update_curvature({&p2}, cap, &c2);
  const Matrix grad = testutil::random_matrix(rng, 3, 4);
  p1.gw = grad;
  p2.gw = grad;
  kfac.precondition_block(p1, 0);
  ekfac.precondition_block(p2, 0);
  EXPECT_GT(max_abs_diff(p1.gw, p2.gw), 1e-6);
}

TEST(KBfgs, BuildsPairsAndPreconditions) {
  Rng rng(7);
  OptimConfig cfg;
  cfg.stat_decay = 0.0;
  struct TB : KBfgs {
    using KBfgs::KBfgs;
    using KBfgs::layer_ready;
    using KBfgs::precondition_block;
  };
  TB opt(cfg);
  ParamBlock pb;
  CommSim comm(1, loopback());
  // Two captures give one (s, y) pair.
  opt.update_curvature({&pb}, make_capture(rng, 1, 8, 5, 4), &comm);
  opt.update_curvature({&pb}, make_capture(rng, 1, 8, 5, 4), &comm);
  ASSERT_TRUE(opt.layer_ready(0));
  const Matrix grad = testutil::random_matrix(rng, 4, 5);
  pb.gw = grad;
  opt.precondition_block(pb, 0);
  EXPECT_GT(max_abs_diff(pb.gw, grad), 0.0);
  for (index_t i = 0; i < pb.gw.size(); ++i)
    EXPECT_TRUE(std::isfinite(pb.gw.data()[i]));
  EXPECT_GT(opt.state_bytes(), 0);
}

TEST(KBfgs, MemoryIsBounded) {
  Rng rng(8);
  OptimConfig cfg;
  cfg.bfgs_memory = 3;
  KBfgs opt(cfg);
  ParamBlock pb;
  CommSim comm(1, loopback());
  for (int it = 0; it < 10; ++it)
    opt.update_curvature({&pb}, make_capture(rng, 1, 8, 5, 4), &comm);
  index_t bytes_after_10 = opt.state_bytes();
  for (int it = 0; it < 10; ++it)
    opt.update_curvature({&pb}, make_capture(rng, 1, 8, 5, 4), &comm);
  // Pair deque is capped: state stops growing.
  EXPECT_EQ(opt.state_bytes(), bytes_after_10);
}

TEST(CurvatureBase, CaptureSchedule) {
  OptimConfig cfg;
  cfg.update_freq = 5;
  KFac opt(cfg);
  EXPECT_TRUE(opt.needs_capture(0));
  EXPECT_FALSE(opt.needs_capture(3));
  EXPECT_TRUE(opt.needs_capture(10));
  cfg.update_freq = 1;
  KFac every(cfg);
  EXPECT_TRUE(every.needs_capture(7));
}

TEST(DampedInverse, EscalatesUntilPd) {
  Rng rng(9);
  // Singular PSD matrix; tiny initial damping forces at least one retry.
  Matrix m = gram_nt(testutil::random_matrix(rng, 6, 2));
  const Matrix inv = damped_spd_inverse(m, 1e-300);
  for (index_t i = 0; i < inv.size(); ++i)
    EXPECT_TRUE(std::isfinite(inv.data()[i]));
}

}  // namespace
}  // namespace hylo
