// Finite-difference gradient validation of every layer's backward pass, via
// small networks trained under softmax cross-entropy. This is the linchpin
// test: all second-order machinery consumes these gradients.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "hylo/nn/layers.hpp"
#include "hylo/nn/loss.hpp"
#include "hylo/nn/network.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

Tensor4 random_batch(Rng& rng, index_t n, Shape s, real_t scale = 1.0) {
  Tensor4 x(n, s.c, s.h, s.w);
  for (index_t i = 0; i < x.size(); ++i) x[i] = scale * rng.normal();
  return x;
}

std::vector<int> random_labels(Rng& rng, index_t n, index_t classes) {
  std::vector<int> y(static_cast<std::size_t>(n));
  for (auto& v : y) v = static_cast<int>(rng.uniform_int(classes));
  return y;
}

real_t eval_loss(Network& net, const Tensor4& x, const std::vector<int>& y) {
  const PassContext ctx{.training = true, .capture = false};
  const Tensor4& logits = net.forward(x, ctx);
  return SoftmaxCrossEntropy().compute(logits, y).loss;
}

// Max relative error between analytic and central-difference gradients over
// all weights of all param blocks (and plain params).
real_t grad_check(Network& net, const Tensor4& x, const std::vector<int>& y,
                  real_t eps = 1e-5) {
  const PassContext ctx{.training = true, .capture = false};
  net.zero_grad();
  const Tensor4& logits = net.forward(x, ctx);
  const LossResult lr = SoftmaxCrossEntropy().compute(logits, y);
  net.backward(lr.grad, ctx);

  real_t worst = 0.0;
  auto check_scalar = [&](real_t& w, real_t analytic) {
    const real_t saved = w;
    w = saved + eps;
    const real_t lp = eval_loss(net, x, y);
    w = saved - eps;
    const real_t lm = eval_loss(net, x, y);
    w = saved;
    const real_t numeric = (lp - lm) / (2.0 * eps);
    const real_t denom = std::max({std::abs(analytic), std::abs(numeric), real_t{1e-4}});
    worst = std::max(worst, std::abs(analytic - numeric) / denom);
  };
  for (auto* pb : net.param_blocks())
    for (index_t i = 0; i < pb->w.size(); ++i)
      check_scalar(pb->w.data()[i], pb->gw.data()[i]);
  for (auto pp : net.plain_params())
    for (std::size_t i = 0; i < pp.value->size(); ++i)
      check_scalar((*pp.value)[i], (*pp.grad)[i]);
  return worst;
}

TEST(GradCheck, LinearChain) {
  Rng rng(1);
  Network net = [&] {
    Rng wrng(11);
    Network n("t");
    int x = n.add_input({5, 1, 1});
    x = n.add(std::make_unique<Linear>(7, wrng), x);
    x = n.add(std::make_unique<ReLU>(), x);
    n.add(std::make_unique<Linear>(3, wrng), x);
    return n;
  }();
  const Tensor4 x = random_batch(rng, 6, {5, 1, 1});
  EXPECT_LT(grad_check(net, x, random_labels(rng, 6, 3)), 1e-5);
}

TEST(GradCheck, ConvChain) {
  Rng rng(2);
  Network net = [&] {
    Rng wrng(12);
    Network n("t");
    int x = n.add_input({2, 6, 6});
    x = n.add(std::make_unique<Conv2d>(3, 3, 1, 1, wrng), x);
    x = n.add(std::make_unique<ReLU>(), x);
    x = n.add(std::make_unique<Conv2d>(4, 3, 2, 1, wrng), x);
    x = n.add(std::make_unique<ReLU>(), x);
    n.add(std::make_unique<Linear>(3, wrng), x);
    return n;
  }();
  const Tensor4 x = random_batch(rng, 4, {2, 6, 6});
  EXPECT_LT(grad_check(net, x, random_labels(rng, 4, 3)), 1e-5);
}

TEST(GradCheck, BatchNorm) {
  Rng rng(3);
  Network net = [&] {
    Rng wrng(13);
    Network n("t");
    int x = n.add_input({2, 4, 4});
    x = n.add(std::make_unique<Conv2d>(3, 3, 1, 1, wrng), x);
    x = n.add(std::make_unique<BatchNorm2d>(), x);
    x = n.add(std::make_unique<ReLU>(), x);
    n.add(std::make_unique<Linear>(2, wrng), x);
    return n;
  }();
  const Tensor4 x = random_batch(rng, 5, {2, 4, 4});
  EXPECT_LT(grad_check(net, x, random_labels(rng, 5, 2)), 1e-5);
}

TEST(GradCheck, PoolingLayers) {
  Rng rng(4);
  Network net = [&] {
    Rng wrng(14);
    Network n("t");
    int x = n.add_input({2, 8, 8});
    x = n.add(std::make_unique<Conv2d>(3, 3, 1, 1, wrng), x);
    x = n.add(std::make_unique<MaxPool2d>(2, 2), x);
    x = n.add(std::make_unique<ReLU>(), x);
    x = n.add(std::make_unique<AvgPool2d>(2), x);
    x = n.add(std::make_unique<GlobalAvgPool>(), x);
    n.add(std::make_unique<Linear>(3, wrng), x);
    return n;
  }();
  const Tensor4 x = random_batch(rng, 4, {2, 8, 8});
  EXPECT_LT(grad_check(net, x, random_labels(rng, 4, 3)), 1e-5);
}

TEST(GradCheck, ResidualAdd) {
  Rng rng(5);
  Network net = [&] {
    Rng wrng(15);
    Network n("t");
    int x = n.add_input({3, 4, 4});
    int y = n.add(std::make_unique<Conv2d>(3, 3, 1, 1, wrng), x);
    y = n.add(std::make_unique<ReLU>(), y);
    y = n.add(std::make_unique<Conv2d>(3, 3, 1, 1, wrng), y);
    x = n.add(std::make_unique<Add>(), {y, x});
    x = n.add(std::make_unique<ReLU>(), x);
    x = n.add(std::make_unique<GlobalAvgPool>(), x);
    n.add(std::make_unique<Linear>(2, wrng), x);
    return n;
  }();
  const Tensor4 x = random_batch(rng, 4, {3, 4, 4});
  EXPECT_LT(grad_check(net, x, random_labels(rng, 4, 2)), 1e-5);
}

TEST(GradCheck, ConcatAndUpsample) {
  Rng rng(6);
  Network net = [&] {
    Rng wrng(16);
    Network n("t");
    int x = n.add_input({2, 4, 4});
    int enc = n.add(std::make_unique<Conv2d>(3, 3, 1, 1, wrng), x);
    int down = n.add(std::make_unique<MaxPool2d>(2, 2), enc);
    int up = n.add(std::make_unique<Upsample2x>(), down);
    int cat = n.add(std::make_unique<Concat>(), {up, enc});
    int y = n.add(std::make_unique<Conv2d>(2, 3, 1, 1, wrng), cat);
    y = n.add(std::make_unique<GlobalAvgPool>(), y);
    n.add(std::make_unique<Linear>(2, wrng), y);
    return n;
  }();
  const Tensor4 x = random_batch(rng, 3, {2, 4, 4});
  EXPECT_LT(grad_check(net, x, random_labels(rng, 3, 2)), 1e-5);
}

TEST(BatchNorm, NormalizesInTrainingMode) {
  Rng wrng(21);
  Network net("t");
  int x = net.add_input({2, 3, 3});
  net.add(std::make_unique<BatchNorm2d>(), x);
  Rng rng(22);
  Tensor4 in = random_batch(rng, 8, {2, 3, 3}, 3.0);
  for (index_t i = 0; i < in.size(); ++i) in[i] += 5.0;  // biased input
  const PassContext ctx{.training = true, .capture = false};
  const Tensor4& out = net.forward(in, ctx);
  // Per-channel mean ~0, var ~1.
  for (index_t c = 0; c < 2; ++c) {
    real_t sum = 0.0, sumsq = 0.0;
    for (index_t i = 0; i < 8; ++i)
      for (index_t j = 0; j < 9; ++j) {
        const real_t v = out.sample_ptr(i)[c * 9 + j];
        sum += v;
        sumsq += v * v;
      }
    const real_t mean = sum / 72.0;
    EXPECT_NEAR(mean, 0.0, 1e-10);
    EXPECT_NEAR(sumsq / 72.0 - mean * mean, 1.0, 1e-3);
  }
  (void)wrng;
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Network net("t");
  int x = net.add_input({1, 2, 2});
  net.add(std::make_unique<BatchNorm2d>(0.5), x);
  Rng rng(23);
  const Tensor4 in = random_batch(rng, 16, {1, 2, 2}, 2.0);
  const PassContext train{.training = true, .capture = false};
  for (int it = 0; it < 20; ++it) net.forward(in, train);
  const PassContext eval{.training = false, .capture = false};
  const Tensor4& out = net.forward(in, eval);
  // After many updates on the same batch, eval output ~ train output.
  const Tensor4& tout = net.forward(in, train);
  real_t diff = 0.0;
  for (index_t i = 0; i < out.size(); ++i)
    diff = std::max(diff, std::abs(out[i] - tout[i]));
  EXPECT_LT(diff, 0.05);
}

TEST(Capture, LinearGradientIdentity) {
  // gw must equal (1/m) G_capᵀ A_cap exactly for fully-connected layers.
  Rng rng(7), wrng(17);
  Network net("t");
  int x = net.add_input({4, 1, 1});
  net.add(std::make_unique<Linear>(3, wrng), x);
  const index_t m = 6;
  const Tensor4 in = random_batch(rng, m, {4, 1, 1});
  const auto labels = random_labels(rng, m, 3);
  const PassContext ctx{.training = true, .capture = true};
  net.zero_grad();
  const Tensor4& logits = net.forward(in, ctx);
  const LossResult lr = SoftmaxCrossEntropy().compute(logits, labels);
  net.backward(lr.grad, ctx);

  ParamBlock* pb = net.param_blocks()[0];
  ASSERT_EQ(pb->a_samples.rows(), m);
  ASSERT_EQ(pb->a_samples.cols(), 5);  // d_in + 1
  ASSERT_EQ(pb->g_samples.rows(), m);
  const Matrix recon =
      matmul_tn(pb->g_samples, pb->a_samples) * (1.0 / static_cast<real_t>(m));
  EXPECT_LT(max_abs_diff(recon, pb->gw), 1e-10);
}

TEST(Capture, ConvGradientIdentityWhenSpatialIsOne) {
  // With a single output position, the Sec. IV spatial-sum capture is exact:
  // gw == (1/m) Ĝᵀ Â.
  Rng rng(8), wrng(18);
  Network net("t");
  int x = net.add_input({2, 3, 3});
  net.add(std::make_unique<Conv2d>(4, 3, 1, 0, wrng), x);  // out 1x1
  const index_t m = 5;
  const Tensor4 in = random_batch(rng, m, {2, 3, 3});
  const PassContext ctx{.training = true, .capture = true};
  net.zero_grad();
  const Tensor4& out = net.forward(in, ctx);
  // Drive with an arbitrary smooth loss: L = mean(out²)/2.
  Tensor4 g(out.n(), out.c(), out.h(), out.w());
  for (index_t i = 0; i < out.size(); ++i)
    g[i] = out[i] / static_cast<real_t>(m);
  net.backward(g, ctx);

  ParamBlock* pb = net.param_blocks()[0];
  ASSERT_EQ(pb->a_samples.cols(), pb->d_in + 1);
  // Augmentation column holds S = 1.
  for (index_t i = 0; i < m; ++i)
    EXPECT_EQ(pb->a_samples(i, pb->d_in), 1.0);
  const Matrix recon =
      matmul_tn(pb->g_samples, pb->a_samples) * (1.0 / static_cast<real_t>(m));
  EXPECT_LT(max_abs_diff(recon, pb->gw), 1e-10);
}

TEST(Capture, ConvBiasColumnIsExactWithSpatialExtent) {
  // Even with S > 1, the bias column of (1/m) Ĝᵀ Â matches the true bias
  // gradient — this is why the augmentation stores S, not 1.
  Rng rng(9), wrng(19);
  Network net("t");
  int x = net.add_input({2, 6, 6});
  net.add(std::make_unique<Conv2d>(3, 3, 1, 1, wrng), x);  // out 6x6, S=36
  const index_t m = 4;
  const Tensor4 in = random_batch(rng, m, {2, 6, 6});
  const PassContext ctx{.training = true, .capture = true};
  net.zero_grad();
  const Tensor4& out = net.forward(in, ctx);
  Tensor4 g(out.n(), out.c(), out.h(), out.w());
  Rng grng(99);
  for (index_t i = 0; i < g.size(); ++i) g[i] = grng.normal() / static_cast<real_t>(m);
  net.backward(g, ctx);

  ParamBlock* pb = net.param_blocks()[0];
  const index_t d = pb->d_in;
  for (index_t i = 0; i < m; ++i) EXPECT_EQ(pb->a_samples(i, d), 36.0);
  // True bias gradient is the last column of gw; captured version:
  // (1/m) Σ_i ĝ_i · Â_i(bias) / S... — directly: ĝ_i already sums g over
  // spatial, so Σ_i ĝ_i/m (per output channel) is the bias gradient.
  for (index_t o = 0; o < pb->d_out; ++o) {
    real_t acc = 0.0;
    for (index_t i = 0; i < m; ++i) acc += pb->g_samples(i, o);
    EXPECT_NEAR(acc / static_cast<real_t>(m), pb->gw(o, d), 1e-10);
  }
}

TEST(Layers, ShapeInferenceErrors) {
  Rng wrng(20);
  EXPECT_THROW(MaxPool2d(2, 2).infer_shape({Shape{1, 1, 1}}), Error);
  EXPECT_THROW(AvgPool2d(2).infer_shape({Shape{1, 3, 3}}), Error);
  EXPECT_THROW(Add().infer_shape({Shape{1, 2, 2}, Shape{2, 2, 2}}), Error);
  EXPECT_THROW(Concat().infer_shape({Shape{1, 2, 2}, Shape{1, 3, 3}}), Error);
  EXPECT_THROW(Conv2d(4, 5, 1, 0, wrng).infer_shape({Shape{1, 3, 3}}), Error);
}

}  // namespace
}  // namespace hylo
