// Negative compile fixture: under Clang with -Werror=thread-safety this
// translation unit MUST fail to compile — `balance_` is written without
// holding its guard. The ctest wrapper compiles it with -fsyntax-only and
// expects failure (WILL_FAIL); thread_safety_clean.cpp is the control that
// proves the flags and include paths themselves are sound.
#include "hylo/common/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(int n) {
    balance_ += n;  // no lock held: the analysis must reject this
  }

 private:
  hylo::Mutex mu_;
  int balance_ HYLO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.deposit(1);
  return 0;
}
