// Control fixture for the thread-safety negative test: exercises every
// annotation pattern the real tree uses — MutexLock scopes, UniqueLock with
// a manual condition_variable wait loop, HYLO_REQUIRES internals — and must
// compile warning-free under -Werror=thread-safety. If this fails, the
// lane's flags are broken, not the violation fixture.
#include <condition_variable>

#include "hylo/common/thread_annotations.hpp"

namespace {

class Mailbox {
 public:
  void post(int v) {
    hylo::MutexLock lk(mu_);
    value_ = v;
    ready_ = true;
    cv_.notify_one();
  }

  int take() {
    hylo::UniqueLock lk(mu_);
    while (!ready_) cv_.wait(lk.native());
    ready_ = false;
    return drain_locked();
  }

  int peek() const {
    hylo::MutexLock lk(mu_);
    return value_;
  }

 private:
  int drain_locked() HYLO_REQUIRES(mu_) { return value_; }

  mutable hylo::Mutex mu_;
  std::condition_variable cv_;
  int value_ HYLO_GUARDED_BY(mu_) = 0;
  bool ready_ HYLO_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Mailbox m;
  m.post(7);
  const int got = m.take();
  return got == 7 && m.peek() == 7 ? 0 : 1;
}
