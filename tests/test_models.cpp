// Model zoo: construction, forward/backward execution, seed determinism,
// and the reference layer-dimension tables used by the Fig. 2 bench.
#include <gtest/gtest.h>

#include "hylo/models/zoo.hpp"
#include "hylo/nn/loss.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

Tensor4 random_batch(Rng& rng, index_t n, Shape s) {
  Tensor4 x(n, s.c, s.h, s.w);
  for (index_t i = 0; i < x.size(); ++i) x[i] = rng.normal();
  return x;
}

void run_train_step(Network& net, index_t classes, std::uint64_t seed) {
  Rng rng(seed);
  const Tensor4 x = random_batch(rng, 4, net.input_shape());
  std::vector<int> y(4);
  for (auto& v : y) v = static_cast<int>(rng.uniform_int(classes));
  const PassContext ctx{.training = true, .capture = true};
  net.zero_grad();
  const Tensor4& logits = net.forward(x, ctx);
  const LossResult lr = SoftmaxCrossEntropy().compute(logits, y);
  net.backward(lr.grad, ctx);
  // Every preconditionable block must have captured A and G.
  for (auto* pb : net.param_blocks()) {
    EXPECT_EQ(pb->a_samples.rows(), 4) << pb->name;
    EXPECT_EQ(pb->g_samples.rows(), 4) << pb->name;
    EXPECT_EQ(pb->a_samples.cols(), pb->d_in + 1) << pb->name;
    EXPECT_EQ(pb->g_samples.cols(), pb->d_out) << pb->name;
    EXPECT_GT(frobenius_norm(pb->gw), 0.0) << pb->name;
  }
}

TEST(Zoo, MlpBuildsAndTrains) {
  Network net = make_mlp({2, 1, 1}, {16, 16}, 3, 1);
  EXPECT_EQ(net.output_shape().c, 3);
  EXPECT_EQ(net.param_blocks().size(), 3u);
  run_train_step(net, 3, 100);
}

TEST(Zoo, C3f1BuildsAndTrains) {
  Network net = make_c3f1({1, 16, 16}, 10, 8, 2);
  EXPECT_EQ(net.output_shape().c, 10);
  EXPECT_EQ(net.param_blocks().size(), 4u);  // 3 conv + 1 fc
  run_train_step(net, 10, 101);
}

TEST(Zoo, ResnetBuildsAndTrains) {
  Network net = make_resnet({3, 16, 16}, 10, 1, 8, 3);  // ResNet-8
  EXPECT_EQ(net.output_shape().c, 10);
  run_train_step(net, 10, 102);
}

TEST(Zoo, ResnetDepthFormula) {
  // blocks_per_stage=2 -> ResNet-14: stem + 3 stages * 2 blocks * 2 convs
  // + 2 downsample convs + fc = 1 + 12 + 2 + 1 = 16 param blocks.
  Network net = make_resnet({3, 16, 16}, 10, 2, 8, 4);
  EXPECT_EQ(net.param_blocks().size(), 16u);
}

TEST(Zoo, DensenetBuildsAndTrains) {
  Network net = make_densenet({3, 16, 16}, 10, 6, 3, 5);
  EXPECT_EQ(net.output_shape().c, 10);
  run_train_step(net, 10, 103);
}

TEST(Zoo, DensenetChannelGrowth) {
  // 2 blocks of 3 layers with growth 6, stem 12: param conv count =
  // stem + 6 dense convs + 1 transition + fc = 9.
  Network net = make_densenet({3, 16, 16}, 10, 6, 3, 5);
  EXPECT_EQ(net.param_blocks().size(), 9u);
}

TEST(Zoo, UnetBuildsAndSegments) {
  Network net = make_unet({1, 16, 16}, 4, 2, 6);
  const Shape out = net.output_shape();
  EXPECT_EQ(out.c, 1);
  EXPECT_EQ(out.h, 16);
  EXPECT_EQ(out.w, 16);

  Rng rng(7);
  const Tensor4 x = random_batch(rng, 2, {1, 16, 16});
  Tensor4 mask(2, 1, 16, 16);
  for (index_t i = 0; i < mask.size(); ++i)
    mask[i] = rng.uniform() > 0.7 ? 1.0 : 0.0;
  const PassContext ctx{.training = true, .capture = true};
  net.zero_grad();
  const Tensor4& logits = net.forward(x, ctx);
  const LossResult lr = DiceBceLoss().compute(logits, mask);
  net.backward(lr.grad, ctx);
  for (auto* pb : net.param_blocks())
    EXPECT_GT(frobenius_norm(pb->gw), 0.0) << pb->name;
}

TEST(Zoo, UnetRejectsIndivisibleInput) {
  EXPECT_THROW(make_unet({1, 10, 10}, 4, 2, 6), Error);
}

TEST(Zoo, SeedDeterminism) {
  Network a = make_resnet({3, 8, 8}, 10, 1, 8, 42);
  Network b = make_resnet({3, 8, 8}, 10, 1, 8, 42);
  auto pa = a.param_blocks();
  auto pb = b.param_blocks();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(max_abs_diff(pa[i]->w, pb[i]->w), 0.0);
  // Different seed -> different weights.
  Network c = make_resnet({3, 8, 8}, 10, 1, 8, 43);
  EXPECT_GT(max_abs_diff(pa[0]->w, c.param_blocks()[0]->w), 0.0);
}

TEST(Zoo, ForwardDeterminism) {
  Network a = make_c3f1({1, 8, 8}, 4, 4, 9);
  Network b = make_c3f1({1, 8, 8}, 4, 4, 9);
  Rng rng(1);
  const Tensor4 x = random_batch(rng, 3, {1, 8, 8});
  const PassContext ctx{.training = true, .capture = false};
  const Tensor4& ya = a.forward(x, ctx);
  const Tensor4& yb = b.forward(x, ctx);
  for (index_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Zoo, LayerDimsInventory) {
  Network net = make_c3f1({1, 16, 16}, 10, 8, 2);
  const auto dims = layer_dims(net, "c3f1");
  ASSERT_EQ(dims.size(), 4u);
  EXPECT_EQ(dims[0].d_in, 1 * 3 * 3 + 1);
  EXPECT_EQ(dims[0].d_out, 8);
  EXPECT_EQ(dims[3].d_out, 10);
}

TEST(ReferenceDims, ResNet50HasExpectedStructure) {
  const auto dims = reference_layer_dims("ResNet-50");
  // 1 stem + (3+4+6+3)*3 bottleneck convs + 4 downsamples + 1 fc = 54.
  EXPECT_EQ(dims.size(), 54u);
  // The widest block is the stage-4 3x3 conv: 512*9+1 = 4609.
  index_t max_d = 0;
  for (const auto& d : dims) max_d = std::max({max_d, d.d_in, d.d_out});
  EXPECT_EQ(max_d, 4609);
}

TEST(ReferenceDims, ResNet32LayerCount) {
  const auto dims = reference_layer_dims("ResNet-32");
  // stem + 30 block convs + 2 downsamples + fc = 34.
  EXPECT_EQ(dims.size(), 34u);
}

TEST(ReferenceDims, DenseNet121LayerCount) {
  const auto dims = reference_layer_dims("DenseNet-121");
  // stem + 58*2 + 3 transitions + fc = 120... (6+12+24+16)=58 pairs.
  EXPECT_EQ(dims.size(), 121u);
}

TEST(ReferenceDims, AllModelsNonEmptyAndPositive) {
  for (const auto& name : reference_model_names()) {
    const auto dims = reference_layer_dims(name);
    EXPECT_FALSE(dims.empty()) << name;
    for (const auto& d : dims) {
      EXPECT_GT(d.d_in, 0) << name << "/" << d.layer;
      EXPECT_GT(d.d_out, 0) << name << "/" << d.layer;
    }
  }
  EXPECT_THROW(reference_layer_dims("nope"), Error);
}

}  // namespace
}  // namespace hylo
