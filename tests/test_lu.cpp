// LU with partial pivoting: general solves backing the KID middle matrices.
#include <gtest/gtest.h>

#include "hylo/linalg/lu.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

class LuSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(LuSizes, SolveResidualSmall) {
  const index_t n = GetParam();
  Rng rng(n);
  const Matrix a = testutil::random_matrix(rng, n, n);
  const Matrix b = testutil::random_matrix(rng, n, 4);
  const Matrix x = general_solve(a, b);
  EXPECT_LT(max_abs_diff(matmul(a, x), b), 1e-7);
}

TEST_P(LuSizes, InverseIsInverse) {
  const index_t n = GetParam();
  Rng rng(100 + n);
  const Matrix a = testutil::random_matrix(rng, n, n);
  EXPECT_LT(max_abs_diff(matmul(a, lu_inverse(a)), Matrix::identity(n)), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LuSizes,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 64, 90));

TEST(Lu, VectorSolve) {
  Rng rng(5);
  const Matrix a = testutil::random_matrix(rng, 9, 9);
  std::vector<real_t> b(9);
  for (auto& v : b) v = rng.normal();
  const auto f = lu_factor(a);
  const auto x = lu_solve(f, b);
  std::vector<real_t> back;
  matvec(a, x, back);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(back[i], b[i], 1e-8);
}

TEST(Lu, NeedsPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a{{0, 1}, {1, 0}};
  const Matrix x = general_solve(a, Matrix::identity(2));
  EXPECT_LT(max_abs_diff(x, Matrix{{0, 1}, {1, 0}}), 1e-12);
}

TEST(Lu, SingularThrows) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(lu_factor(a), Error);
}

TEST(Lu, NonSquareThrows) { EXPECT_THROW(lu_factor(Matrix(2, 3)), Error); }

TEST(Lu, IllConditionedStaysAccurate) {
  // Hilbert-like 6x6: partial pivoting should still deliver ~1e-6 residual.
  const index_t n = 6;
  Matrix a(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      a(i, j) = 1.0 / static_cast<real_t>(i + j + 1);
  Rng rng(6);
  const Matrix b = testutil::random_matrix(rng, n, 1);
  const Matrix x = general_solve(a, b);
  EXPECT_LT(max_abs_diff(matmul(a, x), b), 1e-8);
}

}  // namespace
}  // namespace hylo
