// Weight checkpointing: save/load round trips, BN state persistence,
// structural validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "hylo/hylo.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

const char* kPath = "/tmp/hylo_test_ckpt.bin";

Tensor4 random_batch(Rng& rng, index_t n, Shape s) {
  Tensor4 x(n, s.c, s.h, s.w);
  for (index_t i = 0; i < x.size(); ++i) x[i] = rng.normal();
  return x;
}

TEST(Checkpoint, RoundTripRestoresOutputs) {
  Network a = make_resnet({3, 8, 8}, 4, 1, 8, 5);
  // Train a little so BN running stats and weights are non-initial.
  {
    const DataSplit data = make_texture_images(128, 32, 4, 3, 8, 8, 0.3, 1);
    OptimConfig oc;
    Sgd opt(oc);
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 16;
    Trainer trainer(a, opt, data, tc);
    trainer.run();
  }
  a.save_weights(kPath);

  Network b = make_resnet({3, 8, 8}, 4, 1, 8, 99);  // different init
  b.load_weights(kPath);

  Rng rng(7);
  const Tensor4 x = random_batch(rng, 3, {3, 8, 8});
  const PassContext eval{.training = false, .capture = false};
  const Tensor4& ya = a.forward(x, eval);
  const Tensor4& yb = b.forward(x, eval);
  for (index_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
  std::remove(kPath);
}

TEST(Checkpoint, CarriesBatchNormRunningStats) {
  // Eval-mode output depends on running stats: loading must restore them
  // even though they are not parameters.
  Rng wrng(3);
  Network a;
  int x = a.add_input({2, 4, 4});
  a.add(std::make_unique<BatchNorm2d>(0.5), x);
  Rng rng(4);
  const Tensor4 in = random_batch(rng, 8, {2, 4, 4});
  const PassContext train{.training = true, .capture = false};
  for (int it = 0; it < 10; ++it) a.forward(in, train);
  a.save_weights(kPath);

  Network b;
  b.add_input({2, 4, 4});
  b.add(std::make_unique<BatchNorm2d>(0.5), 0);
  b.load_weights(kPath);
  const PassContext eval{.training = false, .capture = false};
  const Tensor4& ya = a.forward(in, eval);
  const Tensor4& yb = b.forward(in, eval);
  for (index_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
  std::remove(kPath);
  (void)wrng;
}

TEST(Checkpoint, RejectsShapeMismatch) {
  Network a = make_mlp({2, 1, 1}, {8}, 2, 1);
  a.save_weights(kPath);
  Network b = make_mlp({2, 1, 1}, {16}, 2, 1);
  EXPECT_THROW(b.load_weights(kPath), Error);
  std::remove(kPath);
}

TEST(Checkpoint, RejectsGarbageFile) {
  FILE* f = std::fopen(kPath, "wb");
  std::fputs("definitely not a checkpoint", f);
  std::fclose(f);
  Network net = make_mlp({2, 1, 1}, {8}, 2, 1);
  EXPECT_THROW(net.load_weights(kPath), Error);
  std::remove(kPath);
}

TEST(Checkpoint, MissingFileThrows) {
  Network net = make_mlp({2, 1, 1}, {8}, 2, 1);
  EXPECT_THROW(net.load_weights("/tmp/does_not_exist_hylo.bin"), Error);
}

TEST(Checkpoint, SaveIsAtomicAndLeavesNoTmp) {
  // save_weights streams into a `.tmp` sibling and renames on success, so a
  // crash mid-save can never clobber the previous checkpoint; the committed
  // write must leave no temporary behind.
  Network a = make_mlp({2, 1, 1}, {8}, 2, 1);
  a.save_weights(kPath);
  EXPECT_TRUE(std::ifstream(kPath).good());
  EXPECT_FALSE(std::ifstream(std::string(kPath) + ".tmp").good());
  std::remove(kPath);
}

TEST(Checkpoint, RejectsTmpPathOnLoad) {
  // A `.tmp` file is an uncommitted (possibly torn) write; loading one —
  // even if its bytes happen to be complete — must fail loudly.
  Network a = make_mlp({2, 1, 1}, {8}, 2, 1);
  const std::string tmp = std::string(kPath) + ".tmp";
  a.save_weights(kPath);
  {
    std::ifstream src(kPath, std::ios::binary);
    std::ofstream dst(tmp, std::ios::binary);
    dst << src.rdbuf();
  }
  Network b = make_mlp({2, 1, 1}, {8}, 2, 1);
  EXPECT_THROW(b.load_weights(tmp), Error);
  b.load_weights(kPath);  // the committed sibling stays loadable
  std::remove(kPath);
  std::remove(tmp.c_str());
}

TEST(Checkpoint, RejectsTruncationAtEveryPrefix) {
  // A valid checkpoint cut off after the magic, mid-header, mid-block-count
  // or mid-payload must throw — never silently load a partial model.
  Network a = make_mlp({2, 1, 1}, {8}, 2, 1);
  a.save_weights(kPath);
  FILE* f = std::fopen(kPath, "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::vector<char> bytes(static_cast<std::size_t>(full));
  std::fseek(f, 0, SEEK_SET);
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  std::remove(kPath);

  // Prefix lengths spanning magic (8), header (8..24), first block count
  // (24..32), mid-payload, and one-byte-short-of-complete.
  for (const long cut : {4L, 8L, 12L, 24L, 28L, 32L, full / 2, full - 1}) {
    FILE* g = std::fopen(kPath, "wb");
    ASSERT_NE(g, nullptr);
    std::fwrite(bytes.data(), 1, static_cast<std::size_t>(cut), g);
    std::fclose(g);
    Network b = make_mlp({2, 1, 1}, {8}, 2, 1);
    EXPECT_THROW(b.load_weights(kPath), Error) << "cut=" << cut;
    std::remove(kPath);
  }
}

TEST(Checkpoint, RejectsTrailingGarbage) {
  Network a = make_mlp({2, 1, 1}, {8}, 2, 1);
  a.save_weights(kPath);
  FILE* f = std::fopen(kPath, "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("junk", f);
  std::fclose(f);
  Network b = make_mlp({2, 1, 1}, {8}, 2, 1);
  EXPECT_THROW(b.load_weights(kPath), Error);
  std::remove(kPath);
}

TEST(WirePrecision, HalvesModeledCommTime) {
  // FP16 wire halves bandwidth-dominated comm relative to FP32. Run the
  // same HyLo schedule at both precisions and compare modeled comm time.
  const DataSplit data = make_spirals(512, 64, 2, 0.1, 9);
  auto comm_seconds = [&](double wire_bytes) {
    Network net = make_mlp({2, 1, 1}, {128, 128}, 2, 5);
    OptimConfig oc;
    oc.update_freq = 1;
    auto opt = make_optimizer("SNGD", oc);  // big broadcasts
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 32;
    tc.world = 4;
    tc.max_iters_per_epoch = 2;
    tc.interconnect = mist_v100();
    tc.wire_scalar_bytes = wire_bytes;
    Trainer trainer(net, *opt, data, tc);
    return trainer.run().comm_seconds;
  };
  const double fp32 = comm_seconds(4.0);
  const double fp16 = comm_seconds(2.0);
  EXPECT_LT(fp16, fp32);
  EXPECT_GT(fp16, 0.35 * fp32);  // not *below* half: latency floor remains
}

TEST(WirePrecision, Validation) {
  CommSim comm(2, loopback());
  EXPECT_THROW(comm.set_wire_scalar_bytes(0.0), Error);
  comm.set_wire_scalar_bytes(2.625);  // the 21-bit format
  EXPECT_EQ(comm.wire_bytes(1000), 2625);
}

}  // namespace
}  // namespace hylo
