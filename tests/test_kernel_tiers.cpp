// DESIGN.md §13 kernel-tier contract. Three layers are pinned here:
// (1) dispatch — HYLO_KERNEL-style name parsing with loud rejection of
// unknown/unavailable tiers, native resolving to best(); (2) per-tier
// determinism — every GEMM-family kernel and the conv passes are bitwise
// identical at 1/2/7 threads *within* each available tier; (3) cross-tier
// accuracy — SIMD tiers reassociate the k-accumulation, so scalar-vs-SIMD
// drift is bounded with norm-relative tolerances on random and adversarial
// (large exponent spread) inputs, and the fused-im2col conv matches the
// scalar materialized-im2col path to the same bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/linalg/kernels.hpp"
#include "hylo/nn/layers.hpp"
#include "hylo/nn/loss.hpp"
#include "hylo/nn/network.hpp"
#include "hylo/par/thread_pool.hpp"
#include "hylo/tensor/gemm_packed.hpp"
#include "hylo/tensor/kernel_dispatch.hpp"
#include "hylo/tensor/ops.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

using kern::Tier;

// Every test restores the ambient tier and thread count so ordering between
// cases cannot leak a dispatch change into other suites.
class KernelTiers : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = kern::active(); }
  void TearDown() override {
    kern::set_tier(saved_);
    par::set_num_threads(0);
  }
  Tier saved_ = Tier::kScalar;
};

std::vector<Tier> simd_tiers() {
  std::vector<Tier> out;
  for (const Tier t : {Tier::kNeon, Tier::kAvx2, Tier::kAvx512})
    if (kern::available(t)) out.push_back(t);
  return out;
}

std::vector<Tier> all_tiers() {
  std::vector<Tier> out{Tier::kScalar};
  for (const Tier t : simd_tiers()) out.push_back(t);
  return out;
}

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         std::memcmp(x.data(), y.data(),
                     sizeof(real_t) * static_cast<std::size_t>(x.size())) == 0;
}

bool bitwise_equal(const Tensor4& x, const Tensor4& y) {
  return x.size() == y.size() &&
         std::memcmp(x.data(), y.data(),
                     sizeof(real_t) * static_cast<std::size_t>(x.size())) == 0;
}

// Largest elementwise deviation, relative to the Frobenius scale of the
// reference — the natural bound for a reassociated sum (each element's
// error is O(k * eps) of its own accumulation magnitude).
real_t norm_rel_err(const Matrix& ref, const Matrix& got) {
  EXPECT_EQ(ref.rows(), got.rows());
  EXPECT_EQ(ref.cols(), got.cols());
  return max_abs_diff(ref, got) / (frobenius_norm(ref) + 1e-300);
}

// Adversarial accumulation input: normal values spread across ~16 orders of
// magnitude, so reassociated partial sums round very differently.
Matrix exponent_spread_matrix(Rng& rng, index_t rows, index_t cols) {
  Matrix m(rows, cols);
  for (index_t i = 0; i < m.size(); ++i)
    m[i] = std::ldexp(rng.normal(),
                      static_cast<int>(rng.uniform(-26.0, 26.0)));
  return m;
}

// ---- Dispatch ----------------------------------------------------------

TEST_F(KernelTiers, ParseAcceptsCanonicalNames) {
  EXPECT_EQ(kern::parse_tier("scalar"), Tier::kScalar);
  EXPECT_EQ(kern::parse_tier("neon"), Tier::kNeon);
  EXPECT_EQ(kern::parse_tier("avx2"), Tier::kAvx2);
  EXPECT_EQ(kern::parse_tier("avx512"), Tier::kAvx512);
  EXPECT_EQ(kern::parse_tier("native"), kern::best());
}

TEST_F(KernelTiers, ParseRejectsUnknownNames) {
  EXPECT_THROW(kern::parse_tier(""), Error);
  EXPECT_THROW(kern::parse_tier("AVX2"), Error);  // names are case-sensitive
  EXPECT_THROW(kern::parse_tier("sse"), Error);
  EXPECT_THROW(kern::parse_tier("scalar "), Error);
  EXPECT_THROW(kern::set_tier_by_name("fastest"), Error);
}

TEST_F(KernelTiers, SetTierRejectsUnavailableTiers) {
  bool found_unavailable = false;
  for (const Tier t : {Tier::kNeon, Tier::kAvx2, Tier::kAvx512})
    if (!kern::available(t)) {
      found_unavailable = true;
      EXPECT_THROW(kern::set_tier(t), Error);
    }
  if (!found_unavailable)
    GTEST_SKIP() << "every SIMD tier is available on this host";
}

TEST_F(KernelTiers, ScalarAlwaysAvailableAndBestIsAvailable) {
  EXPECT_TRUE(kern::available(Tier::kScalar));
  EXPECT_TRUE(kern::available(kern::best()));
  const Tier prev = kern::set_tier(Tier::kScalar);
  EXPECT_EQ(kern::active(), Tier::kScalar);
  kern::set_tier(prev);
}

// ---- Bitwise identity across thread counts, within each tier -----------

TEST_F(KernelTiers, GemmFamilyBitwiseAcrossThreadCountsWithinTier) {
  Rng rng(1234);
  // Odd shapes: not multiples of MR/NR or of any grain, so edge tiles and
  // straddled chunk boundaries are exercised.
  const Matrix a = testutil::random_matrix(rng, 37, 53);
  const Matrix b = testutil::random_matrix(rng, 53, 29);
  const Matrix at = testutil::random_matrix(rng, 53, 37);
  const Matrix bt = testutil::random_matrix(rng, 29, 53);
  Matrix y(53, 1);
  for (index_t i = 0; i < 53; ++i) y[i] = rng.normal();

  for (const Tier tier : all_tiers()) {
    kern::set_tier(tier);
    par::set_num_threads(1);
    const Matrix r_nn = matmul(a, b);
    const Matrix r_tn = matmul_tn(at, b);
    const Matrix r_nt = matmul_nt(a, bt);
    const Matrix r_gram = gram_nt(a);
    Matrix r_diag;
    gemm_tn_diag(at, y, b, r_diag);

    for (const int t : {2, 7}) {
      par::set_num_threads(t);
      EXPECT_TRUE(bitwise_equal(matmul(a, b), r_nn))
          << kern::tier_name(tier) << " gemm @" << t;
      EXPECT_TRUE(bitwise_equal(matmul_tn(at, b), r_tn))
          << kern::tier_name(tier) << " gemm_tn @" << t;
      EXPECT_TRUE(bitwise_equal(matmul_nt(a, bt), r_nt))
          << kern::tier_name(tier) << " gemm_nt @" << t;
      EXPECT_TRUE(bitwise_equal(gram_nt(a), r_gram))
          << kern::tier_name(tier) << " gram_nt @" << t;
      Matrix d;
      gemm_tn_diag(at, y, b, d);
      EXPECT_TRUE(bitwise_equal(d, r_diag))
          << kern::tier_name(tier) << " gemm_tn_diag @" << t;
    }
  }
}

TEST_F(KernelTiers, ConvPassesBitwiseAcrossThreadCountsWithinTier) {
  auto make_net = [] {
    Rng wrng(77);
    Network n("tier_conv");
    int x = n.add_input({2, 6, 6});
    x = n.add(std::make_unique<Conv2d>(3, 3, 1, 1, wrng), x);
    x = n.add(std::make_unique<ReLU>(), x);
    n.add(std::make_unique<Linear>(3, wrng), x);
    return n;
  };
  Rng rng(78);
  Tensor4 x(5, 2, 6, 6);
  for (index_t i = 0; i < x.size(); ++i) x[i] = rng.normal();
  const std::vector<int> labels = {0, 2, 1, 0, 2};
  const PassContext ctx{.training = true, .capture = true};

  auto run = [&](Tensor4& out, std::vector<Matrix>& state) {
    Network net = make_net();
    net.zero_grad();
    const Tensor4& logits = net.forward(x, ctx);
    out = logits;
    const LossResult lr = SoftmaxCrossEntropy().compute(logits, labels);
    net.backward(lr.grad, ctx);
    for (auto* pb : net.param_blocks()) {
      state.push_back(pb->gw);
      state.push_back(pb->a_samples);
      state.push_back(pb->g_samples);
    }
  };

  for (const Tier tier : all_tiers()) {
    kern::set_tier(tier);
    par::set_num_threads(1);
    Tensor4 out1;
    std::vector<Matrix> s1;
    run(out1, s1);
    for (const int t : {2, 7}) {
      par::set_num_threads(t);
      Tensor4 out;
      std::vector<Matrix> s;
      run(out, s);
      EXPECT_TRUE(bitwise_equal(out, out1)) << kern::tier_name(tier) << " @" << t;
      ASSERT_EQ(s.size(), s1.size());
      for (std::size_t i = 0; i < s.size(); ++i)
        EXPECT_TRUE(bitwise_equal(s[i], s1[i]))
            << kern::tier_name(tier) << " @" << t << " state " << i;
    }
  }
}

// ---- Scalar-vs-SIMD accuracy bounds ------------------------------------

TEST_F(KernelTiers, SimdMatchesScalarOnRandomMatrices) {
  Rng rng(99);
  const Matrix a = testutil::random_matrix(rng, 61, 83);
  const Matrix b = testutil::random_matrix(rng, 83, 47);
  const Matrix at = testutil::random_matrix(rng, 83, 61);
  const Matrix bt = testutil::random_matrix(rng, 47, 83);

  kern::set_tier(Tier::kScalar);
  const Matrix r_nn = matmul(a, b);
  const Matrix r_tn = matmul_tn(at, b);
  const Matrix r_nt = matmul_nt(a, bt);
  const Matrix r_gram = gram_nt(a);

  for (const Tier tier : simd_tiers()) {
    kern::set_tier(tier);
    EXPECT_LT(norm_rel_err(r_nn, matmul(a, b)), 1e-13) << kern::tier_name(tier);
    EXPECT_LT(norm_rel_err(r_tn, matmul_tn(at, b)), 1e-13)
        << kern::tier_name(tier);
    EXPECT_LT(norm_rel_err(r_nt, matmul_nt(a, bt)), 1e-13)
        << kern::tier_name(tier);
    EXPECT_LT(norm_rel_err(r_gram, gram_nt(a)), 1e-13) << kern::tier_name(tier);
  }
}

TEST_F(KernelTiers, SimdMatchesScalarOnExponentSpreadMatrices) {
  Rng rng(100);
  const Matrix a = exponent_spread_matrix(rng, 45, 67);
  const Matrix b = exponent_spread_matrix(rng, 67, 33);

  kern::set_tier(Tier::kScalar);
  const Matrix r_nn = matmul(a, b);
  const Matrix r_gram = gram_nt(a);
  // The drift bound must be relative to the accumulation magnitude, not the
  // (possibly cancelled) result: scale by |A|_F * |B|_F.
  const real_t scale_nn = frobenius_norm(a) * frobenius_norm(b);
  const real_t scale_gram = frobenius_norm(a) * frobenius_norm(a);

  for (const Tier tier : simd_tiers()) {
    kern::set_tier(tier);
    EXPECT_LT(max_abs_diff(r_nn, matmul(a, b)) / scale_nn, 1e-13)
        << kern::tier_name(tier);
    EXPECT_LT(max_abs_diff(r_gram, gram_nt(a)) / scale_gram, 1e-13)
        << kern::tier_name(tier);
  }
}

TEST_F(KernelTiers, AlphaBetaHandledIdenticallyAcrossTiers) {
  Rng rng(101);
  const Matrix a = testutil::random_matrix(rng, 19, 31);
  const Matrix b = testutil::random_matrix(rng, 31, 23);
  const Matrix c0 = testutil::random_matrix(rng, 19, 23);

  kern::set_tier(Tier::kScalar);
  Matrix ref = c0;
  gemm(a, b, ref, /*alpha=*/2.5, /*beta=*/-0.75);

  for (const Tier tier : simd_tiers()) {
    kern::set_tier(tier);
    Matrix c = c0;
    gemm(a, b, c, 2.5, -0.75);
    EXPECT_LT(norm_rel_err(ref, c), 1e-13) << kern::tier_name(tier);
    // beta == 0 with a mismatched C must still resize-and-overwrite.
    Matrix fresh;
    gemm(a, b, fresh, 2.5, 0.0);
    Matrix fresh_ref = Matrix(19, 23);
    kern::set_tier(Tier::kScalar);
    gemm(a, b, fresh_ref, 2.5, 0.0);
    kern::set_tier(tier);
    EXPECT_LT(norm_rel_err(fresh_ref, fresh), 1e-13) << kern::tier_name(tier);
  }
}

// ---- Gram symmetry -----------------------------------------------------

TEST_F(KernelTiers, GramIsExactlySymmetricInEveryTier) {
  Rng rng(102);
  const Matrix a = testutil::random_matrix(rng, 53, 21);
  for (const Tier tier : all_tiers()) {
    kern::set_tier(tier);
    const Matrix g = gram_nt(a);
    for (index_t i = 0; i < g.rows(); ++i)
      for (index_t j = 0; j < i; ++j) {
        const real_t lo = g(i, j), up = g(j, i);
        EXPECT_EQ(std::memcmp(&lo, &up, sizeof(real_t)), 0)
            << kern::tier_name(tier) << " (" << i << "," << j << ")";
      }
  }
}

// ---- Fused conv vs materialized im2col ---------------------------------

TEST_F(KernelTiers, FusedConvMatchesMaterializedIm2col) {
  if (simd_tiers().empty()) GTEST_SKIP() << "no SIMD tier on this host";
  auto make_net = [] {
    Rng wrng(55);
    Network n("fused_conv");
    int x = n.add_input({3, 7, 5});
    x = n.add(std::make_unique<Conv2d>(4, 3, 2, 1, wrng), x);  // stride 2
    x = n.add(std::make_unique<ReLU>(), x);
    x = n.add(std::make_unique<Conv2d>(5, 3, 1, 1, wrng), x);
    n.add(std::make_unique<Linear>(3, wrng), x);
    return n;
  };
  Rng rng(56);
  Tensor4 x(6, 3, 7, 5);
  for (index_t i = 0; i < x.size(); ++i) x[i] = rng.normal();
  const std::vector<int> labels = {0, 2, 1, 0, 2, 1};
  const PassContext ctx{.training = true, .capture = true};

  auto run = [&](Tensor4& out, std::vector<Matrix>& state) {
    Network net = make_net();
    net.zero_grad();
    const Tensor4& logits = net.forward(x, ctx);
    out = logits;
    const LossResult lr = SoftmaxCrossEntropy().compute(logits, labels);
    net.backward(lr.grad, ctx);
    for (auto* pb : net.param_blocks()) {
      state.push_back(pb->gw);
      state.push_back(pb->a_samples);
      state.push_back(pb->g_samples);
    }
  };

  // Scalar tier materializes per-sample im2col patch matrices; the SIMD
  // tiers generate patches inside the packed GEMM. Same math, different
  // association — norm-relative agreement is the contract.
  kern::set_tier(Tier::kScalar);
  Tensor4 out_ref;
  std::vector<Matrix> s_ref;
  run(out_ref, s_ref);

  for (const Tier tier : simd_tiers()) {
    kern::set_tier(tier);
    Tensor4 out;
    std::vector<Matrix> s;
    run(out, s);
    ASSERT_EQ(out.size(), out_ref.size());
    real_t worst = 0.0;
    for (index_t i = 0; i < out.size(); ++i)
      worst = std::max(worst, std::abs(out[i] - out_ref[i]));
    EXPECT_LT(worst, 1e-10) << kern::tier_name(tier);
    ASSERT_EQ(s.size(), s_ref.size());
    for (std::size_t i = 0; i < s.size(); ++i)
      EXPECT_LT(norm_rel_err(s_ref[i], s[i]), 1e-12)
          << kern::tier_name(tier) << " state " << i;
  }
}

// ---- Vector helpers ----------------------------------------------------

TEST_F(KernelTiers, ElementwiseHelpersBitwiseIdenticalAcrossTiers) {
  Rng rng(103);
  std::vector<real_t> a0(131), b(131);
  for (auto& v : a0) v = rng.normal();
  for (auto& v : b) v = rng.normal();

  kern::set_tier(Tier::kScalar);
  std::vector<real_t> mul_ref = a0, scale_ref(a0.size());
  kern::vmul(mul_ref.data(), b.data(), static_cast<index_t>(a0.size()));
  kern::vscale(scale_ref.data(), a0.data(), 1.7,
               static_cast<index_t>(a0.size()));
  const real_t dot_scalar =
      kern::vdot(a0.data(), b.data(), static_cast<index_t>(a0.size()));

  for (const Tier tier : simd_tiers()) {
    kern::set_tier(tier);
    std::vector<real_t> mul = a0, scale(a0.size());
    kern::vmul(mul.data(), b.data(), static_cast<index_t>(a0.size()));
    kern::vscale(scale.data(), a0.data(), 1.7,
                 static_cast<index_t>(a0.size()));
    // vmul/vscale are elementwise: bitwise identical across tiers.
    EXPECT_EQ(std::memcmp(mul.data(), mul_ref.data(),
                          sizeof(real_t) * mul.size()),
              0)
        << kern::tier_name(tier);
    EXPECT_EQ(std::memcmp(scale.data(), scale_ref.data(),
                          sizeof(real_t) * scale.size()),
              0)
        << kern::tier_name(tier);
    // vdot reassociates: bound, don't bit-compare.
    const real_t d =
        kern::vdot(a0.data(), b.data(), static_cast<index_t>(a0.size()));
    EXPECT_NEAR(d, dot_scalar, 1e-12 * std::abs(dot_scalar) + 1e-12)
        << kern::tier_name(tier);
  }
}

}  // namespace
}  // namespace hylo
