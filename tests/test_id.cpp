// Interpolative decomposition properties KID depends on: exactness at full
// rank and on exactly-low-rank inputs, identity rows on the selected set,
// and monotone error decay in r.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hylo/linalg/id.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

TEST(RowId, ExactAtFullRank) {
  Rng rng(1);
  const Matrix m = testutil::random_matrix(rng, 12, 12);
  const RowId id = row_interpolative_decomposition(m, 12);
  EXPECT_EQ(id.rank, 12);
  EXPECT_LT(max_abs_diff(id_reconstruct(id, m), m), 1e-8);
}

TEST(RowId, ExactOnLowRankInput) {
  Rng rng(2);
  const Matrix m = testutil::random_low_rank(rng, 30, 25, 6);
  const RowId id = row_interpolative_decomposition(m, 6);
  EXPECT_EQ(id.rank, 6);
  EXPECT_LT(max_abs_diff(id_reconstruct(id, m), m), 1e-7 * max_abs(m));
}

TEST(RowId, SelectedRowsAreDistinctAndValid) {
  Rng rng(3);
  const Matrix m = testutil::random_matrix(rng, 20, 15);
  const RowId id = row_interpolative_decomposition(m, 7);
  std::set<index_t> uniq(id.rows.begin(), id.rows.end());
  EXPECT_EQ(uniq.size(), 7u);
  for (const auto r : id.rows) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 20);
  }
}

TEST(RowId, SelectedRowsInterpolateThemselves) {
  // P restricted to the selected rows must be the identity: the factor rows
  // reproduce themselves exactly in the reconstruction.
  Rng rng(4);
  const Matrix m = testutil::random_matrix(rng, 18, 12);
  const RowId id = row_interpolative_decomposition(m, 5);
  for (index_t j = 0; j < id.rank; ++j) {
    const index_t sel = id.rows[static_cast<std::size_t>(j)];
    for (index_t k = 0; k < id.rank; ++k)
      EXPECT_NEAR(id.projection(sel, k), (k == j) ? 1.0 : 0.0, 1e-12);
  }
}

class IdErrorDecay : public ::testing::TestWithParam<index_t> {};

TEST_P(IdErrorDecay, ErrorShrinksWithRank) {
  const index_t n = GetParam();
  Rng rng(100 + n);
  // Matrix with geometrically decaying spectrum: ID error should decay too.
  Matrix m(n, n);
  const Matrix u = testutil::random_matrix(rng, n, n);
  const Matrix v = testutil::random_matrix(rng, n, n);
  for (index_t k = 0; k < n; ++k) {
    const real_t s = std::pow(0.5, static_cast<real_t>(k));
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j) m(i, j) += s * u(i, k) * v(k, j);
  }
  real_t prev = frobenius_norm(m);
  for (index_t r = 2; r <= n; r += n / 4) {
    const RowId id = row_interpolative_decomposition(m, r);
    const real_t err = frobenius_norm(id_reconstruct(id, m) - m);
    EXPECT_LE(err, prev * 1.2 + 1e-9);  // non-increasing modulo noise
    prev = err;
  }
  // At near-full rank the error must be tiny.
  const RowId full = row_interpolative_decomposition(m, n);
  EXPECT_LT(frobenius_norm(id_reconstruct(full, m) - m), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IdErrorDecay, ::testing::Values(8, 16, 32));

TEST(RowId, ClampsRankToMatrixSize) {
  Rng rng(5);
  const Matrix m = testutil::random_matrix(rng, 6, 9);
  const RowId id = row_interpolative_decomposition(m, 100);
  EXPECT_EQ(id.rank, 6);
}

TEST(RowId, RejectsEmptyAndBadRank) {
  Rng rng(6);
  const Matrix m = testutil::random_matrix(rng, 4, 4);
  EXPECT_THROW(row_interpolative_decomposition(Matrix(), 2), Error);
  EXPECT_THROW(row_interpolative_decomposition(m, 0), Error);
}

TEST(RowId, SymmetricGramUseCase) {
  // The KID call site: Q = (AAᵀ)∘(GGᵀ) with strong low-rank structure.
  Rng rng(7);
  const Matrix a = testutil::random_low_rank(rng, 40, 30, 3);
  const Matrix g = testutil::random_low_rank(rng, 40, 20, 3);
  Matrix q = gram_nt(a);
  hadamard_inplace(q, gram_nt(g));
  // rank(Q) <= rank(A)² * rank(G)² bound is loose; 9 suffices here since
  // hadamard of two rank-3 grams has rank <= 9.
  const RowId id = row_interpolative_decomposition(q, 9);
  EXPECT_LT(frobenius_norm(id_reconstruct(id, q) - q),
            1e-6 * frobenius_norm(q));
}

}  // namespace
}  // namespace hylo
