// Training-health diagnostics (DESIGN.md §12): condition-estimate helpers,
// the HealthMonitor cadence gate, the alert rules fed synthetic timelines,
// the disabled-probes bitwise-identity contract, and probe emission across
// all five curvature optimizers plus a seeded divergent run that must fire
// a critical alert. Every trainer test pins cfg.health and cfg.faults
// explicitly so ambient HYLO_HEALTH / HYLO_FAULTS environments cannot
// perturb the assertions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "hylo/hylo.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

using obs::AlertConfig;
using obs::AlertEngine;
using obs::AlertSeverity;
using obs::HealthConfig;
using obs::HealthMonitor;
using obs::Json;
using obs::LayerHealth;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<real_t> flat_weights(Network& net) {
  std::vector<real_t> out;
  for (auto* pb : net.param_blocks())
    out.insert(out.end(), pb->w.data(), pb->w.data() + pb->w.size());
  for (auto pp : net.plain_params())
    out.insert(out.end(), pp.value->begin(), pp.value->end());
  return out;
}

std::vector<Json> read_jsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<Json> records;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) records.push_back(Json::parse(line));
  return records;
}

// ------------------------------------------------ condition estimates ----

TEST(CondEstimates, CholeskyDiagonalRatioSquared) {
  // diag(4, 1) has Cholesky diag (2, 1): κ estimate (2/1)² = 4.
  Matrix l(2, 2);
  l(0, 0) = 2.0;
  l(1, 1) = 1.0;
  EXPECT_DOUBLE_EQ(obs::cond_from_cholesky(l), 4.0);
  EXPECT_TRUE(std::isnan(obs::cond_from_cholesky(Matrix())));
  l(1, 1) = 0.0;  // singular factor
  EXPECT_TRUE(std::isinf(obs::cond_from_cholesky(l)));
}

TEST(CondEstimates, LuDiagonalRatio) {
  Matrix lu(3, 3);
  lu(0, 0) = -8.0;  // magnitudes count, not signs
  lu(1, 1) = 2.0;
  lu(2, 2) = 4.0;
  EXPECT_DOUBLE_EQ(obs::cond_from_lu(lu), 4.0);
}

TEST(CondEstimates, PairInfinityNormProduct) {
  // κ∞(M) = ‖M‖∞ ‖M⁻¹‖∞ is exact for a diagonal matrix.
  Matrix m(2, 2), inv(2, 2);
  m(0, 0) = 10.0;
  m(1, 1) = 2.0;
  inv(0, 0) = 0.1;
  inv(1, 1) = 0.5;
  EXPECT_DOUBLE_EQ(obs::cond_from_pair(m, inv), 5.0);
}

TEST(CondEstimates, CountNonfinite) {
  Matrix m(2, 2);
  m(0, 0) = kNaN;
  m(1, 1) = kInf;
  EXPECT_EQ(obs::count_nonfinite(m), 2);
  EXPECT_EQ(obs::count_nonfinite(std::vector<real_t>{0.0, -kInf, 3.0}), 1);
  EXPECT_EQ(obs::count_nonfinite(Matrix()), 0);
}

// ------------------------------------------------------ monitor gating ----

TEST(HealthMonitor, DisabledMonitorIsNeverDue) {
  HealthMonitor mon;  // default: disabled
  EXPECT_FALSE(mon.enabled());
  for (int i = 0; i < 5; ++i) {
    mon.begin_refresh();
    EXPECT_FALSE(mon.due());
  }
}

TEST(HealthMonitor, CadenceSelectsEveryNthRefresh) {
  HealthConfig cfg;
  cfg.enabled = true;
  cfg.cadence = 3;
  HealthMonitor mon(cfg);
  std::vector<bool> due;
  for (int i = 0; i < 7; ++i) {
    mon.begin_refresh();
    due.push_back(mon.due());
    mon.flush(0, i, i);
  }
  EXPECT_EQ(due, (std::vector<bool>{true, false, false, true, false, false,
                                    true}));
  EXPECT_EQ(mon.probes(), 3);
}

TEST(HealthMonitor, FlushAggregatesWorstLayer) {
  HealthConfig cfg;
  cfg.enabled = true;
  HealthMonitor mon(cfg);
  mon.begin_refresh();
  ASSERT_TRUE(mon.due());
  LayerHealth a;
  a.layer = 0;
  a.cond = 10.0;
  a.staleness = 1;
  LayerHealth b;
  b.layer = 1;
  b.cond_a = 500.0;  // per-layer worst = max over cond/cond_a/cond_g
  b.cond_g = 40.0;
  b.nonfinite = 2;
  b.staleness = 4;
  mon.report_layer(a);
  mon.report_layer(b);
  mon.report_norms(0, 2.0, 1.0);
  mon.report_nonfinite(3, 0);
  mon.flush(0, 0, 0);
  EXPECT_FALSE(mon.due());  // flush closes the probe window
  EXPECT_DOUBLE_EQ(mon.last_max_cond(), 500.0);
  EXPECT_EQ(mon.last_max_staleness(), 4);
  EXPECT_EQ(mon.last_nonfinite(), 5);  // 2 factor + 3 weight entries
  EXPECT_DOUBLE_EQ(mon.worst_cond(), 500.0);
  EXPECT_EQ(mon.total_nonfinite(), 5);
}

TEST(HealthMonitor, FromEnvParsesCadence) {
  ::unsetenv("HYLO_HEALTH");
  EXPECT_FALSE(HealthConfig::from_env().has_value());
  ::setenv("HYLO_HEALTH", "0", 1);
  EXPECT_FALSE(HealthConfig::from_env().has_value());
  ::setenv("HYLO_HEALTH", "4", 1);
  const auto cfg = HealthConfig::from_env();
  ASSERT_TRUE(cfg.has_value());
  EXPECT_TRUE(cfg->enabled);
  EXPECT_EQ(cfg->cadence, 4);
  ::setenv("HYLO_HEALTH", "garbage", 1);
  EXPECT_THROW(HealthConfig::from_env(), Error);
  ::setenv("HYLO_HEALTH", "-2", 1);
  EXPECT_THROW(HealthConfig::from_env(), Error);
  ::unsetenv("HYLO_HEALTH");
}

// --------------------------------------------------------- alert rules ----

TEST(AlertRules, NonFiniteProbeIsCriticalAndDedupesPerEpoch) {
  AlertEngine eng{AlertConfig{}};
  eng.on_probe(0, 10, 7, 1.5, 0);
  eng.on_probe(0, 11, 9, 1.5, 0);  // same epoch: deduped
  eng.on_probe(1, 20, 1, 1.5, 0);  // next epoch: fires again
  ASSERT_EQ(eng.fired().size(), 2u);
  EXPECT_EQ(eng.fired()[0].rule, "non_finite");
  EXPECT_EQ(eng.fired()[0].severity, AlertSeverity::kCritical);
  EXPECT_EQ(eng.fired()[0].epoch, 0);
  EXPECT_EQ(eng.fired()[1].epoch, 1);
  EXPECT_EQ(eng.critical_count(), 2);
}

TEST(AlertRules, CondBlowupSeverityTiers) {
  AlertConfig cfg;
  cfg.cond_warning = 1e3;
  cfg.cond_critical = 1e6;
  AlertEngine eng(cfg);
  eng.on_probe(0, 0, 0, 1e2, 0);  // healthy
  EXPECT_TRUE(eng.fired().empty());
  eng.on_probe(1, 0, 0, 1e4, 0);  // warning band
  ASSERT_EQ(eng.fired().size(), 1u);
  EXPECT_EQ(eng.fired()[0].rule, "cond_blowup");
  EXPECT_EQ(eng.fired()[0].severity, AlertSeverity::kWarning);
  eng.on_probe(2, 0, 0, 1e7, 0);  // critical band
  EXPECT_EQ(eng.fired()[1].severity, AlertSeverity::kCritical);
  eng.on_probe(3, 0, 0, kInf, 0);  // singular factor
  EXPECT_EQ(eng.fired()[2].severity, AlertSeverity::kCritical);
  eng.on_probe(4, 0, 0, kNaN, 0);  // no probe data: not a blow-up
  EXPECT_EQ(eng.fired().size(), 3u);
}

TEST(AlertRules, StalenessAndFaultBudgets) {
  AlertConfig cfg;
  cfg.staleness_budget = 2;
  cfg.fault_budget = 5;
  AlertEngine eng(cfg);
  eng.on_probe(0, 0, 0, 1.0, 2);  // at budget: fine
  EXPECT_TRUE(eng.fired().empty());
  eng.on_probe(1, 0, 0, 1.0, 3);  // over
  ASSERT_EQ(eng.fired().size(), 1u);
  EXPECT_EQ(eng.fired()[0].rule, "staleness_budget");
  EXPECT_EQ(eng.fired()[0].severity, AlertSeverity::kWarning);
  eng.on_epoch(1, 0, 0.5, "KID", 6);  // fault budget exceeded
  ASSERT_EQ(eng.fired().size(), 2u);
  EXPECT_EQ(eng.fired()[1].rule, "fault_budget");
  EXPECT_EQ(eng.critical_count(), 0);
}

TEST(AlertRules, LossDivergenceNeedsAFullTrailingWindow) {
  AlertConfig cfg;
  cfg.loss_window = 3;
  cfg.loss_divergence_factor = 2.0;
  AlertEngine eng(cfg);
  // A 10x jump inside the warmup window must not fire: no baseline yet.
  eng.on_epoch(0, 0, 1.0, "KID", 0);
  eng.on_epoch(1, 0, 10.0, "KID", 0);
  eng.on_epoch(2, 0, 1.0, "KID", 0);
  EXPECT_TRUE(eng.fired().empty());
  // Window is now {1, 10, 1}, mean 4: 9 > 2*4 fires.
  eng.on_epoch(3, 0, 9.0, "KID", 0);
  ASSERT_EQ(eng.fired().size(), 1u);
  EXPECT_EQ(eng.fired()[0].rule, "loss_divergence");
  EXPECT_EQ(eng.fired()[0].severity, AlertSeverity::kCritical);
  EXPECT_DOUBLE_EQ(eng.fired()[0].threshold, 8.0);
}

TEST(AlertRules, NonFiniteLossIsCriticalNotDivergence) {
  AlertEngine eng{AlertConfig{}};
  eng.on_epoch(0, 0, 1.0, "KID", 0);
  eng.on_epoch(1, 0, kNaN, "KID", 0);
  ASSERT_EQ(eng.fired().size(), 1u);
  EXPECT_EQ(eng.fired()[0].rule, "non_finite");
  EXPECT_EQ(eng.critical_count(), 1);
}

TEST(AlertRules, SwitchOscillationCountsFlips) {
  AlertConfig cfg;
  cfg.oscillation_window = 6;
  cfg.oscillation_flips = 4;
  AlertEngine eng(cfg);
  const char* modes[] = {"KID", "KIS", "KID", "KIS", "KID"};
  for (int e = 0; e < 5; ++e) eng.on_epoch(e, 0, 1.0, modes[e], 0);
  // 4 flips across 5 epochs: flapping.
  ASSERT_FALSE(eng.fired().empty());
  EXPECT_EQ(eng.fired().back().rule, "switch_oscillation");
  EXPECT_EQ(eng.fired().back().severity, AlertSeverity::kWarning);

  // A single clean switch never fires.
  AlertEngine calm(cfg);
  for (int e = 0; e < 6; ++e)
    calm.on_epoch(e, 0, 1.0, e < 3 ? "KID" : "KIS", 0);
  EXPECT_TRUE(calm.fired().empty());
}

TEST(AlertRules, SummaryRollsUpByRule) {
  AlertEngine eng{AlertConfig{}};
  EXPECT_EQ(eng.summary(), "health: no alerts fired");
  eng.on_probe(2, 0, 4, 1.0, 0);
  const std::string s = eng.summary();
  EXPECT_NE(s.find("1 alert(s), 1 critical"), std::string::npos);
  EXPECT_NE(s.find("non_finite: x1 (first at epoch 2)"), std::string::npos);
}

// ------------------------------------------------- trainer integration ----

TrainConfig base_train_config() {
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 16;
  tc.world = 2;
  tc.interconnect = mist_v100();
  tc.max_iters_per_epoch = 6;
  tc.faults = FaultConfig{};     // pin ambient HYLO_FAULTS off
  tc.health = HealthConfig{};    // pin ambient HYLO_HEALTH off (disabled)
  return tc;
}

struct RunOutput {
  std::vector<real_t> weights;
  TrainResult result;
};

RunOutput run_hylo(const TrainConfig& tc) {
  const DataSplit data = make_spirals(256, 64, 2, 0.08, 11);
  Network net = make_mlp({2, 1, 1}, {16, 16}, 2, 1);
  OptimConfig oc;
  oc.lr = 0.05;
  oc.damping = 0.3;
  oc.update_freq = 2;
  oc.rank_ratio = 0.25;
  HyloOptimizer opt(oc);
  Trainer trainer(net, opt, data, tc);
  RunOutput out;
  out.result = trainer.run();
  out.weights = flat_weights(net);
  return out;
}

TEST(HealthTrainer, ProbesAreBitwiseInvisible) {
  // The tentpole contract: enabling probes (any cadence) must not change a
  // single bit of training — probes read committed state into locals only.
  const RunOutput off = run_hylo(base_train_config());

  for (const index_t cadence : {index_t{1}, index_t{3}}) {
    TrainConfig tc = base_train_config();
    HealthConfig hc;
    hc.enabled = true;
    hc.cadence = cadence;
    tc.health = hc;
    const RunOutput on = run_hylo(tc);
    ASSERT_EQ(on.weights.size(), off.weights.size());
    for (std::size_t i = 0; i < off.weights.size(); ++i)
      ASSERT_EQ(on.weights[i], off.weights[i])
          << "weight " << i << " diverged at cadence " << cadence;
    // Losses/metrics are modeled quantities and must match exactly; the
    // simulated time axis folds in *measured* compute wall time, which is
    // not reproducible run-to-run, so it is deliberately not compared.
    for (std::size_t e = 0; e < off.result.epochs.size(); ++e) {
      EXPECT_EQ(on.result.epochs[e].train_loss,
                off.result.epochs[e].train_loss);
      EXPECT_EQ(on.result.epochs[e].test_metric,
                off.result.epochs[e].test_metric);
    }
  }
  // And the disabled run reports a disabled subsystem.
  EXPECT_EQ(off.result.alerts_fired, 0);
  EXPECT_EQ(off.result.critical_alerts, 0);
}

TEST(HealthTrainer, ProbesEmitRecordsAndMetrics) {
  const auto dir = std::filesystem::temp_directory_path() / "hylo_health_rec";
  std::filesystem::remove_all(dir);
  const DataSplit data = make_spirals(256, 64, 2, 0.08, 11);
  Network net = make_mlp({2, 1, 1}, {16, 16}, 2, 1);
  OptimConfig oc;
  oc.lr = 0.05;
  oc.damping = 0.3;
  oc.update_freq = 2;
  oc.rank_ratio = 0.25;
  HyloOptimizer opt(oc);
  TrainConfig tc = base_train_config();
  HealthConfig hc;
  hc.enabled = true;
  tc.health = hc;
  tc.telemetry.dir = dir.string();
  Trainer trainer(net, opt, data, tc);
  trainer.run();

  EXPECT_GT(trainer.health().probes(), 0);
  EXPECT_TRUE(std::isfinite(trainer.health().worst_cond()));
  EXPECT_GT(trainer.health().worst_cond(), 0.0);

  // Every per-layer key in every health record comes from the probe
  // catalogue (plus the layer index itself) — the closed-set contract the
  // lint rule enforces on metric names.
  std::set<std::string> catalogue = {"layer"};
  for (const char* p : obs::kProbeCatalogue) catalogue.insert(p);
  const auto records = read_jsonl(trainer.run_log().run_log_path());
  index_t health_records = 0;
  const Json* summary = nullptr;
  for (const Json& r : records) {
    const std::string type = r.at("type").str();
    if (type == "health_summary") summary = &r;
    if (type != "health") continue;
    ++health_records;
    EXPECT_EQ(r.at("method").str(), "hylo");
    for (const Json& layer : r.at("layers").items())
      for (const auto& [key, value] : layer.members())
        EXPECT_TRUE(catalogue.count(key) > 0)
            << "unregistered probe field '" << key << "'";
  }
  EXPECT_EQ(health_records, trainer.health().probes());
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(summary->at("probes").number(),
                   static_cast<double>(trainer.health().probes()));

  // Metrics landed under the method-tagged prefix.
  auto& reg = trainer.comm().profiler().registry();
  const Json snap = reg.snapshot();
  bool saw_cond = false;
  for (const auto& [name, v] : snap.at("histograms").members())
    if (name == "optim/hylo/health/cond") saw_cond = true;
  EXPECT_TRUE(saw_cond);
  std::filesystem::remove_all(dir);
}

TEST(HealthTrainer, EveryCurvatureMethodProbes) {
  const DataSplit data = make_spirals(256, 64, 2, 0.08, 11);
  for (const std::string method :
       {"SNGD", "KFAC", "EKFAC", "KBFGS-L", "HyLo"}) {
    Network net = make_mlp({2, 1, 1}, {16, 16}, 2, 1);
    OptimConfig oc;
    oc.lr = 0.05;
    oc.damping = 0.3;
    oc.update_freq = 2;
    oc.rank_ratio = 0.25;
    auto opt = make_optimizer(method, oc);
    TrainConfig tc = base_train_config();
    HealthConfig hc;
    hc.enabled = true;
    tc.health = hc;
    Trainer trainer(net, *opt, data, tc);
    trainer.run();
    EXPECT_GT(trainer.health().probes(), 0) << method;
    // Every curvature method exposes at least one readable condition
    // estimate through its existing factorization.
    EXPECT_TRUE(std::isfinite(trainer.health().worst_cond())) << method;
    EXPECT_GT(trainer.health().worst_cond(), 0.0) << method;
    EXPECT_EQ(trainer.health().total_nonfinite(), 0) << method;
  }
}

TEST(HealthTrainer, SeededDivergenceFiresCriticalAlert) {
  // SGD at lr 1e6 blows the weights to NaN within an epoch; the probe
  // layer must catch it and the engine must escalate to critical.
  const DataSplit data = make_spirals(256, 64, 2, 0.08, 11);
  Network net = make_mlp({2, 1, 1}, {16, 16}, 2, 1);
  OptimConfig oc;
  oc.lr = 1e6;
  oc.momentum = 0.9;
  oc.weight_decay = 5e-4;  // lr * wd = 500x weight growth per step -> inf
  auto opt = make_optimizer("SGD", oc);
  TrainConfig tc = base_train_config();
  tc.epochs = 2;
  HealthConfig hc;
  hc.enabled = true;
  tc.health = hc;
  Trainer trainer(net, *opt, data, tc);
  const TrainResult res = trainer.run();

  EXPECT_GT(res.critical_alerts, 0);
  bool saw_non_finite = false;
  for (const auto& a : trainer.alerts().fired())
    if (a.rule == "non_finite" && a.severity == AlertSeverity::kCritical)
      saw_non_finite = true;
  EXPECT_TRUE(saw_non_finite);
  EXPECT_GT(trainer.health().total_nonfinite(), 0);
}

}  // namespace
}  // namespace hylo
