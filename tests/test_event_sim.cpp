// Event-timeline simulator (DESIGN.md §15): FIFO wire reservation, the
// (ready time, seq) completion-order rule, bitwise-deterministic replay,
// snapshot round-trips, and the async trainer path (overlapped curvature
// gathers committing through the bounded-staleness deadline). Every trainer
// test pins cfg.comm_mode and cfg.faults explicitly so ambient HYLO_COMM /
// HYLO_FAULTS environments (the env-suite ctest lanes) cannot perturb the
// assertions — except the EnvResolution test, which checks the precedence
// rule itself and adapts to whatever the environment says.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>

#include "hylo/hylo.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

std::string tmp_dir(const std::string& name) {
  // PID-qualified: ctest runs this binary twice concurrently (plain +
  // comm_async_env_suite), and a shared path would race on remove_all vs.
  // the sibling's live snapshots.
  const std::string dir = "/tmp/hylo_test_event_sim_" +
                          std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(EventTimeline, WireIsAFifoResource) {
  EventTimeline tl(4);
  // First op: starts at its earliest time, occupies [1.0, 3.0).
  const TimelineEvent a = tl.issue("comm/gather", 1.0, 2.0, false);
  EXPECT_EQ(a.seq, 0u);
  EXPECT_EQ(a.start_s, 1.0);
  EXPECT_EQ(a.ready_s, 3.0);
  // Second op wants to start at 0.5 but the wire is busy until 3.0.
  const TimelineEvent b = tl.issue("comm/broadcast", 0.5, 1.0, false);
  EXPECT_EQ(b.seq, 1u);
  EXPECT_EQ(b.start_s, 3.0);
  EXPECT_EQ(b.ready_s, 4.0);
  // Third op arrives after the wire freed up: no queueing delay.
  const TimelineEvent c = tl.issue("comm/gather", 10.0, 1.0, false);
  EXPECT_EQ(c.start_s, 10.0);
  EXPECT_EQ(tl.wire_busy_until(), 11.0);
  EXPECT_EQ(tl.history().size(), 3u);
}

TEST(EventTimeline, FailedEventsDoNotOccupyWire) {
  EventTimeline tl(2);
  const TimelineEvent dead = tl.issue("comm/gather", 1.0, 5.0, true);
  EXPECT_TRUE(dead.failed);
  // The wire never saw the failed operation: the next op starts on time.
  const TimelineEvent live = tl.issue("comm/gather", 2.0, 1.0, false);
  EXPECT_EQ(live.start_s, 2.0);
  EXPECT_EQ(live.ready_s, 3.0);
}

TEST(EventTimeline, CompletionOrderIsReadyTimeThenSeq) {
  // Equal ready times break ties by issue order — the rule that makes the
  // async commit order (and therefore training itself) a total order.
  TimelineEvent x, y, z;
  x.seq = 0, x.ready_s = 2.0;
  y.seq = 1, y.ready_s = 2.0;
  z.seq = 2, z.ready_s = 1.0;
  EXPECT_TRUE(completes_before(z, x));
  EXPECT_TRUE(completes_before(x, y));
  EXPECT_FALSE(completes_before(y, x));
  std::vector<TimelineEvent> evs = {y, x, z};
  std::sort(evs.begin(), evs.end(), completes_before);
  EXPECT_EQ(evs[0].seq, 2u);
  EXPECT_EQ(evs[1].seq, 0u);
  EXPECT_EQ(evs[2].seq, 1u);
}

TEST(EventTimeline, ClocksBarrierAndHorizon) {
  EventTimeline tl(3);
  tl.advance(0, 1.0);
  tl.advance(1, 2.5);
  EXPECT_EQ(tl.rank_clock(0), 1.0);
  EXPECT_EQ(tl.rank_clock(2), 0.0);
  EXPECT_EQ(tl.max_clock(), 2.5);
  // A blocking collective completing at t=4 drags every rank to t=4.
  tl.barrier_at(4.0);
  for (index_t r = 0; r < 3; ++r) EXPECT_EQ(tl.rank_clock(r), 4.0);
  // Horizon covers in-flight wire traffic past every clock.
  tl.issue("comm/gather", 4.0, 3.0, false);
  EXPECT_EQ(tl.horizon(), 7.0);
  EXPECT_THROW(tl.rank_clock(3), Error);
}

TEST(EventTimeline, SetWorldKeepsSurvivorsInStep) {
  EventTimeline tl(4);
  tl.advance(1, 9.0);
  tl.advance(3, 20.0);  // doomed rank: its clock leaves with it
  tl.set_world(2);      // rank-loss commit drops clocks beyond the world
  EXPECT_EQ(tl.world(), 2);
  EXPECT_EQ(tl.max_clock(), 9.0);
  // Growth extends from the surviving max clock: no rank time-travels.
  tl.set_world(3);
  EXPECT_EQ(tl.rank_clock(2), 9.0);
}

TEST(EventTimeline, SaveLoadContinuesBitwise) {
  // Serialize mid-stream, restore into a fresh timeline, and continue with
  // the same operations: the continuation must match the uninterrupted run
  // exactly (this is what makes async checkpoint-resume bitwise).
  EventTimeline a(3);
  a.advance(1, 0.75);
  a.issue("comm/gather", 0.5, 1.5, false);

  ckpt::ByteWriter w;
  a.save(w);
  EventTimeline b(1);  // wrong world on purpose: load must restore it
  ckpt::ByteReader r(w.bytes().data(), w.size(), "timeline");
  b.load(r);
  r.expect_done();

  EXPECT_EQ(b.world(), 3);
  EXPECT_EQ(b.wire_busy_until(), a.wire_busy_until());
  const TimelineEvent ea = a.issue("comm/broadcast", 1.0, 2.0, false);
  const TimelineEvent eb = b.issue("comm/broadcast", 1.0, 2.0, false);
  EXPECT_EQ(ea.seq, eb.seq);
  EXPECT_EQ(ea.start_s, eb.start_s);
  EXPECT_EQ(ea.ready_s, eb.ready_s);
}

TEST(AsyncComm, IchargeMatchesLockstepLedgerAndModeledTime) {
  // The nonblocking forms charge the same wire-byte ledger and the same
  // modeled duration as their blocking lockstep counterparts — only the
  // position on the timeline differs.
  CommSim sync(4, mist_v100());
  sync.charge_allreduce(1 << 16, "comm/grad_allreduce");
  sync.charge_allgather(std::vector<index_t>{64, 128, 256, 512},
                        "comm/gather");
  sync.charge_broadcast(1 << 12, "comm/broadcast");

  CommSim as(4, mist_v100());
  as.set_mode(CommMode::kAsync);
  const CommEvent ar =
      as.icharge_allreduce(1 << 16, "comm/grad_allreduce", 0.0);
  const CommEvent ag = as.icharge_allgather(
      std::vector<index_t>{64, 128, 256, 512}, "comm/gather", ar.ready_s);
  const CommEvent bc =
      as.icharge_broadcast(1 << 12, "comm/broadcast", ag.ready_s);

  EXPECT_EQ(as.total_wire_bytes(), sync.total_wire_bytes());
  EXPECT_EQ(as.total_messages(), sync.total_messages());
  // Chained back-to-back on an idle wire, the modeled durations sum to the
  // lockstep total.
  EXPECT_NEAR(bc.ready_s, sync.comm_seconds(), 1e-12);
  EXPECT_NEAR(as.comm_seconds(), sync.comm_seconds(), 1e-12);
}

TEST(AsyncComm, DeterministicTimelineUnderFaultStorm) {
  // Same seed, same issue sequence: the event histories must be
  // byte-identical — the queue rule (ready_s, seq) plus the deterministic
  // fault plan leave no room for divergence.
  auto drive = [](CommSim& comm) {
    comm.set_mode(CommMode::kAsync);
    comm.configure_faults(FaultConfig::parse("23:0.4"));
    double t = 0.0;
    for (int i = 0; i < 30; ++i) {
      const CommEvent g = comm.icharge_allgather(
          std::vector<index_t>{256, 512, 1024, 2048}, "comm/gather", t);
      const CommEvent b =
          comm.icharge_broadcast(1 << 10, "comm/broadcast", g.ready_s);
      t += 1e-4 + (b.failed ? 0.0 : b.ready_s * 1e-6);
    }
  };
  CommSim a(4, mist_v100()), b(4, mist_v100());
  drive(a);
  drive(b);
  const auto& ha = a.timeline()->history();
  const auto& hb = b.timeline()->history();
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].seq, hb[i].seq);
    EXPECT_EQ(ha[i].start_s, hb[i].start_s);
    EXPECT_EQ(ha[i].ready_s, hb[i].ready_s);
    EXPECT_EQ(ha[i].failed, hb[i].failed);
    EXPECT_EQ(ha[i].section, hb[i].section);
  }
  EXPECT_EQ(a.total_wire_bytes(), b.total_wire_bytes());
  EXPECT_EQ(a.comm_seconds(), b.comm_seconds());
}

DataSplit spiral_data() { return make_spirals(384, 96, 2, 0.08, 11); }

TrainConfig async_config(index_t epochs, index_t world) {
  TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 16;
  tc.world = world;
  tc.interconnect = mist_v100();
  tc.comm_mode = CommMode::kAsync;  // pinned (env-proof)
  tc.faults = FaultConfig{};        // pinned fault-free (env-proof)
  return tc;
}

TEST(AsyncTrainer, OverlapsRefreshGathersAndStillLearns) {
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {32, 32}, 2, 1);
  OptimConfig oc;
  oc.lr = 0.1;
  oc.damping = 0.3;
  oc.update_freq = 4;
  KFac opt(oc);
  Trainer trainer(net, opt, data, async_config(16, 4));
  const TrainResult res = trainer.run();
  EXPECT_GT(res.best_metric(), 0.8);
  // Refresh gathers went through the timeline and the wall clock is the
  // timeline horizon (plus replicated compute), not the lockstep sum.
  EXPECT_GT(trainer.profiler().seconds("comm/gather"), 0.0);
  ASSERT_NE(trainer.comm().timeline(), nullptr);
  EXPECT_GT(trainer.comm().timeline()->horizon(), 0.0);
  EXPECT_FALSE(trainer.comm().timeline()->history().empty());
  // Every overlapped refresh eventually committed or degraded: nothing is
  // left pending once training ends.
  EXPECT_EQ(opt.async_pending(), 0);
}

TEST(AsyncTrainer, DeterministicAcrossRuns) {
  // Losses, metrics, the modeled comm clock, and the timeline horizon are
  // all bitwise-reproducible. (Wall seconds are not compared: they fold in
  // *measured* replicated compute, which is real time by design.)
  const DataSplit data = spiral_data();
  struct Out {
    TrainResult res;
    double horizon = 0.0;
    double comm_s = 0.0;
  };
  auto run_once = [&] {
    Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
    OptimConfig oc;
    oc.lr = 0.05;
    oc.damping = 0.3;
    oc.update_freq = 3;
    HyloOptimizer opt(oc);
    Trainer trainer(net, opt, data, async_config(3, 4));
    Out out;
    out.res = trainer.run();
    out.horizon = trainer.comm().timeline()->horizon();
    out.comm_s = trainer.comm().comm_seconds();
    return out;
  };
  const Out a = run_once();
  const Out b = run_once();
  ASSERT_EQ(a.res.epochs.size(), b.res.epochs.size());
  for (std::size_t e = 0; e < a.res.epochs.size(); ++e) {
    EXPECT_EQ(a.res.epochs[e].train_loss, b.res.epochs[e].train_loss);
    EXPECT_EQ(a.res.epochs[e].test_metric, b.res.epochs[e].test_metric);
  }
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.comm_s, b.comm_s);
}

TEST(AsyncTrainer, LockstepDefaultIsUntouchedByAsyncMachinery) {
  // With comm_mode pinned to lockstep the trainer must not create a
  // timeline at all — the default path stays bitwise what it was before
  // the async subsystem existed.
  const DataSplit data = spiral_data();
  Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
  OptimConfig oc;
  Sgd opt(oc);
  TrainConfig tc = async_config(2, 2);
  tc.comm_mode = CommMode::kLockstep;
  Trainer trainer(net, opt, data, tc);
  trainer.run();
  EXPECT_EQ(trainer.comm().timeline(), nullptr);
  EXPECT_FALSE(trainer.comm().async());
}

TEST(AsyncTrainer, ConfigPinBeatsEnvironment) {
  // Precedence: an explicit cfg.comm_mode wins over HYLO_COMM; with the
  // config unset the environment decides; with neither, lockstep. This
  // test adapts to the ambient environment so it holds in both the plain
  // and the comm_async_env_suite ctest lanes.
  const std::optional<CommMode> env = comm_mode_from_env();
  const DataSplit data = spiral_data();
  auto mode_of = [&](std::optional<CommMode> pin) {
    Network net = make_mlp({2, 1, 1}, {16}, 2, 3);
    OptimConfig oc;
    Sgd opt(oc);
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 16;
    tc.world = 2;
    tc.max_iters_per_epoch = 2;
    tc.interconnect = mist_v100();
    tc.faults = FaultConfig{};
    tc.comm_mode = pin;
    Trainer trainer(net, opt, data, tc);
    return trainer.comm().mode();
  };
  EXPECT_EQ(mode_of(CommMode::kAsync), CommMode::kAsync);
  EXPECT_EQ(mode_of(CommMode::kLockstep), CommMode::kLockstep);
  EXPECT_EQ(mode_of(std::nullopt), env.value_or(CommMode::kLockstep));
}

TEST(AsyncTrainer, SnapshotResumeIsBitwise) {
  // Interrupt an async run at a snapshot boundary and resume: weights,
  // losses, and metrics must match the uninterrupted run bitwise. The
  // timeline section rides in the snapshot exactly when async mode is
  // active, so the resumed event queue continues from the same clocks and
  // wire cursor. (Wall seconds fold in measured replicated compute, which
  // the resume contract documents as restarting — not compared.)
  const DataSplit data = spiral_data();
  const std::string dir = tmp_dir("async_resume");
  auto make_net = [] { return make_mlp({2, 1, 1}, {16}, 2, 3); };
  auto make_cfg = [&] {
    TrainConfig tc = async_config(2, 2);
    tc.max_iters_per_epoch = 6;
    tc.batch_size = 16;
    return tc;
  };
  OptimConfig oc;
  oc.lr = 0.05;
  oc.damping = 0.3;
  oc.update_freq = 3;

  // Reference: straight through.
  Network ref_net = make_net();
  KFac ref_opt(oc);
  Trainer ref(ref_net, ref_opt, data, make_cfg());
  const TrainResult ref_res = ref.run();

  // Snapshotting run.
  Network snap_net = make_net();
  KFac snap_opt(oc);
  TrainConfig snap_cfg = make_cfg();
  snap_cfg.checkpoint.dir = dir;
  snap_cfg.checkpoint.every = 4;
  snap_cfg.checkpoint.keep = 0;
  Trainer snapper(snap_net, snap_opt, data, snap_cfg);
  snapper.run();
  const std::vector<std::string> snaps = ckpt::list_snapshots(dir);
  ASSERT_FALSE(snaps.empty());

  // Resume the earliest snapshot to cover the longest continuation.
  Network res_net = make_net();
  KFac res_opt(oc);
  Trainer resumer(res_net, res_opt, data, make_cfg());
  const TrainResult res_res = resumer.resume(snaps.front());

  ASSERT_EQ(ref_res.epochs.size(), res_res.epochs.size());
  for (std::size_t e = 0; e < ref_res.epochs.size(); ++e) {
    EXPECT_EQ(ref_res.epochs[e].train_loss, res_res.epochs[e].train_loss);
    EXPECT_EQ(ref_res.epochs[e].test_metric, res_res.epochs[e].test_metric);
  }
  // The modeled timeline itself continues bitwise.
  EXPECT_EQ(ref.comm().timeline()->horizon(),
            resumer.comm().timeline()->horizon());
  EXPECT_EQ(ref.comm().comm_seconds(), resumer.comm().comm_seconds());
  auto flat = [](Network& n) {
    std::vector<real_t> out;
    for (auto* pb : n.param_blocks())
      out.insert(out.end(), pb->w.data(), pb->w.data() + pb->w.size());
    return out;
  };
  const std::vector<real_t> wa = flat(ref_net), wb = flat(res_net);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]);
}

}  // namespace
}  // namespace hylo
