// First-order optimizers and the shared update machinery (momentum, weight
// decay, KL clip) that every NGD method applies after preconditioning.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "hylo/nn/layers.hpp"
#include "hylo/optim/kfac.hpp"
#include "hylo/optim/optimizer.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

// One-linear-layer network whose gradient we can set by hand.
Network tiny_net(std::uint64_t seed = 1) {
  Rng rng(seed);
  Network net;
  int x = net.add_input({2, 1, 1});
  net.add(std::make_unique<Linear>(2, rng), x);
  return net;
}

void set_grad(Network& net, real_t value) {
  for (auto* pb : net.param_blocks()) pb->gw.fill(value);
}

TEST(Sgd, PlainStepIsLrTimesGrad) {
  Network net = tiny_net();
  OptimConfig oc;
  oc.lr = 0.5;
  oc.momentum = 0.0;
  oc.weight_decay = 0.0;
  Sgd opt(oc);
  const Matrix w0 = net.param_blocks()[0]->w;
  set_grad(net, 2.0);
  opt.step(net, 0);
  const Matrix& w1 = net.param_blocks()[0]->w;
  for (index_t i = 0; i < w1.size(); ++i)
    EXPECT_NEAR(w1.data()[i], w0.data()[i] - 0.5 * 2.0, 1e-12);
}

TEST(Sgd, MomentumAccumulates) {
  Network net = tiny_net();
  OptimConfig oc;
  oc.lr = 1.0;
  oc.momentum = 0.5;
  Sgd opt(oc);
  const Matrix w0 = net.param_blocks()[0]->w;
  set_grad(net, 1.0);
  opt.step(net, 0);  // buf = 1, delta = 1
  set_grad(net, 1.0);
  opt.step(net, 1);  // buf = 1.5, delta = 1.5
  const Matrix& w2 = net.param_blocks()[0]->w;
  for (index_t i = 0; i < w2.size(); ++i)
    EXPECT_NEAR(w2.data()[i], w0.data()[i] - 2.5, 1e-12);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Network net = tiny_net();
  OptimConfig oc;
  oc.lr = 0.1;
  oc.momentum = 0.0;
  oc.weight_decay = 0.1;
  Sgd opt(oc);
  const Matrix w0 = net.param_blocks()[0]->w;
  set_grad(net, 0.0);
  opt.step(net, 0);
  const Matrix& w1 = net.param_blocks()[0]->w;
  for (index_t i = 0; i < w1.size(); ++i)
    EXPECT_NEAR(w1.data()[i], w0.data()[i] * (1.0 - 0.1 * 0.1), 1e-12);
}

TEST(Adam, FirstStepIsLrSignedGradient) {
  // With bias correction, Adam's first step is lr * g/(|g| + eps·corr).
  Network net = tiny_net();
  OptimConfig oc;
  oc.lr = 0.01;
  oc.weight_decay = 0.0;
  Adam opt(oc);
  const Matrix w0 = net.param_blocks()[0]->w;
  set_grad(net, 3.0);
  opt.step(net, 0);
  const Matrix& w1 = net.param_blocks()[0]->w;
  for (index_t i = 0; i < w1.size(); ++i)
    EXPECT_NEAR(w1.data()[i], w0.data()[i] - 0.01, 1e-5);
}

TEST(Adam, AdaptsToGradientScale) {
  // Two parameters with very different gradient magnitudes get comparable
  // step sizes — the defining Adam property.
  Network net = tiny_net();
  OptimConfig oc;
  oc.lr = 0.01;
  Adam opt(oc);
  ParamBlock* pb = net.param_blocks()[0];
  const Matrix w0 = pb->w;
  for (int it = 0; it < 20; ++it) {
    pb->gw.fill(0.0);
    pb->gw(0, 0) = 100.0;
    pb->gw(1, 1) = 0.01;
    opt.step(net, it);
  }
  const real_t step_big = std::abs(pb->w(0, 0) - w0(0, 0));
  const real_t step_small = std::abs(pb->w(1, 1) - w0(1, 1));
  EXPECT_GT(step_small, 0.3 * step_big);
}

TEST(Adam, StateBytesGrow) {
  Network net = tiny_net();
  OptimConfig oc;
  Adam opt(oc);
  EXPECT_EQ(opt.state_bytes(), 0);
  set_grad(net, 1.0);
  opt.step(net, 0);
  EXPECT_GT(opt.state_bytes(), 0);
}

TEST(KlClip, LargeUpdatesAreRescaled) {
  // Drive KFAC's step with an enormous gradient and a tiny trust region:
  // the applied update must be much smaller than the unclipped one.
  auto run = [&](real_t clip) {
    Network net = tiny_net(7);
    OptimConfig oc;
    oc.lr = 1.0;
    oc.momentum = 0.0;
    oc.weight_decay = 0.0;
    oc.kl_clip = clip;
    oc.damping = 1.0;
    oc.stat_decay = 0.0;
    KFac opt(oc);
    // Feed curvature once so preconditioning is active.
    CaptureSet cap;
    cap.a.resize(1);
    cap.g.resize(1);
    Rng rng(3);
    cap.a[0].push_back(testutil::random_matrix(rng, 8, 3));
    cap.g[0].push_back(testutil::random_matrix(rng, 8, 2));
    CommSim comm(1, loopback());
    opt.update_curvature(net.param_blocks(), cap, &comm);
    const Matrix w0 = net.param_blocks()[0]->w;
    set_grad(net, 50.0);
    opt.step(net, 0);
    return frobenius_norm(net.param_blocks()[0]->w - w0);
  };
  const real_t clipped = run(1e-4);
  const real_t free = run(1e12);
  EXPECT_LT(clipped, 0.1 * free);
}

TEST(KlClip, SmallUpdatesPassThrough) {
  Network net = tiny_net(8);
  OptimConfig oc;
  oc.lr = 1e-6;
  oc.momentum = 0.0;
  oc.kl_clip = 1.0;  // huge region, tiny update: nu == 1
  oc.stat_decay = 0.0;
  KFac opt(oc);
  CaptureSet cap;
  cap.a.resize(1);
  cap.g.resize(1);
  Rng rng(4);
  cap.a[0].push_back(testutil::random_matrix(rng, 8, 3));
  cap.g[0].push_back(testutil::random_matrix(rng, 8, 2));
  CommSim comm(1, loopback());
  opt.update_curvature(net.param_blocks(), cap, &comm);
  set_grad(net, 1.0);
  // Manually compute the unclipped preconditioned step.
  ParamBlock* pb = net.param_blocks()[0];
  const Matrix w0 = pb->w;
  opt.step(net, 0);
  // Just assert the step is nonzero and finite; the clip factor was 1.
  const real_t norm = frobenius_norm(pb->w - w0);
  EXPECT_GT(norm, 0.0);
  EXPECT_TRUE(std::isfinite(norm));
}

TEST(Optimizer, StateBytesIncludesMomentum) {
  Network net = tiny_net(9);
  OptimConfig oc;
  Sgd opt(oc);
  EXPECT_EQ(opt.state_bytes(), 0);
  set_grad(net, 1.0);
  opt.step(net, 0);
  // 2x3 weight block -> 6 doubles of momentum.
  EXPECT_EQ(opt.state_bytes(), 6 * static_cast<index_t>(sizeof(real_t)));
}

}  // namespace
}  // namespace hylo
