// Jacobi eigensolver: reconstruction, orthonormality, ordering, and the
// Fig. 10 numerical-rank definition.
#include <gtest/gtest.h>

#include <cmath>

#include "hylo/linalg/eigh.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

class EighSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(EighSizes, Reconstructs) {
  const index_t n = GetParam();
  Rng rng(n);
  const Matrix a = testutil::random_symmetric(rng, n);
  const auto [w, v] = eigh(a);
  // A == V diag(w) Vᵀ.
  Matrix vd = v;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      vd(i, j) *= w[static_cast<std::size_t>(j)];
  EXPECT_LT(max_abs_diff(matmul_nt(vd, v), a), 1e-8 * std::max<real_t>(1, max_abs(a)));
}

TEST_P(EighSizes, EigenvectorsOrthonormal) {
  const index_t n = GetParam();
  Rng rng(100 + n);
  const auto [w, v] = eigh(testutil::random_symmetric(rng, n));
  EXPECT_LT(max_abs_diff(matmul_tn(v, v), Matrix::identity(n)), 1e-9);
}

TEST_P(EighSizes, EigenvaluesAscending) {
  const index_t n = GetParam();
  Rng rng(200 + n);
  const auto [w, v] = eigh(testutil::random_symmetric(rng, n));
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LE(w[i - 1], w[i]);
}

TEST_P(EighSizes, EigvalshAgrees) {
  const index_t n = GetParam();
  Rng rng(300 + n);
  const Matrix a = testutil::random_symmetric(rng, n);
  const auto full = eigh(a).eigenvalues;
  const auto only = eigvalsh(a);
  ASSERT_EQ(full.size(), only.size());
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_NEAR(full[i], only[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EighSizes,
                         ::testing::Values(1, 2, 3, 5, 10, 24, 50, 80));

TEST(Eigh, DiagonalMatrix) {
  Matrix a{{3, 0, 0}, {0, -1, 0}, {0, 0, 2}};
  const auto [w, v] = eigh(a);
  EXPECT_NEAR(w[0], -1.0, 1e-12);
  EXPECT_NEAR(w[1], 2.0, 1e-12);
  EXPECT_NEAR(w[2], 3.0, 1e-12);
}

TEST(Eigh, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const auto [w, v] = eigh(Matrix{{2, 1}, {1, 2}});
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  EXPECT_NEAR(w[1], 3.0, 1e-12);
}

TEST(Eigh, PsdGramHasNonNegativeEigs) {
  Rng rng(42);
  const Matrix k = gram_nt(testutil::random_matrix(rng, 20, 8));
  const auto w = eigvalsh(k);
  for (const auto v : w) EXPECT_GT(v, -1e-9);
  // Gram of a 20x8 matrix has rank <= 8: at least 12 (near-)zero eigs.
  int zeros = 0;
  for (const auto v : w) zeros += std::abs(v) < 1e-9;
  EXPECT_GE(zeros, 12);
}

TEST(NumericalRank, ExactLowRank) {
  Rng rng(3);
  const Matrix k = gram_nt(testutil::random_low_rank(rng, 30, 30, 4));
  EXPECT_LE(numerical_rank(eigvalsh(k), 0.999), 4);
}

TEST(NumericalRank, CoverageDefinition) {
  // Eigenvalues {10, 5, 3, 1, 1}: sum=20; 90% coverage needs 10+5+3 = 18.
  EXPECT_EQ(numerical_rank({10, 5, 3, 1, 1}, 0.9), 3);
  // 70% needs 10+5 = 15 >= 14.
  EXPECT_EQ(numerical_rank({10, 5, 3, 1, 1}, 0.7), 2);
}

TEST(NumericalRank, ClampsNegatives) {
  EXPECT_EQ(numerical_rank({5.0, -2.0, 0.0}, 0.9), 1);
}

TEST(NumericalRank, AllZero) { EXPECT_EQ(numerical_rank({0.0, 0.0}), 0); }

TEST(NumericalRank, IdentityNeedsAll) {
  EXPECT_EQ(numerical_rank({1, 1, 1, 1}, 0.9), 4);
}

}  // namespace
}  // namespace hylo
