// SNGD correctness: the SMW-preconditioned gradient must equal the dense
// (F + αI)⁻¹ g computed by brute force through the materialized Jacobian,
// for both the local (world=1) and gathered (world>1) paths.
#include <gtest/gtest.h>

#include "hylo/linalg/cholesky.hpp"
#include "hylo/linalg/kernels.hpp"
#include "hylo/optim/sngd.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

// Dense reference: v = (UᵀU + αI)⁻¹ vec(g), reshaped back.
Matrix dense_ngd(const Matrix& a, const Matrix& g, const Matrix& grad,
                 real_t alpha) {
  const Matrix u = khatri_rao_rowwise(g, a);
  Matrix f = gram_tn(u);
  add_diagonal(f, alpha);
  Matrix rhs(grad.size(), 1);
  for (index_t i = 0; i < grad.size(); ++i) rhs[i] = grad.data()[i];
  const Matrix sol = spd_solve(f, rhs);
  Matrix out(grad.rows(), grad.cols());
  for (index_t i = 0; i < grad.size(); ++i) out.data()[i] = sol[i];
  return out;
}

CaptureSet make_capture(Rng& rng, index_t world, index_t m, index_t din,
                        index_t dout) {
  CaptureSet cap;
  cap.a.resize(1);
  cap.g.resize(1);
  for (index_t r = 0; r < world; ++r) {
    cap.a[0].push_back(testutil::random_matrix(rng, m, din));
    cap.g[0].push_back(testutil::random_matrix(rng, m, dout));
  }
  return cap;
}

class SngdWorlds : public ::testing::TestWithParam<index_t> {};

TEST_P(SngdWorlds, MatchesDenseInverse) {
  const index_t world = GetParam();
  Rng rng(world);
  const index_t m = 6, din = 5, dout = 4;
  const CaptureSet cap = make_capture(rng, world, m, din, dout);

  OptimConfig cfg;
  cfg.damping = 0.3;
  Sngd opt(cfg);
  ParamBlock pb;
  pb.d_in = din - 1;
  pb.d_out = dout;
  CommSim comm(world, loopback());
  opt.update_curvature({&pb}, cap, &comm);

  const Matrix grad = testutil::random_matrix(rng, dout, din);
  const Matrix got = opt.preconditioned(grad, 0);

  // Reference over the *global* batch.
  std::vector<Matrix> ap(cap.a[0].begin(), cap.a[0].end());
  std::vector<Matrix> gp(cap.g[0].begin(), cap.g[0].end());
  const Matrix want = dense_ngd(vstack(ap), vstack(gp), grad, cfg.damping);
  EXPECT_LT(max_abs_diff(got, want), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Worlds, SngdWorlds, ::testing::Values(1, 2, 4));

TEST(Sngd, PreconditionShrinksHighCurvatureDirections) {
  // NGD damps directions the Fisher considers high-curvature: applying the
  // preconditioner to F's own dominant direction shrinks it strongly.
  Rng rng(9);
  const index_t m = 8, din = 4, dout = 3;
  const CaptureSet cap = make_capture(rng, 1, m, din, dout);
  OptimConfig cfg;
  cfg.damping = 0.01;
  Sngd opt(cfg);
  ParamBlock pb;
  CommSim comm(1, loopback());
  opt.update_curvature({&pb}, cap, &comm);

  // Direction inside the Jacobian row space: g_1 a_1ᵀ.
  Matrix in_span(dout, din);
  gemm_tn(cap.g[0][0].rows_range(0, 1), cap.a[0][0].rows_range(0, 1), in_span);
  const Matrix damped = opt.preconditioned(in_span, 0);
  EXPECT_LT(frobenius_norm(damped),
            frobenius_norm(in_span) / cfg.damping * 0.05);
}

TEST(Sngd, StateScalesWithGlobalBatch) {
  Rng rng(10);
  OptimConfig cfg;
  Sngd small(cfg), large(cfg);
  ParamBlock pb;
  CommSim c2(2, loopback()), c4(4, loopback());
  const CaptureSet cap2 = make_capture(rng, 2, 8, 6, 6);
  const CaptureSet cap4 = make_capture(rng, 4, 8, 6, 6);
  small.update_curvature({&pb}, cap2, &c2);
  large.update_curvature({&pb}, cap4, &c4);
  // Kernel is (P·m)²: quadrupling P·m from 16 to 32 roughly 4x the kernel
  // term; total state must grow superlinearly.
  EXPECT_GT(large.state_bytes(), 2 * small.state_bytes());
}

TEST(Sngd, ChargesGatherAndBroadcast) {
  Rng rng(11);
  OptimConfig cfg;
  Sngd opt(cfg);
  ParamBlock pb;
  CommSim comm(4, mist_v100());
  opt.update_curvature({&pb}, make_capture(rng, 4, 8, 6, 6), &comm);
  EXPECT_GT(comm.profiler().seconds("comm/gather"), 0.0);
  EXPECT_GT(comm.profiler().seconds("comm/broadcast"), 0.0);
  EXPECT_GT(comm.profiler().seconds("comp/inversion"), 0.0);
}

TEST(Sngd, NotReadyBeforeFirstUpdate) {
  OptimConfig cfg;
  Sngd opt(cfg);
  EXPECT_THROW(opt.preconditioned(Matrix(2, 2), 0), std::exception);
}

}  // namespace
}  // namespace hylo
