// Column-pivoted QR: orthogonality, reconstruction, pivot monotonicity,
// truncation — the machinery the interpolative decomposition sits on.
#include <gtest/gtest.h>

#include <cmath>

#include "hylo/linalg/qr.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

// Rebuild A from the factorization: columns piv[j] of A equal Q * r[:, j].
Matrix reconstruct(const PivotedQr& f, index_t m, index_t n) {
  // Q * R = apply Q to R-padded-to-m-rows: Q = H_0 ... H_{k-1} applied to I.
  Matrix rfull(m, n);
  for (index_t i = 0; i < f.r.rows(); ++i)
    for (index_t j = 0; j < n; ++j) rfull(i, j) = f.r(i, j);
  // Apply H_{k-1} ... H_0 (i.e. Q, since Q = (H_{k-1}...H_0)ᵀ and each H is
  // symmetric) to rfull.
  Matrix x = rfull;
  for (index_t j = f.rank - 1; j >= 0; --j) {
    const real_t tau = f.tau[static_cast<std::size_t>(j)];
    if (tau == 0.0) continue;
    for (index_t c = 0; c < n; ++c) {
      real_t dotv = 0.0;
      for (index_t i = j; i < m; ++i) dotv += f.reflectors(i, j) * x(i, c);
      dotv *= tau;
      for (index_t i = j; i < m; ++i) x(i, c) -= dotv * f.reflectors(i, j);
    }
  }
  // Un-pivot columns.
  Matrix a(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      a(i, f.piv[static_cast<std::size_t>(j)]) = x(i, j);
  return a;
}

class QrShapes
    : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(QrShapes, FullRankReconstructs) {
  const auto [m, n] = GetParam();
  Rng rng(m * 31 + n);
  const Matrix a = testutil::random_matrix(rng, m, n);
  const PivotedQr f = pivoted_qr(a);
  EXPECT_EQ(f.rank, std::min(m, n));
  EXPECT_LT(max_abs_diff(reconstruct(f, m, n), a), 1e-9);
}

TEST_P(QrShapes, DiagonalOfRIsNonIncreasing) {
  const auto [m, n] = GetParam();
  Rng rng(500 + m * 31 + n);
  const Matrix a = testutil::random_matrix(rng, m, n);
  const PivotedQr f = pivoted_qr(a);
  for (index_t i = 1; i < f.rank; ++i)
    EXPECT_LE(std::abs(f.r(i, i)), std::abs(f.r(i - 1, i - 1)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QrShapes,
                         ::testing::Values(std::pair<index_t, index_t>{1, 1},
                                           std::pair<index_t, index_t>{5, 5},
                                           std::pair<index_t, index_t>{10, 4},
                                           std::pair<index_t, index_t>{4, 10},
                                           std::pair<index_t, index_t>{40, 40},
                                           std::pair<index_t, index_t>{64, 20}));

TEST(Qr, PivotsArePermutation) {
  Rng rng(1);
  const PivotedQr f = pivoted_qr(testutil::random_matrix(rng, 12, 9));
  std::vector<bool> seen(9, false);
  for (const auto p : f.piv) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 9);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = true;
  }
}

TEST(Qr, TruncationStopsEarly) {
  Rng rng(2);
  const Matrix a = testutil::random_matrix(rng, 20, 15);
  const PivotedQr f = pivoted_qr(a, 6);
  EXPECT_EQ(f.rank, 6);
  EXPECT_EQ(f.r.rows(), 6);
  EXPECT_EQ(f.r.cols(), 15);
}

TEST(Qr, ExactRankDeficiencyDetected) {
  Rng rng(3);
  const Matrix a = testutil::random_low_rank(rng, 20, 20, 5);
  const PivotedQr f = pivoted_qr(a);
  // Numerically the trailing pivots collapse; rank should be close to 5.
  // (Downdated norms make this approximate: accept 5..8.)
  int significant = 0;
  for (index_t i = 0; i < f.rank; ++i)
    significant += std::abs(f.r(i, i)) > 1e-8 * std::abs(f.r(0, 0));
  EXPECT_EQ(significant, 5);
}

TEST(Qr, ApplyQtOrthogonality) {
  // ‖Qᵀx‖ == ‖x‖ for any x.
  Rng rng(4);
  const Matrix a = testutil::random_matrix(rng, 15, 10);
  const PivotedQr f = pivoted_qr(a);
  const Matrix x = testutil::random_matrix(rng, 15, 3);
  const Matrix qtx = apply_qt(f, x);
  EXPECT_NEAR(frobenius_norm(qtx), frobenius_norm(x), 1e-9);
}

TEST(Qr, SolveR11) {
  Rng rng(5);
  const Matrix a = testutil::random_matrix(rng, 10, 10);
  const PivotedQr f = pivoted_qr(a, 6);
  Matrix r11(6, 6);
  for (index_t i = 0; i < 6; ++i)
    for (index_t j = 0; j < 6; ++j) r11(i, j) = f.r(i, j);
  const Matrix b = testutil::random_matrix(rng, 6, 2);
  const Matrix x = solve_r11(f, b);
  EXPECT_LT(max_abs_diff(matmul(r11, x), b), 1e-9);
}

TEST(Qr, ZeroMatrixRankZero) {
  const PivotedQr f = pivoted_qr(Matrix(5, 5));
  EXPECT_EQ(f.rank, 0);
}

}  // namespace
}  // namespace hylo
