// hylo::par determinism contract (DESIGN.md §8). Two layers of guarantees
// are pinned here: (1) the static partition itself — every index covered
// exactly once for adversarial range/grain/thread combinations, exceptions
// propagated, pool resizes safe; (2) bitwise identity of the parallelized
// numerics — GEMM variants, Gram kernels, conv2d passes and the full
// KID/KIS curvature refresh must produce byte-identical results at 1, 2 and
// 7 threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "hylo/linalg/kernels.hpp"
#include "hylo/nn/layers.hpp"
#include "hylo/nn/loss.hpp"
#include "hylo/nn/network.hpp"
#include "hylo/obs/metrics.hpp"
#include "hylo/optim/hylo_optimizer.hpp"
#include "hylo/optim/sngd.hpp"
#include "hylo/par/thread_pool.hpp"
#include "hylo/tensor/ops.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

// Every test leaves the pool at the environment default so ordering between
// test binaries/cases cannot leak a thread-count change.
class Par : public ::testing::Test {
 protected:
  void TearDown() override { par::set_num_threads(0); }
};

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         std::memcmp(x.data(), y.data(),
                     sizeof(real_t) * static_cast<std::size_t>(x.size())) == 0;
}

bool bitwise_equal(const Tensor4& x, const Tensor4& y) {
  return x.size() == y.size() &&
         std::memcmp(x.data(), y.data(),
                     sizeof(real_t) * static_cast<std::size_t>(x.size())) == 0;
}

TEST_F(Par, EveryIndexCoveredExactlyOnce) {
  // Adversarial combos: empty / single-element ranges, grains larger than
  // the range, ranges not divisible by grain or thread count, more chunks
  // than threads and vice versa.
  const index_t ranges[] = {0, 1, 2, 7, 13, 64, 65, 127, 1000};
  const index_t grains[] = {1, 3, 7, 64, 1000};
  for (const int threads : {1, 2, 3, 7}) {
    par::set_num_threads(threads);
    for (const index_t range : ranges) {
      for (const index_t grain : grains) {
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(range));
        for (auto& h : hits) h.store(0);
        par::parallel_for(
            0, range, grain,
            [&](index_t b, index_t e) {
              ASSERT_LE(0, b);
              ASSERT_LE(b, e);
              ASSERT_LE(e, range);
              for (index_t i = b; i < e; ++i)
                hits[static_cast<std::size_t>(i)].fetch_add(1);
            },
            "test/coverage");
        for (index_t i = 0; i < range; ++i)
          ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
              << "range=" << range << " grain=" << grain
              << " threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST_F(Par, OffsetRangeAndChunkAlignment) {
  // Non-zero begin: chunk boundaries must stay inside [begin, end) and be
  // grain-aligned relative to begin (except the final partial chunk).
  par::set_num_threads(7);
  const index_t begin = 11, end = 97, grain = 4;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(end - begin));
  for (auto& h : hits) h.store(0);
  par::parallel_for(
      begin, end, grain,
      [&](index_t b, index_t e) {
        EXPECT_EQ((b - begin) % grain, 0);
        for (index_t i = b; i < e; ++i)
          hits[static_cast<std::size_t>(i - begin)].fetch_add(1);
      },
      "test/offset");
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(Par, ExceptionPropagatesAndPoolSurvives) {
  par::set_num_threads(4);
  EXPECT_THROW(
      par::parallel_for(
          0, 1000, 1,
          [&](index_t b, index_t) {
            if (b >= 500) throw Error("chunk failure");
          },
          "test/throw"),
      Error);
  // The pool must still work after an exception unwound a job.
  std::atomic<index_t> sum{0};
  par::parallel_for(
      0, 100, 1, [&](index_t b, index_t e) { sum.fetch_add(e - b); },
      "test/after_throw");
  EXPECT_EQ(sum.load(), 100);
}

TEST_F(Par, NestedParallelForRunsInline) {
  par::set_num_threads(4);
  std::atomic<int> outer_chunks{0};
  par::parallel_for(
      0, 8, 1,
      [&](index_t b, index_t e) {
        outer_chunks.fetch_add(1);
        // The nested loop must run inline on this participant: its chunks
        // land on the calling thread, covering the inner range exactly once.
        std::vector<int> inner(16, 0);
        par::parallel_for(
            0, 16, 1,
            [&](index_t ib, index_t ie) {
              for (index_t i = ib; i < ie; ++i)
                inner[static_cast<std::size_t>(i)] += 1;
            },
            "test/inner");
        for (const int h : inner) ASSERT_EQ(h, 1);
        (void)b;
        (void)e;
      },
      "test/outer");
  EXPECT_GE(outer_chunks.load(), 1);
}

TEST_F(Par, SetThreadsRestartIsSafe) {
  // Regression: workers born after a resize must not re-run the previous
  // (already freed) job. Alternate sizes with real work in between.
  for (const int t : {1, 3, 2, 5, 1, 4}) {
    par::set_num_threads(t);
    EXPECT_EQ(par::num_threads(), t);
    std::atomic<index_t> sum{0};
    par::parallel_for(
        0, 64, 1, [&](index_t b, index_t e) { sum.fetch_add(e - b); },
        "test/resize");
    EXPECT_EQ(sum.load(), 64);
  }
}

TEST_F(Par, ParallelReduceIsThreadCountInvariant) {
  Rng rng(99);
  std::vector<real_t> v(1013);
  for (auto& x : v) x = rng.normal();
  auto run = [&] {
    return par::parallel_reduce(
        0, static_cast<index_t>(v.size()), 64, real_t{0.0},
        [&](index_t b, index_t e) {
          real_t acc = 0.0;
          for (index_t i = b; i < e; ++i)
            acc += v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
          return acc;
        },
        [](real_t a, real_t b) { return a + b; }, "test/reduce");
  };
  par::set_num_threads(1);
  const real_t r1 = run();
  for (const int t : {2, 7}) {
    par::set_num_threads(t);
    const real_t rt = run();
    EXPECT_EQ(std::memcmp(&r1, &rt, sizeof(real_t)), 0) << "threads=" << t;
  }
}

TEST_F(Par, StatsCountCallsAndFanout) {
  par::ThreadPool& pool = par::ThreadPool::instance();
  pool.reset_stats();
  par::set_num_threads(4);
  par::parallel_for(0, 1000, 1, [](index_t, index_t) {}, "test/stats");
  par::set_num_threads(1);
  par::parallel_for(0, 1000, 1, [](index_t, index_t) {}, "test/stats");
  const auto stats = pool.stats();
  const auto it = stats.find("test/stats");
  ASSERT_NE(it, stats.end());
  EXPECT_EQ(it->second.calls, 2);
  EXPECT_EQ(it->second.split, 1);  // only the 4-thread call fanned out
  EXPECT_GE(it->second.chunks, 2);
}

// ---- Bitwise identity of the parallelized numerics ----------------------

TEST_F(Par, GemmFamilyBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(7);
  const Matrix a = testutil::random_matrix(rng, 67, 41);
  const Matrix b = testutil::random_matrix(rng, 41, 53);
  const Matrix bt = testutil::random_matrix(rng, 53, 41);
  const Matrix at = testutil::random_matrix(rng, 41, 67);

  par::set_num_threads(1);
  const Matrix r_mm = matmul(a, b);
  const Matrix r_tn = matmul_tn(at, b);
  const Matrix r_nt = matmul_nt(a, bt);
  const Matrix r_gram_nt = gram_nt(a);
  const Matrix r_gram_tn = gram_tn(a);
  const Matrix y = testutil::random_matrix(rng, 41, 1);
  const Matrix r_kr = khatri_rao_rowwise(a, a);
  Matrix r_diag;
  gemm_tn_diag(at, y, b, r_diag);

  for (const int t : {2, 7}) {
    par::set_num_threads(t);
    EXPECT_TRUE(bitwise_equal(matmul(a, b), r_mm)) << t;
    EXPECT_TRUE(bitwise_equal(matmul_tn(at, b), r_tn)) << t;
    EXPECT_TRUE(bitwise_equal(matmul_nt(a, bt), r_nt)) << t;
    EXPECT_TRUE(bitwise_equal(gram_nt(a), r_gram_nt)) << t;
    EXPECT_TRUE(bitwise_equal(gram_tn(a), r_gram_tn)) << t;
    EXPECT_TRUE(bitwise_equal(khatri_rao_rowwise(a, a), r_kr)) << t;
    Matrix d;
    gemm_tn_diag(at, y, b, d);
    EXPECT_TRUE(bitwise_equal(d, r_diag)) << t;
  }
}

TEST_F(Par, Conv2dBitwiseIdenticalAcrossThreadCounts) {
  auto make_net = [] {
    Rng wrng(21);
    Network n("par_conv");
    int x = n.add_input({2, 6, 6});
    x = n.add(std::make_unique<Conv2d>(3, 3, 1, 1, wrng), x);
    x = n.add(std::make_unique<ReLU>(), x);
    n.add(std::make_unique<Linear>(3, wrng), x);
    return n;
  };
  Rng rng(22);
  Tensor4 x(5, 2, 6, 6);
  for (index_t i = 0; i < x.size(); ++i) x[i] = rng.normal();
  std::vector<int> labels = {0, 2, 1, 0, 2};
  const PassContext ctx{.training = true, .capture = true};

  auto run = [&](Network& net, Tensor4& out, std::vector<Matrix>& grads,
                 std::vector<Matrix>& caps) {
    net.zero_grad();
    const Tensor4& logits = net.forward(x, ctx);
    out = logits;
    const LossResult lr = SoftmaxCrossEntropy().compute(logits, labels);
    net.backward(lr.grad, ctx);
    for (auto* pb : net.param_blocks()) {
      grads.push_back(pb->gw);
      caps.push_back(pb->a_samples);
      caps.push_back(pb->g_samples);
    }
  };

  par::set_num_threads(1);
  Network net1 = make_net();
  Tensor4 out1;
  std::vector<Matrix> g1, c1;
  run(net1, out1, g1, c1);

  for (const int t : {2, 7}) {
    par::set_num_threads(t);
    Network net = make_net();
    Tensor4 out;
    std::vector<Matrix> g, c;
    run(net, out, g, c);
    EXPECT_TRUE(bitwise_equal(out, out1)) << t;
    ASSERT_EQ(g.size(), g1.size());
    for (std::size_t i = 0; i < g.size(); ++i)
      EXPECT_TRUE(bitwise_equal(g[i], g1[i])) << t << " block " << i;
    ASSERT_EQ(c.size(), c1.size());
    for (std::size_t i = 0; i < c.size(); ++i)
      EXPECT_TRUE(bitwise_equal(c[i], c1[i])) << t << " capture " << i;
  }
}

CaptureSet make_capture(index_t layers, index_t world, index_t m, index_t din,
                        index_t dout) {
  Rng rng(31);
  CaptureSet cap;
  cap.a.resize(static_cast<std::size_t>(layers));
  cap.g.resize(static_cast<std::size_t>(layers));
  for (index_t l = 0; l < layers; ++l)
    for (index_t r = 0; r < world; ++r) {
      cap.a[static_cast<std::size_t>(l)].push_back(
          testutil::random_matrix(rng, m, din));
      cap.g[static_cast<std::size_t>(l)].push_back(
          testutil::random_matrix(rng, m, dout));
    }
  return cap;
}

// One full curvature refresh + preconditioning, returning the result per
// layer. Fresh optimizer each call so the rng stream starts identically.
std::vector<Matrix> hylo_refresh(HyloOptimizer::Policy policy,
                                 const CaptureSet& cap, const Matrix& grad) {
  OptimConfig cfg;
  cfg.damping = 0.3;
  cfg.rank_ratio = 0.5;
  HyloOptimizer opt(cfg);
  opt.set_policy(policy);
  opt.begin_epoch(0, false);
  std::vector<ParamBlock> blocks(static_cast<std::size_t>(cap.layers()));
  std::vector<ParamBlock*> pbs;
  for (auto& b : blocks) pbs.push_back(&b);
  CommSim comm(cap.world(), loopback());
  opt.update_curvature(pbs, cap, &comm);
  std::vector<Matrix> out;
  for (index_t l = 0; l < cap.layers(); ++l)
    out.push_back(opt.preconditioned(grad, l));
  return out;
}

TEST_F(Par, HyloKidKisBitwiseIdenticalAcrossThreadCounts) {
  const CaptureSet cap = make_capture(/*layers=*/3, /*world=*/2, /*m=*/12,
                                      /*din=*/9, /*dout=*/6);
  Rng rng(44);
  const Matrix grad = testutil::random_matrix(rng, 6, 9);

  for (const auto policy : {HyloOptimizer::Policy::kAlwaysKid,
                            HyloOptimizer::Policy::kAlwaysKis}) {
    par::set_num_threads(1);
    const std::vector<Matrix> ref = hylo_refresh(policy, cap, grad);
    for (const int t : {2, 7}) {
      par::set_num_threads(t);
      const std::vector<Matrix> got = hylo_refresh(policy, cap, grad);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t l = 0; l < ref.size(); ++l)
        EXPECT_TRUE(bitwise_equal(got[l], ref[l]))
            << "policy=" << (policy == HyloOptimizer::Policy::kAlwaysKid
                                 ? "KID"
                                 : "KIS")
            << " threads=" << t << " layer=" << l;
    }
  }
}

TEST_F(Par, SngdBitwiseIdenticalAcrossThreadCounts) {
  const CaptureSet cap = make_capture(3, 2, 10, 8, 5);
  Rng rng(45);
  const Matrix grad = testutil::random_matrix(rng, 5, 8);
  OptimConfig cfg;
  cfg.damping = 0.3;

  auto refresh = [&] {
    Sngd opt(cfg);
    std::vector<ParamBlock> blocks(static_cast<std::size_t>(cap.layers()));
    std::vector<ParamBlock*> pbs;
    for (auto& b : blocks) pbs.push_back(&b);
    CommSim comm(cap.world(), loopback());
    opt.update_curvature(pbs, cap, &comm);
    std::vector<Matrix> out;
    for (index_t l = 0; l < cap.layers(); ++l)
      out.push_back(opt.preconditioned(grad, l));
    return out;
  };

  par::set_num_threads(1);
  const std::vector<Matrix> ref = refresh();
  for (const int t : {2, 7}) {
    par::set_num_threads(t);
    const std::vector<Matrix> got = refresh();
    for (std::size_t l = 0; l < ref.size(); ++l)
      EXPECT_TRUE(bitwise_equal(got[l], ref[l])) << t << " layer " << l;
  }
}

TEST_F(Par, ProfilerCallCountsUnchangedByThreading) {
  // The staged refresh must preserve the serial bookkeeping: one
  // comp/factorization and one comp/inversion charge per layer.
  const CaptureSet cap = make_capture(3, 2, 12, 9, 6);
  for (const int t : {1, 7}) {
    par::set_num_threads(t);
    OptimConfig cfg;
    cfg.damping = 0.3;
    cfg.rank_ratio = 0.5;
    HyloOptimizer opt(cfg);
    opt.set_policy(HyloOptimizer::Policy::kAlwaysKid);
    opt.begin_epoch(0, false);
    std::vector<ParamBlock> blocks(3);
    std::vector<ParamBlock*> pbs;
    for (auto& b : blocks) pbs.push_back(&b);
    CommSim comm(cap.world(), loopback());
    opt.update_curvature(pbs, cap, &comm);
    EXPECT_EQ(comm.profiler().calls("comp/factorization"), 3) << t;
    EXPECT_EQ(comm.profiler().calls("comp/inversion"), 3) << t;
    EXPECT_EQ(comm.profiler().calls("comp/inversion_critical"), 1) << t;
  }
}

TEST_F(Par, ExportMetricsPublishesGaugeAndCounters) {
  par::ThreadPool& pool = par::ThreadPool::instance();
  pool.reset_stats();
  par::set_num_threads(3);
  par::parallel_for(0, 100, 1, [](index_t, index_t) {}, "test/export");
  obs::MetricsRegistry reg;
  par::export_metrics(reg);
  EXPECT_EQ(reg.gauge("par/threads").value(), 3.0);
  EXPECT_EQ(reg.counter_value("par/for/test/export.calls"), 1);
  EXPECT_EQ(reg.counter_value("par/for/test/export.split"), 1);
  // Re-export into the same registry must not double count.
  par::export_metrics(reg);
  EXPECT_EQ(reg.counter_value("par/for/test/export.calls"), 1);
}

}  // namespace
}  // namespace hylo
