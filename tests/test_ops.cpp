// Dense kernel correctness: every GEMM variant is validated against a naive
// reference over a parameterized sweep of shapes, plus the Gram/Hadamard and
// stacking helpers used by the NGD machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "hylo/tensor/ops.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < b.cols(); ++j) {
      real_t acc = 0.0;
      for (index_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  return c;
}

using Shape = std::tuple<index_t, index_t, index_t>;  // m, k, n

class GemmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapes, GemmMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(100 + m + 7 * k + 13 * n);
  const Matrix a = testutil::random_matrix(rng, m, k);
  const Matrix b = testutil::random_matrix(rng, k, n);
  EXPECT_LT(max_abs_diff(matmul(a, b), naive_matmul(a, b)), 1e-10);
}

TEST_P(GemmShapes, GemmTnMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(200 + m + 7 * k + 13 * n);
  const Matrix a = testutil::random_matrix(rng, k, m);  // A^T: m x k
  const Matrix b = testutil::random_matrix(rng, k, n);
  EXPECT_LT(max_abs_diff(matmul_tn(a, b), naive_matmul(a.transposed(), b)),
            1e-10);
}

TEST_P(GemmShapes, GemmNtMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(300 + m + 7 * k + 13 * n);
  const Matrix a = testutil::random_matrix(rng, m, k);
  const Matrix b = testutil::random_matrix(rng, n, k);
  EXPECT_LT(max_abs_diff(matmul_nt(a, b), naive_matmul(a, b.transposed())),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmShapes,
    ::testing::Values(Shape{1, 1, 1}, Shape{2, 3, 4}, Shape{5, 1, 7},
                      Shape{16, 16, 16}, Shape{33, 65, 17}, Shape{64, 64, 64},
                      Shape{70, 130, 3}, Shape{128, 40, 100}));

TEST(Ops, GemmAlphaBeta) {
  Rng rng(1);
  const Matrix a = testutil::random_matrix(rng, 8, 5);
  const Matrix b = testutil::random_matrix(rng, 5, 6);
  Matrix c = testutil::random_matrix(rng, 8, 6);
  const Matrix c0 = c;
  gemm(a, b, c, 2.0, 3.0);
  Matrix want = naive_matmul(a, b) * 2.0 + c0 * 3.0;
  EXPECT_LT(max_abs_diff(c, want), 1e-10);
}

TEST(Ops, GemmInnerDimMismatchThrows) {
  Matrix a(2, 3), b(4, 2), c;
  EXPECT_THROW(gemm(a, b, c), Error);
}

TEST(Ops, GramNtMatchesExplicit) {
  Rng rng(2);
  const Matrix a = testutil::random_matrix(rng, 13, 29);
  EXPECT_LT(max_abs_diff(gram_nt(a), naive_matmul(a, a.transposed())), 1e-10);
}

TEST(Ops, GramTnMatchesExplicit) {
  Rng rng(3);
  const Matrix a = testutil::random_matrix(rng, 29, 13);
  EXPECT_LT(max_abs_diff(gram_tn(a), naive_matmul(a.transposed(), a)), 1e-10);
}

TEST(Ops, GramIsSymmetric) {
  Rng rng(4);
  const Matrix g = gram_nt(testutil::random_matrix(rng, 11, 6));
  EXPECT_LT(max_abs_diff(g, g.transposed()), 0.0 + 1e-300);
}

TEST(Ops, MatvecBothWays) {
  Rng rng(5);
  const Matrix a = testutil::random_matrix(rng, 9, 14);
  std::vector<real_t> x(14), y, yt;
  for (auto& v : x) v = rng.normal();
  matvec(a, x, y);
  Matrix xm(14, 1);
  for (index_t i = 0; i < 14; ++i) xm[i] = x[static_cast<std::size_t>(i)];
  const Matrix want = naive_matmul(a, xm);
  for (index_t i = 0; i < 9; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], want[i], 1e-10);

  std::vector<real_t> z(9);
  for (auto& v : z) v = rng.normal();
  matvec_t(a, z, yt);
  Matrix zm(9, 1);
  for (index_t i = 0; i < 9; ++i) zm[i] = z[static_cast<std::size_t>(i)];
  const Matrix want_t = naive_matmul(a.transposed(), zm);
  for (index_t i = 0; i < 14; ++i)
    EXPECT_NEAR(yt[static_cast<std::size_t>(i)], want_t[i], 1e-10);
}

TEST(Ops, HadamardAndInplace) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 2}, {0.5, -1}};
  const Matrix h = hadamard(a, b);
  EXPECT_EQ(h(0, 1), 4.0);
  EXPECT_EQ(h(1, 1), -4.0);
  hadamard_inplace(a, b);
  EXPECT_EQ(max_abs_diff(a, h), 0.0);
}

TEST(Ops, AxpyAndDiagonal) {
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{1, 1}, {1, 1}};
  axpy(a, b, 0.5);
  EXPECT_EQ(a(0, 0), 1.5);
  EXPECT_EQ(a(0, 1), 0.5);
  add_diagonal(a, 2.0);
  EXPECT_EQ(a(0, 0), 3.5);
  EXPECT_EQ(a(1, 0), 0.5);
}

TEST(Ops, NormsAndDot) {
  Matrix a{{3, 4}};
  EXPECT_NEAR(frobenius_norm(a), 5.0, 1e-12);
  EXPECT_NEAR(frobenius_norm_sq(a), 25.0, 1e-12);
  Matrix b{{1, 2}};
  EXPECT_NEAR(dot(a, b), 11.0, 1e-12);
  EXPECT_EQ(max_abs(Matrix{{-7, 2}}), 7.0);
}

TEST(Ops, RowNorms) {
  Matrix a{{3, 4}, {0, 0}, {1, 0}};
  const auto n = row_norms(a);
  EXPECT_NEAR(n[0], 5.0, 1e-12);
  EXPECT_EQ(n[1], 0.0);
  EXPECT_NEAR(n[2], 1.0, 1e-12);
}

TEST(Ops, VstackConcatenates) {
  Matrix a{{1, 1}}, b{{2, 2}, {3, 3}};
  const Matrix v = vstack({a, b});
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v(2, 0), 3.0);
  EXPECT_THROW(vstack({Matrix(1, 2), Matrix(1, 3)}), Error);
}

TEST(Ops, BlockDiagAssembles) {
  Matrix a{{1}}, b{{2, 0}, {0, 2}};
  const Matrix d = block_diag({a, b});
  EXPECT_EQ(d.rows(), 3);
  EXPECT_EQ(d(0, 0), 1.0);
  EXPECT_EQ(d(2, 2), 2.0);
  EXPECT_EQ(d(0, 1), 0.0);
  EXPECT_THROW(block_diag({Matrix(1, 2)}), Error);
}

}  // namespace
}  // namespace hylo
