#pragma once
// Shared helpers for hylo tests: random matrix generation and tolerances.
#include "hylo/common/rng.hpp"
#include "hylo/tensor/matrix.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo::testutil {

inline Matrix random_matrix(Rng& rng, index_t rows, index_t cols,
                            real_t scale = 1.0) {
  Matrix m(rows, cols);
  for (index_t i = 0; i < m.size(); ++i) m[i] = scale * rng.normal();
  return m;
}

inline Matrix random_spd(Rng& rng, index_t n, real_t shift = 0.5) {
  const Matrix b = random_matrix(rng, n, n);
  Matrix s = gram_nt(b);
  add_diagonal(s, shift * static_cast<real_t>(n));
  return s;
}

inline Matrix random_symmetric(Rng& rng, index_t n) {
  Matrix m = random_matrix(rng, n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < i; ++j) {
      const real_t v = 0.5 * (m(i, j) + m(j, i));
      m(i, j) = v;
      m(j, i) = v;
    }
  return m;
}

/// Rank-deficient matrix: product of (rows x r) and (r x cols).
inline Matrix random_low_rank(Rng& rng, index_t rows, index_t cols, index_t r) {
  return matmul(random_matrix(rng, rows, r), random_matrix(rng, r, cols));
}

}  // namespace hylo::testutil
