// hylo::audit checked-execution contract. Three layers are pinned here:
// (1) the auditor itself — a deliberately-overlapping write-set declaration
// is caught (label + chunk ids in the diagnostic), a sampled
// out-of-declaration write is caught, a correctly-declared disjoint region
// passes with zero violations, and `audit::unchecked` opts out; (2) audit
// mode changes no numerics — checked serial execution is bitwise identical
// to the parallel path; (3) the `replay_check` determinism harness over the
// GEMM/conv/KID/KIS/SNGD hot paths, which must pass on the real kernels and
// fail on a synthetic thread-count-dependent region.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "hylo/audit/audit.hpp"
#include "hylo/linalg/kernels.hpp"
#include "hylo/nn/layers.hpp"
#include "hylo/nn/loss.hpp"
#include "hylo/nn/network.hpp"
#include "hylo/obs/metrics.hpp"
#include "hylo/optim/hylo_optimizer.hpp"
#include "hylo/optim/sngd.hpp"
#include "hylo/par/thread_pool.hpp"
#include "hylo/tensor/ops.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

// Audit mode on for the fixture, restored afterwards; pool restored to the
// environment default so no thread-count change leaks across tests.
class Audit : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = audit::set_enabled(true);
    audit::reset_stats();
  }
  void TearDown() override {
    audit::set_enabled(was_enabled_);
    par::set_num_threads(0);
  }
  bool was_enabled_ = false;
};

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         std::memcmp(x.data(), y.data(),
                     sizeof(real_t) * static_cast<std::size_t>(x.size())) == 0;
}

TEST_F(Audit, OverlappingDeclarationIsCaughtWithLabelAndChunks) {
  Matrix m(16, 4);
  try {
    par::parallel_for(
        0, 16, 1,
        [&](index_t b, index_t e) {
          for (index_t i = b; i < e; ++i) m(i, 0) = 1.0;
        },
        "test/overlap",
        // Broken on purpose: every chunk declares the whole matrix.
        audit::Footprint([&m](index_t, index_t, audit::WriteSet& ws) {
          ws.add_rows(m, 0, m.rows());
        }));
    FAIL() << "overlap should have been reported";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("write-set overlap"), std::string::npos) << what;
    EXPECT_NE(what.find("test/overlap"), std::string::npos) << what;
    EXPECT_NE(what.find("chunk 0"), std::string::npos) << what;
    EXPECT_NE(what.find("chunk 1"), std::string::npos) << what;
  }
  EXPECT_EQ(audit::violations(), 1);
}

TEST_F(Audit, OutOfDeclarationWriteIsCaught) {
  // Declared: the chunk's own rows. Actual: every chunk also stomps row 0,
  // so any chunk not owning row 0 writes outside its declaration. The
  // matrix is far below the sampling cap, so verification is byte-exact
  // and detection deterministic.
  Matrix m(16, 4);
  try {
    par::parallel_for(
        0, 16, 1,
        [&](index_t b, index_t e) {
          for (index_t i = b; i < e; ++i) m(i, 1) = 1.0;
          m(0, 0) += 1.0;  // the race: all chunks write row 0
        },
        "test/escape", audit::row_block(m));
    FAIL() << "out-of-declaration write should have been reported";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("out-of-declaration write"), std::string::npos) << what;
    EXPECT_NE(what.find("test/escape"), std::string::npos) << what;
    EXPECT_NE(what.find("chunk"), std::string::npos) << what;
  }
  EXPECT_GE(audit::violations(), 1);
}

TEST_F(Audit, DisjointDeclarationPassesWithZeroViolations) {
  Rng rng(5);
  const Matrix a = testutil::random_matrix(rng, 33, 17);
  const Matrix b = testutil::random_matrix(rng, 17, 29);
  EXPECT_NO_THROW({
    const Matrix c = matmul(a, b);
    const Matrix k = gram_nt(a);
    const Matrix g = gram_tn(a);
    (void)c;
    (void)k;
    (void)g;
  });
  EXPECT_EQ(audit::violations(), 0);
  EXPECT_GE(audit::checked_regions(), 3);
}

TEST_F(Audit, UncheckedTagOptsOut) {
  // The same overlapping writes as above, but explicitly tagged unchecked:
  // the region must run on the normal (parallel) path and report nothing.
  std::vector<real_t> sink(16, 0.0);
  EXPECT_NO_THROW(par::parallel_for(
      0, 16, 1,
      [&](index_t b, index_t e) {
        for (index_t i = b; i < e; ++i)
          sink[static_cast<std::size_t>(i)] = 1.0;
      },
      "test/unchecked", audit::unchecked("negative test: intentional opt-out")));
  EXPECT_EQ(audit::violations(), 0);
}

TEST_F(Audit, CheckedExecutionIsBitwiseIdenticalToParallel) {
  Rng rng(11);
  const Matrix a = testutil::random_matrix(rng, 67, 41);
  const Matrix b = testutil::random_matrix(rng, 41, 53);

  audit::set_enabled(false);
  par::set_num_threads(7);
  const Matrix c_par = matmul(a, b);
  const Matrix k_par = gram_nt(a);

  audit::set_enabled(true);
  const Matrix c_chk = matmul(a, b);
  const Matrix k_chk = gram_nt(a);
  EXPECT_TRUE(bitwise_equal(c_par, c_chk));
  EXPECT_TRUE(bitwise_equal(k_par, k_chk));
  EXPECT_EQ(audit::violations(), 0);
}

TEST_F(Audit, ExportMetricsPublishesCountersWithoutDoubleCounting) {
  Matrix m(8, 2);
  par::parallel_for(
      0, 8, 1,
      [&](index_t b, index_t e) {
        for (index_t i = b; i < e; ++i) m(i, 0) = 1.0;
      },
      "test/export", audit::row_block(m));
  obs::MetricsRegistry reg;
  audit::export_metrics(reg);
  EXPECT_EQ(reg.counter_value("audit/violations"), 0);
  EXPECT_GE(reg.counter_value("audit/checked_regions"), 1);
  audit::export_metrics(reg);
  EXPECT_GE(reg.counter_value("audit/checked_regions"), 1);
  EXPECT_EQ(reg.counter_value("audit/checked_regions"),
            audit::checked_regions());
}

// ---- replay_check: the determinism harness over the hot paths -----------

TEST_F(Audit, ReplayCheckPassesOnGemmFamily) {
  Rng rng(7);
  const Matrix a = testutil::random_matrix(rng, 67, 41);
  const Matrix b = testutil::random_matrix(rng, 41, 53);
  const Matrix bt = testutil::random_matrix(rng, 53, 41);
  const Matrix at = testutil::random_matrix(rng, 41, 67);
  EXPECT_NO_THROW(audit::replay_check("replay/gemm", [&] { return matmul(a, b); }));
  EXPECT_NO_THROW(
      audit::replay_check("replay/gemm_tn", [&] { return matmul_tn(at, b); }));
  EXPECT_NO_THROW(
      audit::replay_check("replay/gemm_nt", [&] { return matmul_nt(a, bt); }));
  EXPECT_NO_THROW(
      audit::replay_check("replay/gram_nt", [&] { return gram_nt(a); }));
  EXPECT_NO_THROW(
      audit::replay_check("replay/gram_tn", [&] { return gram_tn(a); }));
  EXPECT_NO_THROW(audit::replay_check("replay/khatri_rao",
                                      [&] { return khatri_rao_rowwise(a, a); }));
  EXPECT_NO_THROW(
      audit::replay_check("replay/hadamard", [&] { return hadamard(a, a); }));
  EXPECT_EQ(audit::violations(), 0);
  EXPECT_GE(audit::replays(), 7);
}

TEST_F(Audit, ReplayCheckPassesOnConv2dForwardBackward) {
  auto run = [] {
    Rng wrng(21);
    Network net("audit_conv");
    int x = net.add_input({2, 6, 6});
    x = net.add(std::make_unique<Conv2d>(3, 3, 1, 1, wrng), x);
    x = net.add(std::make_unique<ReLU>(), x);
    net.add(std::make_unique<Linear>(3, wrng), x);

    Rng rng(22);
    Tensor4 in(5, 2, 6, 6);
    for (index_t i = 0; i < in.size(); ++i) in[i] = rng.normal();
    const PassContext ctx{.training = true, .capture = true};
    net.zero_grad();
    const Tensor4& logits = net.forward(in, ctx);
    const LossResult lr =
        SoftmaxCrossEntropy().compute(logits, {0, 2, 1, 0, 2});
    net.backward(lr.grad, ctx);

    // Flatten everything the parallel passes produced into one matrix so a
    // single bitwise compare pins outputs, gradients and captures at once.
    std::vector<Matrix> parts;
    parts.push_back(logits.as_matrix());
    for (auto* pb : net.param_blocks()) {
      Matrix g = pb->gw;
      g.reshape(1, g.size());
      parts.push_back(std::move(g));
      Matrix as = pb->a_samples;
      as.reshape(1, as.size());
      parts.push_back(std::move(as));
      Matrix gs = pb->g_samples;
      gs.reshape(1, gs.size());
      parts.push_back(std::move(gs));
    }
    index_t cols = 0;
    for (auto& p : parts) cols = std::max(cols, p.cols());
    Matrix out(static_cast<index_t>(parts.size()), cols);
    for (std::size_t r = 0; r < parts.size(); ++r)
      for (index_t j = 0; j < parts[r].size(); ++j)
        out(static_cast<index_t>(r), j) = parts[r][j];
    return out;
  };
  EXPECT_NO_THROW(audit::replay_check("replay/conv2d", run));
  EXPECT_EQ(audit::violations(), 0);
}

CaptureSet make_capture(index_t layers, index_t world, index_t m, index_t din,
                        index_t dout) {
  Rng rng(31);
  CaptureSet cap;
  cap.a.resize(static_cast<std::size_t>(layers));
  cap.g.resize(static_cast<std::size_t>(layers));
  for (index_t l = 0; l < layers; ++l)
    for (index_t r = 0; r < world; ++r) {
      cap.a[static_cast<std::size_t>(l)].push_back(
          testutil::random_matrix(rng, m, din));
      cap.g[static_cast<std::size_t>(l)].push_back(
          testutil::random_matrix(rng, m, dout));
    }
  return cap;
}

// One full curvature refresh + preconditioning, all layers stacked into one
// matrix for the bitwise compare. Fresh optimizer each call so the rng
// stream starts identically at every thread count.
template <typename MakeOpt>
Matrix stacked_refresh(const MakeOpt& make_opt, const CaptureSet& cap,
                       const Matrix& grad) {
  auto& opt = make_opt();
  std::vector<ParamBlock> blocks(static_cast<std::size_t>(cap.layers()));
  std::vector<ParamBlock*> pbs;
  for (auto& b : blocks) pbs.push_back(&b);
  CommSim comm(cap.world(), loopback());
  opt.update_curvature(pbs, cap, &comm);
  std::vector<Matrix> out;
  for (index_t l = 0; l < cap.layers(); ++l)
    out.push_back(opt.preconditioned(grad, l));
  return vstack(out);
}

TEST_F(Audit, ReplayCheckPassesOnKidKisAndSngdRefresh) {
  const CaptureSet cap = make_capture(3, 2, 12, 9, 6);
  Rng rng(44);
  const Matrix grad = testutil::random_matrix(rng, 6, 9);

  for (const auto policy : {HyloOptimizer::Policy::kAlwaysKid,
                            HyloOptimizer::Policy::kAlwaysKis}) {
    OptimConfig cfg;
    cfg.damping = 0.3;
    cfg.rank_ratio = 0.5;
    std::unique_ptr<HyloOptimizer> holder;
    auto make = [&]() -> HyloOptimizer& {
      holder = std::make_unique<HyloOptimizer>(cfg);
      holder->set_policy(policy);
      holder->begin_epoch(0, false);
      return *holder;
    };
    EXPECT_NO_THROW(audit::replay_check(
        policy == HyloOptimizer::Policy::kAlwaysKid ? "replay/kid"
                                                    : "replay/kis",
        [&] { return stacked_refresh(make, cap, grad); }));
  }

  const CaptureSet scap = make_capture(3, 2, 10, 8, 5);
  const Matrix sgrad = testutil::random_matrix(rng, 5, 8);
  OptimConfig scfg;
  scfg.damping = 0.3;
  std::unique_ptr<Sngd> sngd;
  auto make_sngd = [&]() -> Sngd& {
    sngd = std::make_unique<Sngd>(scfg);
    return *sngd;
  };
  EXPECT_NO_THROW(audit::replay_check(
      "replay/sngd", [&] { return stacked_refresh(make_sngd, scap, sgrad); }));
  EXPECT_EQ(audit::violations(), 0);
}

TEST_F(Audit, ReplayCheckCatchesThreadCountDependence) {
  // A synthetic region whose result encodes the thread count must diverge.
  auto broken = [] {
    Matrix m(1, 1);
    m(0, 0) = static_cast<real_t>(par::num_threads());
    return m;
  };
  try {
    audit::replay_check("replay/broken", broken);
    FAIL() << "divergence should have been reported";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("replay divergence"), std::string::npos) << what;
    EXPECT_NE(what.find("replay/broken"), std::string::npos) << what;
  }
  EXPECT_GE(audit::violations(), 1);
}

TEST_F(Audit, DisabledModeRunsNothingChecked) {
  audit::set_enabled(false);
  audit::reset_stats();
  Rng rng(3);
  const Matrix a = testutil::random_matrix(rng, 20, 10);
  const Matrix b = testutil::random_matrix(rng, 10, 10);
  (void)matmul(a, b);
  EXPECT_EQ(audit::checked_regions(), 0);
  EXPECT_EQ(audit::violations(), 0);
}

}  // namespace
}  // namespace hylo
