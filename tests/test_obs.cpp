// Telemetry layer: Json round-trips, metrics registry (counters, gauges,
// histogram quantiles, timing sections behind the Profiler facade), the
// simulated-timeline TraceBuffer + Chrome trace export, the JSONL RunLogger,
// and an end-to-end Trainer run whose artifacts parse back cleanly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "hylo/hylo.hpp"

namespace hylo {
namespace {

using obs::Histogram;
using obs::Json;
using obs::MetricsRegistry;
using obs::RunLogConfig;
using obs::RunLogger;
using obs::TraceBuffer;
using obs::TraceSpan;

// ---------------------------------------------------------------- Json ----

TEST(Json, DumpPrimitives) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(3).dump(), "3");
  EXPECT_EQ(Json(std::int64_t{1234567890123}).dump(), "1234567890123");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, EscapesControlCharacters) {
  const std::string s = Json("a\"b\\c\n\t\x01").dump();
  EXPECT_EQ(s, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j.set("zeta", 1).set("alpha", 2).set("mid", Json::array().push(3));
  EXPECT_EQ(j.dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":[3]}");
  j.set("alpha", 9);  // overwrite keeps position
  EXPECT_EQ(j.dump(), "{\"zeta\":1,\"alpha\":9,\"mid\":[3]}");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      "{\"a\":[1,2.5,true,null,\"x\\ny\"],\"b\":{\"nested\":-3e2}}";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.at("a").items().size(), 5u);
  EXPECT_DOUBLE_EQ(j.at("a").items()[1].number(), 2.5);
  EXPECT_TRUE(j.at("a").items()[2].boolean());
  EXPECT_TRUE(j.at("a").items()[3].is_null());
  EXPECT_EQ(j.at("a").items()[4].str(), "x\ny");
  EXPECT_DOUBLE_EQ(j.at("b").at("nested").number(), -300.0);
  // Dump → parse → dump is a fixed point.
  EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
}

TEST(Json, ParseUnicodeEscape) {
  const Json j = Json::parse("\"\\u00e9\\u0041\"");
  EXPECT_EQ(j.str(), "\xc3\xa9"
                     "A");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(Json::parse("'single'"), Error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), Error);
}

TEST(Json, FindAndAt) {
  Json j = Json::object();
  j.set("k", 7);
  EXPECT_NE(j.find("k"), nullptr);
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_THROW(j.at("missing"), Error);
}

TEST(Json, NonFiniteNumbersRoundTripAsSentinels) {
  // JSON has no NaN/Infinity literals; the dumper emits sentinel strings
  // (health probes produce non-finite values by design) and to_double maps
  // them back, so a run log survives a dump → parse → read cycle.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Json(nan).dump(), "\"NaN\"");
  EXPECT_EQ(Json(inf).dump(), "\"Infinity\"");
  EXPECT_EQ(Json(-inf).dump(), "\"-Infinity\"");

  Json rec = Json::object();
  rec.set("cond", inf).set("energy", nan).set("ok", 0.5);
  const Json back = Json::parse(rec.dump());
  EXPECT_TRUE(std::isinf(back.at("cond").to_double()));
  EXPECT_GT(back.at("cond").to_double(), 0.0);
  EXPECT_TRUE(std::isnan(back.at("energy").to_double()));
  EXPECT_DOUBLE_EQ(back.at("ok").to_double(), 0.5);
  EXPECT_TRUE(std::isinf(Json::parse("\"-Infinity\"").to_double()));
  EXPECT_LT(Json::parse("\"-Infinity\"").to_double(), 0.0);
}

TEST(Json, ToDoubleAcceptsNullRejectsText) {
  // null reads as NaN (an absent measurement), arbitrary text does not.
  EXPECT_TRUE(std::isnan(Json().to_double()));
  EXPECT_DOUBLE_EQ(Json(2.5).to_double(), 2.5);
  EXPECT_THROW(Json("not a number").to_double(), Error);
  EXPECT_THROW(Json(true).to_double(), Error);
}

// ------------------------------------------------------------- metrics ----

TEST(Metrics, CounterMonotonic) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  reg.counter("c").inc(41);
  EXPECT_EQ(reg.counter_value("c"), 42);
  EXPECT_EQ(reg.counter_value("absent"), 0);
  EXPECT_THROW(reg.counter("c").inc(-1), Error);
}

TEST(Metrics, GaugeKeepsLastValue) {
  MetricsRegistry reg;
  reg.gauge("g").set(1.5);
  reg.gauge("g").set(-2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), -2.0);
  EXPECT_EQ(reg.gauge("g").set_count(), 2);
}

TEST(Metrics, HistogramBoundsFactories) {
  const auto lin = Histogram::linear_bounds(0.0, 10.0, 5);
  EXPECT_EQ(lin, (std::vector<double>{0.0, 2.5, 5.0, 7.5, 10.0}));
  const auto exp = Histogram::exponential_bounds(1.0, 2.0, 4);
  EXPECT_EQ(exp, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_THROW(Histogram({3.0, 1.0}), Error);  // not ascending
}

TEST(Metrics, HistogramQuantiles) {
  Histogram h(Histogram::linear_bounds(0.0, 100.0, 101));  // width-1 buckets
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.p50(), 50.0, 1.0);
  EXPECT_NEAR(h.p95(), 95.0, 1.0);
  EXPECT_NEAR(h.p99(), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Metrics, EmptyHistogramSummariesAreNaN) {
  // Empty-histogram contract: no samples means no summary — every summary
  // statistic is NaN (which the JSON layer serializes as the "NaN"
  // sentinel), never a fabricated 0.
  const Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0);
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.p99()));
}

TEST(Metrics, HistogramSingleObservationAndOverflow) {
  Histogram h({1.0, 2.0});
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));  // empty
  h.observe(1.5);
  // One sample: every quantile reads that sample back exactly (min==max
  // clamp), including the extremes.
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.mean(), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.p50(), 1.5);
  EXPECT_DOUBLE_EQ(h.p99(), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.5);
  h.observe(50.0);  // overflow bucket
  EXPECT_EQ(h.bucket_counts().back(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0);
}

TEST(Metrics, RegistryGetOrCreate) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  // Custom bounds apply on first creation only.
  obs::Histogram& h = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&reg.histogram("h", {9.0}), &h);
  EXPECT_EQ(h.bounds().size(), 2u);
}

TEST(Metrics, SnapshotShape) {
  MetricsRegistry reg;
  reg.counter("c").inc(3);
  reg.gauge("g").set(1.0);
  reg.histogram("h").observe(0.5);
  reg.add_timing("t", 2.0);
  const Json snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("counters").at("c").number(), 3.0);
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("g").number(), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("histograms").at("h").at("count").number(), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("timings").at("t").at("seconds").number(), 2.0);
  EXPECT_DOUBLE_EQ(snap.at("timings").at("t").at("calls").number(), 1.0);
  // The snapshot is valid JSON end to end.
  EXPECT_EQ(Json::parse(snap.dump()).dump(), snap.dump());
}

TEST(Metrics, ResetClearsEverything) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  reg.add_timing("t", 1.0);
  reg.reset_timings();
  EXPECT_EQ(reg.counter_value("c"), 1);  // timings-only reset
  EXPECT_DOUBLE_EQ(reg.timing_seconds("t"), 0.0);
  reg.reset();
  EXPECT_EQ(reg.counter_value("c"), 0);
}

// ---------------------------------------------------- Profiler facade -----

TEST(Profiler, AddSecondsCallsReset) {
  Profiler p;
  EXPECT_DOUBLE_EQ(p.seconds("s"), 0.0);
  EXPECT_EQ(p.calls("s"), 0);
  p.add("s", 1.5);
  p.add("s", 0.5);
  EXPECT_DOUBLE_EQ(p.seconds("s"), 2.0);
  EXPECT_EQ(p.calls("s"), 2);
  EXPECT_EQ(p.sections().size(), 1u);
  // The facade and its registry are one store.
  EXPECT_DOUBLE_EQ(p.registry().timing_seconds("s"), 2.0);
  p.reset();
  EXPECT_DOUBLE_EQ(p.seconds("s"), 0.0);
  EXPECT_TRUE(p.sections().empty());
}

TEST(Profiler, ScopedTimerMeasuresScope) {
  Profiler p;
  {
    ScopedTimer t(p, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(p.calls("scope"), 1);
  EXPECT_GE(p.seconds("scope"), 0.004);
}

// --------------------------------------------------------------- trace ----

TEST(Trace, SpansAdvanceTheirOwnTrack) {
  TraceBuffer buf;
  buf.add_span("a", "comp", 0, 1e-3);
  buf.add_span("b", "comp", 1, 2e-3);
  buf.add_span("c", "comp", 0, 1e-3);
  EXPECT_DOUBLE_EQ(buf.track_now_us(0), 2000.0);
  EXPECT_DOUBLE_EQ(buf.track_now_us(1), 2000.0);
  ASSERT_EQ(buf.size(), 3u);
  EXPECT_DOUBLE_EQ(buf.event(2).ts_us, 1000.0);  // "c" after "a" on track 0
}

TEST(Trace, CollectiveIsABarrier) {
  TraceBuffer buf;
  buf.add_span("fast", "comp", 0, 1e-3);   // track 0 at 1000 µs
  buf.add_span("slow", "comp", 1, 3e-3);   // track 1 at 3000 µs
  buf.add_collective("allreduce", 2e-3);   // starts at max cursor
  const obs::TraceEvent& coll = buf.event(2);
  EXPECT_EQ(coll.tid, TraceBuffer::kCommTrack);
  EXPECT_EQ(coll.cat, "comm");
  EXPECT_DOUBLE_EQ(coll.ts_us, 3000.0);
  EXPECT_DOUBLE_EQ(coll.dur_us, 2000.0);
  // Every rank track resumes after the barrier.
  EXPECT_DOUBLE_EQ(buf.track_now_us(0), 5000.0);
  EXPECT_DOUBLE_EQ(buf.track_now_us(1), 5000.0);
}

TEST(Trace, RingEvictsOldest) {
  TraceBuffer buf(4);
  for (int i = 0; i < 6; ++i)
    buf.add_span("s" + std::to_string(i), "comp", 0, 1e-6);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 2);
  EXPECT_EQ(buf.event(0).name, "s2");  // oldest-first
  EXPECT_EQ(buf.event(3).name, "s5");
}

TEST(Trace, TraceSpanRaiiAndNullBuffer) {
  TraceBuffer buf;
  {
    TraceSpan span(&buf, "work", "comp", 0);
    span.arg("layer", 3);
    EXPECT_EQ(buf.size(), 0u);  // recorded only at destruction
  }
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.event(0).name, "work");
  EXPECT_DOUBLE_EQ(buf.event(0).args.at("layer").number(), 3.0);
  // Null buffer: the span is a silent no-op.
  TraceSpan noop(nullptr, "x", "comp", 0);
  noop.arg("k", 1);
}

TEST(Trace, ChromeTraceExportParsesBack) {
  TraceBuffer buf;
  buf.set_track_name(0, "rank 0");
  buf.set_track_name(TraceBuffer::kCommTrack, "interconnect");
  buf.add_span("fwd", "comp", 0, 1e-3, Json::object().set("iter", 0));
  buf.add_collective("broadcast", 5e-4,
                     Json::object().set("bytes", 1024));
  buf.add_instant("mode:KID", "train", TraceBuffer::kCommTrack);
  std::ostringstream os;
  buf.write_chrome_trace(os);

  const Json doc = Json::parse(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
  const auto& events = doc.at("traceEvents").items();
  // 2 thread_name metadata + 3 events.
  ASSERT_EQ(events.size(), 5u);
  int metadata = 0, complete = 0, instant = 0;
  for (const Json& e : events) {
    const std::string ph = e.at("ph").str();
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.at("name").str(), "thread_name");
    } else if (ph == "X") {
      ++complete;
      EXPECT_GE(e.at("dur").number(), 0.0);
    } else if (ph == "i") {
      ++instant;
    }
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(instant, 1);
}

TEST(Trace, HostileLabelsSurviveChromeExport) {
  // Label hygiene: names with quotes, backslashes and newlines (think
  // user-supplied section tags or file paths in args) must survive the
  // Chrome trace export byte-for-byte, not break the JSON.
  const std::string hostile = "span \"q\" back\\slash\nnewline\ttab";
  TraceBuffer buf;
  buf.set_track_name(0, "rank \"0\"\n(primary)");
  buf.add_span(hostile, "comp\\cat", 0, 1e-3,
               Json::object().set("path", "C:\\tmp\n\"x\""));
  buf.add_instant("mode:\nKID", "train", 0);
  std::ostringstream os;
  buf.write_chrome_trace(os);

  const Json doc = Json::parse(os.str());
  const auto& events = doc.at("traceEvents").items();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("args").at("name").str(), "rank \"0\"\n(primary)");
  EXPECT_EQ(events[1].at("name").str(), hostile);
  EXPECT_EQ(events[1].at("cat").str(), "comp\\cat");
  EXPECT_EQ(events[1].at("args").at("path").str(), "C:\\tmp\n\"x\"");
  EXPECT_EQ(events[2].at("name").str(), "mode:\nKID");
}

// ------------------------------------------------------------- run log ----

std::filesystem::path fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("hylo_obs_test_" + tag);
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<Json> read_jsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<Json> records;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) records.push_back(Json::parse(line));
  return records;
}

TEST(RunLog, DisabledLoggerIsNoOp) {
  RunLogger log;
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.per_step());
  log.record("step", Json::object().set("i", 1));
  log.console("quiet");
  log.finish();
  EXPECT_EQ(log.records_written(), 0);
}

TEST(RunLog, WritesSequencedJsonlAndTrace) {
  const auto dir = fresh_dir("runlog");
  MetricsRegistry reg;
  reg.counter("comm/broadcast.bytes").inc(4096);
  {
    RunLogConfig cfg;
    cfg.dir = dir.string();
    RunLogger log(cfg);
    log.attach_metrics(&reg);
    log.trace().add_span("fwd", "comp", 0, 1e-3);
    log.record("step", Json::object().set("loss", 0.5));
    log.record("epoch", Json::object().set("epoch", 0));
    log.console("epoch 0 done");
    log.finish();
  }
  const auto records = read_jsonl((dir / "run.jsonl").string());
  ASSERT_GE(records.size(), 5u);  // step, epoch, console, metrics, run_end
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(records[i].at("seq").number(), static_cast<double>(i));
    EXPECT_TRUE(records[i].find("type") != nullptr);
  }
  EXPECT_EQ(records[0].at("type").str(), "step");
  EXPECT_DOUBLE_EQ(records[0].at("loss").number(), 0.5);
  EXPECT_EQ(records[2].at("type").str(), "console");
  // The closing metrics snapshot carries the attached registry.
  const Json* metrics = nullptr;
  for (const Json& r : records)
    if (r.at("type").str() == "metrics") metrics = &r;
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(
      metrics->at("counters").at("comm/broadcast.bytes").number(), 4096.0);
  // trace.json exists and parses as a Chrome trace.
  std::ifstream tin((dir / "trace.json").string());
  ASSERT_TRUE(tin.good());
  std::stringstream ss;
  ss << tin.rdbuf();
  const Json trace = Json::parse(ss.str());
  EXPECT_GE(trace.at("traceEvents").items().size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(RunLog, HostileLabelsAndNonFiniteValuesSurviveJsonl) {
  // One line per record is the JSONL contract: embedded newlines in labels
  // must be escaped (never split a record across lines), and non-finite
  // metric values must land as parseable sentinels.
  const auto dir = fresh_dir("hostile");
  const std::string label = "layer \"conv\\1\"\nsecond line";
  {
    RunLogConfig cfg;
    cfg.dir = dir.string();
    RunLogger log(cfg);
    log.record("probe", Json::object()
                            .set("label", label)
                            .set("cond", std::numeric_limits<double>::infinity())
                            .set("energy",
                                 std::numeric_limits<double>::quiet_NaN()));
    log.console("two\nlines");
    log.finish();
  }
  const auto records = read_jsonl((dir / "run.jsonl").string());
  ASSERT_GE(records.size(), 3u);  // probe, console, run_end
  EXPECT_EQ(records[0].at("label").str(), label);
  EXPECT_TRUE(std::isinf(records[0].at("cond").to_double()));
  EXPECT_TRUE(std::isnan(records[0].at("energy").to_double()));
  EXPECT_EQ(records[1].at("line").str(), "two\nlines");
  std::filesystem::remove_all(dir);
}

// ------------------------------------------- end-to-end trainer run -------

TEST(Telemetry, TrainerWritesRunLogAndTrace) {
  const auto dir = fresh_dir("trainer");
  const DataSplit data = make_spirals(256, 64, 2, 0.08, 11);
  Network net = make_mlp({2, 1, 1}, {16, 16}, 2, 1);
  OptimConfig oc;
  oc.lr = 0.05;
  oc.damping = 0.3;
  oc.update_freq = 4;
  oc.rank_ratio = 0.1;
  HyloOptimizer opt(oc);
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 16;
  tc.world = 2;
  tc.interconnect = mist_v100();
  tc.max_iters_per_epoch = 6;
  tc.telemetry.dir = dir.string();
  Trainer trainer(net, opt, data, tc);
  trainer.run();

  const auto records = read_jsonl(trainer.run_log().run_log_path());
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().at("type").str(), "run_start");
  EXPECT_EQ(records.front().at("optimizer").str(), "HyLo");
  EXPECT_DOUBLE_EQ(records.front().at("world").number(), 2.0);

  std::vector<const Json*> epochs;
  std::vector<const Json*> steps;
  const Json* result = nullptr;
  for (const Json& r : records) {
    const std::string type = r.at("type").str();
    if (type == "epoch") epochs.push_back(&r);
    if (type == "step") steps.push_back(&r);
    if (type == "result") result = &r;
  }
  ASSERT_EQ(epochs.size(), 4u);
  EXPECT_EQ(steps.size(), 4u * 6u);  // per_step defaults on
  for (const Json* e : epochs) {
    const std::string mode = e->at("mode").str();
    EXPECT_TRUE(mode == "KID" || mode == "KIS");
    EXPECT_GT(e->at("rank_r").number(), 0.0);
    EXPECT_GE(e->at("switching").at("threshold").number(), 0.0);
    EXPECT_TRUE(e->at("switching").find("R") != nullptr);
    // Per-epoch wire accounting: broadcast bytes flowed every epoch (the
    // curvature refresh broadcasts inverses from the owning rank).
    const Json& coll = e->at("collectives");
    bool saw_bytes = false;
    for (const auto& [name, v] : coll.members())
      if (v.at("bytes").number() > 0.0) saw_bytes = true;
    EXPECT_TRUE(saw_bytes) << "epoch record without wire bytes";
    EXPECT_GT(e->at("time").at("wall").number(), 0.0);
  }
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->at("total_wire_bytes").number(), 0.0);
  EXPECT_GT(result->at("total_messages").number(), 0.0);
  EXPECT_DOUBLE_EQ(result->at("epochs_run").number(), 4.0);

  // The trace renders a real multi-rank timeline: both rank tracks named,
  // comm lane populated, and the whole file is valid Chrome trace JSON.
  std::ifstream tin(trainer.run_log().trace_path());
  ASSERT_TRUE(tin.good());
  std::stringstream ss;
  ss << tin.rdbuf();
  const Json trace = Json::parse(ss.str());
  int rank_tracks = 0;
  bool comm_span = false;
  for (const Json& e : trace.at("traceEvents").items()) {
    if (e.at("ph").str() == "M" &&
        e.at("args").at("name").str().rfind("rank ", 0) == 0)
      ++rank_tracks;
    if (e.at("ph").str() == "X" && e.at("cat").str() == "comm")
      comm_span = true;
  }
  EXPECT_EQ(rank_tracks, 2);
  EXPECT_TRUE(comm_span);

  // Wire counters exposed through CommSim match the registry totals.
  EXPECT_GT(trainer.comm().total_wire_bytes(), 0);
  EXPECT_GT(trainer.comm().wire_bytes_charged("comm/broadcast"), 0);
  EXPECT_GT(trainer.comm().messages("comm/broadcast"), 0);

  // The optimizer journaled one switch decision per epoch.
  EXPECT_EQ(opt.switch_history().size(), 4u);
  EXPECT_EQ(opt.switch_history().front().reason, "warmup");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hylo
