// hylo::ckpt — crash-safe run snapshots. Container-level corruption
// rejection, bitwise interrupt/resume across models × optimizers × fault
// specs, and the elastic world-shrink path on permanent rank loss.
//
// Env-proofing: every Trainer here pins its fault schedule (an explicit
// FaultConfig, possibly disabled) and its checkpoint cadence (a non-empty
// dir with every=0 pins snapshots off), so an ambient HYLO_FAULTS /
// HYLO_CKPT_* environment — as the CI fault matrix sets — cannot change any
// outcome.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "hylo/hylo.hpp"

namespace hylo {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Container-level tests

std::string tmp_dir(const std::string& name) {
  // PID-qualified: ctest runs this binary twice concurrently (plain +
  // ckpt_env_suite), and a shared path would race on remove_all vs. the
  // sibling's live snapshots.
  const std::string dir = "/tmp/hylo_test_ckpt_" +
                          std::to_string(::getpid()) + "_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string write_sample_snapshot(const std::string& dir) {
  ckpt::SnapshotWriter snap;
  ckpt::ByteWriter& a = snap.section("alpha");
  a.u64(42);
  a.str("hello");
  a.real(1.5);
  Matrix m(2, 3);
  for (index_t i = 0; i < m.size(); ++i) m.data()[i] = 0.25 * (i + 1);
  ckpt::ByteWriter& b = snap.section("beta");
  b.matrix(m);
  b.b(true);
  const std::string path = dir + "/snapshot-00000001.hysnp";
  snap.write(path);
  return path;
}

TEST(SnapshotContainer, RoundTrip) {
  const std::string dir = tmp_dir("roundtrip");
  const std::string path = write_sample_snapshot(dir);

  ckpt::SnapshotReader snap(path);
  EXPECT_EQ(snap.version(), ckpt::kSnapshotVersion);
  ASSERT_EQ(snap.names(), (std::vector<std::string>{"alpha", "beta"}));

  ckpt::ByteReader a = snap.open("alpha");
  EXPECT_EQ(a.u64(), 42u);
  EXPECT_EQ(a.str(), "hello");
  EXPECT_EQ(a.real(), 1.5);
  a.expect_done();

  ckpt::ByteReader b = snap.open("beta");
  const Matrix m = b.matrix();
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  for (index_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.25 * (i + 1));
  EXPECT_TRUE(b.b());
  b.expect_done();

  EXPECT_FALSE(snap.has("gamma"));
  EXPECT_THROW(snap.open("gamma"), Error);
  fs::remove_all(dir);
}

TEST(SnapshotContainer, RejectsTmpPath) {
  // A `.tmp` sibling is an uncommitted write; readers must refuse it even
  // if its bytes happen to be complete.
  const std::string dir = tmp_dir("tmppath");
  const std::string path = write_sample_snapshot(dir);
  const std::string tmp = path + ".tmp";
  fs::copy_file(path, tmp);
  EXPECT_THROW(ckpt::SnapshotReader{tmp}, Error);
  fs::remove_all(dir);
}

TEST(SnapshotContainer, RejectsBadMagicAndWrongVersion) {
  const std::string dir = tmp_dir("magic");
  const std::string path = write_sample_snapshot(dir);
  const std::vector<char> good = slurp(path);

  std::vector<char> bad_magic = good;
  bad_magic[0] ^= 0x5a;
  spit(path, bad_magic);
  EXPECT_THROW(ckpt::SnapshotReader{path}, Error);

  std::vector<char> bad_version = good;
  bad_version[8] ^= 0x01;  // u32 version follows the u64 magic
  spit(path, bad_version);
  try {
    ckpt::SnapshotReader snap(path);
    FAIL() << "wrong version accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
  fs::remove_all(dir);
}

TEST(SnapshotContainer, RejectsTruncationAtEveryByte) {
  // Cut the container at every possible length, covering every section
  // prefix (name length, name, payload length, CRC, payload) — each
  // truncation must throw, never yield a partial snapshot.
  const std::string dir = tmp_dir("truncate");
  const std::string path = write_sample_snapshot(dir);
  const std::vector<char> good = slurp(path);
  ASSERT_GT(good.size(), 0u);
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    spit(path, std::vector<char>(good.begin(),
                                 good.begin() + static_cast<long>(cut)));
    EXPECT_THROW(ckpt::SnapshotReader{path}, Error) << "cut=" << cut;
  }
  fs::remove_all(dir);
}

TEST(SnapshotContainer, FlippedPayloadByteFailsNamingTheSection) {
  const std::string dir = tmp_dir("crc");
  const std::string path = write_sample_snapshot(dir);
  const std::vector<char> good = slurp(path);
  // Flip the last payload byte — it belongs to the "beta" section.
  std::vector<char> bad = good;
  bad.back() ^= 0x40;
  spit(path, bad);
  try {
    ckpt::SnapshotReader snap(path);
    FAIL() << "corrupt payload accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("beta"), std::string::npos)
        << e.what();
  }
  fs::remove_all(dir);
}

TEST(SnapshotContainer, RejectsTrailingGarbage) {
  const std::string dir = tmp_dir("trailing");
  const std::string path = write_sample_snapshot(dir);
  std::vector<char> bytes = slurp(path);
  bytes.push_back('x');
  spit(path, bytes);
  EXPECT_THROW(ckpt::SnapshotReader{path}, Error);
  fs::remove_all(dir);
}

TEST(SnapshotContainer, AtomicWriteLeavesNoTmp) {
  const std::string dir = tmp_dir("atomic");
  const std::string path = write_sample_snapshot(dir);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove_all(dir);
}

TEST(SnapshotContainer, ListAndRetain) {
  const std::string dir = tmp_dir("retain");
  std::vector<std::string> written;
  for (const int it : {3, 1, 7, 5}) {
    ckpt::SnapshotWriter snap;
    snap.section("meta").i64(it);
    char name[40];
    std::snprintf(name, sizeof(name), "snapshot-%08d.hysnp", it);
    written.push_back(dir + "/" + name);
    snap.write(written.back());
  }
  // An unrelated file must be ignored by both list and retain.
  spit(dir + "/notes.txt", {'h', 'i'});

  const std::vector<std::string> all = ckpt::list_snapshots(dir);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_TRUE(all.front().find("00000001") != std::string::npos);
  EXPECT_TRUE(all.back().find("00000007") != std::string::npos);

  ckpt::retain_last(dir, 2);
  const std::vector<std::string> kept = ckpt::list_snapshots(dir);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_TRUE(kept[0].find("00000005") != std::string::npos);
  EXPECT_TRUE(kept[1].find("00000007") != std::string::npos);
  EXPECT_TRUE(fs::exists(dir + "/notes.txt"));

  ckpt::retain_last(dir, 0);  // 0 keeps everything
  EXPECT_EQ(ckpt::list_snapshots(dir).size(), 2u);
  fs::remove_all(dir);
}

TEST(SnapshotContainer, EnvConfigResolution) {
  unsetenv("HYLO_CKPT_DIR");
  unsetenv("HYLO_CKPT_EVERY");
  unsetenv("HYLO_CKPT_KEEP");
  EXPECT_FALSE(ckpt::CkptConfig::from_env().has_value());

  setenv("HYLO_CKPT_DIR", "/tmp/hylo_env_snaps", 1);
  setenv("HYLO_CKPT_EVERY", "25", 1);
  const auto cfg = ckpt::CkptConfig::from_env();
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->dir, "/tmp/hylo_env_snaps");
  EXPECT_EQ(cfg->every, 25);
  EXPECT_EQ(cfg->keep, 3);  // default retention
  setenv("HYLO_CKPT_KEEP", "7", 1);
  EXPECT_EQ(ckpt::CkptConfig::from_env()->keep, 7);

  unsetenv("HYLO_CKPT_DIR");
  unsetenv("HYLO_CKPT_EVERY");
  unsetenv("HYLO_CKPT_KEEP");
}

// ---------------------------------------------------------------------------
// Bitwise interrupt/resume

struct Rig {
  DataSplit data;
  Network net;
  std::unique_ptr<Optimizer> opt;
};

Rig make_rig(const std::string& model, const std::string& optimizer) {
  Rig s;
  if (model == "mlp") {
    s.data = make_spirals(256, 64, 3, 0.05, 7);
    s.net = make_mlp({2, 1, 1}, {16, 16}, 3, 7);
  } else {  // conv net
    s.data = make_gaussian_images(128, 32, 4, 1, 8, 8, 0.8, 7);
    s.net = make_c3f1({1, 8, 8}, 4, 4, 7);
  }
  OptimConfig oc;
  oc.lr = optimizer == "ADAM" ? 0.002 : 0.05;
  oc.momentum = 0.9;
  oc.update_freq = 3;
  oc.rank_ratio = 0.25;
  s.opt = make_optimizer(optimizer, oc);
  return s;
}

TrainConfig base_config(index_t world) {
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;
  tc.world = world;
  tc.max_iters_per_epoch = 4;
  tc.interconnect = mist_v100();
  tc.faults = FaultConfig{};          // pinned fault-free (env-proof)
  tc.checkpoint.dir = "/tmp/unused";  // non-empty dir + every=0 pins
  tc.checkpoint.every = 0;            // snapshots *off* (env-proof)
  return tc;
}

FaultConfig transient_faults() {
  FaultConfig fc;  // default mix: transient kinds only, rank_lost off
  fc.seed = 13;
  fc.rate = 0.15;
  return fc;
}

std::vector<real_t> flat_weights(Network& net) {
  std::vector<real_t> out;
  for (auto* pb : net.param_blocks())
    out.insert(out.end(), pb->w.data(), pb->w.data() + pb->w.size());
  for (auto pp : net.plain_params())
    out.insert(out.end(), pp.value->begin(), pp.value->end());
  return out;
}

struct RunOut {
  std::vector<real_t> weights;
  TrainResult result;
  index_t world = 0;
};

RunOut run_reference(const std::string& model, const std::string& optname,
                     const std::optional<FaultConfig>& faults, index_t world) {
  Rig s = make_rig(model, optname);
  TrainConfig tc = base_config(world);
  if (faults) tc.faults = *faults;
  Trainer t(s.net, *s.opt, s.data, tc);
  RunOut out;
  out.result = t.run();
  out.weights = flat_weights(s.net);
  out.world = t.world();
  return out;
}

std::vector<std::string> run_with_snapshots(
    const std::string& model, const std::string& optname,
    const std::optional<FaultConfig>& faults, index_t world,
    const std::string& dir, index_t every, RunOut* out) {
  Rig s = make_rig(model, optname);
  TrainConfig tc = base_config(world);
  if (faults) tc.faults = *faults;
  tc.checkpoint.dir = dir;
  tc.checkpoint.every = every;
  tc.checkpoint.keep = 0;  // keep every boundary for the resume sweep
  Trainer t(s.net, *s.opt, s.data, tc);
  out->result = t.run();
  out->weights = flat_weights(s.net);
  out->world = t.world();
  return ckpt::list_snapshots(dir);
}

RunOut resume_from(const std::string& model, const std::string& optname,
                   const std::optional<FaultConfig>& faults, index_t world,
                   const std::string& snapshot) {
  Rig s = make_rig(model, optname);
  TrainConfig tc = base_config(world);
  if (faults) tc.faults = *faults;
  Trainer t(s.net, *s.opt, s.data, tc);
  RunOut out;
  out.result = t.resume(snapshot);
  out.weights = flat_weights(s.net);
  out.world = t.world();
  return out;
}

void expect_bitwise(const RunOut& ref, const RunOut& got,
                    const std::string& label) {
  ASSERT_EQ(ref.weights.size(), got.weights.size()) << label;
  for (std::size_t i = 0; i < ref.weights.size(); ++i)
    ASSERT_EQ(ref.weights[i], got.weights[i]) << label << " weight " << i;
  // Modeled quantities are part of the bitwise contract (measured comp/*
  // wall timings are not).
  EXPECT_EQ(ref.result.comm_seconds, got.result.comm_seconds) << label;
  EXPECT_EQ(ref.world, got.world) << label;
  // The resumed result covers the tail of the reference's epochs.
  ASSERT_LE(got.result.epochs.size(), ref.result.epochs.size()) << label;
  const std::size_t off = ref.result.epochs.size() - got.result.epochs.size();
  for (std::size_t i = 0; i < got.result.epochs.size(); ++i) {
    const EpochStats& a = ref.result.epochs[off + i];
    const EpochStats& b = got.result.epochs[i];
    EXPECT_EQ(a.epoch, b.epoch) << label;
    EXPECT_EQ(a.train_loss, b.train_loss) << label << " epoch " << a.epoch;
    EXPECT_EQ(a.train_metric, b.train_metric) << label << " epoch " << a.epoch;
    EXPECT_EQ(a.test_loss, b.test_loss) << label << " epoch " << a.epoch;
    EXPECT_EQ(a.test_metric, b.test_metric) << label << " epoch " << a.epoch;
  }
  EXPECT_EQ(ref.result.iterations, got.result.iterations) << label;
}

TEST(Resume, BitwiseAtEveryBoundaryMlp) {
  // Snapshot after every iteration and resume from each — a simulated crash
  // at every boundary, including the epoch boundary — must land bitwise on
  // the uninterrupted run. Also locks that snapshotting itself does not
  // perturb training.
  const std::string dir = tmp_dir("every_mlp");
  const RunOut ref = run_reference("mlp", "HyLo", std::nullopt, 4);
  RunOut with_snaps;
  const auto snaps = run_with_snapshots("mlp", "HyLo", std::nullopt, 4, dir, 1,
                                        &with_snaps);
  expect_bitwise(ref, with_snaps, "snapshotting run");
  ASSERT_EQ(snaps.size(), 8u);  // 2 epochs x 4 iters, every=1, keep=0
  for (const auto& snap : snaps)
    expect_bitwise(ref, resume_from("mlp", "HyLo", std::nullopt, 4, snap),
                   "resume from " + snap);
  fs::remove_all(dir);
}

TEST(Resume, BitwiseMlpUnderTransientFaults) {
  const std::string dir = tmp_dir("faults_mlp");
  const auto fc = transient_faults();
  const RunOut ref = run_reference("mlp", "HyLo", fc, 4);
  RunOut with_snaps;
  const auto snaps =
      run_with_snapshots("mlp", "HyLo", fc, 4, dir, 3, &with_snaps);
  expect_bitwise(ref, with_snaps, "snapshotting run");
  ASSERT_GE(snaps.size(), 2u);
  expect_bitwise(ref, resume_from("mlp", "HyLo", fc, 4, snaps[0]),
                 "early resume");
  expect_bitwise(ref, resume_from("mlp", "HyLo", fc, 4, snaps[1]),
                 "late resume");
  fs::remove_all(dir);
}

TEST(Resume, BitwiseConvNet) {
  const std::string dir = tmp_dir("conv");
  const RunOut ref = run_reference("conv", "KFAC", std::nullopt, 2);
  RunOut with_snaps;
  const auto snaps = run_with_snapshots("conv", "KFAC", std::nullopt, 2, dir,
                                        3, &with_snaps);
  expect_bitwise(ref, with_snaps, "snapshotting run");
  ASSERT_GE(snaps.size(), 2u);
  for (const auto& snap : snaps)
    expect_bitwise(ref, resume_from("conv", "KFAC", std::nullopt, 2, snap),
                   "resume from " + snap);
  fs::remove_all(dir);
}

TEST(Resume, BitwiseConvNetUnderTransientFaults) {
  const std::string dir = tmp_dir("conv_faults");
  const auto fc = transient_faults();
  const RunOut ref = run_reference("conv", "KFAC", fc, 2);
  RunOut with_snaps;
  const auto snaps =
      run_with_snapshots("conv", "KFAC", fc, 2, dir, 3, &with_snaps);
  expect_bitwise(ref, with_snaps, "snapshotting run");
  ASSERT_GE(snaps.size(), 1u);
  expect_bitwise(ref, resume_from("conv", "KFAC", fc, 2, snaps.front()),
                 "resume");
  fs::remove_all(dir);
}

TEST(Resume, EveryOptimizerRoundTrips) {
  // The save_state/load_state chain covers momentum, Adam moments, KFAC /
  // EKFAC / KBFGS factor state, SNGD kernels, and HyLo's full switching
  // state (KFAC and HyLo are exercised by the tests above).
  for (const std::string optname :
       {"SGD", "ADAM", "EKFAC", "KBFGS-L", "SNGD"}) {
    const std::string dir = tmp_dir("opt_" + optname);
    const RunOut ref = run_reference("mlp", optname, std::nullopt, 2);
    RunOut with_snaps;
    const auto snaps = run_with_snapshots("mlp", optname, std::nullopt, 2,
                                          dir, 3, &with_snaps);
    expect_bitwise(ref, with_snaps, optname + " snapshotting run");
    ASSERT_GE(snaps.size(), 2u) << optname;
    expect_bitwise(ref, resume_from("mlp", optname, std::nullopt, 2, snaps[1]),
                   optname + " resume");
    fs::remove_all(dir);
  }
}

TEST(Resume, RejectsMismatchedConfiguration) {
  const std::string dir = tmp_dir("mismatch");
  RunOut with_snaps;
  const auto snaps = run_with_snapshots("mlp", "SGD", std::nullopt, 2, dir, 3,
                                        &with_snaps);
  ASSERT_GE(snaps.size(), 1u);
  const std::string snap = snaps.front();

  {  // different optimizer
    Rig s = make_rig("mlp", "ADAM");
    Trainer t(s.net, *s.opt, s.data, base_config(2));
    EXPECT_THROW(t.resume(snap), Error);
  }
  {  // different world
    Rig s = make_rig("mlp", "SGD");
    Trainer t(s.net, *s.opt, s.data, base_config(4));
    EXPECT_THROW(t.resume(snap), Error);
  }
  {  // different batch size
    Rig s = make_rig("mlp", "SGD");
    TrainConfig tc = base_config(2);
    tc.batch_size = 16;
    Trainer t(s.net, *s.opt, s.data, tc);
    EXPECT_THROW(t.resume(snap), Error);
  }
  {  // fault plan active on resume but absent at snapshot time
    Rig s = make_rig("mlp", "SGD");
    TrainConfig tc = base_config(2);
    tc.faults = transient_faults();
    Trainer t(s.net, *s.opt, s.data, tc);
    EXPECT_THROW(t.resume(snap), Error);
  }
  fs::remove_all(dir);
}

TEST(Resume, RunLogAppendsWithResumeRecord) {
  const std::string dir = tmp_dir("runlog");
  const std::string tele = dir + "/telemetry";

  RunOut interrupted;
  const auto snaps = [&] {
    Rig s = make_rig("mlp", "SGD");
    TrainConfig tc = base_config(2);
    tc.telemetry.dir = tele;
    tc.checkpoint.dir = dir + "/snaps";
    tc.checkpoint.every = 3;
    tc.checkpoint.keep = 0;
    Trainer t(s.net, *s.opt, s.data, tc);
    interrupted.result = t.run();
    return ckpt::list_snapshots(tc.checkpoint.dir);
  }();
  ASSERT_GE(snaps.size(), 1u);

  {
    Rig s = make_rig("mlp", "SGD");
    TrainConfig tc = base_config(2);
    tc.telemetry.dir = tele;
    tc.telemetry.append = true;  // continue the interrupted run's log
    Trainer t(s.net, *s.opt, s.data, tc);
    t.resume(snaps.front());
  }

  std::ifstream in(tele + "/run.jsonl");
  ASSERT_TRUE(in.good());
  int run_starts = 0, resumes = 0;
  std::int64_t resume_seq = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const obs::Json rec = obs::Json::parse(line);
    const std::string type = rec.at("type").str();
    if (type == "run_start") ++run_starts;
    if (type == "resume") {
      ++resumes;
      resume_seq = static_cast<std::int64_t>(rec.at("seq").number());
      EXPECT_EQ(rec.at("path").str(), snaps.front());
      EXPECT_GE(rec.at("global_iter").number(), 1.0);
    }
  }
  EXPECT_EQ(run_starts, 1);  // append mode suppresses the second run_start
  EXPECT_EQ(resumes, 1);
  EXPECT_GE(resume_seq, 1);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Elastic world-shrink on permanent rank loss

FaultConfig rank_lost_only(std::uint64_t seed, double rate) {
  FaultConfig fc;
  fc.seed = seed;
  fc.rate = rate;
  fc.timeout_weight = 0.0;
  fc.straggler_weight = 0.0;
  fc.corrupt_weight = 0.0;
  fc.rank_down_weight = 0.0;
  fc.rank_lost_weight = 1.0;
  return fc;
}

TEST(ElasticWorld, CommSimCommitsPendingDeaths) {
  CommSim comm(4, loopback());
  comm.configure_faults(rank_lost_only(5, 1.0));  // every collective kills
  EXPECT_FALSE(comm.has_pending_shrinks());
  comm.charge_allreduce(1 << 20, "comm/grad_allreduce",
                        FailMode::kRetryUntilSuccess);
  ASSERT_TRUE(comm.has_pending_shrinks());
  EXPECT_EQ(comm.world(), 4);  // no shrink before the boundary commit
  const auto dead = comm.commit_shrinks();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(comm.world(), 3);
  EXPECT_EQ(comm.lost_ranks(), dead);
  EXPECT_FALSE(comm.has_pending_shrinks());
  EXPECT_EQ(
      comm.profiler().registry().counter_value("dist/elastic/world_shrinks"),
      1);
}

TEST(ElasticWorld, NeverShrinksBelowOneRank) {
  CommSim comm(2, loopback());
  comm.configure_faults(rank_lost_only(5, 1.0));
  for (int i = 0; i < 10; ++i) {
    comm.charge_allreduce(4096, "comm/grad_allreduce",
                          FailMode::kRetryUntilSuccess);
    comm.commit_shrinks();
  }
  EXPECT_EQ(comm.world(), 1);  // the last survivor is never killed
  EXPECT_EQ(comm.lost_ranks().size(), 1u);
}

TEST(ElasticWorld, StormShrinksWorldAndTrainingCompletes) {
  // A rank_lost storm: at least 25% of an 8-rank world dies permanently,
  // the world shrinks at iteration boundaries, gradient averaging reweights
  // to the survivors, and training still completes every epoch. The shrink
  // history is visible in the run log and the final fault summary.
  const std::string dir = tmp_dir("storm");
  Rig s = make_rig("mlp", "SGD");
  TrainConfig tc = base_config(8);
  tc.epochs = 2;
  tc.max_iters_per_epoch = 6;
  tc.faults = rank_lost_only(21, 0.45);
  tc.telemetry.dir = dir + "/telemetry";
  Trainer t(s.net, *s.opt, s.data, tc);
  const TrainResult res = t.run();

  ASSERT_EQ(res.epochs.size(), 2u);
  for (const auto& e : res.epochs) {
    EXPECT_TRUE(std::isfinite(e.train_loss));
    EXPECT_TRUE(std::isfinite(e.test_metric));
  }
  const index_t lost = 8 - t.world();
  EXPECT_GE(lost, 2) << "storm must kill >= 25% of the 8 ranks";
  const auto& reg = t.comm().profiler().registry();
  EXPECT_EQ(reg.counter_value("dist/elastic/world_shrinks"), lost);
  EXPECT_EQ(static_cast<index_t>(t.comm().lost_ranks().size()), lost);
  EXPECT_GT(reg.counter_value("dist/elastic/layer_migrations"), 0);

  // Run-log visibility: world_shrink records carry the dead ranks and the
  // surviving world; the final result record totals the shrinks.
  std::ifstream in(tc.telemetry.dir + "/run.jsonl");
  ASSERT_TRUE(in.good());
  index_t shrink_records = 0;
  bool saw_result = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const obs::Json rec = obs::Json::parse(line);
    const std::string type = rec.at("type").str();
    if (type == "world_shrink") {
      ++shrink_records;
      EXPECT_GE(rec.at("lost_ranks").size(), 1u);
      EXPECT_LT(rec.at("world").number(), 8.0);
    }
    if (type == "result") {
      saw_result = true;
      EXPECT_EQ(static_cast<index_t>(rec.at("world_shrinks").number()), lost);
      EXPECT_EQ(static_cast<index_t>(rec.at("final_world").number()),
                t.world());
    }
  }
  EXPECT_GE(shrink_records, 1);
  EXPECT_TRUE(saw_result);
  fs::remove_all(dir);
}

TEST(ElasticWorld, ResumeRestoresShrunkenWorld) {
  // Snapshot mid-storm and resume: the fault plan's draw cursor, the
  // shrunken world, and the loss history must restore so the continuation
  // is bitwise-identical to the uninterrupted elastic run.
  const std::string dir = tmp_dir("elastic_resume");
  const auto fc = rank_lost_only(21, 0.35);
  const RunOut ref = run_reference("mlp", "SGD", fc, 8);
  EXPECT_LT(ref.world, 8);  // the storm must actually shrink the world
  RunOut with_snaps;
  const auto snaps =
      run_with_snapshots("mlp", "SGD", fc, 8, dir, 2, &with_snaps);
  expect_bitwise(ref, with_snaps, "snapshotting elastic run");
  ASSERT_GE(snaps.size(), 2u);
  for (const auto& snap : snaps)
    expect_bitwise(ref, resume_from("mlp", "SGD", fc, 8, snap),
                   "elastic resume from " + snap);
  fs::remove_all(dir);
}

TEST(ElasticWorld, DisabledRankLostReplaysByteIdentically) {
  // A transient-only mix (rank_lost_weight == 0) must draw the exact same
  // schedule as before the rank_lost kind existed: runs with the default
  // mix never shrink and stay deterministic.
  const auto fc = transient_faults();
  const RunOut a = run_reference("mlp", "SGD", fc, 4);
  const RunOut b = run_reference("mlp", "SGD", fc, 4);
  expect_bitwise(a, b, "transient replay");
  EXPECT_EQ(a.world, 4);
}

}  // namespace
}  // namespace hylo
