// Infrastructure: CsvWriter, Profiler/timers, HYLO_CHECK.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "hylo/common/check.hpp"
#include "hylo/common/csv.hpp"
#include "hylo/common/timer.hpp"

namespace hylo {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    HYLO_CHECK(1 == 2, "values " << 1 << " vs " << 2);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("values 1 vs 2"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(HYLO_CHECK(true));
  EXPECT_NO_THROW(HYLO_CHECK(2 > 1, "never shown"));
}

TEST(Check, MessagelessFormHasNoContextSuffix) {
  // HYLO_CHECK(cond) with no message must still throw with the condition
  // text and location, but no dangling " — " separator for an empty message.
  try {
    HYLO_CHECK(0 > 1);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0 > 1"), std::string::npos) << what;
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos) << what;
    EXPECT_EQ(what.find(" — "), std::string::npos) << what;
    EXPECT_NE(what.back(), ' ') << "'" << what << "'";
  }
}

TEST(Check, ThrowCheckFailureAlwaysThrowsError) {
  // The throw helper behind HYLO_CHECK is callable directly (the audit
  // subsystem uses it with runtime-built messages); pin its formatting.
  try {
    detail::throw_check_failure("my_cond", "somefile.cpp", 123, "the message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my_cond"), std::string::npos) << what;
    EXPECT_NE(what.find("somefile.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("123"), std::string::npos) << what;
    EXPECT_NE(what.find("the message"), std::string::npos) << what;
  }
  // Error is a std::runtime_error so generic handlers catch it too.
  EXPECT_THROW(
      detail::throw_check_failure("c", "f.cpp", 1, ""), std::runtime_error);
}

TEST(Check, DcheckMatchesBuildMode) {
#ifdef NDEBUG
  EXPECT_NO_THROW(HYLO_DCHECK(false, "compiled out in release"));
#else
  EXPECT_THROW(HYLO_DCHECK(false, "active in debug"), Error);
#endif
}

TEST(Csv, RowArityEnforced) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), Error);
  EXPECT_NO_THROW(w.add(1, 2));
}

TEST(Csv, WritesParsableFile) {
  CsvWriter w({"x", "y"});
  w.add(1, 2.5);
  w.add("s", -3);
  const std::string path = "/tmp/hylo_test_csv.csv";
  w.write_file(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "s,-3");
  std::remove(path.c_str());
}

TEST(Csv, PrintTableAligns) {
  CsvWriter w({"name", "v"});
  w.add("long-name-here", 1);
  std::ostringstream oss;
  w.print_table(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("long-name-here"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.restart();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Profiler, AccumulatesSections) {
  Profiler p;
  p.add("a", 1.0);
  p.add("a", 2.0);
  p.add("b", 0.5);
  EXPECT_EQ(p.seconds("a"), 3.0);
  EXPECT_EQ(p.calls("a"), 2);
  EXPECT_EQ(p.seconds("b"), 0.5);
  EXPECT_EQ(p.seconds("missing"), 0.0);
  EXPECT_EQ(p.calls("missing"), 0);
  p.reset();
  EXPECT_EQ(p.seconds("a"), 0.0);
}

TEST(Profiler, ScopedTimerAddsOnDestruction) {
  Profiler p;
  {
    ScopedTimer t(p, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(p.seconds("scope"), 0.005);
  EXPECT_EQ(p.calls("scope"), 1);
}

}  // namespace
}  // namespace hylo
