// Tests for the deterministic RNG: reproducibility, distribution sanity,
// weighted sampling behaviour (the KIS substrate).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "hylo/common/rng.hpp"

namespace hylo {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto v1 = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), v1);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  // Child should not replay the parent stream.
  Rng b(5);
  b.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const real_t u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const real_t u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  real_t sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(14);
  real_t sum = 0.0, sumsq = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const real_t x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(15);
  real_t sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(16);
  std::set<index_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const index_t v = rng.uniform_int(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntRejectsNonPositive) {
  Rng rng(17);
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(18);
  const auto p = rng.permutation(50);
  std::set<index_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 0);
  EXPECT_EQ(*s.rbegin(), 49);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  std::vector<real_t> w(20, 1.0);
  const auto s = rng.sample_without_replacement(w, 10);
  std::set<index_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (const auto i : s) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 20);
  }
}

TEST(Rng, SampleWithoutReplacementFavorsHeavyWeights) {
  Rng rng(20);
  // Item 0 has overwhelming weight; it should virtually always be selected.
  std::vector<real_t> w(50, 1.0);
  w[0] = 1e6;
  int hits = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = rng.sample_without_replacement(w, 5);
    hits += std::count(s.begin(), s.end(), index_t{0}) > 0;
  }
  EXPECT_GE(hits, 198);
}

TEST(Rng, SampleWithoutReplacementSkipsZeroWeights) {
  Rng rng(21);
  std::vector<real_t> w = {0.0, 1.0, 0.0, 1.0, 1.0};
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = rng.sample_without_replacement(w, 3);
    for (const auto i : s) EXPECT_GT(w[static_cast<std::size_t>(i)], 0.0);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(22);
  std::vector<real_t> w = {1.0, 2.0, 3.0};
  const auto s = rng.sample_without_replacement(w, 3);
  std::set<index_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(Rng, SampleWithoutReplacementValidatesK) {
  Rng rng(23);
  std::vector<real_t> w = {1.0, 1.0};
  EXPECT_THROW(rng.sample_without_replacement(w, 0), Error);
  EXPECT_THROW(rng.sample_without_replacement(w, 3), Error);
}

}  // namespace
}  // namespace hylo
