// Synthetic datasets and the sharded DataLoader: determinism, label balance,
// shard disjointness, mask validity.
#include <gtest/gtest.h>

#include <set>

#include "hylo/data/datasets.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

TEST(Datasets, SpiralsShapesAndLabels) {
  const DataSplit s = make_spirals(120, 30, 3, 0.05, 1);
  EXPECT_EQ(s.train.size(), 120);
  EXPECT_EQ(s.test.size(), 30);
  EXPECT_EQ(s.train.images.c(), 2);
  EXPECT_FALSE(s.train.is_segmentation());
  std::set<int> labels(s.train.labels.begin(), s.train.labels.end());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(Datasets, SpiralsDeterministic) {
  const DataSplit a = make_spirals(50, 10, 2, 0.1, 7);
  const DataSplit b = make_spirals(50, 10, 2, 0.1, 7);
  for (index_t i = 0; i < a.train.images.size(); ++i)
    EXPECT_EQ(a.train.images[i], b.train.images[i]);
  const DataSplit c = make_spirals(50, 10, 2, 0.1, 8);
  real_t diff = 0.0;
  for (index_t i = 0; i < a.train.images.size(); ++i)
    diff += std::abs(a.train.images[i] - c.train.images[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(Datasets, GaussianImagesClassSeparation) {
  // With modest noise, same-class samples must be closer to their own class
  // mean than to other class means (in expectation) — check via per-class
  // template correlation.
  const DataSplit s = make_gaussian_images(60, 20, 3, 1, 8, 8, 0.2, 2);
  EXPECT_EQ(s.train.images.c(), 1);
  EXPECT_EQ(s.train.images.h(), 8);
  // Compute class means, then check each sample correlates best with its own
  // class mean.
  const index_t d = s.train.images.sample_size();
  std::vector<std::vector<real_t>> mean(3, std::vector<real_t>(static_cast<std::size_t>(d), 0.0));
  std::vector<int> count(3, 0);
  for (index_t i = 0; i < s.train.size(); ++i) {
    const int y = s.train.labels[static_cast<std::size_t>(i)];
    count[static_cast<std::size_t>(y)]++;
    const real_t* p = s.train.images.sample_ptr(i);
    for (index_t j = 0; j < d; ++j) mean[static_cast<std::size_t>(y)][static_cast<std::size_t>(j)] += p[j];
  }
  for (int k = 0; k < 3; ++k)
    for (auto& v : mean[static_cast<std::size_t>(k)]) v /= count[static_cast<std::size_t>(k)];
  int correct = 0;
  for (index_t i = 0; i < s.test.size(); ++i) {
    const real_t* p = s.test.images.sample_ptr(i);
    real_t best = -1e300;
    int best_k = -1;
    for (int k = 0; k < 3; ++k) {
      real_t dotp = 0.0;
      for (index_t j = 0; j < d; ++j)
        dotp += p[j] * mean[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
      if (dotp > best) {
        best = dotp;
        best_k = k;
      }
    }
    correct += (best_k == s.test.labels[static_cast<std::size_t>(i)]);
  }
  // Nearest-class-mean should do far better than chance (1/3).
  EXPECT_GT(correct, 15);  // out of 20
}

TEST(Datasets, TextureImagesBalancedLabels) {
  const DataSplit s = make_texture_images(40, 12, 4, 3, 8, 8, 0.1, 3);
  EXPECT_EQ(s.train.images.c(), 3);
  std::vector<int> counts(4, 0);
  for (const int y : s.train.labels) counts[static_cast<std::size_t>(y)]++;
  for (const int c : counts) EXPECT_EQ(c, 10);
}

TEST(Datasets, BlobSegmentationMasksValid) {
  const DataSplit s = make_blob_segmentation(10, 4, 16, 16, 0.1, 4);
  EXPECT_TRUE(s.train.is_segmentation());
  EXPECT_EQ(s.train.masks.c(), 1);
  index_t fg = 0;
  for (index_t i = 0; i < s.train.masks.size(); ++i) {
    const real_t v = s.train.masks[i];
    EXPECT_TRUE(v == 0.0 || v == 1.0);
    fg += v == 1.0;
  }
  // Lesions exist but don't dominate.
  EXPECT_GT(fg, 0);
  EXPECT_LT(fg, s.train.masks.size() / 2);
}

TEST(DataLoader, CoversEpochWithoutRepeats) {
  const DataSplit s = make_spirals(64, 8, 2, 0.1, 5);
  DataLoader loader(s.train, 16, 99);
  EXPECT_EQ(loader.batches_per_epoch(), 4);
  Batch b;
  int batches = 0;
  while (loader.next(b)) {
    EXPECT_EQ(b.size(), 16);
    ++batches;
  }
  EXPECT_EQ(batches, 4);
}

TEST(DataLoader, EpochShufflesDeterministically) {
  const DataSplit s = make_spirals(32, 8, 2, 0.1, 5);
  DataLoader a(s.train, 8, 99), b(s.train, 8, 99);
  a.start_epoch(3);
  b.start_epoch(3);
  Batch ba, bb;
  while (a.next(ba) && b.next(bb))
    for (index_t i = 0; i < ba.images.size(); ++i)
      EXPECT_EQ(ba.images[i], bb.images[i]);
  // Different epochs shuffle differently.
  a.start_epoch(1);
  b.start_epoch(2);
  a.next(ba);
  b.next(bb);
  real_t diff = 0.0;
  for (index_t i = 0; i < ba.images.size(); ++i)
    diff += std::abs(ba.images[i] - bb.images[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(DataLoader, ShardsAreDisjointAndCover) {
  // Mark each sample with a unique value, then check 4 ranks see disjoint
  // sample sets covering the usable prefix.
  Dataset ds;
  ds.images.resize(40, 1, 1, 1);
  ds.labels.assign(40, 0);
  for (index_t i = 0; i < 40; ++i) ds.images.sample_ptr(i)[0] = static_cast<real_t>(i);

  std::set<int> seen;
  for (index_t rank = 0; rank < 4; ++rank) {
    DataLoader loader(ds, 5, 7, rank, 4);
    loader.start_epoch(0);
    Batch b;
    while (loader.next(b))
      for (index_t i = 0; i < b.size(); ++i) {
        const int v = static_cast<int>(b.images.sample_ptr(i)[0]);
        EXPECT_TRUE(seen.insert(v).second) << "duplicate sample " << v;
      }
  }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(DataLoader, AllRanksSameBatchCount) {
  const DataSplit s = make_spirals(70, 8, 2, 0.1, 5);
  index_t count0 = -1;
  for (index_t rank = 0; rank < 3; ++rank) {
    DataLoader loader(s.train, 4, 7, rank, 3);
    if (rank == 0)
      count0 = loader.batches_per_epoch();
    else
      EXPECT_EQ(loader.batches_per_epoch(), count0);
  }
}

TEST(DataLoader, SegmentationBatchesCarryMasks) {
  const DataSplit s = make_blob_segmentation(12, 4, 8, 8, 0.1, 4);
  DataLoader loader(s.train, 4, 1);
  Batch b;
  ASSERT_TRUE(loader.next(b));
  EXPECT_EQ(b.masks.n(), 4);
  EXPECT_TRUE(b.labels.empty());
}

TEST(DataLoader, Validation) {
  const DataSplit s = make_spirals(16, 4, 2, 0.1, 5);
  EXPECT_THROW(DataLoader(s.train, 0, 1), Error);
  EXPECT_THROW(DataLoader(s.train, 4, 1, 5, 4), Error);
}

}  // namespace
}  // namespace hylo
