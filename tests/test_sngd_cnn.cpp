// Sec. IV — the SNGD-for-CNNs extension. Validates the spatial-sum capture
// against the exactly-equivalent fully-connected construction, and the
// KID/SNGD equivalence on convolutional captures.
#include <gtest/gtest.h>

#include <memory>

#include "hylo/hylo.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

Tensor4 random_batch(Rng& rng, index_t n, Shape s) {
  Tensor4 x(n, s.c, s.h, s.w);
  for (index_t i = 0; i < x.size(); ++i) x[i] = rng.normal();
  return x;
}

// Train step with capture on a 1-layer conv net; returns the block.
void captured_pass(Network& net, const Tensor4& x, index_t classes, Rng& rng) {
  const PassContext ctx{.training = true, .capture = true};
  net.zero_grad();
  const Tensor4& out = net.forward(x, ctx);
  std::vector<int> y(static_cast<std::size_t>(x.n()));
  for (auto& v : y) v = static_cast<int>(rng.uniform_int(classes));
  // The conv net ends in a pooling+linear head in these tests, so out is
  // logits already.
  const LossResult lr = SoftmaxCrossEntropy().compute(out, y);
  net.backward(lr.grad, ctx);
}

TEST(SngdCnn, SpatialSumEqualsLinearWhenOutputIsOnePixel) {
  // A conv whose receptive field covers the whole input (S = 1) is exactly a
  // fully-connected layer on the flattened input; the Sec. IV capture must
  // coincide with the Linear capture, and so must the SNGD preconditioning.
  const index_t m = 6, c = 2, hw = 3;
  Rng data_rng(1);
  const Tensor4 x = random_batch(data_rng, m, {c, hw, hw});

  Rng wrng1(7);
  Network conv_net;
  int n1 = conv_net.add_input({c, hw, hw});
  n1 = conv_net.add(std::make_unique<Conv2d>(4, hw, 1, 0, wrng1), n1);
  conv_net.add(std::make_unique<Linear>(3, wrng1), n1);

  Rng wrng2(7);  // same stream: identical conv/linear weights
  Network lin_net;
  int n2 = lin_net.add_input({c, hw, hw});
  n2 = lin_net.add(std::make_unique<Linear>(4, wrng2), n2);
  lin_net.add(std::make_unique<Linear>(3, wrng2), n2);

  // Note: Conv2d(4, 3x3) on 3x3 input has weight layout c_out x (c*3*3+1) ==
  // the Linear(4) layout on 18 flattened inputs, and He-init consumed in the
  // same order — weights coincide. But im2col's patch ordering differs from
  // flat NCHW ordering only by a permutation of (c,ky,kx) vs (c,h,w), which
  // for full-input kernels is the identity. Verify outputs agree first.
  const PassContext plain{.training = true, .capture = false};
  const Tensor4& yc = conv_net.forward(x, plain);
  const Tensor4& yl = lin_net.forward(x, plain);
  ASSERT_EQ(yc.size(), yl.size());
  for (index_t i = 0; i < yc.size(); ++i) EXPECT_NEAR(yc[i], yl[i], 1e-12);

  Rng lrng(3);
  captured_pass(conv_net, x, 3, lrng);
  lrng.reseed(3);
  captured_pass(lin_net, x, 3, lrng);

  ParamBlock* cb = conv_net.param_blocks()[0];
  ParamBlock* lb = lin_net.param_blocks()[0];
  ASSERT_EQ(cb->a_samples.cols(), lb->a_samples.cols());
  EXPECT_LT(max_abs_diff(cb->a_samples, lb->a_samples), 1e-12);
  EXPECT_LT(max_abs_diff(cb->g_samples, lb->g_samples), 1e-12);
  EXPECT_LT(max_abs_diff(cb->gw, lb->gw), 1e-12);

  // And the SNGD-preconditioned gradients coincide (Eq. 11 == Eq. 7 here).
  OptimConfig oc;
  oc.damping = 0.4;
  Sngd s1(oc), s2(oc);
  CaptureSet cap1, cap2;
  cap1.a = {{cb->a_samples}};
  cap1.g = {{cb->g_samples}};
  cap2.a = {{lb->a_samples}};
  cap2.g = {{lb->g_samples}};
  s1.update_curvature({cb}, cap1, nullptr);
  s2.update_curvature({lb}, cap2, nullptr);
  EXPECT_LT(max_abs_diff(s1.preconditioned(cb->gw, 0),
                         s2.preconditioned(lb->gw, 0)),
            1e-10);
}

TEST(SngdCnn, KidFullRankMatchesSngdOnConvCaptures) {
  // The Eq. 8 -> Eq. 7 anchor property, on real convolutional captures with
  // spatial extent (S > 1), where the Sec. IV spatial-sum matrices feed both
  // methods identically.
  Rng data_rng(2), lrng(5);
  Network net = make_c3f1({1, 8, 8}, 4, 4, 11);
  const Tensor4 x = random_batch(data_rng, 8, {1, 8, 8});
  captured_pass(net, x, 4, lrng);

  auto blocks = net.param_blocks();
  CaptureSet cap;
  cap.a.resize(blocks.size());
  cap.g.resize(blocks.size());
  for (std::size_t l = 0; l < blocks.size(); ++l) {
    cap.a[l] = {blocks[l]->a_samples};
    cap.g[l] = {blocks[l]->g_samples};
  }

  OptimConfig oc;
  oc.damping = 0.5;
  oc.rank_ratio = 1.0;
  Sngd sngd(oc);
  HyloOptimizer hylo(oc);
  hylo.set_policy(HyloOptimizer::Policy::kAlwaysKid);
  hylo.begin_epoch(0, false);
  sngd.update_curvature(blocks, cap, nullptr);
  hylo.update_curvature(blocks, cap, nullptr);

  for (std::size_t l = 0; l < blocks.size(); ++l) {
    const Matrix& g = blocks[l]->gw;
    const Matrix exact = sngd.preconditioned(g, static_cast<index_t>(l));
    const Matrix approx = hylo.preconditioned(g, static_cast<index_t>(l));
    EXPECT_LT(max_abs_diff(approx, exact), 1e-6 * (1.0 + max_abs(exact)))
        << "layer " << l;
  }
}

TEST(SngdCnn, ConvCaptureAugmentationCarriesSpatialSize) {
  Rng data_rng(3), wrng(4), lrng(6);
  Network net;
  int n = net.add_input({2, 8, 8});
  n = net.add(std::make_unique<Conv2d>(3, 3, 1, 1, wrng), n);  // S = 64
  n = net.add(std::make_unique<GlobalAvgPool>(), n);
  net.add(std::make_unique<Linear>(2, wrng), n);
  const Tensor4 x = random_batch(data_rng, 4, {2, 8, 8});
  captured_pass(net, x, 2, lrng);
  ParamBlock* conv = net.param_blocks()[0];
  for (index_t i = 0; i < 4; ++i)
    EXPECT_EQ(conv->a_samples(i, conv->d_in), 64.0);
  ParamBlock* fc = net.param_blocks()[1];
  for (index_t i = 0; i < 4; ++i)
    EXPECT_EQ(fc->a_samples(i, fc->d_in), 1.0);
}

}  // namespace
}  // namespace hylo
