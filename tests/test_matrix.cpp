// Matrix container semantics: construction, views, stacking, arithmetic.
#include <gtest/gtest.h>

#include "hylo/tensor/matrix.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  for (index_t i = 0; i < m.size(); ++i) EXPECT_EQ(m[i], 0.0);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 0), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), Error);
}

TEST(Matrix, RowMajorLayout) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.data()[1], 2.0);
  EXPECT_EQ(m.data()[2], 3.0);
  EXPECT_EQ(m.row_ptr(1)[0], 3.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_EQ(trace(i), 3.0);
  EXPECT_EQ(i(0, 1), 0.0);
}

TEST(Matrix, DiagFromVector) {
  Matrix v(3, 1);
  v[0] = 1;
  v[1] = 2;
  v[2] = 3;
  const Matrix d = Matrix::diag(v);
  EXPECT_EQ(d(1, 1), 2.0);
  EXPECT_EQ(d(0, 2), 0.0);
}

TEST(Matrix, DiagRejectsNonVector) {
  EXPECT_THROW(Matrix::diag(Matrix(2, 2)), Error);
}

TEST(Matrix, RowAndColCopies) {
  Matrix m{{1, 2}, {3, 4}};
  const Matrix r = m.row(1);
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r[1], 4.0);
  const Matrix c = m.col(0);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c[1], 3.0);
}

TEST(Matrix, RowsRange) {
  Matrix m{{1, 1}, {2, 2}, {3, 3}};
  const Matrix r = m.rows_range(1, 3);
  EXPECT_EQ(r.rows(), 2);
  EXPECT_EQ(r(0, 0), 2.0);
  EXPECT_EQ(r(1, 1), 3.0);
}

TEST(Matrix, SelectRowsPreservesOrder) {
  Matrix m{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const Matrix s = m.select_rows({3, 1});
  EXPECT_EQ(s(0, 0), 3.0);
  EXPECT_EQ(s(1, 0), 1.0);
}

TEST(Matrix, SelectRowsValidates) {
  Matrix m(2, 2);
  EXPECT_THROW(m.select_rows({5}), Error);
}

TEST(Matrix, TransposedRoundTrip) {
  Rng rng(1);
  const Matrix m = testutil::random_matrix(rng, 17, 33);
  EXPECT_EQ(max_abs_diff(m.transposed().transposed(), m), 0.0);
  EXPECT_EQ(m.transposed()(5, 11), m(11, 5));
}

TEST(Matrix, WithOnesColumn) {
  Matrix m{{1, 2}, {3, 4}};
  const Matrix a = m.with_ones_column();
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a(0, 2), 1.0);
  EXPECT_EQ(a(1, 0), 3.0);
}

TEST(Matrix, ArithmeticOps) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix s = a + b;
  EXPECT_EQ(s(0, 0), 5.0);
  EXPECT_EQ(s(1, 1), 5.0);
  const Matrix d = a - b;
  EXPECT_EQ(d(0, 0), -3.0);
  const Matrix sc = a * 2.0;
  EXPECT_EQ(sc(1, 0), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, Error);
}

TEST(Matrix, ReshapePreservesData) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  m.reshape(3, 2);
  EXPECT_EQ(m(2, 1), 6.0);
  EXPECT_THROW(m.reshape(4, 2), Error);
}

TEST(Matrix, ResizeZeroes) {
  Matrix m{{1, 2}, {3, 4}};
  m.resize(3, 3);
  EXPECT_EQ(m.rows(), 3);
  for (index_t i = 0; i < m.size(); ++i) EXPECT_EQ(m[i], 0.0);
}

}  // namespace
}  // namespace hylo
