// Cross-cutting property sweeps (TEST_P) over the invariants the whole
// method stack rests on: the SMW identity, ID exactness, KIS unbiasedness,
// kernel PSD-ness, rank monotonicity, loader coverage, cost-model laws.
#include <gtest/gtest.h>

#include <cmath>

#include "hylo/hylo.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

struct SmwDims {
  index_t m, din, dout;
  real_t alpha;
};

class SmwSweep : public ::testing::TestWithParam<SmwDims> {};

TEST_P(SmwSweep, Eq7HoldsAcrossShapes) {
  const auto [m, din, dout, alpha] = GetParam();
  Rng rng(m * 1000 + din * 10 + dout);
  const Matrix a = testutil::random_matrix(rng, m, din);
  const Matrix g = testutil::random_matrix(rng, m, dout);
  const Matrix u = khatri_rao_rowwise(g, a);
  const Matrix v = testutil::random_matrix(rng, dout, din);

  Matrix f = gram_tn(u);
  add_diagonal(f, alpha);
  Matrix vcol(v.size(), 1);
  for (index_t i = 0; i < v.size(); ++i) vcol[i] = v.data()[i];
  const Matrix direct = spd_solve(f, vcol);

  Matrix k = kernel_matrix(a, g);
  add_diagonal(k, alpha);
  const Matrix y = spd_solve(k, apply_jacobian(a, g, v));
  Matrix smw = v - apply_jacobian_t(a, g, y);
  smw *= 1.0 / alpha;
  for (index_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(smw.data()[i], direct[i], 1e-7 * (1.0 + std::abs(direct[i])));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SmwSweep,
    ::testing::Values(SmwDims{2, 3, 2, 0.5}, SmwDims{6, 4, 4, 0.1},
                      SmwDims{12, 8, 3, 1.0}, SmwDims{16, 5, 9, 0.05},
                      SmwDims{24, 12, 12, 2.0}, SmwDims{3, 16, 16, 0.3}));

class KidExactness : public ::testing::TestWithParam<index_t> {};

TEST_P(KidExactness, RecoversExactlyLowRankKernels) {
  // Per-factor rank k => kernel rank <= k²; KID at r = k² is exact.
  const index_t k = GetParam();
  Rng rng(40 + k);
  const index_t m = 24;
  const Matrix a = testutil::random_low_rank(rng, m, 10, k);
  const Matrix g = testutil::random_low_rank(rng, m, 8, k);
  const Matrix q = kernel_matrix(a, g);
  const RowId id = row_interpolative_decomposition(q, k * k);
  EXPECT_LT(frobenius_norm(id_reconstruct(id, q) - q),
            1e-6 * (1.0 + frobenius_norm(q)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, KidExactness, ::testing::Values(1, 2, 3, 4));

TEST(KisProperty, ScaledSamplingApproximatesGramInExpectation) {
  // Average Âᵀ Â over many independent KIS draws and compare to Aᵀ A. The
  // estimator is unbiased with replacement; without replacement it carries
  // a small bias — accept 15% relative error at 400 draws.
  Rng rng(7);
  const index_t m = 32, d = 6, rho = 8;
  const Matrix a = testutil::random_matrix(rng, m, d);
  const auto norms = row_norms(a);
  std::vector<real_t> score(static_cast<std::size_t>(m));
  real_t total = 0.0;
  for (index_t j = 0; j < m; ++j) {
    score[static_cast<std::size_t>(j)] =
        norms[static_cast<std::size_t>(j)] * norms[static_cast<std::size_t>(j)];
    total += score[static_cast<std::size_t>(j)];
  }
  Matrix accum(d, d);
  const int draws = 400;
  for (int t = 0; t < draws; ++t) {
    const auto picked = rng.sample_without_replacement(score, rho);
    Matrix sub = a.select_rows(picked);
    for (index_t i = 0; i < rho; ++i) {
      const real_t p = score[static_cast<std::size_t>(
                           picked[static_cast<std::size_t>(i)])] /
                       total;
      const real_t scale =
          1.0 / std::sqrt(static_cast<real_t>(rho) * p);
      real_t* row = sub.row_ptr(i);
      for (index_t j = 0; j < d; ++j) row[j] *= scale;
    }
    accum += gram_tn(sub);
  }
  accum *= 1.0 / static_cast<real_t>(draws);
  const Matrix want = gram_tn(a);
  EXPECT_LT(frobenius_norm(accum - want), 0.15 * frobenius_norm(want));
}

class KernelPsd : public ::testing::TestWithParam<index_t> {};

TEST_P(KernelPsd, KernelMatrixAlwaysPsdAndSymmetric) {
  const index_t m = GetParam();
  Rng rng(m);
  const Matrix a = testutil::random_matrix(rng, m, 7);
  const Matrix g = testutil::random_matrix(rng, m, 5);
  const Matrix k = kernel_matrix(a, g);
  EXPECT_LT(max_abs_diff(k, k.transposed()), 1e-12);
  const auto eigs = eigvalsh(k);
  for (const auto e : eigs) EXPECT_GT(e, -1e-8 * (1.0 + max_abs(k)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelPsd, ::testing::Values(2, 5, 9, 17, 33));

TEST(RankProperty, MonotoneInCoverage) {
  Rng rng(5);
  const auto eigs = eigvalsh(testutil::random_spd(rng, 20));
  index_t prev = 0;
  for (const real_t cov : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const index_t r = numerical_rank(eigs, cov);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

struct LoaderDims {
  index_t n, batch, world;
};

class LoaderSweep : public ::testing::TestWithParam<LoaderDims> {};

TEST_P(LoaderSweep, ShardsPartitionUsablePrefix) {
  const auto [n, batch, world] = GetParam();
  Dataset ds;
  ds.images.resize(n, 1, 1, 1);
  ds.labels.assign(static_cast<std::size_t>(n), 0);
  for (index_t i = 0; i < n; ++i)
    ds.images.sample_ptr(i)[0] = static_cast<real_t>(i);
  std::vector<int> seen;
  index_t per_rank_batches = -1;
  for (index_t rank = 0; rank < world; ++rank) {
    DataLoader loader(ds, batch, 3, rank, world);
    loader.start_epoch(1);
    if (rank == 0)
      per_rank_batches = loader.batches_per_epoch();
    else
      EXPECT_EQ(loader.batches_per_epoch(), per_rank_batches);
    Batch b;
    while (loader.next(b))
      for (index_t i = 0; i < b.size(); ++i)
        seen.push_back(static_cast<int>(b.images.sample_ptr(i)[0]));
  }
  // No duplicates across all ranks and batches.
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
  EXPECT_EQ(static_cast<index_t>(seen.size()),
            per_rank_batches * batch * world);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LoaderSweep,
                         ::testing::Values(LoaderDims{64, 8, 1},
                                           LoaderDims{64, 8, 2},
                                           LoaderDims{100, 7, 3},
                                           LoaderDims{33, 4, 4},
                                           LoaderDims{256, 16, 8}));

TEST(CostModelProperty, MonotoneInBytesAndBoundedInWorld) {
  for (const auto& model : {mist_v100(), aws_p2_k80()}) {
    double prev = -1.0;
    for (const index_t bytes : {1 << 10, 1 << 14, 1 << 18, 1 << 22}) {
      const double t = allreduce_seconds(model, 16, bytes);
      EXPECT_GT(t, prev);
      prev = t;
    }
    // Allgather grows linearly in world; broadcast logarithmically: for any
    // fixed payload, allgather must eventually dominate.
    EXPECT_GT(allgather_seconds(model, 64, 1 << 20),
              broadcast_seconds(model, 64, 1 << 20));
  }
}

}  // namespace
}  // namespace hylo
