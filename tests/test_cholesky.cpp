// Cholesky factorization and SPD solves across a size sweep.
#include <gtest/gtest.h>

#include "hylo/linalg/cholesky.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

class CholeskySizes : public ::testing::TestWithParam<index_t> {};

TEST_P(CholeskySizes, FactorReconstructs) {
  const index_t n = GetParam();
  Rng rng(n);
  const Matrix a = testutil::random_spd(rng, n);
  const Matrix l = cholesky(a);
  EXPECT_LT(max_abs_diff(matmul_nt(l, l), a), 1e-8 * max_abs(a));
  // L is lower triangular.
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) EXPECT_EQ(l(i, j), 0.0);
}

TEST_P(CholeskySizes, SolveMatchesResidual) {
  const index_t n = GetParam();
  Rng rng(1000 + n);
  const Matrix a = testutil::random_spd(rng, n);
  const Matrix b = testutil::random_matrix(rng, n, 3);
  const Matrix x = spd_solve(a, b);
  EXPECT_LT(max_abs_diff(matmul(a, x), b), 1e-7);
}

TEST_P(CholeskySizes, InverseIsInverse) {
  const index_t n = GetParam();
  Rng rng(2000 + n);
  const Matrix a = testutil::random_spd(rng, n);
  const Matrix inv = spd_inverse(a);
  EXPECT_LT(max_abs_diff(matmul(a, inv), Matrix::identity(n)), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CholeskySizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 37, 64, 100));

TEST(Cholesky, VectorSolve) {
  Rng rng(9);
  const Matrix a = testutil::random_spd(rng, 12);
  const Matrix l = cholesky(a);
  std::vector<real_t> b(12);
  for (auto& v : b) v = rng.normal();
  const std::vector<real_t> b0 = b;
  cholesky_solve_inplace(l, b);
  std::vector<real_t> back;
  matvec(a, b, back);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(back[i], b0[i], 1e-8);
}

TEST(Cholesky, IndefiniteFailsGracefully) {
  Matrix a{{1, 0}, {0, -1}};
  Matrix l;
  EXPECT_FALSE(try_cholesky(a, l));
  EXPECT_THROW(cholesky(a), Error);
}

TEST(Cholesky, SingularFails) {
  Matrix a{{1, 1}, {1, 1}};
  Matrix l;
  EXPECT_FALSE(try_cholesky(a, l));
}

TEST(Cholesky, NonSquareThrows) { EXPECT_THROW(cholesky(Matrix(2, 3)), Error); }

TEST(Cholesky, DampingRescuesSemiDefinite) {
  Rng rng(10);
  // Rank-deficient Gram matrix becomes PD after adding damping.
  Matrix a = gram_nt(testutil::random_matrix(rng, 10, 3));
  Matrix l;
  EXPECT_FALSE(try_cholesky(a, l));
  add_diagonal(a, 1e-3);
  EXPECT_TRUE(try_cholesky(a, l));
}

}  // namespace
}  // namespace hylo
