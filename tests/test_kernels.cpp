// Khatri-Rao kernel algebra: K = UUᵀ identity, implicit-U application, and
// the SMW inversion identity (Eq. 7) that all SNGD-family optimizers rely on.
#include <gtest/gtest.h>

#include "hylo/linalg/cholesky.hpp"
#include "hylo/linalg/kernels.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

struct Dims {
  index_t m, din, dout;
};

class KernelDims : public ::testing::TestWithParam<Dims> {};

TEST_P(KernelDims, KernelEqualsUUt) {
  const auto [m, din, dout] = GetParam();
  Rng rng(m + din + dout);
  const Matrix a = testutil::random_matrix(rng, m, din);
  const Matrix g = testutil::random_matrix(rng, m, dout);
  const Matrix u = khatri_rao_rowwise(g, a);
  EXPECT_LT(max_abs_diff(kernel_matrix(a, g), gram_nt(u)), 1e-9);
}

TEST_P(KernelDims, ApplyJacobianMatchesMaterialized) {
  const auto [m, din, dout] = GetParam();
  Rng rng(100 + m + din + dout);
  const Matrix a = testutil::random_matrix(rng, m, din);
  const Matrix g = testutil::random_matrix(rng, m, dout);
  const Matrix v = testutil::random_matrix(rng, dout, din);
  const Matrix u = khatri_rao_rowwise(g, a);

  // U vec(V): flatten V row-major (matches kron(g, a) row convention).
  std::vector<real_t> vflat(static_cast<std::size_t>(v.size()));
  for (index_t i = 0; i < v.size(); ++i)
    vflat[static_cast<std::size_t>(i)] = v.data()[i];
  std::vector<real_t> want;
  matvec(u, vflat, want);

  const Matrix got = apply_jacobian(a, g, v);
  for (index_t i = 0; i < m; ++i)
    EXPECT_NEAR(got[i], want[static_cast<std::size_t>(i)], 1e-9);
}

TEST_P(KernelDims, ApplyJacobianTMatchesMaterialized) {
  const auto [m, din, dout] = GetParam();
  Rng rng(200 + m + din + dout);
  const Matrix a = testutil::random_matrix(rng, m, din);
  const Matrix g = testutil::random_matrix(rng, m, dout);
  const Matrix y = testutil::random_matrix(rng, m, 1);
  const Matrix u = khatri_rao_rowwise(g, a);

  std::vector<real_t> yv(static_cast<std::size_t>(m));
  for (index_t i = 0; i < m; ++i) yv[static_cast<std::size_t>(i)] = y[i];
  std::vector<real_t> want;
  matvec_t(u, yv, want);

  const Matrix got = apply_jacobian_t(a, g, y);
  ASSERT_EQ(got.rows(), dout);
  ASSERT_EQ(got.cols(), din);
  for (index_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got.data()[i], want[static_cast<std::size_t>(i)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelDims,
                         ::testing::Values(Dims{1, 1, 1}, Dims{4, 3, 2},
                                           Dims{8, 5, 5}, Dims{16, 10, 7},
                                           Dims{32, 6, 12}, Dims{3, 20, 20}));

TEST(Kernels, SmwIdentityEq7) {
  // (UᵀU + αI)⁻¹ v == (1/α)(v − Uᵀ(K+αI)⁻¹ U v)  with K = UUᵀ.
  Rng rng(42);
  const index_t m = 10, din = 6, dout = 4;
  const real_t alpha = 0.3;
  const Matrix a = testutil::random_matrix(rng, m, din);
  const Matrix g = testutil::random_matrix(rng, m, dout);
  const Matrix u = khatri_rao_rowwise(g, a);
  const Matrix v = testutil::random_matrix(rng, dout, din);

  // Direct dense route.
  Matrix f = gram_tn(u);
  add_diagonal(f, alpha);
  Matrix vcol(v.size(), 1);
  for (index_t i = 0; i < v.size(); ++i) vcol[i] = v.data()[i];
  const Matrix direct = spd_solve(f, vcol);

  // SMW route via the kernel matrix.
  Matrix k = kernel_matrix(a, g);
  add_diagonal(k, alpha);
  const Matrix uv = apply_jacobian(a, g, v);       // m x 1
  const Matrix y = spd_solve(k, uv);               // (K+αI)⁻¹ U v
  Matrix smw = v - apply_jacobian_t(a, g, y);
  smw *= 1.0 / alpha;

  for (index_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(smw.data()[i], direct[i], 1e-8);
}

TEST(Kernels, KernelIsPsd) {
  Rng rng(7);
  const Matrix a = testutil::random_matrix(rng, 12, 5);
  const Matrix g = testutil::random_matrix(rng, 12, 5);
  Matrix k = kernel_matrix(a, g);
  add_diagonal(k, 1e-9);
  Matrix l;
  EXPECT_TRUE(try_cholesky(k, l));
}

TEST(Kernels, SampleCountMismatchThrows) {
  EXPECT_THROW(kernel_matrix(Matrix(3, 2), Matrix(4, 2)), Error);
  EXPECT_THROW(khatri_rao_rowwise(Matrix(3, 2), Matrix(4, 2)), Error);
}

}  // namespace
}  // namespace hylo
