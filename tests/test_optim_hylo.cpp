// HyLo: KID/KIS correctness properties and the gradient-based switching
// heuristic. The anchor property: KID at full rank reduces Eq. 8 to the
// exact SMW inverse of Eq. 7, so HyLo(KID, r=m) must match SNGD.
#include <gtest/gtest.h>

#include "hylo/optim/hylo_optimizer.hpp"
#include "hylo/optim/sngd.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

CaptureSet make_capture(Rng& rng, index_t world, index_t m, index_t din,
                        index_t dout, index_t rank = -1) {
  CaptureSet cap;
  cap.a.resize(1);
  cap.g.resize(1);
  for (index_t r = 0; r < world; ++r) {
    if (rank > 0) {
      cap.a[0].push_back(testutil::random_low_rank(rng, m, din, rank));
      cap.g[0].push_back(testutil::random_low_rank(rng, m, dout, rank));
    } else {
      cap.a[0].push_back(testutil::random_matrix(rng, m, din));
      cap.g[0].push_back(testutil::random_matrix(rng, m, dout));
    }
  }
  return cap;
}

class HyloFullRank : public ::testing::TestWithParam<index_t> {};

TEST_P(HyloFullRank, KidAtFullRankMatchesExactSngd) {
  const index_t world = GetParam();
  Rng rng(world * 7);
  const index_t m = 6, din = 5, dout = 4;
  const CaptureSet cap = make_capture(rng, world, m, din, dout);

  OptimConfig cfg;
  cfg.damping = 0.25;
  cfg.rank_ratio = 1.0;  // r = global batch: lossless compression

  HyloOptimizer hylo(cfg);
  hylo.set_policy(HyloOptimizer::Policy::kAlwaysKid);
  hylo.begin_epoch(0, false);
  Sngd sngd(cfg);

  ParamBlock pb1, pb2;
  CommSim c1(world, loopback()), c2(world, loopback());
  hylo.update_curvature({&pb1}, cap, &c1);
  sngd.update_curvature({&pb2}, cap, &c2);

  const Matrix grad = testutil::random_matrix(rng, dout, din);
  EXPECT_LT(max_abs_diff(hylo.preconditioned(grad, 0),
                         sngd.preconditioned(grad, 0)),
            1e-6);
}

INSTANTIATE_TEST_SUITE_P(Worlds, HyloFullRank, ::testing::Values(1, 2, 3));

TEST(HyloKid, LowRankDataNeedsOnlyLowRank) {
  // When the per-sample factors have rank 2, a rank-~4 KID already
  // reproduces the exact SNGD preconditioning to high accuracy.
  Rng rng(3);
  const index_t m = 16, din = 8, dout = 6;
  const CaptureSet cap = make_capture(rng, 1, m, din, dout, /*rank=*/2);

  OptimConfig cfg;
  cfg.damping = 0.2;
  cfg.rank_ratio = 0.25;  // r = 4 of m = 16

  HyloOptimizer hylo(cfg);
  hylo.set_policy(HyloOptimizer::Policy::kAlwaysKid);
  hylo.begin_epoch(0, false);
  Sngd sngd(cfg);
  ParamBlock pb1, pb2;
  CommSim c1(1, loopback()), c2(1, loopback());
  hylo.update_curvature({&pb1}, cap, &c1);
  sngd.update_curvature({&pb2}, cap, &c2);

  const Matrix grad = testutil::random_matrix(rng, dout, din);
  const Matrix exact = sngd.preconditioned(grad, 0);
  const Matrix approx = hylo.preconditioned(grad, 0);
  EXPECT_LT(frobenius_norm(approx - exact), 0.05 * frobenius_norm(exact));
}

TEST(HyloKis, ApproximatesExactOnLowRankData) {
  Rng rng(4);
  const index_t m = 32, din = 8, dout = 6;
  const CaptureSet cap = make_capture(rng, 1, m, din, dout, /*rank=*/2);

  OptimConfig cfg;
  cfg.damping = 0.5;
  cfg.rank_ratio = 0.5;

  HyloOptimizer hylo(cfg);
  hylo.set_policy(HyloOptimizer::Policy::kAlwaysKis);
  hylo.begin_epoch(0, false);
  Sngd sngd(cfg);
  ParamBlock pb1, pb2;
  CommSim c1(1, loopback()), c2(1, loopback());
  hylo.update_curvature({&pb1}, cap, &c1);
  sngd.update_curvature({&pb2}, cap, &c2);

  const Matrix grad = testutil::random_matrix(rng, dout, din);
  const Matrix exact = sngd.preconditioned(grad, 0);
  const Matrix approx = hylo.preconditioned(grad, 0);
  // Sampling is noisy; demand agreement to ~35% relative error and, more
  // importantly, that KID at the same budget is tighter (Fig. 12 ordering,
  // asserted below in KidBeatsKisInAccuracy).
  EXPECT_LT(frobenius_norm(approx - exact), 0.35 * frobenius_norm(exact));
}

TEST(Hylo, KidBeatsKisInAccuracy) {
  // Fig. 12's qualitative claim: KID's gradient error is far below KIS's
  // at the same rank budget.
  // Per-factor rank 2 => kernel rank <= 4, so the r=8 KID budget captures it
  // exactly while KIS still subsamples 8 of 32 noisy rows.
  Rng rng(5);
  const index_t m = 32, din = 10, dout = 8;
  const CaptureSet cap = make_capture(rng, 1, m, din, dout, /*rank=*/2);

  OptimConfig cfg;
  cfg.damping = 0.3;
  cfg.rank_ratio = 0.25;

  Sngd sngd(cfg);
  ParamBlock pbr;
  CommSim c0(1, loopback());
  sngd.update_curvature({&pbr}, cap, &c0);

  real_t err_kid = 0.0, err_kis = 0.0;
  const Matrix grad = testutil::random_matrix(rng, dout, din);
  const Matrix exact = sngd.preconditioned(grad, 0);
  {
    HyloOptimizer h(cfg);
    h.set_policy(HyloOptimizer::Policy::kAlwaysKid);
    h.begin_epoch(0, false);
    ParamBlock pb;
    CommSim c(1, loopback());
    h.update_curvature({&pb}, cap, &c);
    err_kid = frobenius_norm(h.preconditioned(grad, 0) - exact);
  }
  {
    HyloOptimizer h(cfg);
    h.set_policy(HyloOptimizer::Policy::kAlwaysKis);
    h.begin_epoch(0, false);
    ParamBlock pb;
    CommSim c(1, loopback());
    h.update_curvature({&pb}, cap, &c);
    err_kis = frobenius_norm(h.preconditioned(grad, 0) - exact);
  }
  EXPECT_LT(err_kid, err_kis);
}

TEST(Hylo, FactorsAreCompressed) {
  // Table I: HyLo stores O(r·d) factors, not O(P·m·d).
  Rng rng(6);
  const index_t world = 4, m = 16, din = 12, dout = 10;
  const CaptureSet cap = make_capture(rng, world, m, din, dout);

  OptimConfig cfg;
  cfg.rank_ratio = 0.125;  // r = 8 of global 64
  HyloOptimizer hylo(cfg);
  hylo.set_policy(HyloOptimizer::Policy::kAlwaysKis);
  hylo.begin_epoch(0, false);
  Sngd sngd(cfg);
  ParamBlock pb1, pb2;
  CommSim c1(world, loopback()), c2(world, loopback());
  hylo.update_curvature({&pb1}, cap, &c1);
  sngd.update_curvature({&pb2}, cap, &c2);
  EXPECT_EQ(hylo.last_rank(), 8);
  EXPECT_LT(hylo.state_bytes(), sngd.state_bytes() / 4);
}

TEST(Hylo, CommunicationIsCheaperThanSngd) {
  Rng rng(7);
  const index_t world = 8, m = 16, din = 20, dout = 20;
  const CaptureSet cap = make_capture(rng, world, m, din, dout);
  OptimConfig cfg;
  cfg.rank_ratio = 0.1;
  HyloOptimizer hylo(cfg);
  hylo.set_policy(HyloOptimizer::Policy::kAlwaysKis);
  hylo.begin_epoch(0, false);
  Sngd sngd(cfg);
  ParamBlock pb1, pb2;
  CommSim c1(world, mist_v100()), c2(world, mist_v100());
  hylo.update_curvature({&pb1}, cap, &c1);
  sngd.update_curvature({&pb2}, cap, &c2);
  EXPECT_LT(c1.comm_seconds(), c2.comm_seconds());
}

// ------------------------------------------------------ switching logic ----

void feed_epoch_gradient(HyloOptimizer& h, ParamBlock& pb, real_t magnitude) {
  pb.gw = Matrix(2, 2, magnitude);
  h.accumulate_gradient({&pb});
}

TEST(HyloSwitching, WarmupEpochsUseKid) {
  OptimConfig cfg;
  HyloOptimizer h(cfg);
  ParamBlock pb;
  h.begin_epoch(0, false);
  EXPECT_EQ(h.mode(), HyloMode::kKid);
  feed_epoch_gradient(h, pb, 1.0);
  h.begin_epoch(1, false);
  EXPECT_EQ(h.mode(), HyloMode::kKid);  // only one completed epoch
}

TEST(HyloSwitching, StableGradientsSwitchToKis) {
  OptimConfig cfg;
  cfg.switch_threshold = 0.25;
  HyloOptimizer h(cfg);
  ParamBlock pb;
  h.begin_epoch(0, false);
  feed_epoch_gradient(h, pb, 1.0);
  h.begin_epoch(1, false);
  feed_epoch_gradient(h, pb, 1.02);  // R = 0.02 < 0.25
  h.begin_epoch(2, false);
  EXPECT_EQ(h.mode(), HyloMode::kKis);
}

TEST(HyloSwitching, GradientJumpTriggersKid) {
  OptimConfig cfg;
  cfg.switch_threshold = 0.25;
  HyloOptimizer h(cfg);
  ParamBlock pb;
  h.begin_epoch(0, false);
  feed_epoch_gradient(h, pb, 1.0);
  h.begin_epoch(1, false);
  feed_epoch_gradient(h, pb, 2.0);  // R = 1.0 >= 0.25
  h.begin_epoch(2, false);
  EXPECT_EQ(h.mode(), HyloMode::kKid);
}

TEST(HyloSwitching, LrDecayForcesKid) {
  OptimConfig cfg;
  cfg.switch_threshold = 10.0;  // R can never trigger
  HyloOptimizer h(cfg);
  ParamBlock pb;
  h.begin_epoch(0, false);
  feed_epoch_gradient(h, pb, 1.0);
  h.begin_epoch(1, false);
  feed_epoch_gradient(h, pb, 1.0);
  h.begin_epoch(2, false);
  EXPECT_EQ(h.mode(), HyloMode::kKis);
  feed_epoch_gradient(h, pb, 1.0);
  h.begin_epoch(3, /*lr_decayed=*/true);
  EXPECT_EQ(h.mode(), HyloMode::kKid);
}

TEST(HyloSwitching, DeltaNormHistoryMatchesAccumulation) {
  OptimConfig cfg;
  HyloOptimizer h(cfg);
  ParamBlock pb;
  h.begin_epoch(0, false);
  // Two iterations of gradient 1.0 on 2x2: Δ = 2.0 each entry, ‖Δ‖ = 4.
  feed_epoch_gradient(h, pb, 1.0);
  feed_epoch_gradient(h, pb, 1.0);
  h.begin_epoch(1, false);
  ASSERT_EQ(h.delta_norm_history().size(), 1u);
  EXPECT_NEAR(h.delta_norm_history()[0], 4.0, 1e-12);
}

TEST(HyloSwitching, PolicyOverrides) {
  OptimConfig cfg;
  HyloOptimizer h(cfg);
  h.set_policy(HyloOptimizer::Policy::kAlwaysKis);
  h.begin_epoch(0, true);  // lr decay would force KID under gradient policy
  EXPECT_EQ(h.mode(), HyloMode::kKis);

  h.set_policy(HyloOptimizer::Policy::kRandom);
  int kid = 0;
  for (int e = 0; e < 200; ++e) {
    h.begin_epoch(e, false);
    kid += h.mode() == HyloMode::kKid;
  }
  EXPECT_GT(kid, 60);
  EXPECT_LT(kid, 140);  // ~Bernoulli(0.5)
}

TEST(HyloSwitching, ModeHistoryRecorded) {
  OptimConfig cfg;
  HyloOptimizer h(cfg);
  h.begin_epoch(0, false);
  h.begin_epoch(1, false);
  EXPECT_EQ(h.mode_history().size(), 2u);
}

}  // namespace
}  // namespace hylo
