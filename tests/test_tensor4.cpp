// Tensor4 and the im2col/col2im pair: layout, a hand-checked example, and the
// adjoint property <im2col(x), C> == <x, col2im(C)> that conv backward
// correctness depends on.
#include <gtest/gtest.h>

#include "hylo/common/rng.hpp"
#include "hylo/tensor/tensor4.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

TEST(Tensor4, LayoutIsNCHW) {
  Tensor4 t(2, 3, 4, 5);
  t.at(1, 2, 3, 4) = 9.0;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0);
  EXPECT_EQ(t.sample_size(), 60);
  EXPECT_EQ(t.size(), 120);
}

TEST(Tensor4, MatrixRoundTrip) {
  Rng rng(1);
  Tensor4 t(3, 2, 4, 4);
  for (index_t i = 0; i < t.size(); ++i) t[i] = rng.normal();
  const Matrix m = t.as_matrix();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 32);
  const Tensor4 back = Tensor4::from_matrix(m, 2, 4, 4);
  for (index_t i = 0; i < t.size(); ++i) EXPECT_EQ(back[i], t[i]);
}

TEST(Tensor4, ConvGeometryDims) {
  ConvGeometry g{.in_c = 3, .in_h = 32, .in_w = 32, .kernel_h = 3,
                 .kernel_w = 3, .stride = 1, .pad = 1};
  EXPECT_EQ(g.out_h(), 32);
  EXPECT_EQ(g.out_w(), 32);
  EXPECT_EQ(g.patch_size(), 27);
  ConvGeometry s{.in_c = 1, .in_h = 8, .in_w = 8, .kernel_h = 2,
                 .kernel_w = 2, .stride = 2, .pad = 0};
  EXPECT_EQ(s.out_h(), 4);
  EXPECT_EQ(s.out_w(), 4);
}

TEST(Tensor4, Im2ColHandChecked) {
  // 1 channel, 3x3 input, 2x2 kernel, stride 1, no pad -> 4 patches.
  Tensor4 t(1, 1, 3, 3);
  for (index_t i = 0; i < 9; ++i) t[i] = static_cast<real_t>(i + 1);
  ConvGeometry g{.in_c = 1, .in_h = 3, .in_w = 3, .kernel_h = 2,
                 .kernel_w = 2, .stride = 1, .pad = 0};
  Matrix cols;
  im2col(t.sample_ptr(0), g, cols);
  ASSERT_EQ(cols.rows(), 4);
  ASSERT_EQ(cols.cols(), 4);
  // Patch at output (0,0): [1,2,4,5].
  EXPECT_EQ(cols(0, 0), 1.0);
  EXPECT_EQ(cols(0, 1), 2.0);
  EXPECT_EQ(cols(0, 2), 4.0);
  EXPECT_EQ(cols(0, 3), 5.0);
  // Patch at output (1,1): [5,6,8,9].
  EXPECT_EQ(cols(3, 0), 5.0);
  EXPECT_EQ(cols(3, 3), 9.0);
}

TEST(Tensor4, Im2ColZeroPadsBorders) {
  Tensor4 t(1, 1, 2, 2);
  t[0] = 1;
  t[1] = 2;
  t[2] = 3;
  t[3] = 4;
  ConvGeometry g{.in_c = 1, .in_h = 2, .in_w = 2, .kernel_h = 3,
                 .kernel_w = 3, .stride = 1, .pad = 1};
  Matrix cols;
  im2col(t.sample_ptr(0), g, cols);
  ASSERT_EQ(cols.rows(), 4);
  // Output (0,0): window centered on pixel (0,0); top row and left col pad.
  EXPECT_EQ(cols(0, 0), 0.0);
  EXPECT_EQ(cols(0, 4), 1.0);  // center = pixel (0,0)
  EXPECT_EQ(cols(0, 5), 2.0);
  EXPECT_EQ(cols(0, 8), 4.0);
}

class Im2ColAdjoint
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(Im2ColAdjoint, DotProductIdentity) {
  const auto [kernel, stride, pad] = GetParam();
  Rng rng(7 * kernel + 3 * stride + pad);
  const index_t c = 2, h = 7, w = 6;
  ConvGeometry g{.in_c = c, .in_h = h, .in_w = w, .kernel_h = kernel,
                 .kernel_w = kernel, .stride = stride, .pad = pad};
  if (g.out_h() <= 0 || g.out_w() <= 0) GTEST_SKIP();

  Tensor4 x(1, c, h, w);
  for (index_t i = 0; i < x.size(); ++i) x[i] = rng.normal();
  Matrix cols;
  im2col(x.sample_ptr(0), g, cols);

  const Matrix cmat = testutil::random_matrix(rng, cols.rows(), cols.cols());
  Tensor4 back(1, c, h, w);
  col2im_add(cmat, g, back.sample_ptr(0));

  real_t lhs = 0.0;
  for (index_t i = 0; i < cols.size(); ++i)
    lhs += cols.data()[i] * cmat.data()[i];
  real_t rhs = 0.0;
  for (index_t i = 0; i < x.size(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Im2ColAdjoint,
    ::testing::Values(std::tuple<index_t, index_t, index_t>{3, 1, 1},
                      std::tuple<index_t, index_t, index_t>{3, 2, 1},
                      std::tuple<index_t, index_t, index_t>{1, 1, 0},
                      std::tuple<index_t, index_t, index_t>{2, 2, 0},
                      std::tuple<index_t, index_t, index_t>{5, 1, 2}));

TEST(Tensor4, Col2ImAccumulates) {
  ConvGeometry g{.in_c = 1, .in_h = 3, .in_w = 3, .kernel_h = 2,
                 .kernel_w = 2, .stride = 1, .pad = 0};
  Matrix ones(4, 4, 1.0);
  Tensor4 out(1, 1, 3, 3);
  col2im_add(ones, g, out.sample_ptr(0));
  // Center pixel (1,1) is covered by all four 2x2 windows.
  EXPECT_EQ(out.at(0, 0, 1, 1), 4.0);
  // Corner (0,0) by exactly one.
  EXPECT_EQ(out.at(0, 0, 0, 0), 1.0);
  // Calling again accumulates.
  col2im_add(ones, g, out.sample_ptr(0));
  EXPECT_EQ(out.at(0, 0, 1, 1), 8.0);
}

}  // namespace
}  // namespace hylo
