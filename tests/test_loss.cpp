// Loss heads: analytic values on hand-computable cases and finite-difference
// gradient validation.
#include <gtest/gtest.h>

#include <cmath>

#include "hylo/nn/loss.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

TEST(SoftmaxCE, UniformLogitsGiveLogC) {
  Tensor4 logits(2, 4, 1, 1);  // all-zero logits -> uniform distribution
  const LossResult r = SoftmaxCrossEntropy().compute(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-12);
}

TEST(SoftmaxCE, PerfectPredictionLowLoss) {
  Tensor4 logits(1, 3, 1, 1);
  logits.sample_ptr(0)[1] = 50.0;
  const LossResult r = SoftmaxCrossEntropy().compute(logits, {1});
  EXPECT_LT(r.loss, 1e-6);
  EXPECT_EQ(r.metric, 1.0);
}

TEST(SoftmaxCE, AccuracyCountsArgmax) {
  Tensor4 logits(4, 2, 1, 1);
  // Samples 0,1 predict class 0; samples 2,3 predict class 1.
  logits.sample_ptr(0)[0] = 1.0;
  logits.sample_ptr(1)[0] = 1.0;
  logits.sample_ptr(2)[1] = 1.0;
  logits.sample_ptr(3)[1] = 1.0;
  const LossResult r = SoftmaxCrossEntropy().compute(logits, {0, 1, 1, 1});
  EXPECT_NEAR(r.metric, 0.75, 1e-12);
}

TEST(SoftmaxCE, GradientSumsToZeroPerSample) {
  Rng rng(1);
  Tensor4 logits(3, 5, 1, 1);
  for (index_t i = 0; i < logits.size(); ++i) logits[i] = rng.normal();
  const LossResult r = SoftmaxCrossEntropy().compute(logits, {0, 2, 4});
  for (index_t i = 0; i < 3; ++i) {
    real_t s = 0.0;
    for (index_t k = 0; k < 5; ++k) s += r.grad.sample_ptr(i)[k];
    EXPECT_NEAR(s, 0.0, 1e-12);  // softmax-minus-onehot rows sum to zero
  }
}

TEST(SoftmaxCE, GradientMatchesFiniteDifference) {
  Rng rng(2);
  Tensor4 logits(4, 3, 1, 1);
  for (index_t i = 0; i < logits.size(); ++i) logits[i] = rng.normal();
  const std::vector<int> y = {2, 0, 1, 1};
  const SoftmaxCrossEntropy loss;
  const LossResult r = loss.compute(logits, y);
  const real_t eps = 1e-6;
  for (index_t i = 0; i < logits.size(); ++i) {
    Tensor4 lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const real_t numeric =
        (loss.compute(lp, y).loss - loss.compute(lm, y).loss) / (2 * eps);
    EXPECT_NEAR(r.grad[i], numeric, 1e-7);
  }
}

TEST(SoftmaxCE, EvaluateMatchesCompute) {
  Rng rng(3);
  Tensor4 logits(8, 6, 1, 1);
  for (index_t i = 0; i < logits.size(); ++i) logits[i] = rng.normal();
  std::vector<int> y(8);
  for (auto& v : y) v = static_cast<int>(rng.uniform_int(6));
  const auto [l, acc] = SoftmaxCrossEntropy().evaluate(logits, y);
  const LossResult r = SoftmaxCrossEntropy().compute(logits, y);
  EXPECT_NEAR(l, r.loss, 1e-12);
  EXPECT_NEAR(acc, r.metric, 1e-12);
}

TEST(SoftmaxCE, BadLabelThrows) {
  Tensor4 logits(1, 2, 1, 1);
  EXPECT_THROW(SoftmaxCrossEntropy().compute(logits, {5}), Error);
  EXPECT_THROW(SoftmaxCrossEntropy().compute(logits, {0, 1}), Error);
}

TEST(DiceBce, PerfectMaskScoresOne) {
  Tensor4 logits(1, 1, 4, 4);
  Tensor4 target(1, 1, 4, 4);
  for (index_t j = 0; j < 8; ++j) {
    logits.sample_ptr(0)[j] = 20.0;  // confident foreground
    target.sample_ptr(0)[j] = 1.0;
  }
  for (index_t j = 8; j < 16; ++j) logits.sample_ptr(0)[j] = -20.0;
  const LossResult r = DiceBceLoss().compute(logits, target);
  EXPECT_GT(r.metric, 0.999);
  EXPECT_LT(r.loss, 0.01);
}

TEST(DiceBce, EmptyMaskAndEmptyPredictionAgree) {
  Tensor4 logits(1, 1, 3, 3);
  for (index_t j = 0; j < 9; ++j) logits.sample_ptr(0)[j] = -10.0;
  Tensor4 target(1, 1, 3, 3);
  const LossResult r = DiceBceLoss().compute(logits, target);
  EXPECT_NEAR(r.metric, 1.0, 1e-12);
}

TEST(DiceBce, HalfOverlapDice) {
  // Prediction covers 8 pixels, target covers 8, overlap 4: DSC = 0.5.
  Tensor4 logits(1, 1, 4, 4);
  Tensor4 target(1, 1, 4, 4);
  for (index_t j = 0; j < 16; ++j) logits.sample_ptr(0)[j] = -20.0;
  for (index_t j = 0; j < 8; ++j) logits.sample_ptr(0)[j] = 20.0;
  for (index_t j = 4; j < 12; ++j) target.sample_ptr(0)[j] = 1.0;
  const LossResult r = DiceBceLoss().compute(logits, target);
  EXPECT_NEAR(r.metric, 0.5, 1e-9);
}

TEST(DiceBce, GradientMatchesFiniteDifference) {
  Rng rng(4);
  Tensor4 logits(2, 1, 3, 3);
  Tensor4 target(2, 1, 3, 3);
  for (index_t i = 0; i < logits.size(); ++i) {
    logits[i] = rng.normal();
    target[i] = rng.uniform() > 0.5 ? 1.0 : 0.0;
  }
  const DiceBceLoss loss;
  const LossResult r = loss.compute(logits, target);
  const real_t eps = 1e-6;
  for (index_t i = 0; i < logits.size(); ++i) {
    Tensor4 lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const real_t numeric =
        (loss.compute(lp, target).loss - loss.compute(lm, target).loss) /
        (2 * eps);
    EXPECT_NEAR(r.grad[i], numeric, 1e-6);
  }
}

TEST(DiceBce, EvaluateMatchesCompute) {
  Rng rng(5);
  Tensor4 logits(3, 1, 4, 4);
  Tensor4 target(3, 1, 4, 4);
  for (index_t i = 0; i < logits.size(); ++i) {
    logits[i] = rng.normal();
    target[i] = rng.uniform() > 0.6 ? 1.0 : 0.0;
  }
  const DiceBceLoss loss;
  const auto [l, dice] = loss.evaluate(logits, target);
  const LossResult r = loss.compute(logits, target);
  EXPECT_NEAR(l, r.loss, 1e-12);
  EXPECT_NEAR(dice, r.metric, 1e-12);
}

TEST(DiceBce, ShapeMismatchThrows) {
  EXPECT_THROW(DiceBceLoss().compute(Tensor4(1, 1, 2, 2), Tensor4(1, 1, 3, 3)),
               Error);
  EXPECT_THROW(DiceBceLoss().compute(Tensor4(1, 2, 2, 2), Tensor4(1, 2, 2, 2)),
               Error);
}

}  // namespace
}  // namespace hylo
