// Silent-corruption guards + checkpoint-rollback self-healing (DESIGN.md
// §16). The property under test: for any seeded fault + silent-corruption
// schedule, training either completes with finite results or exits with a
// loud diagnostic — never a silent wrong result — and every rollback-resume
// is deterministic for a fixed seed.
//
// Env-proofing: every Trainer here pins its fault schedule, checkpoint
// cadence (a non-empty dir with every=0 pins snapshots off), and recovery
// policy explicitly, so the ambient HYLO_FAULTS / HYLO_RECOVER /
// HYLO_CKPT_* environment of the chaos_env ctest variants cannot change
// any outcome. Comm mode is left unpinned where both modes must hold —
// the async variant re-runs those assertions under HYLO_COMM=async.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hylo/hylo.hpp"

namespace hylo {
namespace {

namespace fs = std::filesystem;

std::string tmp_dir(const std::string& name) {
  // PID-qualified: ctest runs this binary three times concurrently (plain +
  // the two chaos_env variants), and a shared path would race on
  // remove_all vs. a sibling's live snapshots.
  const std::string dir = "/tmp/hylo_test_chaos_" +
                          std::to_string(::getpid()) + "_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A silent_corrupt-only fault mix at the given per-collective rate and
/// escape probability (escape=1 turns every event into real bit-flips).
FaultConfig silent_storm(std::uint64_t seed, double rate, double escape) {
  std::ostringstream spec;
  spec << seed << ":" << rate << ":silent=1,escape=" << escape;
  return FaultConfig::parse(spec.str());
}

ckpt::CkptConfig no_snapshots() {
  ckpt::CkptConfig c;
  c.dir = "/tmp/hylo_test_chaos_unused";
  c.every = 0;  // non-empty dir + every=0 pins checkpointing off
  return c;
}

// ---------------------------------------------------------------------------
// Spec parsing

TEST(SilentCorrupt, ParsesMixAndEscape) {
  const FaultConfig cfg = FaultConfig::parse("42:0.2:silent=1,escape=0.25");
  EXPECT_EQ(cfg.silent_weight, 1.0);
  EXPECT_EQ(cfg.sdc_escape, 0.25);
  EXPECT_EQ(cfg.timeout_weight, 0.0);  // explicit mix zeroes unnamed kinds
  EXPECT_EQ(cfg.rank_down_weight, 0.0);
  // "silent" and "silent_corrupt" are aliases; escape defaults to 0.25.
  EXPECT_EQ(FaultConfig::parse("1:0.5:silent_corrupt=2").silent_weight, 2.0);
  EXPECT_EQ(FaultConfig::parse("1:0.5:silent=1").sdc_escape, 0.25);
  // The default all-ones mix does NOT include silent corruption: guards
  // and bit-flips never appear unless a spec asks for them.
  EXPECT_EQ(FaultConfig::parse("7:0.1").silent_weight, 0.0);
  EXPECT_THROW(FaultConfig::parse("1:0.5:silent=1,escape=1.5"), Error);
  EXPECT_THROW(FaultConfig::parse("1:0.5:escape=-0.1"), Error);
}

TEST(SilentCorrupt, RecoverySpecParsing) {
  EXPECT_FALSE(RecoveryConfig::parse("off").enabled);
  EXPECT_FALSE(RecoveryConfig::parse("").enabled);
  const RecoveryConfig on = RecoveryConfig::parse("on");
  EXPECT_TRUE(on.enabled);
  EXPECT_EQ(on.max_rollbacks, 3);
  const RecoveryConfig full = RecoveryConfig::parse("5:40:0.25");
  EXPECT_TRUE(full.enabled);
  EXPECT_EQ(full.max_rollbacks, 5);
  EXPECT_EQ(full.first_order_iters, 40);
  EXPECT_EQ(full.lr_backoff, 0.25);
  EXPECT_EQ(RecoveryConfig::parse("2").max_rollbacks, 2);
  EXPECT_EQ(RecoveryConfig::parse("2:7").first_order_iters, 7);
  EXPECT_THROW(RecoveryConfig::parse("zero"), Error);
  EXPECT_THROW(RecoveryConfig::parse("0"), Error);
  EXPECT_THROW(RecoveryConfig::parse("-1"), Error);
  EXPECT_THROW(RecoveryConfig::parse("3:5:1.5"), Error);
  EXPECT_THROW(RecoveryConfig::parse("3:5:0"), Error);
  EXPECT_THROW(RecoveryConfig::parse("3:5:0.5:9"), Error);

  ::setenv("HYLO_RECOVER", "4:10", 1);
  const auto env = RecoveryConfig::from_env();
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->max_rollbacks, 4);
  EXPECT_EQ(env->first_order_iters, 10);
  ::unsetenv("HYLO_RECOVER");
  EXPECT_FALSE(RecoveryConfig::from_env().has_value());
}

TEST(SilentCorrupt, PolicyLadderAndBudget) {
  RecoveryConfig cfg = RecoveryConfig::parse("3");
  RecoveryPolicy policy(cfg);
  // Consecutive rollbacks to the same snapshot escalate the ladder.
  const RecoveryAction r1 = policy.on_trigger("snap-a");
  EXPECT_EQ(r1.rung, 1);
  EXPECT_FALSE(r1.first_order);
  EXPECT_FALSE(r1.reduce_lr);
  const RecoveryAction r2 = policy.on_trigger("snap-a");
  EXPECT_EQ(r2.rung, 2);
  EXPECT_TRUE(r2.first_order);
  EXPECT_FALSE(r2.reduce_lr);
  const RecoveryAction r3 = policy.on_trigger("snap-a");
  EXPECT_EQ(r3.rung, 3);
  EXPECT_TRUE(r3.first_order);
  EXPECT_TRUE(r3.reduce_lr);
  EXPECT_EQ(policy.rollbacks(), 3);
  EXPECT_EQ(policy.budget_left(), 0);
  // Budget spent: the fourth trigger must fail loudly, not roll back.
  EXPECT_TRUE(policy.on_trigger("snap-a").exhausted);
  EXPECT_EQ(policy.rollbacks(), 3);

  // A different target resets the rung to 1 (fresh incident).
  RecoveryPolicy fresh(cfg);
  fresh.on_trigger("snap-a");
  const RecoveryAction other = fresh.on_trigger("snap-b");
  EXPECT_EQ(other.rung, 1);
}

// ---------------------------------------------------------------------------
// Payload corruption mechanics

TEST(SilentCorrupt, CorruptValuesIsDeterministic) {
  Rng rng(3);
  Matrix m(8, 8);
  for (index_t i = 0; i < m.size(); ++i) m[i] = rng.normal();
  Matrix a = m, b = m;
  corrupt_values(a, 1234);
  corrupt_values(b, 1234);
  index_t diffs = 0;
  for (index_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "same seed must flip the same bits";
    if (std::memcmp(&a[i], &m[i], sizeof(real_t)) != 0) ++diffs;
  }
  EXPECT_GE(diffs, 1);  // 1..3 bit flips, possibly in one value
  EXPECT_LE(diffs, 3);
  // A different seed produces a different corruption.
  Matrix c = m;
  corrupt_values(c, 1235);
  bool any_diff = false;
  for (index_t i = 0; i < m.size(); ++i)
    any_diff = any_diff || std::memcmp(&a[i], &c[i], sizeof(real_t)) != 0;
  EXPECT_TRUE(any_diff);
  // Empty payloads are a no-op, not a crash.
  Matrix empty;
  corrupt_values(empty, 7);
}

TEST(SilentCorrupt, ScheduleIsPureFunctionOfSeed) {
  const FaultConfig cfg = silent_storm(13, 1.0, 0.5);
  FaultPlan a(cfg), b(cfg);
  index_t detected = 0, escaped = 0;
  for (int i = 0; i < 200; ++i) {
    const FaultEvent ea = a.next(4), eb = b.next(4);
    ASSERT_EQ(ea.kind, FaultKind::kSilentCorrupt);
    EXPECT_EQ(ea.detected, eb.detected);
    EXPECT_EQ(ea.payload_seed, eb.payload_seed);
    if (ea.detected) {
      ++detected;
      EXPECT_EQ(ea.retries, 1);  // the rejected attempt is retransmitted
    } else {
      ++escaped;
      EXPECT_NE(ea.payload_seed, 0u);
    }
  }
  // escape=0.5 over 200 events: both outcomes must occur.
  EXPECT_GT(detected, 20);
  EXPECT_GT(escaped, 20);
}

TEST(SilentCorrupt, PreexistingMixesReplayUnchanged) {
  // The terminal-bucket walk must keep schedules for specs without a
  // silent weight byte-identical to pre-guard builds: rank_down/rank_lost
  // remain terminal when every downstream weight is zero.
  const FaultConfig cfg = FaultConfig::parse("11:1.0:rank_down=1");
  FaultPlan plan(cfg);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(plan.next(4).kind, FaultKind::kRankDown);
}

TEST(SilentCorrupt, DetectedCorruptionIsCaughtAndCharged) {
  // escape=0: every silent_corrupt event is caught by the transport
  // checksum. Must-complete collectives retransmit; no ticket ever leaks.
  CommSim comm(4, mist_v100());
  comm.configure_faults(silent_storm(5, 1.0, 0.0));
  for (int i = 0; i < 10; ++i)
    comm.charge_allreduce(1 << 14, "comm/grad_allreduce",
                          FailMode::kRetryUntilSuccess);
  auto& reg = comm.profiler().registry();
  EXPECT_EQ(reg.counter_value("comm/faults/injected"), 10);
  EXPECT_EQ(reg.counter_value("comm/faults/sdc_detected"), 10);
  EXPECT_EQ(reg.counter_value("comm/faults/sdc_escaped"), 0);
  EXPECT_EQ(reg.counter_value("comm/faults/retries"), 10);
  EXPECT_FALSE(comm.take_silent_corruption().has_value());
  // The checksum + retransmission cost strictly exceeds the clean wire.
  const double clean = 10.0 * allreduce_seconds(comm.model(), 4, 1 << 14);
  EXPECT_GT(comm.comm_seconds(), clean);

  // Under kMayFail, a caught corruption drops the collective loudly.
  CommSim strict(4, mist_v100());
  strict.configure_faults(silent_storm(5, 1.0, 0.0));
  EXPECT_THROW(strict.charge_broadcast(1 << 14, "comm/factor_bcast"),
               CommFailure);
  EXPECT_EQ(strict.profiler().registry().counter_value(
                "comm/faults/unrecoverable"),
            1);
}

TEST(SilentCorrupt, EscapedCorruptionFlipsBitsInPayload) {
  // escape=1: every event slips past the checksum and allreduce_mean's
  // result must actually differ from the clean mean — on every replica
  // identically (the lockstep invariant survives corruption).
  auto run = [](bool faulty) {
    CommSim comm(2, mist_v100());
    if (faulty) comm.configure_faults(silent_storm(23, 1.0, 1.0));
    Rng rng(9);
    Matrix m0(4, 4), m1(4, 4);
    for (index_t i = 0; i < m0.size(); ++i) m0[i] = rng.normal();
    m1 = m0;
    comm.allreduce_mean({&m0, &m1}, "comm/grad_allreduce");
    for (index_t i = 0; i < m0.size(); ++i) EXPECT_EQ(m0[i], m1[i]);
    return m0;
  };
  const Matrix clean = run(false), corrupted = run(true);
  bool differs = false;
  for (index_t i = 0; i < clean.size(); ++i)
    differs = differs || std::memcmp(clean.data() + i, corrupted.data() + i,
                                     sizeof(real_t)) != 0;
  EXPECT_TRUE(differs) << "an escaped event must corrupt the payload";
}

TEST(SilentCorrupt, UnconsumedTicketDiesAtNextCollective) {
  // A ticket from charge N must never leak into collective N+2: the next
  // charge clears any pending ticket before drawing its own fault.
  CommSim comm(4, mist_v100());
  comm.configure_faults(silent_storm(23, 1.0, 1.0));
  comm.charge_allgather(1 << 12, "comm/gather");
  EXPECT_TRUE(comm.take_silent_corruption().has_value());
  comm.charge_allgather(1 << 12, "comm/gather");
  comm.charge_allgather(1 << 12, "comm/gather");  // clears ticket #2
  ASSERT_TRUE(comm.take_silent_corruption().has_value());
  EXPECT_FALSE(comm.take_silent_corruption().has_value());  // consume-once
}

// ---------------------------------------------------------------------------
// Guard gates

struct TinyRun {
  TrainResult res;
  std::int64_t guard_rejects = 0, stale = 0, escaped = 0;
  std::vector<real_t> losses;
  bool threw = false;
  bool nonfinite = false;
};

TinyRun train_tiny(const std::string& optimizer, std::uint64_t net_seed,
                   TrainConfig tc, OptimConfig oc,
                   Trainer::EpochHook hook = nullptr) {
  const DataSplit data = make_spirals(512, 128, 2, 0.08, 11);
  Network net = make_mlp({2, 1, 1}, {16, 16}, 2, net_seed);
  auto opt = make_optimizer(optimizer, oc);
  Trainer trainer(net, *opt, data, tc);
  if (hook) trainer.set_epoch_hook(std::move(hook));
  TinyRun out;
  try {
    out.res = trainer.run();
  } catch (const Error&) {
    out.threw = true;
  }
  const auto& reg = trainer.comm().profiler().registry();
  for (const char* m : {"hylo", "sngd", "kfac", "ekfac", "kbfgs"}) {
    out.guard_rejects += reg.counter_value(std::string("optim/") + m +
                                           "/guard_rejects");
    out.stale += reg.counter_value(std::string("optim/") + m +
                                   "/stale_refreshes");
  }
  out.escaped = reg.counter_value("comm/faults/sdc_escaped");
  for (const auto& e : out.res.epochs) {
    out.losses.push_back(e.train_loss);
    out.nonfinite = out.nonfinite || !std::isfinite(e.train_loss) ||
                    !std::isfinite(e.test_loss);
  }
  return out;
}

TrainConfig tiny_config(index_t epochs = 2) {
  TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.world = 4;
  tc.interconnect = mist_v100();
  tc.faults = FaultConfig{};       // pin: no injection
  tc.checkpoint = no_snapshots();  // pin: no snapshots
  tc.recovery = RecoveryConfig{};  // pin: no rollbacks
  return tc;
}

OptimConfig tiny_optim() {
  OptimConfig oc;
  oc.lr = 0.05;
  oc.damping = 0.3;
  oc.update_freq = 2;
  oc.rank_ratio = 0.25;
  return oc;
}

TEST(ChaosGuards, GatesAreBitwiseInvisibleOnCleanRuns) {
  // Default-on guard gates only reject non-finite/exploding candidates, so
  // a clean (fault-free) run commits exactly what a guards-off run does.
  for (const char* name : {"HyLo", "SNGD", "KFAC"}) {
    OptimConfig on = tiny_optim(), off = tiny_optim();
    off.guard_gates = false;
    const TinyRun a = train_tiny(name, 7, tiny_config(), on);
    const TinyRun b = train_tiny(name, 7, tiny_config(), off);
    ASSERT_FALSE(a.threw);
    ASSERT_FALSE(b.threw);
    ASSERT_EQ(a.losses.size(), b.losses.size());
    for (std::size_t i = 0; i < a.losses.size(); ++i)
      EXPECT_EQ(a.losses[i], b.losses[i]) << name << " epoch " << i;
    EXPECT_EQ(a.guard_rejects, 0);
    EXPECT_EQ(b.guard_rejects, 0);
  }
}

TEST(ChaosGuards, GatesRejectPoisonedRefreshesAndDegradeToStale) {
  // A heavy escaped-corruption storm: with gates on, poisoned factor
  // candidates are rejected and the layers degrade to stale factors via
  // the PR-4 machinery — with accounting in optim/<m>/guard_rejects.
  // Seed 7 over three epochs lands at least one exponent-bit flip in every
  // optimizer's factor payloads — a mantissa flip corrupts silently but
  // stays inside the sanity bounds, which is exactly why layer 2 (rollback)
  // exists on top of the gates.
  for (const char* name : {"SNGD", "KFAC", "HyLo"}) {
    TrainConfig tc = tiny_config(3);
    tc.faults = silent_storm(7, 0.8, 1.0);
    OptimConfig oc = tiny_optim();
    oc.update_freq = 1;  // maximize corrupted refreshes
    const TinyRun r = train_tiny(name, 7, tc, oc);
    EXPECT_GT(r.escaped, 0) << name;
    EXPECT_GT(r.guard_rejects, 0) << name << ": gates never fired";
    EXPECT_GE(r.stale, r.guard_rejects)
        << name << ": every reject must degrade to stale";
    // Completing with gates on means completing finite.
    if (!r.threw) {
      EXPECT_FALSE(r.nonfinite) << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Rollback recovery

/// Poison hook: at the end of epoch `at`, overwrite one live weight with
/// NaN — a deterministic stand-in for corruption the guards missed. With
/// `times` > 1 the poison re-applies on re-runs (testing budget exhaustion).
Trainer::EpochHook poison_after_epoch(index_t at, int times = 1) {
  auto budget = std::make_shared<int>(times);
  return [at, budget](const EpochStats& stats, Network& net) {
    if (stats.epoch != at || *budget <= 0) return;
    --*budget;
    auto blocks = net.param_blocks();
    ASSERT_FALSE(blocks.empty());
    // The *last* block feeds softmax directly: a NaN logit is guaranteed to
    // reach the loss (a hidden-layer NaN would be squashed by ReLU's
    // `x > 0` mask and never trip the trigger).
    blocks.back()->w[0] = std::numeric_limits<real_t>::quiet_NaN();
  };
}

TEST(ChaosRecovery, RollsBackToVerifiedGoodSnapshotAndCompletes) {
  const std::string dir = tmp_dir("rollback");
  TrainConfig tc = tiny_config(3);
  tc.checkpoint.dir = dir;
  tc.checkpoint.every = 2;
  tc.checkpoint.keep = 2;
  tc.recovery = RecoveryConfig::parse("3");
  const TinyRun r =
      train_tiny("SNGD", 7, tc, tiny_optim(), poison_after_epoch(0));
  ASSERT_FALSE(r.threw);
  EXPECT_EQ(r.res.rollbacks, 1);
  EXPECT_FALSE(r.nonfinite);
  ASSERT_EQ(r.res.epochs.size(), 3u);
  // The re-run window replaced the poisoned epoch stats: one entry per
  // epoch, in order.
  for (index_t e = 0; e < 3; ++e) EXPECT_EQ(r.res.epochs[e].epoch, e);
  fs::remove_all(dir);
}

TEST(ChaosRecovery, RollbackRunsAreDeterministic) {
  // Two identical poisoned runs — rollback, restore, ladder and all — must
  // produce identical modeled results (bitwise-replayable recovery).
  auto run_once = [](const std::string& dir) {
    TrainConfig tc = tiny_config(3);
    tc.checkpoint.dir = dir;
    tc.checkpoint.every = 2;
    tc.recovery = RecoveryConfig::parse("3");
    return train_tiny("HyLo", 7, tc, tiny_optim(), poison_after_epoch(0));
  };
  const std::string da = tmp_dir("det_a"), db = tmp_dir("det_b");
  const TinyRun a = run_once(da), b = run_once(db);
  ASSERT_FALSE(a.threw);
  ASSERT_FALSE(b.threw);
  EXPECT_EQ(a.res.rollbacks, 1);
  EXPECT_EQ(b.res.rollbacks, a.res.rollbacks);
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t i = 0; i < a.losses.size(); ++i)
    EXPECT_EQ(a.losses[i], b.losses[i]);
  EXPECT_EQ(a.res.comm_seconds, b.res.comm_seconds);
  fs::remove_all(da);
  fs::remove_all(db);
}

TEST(ChaosRecovery, ExhaustedBudgetFailsLoudly) {
  // The poison re-applies on every re-run: recovery cannot help, and after
  // the budget is spent the run must exit with a loud diagnostic instead
  // of looping or silently emitting NaN results.
  const std::string dir = tmp_dir("exhaust");
  TrainConfig tc = tiny_config(3);
  tc.checkpoint.dir = dir;
  tc.checkpoint.every = 2;
  tc.recovery = RecoveryConfig::parse("2:4");
  const DataSplit data = make_spirals(512, 128, 2, 0.08, 11);
  Network net = make_mlp({2, 1, 1}, {16, 16}, 2, 7);
  auto opt = make_optimizer("SNGD", tiny_optim());
  Trainer trainer(net, *opt, data, tc);
  trainer.set_epoch_hook(poison_after_epoch(0, /*times=*/100));
  EXPECT_THROW(trainer.run(), Error);
  EXPECT_EQ(trainer.recovery().rollbacks(), 2);
  EXPECT_EQ(trainer.comm().profiler().registry().counter_value(
                "recover/rollbacks"),
            2);
  fs::remove_all(dir);
}

TEST(ChaosRecovery, PinnedSnapshotSurvivesRotation) {
  // Satellite: ckpt::retain_last must never delete the pinned verified-
  // good snapshot, even when it falls out of the keep window.
  const std::string dir = tmp_dir("retain");
  auto touch = [&](int iter) {
    char name[40];
    std::snprintf(name, sizeof(name), "snapshot-%08d.hysnp", iter);
    const std::string path = (fs::path(dir) / name).string();
    std::ofstream(path) << "x";
    return path;
  };
  const std::string pinned = touch(2);
  for (int i = 4; i <= 12; i += 2) touch(i);
  ckpt::retain_last(dir, 2, pinned);
  const auto left = ckpt::list_snapshots(dir);
  ASSERT_EQ(left.size(), 3u);  // pin + the newest two
  EXPECT_EQ(left.front(), pinned);
  // Without a pin the same call would have dropped it.
  ckpt::retain_last(dir, 2, "");
  EXPECT_EQ(ckpt::list_snapshots(dir).size(), 2u);
  fs::remove_all(dir);
}

TEST(ChaosRecovery, RecoveryRequiresCheckpointCadence) {
  const DataSplit data = make_spirals(256, 64, 2, 0.08, 11);
  Network net = make_mlp({2, 1, 1}, {16}, 2, 7);
  Sgd opt(tiny_optim());
  TrainConfig tc = tiny_config(1);
  tc.recovery = RecoveryConfig::parse("on");  // but snapshots pinned off
  EXPECT_THROW(Trainer(net, opt, data, tc), Error);
}

TEST(ChaosRecovery, DisabledRecoveryIsBitwiseInvisible) {
  // With recovery off (the default), a run with the subsystem pinned off
  // and a run with it wholly unset are identical — and HYLO_RECOVER must
  // not leak in when the config pins it.
  const char* ambient = ::getenv("HYLO_RECOVER");
  const std::string saved = ambient == nullptr ? "" : ambient;
  ::setenv("HYLO_RECOVER", "off", 1);
  auto run_once = [](bool pin_off, const std::string& dir) {
    TrainConfig tc = tiny_config(2);
    tc.checkpoint.dir = dir;
    tc.checkpoint.every = 4;
    if (!pin_off) tc.recovery.reset();  // env "off" applies
    return train_tiny("HyLo", 7, tc, tiny_optim());
  };
  const std::string da = tmp_dir("off_a"), db = tmp_dir("off_b");
  const TinyRun a = run_once(true, da), b = run_once(false, db);
  // Restore the ambient spec — the chaos_env ctest variants rely on it for
  // the rest of the suite.
  if (saved.empty()) {
    ::unsetenv("HYLO_RECOVER");
  } else {
    ::setenv("HYLO_RECOVER", saved.c_str(), 1);
  }
  ASSERT_FALSE(a.threw);
  ASSERT_FALSE(b.threw);
  EXPECT_EQ(a.res.rollbacks, 0);
  EXPECT_EQ(b.res.rollbacks, 0);
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t i = 0; i < a.losses.size(); ++i)
    EXPECT_EQ(a.losses[i], b.losses[i]);
  EXPECT_EQ(a.res.comm_seconds, b.res.comm_seconds);
  fs::remove_all(da);
  fs::remove_all(db);
}

// ---------------------------------------------------------------------------
// The chaos property, across every curvature optimizer and both comm modes

TEST(ChaosProperty, CompletesOrFailsLoudlyNeverSilentlyWrong) {
  // For a seeded silent-corruption storm: under guards + recovery, every
  // curvature optimizer in both comm modes either completes with finite
  // results or exits through a typed hylo::Error — a run that "completes"
  // with non-finite epoch stats would be a silent wrong result.
  int completed = 0;
  for (const char* name : {"HyLo", "SNGD", "KFAC", "EKFAC", "KBFGS-L"}) {
    for (const CommMode mode : {CommMode::kLockstep, CommMode::kAsync}) {
      const std::string dir = tmp_dir(std::string("prop_") + name +
                                      (mode == CommMode::kAsync ? "_a" : "_l"));
      TrainConfig tc = tiny_config(2);
      tc.comm_mode = mode;
      tc.faults = silent_storm(31, 0.5, 0.5);
      tc.checkpoint.dir = dir;
      tc.checkpoint.every = 4;
      tc.recovery = RecoveryConfig::parse("3:8");
      OptimConfig oc = tiny_optim();
      oc.update_freq = 1;
      const TinyRun r = train_tiny(name, 7, tc, oc);
      EXPECT_GT(r.escaped, 0) << name;
      if (!r.threw) {
        EXPECT_FALSE(r.nonfinite)
            << name << " completed with non-finite stats — silent corruption";
        EXPECT_EQ(r.res.epochs.size(), 2u) << name;
        ++completed;
      }
      fs::remove_all(dir);
    }
  }
  // The storm is survivable by design: most configurations must complete
  // (a loud Error is acceptable for stragglers, silence never is).
  EXPECT_GE(completed, 6);
}

}  // namespace
}  // namespace hylo
