// Cost model and simulated collectives.
#include <gtest/gtest.h>

#include "hylo/dist/comm.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

TEST(CostModel, ZeroAtWorldOne) {
  const auto m = mist_v100();
  EXPECT_EQ(allreduce_seconds(m, 1, 1 << 20), 0.0);
  EXPECT_EQ(allgather_seconds(m, 1, 1 << 20), 0.0);
  EXPECT_EQ(broadcast_seconds(m, 1, 1 << 20), 0.0);
}

TEST(CostModel, AllreduceRingScaling) {
  const auto m = mist_v100();
  // Ring allreduce: 2(P-1)/P * bytes / BW + 2(P-1) * alpha. For large byte
  // counts the bandwidth term dominates and is nearly P-independent.
  const index_t big = 512 << 20;
  const double t8 = allreduce_seconds(m, 8, big);
  const double t64 = allreduce_seconds(m, 64, big);
  EXPECT_GT(t64, t8);
  EXPECT_LT(t64 / t8, 1.25);  // within the 2(P-1)/P asymptote
}

TEST(CostModel, AllgatherGrowsLinearlyInWorld) {
  const auto m = mist_v100();
  const double t4 = allgather_seconds(m, 4, 1 << 20);
  const double t16 = allgather_seconds(m, 16, 1 << 20);
  EXPECT_NEAR(t16 / t4, 5.0, 0.01);  // (16-1)/(4-1)
}

TEST(CostModel, BroadcastLogarithmic) {
  const auto m = mist_v100();
  const double t8 = broadcast_seconds(m, 8, 1 << 20);
  const double t64 = broadcast_seconds(m, 64, 1 << 20);
  EXPECT_NEAR(t64 / t8, 2.0, 0.01);  // log2(64)/log2(8)
}

TEST(CostModel, LatencyDominatesSmallMessages) {
  const auto m = aws_p2_k80();
  const double tiny = allreduce_seconds(m, 8, 8);
  EXPECT_GT(tiny, 2.0 * 7.0 * m.latency_s * 0.99);
}

TEST(CostModel, PresetsAreOrdered) {
  // NVLink/IB preset must be faster than the K80 PCIe preset.
  EXPECT_GT(mist_v100().bandwidth_bps, aws_p2_k80().bandwidth_bps);
  EXPECT_LT(mist_v100().latency_s, aws_p2_k80().latency_s);
}

TEST(CostModel, MonotoneInWorldAndBytes) {
  const auto m = mist_v100();
  for (index_t world = 2; world <= 64; world *= 2) {
    for (index_t bytes = 64; bytes <= (1 << 22); bytes *= 64) {
      // Strictly increasing in world at fixed bytes...
      EXPECT_GT(allreduce_seconds(m, world * 2, bytes),
                allreduce_seconds(m, world, bytes));
      EXPECT_GT(allgather_seconds(m, world * 2, bytes),
                allgather_seconds(m, world, bytes));
      EXPECT_GT(broadcast_seconds(m, world * 2, bytes),
                broadcast_seconds(m, world, bytes));
      // ...and in bytes at fixed world.
      EXPECT_GT(allreduce_seconds(m, world, bytes * 2),
                allreduce_seconds(m, world, bytes));
      EXPECT_GT(allgather_seconds(m, world, bytes * 2),
                allgather_seconds(m, world, bytes));
      EXPECT_GT(broadcast_seconds(m, world, bytes * 2),
                broadcast_seconds(m, world, bytes));
    }
  }
}

TEST(CostModel, LoopbackIsEffectivelyFree) {
  // Near-zero latency, huge bandwidth: even a 1 GiB collective at high P
  // models out to well under a microsecond.
  const auto m = loopback();
  EXPECT_LT(allreduce_seconds(m, 64, 1 << 30), 1e-6);
  EXPECT_LT(allgather_seconds(m, 64, 1 << 30), 1e-6);
  EXPECT_LT(broadcast_seconds(m, 64, 1 << 30), 1e-6);
}

TEST(CostModel, ReduceEqualsBroadcastByIntention) {
  // The binomial reduce tree moves the same bytes over the same log2(P)
  // levels in the opposite direction, and the α-β model is
  // direction-agnostic — documented equality, locked in here.
  for (const auto& m : {mist_v100(), aws_p2_k80()})
    for (index_t world : {2, 5, 16, 64})
      for (index_t bytes : {0, 1 << 10, 1 << 24})
        EXPECT_EQ(reduce_seconds(m, world, bytes),
                  broadcast_seconds(m, world, bytes));
}

TEST(CostModel, RetrySecondsShape) {
  const auto m = mist_v100();
  const double base = allgather_seconds(m, 8, 1 << 16);
  EXPECT_EQ(retry_seconds(m, base, 0), 0.0);
  // Each lost attempt burns at least the full collective plus backoff, and
  // the doubling backoff makes the total superlinear.
  double prev = 0.0;
  for (int k = 1; k <= 6; ++k) {
    const double t = retry_seconds(m, base, k);
    EXPECT_GT(t, prev + base);
    prev = t;
  }
  EXPECT_GT(retry_seconds(m, base, 4), 2.0 * retry_seconds(m, base, 2));
  EXPECT_THROW(retry_seconds(m, -1.0, 1), Error);
  EXPECT_THROW(retry_seconds(m, base, -1), Error);
}

TEST(CommSim, AllreduceMeanAveragesAndSyncs) {
  CommSim comm(3, mist_v100());
  Matrix a{{3.0}}, b{{6.0}}, c{{0.0}};
  comm.allreduce_mean({&a, &b, &c}, "comm/grad_allreduce");
  EXPECT_EQ(a(0, 0), 3.0);
  EXPECT_EQ(b(0, 0), 3.0);
  EXPECT_EQ(c(0, 0), 3.0);
  EXPECT_GT(comm.comm_seconds(), 0.0);
}

TEST(CommSim, AllgatherStacksInRankOrder) {
  CommSim comm(2, mist_v100());
  Matrix r0{{1.0, 1.0}}, r1{{2.0, 2.0}};
  const Matrix g = comm.allgather_rows({&r0, &r1}, "comm/gather");
  EXPECT_EQ(g.rows(), 2);
  EXPECT_EQ(g(0, 0), 1.0);
  EXPECT_EQ(g(1, 0), 2.0);
}

TEST(CommSim, AllgatherMixedRowsStackAndHandComputedWireBytes) {
  // Three ranks with different local-batch row counts. The stacked result
  // must preserve rank order, and the wire ledger must count the ring
  // total: every rank receives every *other* rank's block, so
  // bytes = (world-1) * sum_r bytes_r — not one rank's payload.
  CommSim comm(3, mist_v100());
  Matrix r0{{1.0, 2.0}};                            // 1x2 =  8 B at FP32
  Matrix r1{{3.0, 4.0}, {5.0, 6.0}};                // 2x2 = 16 B
  Matrix r2{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}}; // 3x2 = 24 B
  const Matrix g = comm.allgather_rows({&r0, &r1, &r2}, "comm/gather");
  ASSERT_EQ(g.rows(), 6);
  ASSERT_EQ(g.cols(), 2);
  EXPECT_EQ(g(0, 0), 1.0);
  EXPECT_EQ(g(1, 0), 3.0);
  EXPECT_EQ(g(3, 0), 7.0);
  EXPECT_EQ(g(5, 1), 12.0);
  // Hand-computed: (3-1) * (8+16+24) = 96 bytes, one message.
  const auto& reg = comm.profiler().registry();
  EXPECT_EQ(reg.counter_value("comm/gather.bytes"), 96);
  EXPECT_EQ(reg.counter_value("comm/gather.msgs"), 1);
  // The latency term follows the slowest (largest) rank's block.
  EXPECT_NEAR(comm.comm_seconds(), allgather_seconds(mist_v100(), 3, 24),
              1e-15);
}

TEST(CommSim, ScalarAllgatherLedgerMatchesUniformVector) {
  // The scalar overload (uniform bytes_per_rank) must charge exactly what
  // the per-rank vector overload charges for equal entries:
  // (world-1) * world * b.
  CommSim uniform(4, mist_v100());
  uniform.charge_allgather(100, "comm/gather");
  CommSim vec(4, mist_v100());
  vec.charge_allgather(std::vector<index_t>{100, 100, 100, 100},
                       "comm/gather");
  EXPECT_EQ(uniform.profiler().registry().counter_value("comm/gather.bytes"),
            4 * 3 * 100 / 4 * 4);  // (world-1)*world*b = 1200
  EXPECT_EQ(uniform.profiler().registry().counter_value("comm/gather.bytes"),
            vec.profiler().registry().counter_value("comm/gather.bytes"));
  EXPECT_EQ(uniform.comm_seconds(), vec.comm_seconds());
}

TEST(CommSim, CommSecondsCountsOnlyCommSections) {
  CommSim comm(4, mist_v100());
  comm.profiler().add("comp/inversion", 100.0);
  comm.charge_broadcast(1 << 20, "comm/broadcast");
  EXPECT_LT(comm.comm_seconds(), 1.0);
  EXPECT_GT(comm.comm_seconds(), 0.0);
}

TEST(CommSim, WorldValidation) {
  CommSim comm(2, loopback());
  Matrix a(1, 1);
  EXPECT_THROW(comm.allreduce_mean({&a}, "comm/x"), Error);
}

TEST(CommSim, AllreduceRejectsAliasedAndNullBuffers) {
  // Rank 0's buffer doubles as the accumulator, so a duplicated pointer
  // would silently sum a buffer into itself; a null would crash later.
  CommSim comm(3, loopback());
  Matrix a{{1.0}}, b{{2.0}};
  EXPECT_THROW(comm.allreduce_mean({&a, &b, &a}, "comm/x"), Error);
  EXPECT_THROW(comm.allreduce_mean({&a, &b, nullptr}, "comm/x"), Error);
  // The aliased call must not have corrupted the data.
  EXPECT_EQ(a(0, 0), 1.0);
  EXPECT_EQ(b(0, 0), 2.0);
}

TEST(CommSim, WireBytesRoundsToNearest) {
  CommSim comm(2, loopback());
  // FP32 default: exact.
  EXPECT_EQ(comm.wire_bytes(10), 40);
  // The 21-bit custom float of Ueno et al.: 2.625 B/scalar. Truncation
  // undercounted (3 scalars = 7.875 B -> 7); round-to-nearest gives 8.
  comm.set_wire_scalar_bytes(2.625);
  EXPECT_EQ(comm.wire_bytes(3), 8);
  EXPECT_EQ(comm.wire_bytes(2), 5);   // 5.25 -> 5
  EXPECT_EQ(comm.wire_bytes(1000), 2625);
}

TEST(LayerAssignment, OwnedCountsPartitionLayers) {
  // Ragged cases: Σ_r owned_count(r) must equal the layer count exactly.
  for (index_t layers : {0, 1, 3, 7, 10, 13, 64})
    for (index_t world : {1, 2, 3, 4, 5, 8, 16}) {
      LayerAssignment asg(layers, world);
      index_t total = 0;
      for (index_t r = 0; r < world; ++r) total += asg.owned_count(r);
      EXPECT_EQ(total, layers) << "layers=" << layers << " world=" << world;
    }
}

TEST(LayerAssignment, RoundRobin) {
  LayerAssignment asg(10, 4);
  EXPECT_EQ(asg.owner(0), 0);
  EXPECT_EQ(asg.owner(5), 1);
  EXPECT_EQ(asg.owner(7), 3);
  EXPECT_EQ(asg.owned_count(0), 3);  // layers 0,4,8
  EXPECT_EQ(asg.owned_count(1), 3);  // layers 1,5,9
  EXPECT_EQ(asg.owned_count(2), 2);
  EXPECT_EQ(asg.owned_count(3), 2);
  EXPECT_THROW(asg.owner(10), Error);
}

}  // namespace
}  // namespace hylo
