// Cost model and simulated collectives.
#include <gtest/gtest.h>

#include "hylo/dist/comm.hpp"
#include "test_util.hpp"

namespace hylo {
namespace {

TEST(CostModel, ZeroAtWorldOne) {
  const auto m = mist_v100();
  EXPECT_EQ(allreduce_seconds(m, 1, 1 << 20), 0.0);
  EXPECT_EQ(allgather_seconds(m, 1, 1 << 20), 0.0);
  EXPECT_EQ(broadcast_seconds(m, 1, 1 << 20), 0.0);
}

TEST(CostModel, AllreduceRingScaling) {
  const auto m = mist_v100();
  // Ring allreduce: 2(P-1)/P * bytes / BW + 2(P-1) * alpha. For large byte
  // counts the bandwidth term dominates and is nearly P-independent.
  const index_t big = 512 << 20;
  const double t8 = allreduce_seconds(m, 8, big);
  const double t64 = allreduce_seconds(m, 64, big);
  EXPECT_GT(t64, t8);
  EXPECT_LT(t64 / t8, 1.25);  // within the 2(P-1)/P asymptote
}

TEST(CostModel, AllgatherGrowsLinearlyInWorld) {
  const auto m = mist_v100();
  const double t4 = allgather_seconds(m, 4, 1 << 20);
  const double t16 = allgather_seconds(m, 16, 1 << 20);
  EXPECT_NEAR(t16 / t4, 5.0, 0.01);  // (16-1)/(4-1)
}

TEST(CostModel, BroadcastLogarithmic) {
  const auto m = mist_v100();
  const double t8 = broadcast_seconds(m, 8, 1 << 20);
  const double t64 = broadcast_seconds(m, 64, 1 << 20);
  EXPECT_NEAR(t64 / t8, 2.0, 0.01);  // log2(64)/log2(8)
}

TEST(CostModel, LatencyDominatesSmallMessages) {
  const auto m = aws_p2_k80();
  const double tiny = allreduce_seconds(m, 8, 8);
  EXPECT_GT(tiny, 2.0 * 7.0 * m.latency_s * 0.99);
}

TEST(CostModel, PresetsAreOrdered) {
  // NVLink/IB preset must be faster than the K80 PCIe preset.
  EXPECT_GT(mist_v100().bandwidth_bps, aws_p2_k80().bandwidth_bps);
  EXPECT_LT(mist_v100().latency_s, aws_p2_k80().latency_s);
}

TEST(CommSim, AllreduceMeanAveragesAndSyncs) {
  CommSim comm(3, mist_v100());
  Matrix a{{3.0}}, b{{6.0}}, c{{0.0}};
  comm.allreduce_mean({&a, &b, &c}, "comm/grad_allreduce");
  EXPECT_EQ(a(0, 0), 3.0);
  EXPECT_EQ(b(0, 0), 3.0);
  EXPECT_EQ(c(0, 0), 3.0);
  EXPECT_GT(comm.comm_seconds(), 0.0);
}

TEST(CommSim, AllgatherStacksInRankOrder) {
  CommSim comm(2, mist_v100());
  Matrix r0{{1.0, 1.0}}, r1{{2.0, 2.0}};
  const Matrix g = comm.allgather_rows({&r0, &r1}, "comm/gather");
  EXPECT_EQ(g.rows(), 2);
  EXPECT_EQ(g(0, 0), 1.0);
  EXPECT_EQ(g(1, 0), 2.0);
}

TEST(CommSim, CommSecondsCountsOnlyCommSections) {
  CommSim comm(4, mist_v100());
  comm.profiler().add("comp/inversion", 100.0);
  comm.charge_broadcast(1 << 20, "comm/broadcast");
  EXPECT_LT(comm.comm_seconds(), 1.0);
  EXPECT_GT(comm.comm_seconds(), 0.0);
}

TEST(CommSim, WorldValidation) {
  CommSim comm(2, loopback());
  Matrix a(1, 1);
  EXPECT_THROW(comm.allreduce_mean({&a}, "comm/x"), Error);
}

TEST(LayerAssignment, RoundRobin) {
  LayerAssignment asg(10, 4);
  EXPECT_EQ(asg.owner(0), 0);
  EXPECT_EQ(asg.owner(5), 1);
  EXPECT_EQ(asg.owner(7), 3);
  EXPECT_EQ(asg.owned_count(0), 3);  // layers 0,4,8
  EXPECT_EQ(asg.owned_count(1), 3);  // layers 1,5,9
  EXPECT_EQ(asg.owned_count(2), 2);
  EXPECT_EQ(asg.owned_count(3), 2);
  EXPECT_THROW(asg.owner(10), Error);
}

}  // namespace
}  // namespace hylo
