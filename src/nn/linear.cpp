#include <cmath>

#include "hylo/nn/layers.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

Linear::Linear(index_t out_features, Rng& rng, std::string name)
    : out_features_(out_features), rng_(&rng) {
  HYLO_CHECK(out_features > 0, "Linear out_features must be positive");
  params_.name = std::move(name);
  params_.kind = ParamKind::kLinear;
  params_.d_out = out_features;
}

Shape Linear::infer_shape(const std::vector<Shape>& in) {
  HYLO_CHECK(in.size() == 1, "Linear takes one input");
  const index_t d_in = in[0].numel();
  HYLO_CHECK(d_in > 0, "Linear input has zero elements");
  params_.d_in = d_in;
  params_.w.resize(out_features_, d_in + 1);
  params_.gw.resize(out_features_, d_in + 1);
  // He-normal init on the weight part; bias column stays zero.
  const real_t std = std::sqrt(2.0 / static_cast<real_t>(d_in));
  for (index_t o = 0; o < out_features_; ++o)
    for (index_t j = 0; j < d_in; ++j) params_.w(o, j) = std * rng_->normal();
  return Shape{out_features_, 1, 1};
}

void Linear::forward(const std::vector<const Tensor4*>& in, Tensor4& out,
                     const PassContext& ctx) {
  const Tensor4& x = *in[0];
  const index_t n = x.n();
  x_aug_ = x.as_matrix().with_ones_column();  // n x (d_in + 1)
  Matrix y;
  gemm_nt(x_aug_, params_.w, y);  // n x d_out
  out = Tensor4::from_matrix(y, out_features_, 1, 1);
  if (ctx.capture) params_.a_samples = x_aug_;
  (void)n;
}

void Linear::backward(const std::vector<const Tensor4*>& in,
                      const Tensor4& /*out*/, const Tensor4& gout,
                      const std::vector<Tensor4*>& grad_in,
                      const PassContext& ctx) {
  const index_t n = gout.n();
  const Matrix gy = gout.as_matrix();  // n x d_out
  // Parameter gradient (accumulated): dW_aug += gyᵀ x_aug.
  gemm_tn(gy, x_aug_, params_.gw, 1.0, 1.0);
  // Input gradient: dX = gy · W (drop the bias column).
  Matrix dx_aug;
  gemm(gy, params_.w, dx_aug);  // n x (d_in + 1)
  Tensor4& gin = *grad_in[0];
  const index_t d_in = params_.d_in;
  for (index_t i = 0; i < n; ++i) {
    const real_t* src = dx_aug.row_ptr(i);
    real_t* dst = gin.sample_ptr(i);
    for (index_t j = 0; j < d_in; ++j) dst[j] += src[j];
  }
  if (ctx.capture) {
    // Per-sample gradients of the *sum* loss: the incoming gout carries the
    // mean-loss gradient, so scale by the batch size.
    params_.g_samples = gy * static_cast<real_t>(n);
  }
  (void)in;
}

}  // namespace hylo
