#include "hylo/nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace hylo {

namespace {
real_t sigmoid(real_t x) {
  // Branch keeps exp() off large magnitudes (no overflow either way).
  return x >= 0.0 ? 1.0 / (1.0 + std::exp(-x))
                  : std::exp(x) / (1.0 + std::exp(x));
}
constexpr real_t kLogFloor = 1e-12;
}  // namespace

LossResult SoftmaxCrossEntropy::compute(const Tensor4& logits,
                                        const std::vector<int>& labels) const {
  const index_t n = logits.n(), c = logits.c();
  HYLO_CHECK(logits.h() == 1 && logits.w() == 1,
             "classification logits must be (N, C, 1, 1)");
  HYLO_CHECK(static_cast<index_t>(labels.size()) == n, "labels size");
  LossResult res;
  res.grad.resize(n, c, 1, 1);
  real_t loss = 0.0;
  index_t correct = 0;
  const real_t inv_n = 1.0 / static_cast<real_t>(n);
  for (index_t i = 0; i < n; ++i) {
    const real_t* row = logits.sample_ptr(i);
    real_t* grow = res.grad.sample_ptr(i);
    const int label = labels[static_cast<std::size_t>(i)];
    HYLO_CHECK(label >= 0 && label < c, "label " << label << " out of range");
    // Stable softmax.
    real_t mx = row[0];
    index_t argmax = 0;
    for (index_t k = 1; k < c; ++k)
      if (row[k] > mx) {
        mx = row[k];
        argmax = k;
      }
    real_t z = 0.0;
    for (index_t k = 0; k < c; ++k) z += std::exp(row[k] - mx);
    const real_t log_z = std::log(z) + mx;
    loss -= (row[label] - log_z);
    correct += (argmax == label);
    for (index_t k = 0; k < c; ++k) {
      const real_t p = std::exp(row[k] - log_z);
      grow[k] = (p - (k == label ? 1.0 : 0.0)) * inv_n;
    }
  }
  res.loss = loss * inv_n;
  res.metric = static_cast<real_t>(correct) * inv_n;
  return res;
}

std::pair<real_t, real_t> SoftmaxCrossEntropy::evaluate(
    const Tensor4& logits, const std::vector<int>& labels) const {
  const index_t n = logits.n(), c = logits.c();
  HYLO_CHECK(static_cast<index_t>(labels.size()) == n, "labels size");
  real_t loss = 0.0;
  index_t correct = 0;
  for (index_t i = 0; i < n; ++i) {
    const real_t* row = logits.sample_ptr(i);
    const int label = labels[static_cast<std::size_t>(i)];
    real_t mx = row[0];
    index_t argmax = 0;
    for (index_t k = 1; k < c; ++k)
      if (row[k] > mx) {
        mx = row[k];
        argmax = k;
      }
    real_t z = 0.0;
    for (index_t k = 0; k < c; ++k) z += std::exp(row[k] - mx);
    loss -= (row[label] - (std::log(z) + mx));
    correct += (argmax == label);
  }
  const real_t inv_n = 1.0 / static_cast<real_t>(n);
  return {loss * inv_n, static_cast<real_t>(correct) * inv_n};
}

LossResult DiceBceLoss::compute(const Tensor4& logits,
                                const Tensor4& target) const {
  HYLO_CHECK(logits.c() == 1, "binary segmentation logits must have 1 channel");
  HYLO_CHECK(logits.same_shape(target), "target shape mismatch");
  const index_t n = logits.n(), px = logits.sample_size();
  LossResult res;
  res.grad.resize(n, 1, logits.h(), logits.w());
  const real_t inv_n = 1.0 / static_cast<real_t>(n);
  const real_t inv_px = 1.0 / static_cast<real_t>(px);

  real_t bce_total = 0.0, dice_total = 0.0, hard_dice_total = 0.0;
  std::vector<real_t> s(static_cast<std::size_t>(px));
  for (index_t i = 0; i < n; ++i) {
    const real_t* lg = logits.sample_ptr(i);
    const real_t* t = target.sample_ptr(i);
    real_t* g = res.grad.sample_ptr(i);

    real_t sum_s = 0.0, sum_t = 0.0, sum_st = 0.0;
    real_t hard_inter = 0.0, hard_union = 0.0;
    real_t bce = 0.0;
    for (index_t j = 0; j < px; ++j) {
      const real_t sj = sigmoid(lg[j]);
      s[static_cast<std::size_t>(j)] = sj;
      sum_s += sj;
      sum_t += t[j];
      sum_st += sj * t[j];
      bce -= t[j] * std::log(std::max(sj, kLogFloor)) +
             (1.0 - t[j]) * std::log(std::max(1.0 - sj, kLogFloor));
      const real_t hard = sj > 0.5 ? 1.0 : 0.0;
      hard_inter += hard * t[j];
      hard_union += hard + t[j];
    }
    bce *= inv_px;
    bce_total += bce;
    const real_t denom = sum_s + sum_t + smooth_;
    const real_t dice = (2.0 * sum_st + smooth_) / denom;
    dice_total += dice;
    hard_dice_total += (hard_union > 0.0)
                           ? 2.0 * hard_inter / hard_union
                           : 1.0;  // empty mask & empty prediction agree

    // Gradient wrt logits: BCE term (s - t)/px + Dice term via chain rule
    // through s' = s(1-s); total scaled by per-loss weights and 1/n.
    for (index_t j = 0; j < px; ++j) {
      const real_t sj = s[static_cast<std::size_t>(j)];
      const real_t dbce_ds_dlogit = (sj - t[j]) * inv_px;  // already chained
      const real_t ddice_ds =
          (2.0 * t[j] * denom - (2.0 * sum_st + smooth_)) / (denom * denom);
      const real_t ddiceloss_dlogit = -ddice_ds * sj * (1.0 - sj);
      g[j] = (bce_weight_ * dbce_ds_dlogit + dice_weight_ * ddiceloss_dlogit) *
             inv_n;
    }
  }
  res.loss = (bce_weight_ * bce_total + dice_weight_ * (static_cast<real_t>(n) - dice_total)) * inv_n;
  res.metric = hard_dice_total * inv_n;
  return res;
}

std::pair<real_t, real_t> DiceBceLoss::evaluate(const Tensor4& logits,
                                                const Tensor4& target) const {
  HYLO_CHECK(logits.same_shape(target), "target shape mismatch");
  const index_t n = logits.n(), px = logits.sample_size();
  const real_t inv_n = 1.0 / static_cast<real_t>(n);
  const real_t inv_px = 1.0 / static_cast<real_t>(px);
  real_t bce_total = 0.0, dice_total = 0.0, hard_dice_total = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const real_t* lg = logits.sample_ptr(i);
    const real_t* t = target.sample_ptr(i);
    real_t sum_s = 0.0, sum_t = 0.0, sum_st = 0.0, bce = 0.0;
    real_t hard_inter = 0.0, hard_union = 0.0;
    for (index_t j = 0; j < px; ++j) {
      const real_t sj = sigmoid(lg[j]);
      sum_s += sj;
      sum_t += t[j];
      sum_st += sj * t[j];
      bce -= t[j] * std::log(std::max(sj, kLogFloor)) +
             (1.0 - t[j]) * std::log(std::max(1.0 - sj, kLogFloor));
      const real_t hard = sj > 0.5 ? 1.0 : 0.0;
      hard_inter += hard * t[j];
      hard_union += hard + t[j];
    }
    bce_total += bce * inv_px;
    dice_total += (2.0 * sum_st + smooth_) / (sum_s + sum_t + smooth_);
    hard_dice_total +=
        (hard_union > 0.0) ? 2.0 * hard_inter / hard_union : 1.0;
  }
  const real_t loss =
      (bce_weight_ * bce_total +
       dice_weight_ * (static_cast<real_t>(n) - dice_total)) *
      inv_n;
  return {loss, hard_dice_total * inv_n};
}

}  // namespace hylo
