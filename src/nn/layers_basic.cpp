// Parameter-free layers: activations, pooling, upsampling, concat, add.
#include <algorithm>
#include <limits>

#include "hylo/nn/layers.hpp"

namespace hylo {

// ---------------------------------------------------------------- ReLU ----

Shape ReLU::infer_shape(const std::vector<Shape>& in) {
  HYLO_CHECK(in.size() == 1, "ReLU takes one input");
  return in[0];
}

void ReLU::forward(const std::vector<const Tensor4*>& in, Tensor4& out,
                   const PassContext&) {
  const Tensor4& x = *in[0];
  out.resize(x.n(), x.c(), x.h(), x.w());
  for (index_t i = 0; i < x.size(); ++i) out[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void ReLU::backward(const std::vector<const Tensor4*>& in, const Tensor4&,
                    const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                    const PassContext&) {
  const Tensor4& x = *in[0];
  Tensor4& gin = *grad_in[0];
  for (index_t i = 0; i < x.size(); ++i)
    if (x[i] > 0.0) gin[i] += gout[i];
}

// ----------------------------------------------------------- MaxPool2d ----

MaxPool2d::MaxPool2d(index_t kernel, index_t stride)
    : kernel_(kernel), stride_(stride) {
  HYLO_CHECK(kernel > 0 && stride > 0, "bad MaxPool2d geometry");
}

Shape MaxPool2d::infer_shape(const std::vector<Shape>& in) {
  HYLO_CHECK(in.size() == 1, "MaxPool2d takes one input");
  HYLO_CHECK(in[0].h >= kernel_ && in[0].w >= kernel_,
             "MaxPool2d window larger than input");
  const index_t oh = (in[0].h - kernel_) / stride_ + 1;
  const index_t ow = (in[0].w - kernel_) / stride_ + 1;
  HYLO_CHECK(oh > 0 && ow > 0, "MaxPool2d output collapses");
  return Shape{in[0].c, oh, ow};
}

void MaxPool2d::forward(const std::vector<const Tensor4*>& in, Tensor4& out,
                        const PassContext&) {
  const Tensor4& x = *in[0];
  const index_t oh = (x.h() - kernel_) / stride_ + 1;
  const index_t ow = (x.w() - kernel_) / stride_ + 1;
  out.resize(x.n(), x.c(), oh, ow);
  argmax_.assign(static_cast<std::size_t>(out.size()), 0);
  index_t oidx = 0;
  for (index_t i = 0; i < x.n(); ++i)
    for (index_t c = 0; c < x.c(); ++c)
      for (index_t oy = 0; oy < oh; ++oy)
        for (index_t ox = 0; ox < ow; ++ox) {
          real_t best = -std::numeric_limits<real_t>::infinity();
          index_t best_idx = 0;
          for (index_t ky = 0; ky < kernel_; ++ky)
            for (index_t kx = 0; kx < kernel_; ++kx) {
              const index_t iy = oy * stride_ + ky;
              const index_t ix = ox * stride_ + kx;
              const index_t flat = ((i * x.c() + c) * x.h() + iy) * x.w() + ix;
              if (x[flat] > best) {
                best = x[flat];
                best_idx = flat;
              }
            }
          out[oidx] = best;
          argmax_[static_cast<std::size_t>(oidx)] = best_idx;
          ++oidx;
        }
}

void MaxPool2d::backward(const std::vector<const Tensor4*>&, const Tensor4&,
                         const Tensor4& gout,
                         const std::vector<Tensor4*>& grad_in,
                         const PassContext&) {
  Tensor4& gin = *grad_in[0];
  for (index_t o = 0; o < gout.size(); ++o)
    gin[argmax_[static_cast<std::size_t>(o)]] += gout[o];
}

// ----------------------------------------------------------- AvgPool2d ----

AvgPool2d::AvgPool2d(index_t kernel) : kernel_(kernel) {
  HYLO_CHECK(kernel > 0, "bad AvgPool2d kernel");
}

Shape AvgPool2d::infer_shape(const std::vector<Shape>& in) {
  HYLO_CHECK(in.size() == 1, "AvgPool2d takes one input");
  HYLO_CHECK(in[0].h % kernel_ == 0 && in[0].w % kernel_ == 0,
             "AvgPool2d needs divisible spatial dims");
  return Shape{in[0].c, in[0].h / kernel_, in[0].w / kernel_};
}

void AvgPool2d::forward(const std::vector<const Tensor4*>& in, Tensor4& out,
                        const PassContext&) {
  const Tensor4& x = *in[0];
  const index_t oh = x.h() / kernel_, ow = x.w() / kernel_;
  out.resize(x.n(), x.c(), oh, ow);
  const real_t inv = 1.0 / static_cast<real_t>(kernel_ * kernel_);
  for (index_t i = 0; i < x.n(); ++i)
    for (index_t c = 0; c < x.c(); ++c)
      for (index_t oy = 0; oy < oh; ++oy)
        for (index_t ox = 0; ox < ow; ++ox) {
          real_t acc = 0.0;
          for (index_t ky = 0; ky < kernel_; ++ky)
            for (index_t kx = 0; kx < kernel_; ++kx)
              acc += x.at(i, c, oy * kernel_ + ky, ox * kernel_ + kx);
          out.at(i, c, oy, ox) = acc * inv;
        }
}

void AvgPool2d::backward(const std::vector<const Tensor4*>& in, const Tensor4&,
                         const Tensor4& gout,
                         const std::vector<Tensor4*>& grad_in,
                         const PassContext&) {
  const Tensor4& x = *in[0];
  Tensor4& gin = *grad_in[0];
  const index_t oh = x.h() / kernel_, ow = x.w() / kernel_;
  const real_t inv = 1.0 / static_cast<real_t>(kernel_ * kernel_);
  for (index_t i = 0; i < x.n(); ++i)
    for (index_t c = 0; c < x.c(); ++c)
      for (index_t oy = 0; oy < oh; ++oy)
        for (index_t ox = 0; ox < ow; ++ox) {
          const real_t g = gout.at(i, c, oy, ox) * inv;
          for (index_t ky = 0; ky < kernel_; ++ky)
            for (index_t kx = 0; kx < kernel_; ++kx)
              gin.at(i, c, oy * kernel_ + ky, ox * kernel_ + kx) += g;
        }
}

// ------------------------------------------------------- GlobalAvgPool ----

Shape GlobalAvgPool::infer_shape(const std::vector<Shape>& in) {
  HYLO_CHECK(in.size() == 1, "GlobalAvgPool takes one input");
  return Shape{in[0].c, 1, 1};
}

void GlobalAvgPool::forward(const std::vector<const Tensor4*>& in, Tensor4& out,
                            const PassContext&) {
  const Tensor4& x = *in[0];
  const index_t hw = x.h() * x.w();
  out.resize(x.n(), x.c(), 1, 1);
  const real_t inv = 1.0 / static_cast<real_t>(hw);
  for (index_t i = 0; i < x.n(); ++i)
    for (index_t c = 0; c < x.c(); ++c) {
      const real_t* p = x.sample_ptr(i) + c * hw;
      real_t acc = 0.0;
      for (index_t j = 0; j < hw; ++j) acc += p[j];
      out.at(i, c, 0, 0) = acc * inv;
    }
}

void GlobalAvgPool::backward(const std::vector<const Tensor4*>& in,
                             const Tensor4&, const Tensor4& gout,
                             const std::vector<Tensor4*>& grad_in,
                             const PassContext&) {
  const Tensor4& x = *in[0];
  Tensor4& gin = *grad_in[0];
  const index_t hw = x.h() * x.w();
  const real_t inv = 1.0 / static_cast<real_t>(hw);
  for (index_t i = 0; i < x.n(); ++i)
    for (index_t c = 0; c < x.c(); ++c) {
      const real_t g = gout.at(i, c, 0, 0) * inv;
      real_t* p = gin.sample_ptr(i) + c * hw;
      for (index_t j = 0; j < hw; ++j) p[j] += g;
    }
}

// ---------------------------------------------------------- Upsample2x ----

Shape Upsample2x::infer_shape(const std::vector<Shape>& in) {
  HYLO_CHECK(in.size() == 1, "Upsample2x takes one input");
  return Shape{in[0].c, in[0].h * 2, in[0].w * 2};
}

void Upsample2x::forward(const std::vector<const Tensor4*>& in, Tensor4& out,
                         const PassContext&) {
  const Tensor4& x = *in[0];
  out.resize(x.n(), x.c(), x.h() * 2, x.w() * 2);
  for (index_t i = 0; i < x.n(); ++i)
    for (index_t c = 0; c < x.c(); ++c)
      for (index_t y = 0; y < x.h(); ++y)
        for (index_t xx = 0; xx < x.w(); ++xx) {
          const real_t v = x.at(i, c, y, xx);
          out.at(i, c, 2 * y, 2 * xx) = v;
          out.at(i, c, 2 * y, 2 * xx + 1) = v;
          out.at(i, c, 2 * y + 1, 2 * xx) = v;
          out.at(i, c, 2 * y + 1, 2 * xx + 1) = v;
        }
}

void Upsample2x::backward(const std::vector<const Tensor4*>& in, const Tensor4&,
                          const Tensor4& gout,
                          const std::vector<Tensor4*>& grad_in,
                          const PassContext&) {
  const Tensor4& x = *in[0];
  Tensor4& gin = *grad_in[0];
  for (index_t i = 0; i < x.n(); ++i)
    for (index_t c = 0; c < x.c(); ++c)
      for (index_t y = 0; y < x.h(); ++y)
        for (index_t xx = 0; xx < x.w(); ++xx)
          gin.at(i, c, y, xx) += gout.at(i, c, 2 * y, 2 * xx) +
                                 gout.at(i, c, 2 * y, 2 * xx + 1) +
                                 gout.at(i, c, 2 * y + 1, 2 * xx) +
                                 gout.at(i, c, 2 * y + 1, 2 * xx + 1);
}

// -------------------------------------------------------------- Concat ----

Shape Concat::infer_shape(const std::vector<Shape>& in) {
  HYLO_CHECK(in.size() >= 2, "Concat needs at least two inputs");
  split_.clear();
  index_t c = 0;
  for (const auto& s : in) {
    HYLO_CHECK(s.h == in[0].h && s.w == in[0].w,
               "Concat spatial dims mismatch");
    split_.push_back(s.c);
    c += s.c;
  }
  return Shape{c, in[0].h, in[0].w};
}

void Concat::forward(const std::vector<const Tensor4*>& in, Tensor4& out,
                     const PassContext&) {
  const index_t n = in[0]->n(), h = in[0]->h(), w = in[0]->w();
  index_t total_c = 0;
  for (const auto c : split_) total_c += c;
  out.resize(n, total_c, h, w);
  const index_t hw = h * w;
  for (index_t i = 0; i < n; ++i) {
    real_t* dst = out.sample_ptr(i);
    index_t off = 0;
    for (std::size_t k = 0; k < in.size(); ++k) {
      const index_t ck = split_[k];
      const real_t* src = in[k]->sample_ptr(i);
      std::copy(src, src + ck * hw, dst + off * hw);
      off += ck;
    }
  }
}

void Concat::backward(const std::vector<const Tensor4*>& in, const Tensor4&,
                      const Tensor4& gout,
                      const std::vector<Tensor4*>& grad_in,
                      const PassContext&) {
  const index_t n = gout.n(), hw = gout.h() * gout.w();
  for (index_t i = 0; i < n; ++i) {
    const real_t* src = gout.sample_ptr(i);
    index_t off = 0;
    for (std::size_t k = 0; k < in.size(); ++k) {
      const index_t ck = split_[k];
      real_t* dst = grad_in[k]->sample_ptr(i);
      for (index_t j = 0; j < ck * hw; ++j) dst[j] += src[off * hw + j];
      off += ck;
    }
  }
}

// ----------------------------------------------------------------- Add ----

Shape Add::infer_shape(const std::vector<Shape>& in) {
  HYLO_CHECK(in.size() == 2, "Add takes two inputs");
  HYLO_CHECK(in[0] == in[1], "Add shape mismatch");
  return in[0];
}

void Add::forward(const std::vector<const Tensor4*>& in, Tensor4& out,
                  const PassContext&) {
  const Tensor4& a = *in[0];
  const Tensor4& b = *in[1];
  out.resize(a.n(), a.c(), a.h(), a.w());
  for (index_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
}

void Add::backward(const std::vector<const Tensor4*>&, const Tensor4&,
                   const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                   const PassContext&) {
  for (auto* g : grad_in)
    for (index_t i = 0; i < gout.size(); ++i) (*g)[i] += gout[i];
}

}  // namespace hylo
