#include <cmath>

#include "hylo/nn/layers.hpp"
#include "hylo/par/thread_pool.hpp"
#include "hylo/tensor/gemm_packed.hpp"
#include "hylo/tensor/kernel_dispatch.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

Conv2d::Conv2d(index_t out_channels, index_t kernel, index_t stride,
               index_t pad, Rng& rng, std::string name)
    : out_channels_(out_channels), kernel_(kernel), stride_(stride), pad_(pad),
      rng_(&rng) {
  HYLO_CHECK(out_channels > 0 && kernel > 0 && stride > 0 && pad >= 0,
             "bad Conv2d geometry");
  params_.name = std::move(name);
  params_.kind = ParamKind::kConv;
  params_.d_out = out_channels;
}

Shape Conv2d::infer_shape(const std::vector<Shape>& in) {
  HYLO_CHECK(in.size() == 1, "Conv2d takes one input");
  geom_ = ConvGeometry{.in_c = in[0].c, .in_h = in[0].h, .in_w = in[0].w,
                       .kernel_h = kernel_, .kernel_w = kernel_,
                       .stride = stride_, .pad = pad_};
  HYLO_CHECK(geom_.out_h() > 0 && geom_.out_w() > 0,
             "Conv2d output collapses: in " << in[0].h << "x" << in[0].w
                                            << " k=" << kernel_);
  const index_t patch = geom_.patch_size();
  params_.d_in = patch;
  params_.w.resize(out_channels_, patch + 1);
  params_.gw.resize(out_channels_, patch + 1);
  const real_t std = std::sqrt(2.0 / static_cast<real_t>(patch));
  for (index_t o = 0; o < out_channels_; ++o)
    for (index_t j = 0; j < patch; ++j) params_.w(o, j) = std * rng_->normal();
  return Shape{out_channels_, geom_.out_h(), geom_.out_w()};
}

void Conv2d::forward(const std::vector<const Tensor4*>& in, Tensor4& out,
                     const PassContext& ctx) {
  const Tensor4& x = *in[0];
  const index_t n = x.n(), oh = geom_.out_h(), ow = geom_.out_w();
  const index_t s = oh * ow, patch = geom_.patch_size();
  out.resize(n, out_channels_, oh, ow);
  if (ctx.capture) {
    params_.a_samples.resize(n, patch + 1);
  }

  if (kern::active() != kern::Tier::kScalar) {
    // Fused-im2col path (DESIGN.md §13): the conv GEMM consumes patches
    // straight from the NCHW sample, so no per-sample patch matrix is ever
    // materialized — backward re-fuses from in[0] instead of a cols_ cache.
    cols_.clear();
    cols_.shrink_to_fit();
    const kern::PackedW pw = kern::pack_conv_forward_w(params_.w);
    par::parallel_for(
        0, n, 1,
        [&](index_t n0, index_t n1) {
          for (index_t i = n0; i < n1; ++i) {
            real_t* capture =
                ctx.capture ? params_.a_samples.row_ptr(i) : nullptr;
            kern::packed_conv_forward(pw, x.sample_ptr(i), geom_,
                                      out.sample_ptr(i), capture);
            if (capture != nullptr) capture[patch] = static_cast<real_t>(s);
          }
        },
        "nn/conv2d_fwd",
        audit::Footprint([&](index_t n0, index_t n1, audit::WriteSet& ws) {
          ws.add_samples(out, n0, n1);
          if (ctx.capture) ws.add_rows(params_.a_samples, n0, n1);
        }));
    return;
  }

  cols_.resize(static_cast<std::size_t>(n));
  // Batch-parallel: every sample writes disjoint state (its cols_ slot, its
  // output plane, its a_samples row), so any partition is bitwise identical
  // to the serial loop. The s x c_out scratch is per chunk.
  par::parallel_for(
      0, n, 1,
      [&](index_t n0, index_t n1) {
        Matrix y;  // s x c_out scratch
        for (index_t i = n0; i < n1; ++i) {
          Matrix& cols = cols_[static_cast<std::size_t>(i)];
          im2col(x.sample_ptr(i), geom_, cols);
          // y = cols · W_mainᵀ + bias. W columns [0, patch) are the kernel,
          // column `patch` is the bias.
          y.resize(s, out_channels_);
          for (index_t p = 0; p < s; ++p) {
            const real_t* cp = cols.row_ptr(p);
            real_t* yp = y.row_ptr(p);
            for (index_t o = 0; o < out_channels_; ++o) {
              const real_t* wo = params_.w.row_ptr(o);
              real_t acc = wo[patch];  // bias
              for (index_t j = 0; j < patch; ++j) acc += wo[j] * cp[j];
              yp[o] = acc;
            }
          }
          // Scatter s x c_out into the NCHW output plane.
          real_t* dst = out.sample_ptr(i);
          for (index_t o = 0; o < out_channels_; ++o)
            for (index_t p = 0; p < s; ++p) dst[o * s + p] = y(p, o);
          if (ctx.capture) {
            // Sec. IV spatial-sum: x̂_i = Σ_p cols(p,:); augmentation column
            // = S so the bias block of ĝ_i â_iᵀ matches Σ_p g_p [x_p; 1]ᵀ
            // exactly in the bias coordinate.
            real_t* arow = params_.a_samples.row_ptr(i);
            for (index_t j = 0; j < patch; ++j) {
              real_t acc = 0.0;
              for (index_t p = 0; p < s; ++p) acc += cols(p, j);
              arow[j] = acc;
            }
            arow[patch] = static_cast<real_t>(s);
          }
        }
      },
      "nn/conv2d_fwd",
      audit::Footprint([&](index_t n0, index_t n1, audit::WriteSet& ws) {
        ws.add_samples(out, n0, n1);
        ws.add_range(cols_.data(), n0, n1);
        if (ctx.capture) ws.add_rows(params_.a_samples, n0, n1);
      }));
}

void Conv2d::backward(const std::vector<const Tensor4*>& in,
                      const Tensor4& /*out*/, const Tensor4& gout,
                      const std::vector<Tensor4*>& grad_in,
                      const PassContext& ctx) {
  const index_t n = gout.n(), oh = geom_.out_h(), ow = geom_.out_w();
  const index_t s = oh * ow, patch = geom_.patch_size();
  Tensor4& gin = *grad_in[0];
  if (ctx.capture) params_.g_samples.resize(n, out_channels_);

  if (kern::active() != kern::Tier::kScalar) {
    const Tensor4& x = *in[0];
    // Fused weight gradient: gw rows [o0, o1) accumulate
    // gout[i][o0:o1, :] · [cols(x_i) | 1] per sample through the packed
    // microkernel, patches regenerated on the fly. Grain 8 keeps chunk
    // boundaries aligned with the MR=8 row panels. Per gw element the
    // accumulation is sample-ascending then position-ascending regardless
    // of the channel partition — bitwise identical at any thread count
    // within the tier.
    par::parallel_for(
        0, out_channels_, 8,
        [&](index_t o0, index_t o1) {
          for (index_t i = 0; i < n; ++i)
            kern::packed_conv_wgrad(gout.sample_ptr(i), x.sample_ptr(i),
                                    geom_, params_.gw, o0, o1);
          if (ctx.capture) {
            for (index_t o = o0; o < o1; ++o)
              for (index_t i = 0; i < n; ++i) {
                const real_t* src = gout.sample_ptr(i) + o * s;
                real_t bias_acc = 0.0;
                for (index_t p = 0; p < s; ++p) bias_acc += src[p];
                params_.g_samples(i, o) = bias_acc * static_cast<real_t>(n);
              }
          }
        },
        "nn/conv2d_wgrad",
        audit::Footprint([&](index_t o0, index_t o1, audit::WriteSet& ws) {
          ws.add_rows(params_.gw, o0, o1);
          if (ctx.capture) ws.add_cols(params_.g_samples, o0, o1);
        }));

    // Fused input gradient: dcols = gout_planeᵀ · W_main against a weight
    // operand packed once per call, then col2im back into the sample plane.
    const kern::PackedW pwd = kern::pack_conv_dgrad_w(params_.w);
    par::parallel_for(
        0, n, 1,
        [&](index_t n0, index_t n1) {
          Matrix dcols;
          for (index_t i = n0; i < n1; ++i) {
            dcols.resize(s, patch);  // resize zero-fills
            kern::packed_conv_dcols(gout.sample_ptr(i), pwd, geom_, dcols);
            col2im_add(dcols, geom_, gin.sample_ptr(i));
          }
        },
        "nn/conv2d_dgrad", audit::sample_block(gin));
    return;
  }

  // Weight/bias gradient, channel-parallel: each gw row belongs to exactly
  // one output channel, so partitioning over channels gives disjoint writes
  // while each element still accumulates samples in i-ascending, position-
  // ascending order — the exact serial order, hence bitwise identical. The
  // per-channel output-grad plane gout[i][o] is contiguous, so no s x c_out
  // transpose is materialized.
  par::parallel_for(
      0, out_channels_, 1,
      [&](index_t o0, index_t o1) {
        for (index_t o = o0; o < o1; ++o) {
          real_t* go = params_.gw.row_ptr(o);
          for (index_t i = 0; i < n; ++i) {
            const real_t* src = gout.sample_ptr(i) + o * s;
            const Matrix& cols = cols_[static_cast<std::size_t>(i)];
            real_t bias_acc = 0.0;
            for (index_t p = 0; p < s; ++p) {
              const real_t g = src[p];
              if (g == 0.0) continue;
              bias_acc += g;
              const real_t* cp = cols.row_ptr(p);
              for (index_t j = 0; j < patch; ++j) go[j] += g * cp[j];
            }
            go[patch] += bias_acc;
            if (ctx.capture)
              params_.g_samples(i, o) = bias_acc * static_cast<real_t>(n);
          }
        }
      },
      "nn/conv2d_wgrad",
      audit::Footprint([&](index_t o0, index_t o1, audit::WriteSet& ws) {
        ws.add_rows(params_.gw, o0, o1);
        if (ctx.capture) ws.add_cols(params_.g_samples, o0, o1);
      }));

  // Input gradient, batch-parallel: dcols = gy · W_main per sample, scattered
  // back with col2im into that sample's disjoint gin plane.
  par::parallel_for(
      0, n, 1,
      [&](index_t n0, index_t n1) {
        Matrix dcols;
        for (index_t i = n0; i < n1; ++i) {
          const real_t* src = gout.sample_ptr(i);
          dcols.resize(s, patch);
          for (index_t p = 0; p < s; ++p) {
            real_t* dp = dcols.row_ptr(p);
            for (index_t o = 0; o < out_channels_; ++o) {
              const real_t g = src[o * s + p];
              if (g == 0.0) continue;
              const real_t* wo = params_.w.row_ptr(o);
              for (index_t j = 0; j < patch; ++j) dp[j] += g * wo[j];
            }
          }
          col2im_add(dcols, geom_, gin.sample_ptr(i));
        }
      },
      "nn/conv2d_dgrad", audit::sample_block(gin));
  (void)in;
}

}  // namespace hylo
