#include <cmath>

#include "hylo/nn/layers.hpp"

namespace hylo {

BatchNorm2d::BatchNorm2d(real_t momentum, real_t eps)
    : momentum_(momentum), eps_(eps) {}

Shape BatchNorm2d::infer_shape(const std::vector<Shape>& in) {
  HYLO_CHECK(in.size() == 1, "BatchNorm2d takes one input");
  channels_ = in[0].c;
  gamma_.assign(static_cast<std::size_t>(channels_), 1.0);
  beta_.assign(static_cast<std::size_t>(channels_), 0.0);
  grad_gamma_.assign(static_cast<std::size_t>(channels_), 0.0);
  grad_beta_.assign(static_cast<std::size_t>(channels_), 0.0);
  running_mean_.assign(static_cast<std::size_t>(channels_), 0.0);
  running_var_.assign(static_cast<std::size_t>(channels_), 1.0);
  return in[0];
}

void BatchNorm2d::forward(const std::vector<const Tensor4*>& in, Tensor4& out,
                          const PassContext& ctx) {
  const Tensor4& x = *in[0];
  const index_t n = x.n(), c = x.c(), hw = x.h() * x.w();
  out.resize(n, c, x.h(), x.w());
  x_hat_.resize(n, c, x.h(), x.w());
  saved_mean_.assign(static_cast<std::size_t>(c), 0.0);
  saved_inv_std_.assign(static_cast<std::size_t>(c), 0.0);
  const real_t count = static_cast<real_t>(n * hw);

  for (index_t ch = 0; ch < c; ++ch) {
    real_t mean, var;
    if (ctx.training) {
      real_t sum = 0.0, sumsq = 0.0;
      for (index_t i = 0; i < n; ++i) {
        const real_t* p = x.sample_ptr(i) + ch * hw;
        for (index_t j = 0; j < hw; ++j) {
          sum += p[j];
          sumsq += p[j] * p[j];
        }
      }
      mean = sum / count;
      var = sumsq / count - mean * mean;
      if (var < 0.0) var = 0.0;
      auto& rm = running_mean_[static_cast<std::size_t>(ch)];
      auto& rv = running_var_[static_cast<std::size_t>(ch)];
      rm = (1.0 - momentum_) * rm + momentum_ * mean;
      rv = (1.0 - momentum_) * rv + momentum_ * var;
    } else {
      mean = running_mean_[static_cast<std::size_t>(ch)];
      var = running_var_[static_cast<std::size_t>(ch)];
    }
    const real_t inv_std = 1.0 / std::sqrt(var + eps_);
    saved_mean_[static_cast<std::size_t>(ch)] = mean;
    saved_inv_std_[static_cast<std::size_t>(ch)] = inv_std;
    const real_t g = gamma_[static_cast<std::size_t>(ch)];
    const real_t b = beta_[static_cast<std::size_t>(ch)];
    for (index_t i = 0; i < n; ++i) {
      const real_t* px = x.sample_ptr(i) + ch * hw;
      real_t* ph = x_hat_.sample_ptr(i) + ch * hw;
      real_t* po = out.sample_ptr(i) + ch * hw;
      for (index_t j = 0; j < hw; ++j) {
        const real_t xh = (px[j] - mean) * inv_std;
        ph[j] = xh;
        po[j] = g * xh + b;
      }
    }
  }
}

void BatchNorm2d::backward(const std::vector<const Tensor4*>& in,
                           const Tensor4& /*out*/, const Tensor4& gout,
                           const std::vector<Tensor4*>& grad_in,
                           const PassContext& ctx) {
  const Tensor4& x = *in[0];
  Tensor4& gin = *grad_in[0];
  const index_t n = x.n(), c = x.c(), hw = x.h() * x.w();
  const real_t count = static_cast<real_t>(n * hw);

  for (index_t ch = 0; ch < c; ++ch) {
    const real_t g = gamma_[static_cast<std::size_t>(ch)];
    const real_t inv_std = saved_inv_std_[static_cast<std::size_t>(ch)];
    // Accumulate Σ dy, Σ dy·x̂ for this channel.
    real_t sum_dy = 0.0, sum_dy_xh = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const real_t* pg = gout.sample_ptr(i) + ch * hw;
      const real_t* ph = x_hat_.sample_ptr(i) + ch * hw;
      for (index_t j = 0; j < hw; ++j) {
        sum_dy += pg[j];
        sum_dy_xh += pg[j] * ph[j];
      }
    }
    grad_beta_[static_cast<std::size_t>(ch)] += sum_dy;
    grad_gamma_[static_cast<std::size_t>(ch)] += sum_dy_xh;

    if (ctx.training) {
      // dx = (γ·inv_std/M) (M·dy − Σdy − x̂ Σ(dy·x̂))
      const real_t k = g * inv_std / count;
      for (index_t i = 0; i < n; ++i) {
        const real_t* pg = gout.sample_ptr(i) + ch * hw;
        const real_t* ph = x_hat_.sample_ptr(i) + ch * hw;
        real_t* pi = gin.sample_ptr(i) + ch * hw;
        for (index_t j = 0; j < hw; ++j)
          pi[j] += k * (count * pg[j] - sum_dy - ph[j] * sum_dy_xh);
      }
    } else {
      // Eval statistics are constants: dx = γ · inv_std · dy.
      const real_t k = g * inv_std;
      for (index_t i = 0; i < n; ++i) {
        const real_t* pg = gout.sample_ptr(i) + ch * hw;
        real_t* pi = gin.sample_ptr(i) + ch * hw;
        for (index_t j = 0; j < hw; ++j) pi[j] += k * pg[j];
      }
    }
  }
}

}  // namespace hylo
