#include "hylo/nn/network.hpp"

#include <cstdint>
#include <fstream>

#include "hylo/ckpt/snapshot.hpp"

namespace hylo {

int Network::add_input(Shape shape) {
  HYLO_CHECK(nodes_.empty(), "add_input must be the first node");
  HYLO_CHECK(shape.numel() > 0, "input shape has zero elements");
  Node n;
  n.shape = shape;
  nodes_.push_back(std::move(n));
  return 0;
}

int Network::add(std::unique_ptr<Layer> layer, std::vector<int> inputs) {
  HYLO_CHECK(!nodes_.empty(), "add_input before adding layers");
  HYLO_CHECK(layer != nullptr, "null layer");
  HYLO_CHECK(!inputs.empty(), "layer needs at least one input");
  std::vector<Shape> in_shapes;
  in_shapes.reserve(inputs.size());
  for (const int id : inputs) {
    HYLO_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()),
               "input node " << id << " out of range");
    in_shapes.push_back(nodes_[static_cast<std::size_t>(id)].shape);
  }
  Node n;
  n.shape = layer->infer_shape(in_shapes);
  n.layer = std::move(layer);
  n.inputs = std::move(inputs);
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

const Tensor4& Network::forward(const Tensor4& x, const PassContext& ctx) {
  HYLO_CHECK(nodes_.size() >= 2, "network has no layers");
  const Shape& in = nodes_[0].shape;
  HYLO_CHECK(x.c() == in.c && x.h() == in.h && x.w() == in.w,
             "input shape mismatch: got " << x.c() << "x" << x.h() << "x"
                                          << x.w());
  nodes_[0].out = x;
  std::vector<const Tensor4*> in_ptrs;
  for (std::size_t k = 1; k < nodes_.size(); ++k) {
    Node& n = nodes_[k];
    in_ptrs.clear();
    for (const int id : n.inputs)
      in_ptrs.push_back(&nodes_[static_cast<std::size_t>(id)].out);
    n.layer->forward(in_ptrs, n.out, ctx);
    HYLO_DCHECK(n.out.c() == n.shape.c && n.out.h() == n.shape.h &&
                    n.out.w() == n.shape.w,
                "layer " << n.layer->kind() << " produced wrong shape");
  }
  ran_forward_ = true;
  return nodes_.back().out;
}

void Network::backward(const Tensor4& grad_out, const PassContext& ctx) {
  HYLO_CHECK(ran_forward_, "backward before forward");
  HYLO_CHECK(grad_out.same_shape(nodes_.back().out),
             "grad_out shape mismatch");
  // (Re)size and zero all activation gradients for this batch.
  for (auto& n : nodes_) {
    if (n.out.same_shape(n.grad))
      n.grad.zero();
    else
      n.grad.resize(n.out.n(), n.out.c(), n.out.h(), n.out.w());
  }
  nodes_.back().grad = grad_out;

  std::vector<const Tensor4*> in_ptrs;
  std::vector<Tensor4*> gin_ptrs;
  for (std::size_t k = nodes_.size(); k-- > 1;) {
    Node& n = nodes_[k];
    in_ptrs.clear();
    gin_ptrs.clear();
    for (const int id : n.inputs) {
      in_ptrs.push_back(&nodes_[static_cast<std::size_t>(id)].out);
      gin_ptrs.push_back(&nodes_[static_cast<std::size_t>(id)].grad);
    }
    n.layer->backward(in_ptrs, n.out, n.grad, gin_ptrs, ctx);
  }
}

void Network::zero_grad() {
  for (auto* pb : param_blocks()) pb->gw.zero();
  for (auto pp : plain_params())
    std::fill(pp.grad->begin(), pp.grad->end(), 0.0);
}

const Tensor4& Network::output() const {
  HYLO_CHECK(ran_forward_, "output before forward");
  return nodes_.back().out;
}

Shape Network::output_shape() const {
  HYLO_CHECK(!nodes_.empty(), "empty network");
  return nodes_.back().shape;
}

Shape Network::input_shape() const {
  HYLO_CHECK(!nodes_.empty(), "empty network");
  return nodes_.front().shape;
}

std::vector<ParamBlock*> Network::param_blocks() {
  std::vector<ParamBlock*> out;
  for (auto& n : nodes_)
    if (n.layer != nullptr)
      if (ParamBlock* pb = n.layer->param_block(); pb != nullptr)
        out.push_back(pb);
  return out;
}

std::vector<Layer::PlainParam> Network::plain_params() {
  std::vector<Layer::PlainParam> out;
  for (auto& n : nodes_)
    if (n.layer != nullptr)
      for (auto pp : n.layer->plain_params()) out.push_back(pp);
  return out;
}

index_t Network::num_params() {
  index_t total = 0;
  for (auto* pb : param_blocks()) total += pb->weight_count();
  for (auto pp : plain_params()) total += static_cast<index_t>(pp.value->size());
  return total;
}

namespace {
// Format v2: magic, then a header {block count, total scalar count}, then
// per-block {uint64 count, raw real_t payload}. The header lets a loader
// reject a structurally wrong file before touching any weights, and every
// read checks gcount() so truncation anywhere fails loudly instead of
// silently zero-filling the tail of the model.
constexpr std::uint64_t kCheckpointMagic = 0x48794C6F43505432ULL;  // "HyLoCPT2"

void write_raw(std::ostream& out, const void* data, std::size_t bytes,
               const std::string& path) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  HYLO_CHECK(out.good(),
             "checkpoint write failure on " << path << " (" << bytes
                                            << " bytes)");
}

void read_raw(std::ifstream& in, void* data, std::size_t bytes,
              const char* what) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(bytes));
  HYLO_CHECK(in.gcount() == static_cast<std::streamsize>(bytes),
             "truncated checkpoint while reading "
                 << what << ": wanted " << bytes << " bytes, got "
                 << in.gcount());
}

void write_block(std::ostream& out, const real_t* data, index_t count,
                 const std::string& path) {
  const std::uint64_t n = static_cast<std::uint64_t>(count);
  write_raw(out, &n, sizeof(n), path);
  write_raw(out, data, sizeof(real_t) * n, path);
}

void read_block(std::ifstream& in, real_t* data, index_t count,
                const char* what) {
  std::uint64_t n = 0;
  read_raw(in, &n, sizeof(n), what);
  HYLO_CHECK(n == static_cast<std::uint64_t>(count),
             "checkpoint " << what << " size mismatch: file has " << n
                           << ", network expects " << count);
  read_raw(in, data, sizeof(real_t) * n, what);
}
}  // namespace

void Network::save_weights(const std::string& path) {
  // Walk the blocks once up front so the header can carry totals.
  std::uint64_t blocks = 0, scalars = 0;
  for (auto* pb : param_blocks()) {
    ++blocks;
    scalars += static_cast<std::uint64_t>(pb->w.size());
  }
  for (auto pp : plain_params()) {
    ++blocks;
    scalars += static_cast<std::uint64_t>(pp.value->size());
  }
  for (auto& n : nodes_)
    if (n.layer != nullptr)
      for (auto* state : n.layer->mutable_state()) {
        ++blocks;
        scalars += static_cast<std::uint64_t>(state->size());
      }

  // Crash safety: stream into <path>.tmp and rename on success, so an
  // interrupted save never clobbers the previous checkpoint.
  ckpt::AtomicFile file(path);
  std::ostream& out = file.stream();
  write_raw(out, &kCheckpointMagic, sizeof(kCheckpointMagic), path);
  write_raw(out, &blocks, sizeof(blocks), path);
  write_raw(out, &scalars, sizeof(scalars), path);
  for (auto* pb : param_blocks())
    write_block(out, pb->w.data(), pb->w.size(), path);
  for (auto pp : plain_params())
    write_block(out, pp.value->data(), static_cast<index_t>(pp.value->size()),
                path);
  for (auto& n : nodes_)
    if (n.layer != nullptr)
      for (auto* state : n.layer->mutable_state())
        write_block(out, state->data(), static_cast<index_t>(state->size()),
                    path);
  file.commit();
}

void Network::load_weights(const std::string& path) {
  std::uint64_t want_blocks = 0, want_scalars = 0;
  for (auto* pb : param_blocks()) {
    ++want_blocks;
    want_scalars += static_cast<std::uint64_t>(pb->w.size());
  }
  for (auto pp : plain_params()) {
    ++want_blocks;
    want_scalars += static_cast<std::uint64_t>(pp.value->size());
  }
  for (auto& n : nodes_)
    if (n.layer != nullptr)
      for (auto* state : n.layer->mutable_state()) {
        ++want_blocks;
        want_scalars += static_cast<std::uint64_t>(state->size());
      }

  HYLO_CHECK(path.size() < 4 || path.compare(path.size() - 4, 4, ".tmp") != 0,
             "refusing to load '" << path << "': a '.tmp' checkpoint is a "
                                  << "torn in-progress write left by a crash");
  std::ifstream in(path, std::ios::binary);
  HYLO_CHECK(in.good(), "cannot open " << path);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  HYLO_CHECK(in.gcount() == static_cast<std::streamsize>(sizeof(magic)) &&
                 magic == kCheckpointMagic,
             "not a hylo checkpoint: " << path);
  std::uint64_t blocks = 0, scalars = 0;
  read_raw(in, &blocks, sizeof(blocks), "header");
  read_raw(in, &scalars, sizeof(scalars), "header");
  HYLO_CHECK(blocks == want_blocks && scalars == want_scalars,
             "checkpoint shape mismatch: file has "
                 << blocks << " blocks / " << scalars
                 << " scalars, network expects " << want_blocks << " / "
                 << want_scalars);
  for (auto* pb : param_blocks())
    read_block(in, pb->w.data(), pb->w.size(), "weights");
  for (auto pp : plain_params())
    read_block(in, pp.value->data(), static_cast<index_t>(pp.value->size()),
               "plain params");
  for (auto& n : nodes_)
    if (n.layer != nullptr)
      for (auto* state : n.layer->mutable_state())
        read_block(in, state->data(), static_cast<index_t>(state->size()),
                   "layer state");
  HYLO_CHECK(in.peek() == std::ifstream::traits_type::eof(),
             "trailing bytes after checkpoint payload in " << path);
}

void Network::serialize_state(ckpt::ByteWriter& w) {
  for (auto* pb : param_blocks()) w.reals(pb->w.data(), pb->w.size());
  for (auto pp : plain_params())
    w.reals(pp.value->data(), static_cast<index_t>(pp.value->size()));
  for (auto& n : nodes_)
    if (n.layer != nullptr)
      for (auto* state : n.layer->mutable_state())
        w.reals(state->data(), static_cast<index_t>(state->size()));
}

void Network::deserialize_state(ckpt::ByteReader& r) {
  for (auto* pb : param_blocks())
    r.reals_into(pb->w.data(), pb->w.size(), "weights");
  for (auto pp : plain_params())
    r.reals_into(pp.value->data(), static_cast<index_t>(pp.value->size()),
                 "plain params");
  for (auto& n : nodes_)
    if (n.layer != nullptr)
      for (auto* state : n.layer->mutable_state())
        r.reals_into(state->data(), static_cast<index_t>(state->size()),
                     "layer state");
}

}  // namespace hylo
