#include "hylo/obs/run_log.hpp"

#include <filesystem>
#include <iostream>

namespace hylo::obs {

RunLogger::RunLogger(RunLogConfig cfg)
    : cfg_(std::move(cfg)), trace_(cfg_.trace_capacity) {
  if (!enabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(cfg_.dir, ec);
  HYLO_CHECK(!ec, "cannot create telemetry dir " << cfg_.dir << ": "
                                                 << ec.message());
  jsonl_.open(run_log_path(), cfg_.append ? std::ios::app : std::ios::trunc);
  HYLO_CHECK(jsonl_.good(), "cannot open " << run_log_path());
}

RunLogger::~RunLogger() {
  try {
    finish();
  } catch (...) {  // hylo-lint: allow(catch_all: destructor must not throw; a failed flush loses telemetry, not data)
  }
}

void RunLogger::record(const std::string& type, Json fields) {
  MutexLock lk(mu_);
  record_locked(type, std::move(fields));
}

void RunLogger::record_locked(const std::string& type, Json fields) {
  if (!enabled() || finished_) return;
  HYLO_CHECK(fields.is_object(), "run log record must be a JSON object");
  Json rec = Json::object();
  rec.set("type", type);
  rec.set("seq", seq_);
  for (const auto& [k, v] : fields.members()) rec.set(k, v);
  rec.dump(jsonl_);
  jsonl_ << "\n";
  seq_ += 1;
}

void RunLogger::console(const std::string& line) {
  MutexLock lk(mu_);
  if (cfg_.echo) std::cout << line << "\n";
  record_locked("console", Json::object().set("line", line));
}

void RunLogger::finish() {
  MutexLock lk(mu_);
  finish_locked();
}

void RunLogger::finish_locked() {
  if (!enabled() || finished_) return;
  if (metrics_ != nullptr) record_locked("metrics", metrics_->snapshot());
  Json close = Json::object();
  close.set("trace_events", static_cast<std::int64_t>(trace_.size()));
  close.set("trace_dropped", trace_.dropped());
  record_locked("run_end", std::move(close));
  jsonl_.flush();
  trace_.write_chrome_trace(trace_path());
  finished_ = true;
}

std::string RunLogger::run_log_path() const {
  return cfg_.dir + "/" + cfg_.run_log_name;
}

std::string RunLogger::trace_path() const {
  return cfg_.dir + "/" + cfg_.trace_name;
}

}  // namespace hylo::obs
