#include "hylo/obs/health.hpp"

#include <cmath>
#include <cstdlib>

#include "hylo/obs/json.hpp"
#include "hylo/obs/metrics.hpp"
#include "hylo/obs/run_log.hpp"

namespace hylo::obs {

std::optional<HealthConfig> HealthConfig::from_env() {
  const char* env = std::getenv("HYLO_HEALTH");
  if (env == nullptr || *env == '\0') return std::nullopt;
  char* end = nullptr;
  const long cadence = std::strtol(env, &end, 10);
  HYLO_CHECK(end != nullptr && *end == '\0' && cadence >= 0,
             "HYLO_HEALTH must be a non-negative cadence, got '" << env
                                                                 << "'");
  if (cadence == 0) return std::nullopt;
  HealthConfig cfg;
  cfg.enabled = true;
  cfg.cadence = static_cast<index_t>(cadence);
  return cfg;
}

void HealthMonitor::report_layer(LayerHealth h) {
  HYLO_CHECK(h.layer >= 0, "LayerHealth.layer must be set");
  for (auto& b : buf_) {
    if (b.layer == h.layer) {
      // Preserve step-side norms already reported for this layer.
      h.grad_norm = std::isnan(h.grad_norm) ? b.grad_norm : h.grad_norm;
      h.update_norm =
          std::isnan(h.update_norm) ? b.update_norm : h.update_norm;
      b = h;
      return;
    }
  }
  buf_.push_back(h);
}

void HealthMonitor::report_norms(index_t layer, double grad_norm,
                                 double update_norm) {
  for (auto& b : buf_) {
    if (b.layer == layer) {
      b.grad_norm = grad_norm;
      b.update_norm = update_norm;
      return;
    }
  }
  LayerHealth h;
  h.layer = layer;
  h.grad_norm = grad_norm;
  h.update_norm = update_norm;
  buf_.push_back(h);
}

void HealthMonitor::flush(index_t epoch, index_t iter, index_t global_iter) {
  if (!due_) return;
  due_ = false;
  ++probes_;

  double max_cond = std::numeric_limits<double>::quiet_NaN();
  index_t max_staleness = 0;
  std::int64_t nonfinite = nonfinite_weights_ + nonfinite_grads_;

  const std::string prefix = "optim/" + method_ + "/health/";
  Histogram* h_cond = nullptr;
  Histogram* h_energy = nullptr;
  Histogram* h_ratio = nullptr;
  Histogram* h_stale = nullptr;
  if (reg_ != nullptr) {
    // Dynamic names on purpose: the `health_catalogue` lint rule matches
    // metric-name literals, and the catalogue is the suffix set, not the
    // per-method product.
    h_cond = &reg_->histogram(prefix + "cond",
                              Histogram::exponential_bounds(1.0, 10.0, 16));
    h_energy = &reg_->histogram(prefix + "energy_fraction",
                                Histogram::linear_bounds(0.0, 1.0, 21));
    h_ratio = &reg_->histogram(prefix + "update_ratio",
                               Histogram::exponential_bounds(1e-8, 10.0, 16));
    h_stale = &reg_->histogram(prefix + "staleness",
                               Histogram::linear_bounds(0.0, 32.0, 33));
  }

  Json layers = Json::array();
  for (const LayerHealth& b : buf_) {
    const double worst = std::fmax(std::fmax(b.cond, b.cond_a), b.cond_g);
    if (!std::isnan(worst))
      max_cond = std::isnan(max_cond) ? worst : std::fmax(max_cond, worst);
    max_staleness = std::max(max_staleness, b.staleness);
    nonfinite += b.nonfinite;

    const double ratio = b.grad_norm > 0.0 ? b.update_norm / b.grad_norm
                                           : std::numeric_limits<double>::quiet_NaN();
    if (reg_ != nullptr) {
      if (!std::isnan(worst)) h_cond->observe(worst);
      if (!std::isnan(b.energy_fraction)) h_energy->observe(b.energy_fraction);
      if (!std::isnan(ratio)) h_ratio->observe(ratio);
      h_stale->observe(static_cast<double>(b.staleness));
    }

    Json j = Json::object();
    j.set("layer", b.layer);
    j.set("cond", b.cond);
    j.set("cond_a", b.cond_a);
    j.set("cond_g", b.cond_g);
    j.set("energy_fraction", b.energy_fraction);
    j.set("grad_norm", b.grad_norm);
    j.set("update_norm", b.update_norm);
    j.set("update_ratio", ratio);
    j.set("nonfinite", b.nonfinite);
    j.set("staleness", b.staleness);
    layers.push(std::move(j));
  }

  if (reg_ != nullptr && nonfinite > 0)
    reg_->counter(prefix + "nonfinite").inc(nonfinite);

  if (log_ != nullptr && log_->enabled()) {
    Json rec = Json::object();
    rec.set("epoch", epoch);
    rec.set("iter", iter);
    rec.set("global_iter", global_iter);
    rec.set("method", method_);
    rec.set("max_cond", max_cond);
    rec.set("max_staleness", max_staleness);
    rec.set("nonfinite", nonfinite);
    rec.set("nonfinite_weights", nonfinite_weights_);
    rec.set("nonfinite_grads", nonfinite_grads_);
    rec.set("layers", std::move(layers));
    log_->record("health", std::move(rec));
  }

  last_nonfinite_ = nonfinite;
  last_max_cond_ = max_cond;
  last_max_staleness_ = max_staleness;
  total_nonfinite_ += nonfinite;
  if (!std::isnan(max_cond))
    worst_cond_ =
        std::isnan(worst_cond_) ? max_cond : std::fmax(worst_cond_, max_cond);

  buf_.clear();
  nonfinite_weights_ = nonfinite_grads_ = 0;
}

double cond_from_cholesky(const Matrix& l) {
  if (l.rows() == 0) return std::numeric_limits<double>::quiet_NaN();
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (index_t i = 0; i < l.rows(); ++i) {
    const double d = std::abs(l(i, i));
    if (!std::isfinite(d)) return std::numeric_limits<double>::infinity();
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  if (lo == 0.0) return std::numeric_limits<double>::infinity();
  const double k = hi / lo;
  return k * k;
}

double cond_from_lu(const Matrix& lu) {
  if (lu.rows() == 0) return std::numeric_limits<double>::quiet_NaN();
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  const index_t n = std::min(lu.rows(), lu.cols());
  for (index_t i = 0; i < n; ++i) {
    const double d = std::abs(lu(i, i));
    if (!std::isfinite(d)) return std::numeric_limits<double>::infinity();
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  if (lo == 0.0) return std::numeric_limits<double>::infinity();
  return hi / lo;
}

namespace {
double inf_norm(const Matrix& m) {
  double worst = 0.0;
  for (index_t i = 0; i < m.rows(); ++i) {
    double row = 0.0;
    for (index_t j = 0; j < m.cols(); ++j) {
      const double a = std::abs(m(i, j));
      if (!std::isfinite(a)) return std::numeric_limits<double>::infinity();
      row += a;
    }
    worst = std::max(worst, row);
  }
  return worst;
}
}  // namespace

double cond_from_pair(const Matrix& m, const Matrix& m_inv) {
  if (m.rows() == 0 || m_inv.rows() == 0)
    return std::numeric_limits<double>::quiet_NaN();
  return inf_norm(m) * inf_norm(m_inv);
}

index_t count_nonfinite(const Matrix& m) {
  index_t n = 0;
  for (index_t i = 0; i < m.rows(); ++i)
    for (index_t j = 0; j < m.cols(); ++j)
      if (!std::isfinite(m(i, j))) ++n;
  return n;
}

index_t count_nonfinite(const std::vector<real_t>& v) {
  index_t n = 0;
  for (const real_t x : v)
    if (!std::isfinite(x)) ++n;
  return n;
}

}  // namespace hylo::obs
