#include "hylo/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hylo/obs/json.hpp"

namespace hylo::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  HYLO_CHECK(!bounds_.empty(), "histogram needs at least one bucket edge");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    HYLO_CHECK(bounds_[i] > bounds_[i - 1],
               "histogram bounds must be strictly ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram::Histogram(Histogram&& o) noexcept
    : bounds_(std::move(o.bounds_)), counts_(std::move(o.counts_)),
      count_(o.count_), sum_(o.sum_), min_(o.min_), max_(o.max_) {}

Histogram::Histogram(const Histogram& o)
    : bounds_(o.bounds_), counts_(o.counts_), count_(o.count_), sum_(o.sum_),
      min_(o.min_), max_(o.max_) {}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  int count) {
  HYLO_CHECK(start > 0.0 && factor > 1.0 && count >= 1,
             "bad exponential bounds");
  std::vector<double> b(static_cast<std::size_t>(count));
  double v = start;
  for (auto& e : b) {
    e = v;
    v *= factor;
  }
  return b;
}

std::vector<double> Histogram::linear_bounds(double lo, double hi, int count) {
  HYLO_CHECK(hi > lo && count >= 2, "bad linear bounds");
  std::vector<double> b(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    b[static_cast<std::size_t>(i)] =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count - 1);
  return b;
}

void Histogram::observe(double v) {
  MutexLock lk(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  count_ += 1;
}

double Histogram::quantile(double q) const {
  MutexLock lk(mu_);
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target, then linear interpolation inside the bucket that
  // holds it. Bucket edges are tightened by the observed min/max so a
  // single-valued histogram reads back that exact value.
  const double target = q * static_cast<double>(count_);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::int64_t prev = cum;
    cum += counts_[i];
    if (static_cast<double>(cum) < target) continue;
    double lo = i == 0 ? min_ : bounds_[i - 1];
    double hi = i < bounds_.size() ? bounds_[i] : max_;
    lo = std::max(lo, min_);
    hi = std::min(hi, max_);
    if (hi <= lo) return lo;
    const double frac =
        counts_[i] == 0
            ? 0.0
            : (target - static_cast<double>(prev)) / static_cast<double>(counts_[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lk(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lk(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  MutexLock lk(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  if (bounds.empty())
    bounds = Histogram::exponential_bounds(1e-6, 2.0, 28);  // 1µs … ~134s
  return histograms_.emplace(name, Histogram(std::move(bounds))).first->second;
}

std::int64_t MetricsRegistry::counter_value(const std::string& name) const {
  MutexLock lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

Json MetricsRegistry::snapshot() const {
  MutexLock lk(mu_);
  Json out = Json::object();
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters.set(name, c.value());
  out.set("counters", std::move(counters));

  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g.value());
  out.set("gauges", std::move(gauges));

  Json hists = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json j = Json::object();
    j.set("count", h.count());
    j.set("sum", h.sum());
    j.set("min", h.min());
    j.set("max", h.max());
    j.set("p50", h.p50());
    j.set("p95", h.p95());
    j.set("p99", h.p99());
    hists.set(name, std::move(j));
  }
  out.set("histograms", std::move(hists));

  Json timings = Json::object();
  for (const auto& [name, e] : timings_) {
    Json j = Json::object();
    j.set("seconds", e.seconds);
    j.set("calls", e.calls);
    timings.set(name, std::move(j));
  }
  out.set("timings", std::move(timings));
  return out;
}

void MetricsRegistry::reset() {
  MutexLock lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  timings_.clear();
}

}  // namespace hylo::obs
