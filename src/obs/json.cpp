#include "hylo/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace hylo::obs {

namespace {

void append_utf8(std::string& out, unsigned code) {
  if (code < 0x80) {
    out += static_cast<char>(code);
  } else if (code < 0x800) {
    out += static_cast<char>(0xC0 | (code >> 6));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else {
    out += static_cast<char>(0xE0 | (code >> 12));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  }
}

/// Shortest-ish number rendering: integers without a fraction, everything
/// else with enough digits to round-trip a double.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // JSON has no Infinity/NaN literals; health probes produce non-finite
  // values by design (NaN = "probe not applicable", Inf = singular factor),
  // so emit the sentinel strings that Json::to_double maps back.
  if (std::isnan(v)) return "\"NaN\"";
  if (std::isinf(v)) return v > 0 ? "\"Infinity\"" : "\"-Infinity\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    HYLO_CHECK(pos_ == text_.size(),
               "trailing characters at offset " << pos_);
    return v;
  }

 private:
  Json parse_value() {
    skip_ws();
    HYLO_CHECK(pos_ < text_.size(), "unexpected end of JSON");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect("true"); return Json(true);
      case 'f': expect("false"); return Json(false);
      case 'n': expect("null"); return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      HYLO_CHECK(peek() == '"', "expected key string at offset " << pos_);
      std::string key = parse_string();
      skip_ws();
      HYLO_CHECK(peek() == ':', "expected ':' at offset " << pos_);
      ++pos_;
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      HYLO_CHECK(peek() == '}', "expected ',' or '}' at offset " << pos_);
      ++pos_;
      return obj;
    }
  }

  Json parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      HYLO_CHECK(peek() == ']', "expected ',' or ']' at offset " << pos_);
      ++pos_;
      return arr;
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      HYLO_CHECK(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      HYLO_CHECK(pos_ < text_.size(), "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          HYLO_CHECK(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else HYLO_CHECK(false, "bad hex digit in \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default:
          HYLO_CHECK(false, "bad escape '\\" << e << "'");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    HYLO_CHECK(pos_ > start, "expected value at offset " << start);
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    HYLO_CHECK(end != nullptr && *end == '\0',
               "bad number '" << tok << "' at offset " << start);
    return Json(v);
  }

  void expect(const char* word) {
    const std::size_t n = std::string(word).size();
    HYLO_CHECK(text_.compare(pos_, n, word) == 0,
               "expected '" << word << "' at offset " << pos_);
    pos_ += n;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Json::dump(std::ostream& os) const {
  switch (type_) {
    case Type::kNull: os << "null"; break;
    case Type::kBool: os << (bool_ ? "true" : "false"); break;
    case Type::kNumber: os << format_number(num_); break;
    case Type::kString: os << json_escape(str_); break;
    case Type::kArray: {
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) os << ',';
        arr_[i].dump(os);
      }
      os << ']';
      break;
    }
    case Type::kObject: {
      os << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) os << ',';
        os << json_escape(obj_[i].first) << ':';
        obj_[i].second.dump(os);
      }
      os << '}';
      break;
    }
  }
}

double Json::to_double() const {
  if (type_ == Type::kNumber) return num_;
  if (type_ == Type::kNull) return std::numeric_limits<double>::quiet_NaN();
  HYLO_CHECK(type_ == Type::kString,
             "to_double on non-numeric JSON value");
  if (str_ == "NaN") return std::numeric_limits<double>::quiet_NaN();
  if (str_ == "Infinity") return std::numeric_limits<double>::infinity();
  if (str_ == "-Infinity") return -std::numeric_limits<double>::infinity();
  HYLO_CHECK(false, "string '" << str_ << "' is not a numeric sentinel");
}

std::string Json::dump() const {
  std::ostringstream oss;
  dump(oss);
  return oss.str();
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace hylo::obs
