#include "hylo/obs/trace.hpp"

#include <algorithm>
#include <fstream>

namespace hylo::obs {

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  HYLO_CHECK(capacity_ >= 1, "trace capacity must be >= 1");
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

double TraceBuffer::track_now_us(int tid) const {
  MutexLock lk(mu_);
  const auto it = cursor_us_.find(tid);
  return it == cursor_us_.end() ? 0.0 : it->second;
}

void TraceBuffer::record(TraceEvent e) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
  dropped_ += 1;
}

const TraceEvent& TraceBuffer::event(std::size_t i) const {
  MutexLock lk(mu_);
  HYLO_CHECK(i < ring_.size(), "trace event index out of range");
  return ring_[(head_ + i) % ring_.size()];
}

void TraceBuffer::add_span(const std::string& name, const std::string& cat,
                           int tid, double dur_s, Json args) {
  MutexLock lk(mu_);
  double& cursor = cursor_us_[tid];
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.tid = tid;
  e.ts_us = cursor;
  e.dur_us = dur_s * 1e6;
  e.args = std::move(args);
  cursor += e.dur_us;
  record(std::move(e));
}

void TraceBuffer::add_collective(const std::string& name, double dur_s,
                                 Json args) {
  MutexLock lk(mu_);
  // Barrier: the wire transfer starts once the latest track arrives...
  double start = cursor_us_[kCommTrack];
  for (const auto& kv : cursor_us_) start = std::max(start, kv.second);
  TraceEvent e;
  e.name = name;
  e.cat = "comm";
  e.ph = 'X';
  e.tid = kCommTrack;
  e.ts_us = start;
  e.dur_us = dur_s * 1e6;
  e.args = std::move(args);
  // ...and every participant resumes only after it completes.
  const double end = start + e.dur_us;
  for (auto& kv : cursor_us_) kv.second = end;
  record(std::move(e));
}

void TraceBuffer::add_span_at(const std::string& name, const std::string& cat,
                              int tid, double start_s, double dur_s,
                              Json args) {
  MutexLock lk(mu_);
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.tid = tid;
  e.ts_us = start_s * 1e6;
  e.dur_us = dur_s * 1e6;
  e.args = std::move(args);
  double& cursor = cursor_us_[tid];
  cursor = std::max(cursor, e.ts_us + e.dur_us);
  record(std::move(e));
}

void TraceBuffer::add_instant(const std::string& name, const std::string& cat,
                              int tid, Json args) {
  MutexLock lk(mu_);
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.tid = tid;
  const auto it = cursor_us_.find(tid);
  e.ts_us = it == cursor_us_.end() ? 0.0 : it->second;
  e.args = std::move(args);
  record(std::move(e));
}

void TraceBuffer::set_track_name(int tid, std::string name) {
  MutexLock lk(mu_);
  track_names_[tid] = std::move(name);
}

void TraceBuffer::write_chrome_trace(std::ostream& os) const {
  MutexLock lk(mu_);
  Json events = Json::array();
  for (const auto& [tid, name] : track_names_) {
    Json meta = Json::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", tid);
    meta.set("args", Json::object().set("name", name));
    events.push(std::move(meta));
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const TraceEvent& ev = ring_[(head_ + i) % ring_.size()];
    Json j = Json::object();
    j.set("name", ev.name);
    j.set("cat", ev.cat);
    j.set("ph", std::string(1, ev.ph));
    j.set("pid", 0);
    j.set("tid", ev.tid);
    j.set("ts", ev.ts_us);
    if (ev.ph == 'X') j.set("dur", ev.dur_us);
    if (ev.ph == 'i') j.set("s", "t");  // instant scope: thread
    if (ev.args.size() > 0) j.set("args", ev.args);
    events.push(std::move(j));
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  if (dropped_ > 0)
    doc.set("otherData",
            Json::object().set("dropped_events", dropped_));
  doc.dump(os);
  os << "\n";
}

void TraceBuffer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  HYLO_CHECK(out.good(), "cannot open " << path);
  write_chrome_trace(out);
}

void TraceBuffer::clear() {
  MutexLock lk(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  cursor_us_.clear();
}

}  // namespace hylo::obs
