#include "hylo/obs/alerts.hpp"

#include <cmath>
#include <sstream>

#include "hylo/obs/json.hpp"
#include "hylo/obs/metrics.hpp"
#include "hylo/obs/run_log.hpp"

namespace hylo::obs {

const char* to_string(AlertSeverity s) {
  return s == AlertSeverity::kCritical ? "critical" : "warning";
}

bool AlertEngine::already_fired(const std::string& rule,
                                index_t epoch) const {
  for (const Alert& a : fired_)
    if (a.epoch == epoch && a.rule == rule) return true;
  return false;
}

void AlertEngine::fire(Alert a) {
  if (already_fired(a.rule, a.epoch)) return;
  if (a.severity == AlertSeverity::kCritical) ++critical_;
  if (reg_ != nullptr) {
    reg_->counter("obs/alerts/fired").inc();
    if (a.severity == AlertSeverity::kCritical)
      reg_->counter("obs/alerts/critical").inc();
  }
  if (log_ != nullptr && log_->enabled()) {
    Json rec = Json::object();
    rec.set("rule", a.rule);
    rec.set("severity", to_string(a.severity));
    rec.set("epoch", a.epoch);
    rec.set("global_iter", a.global_iter);
    rec.set("value", a.value);
    rec.set("threshold", a.threshold);
    rec.set("detail", a.detail);
    log_->record("alert", std::move(rec));
  }
  fired_.push_back(std::move(a));
}

void AlertEngine::on_probe(index_t epoch, index_t global_iter,
                           std::int64_t nonfinite, double max_cond,
                           index_t max_staleness) {
  if (nonfinite > 0) {
    Alert a;
    a.rule = "non_finite";
    a.severity = AlertSeverity::kCritical;
    a.epoch = epoch;
    a.global_iter = global_iter;
    a.value = static_cast<double>(nonfinite);
    a.threshold = 0.0;
    std::ostringstream oss;
    oss << nonfinite << " non-finite entries in weights/grads/factors";
    a.detail = oss.str();
    fire(std::move(a));
  }
  if (std::isfinite(max_cond) ? max_cond >= cfg_.cond_warning
                              : std::isinf(max_cond)) {
    const bool critical = !std::isfinite(max_cond) ||
                          max_cond >= cfg_.cond_critical;
    Alert a;
    a.rule = "cond_blowup";
    a.severity =
        critical ? AlertSeverity::kCritical : AlertSeverity::kWarning;
    a.epoch = epoch;
    a.global_iter = global_iter;
    a.value = max_cond;
    a.threshold = critical ? cfg_.cond_critical : cfg_.cond_warning;
    std::ostringstream oss;
    oss << "factor condition estimate " << max_cond << " above "
        << a.threshold;
    a.detail = oss.str();
    fire(std::move(a));
  }
  if (max_staleness > cfg_.staleness_budget) {
    Alert a;
    a.rule = "staleness_budget";
    a.severity = AlertSeverity::kWarning;
    a.epoch = epoch;
    a.global_iter = global_iter;
    a.value = static_cast<double>(max_staleness);
    a.threshold = static_cast<double>(cfg_.staleness_budget);
    std::ostringstream oss;
    oss << "a layer is serving factors " << max_staleness
        << " refreshes old (budget " << cfg_.staleness_budget << ")";
    a.detail = oss.str();
    fire(std::move(a));
  }
}

void AlertEngine::on_epoch(index_t epoch, index_t global_iter,
                           double train_loss, const std::string& mode,
                           std::int64_t faults_injected) {
  if (!std::isfinite(train_loss)) {
    Alert a;
    a.rule = "non_finite";
    a.severity = AlertSeverity::kCritical;
    a.epoch = epoch;
    a.global_iter = global_iter;
    a.value = train_loss;
    a.threshold = 0.0;
    a.detail = "train loss is non-finite";
    fire(std::move(a));
  } else if (static_cast<index_t>(loss_window_.size()) >= cfg_.loss_window) {
    double mean = 0.0;
    for (const double l : loss_window_) mean += l;
    mean /= static_cast<double>(loss_window_.size());
    const double limit = cfg_.loss_divergence_factor * mean;
    if (mean > 0.0 && train_loss > limit) {
      Alert a;
      a.rule = "loss_divergence";
      a.severity = AlertSeverity::kCritical;
      a.epoch = epoch;
      a.global_iter = global_iter;
      a.value = train_loss;
      a.threshold = limit;
      std::ostringstream oss;
      oss << "train loss " << train_loss << " > "
          << cfg_.loss_divergence_factor << "x trailing-" << cfg_.loss_window
          << "-epoch mean " << mean;
      a.detail = oss.str();
      fire(std::move(a));
    }
  }
  if (std::isfinite(train_loss)) {
    loss_window_.push_back(train_loss);
    while (static_cast<index_t>(loss_window_.size()) > cfg_.loss_window)
      loss_window_.pop_front();
  }

  mode_window_.push_back(mode);
  while (static_cast<index_t>(mode_window_.size()) > cfg_.oscillation_window)
    mode_window_.pop_front();
  index_t flips = 0;
  for (std::size_t i = 1; i < mode_window_.size(); ++i)
    if (mode_window_[i] != mode_window_[i - 1]) ++flips;
  if (flips >= cfg_.oscillation_flips) {
    Alert a;
    a.rule = "switch_oscillation";
    a.severity = AlertSeverity::kWarning;
    a.epoch = epoch;
    a.global_iter = global_iter;
    a.value = static_cast<double>(flips);
    a.threshold = static_cast<double>(cfg_.oscillation_flips);
    std::ostringstream oss;
    oss << flips << " mode flips in the last " << mode_window_.size()
        << " epochs (ending in '" << mode << "')";
    a.detail = oss.str();
    fire(std::move(a));
  }

  if (faults_injected > cfg_.fault_budget) {
    Alert a;
    a.rule = "fault_budget";
    a.severity = AlertSeverity::kWarning;
    a.epoch = epoch;
    a.global_iter = global_iter;
    a.value = static_cast<double>(faults_injected);
    a.threshold = static_cast<double>(cfg_.fault_budget);
    std::ostringstream oss;
    oss << faults_injected << " comm faults injected this epoch (budget "
        << cfg_.fault_budget << ")";
    a.detail = oss.str();
    fire(std::move(a));
  }
}

std::string AlertEngine::summary() const {
  if (fired_.empty()) return "health: no alerts fired";
  std::ostringstream oss;
  oss << "health: " << fired_.size() << " alert(s), " << critical_
      << " critical";
  for (const char* rule : kAlertCatalogue) {
    index_t n = 0;
    index_t first = -1;
    for (const Alert& a : fired_) {
      if (a.rule != rule) continue;
      ++n;
      if (first < 0) first = a.epoch;
    }
    if (n > 0)
      oss << "\n  " << rule << ": x" << n << " (first at epoch " << first
          << ")";
  }
  return oss.str();
}

}  // namespace hylo::obs
