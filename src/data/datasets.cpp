#include "hylo/data/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "hylo/common/rng.hpp"

namespace hylo {

namespace {
constexpr real_t kPi = std::numbers::pi_v<real_t>;

// Smooth random template: sum of a few random low-frequency 2-D cosines.
// Gives each class a distinctive large-scale structure a small convnet can
// pick up quickly.
void fill_smooth_template(Rng& rng, index_t h, index_t w,
                          std::vector<real_t>& out) {
  out.assign(static_cast<std::size_t>(h * w), 0.0);
  const int waves = 4;
  for (int k = 0; k < waves; ++k) {
    const real_t fy = rng.uniform(0.5, 2.5);
    const real_t fx = rng.uniform(0.5, 2.5);
    const real_t phase = rng.uniform(0.0, 2.0 * kPi);
    const real_t amp = rng.uniform(0.4, 1.0);
    for (index_t y = 0; y < h; ++y)
      for (index_t x = 0; x < w; ++x)
        out[static_cast<std::size_t>(y * w + x)] +=
            amp * std::cos(2.0 * kPi *
                               (fy * static_cast<real_t>(y) / static_cast<real_t>(h) +
                                fx * static_cast<real_t>(x) / static_cast<real_t>(w)) +
                           phase);
  }
}

void generate_gaussian_split(Rng& rng, index_t n, index_t classes,
                             index_t channels, index_t h, index_t w,
                             real_t noise,
                             const std::vector<std::vector<real_t>>& templates,
                             Dataset& out) {
  out.images.resize(n, channels, h, w);
  out.labels.resize(static_cast<std::size_t>(n));
  const index_t chw = channels * h * w;
  for (index_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % classes);
    out.labels[static_cast<std::size_t>(i)] = label;
    const auto& tpl =
        templates[static_cast<std::size_t>(label) * static_cast<std::size_t>(channels)];
    real_t* dst = out.images.sample_ptr(i);
    const real_t gain = 1.0 + 0.2 * rng.normal();
    for (index_t c = 0; c < channels; ++c) {
      const auto& tc = templates[static_cast<std::size_t>(label * channels + c)];
      for (index_t j = 0; j < h * w; ++j)
        dst[c * h * w + j] =
            gain * tc[static_cast<std::size_t>(j)] + noise * rng.normal();
    }
    (void)tpl;
    (void)chw;
  }
}
}  // namespace

DataSplit make_spirals(index_t n_train, index_t n_test, index_t classes,
                       real_t noise, std::uint64_t seed) {
  HYLO_CHECK(classes >= 2, "need at least two spiral arms");
  Rng rng(seed);
  auto gen = [&](index_t n, Dataset& ds) {
    ds.images.resize(n, 2, 1, 1);
    ds.labels.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      const int label = static_cast<int>(i % classes);
      const real_t t = rng.uniform(0.1, 1.0);
      const real_t angle = 2.0 * kPi * (t * 1.5 +
                                        static_cast<real_t>(label) /
                                            static_cast<real_t>(classes));
      ds.images.at(i, 0, 0, 0) = t * std::cos(angle) + noise * rng.normal();
      ds.images.at(i, 1, 0, 0) = t * std::sin(angle) + noise * rng.normal();
      ds.labels[static_cast<std::size_t>(i)] = label;
    }
  };
  DataSplit split;
  gen(n_train, split.train);
  gen(n_test, split.test);
  return split;
}

DataSplit make_gaussian_images(index_t n_train, index_t n_test,
                               index_t classes, index_t channels, index_t h,
                               index_t w, real_t noise, std::uint64_t seed) {
  HYLO_CHECK(classes >= 2 && channels >= 1 && h >= 2 && w >= 2,
             "bad gaussian image geometry");
  Rng rng(seed);
  std::vector<std::vector<real_t>> templates(
      static_cast<std::size_t>(classes * channels));
  for (auto& t : templates) fill_smooth_template(rng, h, w, t);
  DataSplit split;
  generate_gaussian_split(rng, n_train, classes, channels, h, w, noise,
                          templates, split.train);
  generate_gaussian_split(rng, n_test, classes, channels, h, w, noise,
                          templates, split.test);
  return split;
}

DataSplit make_texture_images(index_t n_train, index_t n_test, index_t classes,
                              index_t channels, index_t h, index_t w,
                              real_t noise, std::uint64_t seed) {
  HYLO_CHECK(classes >= 2 && channels >= 1, "bad texture geometry");
  Rng rng(seed);
  // Fixed per-class orientation/frequency, drawn once.
  std::vector<real_t> theta(static_cast<std::size_t>(classes));
  std::vector<real_t> freq(static_cast<std::size_t>(classes));
  for (index_t k = 0; k < classes; ++k) {
    theta[static_cast<std::size_t>(k)] =
        kPi * static_cast<real_t>(k) / static_cast<real_t>(classes);
    freq[static_cast<std::size_t>(k)] = 2.0 + static_cast<real_t>(k % 3);
  }
  auto gen = [&](index_t n, Dataset& ds) {
    ds.images.resize(n, channels, h, w);
    ds.labels.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      const int label = static_cast<int>(i % classes);
      ds.labels[static_cast<std::size_t>(i)] = label;
      const real_t th = theta[static_cast<std::size_t>(label)];
      const real_t f = freq[static_cast<std::size_t>(label)];
      const real_t cth = std::cos(th), sth = std::sin(th);
      for (index_t c = 0; c < channels; ++c) {
        const real_t phase = rng.uniform(0.0, 2.0 * kPi);
        for (index_t y = 0; y < h; ++y)
          for (index_t x = 0; x < w; ++x) {
            const real_t u =
                (cth * static_cast<real_t>(x) + sth * static_cast<real_t>(y)) /
                static_cast<real_t>(std::max(h, w));
            ds.images.at(i, c, y, x) =
                std::sin(2.0 * kPi * f * u + phase) + noise * rng.normal();
          }
      }
    }
  };
  DataSplit split;
  gen(n_train, split.train);
  gen(n_test, split.test);
  return split;
}

DataSplit make_blob_segmentation(index_t n_train, index_t n_test, index_t h,
                                 index_t w, real_t noise, std::uint64_t seed) {
  Rng rng(seed);
  auto gen = [&](index_t n, Dataset& ds) {
    ds.images.resize(n, 1, h, w);
    ds.masks.resize(n, 1, h, w);
    for (index_t i = 0; i < n; ++i) {
      real_t* img = ds.images.sample_ptr(i);
      real_t* msk = ds.masks.sample_ptr(i);
      // Textured background.
      const real_t bg_fy = rng.uniform(0.5, 1.5), bg_fx = rng.uniform(0.5, 1.5);
      for (index_t y = 0; y < h; ++y)
        for (index_t x = 0; x < w; ++x)
          img[y * w + x] =
              0.3 * std::sin(2.0 * kPi *
                             (bg_fy * static_cast<real_t>(y) / static_cast<real_t>(h) +
                              bg_fx * static_cast<real_t>(x) / static_cast<real_t>(w)));
      // 1-3 bright elliptical lesions.
      const index_t blobs = 1 + rng.uniform_int(3);
      for (index_t b = 0; b < blobs; ++b) {
        const real_t cy = rng.uniform(0.2, 0.8) * static_cast<real_t>(h);
        const real_t cx = rng.uniform(0.2, 0.8) * static_cast<real_t>(w);
        const real_t ry = rng.uniform(0.08, 0.22) * static_cast<real_t>(h);
        const real_t rx = rng.uniform(0.08, 0.22) * static_cast<real_t>(w);
        for (index_t y = 0; y < h; ++y)
          for (index_t x = 0; x < w; ++x) {
            const real_t dy = (static_cast<real_t>(y) - cy) / ry;
            const real_t dx = (static_cast<real_t>(x) - cx) / rx;
            if (dy * dy + dx * dx <= 1.0) {
              img[y * w + x] += 1.0;
              msk[y * w + x] = 1.0;
            }
          }
      }
      // Pixel noise on the image only.
      for (index_t j = 0; j < h * w; ++j) img[j] += noise * rng.normal();
    }
  };
  DataSplit split;
  gen(n_train, split.train);
  gen(n_test, split.test);
  return split;
}

DataLoader::DataLoader(const Dataset& dataset, index_t batch_size,
                       std::uint64_t seed, index_t rank, index_t world)
    : dataset_(&dataset), batch_size_(batch_size), rank_(rank), world_(world),
      seed_(seed) {
  HYLO_CHECK(batch_size > 0, "batch size must be positive");
  HYLO_CHECK(world > 0 && rank >= 0 && rank < world, "bad rank/world");
  HYLO_CHECK(dataset.size() >= world, "dataset smaller than world size");
  start_epoch(0);
}

void DataLoader::start_epoch(index_t epoch) {
  Rng rng(seed_ + 0x5851F42D4C957F2DULL * static_cast<std::uint64_t>(epoch));
  const auto perm = rng.permutation(dataset_->size());
  order_.clear();
  // Strided shard: identical permutation on all ranks, disjoint slices.
  // Trailing remainder samples (< world) are dropped so every rank sees the
  // same number of batches — required for lockstep collectives.
  const index_t usable = (dataset_->size() / world_) * world_;
  for (index_t i = rank_; i < usable; i += world_)
    order_.push_back(perm[static_cast<std::size_t>(i)]);
  cursor_ = 0;
}

bool DataLoader::next(Batch& batch) {
  const index_t remaining = static_cast<index_t>(order_.size()) - cursor_;
  if (remaining < batch_size_) return false;  // drop ragged tail batch
  const index_t n = batch_size_;
  const auto& img = dataset_->images;
  batch.images.resize(n, img.c(), img.h(), img.w());
  const bool seg = dataset_->is_segmentation();
  if (seg)
    batch.masks.resize(n, 1, dataset_->masks.h(), dataset_->masks.w());
  else
    batch.labels.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const index_t src = order_[static_cast<std::size_t>(cursor_ + i)];
    std::copy(img.sample_ptr(src), img.sample_ptr(src) + img.sample_size(),
              batch.images.sample_ptr(i));
    if (seg)
      std::copy(dataset_->masks.sample_ptr(src),
                dataset_->masks.sample_ptr(src) + dataset_->masks.sample_size(),
                batch.masks.sample_ptr(i));
    else
      batch.labels[static_cast<std::size_t>(i)] =
          dataset_->labels[static_cast<std::size_t>(src)];
  }
  cursor_ += n;
  return true;
}

void DataLoader::skip(index_t batches) {
  HYLO_CHECK(batches >= 0 && batches <= batches_per_epoch(),
             "cannot skip " << batches << " batches in an epoch of "
                            << batches_per_epoch());
  cursor_ += batches * batch_size_;
}

index_t DataLoader::batches_per_epoch() const {
  return static_cast<index_t>(order_.size()) / batch_size_;
}

}  // namespace hylo
