#include "hylo/optim/sngd.hpp"

#include "hylo/linalg/kernels.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

void Sngd::update_curvature(const std::vector<ParamBlock*>& blocks,
                            const CaptureSet& capture, CommSim* comm) {
  const index_t layers = capture.layers();
  HYLO_CHECK(layers == static_cast<index_t>(blocks.size()),
             "capture/block count mismatch");
  if (static_cast<index_t>(layers_.size()) != layers)
    layers_.resize(static_cast<std::size_t>(layers));

  double inv_total = 0.0, inv_max = 0.0;
  for (index_t l = 0; l < layers; ++l) {
    LayerState& st = layers_[static_cast<std::size_t>(l)];
    const auto& a_ranks = capture.a[static_cast<std::size_t>(l)];
    const auto& g_ranks = capture.g[static_cast<std::size_t>(l)];

    // Gather the raw per-sample matrices to every rank (step 2 of Fig. 1).
    if (comm != nullptr) {
      std::vector<const Matrix*> ap, gp;
      for (const auto& m : a_ranks) ap.push_back(&m);
      for (const auto& m : g_ranks) gp.push_back(&m);
      st.a_glob = comm->allgather_rows(ap, "comm/gather");
      st.g_glob = comm->allgather_rows(gp, "comm/gather");
    } else {
      std::vector<Matrix> ap(a_ranks.begin(), a_ranks.end());
      std::vector<Matrix> gp(g_ranks.begin(), g_ranks.end());
      st.a_glob = vstack(ap);
      st.g_glob = vstack(gp);
    }

    // Kernel inversion at global-batch dimension (step 3).
    WallTimer timer;
    const Matrix k = kernel_matrix(st.a_glob, st.g_glob);
    st.kernel_chol = damped_cholesky(k, cfg_.damping);
    st.ready = true;
    const double sec = timer.seconds();
    inv_total += sec;
    inv_max = std::max(inv_max, sec);
    if (comm != nullptr) {
      comm->profiler().registry().histogram("optim/sngd/inversion_seconds")
          .observe(sec);
      // Broadcast of the inverted kernel (step 4): (P·m)² scalars.
      comm->charge_broadcast(comm->wire_bytes(k.size()),
                             "comm/broadcast");
    }
  }
  if (comm != nullptr) {
    comm->profiler().add("comp/inversion", inv_total);
    comm->profiler().add("comp/inversion_critical", inv_max);
  }
}

Matrix Sngd::preconditioned(const Matrix& grad, index_t layer) const {
  HYLO_CHECK(layer >= 0 && layer < static_cast<index_t>(layers_.size()),
             "SNGD layer " << layer << " unknown");
  const LayerState& st = layers_[static_cast<std::size_t>(layer)];
  HYLO_CHECK(st.ready, "SNGD layer " << layer << " has no curvature yet");
  const Matrix uv = apply_jacobian(st.a_glob, st.g_glob, grad);
  const Matrix y = cholesky_solve(st.kernel_chol, uv);
  Matrix out = grad - apply_jacobian_t(st.a_glob, st.g_glob, y);
  out *= 1.0 / cfg_.damping;
  return out;
}

void Sngd::precondition_block(ParamBlock& pb, index_t layer) {
  pb.gw = preconditioned(pb.gw, layer);
}

index_t Sngd::state_bytes() const {
  index_t scalars = 0;
  for (const auto& st : layers_)
    scalars += st.a_glob.size() + st.g_glob.size() + st.kernel_chol.size();
  return scalars * static_cast<index_t>(sizeof(real_t)) + momentum_bytes();
}

}  // namespace hylo
