#include "hylo/optim/sngd.hpp"

#include "hylo/ckpt/snapshot.hpp"
#include "hylo/linalg/kernels.hpp"
#include "hylo/obs/health.hpp"
#include "hylo/par/thread_pool.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

void Sngd::update_curvature(const std::vector<ParamBlock*>& blocks,
                            const CaptureSet& capture, CommSim* comm) {
  const index_t layers = capture.layers();
  HYLO_CHECK(layers == static_cast<index_t>(blocks.size()),
             "capture/block count mismatch");
  if (static_cast<index_t>(layers_.size()) != layers)
    layers_.resize(static_cast<std::size_t>(layers));

  // Async mode: anything still in flight from the previous refresh has
  // missed its commit deadline and degrades to stale factors.
  if (comm != nullptr && comm->async()) resolve_pending(*comm, true);

  // Stage 1 (parallel across layers): assemble the global factors — bitwise
  // equal to the modeled allgather result — and invert each layer's kernel.
  // Pure compute on disjoint per-layer *candidate* state; the comm model is
  // charged afterwards, serially, so its trace is unchanged by threading,
  // and candidates commit only once their collectives landed.
  // hylo-scratch-begin(sngd_update)
  std::vector<LayerState> cand(static_cast<std::size_t>(layers));
  std::vector<double> inv_s(static_cast<std::size_t>(layers), 0.0);
  par::parallel_for(
      0, layers, 1,
      [&](index_t l0, index_t l1) {
        for (index_t l = l0; l < l1; ++l) {
          LayerState& st = cand[static_cast<std::size_t>(l)];
          const auto& a_ranks = capture.a[static_cast<std::size_t>(l)];
          const auto& g_ranks = capture.g[static_cast<std::size_t>(l)];
          st.a_glob = vstack(a_ranks);
          st.g_glob = vstack(g_ranks);

          // Kernel inversion at global-batch dimension (step 3).
          WallTimer timer;
          const Matrix k = kernel_matrix(st.a_glob, st.g_glob);
          st.kernel_chol = damped_cholesky(k, cfg_.damping);
          st.ready = true;
          inv_s[static_cast<std::size_t>(l)] = timer.seconds();
        }
      },
      "optim/sngd/layers",
      audit::Footprint([&](index_t l0, index_t l1, audit::WriteSet& ws) {
        ws.add_range(cand.data(), l0, l1);
        ws.add_range(inv_s.data(), l0, l1);
      }));

  // hylo-commit-begin(sngd_update)
  auto commit = [&](index_t l) {
    LayerState& st = layers_[static_cast<std::size_t>(l)];
    st = std::move(cand[static_cast<std::size_t>(l)]);
    st.staleness = 0;
  };
  // hylo-commit-end(sngd_update)

  // Health probes over the committed (served) state. The exact SNGD kernel
  // has no rank truncation, so energy_fraction stays NaN (not applicable).
  auto probe_all = [&] {
    if (health_ == nullptr || !health_->due()) return;
    for (index_t l = 0; l < layers; ++l) {
      const LayerState& st = layers_[static_cast<std::size_t>(l)];
      obs::LayerHealth h;
      h.layer = l;
      h.staleness = st.staleness;
      if (st.ready) {
        h.cond = obs::cond_from_cholesky(st.kernel_chol);
        h.nonfinite = obs::count_nonfinite(st.a_glob) +
                      obs::count_nonfinite(st.g_glob) +
                      obs::count_nonfinite(st.kernel_chol);
      }
      health_->report_layer(h);
    }
  };

  // Stage 2 (serial, layer order): modeled gathers of the raw per-sample
  // matrices (step 2 of Fig. 1) and broadcast of each inverted kernel
  // (step 4) — the exact charge sequence of the serial implementation. A
  // layer whose gather or broadcast is lost keeps its previous factors.
  if (comm == nullptr) {
    for (index_t l = 0; l < layers; ++l) commit(l);
    probe_all();
    return;
  }

  // Per-rank gather sizes: the latency term follows the slowest rank, the
  // wire ledger sums every rank's contribution (ranks may hold different
  // local-batch row counts).
  auto rank_bytes = [&](const std::vector<Matrix>& ranks) {
    std::vector<index_t> bytes;
    bytes.reserve(ranks.size());
    for (const auto& m : ranks) bytes.push_back(comm->wire_bytes(m.size()));
    return bytes;
  };

  if (comm->async()) {
    const double now = comm->timeline()->max_clock();
    double ainv_total = 0.0, ainv_max = 0.0;
    std::vector<Pending> fresh;
    fresh.reserve(static_cast<std::size_t>(layers));
    for (index_t l = 0; l < layers; ++l) {
      Pending p;
      p.layer = l;
      p.state = std::move(cand[static_cast<std::size_t>(l)]);
      const double sec = inv_s[static_cast<std::size_t>(l)];
      ainv_total += sec;
      ainv_max = std::max(ainv_max, sec);
      comm->profiler().registry().histogram("optim/sngd/inversion_seconds")
          .observe(sec);
      const CommEvent ga = comm->icharge_allgather(
          rank_bytes(capture.a[static_cast<std::size_t>(l)]), "comm/gather",
          now);
      apply_escaped_corruption(*comm, {&p.state.a_glob});
      const CommEvent gg = comm->icharge_allgather(
          rank_bytes(capture.g[static_cast<std::size_t>(l)]), "comm/gather",
          ga.ready_s);
      apply_escaped_corruption(*comm, {&p.state.g_glob});
      const CommEvent bc = comm->icharge_broadcast(
          comm->wire_bytes(p.state.a_glob.rows() * p.state.a_glob.rows()),
          "comm/broadcast", gg.ready_s);
      apply_escaped_corruption(*comm, {&p.state.kernel_chol});
      p.event = chain_event(chain_event(ga, gg), bc);
      fresh.push_back(std::move(p));
    }
    comm->profiler().add("comp/inversion", ainv_total);
    comm->profiler().add("comp/inversion_critical", ainv_max);
    // hylo-commit-begin(sngd_async)
    for (auto& p : fresh) pending_.push_back(std::move(p));
    // hylo-commit-end(sngd_async)
    probe_all();
    return;
  }

  double inv_total = 0.0, inv_max = 0.0;
  for (index_t l = 0; l < layers; ++l) {
    LayerState& st = cand[static_cast<std::size_t>(l)];
    const auto& a_ranks = capture.a[static_cast<std::size_t>(l)];
    const auto& g_ranks = capture.g[static_cast<std::size_t>(l)];
    const double sec = inv_s[static_cast<std::size_t>(l)];
    inv_total += sec;
    try {
      // Each charge may leave an escaped-corruption ticket for the payload
      // it modeled; consume it against the candidate that payload carried.
      comm->charge_allgather(rank_bytes(a_ranks), "comm/gather");
      apply_escaped_corruption(*comm, {&st.a_glob});
      comm->charge_allgather(rank_bytes(g_ranks), "comm/gather");
      apply_escaped_corruption(*comm, {&st.g_glob});
      inv_max = std::max(inv_max, sec);
      comm->profiler().registry().histogram("optim/sngd/inversion_seconds")
          .observe(sec);
      // Broadcast of the inverted kernel (step 4): (P·m)² scalars.
      comm->charge_broadcast(
          comm->wire_bytes(st.a_glob.rows() * st.a_glob.rows()),
          "comm/broadcast");
      apply_escaped_corruption(*comm, {&st.kernel_chol});
    } catch (const CommFailure&) {
      // hylo-commit-begin(sngd_stale)
      LayerState& old = layers_[static_cast<std::size_t>(l)];
      note_stale_refresh(*comm, "sngd", l, old.ready);
      ++old.staleness;
      // hylo-commit-end(sngd_stale)
      continue;
    }
    if (!guard_commit(*comm, "sngd", l,
                      {&st.a_glob, &st.g_glob, &st.kernel_chol},
                      {&layers_[static_cast<std::size_t>(l)].a_glob,
                       &layers_[static_cast<std::size_t>(l)].g_glob,
                       &layers_[static_cast<std::size_t>(l)].kernel_chol})) {
      // hylo-commit-begin(sngd_guard)
      LayerState& old = layers_[static_cast<std::size_t>(l)];
      note_stale_refresh(*comm, "sngd", l, old.ready);
      ++old.staleness;
      // hylo-commit-end(sngd_guard)
      continue;
    }
    commit(l);
  }
  comm->profiler().add("comp/inversion", inv_total);
  comm->profiler().add("comp/inversion_critical", inv_max);
  probe_all();
  // hylo-scratch-end(sngd_update)
}

void Sngd::resolve_pending(CommSim& comm, bool deadline) {
  if (pending_.empty()) return;
  const double now = comm.timeline()->max_clock();
  sort_by_completion(pending_);
  std::vector<Pending> keep;
  for (auto& p : pending_) {
    const std::size_t l = static_cast<std::size_t>(p.layer);
    if (l >= layers_.size()) continue;  // network shrank; refresh is moot
    LayerState& st = layers_[l];
    if (!p.event.failed && p.event.ready_s <= now) {
      if (guard_commit(comm, "sngd", p.layer,
                       {&p.state.a_glob, &p.state.g_glob,
                        &p.state.kernel_chol},
                       {&st.a_glob, &st.g_glob, &st.kernel_chol})) {
        st = std::move(p.state);
        st.staleness = 0;
      } else {
        note_stale_refresh(comm, "sngd", p.layer, st.ready);
        ++st.staleness;
      }
    } else if (p.event.failed || deadline) {
      note_stale_refresh(comm, "sngd", p.layer, st.ready);
      ++st.staleness;
    } else {
      keep.push_back(std::move(p));
    }
  }
  pending_.swap(keep);
}

void Sngd::poll_async(CommSim& comm) { resolve_pending(comm, false); }

Matrix Sngd::preconditioned(const Matrix& grad, index_t layer) const {
  HYLO_CHECK(layer >= 0 && layer < static_cast<index_t>(layers_.size()),
             "SNGD layer " << layer << " unknown");
  const LayerState& st = layers_[static_cast<std::size_t>(layer)];
  HYLO_CHECK(st.ready, "SNGD layer " << layer << " has no curvature yet");
  const Matrix uv = apply_jacobian(st.a_glob, st.g_glob, grad);
  const Matrix y = cholesky_solve(st.kernel_chol, uv);
  Matrix out = grad - apply_jacobian_t(st.a_glob, st.g_glob, y);
  out *= 1.0 / cfg_.damping;
  return out;
}

void Sngd::precondition_block(ParamBlock& pb, index_t layer) {
  pb.gw = preconditioned(pb.gw, layer);
}

index_t Sngd::state_bytes() const {
  index_t scalars = 0;
  for (const auto& st : layers_)
    scalars += st.a_glob.size() + st.g_glob.size() + st.kernel_chol.size();
  return scalars * static_cast<index_t>(sizeof(real_t)) + momentum_bytes();
}

void Sngd::save_state(Network& net, ckpt::ByteWriter& w) const {
  Optimizer::save_state(net, w);
  w.u64(layers_.size());
  for (const auto& st : layers_) {
    w.matrix(st.a_glob);
    w.matrix(st.g_glob);
    w.matrix(st.kernel_chol);
    w.b(st.ready);
    w.i64(st.staleness);
  }
  // In-flight async refreshes (see DESIGN.md §15): snapshots taken with
  // gathers on the wire must resume bitwise.
  w.u64(pending_.size());
  for (const auto& p : pending_) {
    w.i64(p.layer);
    write_event(w, p.event);
    w.matrix(p.state.a_glob);
    w.matrix(p.state.g_glob);
    w.matrix(p.state.kernel_chol);
    w.b(p.state.ready);
    w.i64(p.state.staleness);
  }
}

void Sngd::load_state(Network& net, ckpt::ByteReader& r) {
  Optimizer::load_state(net, r);
  layers_.assign(r.u64(), LayerState{});
  for (auto& st : layers_) {
    st.a_glob = r.matrix();
    st.g_glob = r.matrix();
    st.kernel_chol = r.matrix();
    st.ready = r.b();
    st.staleness = r.i64();
  }
  pending_.assign(r.u64(), Pending{});
  for (auto& p : pending_) {
    p.layer = r.i64();
    p.event = read_event(r);
    p.state.a_glob = r.matrix();
    p.state.g_glob = r.matrix();
    p.state.kernel_chol = r.matrix();
    p.state.ready = r.b();
    p.state.staleness = r.i64();
  }
}

}  // namespace hylo
