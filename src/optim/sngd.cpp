#include "hylo/optim/sngd.hpp"

#include "hylo/ckpt/snapshot.hpp"
#include "hylo/linalg/kernels.hpp"
#include "hylo/obs/health.hpp"
#include "hylo/par/thread_pool.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

void Sngd::update_curvature(const std::vector<ParamBlock*>& blocks,
                            const CaptureSet& capture, CommSim* comm) {
  const index_t layers = capture.layers();
  HYLO_CHECK(layers == static_cast<index_t>(blocks.size()),
             "capture/block count mismatch");
  if (static_cast<index_t>(layers_.size()) != layers)
    layers_.resize(static_cast<std::size_t>(layers));

  // Stage 1 (parallel across layers): assemble the global factors — bitwise
  // equal to the modeled allgather result — and invert each layer's kernel.
  // Pure compute on disjoint per-layer *candidate* state; the comm model is
  // charged afterwards, serially, so its trace is unchanged by threading,
  // and candidates commit only once their collectives landed.
  // hylo-scratch-begin(sngd_update)
  std::vector<LayerState> cand(static_cast<std::size_t>(layers));
  std::vector<double> inv_s(static_cast<std::size_t>(layers), 0.0);
  par::parallel_for(
      0, layers, 1,
      [&](index_t l0, index_t l1) {
        for (index_t l = l0; l < l1; ++l) {
          LayerState& st = cand[static_cast<std::size_t>(l)];
          const auto& a_ranks = capture.a[static_cast<std::size_t>(l)];
          const auto& g_ranks = capture.g[static_cast<std::size_t>(l)];
          st.a_glob = vstack(a_ranks);
          st.g_glob = vstack(g_ranks);

          // Kernel inversion at global-batch dimension (step 3).
          WallTimer timer;
          const Matrix k = kernel_matrix(st.a_glob, st.g_glob);
          st.kernel_chol = damped_cholesky(k, cfg_.damping);
          st.ready = true;
          inv_s[static_cast<std::size_t>(l)] = timer.seconds();
        }
      },
      "optim/sngd/layers",
      audit::Footprint([&](index_t l0, index_t l1, audit::WriteSet& ws) {
        ws.add_range(cand.data(), l0, l1);
        ws.add_range(inv_s.data(), l0, l1);
      }));

  // hylo-commit-begin(sngd_update)
  auto commit = [&](index_t l) {
    LayerState& st = layers_[static_cast<std::size_t>(l)];
    st = std::move(cand[static_cast<std::size_t>(l)]);
    st.staleness = 0;
  };
  // hylo-commit-end(sngd_update)

  // Health probes over the committed (served) state. The exact SNGD kernel
  // has no rank truncation, so energy_fraction stays NaN (not applicable).
  auto probe_all = [&] {
    if (health_ == nullptr || !health_->due()) return;
    for (index_t l = 0; l < layers; ++l) {
      const LayerState& st = layers_[static_cast<std::size_t>(l)];
      obs::LayerHealth h;
      h.layer = l;
      h.staleness = st.staleness;
      if (st.ready) {
        h.cond = obs::cond_from_cholesky(st.kernel_chol);
        h.nonfinite = obs::count_nonfinite(st.a_glob) +
                      obs::count_nonfinite(st.g_glob) +
                      obs::count_nonfinite(st.kernel_chol);
      }
      health_->report_layer(h);
    }
  };

  // Stage 2 (serial, layer order): modeled gathers of the raw per-sample
  // matrices (step 2 of Fig. 1) and broadcast of each inverted kernel
  // (step 4) — the exact charge sequence of the serial implementation. A
  // layer whose gather or broadcast is lost keeps its previous factors.
  if (comm == nullptr) {
    for (index_t l = 0; l < layers; ++l) commit(l);
    probe_all();
    return;
  }
  double inv_total = 0.0, inv_max = 0.0;
  for (index_t l = 0; l < layers; ++l) {
    const LayerState& st = cand[static_cast<std::size_t>(l)];
    const auto& a_ranks = capture.a[static_cast<std::size_t>(l)];
    const auto& g_ranks = capture.g[static_cast<std::size_t>(l)];
    index_t a_bytes = 0, g_bytes = 0;
    for (const auto& m : a_ranks)
      a_bytes = std::max(a_bytes, comm->wire_bytes(m.size()));
    for (const auto& m : g_ranks)
      g_bytes = std::max(g_bytes, comm->wire_bytes(m.size()));
    const double sec = inv_s[static_cast<std::size_t>(l)];
    inv_total += sec;
    try {
      comm->charge_allgather(a_bytes, "comm/gather");
      comm->charge_allgather(g_bytes, "comm/gather");
      inv_max = std::max(inv_max, sec);
      comm->profiler().registry().histogram("optim/sngd/inversion_seconds")
          .observe(sec);
      // Broadcast of the inverted kernel (step 4): (P·m)² scalars.
      comm->charge_broadcast(
          comm->wire_bytes(st.a_glob.rows() * st.a_glob.rows()),
          "comm/broadcast");
    } catch (const CommFailure&) {
      // hylo-commit-begin(sngd_stale)
      LayerState& old = layers_[static_cast<std::size_t>(l)];
      note_stale_refresh(*comm, "sngd", l, old.ready);
      ++old.staleness;
      // hylo-commit-end(sngd_stale)
      continue;
    }
    commit(l);
  }
  comm->profiler().add("comp/inversion", inv_total);
  comm->profiler().add("comp/inversion_critical", inv_max);
  probe_all();
  // hylo-scratch-end(sngd_update)
}

Matrix Sngd::preconditioned(const Matrix& grad, index_t layer) const {
  HYLO_CHECK(layer >= 0 && layer < static_cast<index_t>(layers_.size()),
             "SNGD layer " << layer << " unknown");
  const LayerState& st = layers_[static_cast<std::size_t>(layer)];
  HYLO_CHECK(st.ready, "SNGD layer " << layer << " has no curvature yet");
  const Matrix uv = apply_jacobian(st.a_glob, st.g_glob, grad);
  const Matrix y = cholesky_solve(st.kernel_chol, uv);
  Matrix out = grad - apply_jacobian_t(st.a_glob, st.g_glob, y);
  out *= 1.0 / cfg_.damping;
  return out;
}

void Sngd::precondition_block(ParamBlock& pb, index_t layer) {
  pb.gw = preconditioned(pb.gw, layer);
}

index_t Sngd::state_bytes() const {
  index_t scalars = 0;
  for (const auto& st : layers_)
    scalars += st.a_glob.size() + st.g_glob.size() + st.kernel_chol.size();
  return scalars * static_cast<index_t>(sizeof(real_t)) + momentum_bytes();
}

void Sngd::save_state(Network& net, ckpt::ByteWriter& w) const {
  Optimizer::save_state(net, w);
  w.u64(layers_.size());
  for (const auto& st : layers_) {
    w.matrix(st.a_glob);
    w.matrix(st.g_glob);
    w.matrix(st.kernel_chol);
    w.b(st.ready);
    w.i64(st.staleness);
  }
}

void Sngd::load_state(Network& net, ckpt::ByteReader& r) {
  Optimizer::load_state(net, r);
  layers_.assign(r.u64(), LayerState{});
  for (auto& st : layers_) {
    st.a_glob = r.matrix();
    st.g_glob = r.matrix();
    st.kernel_chol = r.matrix();
    st.ready = r.b();
    st.staleness = r.i64();
  }
}

}  // namespace hylo
