#include "hylo/optim/kfac.hpp"

#include <cmath>

#include "hylo/ckpt/snapshot.hpp"
#include "hylo/linalg/eigh.hpp"
#include "hylo/obs/health.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

namespace {
// π-corrected Tikhonov split of the damping between the two Kronecker
// factors (Martens & Grosse §6.3): π = sqrt((tr A / dim A)/(tr G / dim G)).
real_t pi_correction(const Matrix& a, const Matrix& g) {
  const real_t ta = trace(a) / static_cast<real_t>(a.rows());
  const real_t tg = trace(g) / static_cast<real_t>(g.rows());
  if (!(ta > 0.0) || !(tg > 0.0)) return 1.0;
  return std::sqrt(ta / tg);
}

index_t wire_bytes(const CommSim& comm, index_t scalars) {
  return comm.wire_bytes(scalars);
}
}  // namespace

std::vector<std::pair<Matrix, Matrix>> KFac::factor_candidates(
    const std::vector<ParamBlock*>& blocks, const CaptureSet& capture,
    CommSim* comm) {
  const index_t layers = capture.layers();
  HYLO_CHECK(layers == static_cast<index_t>(blocks.size()),
             "capture/block count mismatch");
  if (static_cast<index_t>(layers_.size()) != layers) layers_.resize(static_cast<std::size_t>(layers));

  WallTimer timer;
  std::vector<std::pair<Matrix, Matrix>> cand(static_cast<std::size_t>(layers));
  for (index_t l = 0; l < layers; ++l) {
    const auto& a_ranks = capture.a[static_cast<std::size_t>(l)];
    const auto& g_ranks = capture.g[static_cast<std::size_t>(l)];
    index_t m_total = 0;
    Matrix a_new, g_new;
    for (std::size_t r = 0; r < a_ranks.size(); ++r) {
      m_total += a_ranks[r].rows();
      if (r == 0) {
        a_new = gram_tn(a_ranks[r]);
        g_new = gram_tn(g_ranks[r]);
      } else {
        a_new += gram_tn(a_ranks[r]);
        g_new += gram_tn(g_ranks[r]);
      }
    }
    HYLO_CHECK(m_total > 0, "empty capture for layer " << l);
    a_new *= 1.0 / static_cast<real_t>(m_total);
    g_new *= 1.0 / static_cast<real_t>(m_total);

    const LayerState& st = layers_[static_cast<std::size_t>(l)];
    if (!st.a_factor.empty()) {
      Matrix a_run = st.a_factor;
      a_run *= cfg_.stat_decay;
      axpy(a_run, a_new, 1.0 - cfg_.stat_decay);
      a_new = std::move(a_run);
      Matrix g_run = st.g_factor;
      g_run *= cfg_.stat_decay;
      axpy(g_run, g_new, 1.0 - cfg_.stat_decay);
      g_new = std::move(g_run);
    }
    cand[static_cast<std::size_t>(l)] = {std::move(a_new), std::move(g_new)};
  }
  if (comm != nullptr)
    comm->profiler().add("comp/factorization", timer.seconds());
  return cand;
}

std::vector<char> KFac::refresh_factors(const std::vector<ParamBlock*>& blocks,
                                        const CaptureSet& capture,
                                        CommSim* comm) {
  // Compute the merged running factors into candidates first; each layer's
  // candidate replaces the running state only once its factor allreduce
  // landed, so a lost collective keeps the previous statistics.
  // hylo-scratch-begin(kfac_factors)
  std::vector<std::pair<Matrix, Matrix>> cand =
      factor_candidates(blocks, capture, comm);
  const index_t layers = static_cast<index_t>(cand.size());
  std::vector<char> degraded(static_cast<std::size_t>(layers), 0);
  // refresh_factors is shared with EKFac, so reject accounting follows the
  // concrete method.
  const char* method = name() == "EKFAC" ? "ekfac" : "kfac";
  if (comm != nullptr) {
    for (index_t l = 0; l < layers; ++l) {
      auto& [a_new, g_new] = cand[static_cast<std::size_t>(l)];
      try {
        comm->charge_allreduce(wire_bytes(*comm, a_new.size() + g_new.size()),
                               "comm/gather");
        apply_escaped_corruption(*comm, {&a_new, &g_new});
      } catch (const CommFailure&) {
        degraded[static_cast<std::size_t>(l)] = 1;
      }
      if (!degraded[static_cast<std::size_t>(l)] &&
          !guard_commit(*comm, method, l, {&a_new, &g_new},
                        {&layers_[static_cast<std::size_t>(l)].a_factor,
                         &layers_[static_cast<std::size_t>(l)].g_factor}))
        degraded[static_cast<std::size_t>(l)] = 1;
    }
  }
  // hylo-commit-begin(kfac_factors)
  for (index_t l = 0; l < layers; ++l) {
    if (degraded[static_cast<std::size_t>(l)]) continue;
    LayerState& st = layers_[static_cast<std::size_t>(l)];
    st.a_factor = std::move(cand[static_cast<std::size_t>(l)].first);
    st.g_factor = std::move(cand[static_cast<std::size_t>(l)].second);
  }
  // hylo-commit-end(kfac_factors)
  // hylo-scratch-end(kfac_factors)
  return degraded;
}

void KFac::update_curvature(const std::vector<ParamBlock*>& blocks,
                            const CaptureSet& capture, CommSim* comm) {
  if (comm != nullptr && comm->async()) {
    async_refresh(blocks, capture, *comm);
    return;
  }
  std::vector<char> degraded = refresh_factors(blocks, capture, comm);
  // Per-layer timing: the total is the cluster-wide inversion work (layers
  // are distributed over owners), the max single layer is the critical path
  // when P exceeds the layer count. Inverses are staged per layer and
  // committed only after the layer's broadcast landed.
  // hylo-scratch-begin(kfac_update)
  double inv_total = 0.0, inv_max = 0.0;
  std::vector<std::pair<Matrix, Matrix>> inv(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const LayerState& st = layers_[l];
    WallTimer timer;
    const real_t pi = pi_correction(st.a_factor, st.g_factor);
    const real_t root = std::sqrt(cfg_.damping);
    inv[l].first = damped_spd_inverse(st.a_factor, pi * root);
    inv[l].second = damped_spd_inverse(st.g_factor, root / pi);
    const double sec = timer.seconds();
    inv_total += sec;
    inv_max = std::max(inv_max, sec);
    if (comm != nullptr)
      comm->profiler().registry().histogram("optim/kfac/inversion_seconds")
          .observe(sec);
  }
  if (comm != nullptr) {
    comm->profiler().add("comp/inversion", inv_total);
    comm->profiler().add("comp/inversion_critical", inv_max);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      try {
        comm->charge_broadcast(
            wire_bytes(*comm, inv[l].first.size() + inv[l].second.size()),
            "comm/broadcast");
        apply_escaped_corruption(*comm, {&inv[l].first, &inv[l].second});
      } catch (const CommFailure&) {
        degraded[l] = 1;
      }
      if (!degraded[l] &&
          !guard_commit(*comm, "kfac", static_cast<index_t>(l),
                        {&inv[l].first, &inv[l].second},
                        {&layers_[l].a_inv, &layers_[l].g_inv}))
        degraded[l] = 1;
    }
  }
  // hylo-commit-begin(kfac_update)
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    LayerState& st = layers_[l];
    if (degraded[l]) {
      if (comm != nullptr)
        note_stale_refresh(*comm, "kfac", static_cast<index_t>(l), st.ready);
      ++st.staleness;
      continue;
    }
    st.a_inv = std::move(inv[l].first);
    st.g_inv = std::move(inv[l].second);
    st.ready = true;
    st.staleness = 0;
  }
  // hylo-commit-end(kfac_update)
  // hylo-scratch-end(kfac_update)

  probe_health();
}

// Health probes over the served Kronecker factor pairs: κ∞ estimates come
// free from the factor/inverse pairs already held. No rank truncation, so
// energy_fraction stays NaN.
void KFac::probe_health() {
  if (health_ == nullptr || !health_->due()) return;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const LayerState& st = layers_[l];
    obs::LayerHealth h;
    h.layer = static_cast<index_t>(l);
    h.staleness = st.staleness;
    if (st.ready) {
      h.cond_a = obs::cond_from_pair(st.a_factor, st.a_inv);
      h.cond_g = obs::cond_from_pair(st.g_factor, st.g_inv);
      h.nonfinite = obs::count_nonfinite(st.a_inv) +
                    obs::count_nonfinite(st.g_inv);
    }
    health_->report_layer(h);
  }
}

void KFac::async_refresh(const std::vector<ParamBlock*>& blocks,
                         const CaptureSet& capture, CommSim& comm) {
  // Commit deadline for the previous refresh round: whatever is still in
  // flight now degrades to stale factors, exactly like a lost lockstep
  // collective.
  resolve_pending(comm, /*deadline=*/true);

  // Full candidate state is computed immediately (the data already lives in
  // shared memory); only the *commit* waits on the modeled
  // allreduce→broadcast chain.
  // hylo-scratch-begin(kfac_async)
  std::vector<std::pair<Matrix, Matrix>> cand =
      factor_candidates(blocks, capture, &comm);
  const double now = comm.timeline()->max_clock();
  double inv_total = 0.0, inv_max = 0.0;
  std::vector<Pending> fresh;
  fresh.reserve(cand.size());
  for (std::size_t l = 0; l < cand.size(); ++l) {
    Pending p;
    p.layer = static_cast<index_t>(l);
    p.state.a_factor = std::move(cand[l].first);
    p.state.g_factor = std::move(cand[l].second);
    WallTimer timer;
    const real_t pi = pi_correction(p.state.a_factor, p.state.g_factor);
    const real_t root = std::sqrt(cfg_.damping);
    p.state.a_inv = damped_spd_inverse(p.state.a_factor, pi * root);
    p.state.g_inv = damped_spd_inverse(p.state.g_factor, root / pi);
    p.state.ready = true;
    const double sec = timer.seconds();
    inv_total += sec;
    inv_max = std::max(inv_max, sec);
    comm.profiler().registry().histogram("optim/kfac/inversion_seconds")
        .observe(sec);
    const CommEvent ar = comm.icharge_allreduce(
        wire_bytes(comm, p.state.a_factor.size() + p.state.g_factor.size()),
        "comm/gather", now);
    apply_escaped_corruption(comm, {&p.state.a_factor, &p.state.g_factor});
    const CommEvent bc = comm.icharge_broadcast(
        wire_bytes(comm, p.state.a_inv.size() + p.state.g_inv.size()),
        "comm/broadcast", ar.ready_s);
    apply_escaped_corruption(comm, {&p.state.a_inv, &p.state.g_inv});
    p.event = chain_event(ar, bc);
    fresh.push_back(std::move(p));
  }
  comm.profiler().add("comp/inversion", inv_total);
  comm.profiler().add("comp/inversion_critical", inv_max);
  // hylo-commit-begin(kfac_async)
  for (auto& p : fresh) pending_.push_back(std::move(p));
  // hylo-commit-end(kfac_async)
  // hylo-scratch-end(kfac_async)
  probe_health();
}

void KFac::resolve_pending(CommSim& comm, bool deadline) {
  if (pending_.empty()) return;
  const double now = comm.timeline()->max_clock();
  sort_by_completion(pending_);
  std::vector<Pending> keep;
  for (auto& p : pending_) {
    const std::size_t l = static_cast<std::size_t>(p.layer);
    if (l >= layers_.size()) continue;  // network shrank; refresh is moot
    LayerState& st = layers_[l];
    if (!p.event.failed && p.event.ready_s <= now) {
      if (guard_commit(comm, "kfac", p.layer,
                       {&p.state.a_factor, &p.state.g_factor,
                        &p.state.a_inv, &p.state.g_inv},
                       {&st.a_factor, &st.g_factor, &st.a_inv, &st.g_inv})) {
        st = std::move(p.state);
        st.staleness = 0;
      } else {
        note_stale_refresh(comm, "kfac", p.layer, st.ready);
        ++st.staleness;
      }
    } else if (p.event.failed || deadline) {
      note_stale_refresh(comm, "kfac", p.layer, st.ready);
      ++st.staleness;
    } else {
      keep.push_back(std::move(p));
    }
  }
  pending_.swap(keep);
}

void KFac::poll_async(CommSim& comm) { resolve_pending(comm, false); }

void KFac::precondition_block(ParamBlock& pb, index_t layer) {
  const LayerState& st = layers_[static_cast<std::size_t>(layer)];
  pb.gw = matmul(st.g_inv, matmul(pb.gw, st.a_inv));
}

index_t KFac::state_bytes() const {
  index_t scalars = 0;
  for (const auto& st : layers_)
    scalars += st.a_factor.size() + st.g_factor.size() + st.a_inv.size() +
               st.g_inv.size();
  return scalars * static_cast<index_t>(sizeof(real_t)) + momentum_bytes();
}

// ------------------------------------------------------------- EKFac ----

void EKFac::update_curvature(const std::vector<ParamBlock*>& blocks,
                             const CaptureSet& capture, CommSim* comm) {
  if (comm != nullptr && comm->async()) {
    async_refresh(blocks, capture, *comm);
    return;
  }
  std::vector<char> degraded = refresh_factors(blocks, capture, comm);
  const index_t layers = capture.layers();
  if (static_cast<index_t>(eig_.size()) != layers) eig_.resize(static_cast<std::size_t>(layers));

  // Candidate eigenbases + merged scalings, committed per layer only after
  // that layer's broadcast landed.
  // hylo-scratch-begin(ekfac_update)
  double inv_total = 0.0, inv_max = 0.0;
  std::vector<EigState> cand(static_cast<std::size_t>(layers));
  for (index_t l = 0; l < layers; ++l) {
    WallTimer timer;
    const LayerState& kst = layers_[static_cast<std::size_t>(l)];
    // A layer whose factor allreduce has *never* landed (degraded on the
    // first refresh) has empty running factors: eigh would hand back a 0x0
    // basis and the capture projection below would die on a gemm shape
    // mismatch. Skip the rebuild — the commit loop degrades it to stale.
    if (kst.a_factor.size() == 0 || kst.g_factor.size() == 0) {
      degraded[static_cast<std::size_t>(l)] = 1;
      continue;
    }
    cand[static_cast<std::size_t>(l)] =
        build_eig(kst.a_factor, kst.g_factor, capture, l);
    const double sec = timer.seconds();
    inv_total += sec;
    inv_max = std::max(inv_max, sec);
    if (comm != nullptr)
      comm->profiler().registry().histogram("optim/ekfac/inversion_seconds")
          .observe(sec);
  }
  if (comm != nullptr) {
    comm->profiler().add("comp/inversion", inv_total);
    comm->profiler().add("comp/inversion_critical", inv_max);
    for (index_t l = 0; l < layers; ++l) {
      EigState& est = cand[static_cast<std::size_t>(l)];
      try {
        comm->charge_broadcast(
            wire_bytes(*comm, est.v_a.size() + est.v_g.size() + est.scaling.size()),
            "comm/broadcast");
        apply_escaped_corruption(*comm,
                                 {&est.v_a, &est.v_g, &est.scaling});
      } catch (const CommFailure&) {
        degraded[static_cast<std::size_t>(l)] = 1;
      }
      if (!degraded[static_cast<std::size_t>(l)] &&
          !guard_commit(*comm, "ekfac", l,
                        {&est.v_a, &est.v_g, &est.scaling},
                        {&eig_[static_cast<std::size_t>(l)].v_a,
                         &eig_[static_cast<std::size_t>(l)].v_g,
                         &eig_[static_cast<std::size_t>(l)].scaling}))
        degraded[static_cast<std::size_t>(l)] = 1;
    }
  }
  // hylo-commit-begin(ekfac_update)
  for (index_t l = 0; l < layers; ++l) {
    EigState& est = eig_[static_cast<std::size_t>(l)];
    if (degraded[static_cast<std::size_t>(l)]) {
      if (comm != nullptr)
        note_stale_refresh(*comm, "ekfac", l, est.ready);
      ++est.staleness;
      continue;
    }
    est = std::move(cand[static_cast<std::size_t>(l)]);
    est.staleness = 0;
  }
  // hylo-commit-end(ekfac_update)
  // hylo-scratch-end(ekfac_update)

  probe_eig_health();
}

EKFac::EigState EKFac::build_eig(const Matrix& a_factor,
                                 const Matrix& g_factor,
                                 const CaptureSet& capture, index_t l) const {
  EigState est;
  est.v_a = eigh(a_factor).eigenvectors;
  est.v_g = eigh(g_factor).eigenvectors;

  // Per-entry second moments in the eigenbasis:
  // s_{oj} = E_i[(V_gᵀ g_i)_o² (a_iᵀ V_a)_j²].
  const auto& a_ranks = capture.a[static_cast<std::size_t>(l)];
  const auto& g_ranks = capture.g[static_cast<std::size_t>(l)];
  Matrix s_new(est.v_g.cols(), est.v_a.cols());
  index_t m_total = 0;
  for (std::size_t r = 0; r < a_ranks.size(); ++r) {
    Matrix pa = matmul(a_ranks[r], est.v_a);  // m x (d_in+1)
    Matrix pg = matmul(g_ranks[r], est.v_g);  // m x d_out
    hadamard_inplace(pa, pa);
    hadamard_inplace(pg, pg);
    gemm_tn(pg, pa, s_new, 1.0, 1.0);
    m_total += a_ranks[r].rows();
  }
  s_new *= 1.0 / static_cast<real_t>(m_total);
  const EigState& prev = eig_[static_cast<std::size_t>(l)];
  if (prev.scaling.empty()) {
    est.scaling = std::move(s_new);
  } else {
    est.scaling = prev.scaling;
    est.scaling *= cfg_.stat_decay;
    axpy(est.scaling, s_new, 1.0 - cfg_.stat_decay);
  }
  est.ready = true;
  return est;
}

// Health probes: the damped eigenbasis scalings are exactly the spectrum
// the preconditioner divides by, so their spread is the served condition
// number — no extra factorization work.
void EKFac::probe_eig_health() {
  if (health_ == nullptr || !health_->due()) return;
  for (std::size_t l = 0; l < eig_.size(); ++l) {
    const EigState& est = eig_[l];
    obs::LayerHealth h;
    h.layer = static_cast<index_t>(l);
    h.staleness = est.staleness;
    if (est.ready && !est.scaling.empty()) {
      real_t lo = est.scaling[0], hi = est.scaling[0];
      for (index_t i = 0; i < est.scaling.size(); ++i) {
        lo = std::min(lo, est.scaling[i]);
        hi = std::max(hi, est.scaling[i]);
      }
      h.cond = (hi + cfg_.damping) / (lo + cfg_.damping);
      h.nonfinite = obs::count_nonfinite(est.v_a) +
                    obs::count_nonfinite(est.v_g) +
                    obs::count_nonfinite(est.scaling);
    }
    health_->report_layer(h);
  }
}

void EKFac::async_refresh(const std::vector<ParamBlock*>& blocks,
                          const CaptureSet& capture, CommSim& comm) {
  resolve_eig_pending(comm, /*deadline=*/true);
  const index_t layers = capture.layers();
  if (static_cast<index_t>(eig_.size()) != layers) eig_.resize(static_cast<std::size_t>(layers));

  // One chain per layer covers factors + eigenbasis: candidate factors are
  // built now, the eigenbasis is computed from those *candidates* (the sync
  // path reads the just-committed factors — same values when the refresh
  // lands), and the whole bundle commits on the chain's completion.
  // hylo-scratch-begin(ekfac_async)
  std::vector<std::pair<Matrix, Matrix>> cand =
      factor_candidates(blocks, capture, &comm);
  const double now = comm.timeline()->max_clock();
  double inv_total = 0.0, inv_max = 0.0;
  std::vector<EigPending> fresh;
  fresh.reserve(cand.size());
  for (index_t l = 0; l < layers; ++l) {
    EigPending p;
    p.layer = l;
    p.a_factor = std::move(cand[static_cast<std::size_t>(l)].first);
    p.g_factor = std::move(cand[static_cast<std::size_t>(l)].second);
    WallTimer timer;
    p.eig = build_eig(p.a_factor, p.g_factor, capture, l);
    const double sec = timer.seconds();
    inv_total += sec;
    inv_max = std::max(inv_max, sec);
    comm.profiler().registry().histogram("optim/ekfac/inversion_seconds")
        .observe(sec);
    const CommEvent ar = comm.icharge_allreduce(
        wire_bytes(comm, p.a_factor.size() + p.g_factor.size()),
        "comm/gather", now);
    apply_escaped_corruption(comm, {&p.a_factor, &p.g_factor});
    const CommEvent bc = comm.icharge_broadcast(
        wire_bytes(comm, p.eig.v_a.size() + p.eig.v_g.size() +
                             p.eig.scaling.size()),
        "comm/broadcast", ar.ready_s);
    apply_escaped_corruption(comm,
                             {&p.eig.v_a, &p.eig.v_g, &p.eig.scaling});
    p.event = chain_event(ar, bc);
    fresh.push_back(std::move(p));
  }
  comm.profiler().add("comp/inversion", inv_total);
  comm.profiler().add("comp/inversion_critical", inv_max);
  // hylo-commit-begin(ekfac_async)
  for (auto& p : fresh) epending_.push_back(std::move(p));
  // hylo-commit-end(ekfac_async)
  // hylo-scratch-end(ekfac_async)
  probe_eig_health();
}

void EKFac::resolve_eig_pending(CommSim& comm, bool deadline) {
  if (epending_.empty()) return;
  const double now = comm.timeline()->max_clock();
  sort_by_completion(epending_);
  std::vector<EigPending> keep;
  for (auto& p : epending_) {
    const std::size_t l = static_cast<std::size_t>(p.layer);
    if (l >= eig_.size() || l >= layers_.size()) continue;
    EigState& est = eig_[l];
    if (!p.event.failed && p.event.ready_s <= now) {
      if (guard_commit(comm, "ekfac", p.layer,
                       {&p.a_factor, &p.g_factor, &p.eig.v_a, &p.eig.v_g,
                        &p.eig.scaling},
                       {&layers_[l].a_factor, &layers_[l].g_factor,
                        &est.v_a, &est.v_g, &est.scaling})) {
        layers_[l].a_factor = std::move(p.a_factor);
        layers_[l].g_factor = std::move(p.g_factor);
        est = std::move(p.eig);
        est.staleness = 0;
      } else {
        note_stale_refresh(comm, "ekfac", p.layer, est.ready);
        ++est.staleness;
      }
    } else if (p.event.failed || deadline) {
      note_stale_refresh(comm, "ekfac", p.layer, est.ready);
      ++est.staleness;
    } else {
      keep.push_back(std::move(p));
    }
  }
  epending_.swap(keep);
}

void EKFac::poll_async(CommSim& comm) { resolve_eig_pending(comm, false); }

void EKFac::precondition_block(ParamBlock& pb, index_t layer) {
  const EigState& est = eig_[static_cast<std::size_t>(layer)];
  // Project, rescale by the damped second moments, project back.
  Matrix t = matmul(matmul_tn(est.v_g, pb.gw), est.v_a);
  for (index_t i = 0; i < t.rows(); ++i)
    for (index_t j = 0; j < t.cols(); ++j)
      t(i, j) /= est.scaling(i, j) + cfg_.damping;
  pb.gw = matmul_nt(matmul(est.v_g, t), est.v_a);
}

index_t EKFac::state_bytes() const {
  index_t scalars = 0;
  for (const auto& est : eig_)
    scalars += est.v_a.size() + est.v_g.size() + est.scaling.size();
  for (const auto& st : layers_)
    scalars += st.a_factor.size() + st.g_factor.size();
  return scalars * static_cast<index_t>(sizeof(real_t)) + momentum_bytes();
}

// ------------------------------------------------------------- KBfgs ----

std::vector<KBfgs::LayerState> KBfgs::build_candidates(
    const CaptureSet& capture) {
  const index_t layers = capture.layers();
  std::vector<LayerState> cand(static_cast<std::size_t>(layers));
  for (index_t l = 0; l < layers; ++l) {
    const auto& a_ranks = capture.a[static_cast<std::size_t>(l)];
    const auto& g_ranks = capture.g[static_cast<std::size_t>(l)];
    LayerState& st = cand[static_cast<std::size_t>(l)];
    st = layers_[static_cast<std::size_t>(l)];
    index_t m_total = 0;
    Matrix a_new, g_new;
    Matrix g_mean(g_ranks[0].cols(), 1);
    for (std::size_t r = 0; r < a_ranks.size(); ++r) {
      m_total += a_ranks[r].rows();
      if (r == 0) {
        a_new = gram_tn(a_ranks[r]);
        g_new = gram_tn(g_ranks[r]);
      } else {
        a_new += gram_tn(a_ranks[r]);
        g_new += gram_tn(g_ranks[r]);
      }
      for (index_t i = 0; i < g_ranks[r].rows(); ++i)
        for (index_t o = 0; o < g_ranks[r].cols(); ++o)
          g_mean[o] += g_ranks[r](i, o);
    }
    a_new *= 1.0 / static_cast<real_t>(m_total);
    g_new *= 1.0 / static_cast<real_t>(m_total);
    g_mean *= 1.0 / static_cast<real_t>(m_total);

    if (st.a_factor.empty()) {
      st.a_factor = std::move(a_new);
      st.g_factor = std::move(g_new);
    } else {
      st.a_factor *= cfg_.stat_decay;
      axpy(st.a_factor, a_new, 1.0 - cfg_.stat_decay);
      st.g_factor *= cfg_.stat_decay;
      axpy(st.g_factor, g_new, 1.0 - cfg_.stat_decay);
    }
    st.a_inv = damped_spd_inverse(st.a_factor, cfg_.damping);

    // (L-)BFGS pair from the change in the mean per-sample gradient, with
    // curvature synthesized through the damped G factor: y = (C_g + γI)s.
    if (!st.g_mean_prev.empty()) {
      const Matrix s = g_mean - st.g_mean_prev;
      const real_t s_norm = frobenius_norm(s);
      if (s_norm > 1e-12) {
        Matrix y = matmul(st.g_factor, s);
        axpy(y, s, cfg_.damping);
        const real_t sy = dot(s, y);
        if (sy > 1e-12 * s_norm * frobenius_norm(y)) {
          std::vector<real_t> sv(static_cast<std::size_t>(s.size()));
          std::vector<real_t> yv(static_cast<std::size_t>(y.size()));
          for (index_t i = 0; i < s.size(); ++i) {
            sv[static_cast<std::size_t>(i)] = s[i];
            yv[static_cast<std::size_t>(i)] = y[i];
          }
          st.sy_pairs.emplace_back(std::move(sv), std::move(yv));
          while (static_cast<index_t>(st.sy_pairs.size()) > cfg_.bfgs_memory)
            st.sy_pairs.pop_front();
          st.h0_scale = sy / dot(y, y);
        }
      }
    }
    st.g_mean_prev = g_mean;
    st.ready = true;
  }
  return cand;
}

// Health probes: κ∞ of the input-side factor via the held inverse pair
// (the G side is applied through the BFGS recursion, no inverse to read).
void KBfgs::probe_health() {
  if (health_ == nullptr || !health_->due()) return;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const LayerState& st = layers_[l];
    obs::LayerHealth h;
    h.layer = static_cast<index_t>(l);
    h.staleness = st.staleness;
    if (st.ready) {
      h.cond_a = obs::cond_from_pair(st.a_factor, st.a_inv);
      h.nonfinite = obs::count_nonfinite(st.a_inv) +
                    obs::count_nonfinite(st.g_factor);
    }
    health_->report_layer(h);
  }
}

void KBfgs::update_curvature(const std::vector<ParamBlock*>& blocks,
                             const CaptureSet& capture, CommSim* comm) {
  const index_t layers = capture.layers();
  HYLO_CHECK(layers == static_cast<index_t>(blocks.size()),
             "capture/block count mismatch");
  if (static_cast<index_t>(layers_.size()) != layers) layers_.resize(static_cast<std::size_t>(layers));

  if (comm != nullptr && comm->async()) {
    async_refresh(capture, *comm);
    return;
  }

  // Each layer's whole refresh (running factors, inverse, BFGS pair) is
  // built on a candidate copy and swapped in only after the layer's
  // collectives landed, so a lost allreduce/broadcast keeps the previous
  // curvature intact — including the (s, y) history.
  // hylo-scratch-begin(kbfgs_update)
  WallTimer factor_timer;
  std::vector<LayerState> cand = build_candidates(capture);
  std::vector<char> degraded(static_cast<std::size_t>(layers), 0);
  if (comm != nullptr) {
    comm->profiler().add("comp/factorization", factor_timer.seconds());
    for (index_t l = 0; l < layers; ++l) {
      LayerState& st = cand[static_cast<std::size_t>(l)];
      try {
        comm->charge_allreduce(
            wire_bytes(*comm, st.a_factor.size() + st.g_factor.size()), "comm/gather");
        apply_escaped_corruption(*comm, {&st.a_factor, &st.g_factor});
        comm->charge_broadcast(wire_bytes(*comm, st.a_inv.size()), "comm/broadcast");
        apply_escaped_corruption(*comm, {&st.a_inv});
      } catch (const CommFailure&) {
        degraded[static_cast<std::size_t>(l)] = 1;
      }
      if (!degraded[static_cast<std::size_t>(l)] &&
          !guard_commit(*comm, "kbfgs", l,
                        {&st.a_factor, &st.g_factor, &st.a_inv},
                        {&layers_[static_cast<std::size_t>(l)].a_factor,
                         &layers_[static_cast<std::size_t>(l)].g_factor,
                         &layers_[static_cast<std::size_t>(l)].a_inv}))
        degraded[static_cast<std::size_t>(l)] = 1;
    }
  }
  // hylo-commit-begin(kbfgs_update)
  for (index_t l = 0; l < layers; ++l) {
    LayerState& st = layers_[static_cast<std::size_t>(l)];
    if (degraded[static_cast<std::size_t>(l)]) {
      if (comm != nullptr)
        note_stale_refresh(*comm, "kbfgs", l, st.ready);
      ++st.staleness;
      continue;
    }
    st = std::move(cand[static_cast<std::size_t>(l)]);
    st.staleness = 0;
  }
  // hylo-commit-end(kbfgs_update)
  // hylo-scratch-end(kbfgs_update)

  probe_health();
}

void KBfgs::async_refresh(const CaptureSet& capture, CommSim& comm) {
  resolve_pending(comm, /*deadline=*/true);

  // hylo-scratch-begin(kbfgs_async)
  WallTimer factor_timer;
  std::vector<LayerState> cand = build_candidates(capture);
  comm.profiler().add("comp/factorization", factor_timer.seconds());
  const double now = comm.timeline()->max_clock();
  std::vector<Pending> fresh;
  fresh.reserve(cand.size());
  for (std::size_t l = 0; l < cand.size(); ++l) {
    Pending p;
    p.layer = static_cast<index_t>(l);
    p.state = std::move(cand[l]);
    const CommEvent ar = comm.icharge_allreduce(
        wire_bytes(comm, p.state.a_factor.size() + p.state.g_factor.size()),
        "comm/gather", now);
    apply_escaped_corruption(comm, {&p.state.a_factor, &p.state.g_factor});
    const CommEvent bc = comm.icharge_broadcast(
        wire_bytes(comm, p.state.a_inv.size()), "comm/broadcast", ar.ready_s);
    apply_escaped_corruption(comm, {&p.state.a_inv});
    p.event = chain_event(ar, bc);
    fresh.push_back(std::move(p));
  }
  // hylo-commit-begin(kbfgs_async)
  for (auto& p : fresh) pending_.push_back(std::move(p));
  // hylo-commit-end(kbfgs_async)
  // hylo-scratch-end(kbfgs_async)
  probe_health();
}

void KBfgs::resolve_pending(CommSim& comm, bool deadline) {
  if (pending_.empty()) return;
  const double now = comm.timeline()->max_clock();
  sort_by_completion(pending_);
  std::vector<Pending> keep;
  for (auto& p : pending_) {
    const std::size_t l = static_cast<std::size_t>(p.layer);
    if (l >= layers_.size()) continue;  // network shrank; refresh is moot
    LayerState& st = layers_[l];
    if (!p.event.failed && p.event.ready_s <= now) {
      if (guard_commit(comm, "kbfgs", p.layer,
                       {&p.state.a_factor, &p.state.g_factor,
                        &p.state.a_inv},
                       {&st.a_factor, &st.g_factor, &st.a_inv})) {
        st = std::move(p.state);
        st.staleness = 0;
      } else {
        note_stale_refresh(comm, "kbfgs", p.layer, st.ready);
        ++st.staleness;
      }
    } else if (p.event.failed || deadline) {
      note_stale_refresh(comm, "kbfgs", p.layer, st.ready);
      ++st.staleness;
    } else {
      keep.push_back(std::move(p));
    }
  }
  pending_.swap(keep);
}

void KBfgs::poll_async(CommSim& comm) { resolve_pending(comm, false); }

void KBfgs::apply_hg(const LayerState& st, Matrix& m) const {
  const index_t n = m.rows(), cols = m.cols();
  const index_t k = static_cast<index_t>(st.sy_pairs.size());
  std::vector<real_t> q(static_cast<std::size_t>(n));
  std::vector<real_t> alpha(static_cast<std::size_t>(k));
  for (index_t c = 0; c < cols; ++c) {
    for (index_t i = 0; i < n; ++i) q[static_cast<std::size_t>(i)] = m(i, c);
    // Two-loop recursion.
    for (index_t j = k; j-- > 0;) {
      const auto& [s, y] = st.sy_pairs[static_cast<std::size_t>(j)];
      real_t sy = 0.0, sq = 0.0;
      for (index_t i = 0; i < n; ++i) {
        sy += s[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
        sq += s[static_cast<std::size_t>(i)] * q[static_cast<std::size_t>(i)];
      }
      const real_t a = sq / sy;
      alpha[static_cast<std::size_t>(j)] = a;
      for (index_t i = 0; i < n; ++i)
        q[static_cast<std::size_t>(i)] -= a * y[static_cast<std::size_t>(i)];
    }
    for (index_t i = 0; i < n; ++i) q[static_cast<std::size_t>(i)] *= st.h0_scale;
    for (index_t j = 0; j < k; ++j) {
      const auto& [s, y] = st.sy_pairs[static_cast<std::size_t>(j)];
      real_t sy = 0.0, yq = 0.0;
      for (index_t i = 0; i < n; ++i) {
        sy += s[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
        yq += y[static_cast<std::size_t>(i)] * q[static_cast<std::size_t>(i)];
      }
      const real_t b = yq / sy;
      for (index_t i = 0; i < n; ++i)
        q[static_cast<std::size_t>(i)] +=
            (alpha[static_cast<std::size_t>(j)] - b) * s[static_cast<std::size_t>(i)];
    }
    for (index_t i = 0; i < n; ++i) m(i, c) = q[static_cast<std::size_t>(i)];
  }
}

void KBfgs::precondition_block(ParamBlock& pb, index_t layer) {
  const LayerState& st = layers_[static_cast<std::size_t>(layer)];
  Matrix g = pb.gw;
  if (st.sy_pairs.empty()) {
    // No curvature pairs yet: fall back to H_g = (C_g + γI)⁻¹-free identity.
    pb.gw = matmul(g, st.a_inv);
    return;
  }
  apply_hg(st, g);
  pb.gw = matmul(g, st.a_inv);
}

index_t KBfgs::state_bytes() const {
  index_t scalars = 0;
  for (const auto& st : layers_) {
    scalars += st.a_factor.size() + st.a_inv.size() + st.g_factor.size() +
               st.g_mean_prev.size();
    for (const auto& [s, y] : st.sy_pairs)
      scalars += static_cast<index_t>(s.size() + y.size());
  }
  return scalars * static_cast<index_t>(sizeof(real_t)) + momentum_bytes();
}

void KFac::save_state(Network& net, ckpt::ByteWriter& w) const {
  Optimizer::save_state(net, w);
  w.u64(layers_.size());
  for (const auto& st : layers_) {
    w.matrix(st.a_factor);
    w.matrix(st.g_factor);
    w.matrix(st.a_inv);
    w.matrix(st.g_inv);
    w.b(st.ready);
    w.i64(st.staleness);
  }
  // In-flight async refreshes: a snapshot taken with gathers on the wire
  // must resume bitwise, so the pending handles travel with the state.
  w.u64(pending_.size());
  for (const auto& p : pending_) {
    w.i64(p.layer);
    write_event(w, p.event);
    w.matrix(p.state.a_factor);
    w.matrix(p.state.g_factor);
    w.matrix(p.state.a_inv);
    w.matrix(p.state.g_inv);
    w.b(p.state.ready);
    w.i64(p.state.staleness);
  }
}

void KFac::load_state(Network& net, ckpt::ByteReader& r) {
  Optimizer::load_state(net, r);
  layers_.assign(r.u64(), LayerState{});
  for (auto& st : layers_) {
    st.a_factor = r.matrix();
    st.g_factor = r.matrix();
    st.a_inv = r.matrix();
    st.g_inv = r.matrix();
    st.ready = r.b();
    st.staleness = r.i64();
  }
  pending_.assign(r.u64(), Pending{});
  for (auto& p : pending_) {
    p.layer = r.i64();
    p.event = read_event(r);
    p.state.a_factor = r.matrix();
    p.state.g_factor = r.matrix();
    p.state.a_inv = r.matrix();
    p.state.g_inv = r.matrix();
    p.state.ready = r.b();
    p.state.staleness = r.i64();
  }
}

void EKFac::save_state(Network& net, ckpt::ByteWriter& w) const {
  KFac::save_state(net, w);
  w.u64(eig_.size());
  for (const auto& st : eig_) {
    w.matrix(st.v_a);
    w.matrix(st.v_g);
    w.matrix(st.scaling);
    w.b(st.ready);
    w.i64(st.staleness);
  }
  w.u64(epending_.size());
  for (const auto& p : epending_) {
    w.i64(p.layer);
    write_event(w, p.event);
    w.matrix(p.a_factor);
    w.matrix(p.g_factor);
    w.matrix(p.eig.v_a);
    w.matrix(p.eig.v_g);
    w.matrix(p.eig.scaling);
    w.b(p.eig.ready);
    w.i64(p.eig.staleness);
  }
}

void EKFac::load_state(Network& net, ckpt::ByteReader& r) {
  KFac::load_state(net, r);
  eig_.assign(r.u64(), EigState{});
  for (auto& st : eig_) {
    st.v_a = r.matrix();
    st.v_g = r.matrix();
    st.scaling = r.matrix();
    st.ready = r.b();
    st.staleness = r.i64();
  }
  epending_.assign(r.u64(), EigPending{});
  for (auto& p : epending_) {
    p.layer = r.i64();
    p.event = read_event(r);
    p.a_factor = r.matrix();
    p.g_factor = r.matrix();
    p.eig.v_a = r.matrix();
    p.eig.v_g = r.matrix();
    p.eig.scaling = r.matrix();
    p.eig.ready = r.b();
    p.eig.staleness = r.i64();
  }
}

void KBfgs::save_state(Network& net, ckpt::ByteWriter& w) const {
  Optimizer::save_state(net, w);
  w.u64(layers_.size());
  for (const auto& st : layers_) {
    w.matrix(st.a_factor);
    w.matrix(st.a_inv);
    w.matrix(st.g_factor);
    w.matrix(st.g_mean_prev);
    w.u64(st.sy_pairs.size());
    for (const auto& [s, y] : st.sy_pairs) {
      w.real_vec(s);
      w.real_vec(y);
    }
    w.real(st.h0_scale);
    w.b(st.ready);
    w.i64(st.staleness);
  }
  w.u64(pending_.size());
  for (const auto& p : pending_) {
    w.i64(p.layer);
    write_event(w, p.event);
    w.matrix(p.state.a_factor);
    w.matrix(p.state.a_inv);
    w.matrix(p.state.g_factor);
    w.matrix(p.state.g_mean_prev);
    w.u64(p.state.sy_pairs.size());
    for (const auto& [s, y] : p.state.sy_pairs) {
      w.real_vec(s);
      w.real_vec(y);
    }
    w.real(p.state.h0_scale);
    w.b(p.state.ready);
    w.i64(p.state.staleness);
  }
}

void KBfgs::load_state(Network& net, ckpt::ByteReader& r) {
  Optimizer::load_state(net, r);
  layers_.assign(r.u64(), LayerState{});
  for (auto& st : layers_) {
    st.a_factor = r.matrix();
    st.a_inv = r.matrix();
    st.g_factor = r.matrix();
    st.g_mean_prev = r.matrix();
    const std::uint64_t pairs = r.u64();
    for (std::uint64_t k = 0; k < pairs; ++k) {
      std::vector<real_t> s = r.real_vec();
      std::vector<real_t> y = r.real_vec();
      st.sy_pairs.emplace_back(std::move(s), std::move(y));
    }
    st.h0_scale = r.real();
    st.ready = r.b();
    st.staleness = r.i64();
  }
  pending_.assign(r.u64(), Pending{});
  for (auto& p : pending_) {
    p.layer = r.i64();
    p.event = read_event(r);
    p.state.a_factor = r.matrix();
    p.state.a_inv = r.matrix();
    p.state.g_factor = r.matrix();
    p.state.g_mean_prev = r.matrix();
    const std::uint64_t pairs = r.u64();
    for (std::uint64_t k = 0; k < pairs; ++k) {
      std::vector<real_t> s = r.real_vec();
      std::vector<real_t> y = r.real_vec();
      p.state.sy_pairs.emplace_back(std::move(s), std::move(y));
    }
    p.state.h0_scale = r.real();
    p.state.ready = r.b();
    p.state.staleness = r.i64();
  }
}

}  // namespace hylo
