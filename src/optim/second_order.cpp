#include "hylo/optim/second_order.hpp"

#include <cmath>

#include "hylo/ckpt/snapshot.hpp"
#include "hylo/linalg/cholesky.hpp"
#include "hylo/obs/health.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

void CurvatureOptimizer::step(Network& net, index_t /*iteration*/) {
  auto blocks = net.param_blocks();
  // Snapshot raw gradients, then precondition in place.
  std::vector<Matrix> raw;
  raw.reserve(blocks.size());
  for (auto* pb : blocks) raw.push_back(pb->gw);
  // Recovery-ladder rung 2: the raw gradient passes through unchanged (the
  // KL clip below then degenerates to a plain norm clip).
  if (!first_order())
    for (std::size_t l = 0; l < blocks.size(); ++l)
      if (layer_ready(static_cast<index_t>(l)))
        precondition_block(*blocks[l], static_cast<index_t>(l));

  if (health_ != nullptr && health_->due()) {
    // gw now holds the preconditioned direction, raw the incoming gradient —
    // exactly the pair the update_ratio probe wants, with no extra GEMMs.
    for (std::size_t l = 0; l < blocks.size(); ++l)
      health_->report_norms(static_cast<index_t>(l), frobenius_norm(raw[l]),
                            frobenius_norm(blocks[l]->gw));
  }

  // KL clip (trust region on the quadratic model).
  real_t vg = 0.0;
  for (std::size_t l = 0; l < blocks.size(); ++l)
    vg += cfg_.lr * cfg_.lr * dot(blocks[l]->gw, raw[l]);
  real_t nu = 1.0;
  if (cfg_.kl_clip > 0.0 && vg > cfg_.kl_clip)
    nu = std::sqrt(cfg_.kl_clip / vg);
  apply_sgd_update(net, nu);
}

void CurvatureOptimizer::note_stale_refresh(CommSim& comm, const char* method,
                                            index_t layer,
                                            bool has_previous) const {
  comm.profiler()
      .registry()
      .counter(std::string("optim/") + method + "/stale_refreshes")
      .inc();
  if (obs::TraceBuffer* trace = comm.trace()) {
    obs::Json args = obs::Json::object();
    args.set("optimizer", method);
    args.set("layer", static_cast<std::int64_t>(layer));
    args.set("fallback", has_previous ? "stale_factors" : "sgd_direction");
    trace->add_instant("stale_refresh", "optim", obs::TraceBuffer::kCommTrack,
                       std::move(args));
  }
}

void CurvatureOptimizer::apply_escaped_corruption(
    CommSim& comm, std::initializer_list<Matrix*> targets) {
  const auto ticket = comm.take_silent_corruption();
  if (!ticket || targets.size() == 0) return;
  // The seed picks the victim deterministically among the matrices the
  // collective carried, then seeds the bit-flips themselves.
  Matrix* victim = *(targets.begin() +
                     static_cast<std::ptrdiff_t>(*ticket % targets.size()));
  if (victim != nullptr) corrupt_values(*victim, *ticket);
}

bool CurvatureOptimizer::guard_commit(
    CommSim& comm, const char* method, index_t layer,
    std::initializer_list<const Matrix*> candidates,
    std::initializer_list<const Matrix*> committed) const {
  if (!cfg_.guard_gates) return true;
  // Bounds chosen far outside anything a healthy refresh produces: a clean
  // run never trips them, so default-on gates stay bitwise-invisible.
  constexpr real_t kAbsNormBound = 1e30;
  constexpr real_t kRatioBound = 1e6;
  const char* reason = nullptr;
  const Matrix* const* prev = committed.begin();
  const std::size_t nprev = committed.size();
  std::size_t i = 0;
  for (const Matrix* cand : candidates) {
    if (cand == nullptr || cand->size() == 0) {
      ++i;
      continue;
    }
    if (obs::count_nonfinite(*cand) > 0) {
      reason = "non_finite";
      break;
    }
    const real_t norm = frobenius_norm(*cand);
    if (norm > kAbsNormBound) {
      reason = "abs_norm";
      break;
    }
    if (i < nprev && prev[i] != nullptr && prev[i]->size() > 0) {
      const real_t prev_norm = frobenius_norm(*prev[i]);
      if (prev_norm > 0.0 && norm > kRatioBound * prev_norm) {
        reason = "norm_ratio";
        break;
      }
    }
    ++i;
  }
  if (reason == nullptr) return true;
  comm.profiler()
      .registry()
      .counter(std::string("optim/") + method + "/guard_rejects")
      .inc();
  if (obs::TraceBuffer* trace = comm.trace()) {
    obs::Json args = obs::Json::object();
    args.set("optimizer", method);
    args.set("layer", static_cast<std::int64_t>(layer));
    args.set("reason", reason);
    trace->add_instant("guard_reject", "optim", obs::TraceBuffer::kCommTrack,
                       std::move(args));
  }
  return false;
}

void CurvatureOptimizer::write_event(ckpt::ByteWriter& w,
                                     const CommEvent& ev) {
  w.u64(ev.seq);
  w.f64(ev.start_s);
  w.f64(ev.ready_s);
  w.b(ev.failed);
}

CommEvent CurvatureOptimizer::read_event(ckpt::ByteReader& r) {
  CommEvent ev;
  ev.seq = r.u64();
  ev.start_s = r.f64();
  ev.ready_s = r.f64();
  ev.failed = r.b();
  return ev;
}

Matrix damped_cholesky(const Matrix& c, real_t damping, int attempts) {
  Matrix work = c;
  // Escalation floor scaled to the matrix magnitude, so retries make real
  // progress even when the caller passed a denormal damping.
  const real_t scale =
      1e-8 * (std::abs(trace(c)) / static_cast<real_t>(c.rows()) + 1.0);
  real_t added = 0.0;
  real_t next = damping;
  Matrix l;
  for (int k = 0; k < attempts; ++k) {
    add_diagonal(work, next - added);
    added = next;
    if (try_cholesky(work, l)) return l;
    next = std::max(next * 10.0, scale);
  }
  HYLO_CHECK(false, "matrix stayed indefinite after damping escalation (n="
                        << c.rows() << ", final damping " << added << ")");
  return l;
}

Matrix damped_spd_inverse(const Matrix& c, real_t damping, int attempts) {
  const Matrix l = damped_cholesky(c, damping, attempts);
  return cholesky_solve(l, Matrix::identity(c.rows()));
}

}  // namespace hylo
