#include "hylo/optim/hylo_optimizer.hpp"

#include <cmath>

#include "hylo/ckpt/snapshot.hpp"
#include "hylo/linalg/id.hpp"
#include "hylo/linalg/kernels.hpp"
#include "hylo/obs/health.hpp"
#include "hylo/par/thread_pool.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

namespace {
index_t wire_bytes(const CommSim& comm, index_t scalars) {
  return comm.wire_bytes(scalars);
}

// The inversion of a layer's kernel runs on that layer's assigned owner
// rank; place its span on the owner's simulated-timeline track, before the
// broadcast barrier that publishes the result.
void trace_inversion(CommSim* comm, index_t layer, int owner, double dur_s) {
  obs::TraceBuffer* trace = comm->trace();
  if (trace == nullptr) return;
  obs::Json args = obs::Json::object();
  args.set("layer", layer);
  trace->add_span("inversion", "comp", owner, dur_s, std::move(args));
}

// LU factorization with escalating diagonal damping (the KID middle matrix
// is non-symmetric, so Cholesky retries do not apply). Bounded at `attempts`
// factorizations total; each escalation bumps *escalations, and the last
// failure is rethrown with the escalation context attached.
LuFactor damped_lu(Matrix m, real_t damping, int* escalations,
                   int attempts = 4) {
  real_t added = 0.0;
  for (int attempt = 0;; ++attempt) {
    try {
      return lu_factor(m);
    } catch (const Error& e) {
      if (attempt + 1 >= attempts)
        throw Error("KID middle matrix (n=" + std::to_string(m.rows()) +
                    ") stayed singular after " + std::to_string(attempt) +
                    " damping escalations (final added damping " +
                    std::to_string(added) + "): " + e.what());
      const real_t next = added == 0.0 ? damping : added * 10.0;
      add_diagonal(m, next - added);
      added = next;
      if (escalations != nullptr) ++*escalations;
    }
  }
}

/// Per-layer staging area for the split curvature refresh: the parallel
/// compute stage fills it, the serial bookkeeping stage drains it into the
/// profiler / comm model in exact layer order — and commits the candidate
/// factors to LayerState only once the layer's collectives all landed, so a
/// lost gather/broadcast leaves the previous refresh's factors serving.
struct LayerScratch {
  std::vector<Matrix> a_parts, g_parts;  ///< per-rank compressed factors
  std::vector<Matrix> y_parts;           ///< KID residual projections
  // KIS sampling is drawn serially up front so the rng stream stays in
  // (layer, rank) order regardless of thread count.
  std::vector<std::vector<index_t>> picked;
  std::vector<std::vector<real_t>> scale;  ///< 1/(ρ p_j)^{1/4} per picked row
  Matrix a_s, g_s;        ///< candidate gathered factors
  LuFactor kid_middle;    ///< candidate LU of (K̂ + Y⁻¹)      [KID]
  Matrix kis_chol;        ///< candidate Cholesky of (K̂ + αI)  [KIS]
  int escalations = 0;    ///< damping escalations spent in damped_lu
  double factor_s = 0.0;  ///< measured local-factorization wall time
  double inv_s = 0.0;     ///< measured inversion wall time
};

// Algorithm 2 lines 1-4 for every simulated rank of one layer. Pure
// compute with per-layer-disjoint outputs, safe to run layers in parallel.
void factorize_kid(LayerScratch& sc, const std::vector<Matrix>& a_ranks,
                   const std::vector<Matrix>& g_ranks, index_t r_local,
                   real_t damping) {
  const index_t world = static_cast<index_t>(a_ranks.size());
  sc.a_parts.resize(static_cast<std::size_t>(world));
  sc.g_parts.resize(static_cast<std::size_t>(world));
  sc.y_parts.resize(static_cast<std::size_t>(world));
  for (index_t rank = 0; rank < world; ++rank) {
    const Matrix& a = a_ranks[static_cast<std::size_t>(rank)];
    const Matrix& g = g_ranks[static_cast<std::size_t>(rank)];
    const index_t rk = std::min(r_local, a.rows());

    // Line 1: local Gram matrix Q = (AAᵀ)∘(GGᵀ).
    const Matrix q = kernel_matrix(a, g);
    // Line 2: [P, S] = ID(Q, r).
    const RowId id = row_interpolative_decomposition(q, rk);
    // Line 4: KID-factors.
    sc.a_parts[static_cast<std::size_t>(rank)] = a.select_rows(id.rows);
    sc.g_parts[static_cast<std::size_t>(rank)] = g.select_rows(id.rows);
    // Line 3: residue R = Q − P·Q(S,:);  line 4: Y = Pᵀ(R+αI)⁻¹P.
    Matrix resid = q - id_reconstruct(id, q);
    add_diagonal(resid, damping);
    const Matrix x = lu_solve(lu_factor(resid), id.projection);  // m x r
    sc.y_parts[static_cast<std::size_t>(rank)] = matmul_tn(id.projection, x);
  }
}

// Algorithm 3 with the random choices already drawn (sc.picked / sc.scale):
// what remains is pure row selection + scaling.
void factorize_kis(LayerScratch& sc, const std::vector<Matrix>& a_ranks,
                   const std::vector<Matrix>& g_ranks) {
  const index_t world = static_cast<index_t>(a_ranks.size());
  sc.a_parts.resize(static_cast<std::size_t>(world));
  sc.g_parts.resize(static_cast<std::size_t>(world));
  for (index_t rank = 0; rank < world; ++rank) {
    const auto& picked = sc.picked[static_cast<std::size_t>(rank)];
    const auto& scale = sc.scale[static_cast<std::size_t>(rank)];
    Matrix as = a_ranks[static_cast<std::size_t>(rank)].select_rows(picked);
    Matrix gs = g_ranks[static_cast<std::size_t>(rank)].select_rows(picked);
    for (index_t i = 0; i < static_cast<index_t>(picked.size()); ++i) {
      const real_t s = scale[static_cast<std::size_t>(i)];
      real_t* ar = as.row_ptr(i);
      for (index_t j = 0; j < as.cols(); ++j) ar[j] *= s;
      real_t* gr = gs.row_ptr(i);
      for (index_t j = 0; j < gs.cols(); ++j) gr[j] *= s;
    }
    sc.a_parts[static_cast<std::size_t>(rank)] = std::move(as);
    sc.g_parts[static_cast<std::size_t>(rank)] = std::move(gs);
  }
}

// Per-rank gather sizes: the cost model's latency term follows the slowest
// rank, the wire ledger sums every rank's contribution (ranks can compress
// to different local ranks when a local batch is short).
std::vector<index_t> part_bytes(const CommSim& comm,
                                const std::vector<Matrix>& parts) {
  std::vector<index_t> bytes;
  bytes.reserve(parts.size());
  for (const auto& m : parts) bytes.push_back(comm.wire_bytes(m.size()));
  return bytes;
}
}  // namespace

void HyloOptimizer::begin_epoch(index_t epoch, bool lr_decayed) {
  // Close out Δ_{e-1}: ‖Δ‖ = sqrt(Σ_l ‖Δ_l‖²).
  if (delta_dirty_) {
    real_t sq = 0.0;
    for (auto& d : delta_) {
      sq += frobenius_norm_sq(d);
      d.zero();
    }
    delta_norms_.push_back(std::sqrt(sq));
    delta_dirty_ = false;
  }

  SwitchDecision dec;
  dec.epoch = epoch;
  dec.threshold = cfg_.switch_threshold;
  dec.lr_decayed = lr_decayed;
  switch (policy_) {
    case Policy::kAlwaysKid:
      mode_ = HyloMode::kKid;
      dec.reason = "always_kid";
      break;
    case Policy::kAlwaysKis:
      mode_ = HyloMode::kKis;
      dec.reason = "always_kis";
      break;
    case Policy::kRandom:
      mode_ = rng_.uniform() < 0.5 ? HyloMode::kKid : HyloMode::kKis;
      dec.reason = "random";
      break;
    case Policy::kGradientBased: {
      // Alg. 1 lines 2-3: R = |‖Δ_{e-1}‖ − ‖Δ_{e-2}‖| / ‖Δ_{e-2}‖; KID on
      // critical epochs (R ≥ η or LR decay), KIS otherwise. With fewer than
      // two completed epochs the run is still in its critical warmup: KID.
      bool critical = lr_decayed;
      dec.reason = lr_decayed ? "lr_decay" : "steady";
      if (delta_norms_.size() < 2) {
        critical = true;
        dec.reason = "warmup";
      } else {
        const real_t n1 = delta_norms_[delta_norms_.size() - 1];
        const real_t n2 = delta_norms_[delta_norms_.size() - 2];
        if (n2 > 0.0) {
          dec.ratio = std::abs(n1 - n2) / n2;
          if (dec.ratio >= cfg_.switch_threshold) {
            critical = true;
            if (!lr_decayed) dec.reason = "ratio";
          }
        }
      }
      dec.critical = critical;
      mode_ = critical ? HyloMode::kKid : HyloMode::kKis;
      break;
    }
  }
  dec.critical = mode_ == HyloMode::kKid;
  dec.mode = mode_;
  mode_history_.push_back(mode_);
  switch_history_.push_back(std::move(dec));
}

void HyloOptimizer::accumulate_gradient(const std::vector<ParamBlock*>& blocks) {
  if (delta_.size() != blocks.size()) {
    delta_.clear();
    delta_.resize(blocks.size());
  }
  for (std::size_t l = 0; l < blocks.size(); ++l) {
    Matrix& d = delta_[l];
    if (d.rows() != blocks[l]->gw.rows() || d.cols() != blocks[l]->gw.cols())
      d.resize(blocks[l]->gw.rows(), blocks[l]->gw.cols());
    d += blocks[l]->gw;
  }
  delta_dirty_ = true;
}

void HyloOptimizer::update_curvature(const std::vector<ParamBlock*>& blocks,
                                     const CaptureSet& capture, CommSim* comm) {
  const index_t layers = capture.layers();
  HYLO_CHECK(layers == static_cast<index_t>(blocks.size()),
             "capture/block count mismatch");
  if (static_cast<index_t>(layers_.size()) != layers)
    layers_.resize(static_cast<std::size_t>(layers));

  // Async mode: anything still in flight from the previous refresh has
  // missed its commit deadline and degrades to stale factors.
  const bool async = comm != nullptr && comm->async();
  if (async) resolve_pending(*comm, true);

  // Global batch and rank budget: r = rank_ratio · (P·m), split evenly as
  // ρ = r / P rows per worker (paper Table I).
  const index_t world = capture.world();
  index_t global_m = 0;
  for (const auto& m : capture.a[0]) global_m += m.rows();
  index_t r = std::max<index_t>(1, static_cast<index_t>(
                                       cfg_.rank_ratio * static_cast<real_t>(global_m) + 0.5));
  index_t r_local = std::max<index_t>(1, r / world);
  last_rank_ = r_local * world;

  const LayerAssignment assignment(layers, world);
  std::vector<LayerScratch> scratch(static_cast<std::size_t>(layers));

  // --- Stage 1 (serial): draw the KIS sampling decisions -----------------
  // rng_ is consumed in strict (layer, rank) order here, so the stream —
  // and therefore every sampled factor — is identical at any thread count.
  if (mode_ == HyloMode::kKis) {
    for (index_t l = 0; l < layers; ++l) {
      LayerScratch& sc = scratch[static_cast<std::size_t>(l)];
      const auto& a_ranks = capture.a[static_cast<std::size_t>(l)];
      const auto& g_ranks = capture.g[static_cast<std::size_t>(l)];
      sc.picked.resize(a_ranks.size());
      sc.scale.resize(a_ranks.size());
      for (index_t rank = 0; rank < world; ++rank) {
        const Matrix& a = a_ranks[static_cast<std::size_t>(rank)];
        const Matrix& g = g_ranks[static_cast<std::size_t>(rank)];
        const index_t m = a.rows();
        const index_t rho = std::min(r_local, m);

        // Scores via the Khatri-Rao structure: ‖u_j‖² = ‖a_j‖²·‖g_j‖².
        const auto na = row_norms(a);
        const auto ng = row_norms(g);
        std::vector<real_t> score(static_cast<std::size_t>(m));
        real_t total = 0.0;
        index_t positive = 0;
        for (index_t j = 0; j < m; ++j) {
          const real_t s =
              na[static_cast<std::size_t>(j)] * ng[static_cast<std::size_t>(j)];
          score[static_cast<std::size_t>(j)] = s * s;
          total += s * s;
          positive += s > 0.0;
        }
        if (positive < rho) {
          // Degenerate batch (fewer than ρ samples carry gradient, e.g. dead
          // activations): blend in a uniform floor so sampling stays valid —
          // the zero-score rows contribute nothing to the kernel anyway.
          const real_t floor =
              std::max(total, real_t{1.0}) / static_cast<real_t>(m) * 1e-9 +
              1e-30;
          for (auto& s : score) s += floor;
          total += floor * static_cast<real_t>(m);
        }
        auto picked = rng_.sample_without_replacement(score, rho);

        // Row scaling 1/√(ρ p_j), split as ^(1/4) on each of a_j and g_j so
        // the Khatri-Rao product of the scaled rows carries the full factor.
        std::vector<real_t> scale(picked.size());
        for (std::size_t i = 0; i < picked.size(); ++i) {
          const real_t p = score[static_cast<std::size_t>(picked[i])] / total;
          scale[i] =
              std::pow(static_cast<real_t>(rho) * std::max(p, real_t{1e-300}),
                       real_t{-0.25});
        }
        sc.picked[static_cast<std::size_t>(rank)] = std::move(picked);
        sc.scale[static_cast<std::size_t>(rank)] = std::move(scale);
      }
    }
  }

  // --- Stage 2 (parallel across layers): factorize + invert --------------
  // Pure compute on disjoint per-layer scratch; the gathered factors are
  // assembled locally (bitwise equal to the modeled allgather result) and
  // the comm model is charged afterwards, in stage 3. Kernel-level
  // parallel_for calls nested inside run inline on this thread.
  // hylo-scratch-begin(hylo_update)
  par::parallel_for(
      0, layers, 1,
      [&](index_t l0, index_t l1) {
        for (index_t l = l0; l < l1; ++l) {
          LayerScratch& sc = scratch[static_cast<std::size_t>(l)];
          const auto& a_ranks = capture.a[static_cast<std::size_t>(l)];
          const auto& g_ranks = capture.g[static_cast<std::size_t>(l)];

          WallTimer factor_timer;
          if (mode_ == HyloMode::kKid)
            factorize_kid(sc, a_ranks, g_ranks, r_local, cfg_.damping);
          else
            factorize_kis(sc, a_ranks, g_ranks);
          sc.factor_s = factor_timer.seconds();

          // Alg. 1 lines 7/18: the gathered low-rank factors.
          sc.a_s = vstack(sc.a_parts);
          sc.g_s = vstack(sc.g_parts);

          WallTimer invert_timer;
          if (mode_ == HyloMode::kKid) {
            // Alg. 1 line 10, Eq. 8: LU of K̂ + Y⁻¹.
            const Matrix y = block_diag(sc.y_parts);
            Matrix middle = kernel_matrix(sc.a_s, sc.g_s);  // K̂
            middle += lu_inverse(y);
            sc.kid_middle =
                damped_lu(std::move(middle), cfg_.damping, &sc.escalations);
          } else {
            // Alg. 1 line 21, Eq. 9: Cholesky of K̂ + αI.
            const Matrix k = kernel_matrix(sc.a_s, sc.g_s);
            sc.kis_chol = damped_cholesky(k, cfg_.damping);
          }
          sc.inv_s = invert_timer.seconds();
        }
      },
      "optim/hylo/layers",
      audit::Footprint([&](index_t l0, index_t l1, audit::WriteSet& ws) {
        ws.add_range(scratch.data(), l0, l1);
      }));

  // --- Stage 3 (serial, layer order): profiler / comm-model bookkeeping --
  // Replays exactly the charge sequence the serial implementation issued,
  // so traces, byte counters, and call counts are unchanged by threading.
  // Each layer's candidate factors commit only after its gathers and
  // broadcast all landed: a CommFailure (injected rank_down) leaves the
  // previous refresh serving, one refresh staler.
  double inv_max = 0.0;
  int escalations = 0;
  std::vector<Pending> fresh;
  if (async) fresh.reserve(static_cast<std::size_t>(layers));
  for (index_t l = 0; l < layers; ++l) {
    LayerState& st = layers_[static_cast<std::size_t>(l)];
    LayerScratch& sc = scratch[static_cast<std::size_t>(l)];
    escalations += sc.escalations;
    if (comm != nullptr) {
      comm->profiler().add("comp/factorization", sc.factor_s);
      if (async) {
        // Nonblocking chain: gathers of the compressed factors (and the
        // KID residual projections), then the inverse broadcast. The full
        // candidate state exists now; only its commit waits on the chain.
        comm->profiler().add("comp/inversion", sc.inv_s);
        inv_max = std::max(inv_max, sc.inv_s);
        comm->profiler().registry().histogram("optim/hylo/inversion_seconds")
            .observe(sc.inv_s);
        const double now = comm->timeline()->max_clock();
        CommEvent ev = comm->icharge_allgather(part_bytes(*comm, sc.a_parts),
                                               "comm/gather", now);
        apply_escaped_corruption(*comm, {&sc.a_s});
        ev = chain_event(
            ev, comm->icharge_allgather(part_bytes(*comm, sc.g_parts),
                                        "comm/gather", ev.ready_s));
        apply_escaped_corruption(*comm, {&sc.g_s});
        if (mode_ == HyloMode::kKid) {
          ev = chain_event(
              ev, comm->icharge_allgather(part_bytes(*comm, sc.y_parts),
                                          "comm/gather", ev.ready_s));
          apply_escaped_corruption(*comm, {&sc.kid_middle.lu});
        }
        ev = chain_event(
            ev, comm->icharge_broadcast(
                    wire_bytes(*comm, sc.a_s.rows() * sc.a_s.rows()),
                    "comm/broadcast", ev.ready_s));
        apply_escaped_corruption(
            *comm, {mode_ == HyloMode::kKid ? &sc.kid_middle.lu
                                            : &sc.kis_chol});
        Pending p;
        p.layer = l;
        p.event = ev;
        p.state.mode = mode_;
        p.state.a_s = std::move(sc.a_s);
        p.state.g_s = std::move(sc.g_s);
        p.state.kid_middle = std::move(sc.kid_middle);
        p.state.kis_chol = std::move(sc.kis_chol);
        p.state.ready = true;
        fresh.push_back(std::move(p));
        continue;
      }
      try {
        comm->charge_allgather(part_bytes(*comm, sc.a_parts), "comm/gather");
        apply_escaped_corruption(*comm, {&sc.a_s});
        comm->charge_allgather(part_bytes(*comm, sc.g_parts), "comm/gather");
        apply_escaped_corruption(*comm, {&sc.g_s});
        if (mode_ == HyloMode::kKid) {
          comm->charge_allgather(part_bytes(*comm, sc.y_parts), "comm/gather");
          apply_escaped_corruption(*comm, {&sc.kid_middle.lu});
        }
        comm->profiler().add("comp/inversion", sc.inv_s);
        trace_inversion(comm, l, static_cast<int>(assignment.owner(l)),
                        sc.inv_s);
        // Line 11/21: broadcast the r x r inverse.
        comm->charge_broadcast(wire_bytes(*comm, sc.a_s.rows() * sc.a_s.rows()),
                               "comm/broadcast");
        apply_escaped_corruption(
            *comm, {mode_ == HyloMode::kKid ? &sc.kid_middle.lu
                                            : &sc.kis_chol});
      } catch (const CommFailure&) {
        // hylo-commit-begin(hylo_stale)
        note_stale_refresh(*comm, "hylo", l, st.ready);
        ++st.staleness;
        // hylo-commit-end(hylo_stale)
        continue;
      }
      if (!guard_commit(*comm, "hylo", l,
                        {&sc.a_s, &sc.g_s, &sc.kid_middle.lu, &sc.kis_chol},
                        {&st.a_s, &st.g_s, &st.kid_middle.lu,
                         &st.kis_chol})) {
        // hylo-commit-begin(hylo_guard)
        note_stale_refresh(*comm, "hylo", l, st.ready);
        ++st.staleness;
        // hylo-commit-end(hylo_guard)
        continue;
      }
      inv_max = std::max(inv_max, sc.inv_s);
      comm->profiler().registry().histogram("optim/hylo/inversion_seconds")
          .observe(sc.inv_s);
    }
    // hylo-commit-begin(hylo_update)
    st.mode = mode_;
    st.a_s = std::move(sc.a_s);
    st.g_s = std::move(sc.g_s);
    st.kid_middle = std::move(sc.kid_middle);
    st.kis_chol = std::move(sc.kis_chol);
    st.ready = true;
    st.staleness = 0;
    // hylo-commit-end(hylo_update)
  }
  // hylo-commit-begin(hylo_async)
  for (auto& p : fresh) pending_.push_back(std::move(p));
  // hylo-commit-end(hylo_async)
  if (comm != nullptr) {
    comm->profiler().add("comp/inversion_critical", inv_max);
    auto& reg = comm->profiler().registry();
    reg.counter("optim/hylo/refreshes").inc();
    if (escalations > 0)
      reg.counter("optim/hylo/damping_escalations").inc(escalations);
    reg.gauge("optim/hylo/rank").set(static_cast<double>(last_rank_));
    reg.histogram("optim/hylo/selected_rank",
                  obs::Histogram::linear_bounds(0.0, 4096.0, 65))
        .observe(static_cast<double>(last_rank_));
  }

  // --- Health probes (observers only; reads the *committed* state, so a
  // layer whose collectives failed this refresh reports its served stale
  // factors, not the dropped candidate). Gated on the probe cadence.
  if (health_ != nullptr && health_->due()) {
    for (index_t l = 0; l < layers; ++l) {
      const LayerState& st = layers_[static_cast<std::size_t>(l)];
      obs::LayerHealth h;
      h.layer = l;
      h.staleness = st.staleness;
      if (st.ready) {
        h.cond = st.mode == HyloMode::kKid
                     ? obs::cond_from_lu(st.kid_middle.lu)
                     : obs::cond_from_cholesky(st.kis_chol);
        h.nonfinite = obs::count_nonfinite(st.a_s) +
                      obs::count_nonfinite(st.g_s) +
                      (st.mode == HyloMode::kKid
                           ? obs::count_nonfinite(st.kid_middle.lu)
                           : obs::count_nonfinite(st.kis_chol));
        // Captured-energy fraction: tr(K̂) of the served low-rank factors
        // over tr(K) of the full capture, both via the Khatri-Rao diagonal
        // K_jj = ‖a_j‖²‖g_j‖². KIS row scaling makes tr(K̂) an unbiased
        // estimator of tr(K), so ≈1 there is correct, not vacuous; for KID
        // this is the energy the chosen rank actually keeps.
        double kept = 0.0;
        {
          const auto na = row_norms(st.a_s);
          const auto ng = row_norms(st.g_s);
          for (std::size_t j = 0; j < na.size(); ++j) {
            const double s = na[j] * ng[j];
            kept += s * s;
          }
        }
        double total = 0.0;
        for (index_t rank = 0; rank < world; ++rank) {
          const auto na =
              row_norms(capture.a[static_cast<std::size_t>(l)]
                                 [static_cast<std::size_t>(rank)]);
          const auto ng =
              row_norms(capture.g[static_cast<std::size_t>(l)]
                                 [static_cast<std::size_t>(rank)]);
          for (std::size_t j = 0; j < na.size(); ++j) {
            const double s = na[j] * ng[j];
            total += s * s;
          }
        }
        if (total > 0.0) h.energy_fraction = kept / total;
      }
      health_->report_layer(h);
    }
  }
  // hylo-scratch-end(hylo_update)
}

void HyloOptimizer::resolve_pending(CommSim& comm, bool deadline) {
  if (pending_.empty()) return;
  const double now = comm.timeline()->max_clock();
  sort_by_completion(pending_);
  std::vector<Pending> keep;
  for (auto& p : pending_) {
    const std::size_t l = static_cast<std::size_t>(p.layer);
    if (l >= layers_.size()) continue;  // network shrank; refresh is moot
    LayerState& st = layers_[l];
    if (!p.event.failed && p.event.ready_s <= now) {
      if (guard_commit(comm, "hylo", p.layer,
                       {&p.state.a_s, &p.state.g_s, &p.state.kid_middle.lu,
                        &p.state.kis_chol},
                       {&st.a_s, &st.g_s, &st.kid_middle.lu,
                        &st.kis_chol})) {
        st = std::move(p.state);
        st.staleness = 0;
      } else {
        note_stale_refresh(comm, "hylo", p.layer, st.ready);
        ++st.staleness;
      }
    } else if (p.event.failed || deadline) {
      note_stale_refresh(comm, "hylo", p.layer, st.ready);
      ++st.staleness;
    } else {
      keep.push_back(std::move(p));
    }
  }
  pending_.swap(keep);
}

void HyloOptimizer::poll_async(CommSim& comm) { resolve_pending(comm, false); }

Matrix HyloOptimizer::preconditioned(const Matrix& grad, index_t layer) const {
  HYLO_CHECK(layer >= 0 && layer < static_cast<index_t>(layers_.size()),
             "HyLo layer " << layer << " unknown");
  const LayerState& st = layers_[static_cast<std::size_t>(layer)];
  HYLO_CHECK(st.ready, "HyLo layer " << layer << " has no curvature yet");
  const Matrix uv = apply_jacobian(st.a_s, st.g_s, grad);
  const Matrix y = (st.mode == HyloMode::kKid)
                       ? lu_solve(st.kid_middle, uv)
                       : cholesky_solve(st.kis_chol, uv);
  Matrix out = grad - apply_jacobian_t(st.a_s, st.g_s, y);
  out *= 1.0 / cfg_.damping;
  return out;
}

void HyloOptimizer::precondition_block(ParamBlock& pb, index_t layer) {
  pb.gw = preconditioned(pb.gw, layer);
}

index_t HyloOptimizer::state_bytes() const {
  index_t scalars = 0;
  for (const auto& st : layers_) {
    scalars += st.a_s.size() + st.g_s.size();
    scalars += st.kid_middle.lu.size() + st.kis_chol.size();
  }
  for (const auto& d : delta_) scalars += d.size();
  return scalars * static_cast<index_t>(sizeof(real_t)) + momentum_bytes();
}

namespace {
std::uint8_t mode_tag(HyloMode m) { return m == HyloMode::kKid ? 0 : 1; }
HyloMode mode_from_tag(std::uint8_t t) {
  HYLO_CHECK(t <= 1, "snapshot HyLo mode tag " << int(t) << " unknown");
  return t == 0 ? HyloMode::kKid : HyloMode::kKis;
}
}  // namespace

void HyloOptimizer::save_state(Network& net, ckpt::ByteWriter& w) const {
  Optimizer::save_state(net, w);
  w.u8(static_cast<std::uint8_t>(policy_));
  w.u8(mode_tag(mode_));
  w.u64(mode_history_.size());
  for (const HyloMode m : mode_history_) w.u8(mode_tag(m));
  w.u64(switch_history_.size());
  for (const auto& d : switch_history_) {
    w.i64(d.epoch);
    w.real(d.ratio);
    w.real(d.threshold);
    w.b(d.lr_decayed);
    w.b(d.critical);
    w.u8(mode_tag(d.mode));
    w.str(d.reason);
  }
  w.u64(delta_.size());
  for (const auto& m : delta_) w.matrix(m);
  w.b(delta_dirty_);
  w.real_vec(delta_norms_);
  w.u64(layers_.size());
  for (const auto& st : layers_) {
    w.u8(mode_tag(st.mode));
    w.matrix(st.a_s);
    w.matrix(st.g_s);
    w.matrix(st.kid_middle.lu);
    w.index_vec(st.kid_middle.piv);
    w.matrix(st.kis_chol);
    w.b(st.ready);
    w.i64(st.staleness);
  }
  w.i64(last_rank_);
  ckpt::write_rng_state(w, rng_.state());
  // In-flight async refreshes (see DESIGN.md §15): snapshots taken with
  // gathers on the wire must resume bitwise.
  w.u64(pending_.size());
  for (const auto& p : pending_) {
    w.i64(p.layer);
    write_event(w, p.event);
    w.u8(mode_tag(p.state.mode));
    w.matrix(p.state.a_s);
    w.matrix(p.state.g_s);
    w.matrix(p.state.kid_middle.lu);
    w.index_vec(p.state.kid_middle.piv);
    w.matrix(p.state.kis_chol);
    w.b(p.state.ready);
    w.i64(p.state.staleness);
  }
}

void HyloOptimizer::load_state(Network& net, ckpt::ByteReader& r) {
  Optimizer::load_state(net, r);
  const std::uint8_t policy = r.u8();
  HYLO_CHECK(policy <= static_cast<std::uint8_t>(Policy::kAlwaysKis),
             "snapshot HyLo policy tag " << int(policy) << " unknown");
  policy_ = static_cast<Policy>(policy);
  mode_ = mode_from_tag(r.u8());
  mode_history_.assign(r.u64(), HyloMode::kKid);
  for (auto& m : mode_history_) m = mode_from_tag(r.u8());
  switch_history_.assign(r.u64(), SwitchDecision{});
  for (auto& d : switch_history_) {
    d.epoch = r.i64();
    d.ratio = r.real();
    d.threshold = r.real();
    d.lr_decayed = r.b();
    d.critical = r.b();
    d.mode = mode_from_tag(r.u8());
    d.reason = r.str();
  }
  delta_.assign(r.u64(), Matrix{});
  for (auto& m : delta_) m = r.matrix();
  delta_dirty_ = r.b();
  delta_norms_ = r.real_vec();
  layers_.assign(r.u64(), LayerState{});
  for (auto& st : layers_) {
    st.mode = mode_from_tag(r.u8());
    st.a_s = r.matrix();
    st.g_s = r.matrix();
    st.kid_middle.lu = r.matrix();
    st.kid_middle.piv = r.index_vec();
    st.kis_chol = r.matrix();
    st.ready = r.b();
    st.staleness = r.i64();
  }
  last_rank_ = r.i64();
  rng_.set_state(ckpt::read_rng_state(r));
  pending_.assign(r.u64(), Pending{});
  for (auto& p : pending_) {
    p.layer = r.i64();
    p.event = read_event(r);
    p.state.mode = mode_from_tag(r.u8());
    p.state.a_s = r.matrix();
    p.state.g_s = r.matrix();
    p.state.kid_middle.lu = r.matrix();
    p.state.kid_middle.piv = r.index_vec();
    p.state.kis_chol = r.matrix();
    p.state.ready = r.b();
    p.state.staleness = r.i64();
  }
}

}  // namespace hylo
