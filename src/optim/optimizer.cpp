#include "hylo/optim/optimizer.hpp"

#include <cmath>

#include "hylo/ckpt/snapshot.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

namespace {

// Momentum-style buffers are lazily created on first step, so a snapshot
// taken before a parameter ever stepped has no entry for it: each block gets
// a presence flag. Shapes are verified against the parameter on load — a
// snapshot from a structurally different model fails loudly, not subtly.
void save_block_map(const std::unordered_map<const void*, Matrix>& bufs,
                    const void* key, ckpt::ByteWriter& w) {
  const auto it = bufs.find(key);
  w.b(it != bufs.end());
  if (it != bufs.end()) w.matrix(it->second);
}

void load_block_map(std::unordered_map<const void*, Matrix>& bufs,
                    const void* key, const Matrix& like, const char* what,
                    ckpt::ByteReader& r) {
  if (!r.b()) return;
  Matrix m = r.matrix();
  HYLO_CHECK(m.rows() == like.rows() && m.cols() == like.cols(),
             "snapshot " << what << " buffer is " << m.rows() << "x"
                         << m.cols() << ", parameter is " << like.rows()
                         << "x" << like.cols());
  bufs[key] = std::move(m);
}

void save_plain_map(
    const std::unordered_map<const void*, std::vector<real_t>>& bufs,
    const void* key, ckpt::ByteWriter& w) {
  const auto it = bufs.find(key);
  w.b(it != bufs.end());
  if (it != bufs.end()) w.real_vec(it->second);
}

void load_plain_map(
    std::unordered_map<const void*, std::vector<real_t>>& bufs,
    const void* key, std::size_t like_size, const char* what,
    ckpt::ByteReader& r) {
  if (!r.b()) return;
  std::vector<real_t> v = r.real_vec();
  HYLO_CHECK(v.size() == like_size,
             "snapshot " << what << " buffer has " << v.size()
                         << " scalars, parameter has " << like_size);
  bufs[key] = std::move(v);
}

}  // namespace

void Optimizer::apply_sgd_update(Network& net, real_t scale) {
  for (auto* pb : net.param_blocks()) {
    Matrix& buf = momentum_w_[pb];
    if (buf.rows() != pb->gw.rows() || buf.cols() != pb->gw.cols())
      buf.resize(pb->gw.rows(), pb->gw.cols());
    real_t* b = buf.data();
    real_t* w = pb->w.data();
    const real_t* g = pb->gw.data();
    for (index_t i = 0; i < buf.size(); ++i) {
      b[i] = cfg_.momentum * b[i] + scale * g[i] + cfg_.weight_decay * w[i];
      w[i] -= cfg_.lr * b[i];
    }
  }
  for (auto pp : net.plain_params()) {
    auto& buf = momentum_plain_[pp.value];
    if (buf.size() != pp.value->size()) buf.assign(pp.value->size(), 0.0);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      // Plain params (BatchNorm scale/shift) are never preconditioned and
      // conventionally excluded from weight decay.
      buf[i] = cfg_.momentum * buf[i] + scale * (*pp.grad)[i];
      (*pp.value)[i] -= cfg_.lr * buf[i];
    }
  }
}

index_t Optimizer::momentum_bytes() const {
  index_t total = 0;
  // hylo-lint: allow-begin(det_unordered_iter: commutative integer byte total, order-independent)
  for (const auto& [ptr, m] : momentum_w_) total += m.size();
  for (const auto& [ptr, v] : momentum_plain_)
    total += static_cast<index_t>(v.size());
  // hylo-lint: allow-end(det_unordered_iter)
  return total * static_cast<index_t>(sizeof(real_t));
}

index_t Optimizer::state_bytes() const { return momentum_bytes(); }

void Optimizer::save_state(Network& net, ckpt::ByteWriter& w) const {
  w.str(name());
  w.real(cfg_.lr);
  for (auto* pb : net.param_blocks()) save_block_map(momentum_w_, pb, w);
  for (auto pp : net.plain_params())
    save_plain_map(momentum_plain_, pp.value, w);
}

void Optimizer::load_state(Network& net, ckpt::ByteReader& r) {
  const std::string saved = r.str();
  HYLO_CHECK(saved == name(), "snapshot optimizer state is for "
                                  << saved << ", this run uses " << name());
  cfg_.lr = r.real();
  momentum_w_.clear();
  momentum_plain_.clear();
  for (auto* pb : net.param_blocks())
    load_block_map(momentum_w_, pb, pb->w, "momentum", r);
  for (auto pp : net.plain_params())
    load_plain_map(momentum_plain_, pp.value, pp.value->size(),
                   "plain momentum", r);
}

void Sgd::step(Network& net, index_t /*iteration*/) { apply_sgd_update(net); }

void Adam::step(Network& net, index_t /*iteration*/) {
  ++t_;
  const real_t bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<real_t>(t_));
  const real_t bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<real_t>(t_));
  for (auto* pb : net.param_blocks()) {
    State& st = state_[pb];
    if (st.m.rows() != pb->gw.rows() || st.m.cols() != pb->gw.cols()) {
      st.m.resize(pb->gw.rows(), pb->gw.cols());
      st.v.resize(pb->gw.rows(), pb->gw.cols());
    }
    real_t* m = st.m.data();
    real_t* v = st.v.data();
    real_t* w = pb->w.data();
    const real_t* g = pb->gw.data();
    for (index_t i = 0; i < st.m.size(); ++i) {
      const real_t gi = g[i] + cfg_.weight_decay * w[i];
      m[i] = cfg_.beta1 * m[i] + (1.0 - cfg_.beta1) * gi;
      v[i] = cfg_.beta2 * v[i] + (1.0 - cfg_.beta2) * gi * gi;
      w[i] -= cfg_.lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + cfg_.adam_eps);
    }
  }
  for (auto pp : net.plain_params()) {
    State& st = state_[pp.value];
    if (st.m_plain.size() != pp.value->size()) {
      st.m_plain.assign(pp.value->size(), 0.0);
      st.v_plain.assign(pp.value->size(), 0.0);
    }
    for (std::size_t i = 0; i < pp.value->size(); ++i) {
      const real_t gi = (*pp.grad)[i];
      st.m_plain[i] = cfg_.beta1 * st.m_plain[i] + (1.0 - cfg_.beta1) * gi;
      st.v_plain[i] = cfg_.beta2 * st.v_plain[i] + (1.0 - cfg_.beta2) * gi * gi;
      (*pp.value)[i] -= cfg_.lr * (st.m_plain[i] / bc1) /
                        (std::sqrt(st.v_plain[i] / bc2) + cfg_.adam_eps);
    }
  }
}

index_t Adam::state_bytes() const {
  index_t total = 0;
  // hylo-lint: allow-begin(det_unordered_iter: commutative integer byte total, order-independent)
  for (const auto& [ptr, st] : state_) {
    total += st.m.size() + st.v.size();
    total += static_cast<index_t>(st.m_plain.size() + st.v_plain.size());
  }
  // hylo-lint: allow-end(det_unordered_iter)
  return total * static_cast<index_t>(sizeof(real_t)) + momentum_bytes();
}

void Adam::save_state(Network& net, ckpt::ByteWriter& w) const {
  Optimizer::save_state(net, w);
  w.i64(t_);
  for (auto* pb : net.param_blocks()) {
    const auto it = state_.find(pb);
    w.b(it != state_.end());
    if (it != state_.end()) {
      w.matrix(it->second.m);
      w.matrix(it->second.v);
    }
  }
  for (auto pp : net.plain_params()) {
    const auto it = state_.find(pp.value);
    w.b(it != state_.end());
    if (it != state_.end()) {
      w.real_vec(it->second.m_plain);
      w.real_vec(it->second.v_plain);
    }
  }
}

void Adam::load_state(Network& net, ckpt::ByteReader& r) {
  Optimizer::load_state(net, r);
  t_ = r.i64();
  state_.clear();
  for (auto* pb : net.param_blocks()) {
    if (!r.b()) continue;
    State& st = state_[pb];
    st.m = r.matrix();
    st.v = r.matrix();
    HYLO_CHECK(st.m.rows() == pb->w.rows() && st.m.cols() == pb->w.cols() &&
                   st.v.rows() == pb->w.rows() && st.v.cols() == pb->w.cols(),
               "snapshot Adam moments do not match parameter shape");
  }
  for (auto pp : net.plain_params()) {
    if (!r.b()) continue;
    State& st = state_[pp.value];
    st.m_plain = r.real_vec();
    st.v_plain = r.real_vec();
    HYLO_CHECK(st.m_plain.size() == pp.value->size() &&
                   st.v_plain.size() == pp.value->size(),
               "snapshot Adam plain moments do not match parameter size");
  }
}

}  // namespace hylo
