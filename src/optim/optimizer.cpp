#include "hylo/optim/optimizer.hpp"

#include <cmath>

#include "hylo/tensor/ops.hpp"

namespace hylo {

void Optimizer::apply_sgd_update(Network& net, real_t scale) {
  for (auto* pb : net.param_blocks()) {
    Matrix& buf = momentum_w_[pb];
    if (buf.rows() != pb->gw.rows() || buf.cols() != pb->gw.cols())
      buf.resize(pb->gw.rows(), pb->gw.cols());
    real_t* b = buf.data();
    real_t* w = pb->w.data();
    const real_t* g = pb->gw.data();
    for (index_t i = 0; i < buf.size(); ++i) {
      b[i] = cfg_.momentum * b[i] + scale * g[i] + cfg_.weight_decay * w[i];
      w[i] -= cfg_.lr * b[i];
    }
  }
  for (auto pp : net.plain_params()) {
    auto& buf = momentum_plain_[pp.value];
    if (buf.size() != pp.value->size()) buf.assign(pp.value->size(), 0.0);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      // Plain params (BatchNorm scale/shift) are never preconditioned and
      // conventionally excluded from weight decay.
      buf[i] = cfg_.momentum * buf[i] + scale * (*pp.grad)[i];
      (*pp.value)[i] -= cfg_.lr * buf[i];
    }
  }
}

index_t Optimizer::momentum_bytes() const {
  index_t total = 0;
  for (const auto& [ptr, m] : momentum_w_) total += m.size();
  for (const auto& [ptr, v] : momentum_plain_)
    total += static_cast<index_t>(v.size());
  return total * static_cast<index_t>(sizeof(real_t));
}

index_t Optimizer::state_bytes() const { return momentum_bytes(); }

void Sgd::step(Network& net, index_t /*iteration*/) { apply_sgd_update(net); }

void Adam::step(Network& net, index_t /*iteration*/) {
  ++t_;
  const real_t bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<real_t>(t_));
  const real_t bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<real_t>(t_));
  for (auto* pb : net.param_blocks()) {
    State& st = state_[pb];
    if (st.m.rows() != pb->gw.rows() || st.m.cols() != pb->gw.cols()) {
      st.m.resize(pb->gw.rows(), pb->gw.cols());
      st.v.resize(pb->gw.rows(), pb->gw.cols());
    }
    real_t* m = st.m.data();
    real_t* v = st.v.data();
    real_t* w = pb->w.data();
    const real_t* g = pb->gw.data();
    for (index_t i = 0; i < st.m.size(); ++i) {
      const real_t gi = g[i] + cfg_.weight_decay * w[i];
      m[i] = cfg_.beta1 * m[i] + (1.0 - cfg_.beta1) * gi;
      v[i] = cfg_.beta2 * v[i] + (1.0 - cfg_.beta2) * gi * gi;
      w[i] -= cfg_.lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + cfg_.adam_eps);
    }
  }
  for (auto pp : net.plain_params()) {
    State& st = state_[pp.value];
    if (st.m_plain.size() != pp.value->size()) {
      st.m_plain.assign(pp.value->size(), 0.0);
      st.v_plain.assign(pp.value->size(), 0.0);
    }
    for (std::size_t i = 0; i < pp.value->size(); ++i) {
      const real_t gi = (*pp.grad)[i];
      st.m_plain[i] = cfg_.beta1 * st.m_plain[i] + (1.0 - cfg_.beta1) * gi;
      st.v_plain[i] = cfg_.beta2 * st.v_plain[i] + (1.0 - cfg_.beta2) * gi * gi;
      (*pp.value)[i] -= cfg_.lr * (st.m_plain[i] / bc1) /
                        (std::sqrt(st.v_plain[i] / bc2) + cfg_.adam_eps);
    }
  }
}

index_t Adam::state_bytes() const {
  index_t total = 0;
  for (const auto& [ptr, st] : state_) {
    total += st.m.size() + st.v.size();
    total += static_cast<index_t>(st.m_plain.size() + st.v_plain.size());
  }
  return total * static_cast<index_t>(sizeof(real_t)) + momentum_bytes();
}

}  // namespace hylo
