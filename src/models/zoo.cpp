#include "hylo/models/zoo.hpp"

#include <memory>
#include <utility>

#include "hylo/common/rng.hpp"
#include "hylo/nn/layers.hpp"

namespace hylo {

namespace {

// Conv3x3 + BN + ReLU chain; returns the ReLU node id.
int conv_bn_relu(Network& net, int x, index_t channels, index_t stride,
                 Rng& rng, const std::string& name) {
  x = net.add(std::make_unique<Conv2d>(channels, 3, stride, 1, rng, name), x);
  x = net.add(std::make_unique<BatchNorm2d>(), x);
  return net.add(std::make_unique<ReLU>(), x);
}

}  // namespace

Network make_mlp(Shape input, const std::vector<index_t>& hidden,
                 index_t classes, std::uint64_t seed) {
  Rng rng(seed);
  Network net("mlp");
  int x = net.add_input(input);
  for (std::size_t i = 0; i < hidden.size(); ++i) {
    x = net.add(std::make_unique<Linear>(hidden[i], rng,
                                         "fc" + std::to_string(i + 1)),
                x);
    x = net.add(std::make_unique<ReLU>(), x);
  }
  net.add(std::make_unique<Linear>(classes, rng, "head"), x);
  return net;
}

Network make_c3f1(Shape input, index_t classes, index_t base_channels,
                  std::uint64_t seed) {
  Rng rng(seed);
  Network net("c3f1");
  int x = net.add_input(input);
  x = net.add(std::make_unique<Conv2d>(base_channels, 3, 1, 1, rng, "conv1"), x);
  x = net.add(std::make_unique<ReLU>(), x);
  x = net.add(std::make_unique<MaxPool2d>(2, 2), x);
  x = net.add(std::make_unique<Conv2d>(2 * base_channels, 3, 1, 1, rng, "conv2"),
              x);
  x = net.add(std::make_unique<ReLU>(), x);
  x = net.add(std::make_unique<MaxPool2d>(2, 2), x);
  x = net.add(std::make_unique<Conv2d>(4 * base_channels, 3, 1, 1, rng, "conv3"),
              x);
  x = net.add(std::make_unique<ReLU>(), x);
  x = net.add(std::make_unique<GlobalAvgPool>(), x);
  net.add(std::make_unique<Linear>(classes, rng, "fc"), x);
  return net;
}

Network make_resnet(Shape input, index_t classes, index_t blocks_per_stage,
                    index_t width, std::uint64_t seed) {
  HYLO_CHECK(blocks_per_stage >= 1 && width >= 1, "bad resnet config");
  Rng rng(seed);
  Network net("resnet" + std::to_string(6 * blocks_per_stage + 2));
  int x = net.add_input(input);
  x = conv_bn_relu(net, x, width, 1, rng, "stem");
  index_t in_ch = width;
  for (int stage = 0; stage < 3; ++stage) {
    const index_t ch = width << stage;
    for (index_t b = 0; b < blocks_per_stage; ++b) {
      const index_t stride = (stage > 0 && b == 0) ? 2 : 1;
      const std::string tag =
          "s" + std::to_string(stage + 1) + "b" + std::to_string(b + 1);
      // Main branch: conv-bn-relu-conv-bn.
      int y = conv_bn_relu(net, x, ch, stride, rng, tag + "_conv1");
      y = net.add(std::make_unique<Conv2d>(ch, 3, 1, 1, rng, tag + "_conv2"), y);
      y = net.add(std::make_unique<BatchNorm2d>(), y);
      // Shortcut: identity, or 1x1 conv + bn when shape changes.
      int sc = x;
      if (stride != 1 || in_ch != ch) {
        sc = net.add(
            std::make_unique<Conv2d>(ch, 1, stride, 0, rng, tag + "_down"), x);
        sc = net.add(std::make_unique<BatchNorm2d>(), sc);
      }
      x = net.add(std::make_unique<Add>(), {y, sc});
      x = net.add(std::make_unique<ReLU>(), x);
      in_ch = ch;
    }
  }
  x = net.add(std::make_unique<GlobalAvgPool>(), x);
  net.add(std::make_unique<Linear>(classes, rng, "fc"), x);
  return net;
}

Network make_densenet(Shape input, index_t classes, index_t growth,
                      index_t block_layers, std::uint64_t seed) {
  HYLO_CHECK(growth >= 1 && block_layers >= 1, "bad densenet config");
  Rng rng(seed);
  Network net("densenet");
  int x = net.add_input(input);
  index_t channels = 2 * growth;
  x = net.add(std::make_unique<Conv2d>(channels, 3, 1, 1, rng, "stem"), x);
  x = net.add(std::make_unique<BatchNorm2d>(), x);
  x = net.add(std::make_unique<ReLU>(), x);
  for (int block = 0; block < 2; ++block) {
    for (index_t l = 0; l < block_layers; ++l) {
      const std::string tag = "d" + std::to_string(block + 1) + "l" +
                              std::to_string(l + 1);
      int y = conv_bn_relu(net, x, growth, 1, rng, tag);
      x = net.add(std::make_unique<Concat>(), {x, y});
      channels += growth;
    }
    if (block == 0) {
      // Transition: 1x1 conv halving channels, then 2x average pool.
      channels = channels / 2;
      x = net.add(std::make_unique<Conv2d>(channels, 1, 1, 0, rng, "trans"), x);
      x = net.add(std::make_unique<BatchNorm2d>(), x);
      x = net.add(std::make_unique<ReLU>(), x);
      x = net.add(std::make_unique<AvgPool2d>(2), x);
    }
  }
  x = net.add(std::make_unique<GlobalAvgPool>(), x);
  net.add(std::make_unique<Linear>(classes, rng, "fc"), x);
  return net;
}

Network make_unet(Shape input, index_t base_channels, index_t depth,
                  std::uint64_t seed) {
  HYLO_CHECK(depth >= 1 && base_channels >= 1, "bad unet config");
  const index_t div = index_t{1} << depth;
  HYLO_CHECK(input.h % div == 0 && input.w % div == 0,
             "unet input must be divisible by 2^depth");
  Rng rng(seed);
  Network net("unet");
  int x = net.add_input(input);

  auto double_conv = [&](int in, index_t ch, const std::string& tag) {
    int y = conv_bn_relu(net, in, ch, 1, rng, tag + "_c1");
    return conv_bn_relu(net, y, ch, 1, rng, tag + "_c2");
  };

  std::vector<int> skips;
  index_t ch = base_channels;
  for (index_t d = 0; d < depth; ++d) {
    x = double_conv(x, ch, "enc" + std::to_string(d + 1));
    skips.push_back(x);
    x = net.add(std::make_unique<MaxPool2d>(2, 2), x);
    ch *= 2;
  }
  x = double_conv(x, ch, "bottleneck");
  for (index_t d = depth; d-- > 0;) {
    ch /= 2;
    x = net.add(std::make_unique<Upsample2x>(), x);
    x = net.add(std::make_unique<Concat>(),
                {x, skips[static_cast<std::size_t>(d)]});
    x = double_conv(x, ch, "dec" + std::to_string(d + 1));
  }
  net.add(std::make_unique<Conv2d>(1, 1, 1, 0, rng, "head"), x);
  return net;
}

std::vector<LayerDim> layer_dims(Network& net, const std::string& model_name) {
  std::vector<LayerDim> out;
  for (auto* pb : net.param_blocks())
    out.push_back({model_name, pb->name, pb->d_in + 1, pb->d_out});
  return out;
}

namespace {

void push(std::vector<LayerDim>& v, const std::string& model,
          const std::string& layer, index_t cin, index_t k, index_t cout) {
  v.push_back({model, layer, cin * k * k + 1, cout});
}

std::vector<LayerDim> resnet50_dims() {
  std::vector<LayerDim> v;
  const std::string m = "ResNet-50";
  push(v, m, "stem", 3, 7, 64);
  const index_t stage_width[4] = {64, 128, 256, 512};
  const index_t stage_blocks[4] = {3, 4, 6, 3};
  index_t cin = 64;
  for (int s = 0; s < 4; ++s) {
    const index_t w = stage_width[s];
    for (index_t b = 0; b < stage_blocks[s]; ++b) {
      const std::string tag = "s" + std::to_string(s + 1) + "b" +
                              std::to_string(b + 1);
      push(v, m, tag + "_1x1a", cin, 1, w);
      push(v, m, tag + "_3x3", w, 3, w);
      push(v, m, tag + "_1x1b", w, 1, 4 * w);
      if (b == 0) push(v, m, tag + "_down", cin, 1, 4 * w);
      cin = 4 * w;
    }
  }
  v.push_back({m, "fc", 2048 + 1, 1000});
  return v;
}

std::vector<LayerDim> resnet32_dims() {
  std::vector<LayerDim> v;
  const std::string m = "ResNet-32";
  push(v, m, "stem", 3, 3, 16);
  index_t cin = 16;
  for (int s = 0; s < 3; ++s) {
    const index_t w = index_t{16} << s;
    for (index_t b = 0; b < 5; ++b) {
      const std::string tag = "s" + std::to_string(s + 1) + "b" +
                              std::to_string(b + 1);
      push(v, m, tag + "_conv1", cin, 3, w);
      push(v, m, tag + "_conv2", w, 3, w);
      if (cin != w) push(v, m, tag + "_down", cin, 1, w);
      cin = w;
    }
  }
  v.push_back({m, "fc", 64 + 1, 10});
  return v;
}

std::vector<LayerDim> densenet121_dims() {
  std::vector<LayerDim> v;
  const std::string m = "DenseNet-121";
  const index_t growth = 32;
  push(v, m, "stem", 3, 7, 64);
  index_t ch = 64;
  const index_t blocks[4] = {6, 12, 24, 16};
  for (int b = 0; b < 4; ++b) {
    for (index_t l = 0; l < blocks[b]; ++l) {
      const std::string tag = "d" + std::to_string(b + 1) + "l" +
                              std::to_string(l + 1);
      push(v, m, tag + "_1x1", ch, 1, 4 * growth);
      push(v, m, tag + "_3x3", 4 * growth, 3, growth);
      ch += growth;
    }
    if (b < 3) {
      push(v, m, "trans" + std::to_string(b + 1), ch, 1, ch / 2);
      ch /= 2;
    }
  }
  v.push_back({m, "fc", ch + 1, 1000});
  return v;
}

std::vector<LayerDim> unet_dims() {
  std::vector<LayerDim> v;
  const std::string m = "U-Net";
  index_t cin = 3;
  index_t ch = 32;
  for (int d = 0; d < 4; ++d) {
    const std::string tag = "enc" + std::to_string(d + 1);
    push(v, m, tag + "_c1", cin, 3, ch);
    push(v, m, tag + "_c2", ch, 3, ch);
    cin = ch;
    ch *= 2;
  }
  push(v, m, "bott_c1", cin, 3, ch);
  push(v, m, "bott_c2", ch, 3, ch);
  for (int d = 4; d-- > 0;) {
    const index_t up_in = ch;
    ch /= 2;
    const std::string tag = "dec" + std::to_string(d + 1);
    push(v, m, tag + "_up", up_in, 2, ch);
    push(v, m, tag + "_c1", 2 * ch, 3, ch);
    push(v, m, tag + "_c2", ch, 3, ch);
  }
  push(v, m, "head", 32, 1, 1);
  return v;
}

std::vector<LayerDim> c3f1_dims() {
  std::vector<LayerDim> v;
  const std::string m = "3C1F";
  push(v, m, "conv1", 1, 3, 32);
  push(v, m, "conv2", 32, 3, 64);
  push(v, m, "conv3", 64, 3, 128);
  v.push_back({m, "fc", 128 * 3 * 3 + 1, 10});
  return v;
}

}  // namespace

std::vector<LayerDim> reference_layer_dims(const std::string& model_name) {
  if (model_name == "ResNet-50") return resnet50_dims();
  if (model_name == "ResNet-32") return resnet32_dims();
  if (model_name == "DenseNet-121") return densenet121_dims();
  if (model_name == "U-Net") return unet_dims();
  if (model_name == "3C1F") return c3f1_dims();
  HYLO_CHECK(false, "unknown reference model " << model_name);
  return {};
}

std::vector<std::string> reference_model_names() {
  return {"ResNet-50", "ResNet-32", "DenseNet-121", "U-Net", "3C1F"};
}

}  // namespace hylo
