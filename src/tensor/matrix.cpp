#include "hylo/tensor/matrix.hpp"

namespace hylo {

Matrix::Matrix(std::initializer_list<std::initializer_list<real_t>> rows) {
  rows_ = static_cast<index_t>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<index_t>(rows.begin()->size());
  data_.reserve(static_cast<std::size_t>(rows_ * cols_));
  for (const auto& r : rows) {
    HYLO_CHECK(static_cast<index_t>(r.size()) == cols_, "ragged init list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(index_t n) {
  Matrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(const Matrix& d) {
  HYLO_CHECK(d.rows() == 1 || d.cols() == 1, "diag needs a vector");
  const index_t n = d.size();
  Matrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::row(index_t r) const {
  HYLO_CHECK(r >= 0 && r < rows_, "row " << r << " out of " << rows_);
  Matrix out(1, cols_);
  const real_t* src = row_ptr(r);
  std::copy(src, src + cols_, out.data());
  return out;
}

Matrix Matrix::col(index_t c) const {
  HYLO_CHECK(c >= 0 && c < cols_, "col " << c << " out of " << cols_);
  Matrix out(rows_, 1);
  for (index_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::rows_range(index_t r0, index_t r1) const {
  HYLO_CHECK(r0 >= 0 && r0 <= r1 && r1 <= rows_,
             "rows_range [" << r0 << "," << r1 << ") of " << rows_);
  Matrix out(r1 - r0, cols_);
  std::copy(row_ptr(r0), row_ptr(r0) + (r1 - r0) * cols_, out.data());
  return out;
}

Matrix Matrix::select_rows(const std::vector<index_t>& idx) const {
  Matrix out(static_cast<index_t>(idx.size()), cols_);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const index_t r = idx[i];
    HYLO_CHECK(r >= 0 && r < rows_, "select_rows index " << r);
    std::copy(row_ptr(r), row_ptr(r) + cols_,
              out.row_ptr(static_cast<index_t>(i)));
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  constexpr index_t kBlock = 32;
  for (index_t rb = 0; rb < rows_; rb += kBlock)
    for (index_t cb = 0; cb < cols_; cb += kBlock) {
      const index_t rend = std::min(rb + kBlock, rows_);
      const index_t cend = std::min(cb + kBlock, cols_);
      for (index_t r = rb; r < rend; ++r)
        for (index_t c = cb; c < cend; ++c) out(c, r) = (*this)(r, c);
    }
  return out;
}

Matrix Matrix::with_ones_column() const {
  Matrix out(rows_, cols_ + 1);
  for (index_t r = 0; r < rows_; ++r) {
    std::copy(row_ptr(r), row_ptr(r) + cols_, out.row_ptr(r));
    out(r, cols_) = 1.0;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& o) const {
  Matrix out = *this;
  out += o;
  return out;
}

Matrix Matrix::operator-(const Matrix& o) const {
  Matrix out = *this;
  out -= o;
  return out;
}

Matrix Matrix::operator*(real_t s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  HYLO_CHECK(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in +=");
  for (index_t i = 0; i < size(); ++i) data_[static_cast<std::size_t>(i)] += o[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  HYLO_CHECK(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in -=");
  for (index_t i = 0; i < size(); ++i) data_[static_cast<std::size_t>(i)] -= o[i];
  return *this;
}

Matrix& Matrix::operator*=(real_t s) {
  for (auto& v : data_) v *= s;
  return *this;
}

}  // namespace hylo
