#include "hylo/tensor/gemm_packed.hpp"

#include <algorithm>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/par/thread_pool.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace hylo::kern {

namespace {

// Cache blocking: KC-deep panels keep one MRxKC A panel (16 KB at MR=8)
// plus one KCxNR B panel (8-16 KB) L1-resident under the microkernel while
// the MCxKC A block stays in L2. Both are multiples of every tier's MR/NR.
constexpr index_t kKC = 256;
constexpr index_t kMC = 64;
constexpr index_t kMaxMR = 8;
constexpr index_t kMaxNR = 8;

/// C-tile (MR x NR at stride ldc) += Apanel · Bpanel over kc steps.
/// Apanel is MR-interleaved (ap[kk*MR + r]), Bpanel NR-interleaved
/// (bp[kk*NR + c]); the k loop is innermost, so each C element accumulates
/// in strictly ascending k order — the per-tier determinism anchor.
using MicroFn = void (*)(index_t kc, const real_t* ap, const real_t* bp,
                         real_t* c, index_t ldc);

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("avx2,fma"))) void micro_avx2_8x4(index_t kc,
                                                        const real_t* ap,
                                                        const real_t* bp,
                                                        real_t* c,
                                                        index_t ldc) {
  __m256d c0 = _mm256_loadu_pd(c + 0 * ldc);
  __m256d c1 = _mm256_loadu_pd(c + 1 * ldc);
  __m256d c2 = _mm256_loadu_pd(c + 2 * ldc);
  __m256d c3 = _mm256_loadu_pd(c + 3 * ldc);
  __m256d c4 = _mm256_loadu_pd(c + 4 * ldc);
  __m256d c5 = _mm256_loadu_pd(c + 5 * ldc);
  __m256d c6 = _mm256_loadu_pd(c + 6 * ldc);
  __m256d c7 = _mm256_loadu_pd(c + 7 * ldc);
  for (index_t k = 0; k < kc; ++k) {
    const __m256d b = _mm256_loadu_pd(bp + k * 4);
    const real_t* a = ap + k * 8;
    c0 = _mm256_fmadd_pd(_mm256_set1_pd(a[0]), b, c0);
    c1 = _mm256_fmadd_pd(_mm256_set1_pd(a[1]), b, c1);
    c2 = _mm256_fmadd_pd(_mm256_set1_pd(a[2]), b, c2);
    c3 = _mm256_fmadd_pd(_mm256_set1_pd(a[3]), b, c3);
    c4 = _mm256_fmadd_pd(_mm256_set1_pd(a[4]), b, c4);
    c5 = _mm256_fmadd_pd(_mm256_set1_pd(a[5]), b, c5);
    c6 = _mm256_fmadd_pd(_mm256_set1_pd(a[6]), b, c6);
    c7 = _mm256_fmadd_pd(_mm256_set1_pd(a[7]), b, c7);
  }
  _mm256_storeu_pd(c + 0 * ldc, c0);
  _mm256_storeu_pd(c + 1 * ldc, c1);
  _mm256_storeu_pd(c + 2 * ldc, c2);
  _mm256_storeu_pd(c + 3 * ldc, c3);
  _mm256_storeu_pd(c + 4 * ldc, c4);
  _mm256_storeu_pd(c + 5 * ldc, c5);
  _mm256_storeu_pd(c + 6 * ldc, c6);
  _mm256_storeu_pd(c + 7 * ldc, c7);
}

__attribute__((target("avx512f,avx512dq"))) void micro_avx512_8x8(
    index_t kc, const real_t* ap, const real_t* bp, real_t* c, index_t ldc) {
  __m512d c0 = _mm512_loadu_pd(c + 0 * ldc);
  __m512d c1 = _mm512_loadu_pd(c + 1 * ldc);
  __m512d c2 = _mm512_loadu_pd(c + 2 * ldc);
  __m512d c3 = _mm512_loadu_pd(c + 3 * ldc);
  __m512d c4 = _mm512_loadu_pd(c + 4 * ldc);
  __m512d c5 = _mm512_loadu_pd(c + 5 * ldc);
  __m512d c6 = _mm512_loadu_pd(c + 6 * ldc);
  __m512d c7 = _mm512_loadu_pd(c + 7 * ldc);
  for (index_t k = 0; k < kc; ++k) {
    const __m512d b = _mm512_loadu_pd(bp + k * 8);
    const real_t* a = ap + k * 8;
    c0 = _mm512_fmadd_pd(_mm512_set1_pd(a[0]), b, c0);
    c1 = _mm512_fmadd_pd(_mm512_set1_pd(a[1]), b, c1);
    c2 = _mm512_fmadd_pd(_mm512_set1_pd(a[2]), b, c2);
    c3 = _mm512_fmadd_pd(_mm512_set1_pd(a[3]), b, c3);
    c4 = _mm512_fmadd_pd(_mm512_set1_pd(a[4]), b, c4);
    c5 = _mm512_fmadd_pd(_mm512_set1_pd(a[5]), b, c5);
    c6 = _mm512_fmadd_pd(_mm512_set1_pd(a[6]), b, c6);
    c7 = _mm512_fmadd_pd(_mm512_set1_pd(a[7]), b, c7);
  }
  _mm512_storeu_pd(c + 0 * ldc, c0);
  _mm512_storeu_pd(c + 1 * ldc, c1);
  _mm512_storeu_pd(c + 2 * ldc, c2);
  _mm512_storeu_pd(c + 3 * ldc, c3);
  _mm512_storeu_pd(c + 4 * ldc, c4);
  _mm512_storeu_pd(c + 5 * ldc, c5);
  _mm512_storeu_pd(c + 6 * ldc, c6);
  _mm512_storeu_pd(c + 7 * ldc, c7);
}

__attribute__((target("avx2"))) void vmul_avx2(real_t* a, const real_t* b,
                                               index_t n) {
  index_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(a + i,
                     _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                   _mm256_loadu_pd(b + i)));
  for (; i < n; ++i) a[i] *= b[i];
}

__attribute__((target("avx512f"))) void vmul_avx512(real_t* a, const real_t* b,
                                                    index_t n) {
  index_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_pd(a + i,
                     _mm512_mul_pd(_mm512_loadu_pd(a + i),
                                   _mm512_loadu_pd(b + i)));
  for (; i < n; ++i) a[i] *= b[i];
}

__attribute__((target("avx2"))) void vscale_avx2(real_t* dst,
                                                 const real_t* src, real_t s,
                                                 index_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  index_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(sv, _mm256_loadu_pd(src + i)));
  for (; i < n; ++i) dst[i] = s * src[i];
}

__attribute__((target("avx512f"))) void vscale_avx512(real_t* dst,
                                                      const real_t* src,
                                                      real_t s, index_t n) {
  const __m512d sv = _mm512_set1_pd(s);
  index_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_pd(dst + i, _mm512_mul_pd(sv, _mm512_loadu_pd(src + i)));
  for (; i < n; ++i) dst[i] = s * src[i];
}

// Lane-partial dot products: 4/8 running lane sums folded pairwise at the
// end, plus a scalar tail — a fixed reduction tree, deterministic within
// the tier (reassociated relative to the scalar ascending loop).
__attribute__((target("avx2,fma"))) real_t vdot_avx2(const real_t* a,
                                                     const real_t* b,
                                                     index_t n) {
  __m256d acc = _mm256_setzero_pd();
  index_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc);
  alignas(32) real_t lanes[4];
  _mm256_storeu_pd(lanes, acc);
  real_t out = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) out += a[i] * b[i];
  return out;
}

__attribute__((target("avx512f"))) real_t vdot_avx512(const real_t* a,
                                                      const real_t* b,
                                                      index_t n) {
  __m512d acc = _mm512_setzero_pd();
  index_t i = 0;
  for (; i + 8 <= n; i += 8)
    acc = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i), acc);
  alignas(64) real_t lanes[8];
  _mm512_storeu_pd(lanes, acc);
  real_t out = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
               ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < n; ++i) out += a[i] * b[i];
  return out;
}

#endif  // x86

#if defined(__aarch64__)

void micro_neon_8x4(index_t kc, const real_t* ap, const real_t* bp, real_t* c,
                    index_t ldc) {
  float64x2_t c0a = vld1q_f64(c + 0 * ldc), c0b = vld1q_f64(c + 0 * ldc + 2);
  float64x2_t c1a = vld1q_f64(c + 1 * ldc), c1b = vld1q_f64(c + 1 * ldc + 2);
  float64x2_t c2a = vld1q_f64(c + 2 * ldc), c2b = vld1q_f64(c + 2 * ldc + 2);
  float64x2_t c3a = vld1q_f64(c + 3 * ldc), c3b = vld1q_f64(c + 3 * ldc + 2);
  float64x2_t c4a = vld1q_f64(c + 4 * ldc), c4b = vld1q_f64(c + 4 * ldc + 2);
  float64x2_t c5a = vld1q_f64(c + 5 * ldc), c5b = vld1q_f64(c + 5 * ldc + 2);
  float64x2_t c6a = vld1q_f64(c + 6 * ldc), c6b = vld1q_f64(c + 6 * ldc + 2);
  float64x2_t c7a = vld1q_f64(c + 7 * ldc), c7b = vld1q_f64(c + 7 * ldc + 2);
  for (index_t k = 0; k < kc; ++k) {
    const float64x2_t blo = vld1q_f64(bp + k * 4);
    const float64x2_t bhi = vld1q_f64(bp + k * 4 + 2);
    const real_t* a = ap + k * 8;
    c0a = vfmaq_n_f64(c0a, blo, a[0]);
    c0b = vfmaq_n_f64(c0b, bhi, a[0]);
    c1a = vfmaq_n_f64(c1a, blo, a[1]);
    c1b = vfmaq_n_f64(c1b, bhi, a[1]);
    c2a = vfmaq_n_f64(c2a, blo, a[2]);
    c2b = vfmaq_n_f64(c2b, bhi, a[2]);
    c3a = vfmaq_n_f64(c3a, blo, a[3]);
    c3b = vfmaq_n_f64(c3b, bhi, a[3]);
    c4a = vfmaq_n_f64(c4a, blo, a[4]);
    c4b = vfmaq_n_f64(c4b, bhi, a[4]);
    c5a = vfmaq_n_f64(c5a, blo, a[5]);
    c5b = vfmaq_n_f64(c5b, bhi, a[5]);
    c6a = vfmaq_n_f64(c6a, blo, a[6]);
    c6b = vfmaq_n_f64(c6b, bhi, a[6]);
    c7a = vfmaq_n_f64(c7a, blo, a[7]);
    c7b = vfmaq_n_f64(c7b, bhi, a[7]);
  }
  vst1q_f64(c + 0 * ldc, c0a);
  vst1q_f64(c + 0 * ldc + 2, c0b);
  vst1q_f64(c + 1 * ldc, c1a);
  vst1q_f64(c + 1 * ldc + 2, c1b);
  vst1q_f64(c + 2 * ldc, c2a);
  vst1q_f64(c + 2 * ldc + 2, c2b);
  vst1q_f64(c + 3 * ldc, c3a);
  vst1q_f64(c + 3 * ldc + 2, c3b);
  vst1q_f64(c + 4 * ldc, c4a);
  vst1q_f64(c + 4 * ldc + 2, c4b);
  vst1q_f64(c + 5 * ldc, c5a);
  vst1q_f64(c + 5 * ldc + 2, c5b);
  vst1q_f64(c + 6 * ldc, c6a);
  vst1q_f64(c + 6 * ldc + 2, c6b);
  vst1q_f64(c + 7 * ldc, c7a);
  vst1q_f64(c + 7 * ldc + 2, c7b);
}

void vmul_neon(real_t* a, const real_t* b, index_t n) {
  index_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(a + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) a[i] *= b[i];
}

void vscale_neon(real_t* dst, const real_t* src, real_t s, index_t n) {
  index_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(dst + i, vmulq_n_f64(vld1q_f64(src + i), s));
  for (; i < n; ++i) dst[i] = s * src[i];
}

real_t vdot_neon(const real_t* a, const real_t* b, index_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  index_t i = 0;
  for (; i + 2 <= n; i += 2)
    acc = vfmaq_f64(acc, vld1q_f64(a + i), vld1q_f64(b + i));
  real_t out = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) out += a[i] * b[i];
  return out;
}

#endif  // aarch64

struct TierCfg {
  index_t mr = 0;
  index_t nr = 0;
  MicroFn micro = nullptr;
};

TierCfg tier_cfg(Tier t) {
  switch (t) {
#if defined(__x86_64__) || defined(__i386__)
    case Tier::kAvx2:
      return {8, 4, micro_avx2_8x4};
    case Tier::kAvx512:
      return {8, 8, micro_avx512_8x8};
#endif
#if defined(__aarch64__)
    case Tier::kNeon:
      return {8, 4, micro_neon_8x4};
#endif
    default:
      break;
  }
  HYLO_CHECK(false, "packed GEMM requires a SIMD kernel tier (active: "
                        << tier_name(t) << ")");
  return {};  // unreachable
}

/// Per-thread pack scratch, indexed so that buffers alive at the same time
/// on one thread never alias: 0 = caller-side B pack, 1 = chunk-side A
/// pack, 2/3 = fused-conv B/A packs (used inside conv's parallel chunks,
/// which never run a packed_gemm_* of their own).
std::vector<real_t>& tl_scratch(int which) {
  static thread_local std::vector<real_t> bufs[4];
  return bufs[which];
}

/// Pack rows [i0, i0+mc) x [k0, k0+kc) of a logical operand into MR-tall
/// panels: dst[panel][kk*mr + r]. Rows past the operand (padding to MR) are
/// zero-filled so the microkernel can always run full-height.
template <typename SrcA>
void pack_a(real_t* dst, index_t i0, index_t mc, index_t k0, index_t kc,
            index_t mr, const SrcA& src) {
  index_t off = 0;
  for (index_t p = 0; p < mc; p += mr) {
    const index_t rows = std::min(mr, mc - p);
    for (index_t r = 0; r < mr; ++r) {
      real_t* out = dst + off + r;
      if (r < rows) {
        const index_t i = i0 + p + r;
        for (index_t kk = 0; kk < kc; ++kk) out[kk * mr] = src(i, k0 + kk);
      } else {
        for (index_t kk = 0; kk < kc; ++kk) out[kk * mr] = 0.0;
      }
    }
    off += kc * mr;
  }
}

/// Pack [k0, k0+kc) x [0, n) of a logical operand into NR-wide panels:
/// dst[panel][kk*nr + c], padding lanes zero-filled.
template <typename SrcB>
void pack_b(real_t* dst, index_t k0, index_t kc, index_t n, index_t nr,
            const SrcB& src) {
  index_t off = 0;
  for (index_t j0 = 0; j0 < n; j0 += nr) {
    const index_t jw = std::min(nr, n - j0);
    for (index_t kk = 0; kk < kc; ++kk) {
      real_t* out = dst + off + kk * nr;
      for (index_t l = 0; l < jw; ++l) out[l] = src(k0 + kk, j0 + l);
      for (index_t l = jw; l < nr; ++l) out[l] = 0.0;
    }
    off += kc * nr;
  }
}

/// Edge tile: run the microkernel on a copy-in/copy-out scratch tile so the
/// per-element fma chain is identical to the direct path, then write back
/// only the `rows` x `cols` valid region.
void micro_edge(const TierCfg& cfg, index_t kc, const real_t* ap,
                const real_t* bp, real_t* c, index_t ldc, index_t rows,
                index_t cols) {
  real_t tmp[kMaxMR * kMaxNR];
  std::fill(tmp, tmp + cfg.mr * cfg.nr, 0.0);
  for (index_t r = 0; r < rows; ++r)
    for (index_t l = 0; l < cols; ++l) tmp[r * cfg.nr + l] = c[r * ldc + l];
  cfg.micro(kc, ap, bp, tmp, cfg.nr);
  for (index_t r = 0; r < rows; ++r)
    for (index_t l = 0; l < cols; ++l) c[r * ldc + l] = tmp[r * cfg.nr + l];
}

/// gram_nt's diagonal-straddling tiles: like micro_edge, but only elements
/// with global column >= global row (the declared add_row_tail region) are
/// copied in and written back.
void micro_edge_tri(const TierCfg& cfg, index_t kc, const real_t* ap,
                    const real_t* bp, real_t* c, index_t ldc, index_t rows,
                    index_t cols, index_t i, index_t j0) {
  real_t tmp[kMaxMR * kMaxNR];
  std::fill(tmp, tmp + cfg.mr * cfg.nr, 0.0);
  for (index_t r = 0; r < rows; ++r)
    for (index_t l = 0; l < cols; ++l)
      if (j0 + l >= i + r) tmp[r * cfg.nr + l] = c[r * ldc + l];
  cfg.micro(kc, ap, bp, tmp, cfg.nr);
  for (index_t r = 0; r < rows; ++r)
    for (index_t l = 0; l < cols; ++l)
      if (j0 + l >= i + r) c[r * ldc + l] = tmp[r * cfg.nr + l];
}

/// Shared driver: C += srcA · srcB with C m x n, inner dimension k. B is
/// packed once on the calling thread; rows of C are partitioned through
/// hylo::par with an MR-aligned grain, each chunk packing its own A blocks.
template <typename SrcA, typename SrcB>
void gemm_driver(index_t m, index_t n, index_t k, const SrcA& srcA,
                 const SrcB& srcB, Matrix& c, const char* label) {
  if (m == 0 || n == 0 || k == 0) return;
  const TierCfg cfg = tier_cfg(active());
  const index_t mr = cfg.mr, nr = cfg.nr;
  const index_t npanels = (n + nr - 1) / nr;

  std::vector<real_t>& bpack = tl_scratch(0);
  bpack.resize(static_cast<std::size_t>(k * npanels * nr));
  for (index_t k0 = 0; k0 < k; k0 += kKC) {
    const index_t kc = std::min(kKC, k - k0);
    pack_b(bpack.data() + k0 * npanels * nr, k0, kc, n, nr, srcB);
  }
  const real_t* bp_all = bpack.data();
  const index_t ldc = c.cols();
  real_t* cp = c.data();

  par::parallel_for(
      0, m, mr,
      [&](index_t i0, index_t i1) {
        std::vector<real_t>& apack = tl_scratch(1);
        // pack_a pads the row count up to a whole number of MR panels.
        const index_t mc_pad =
            ((std::min(kMC, i1 - i0) + mr - 1) / mr) * mr;
        apack.resize(static_cast<std::size_t>(mc_pad * std::min(kKC, k)));
        for (index_t k0 = 0; k0 < k; k0 += kKC) {
          const index_t kc = std::min(kKC, k - k0);
          const real_t* bblk = bp_all + k0 * npanels * nr;
          for (index_t ic = i0; ic < i1; ic += kMC) {
            const index_t mc = std::min(kMC, i1 - ic);
            pack_a(apack.data(), ic, mc, k0, kc, mr, srcA);
            for (index_t p = 0; p < mc; p += mr) {
              const real_t* ap = apack.data() + (p / mr) * kc * mr;
              const index_t rows = std::min(mr, mc - p);
              real_t* crow = cp + (ic + p) * ldc;
              for (index_t q = 0; q < npanels; ++q) {
                const real_t* bpan = bblk + q * kc * nr;
                const index_t j0 = q * nr;
                const index_t jw = std::min(nr, n - j0);
                if (rows == mr && jw == nr)
                  cfg.micro(kc, ap, bpan, crow + j0, ldc);
                else
                  micro_edge(cfg, kc, ap, bpan, crow + j0, ldc, rows, jw);
              }
            }
          }
        }
      },
      label, audit::row_block(c));
}

// ---- Fused im2col pack sources ----------------------------------------

/// Forward B pack: logical operand colsᵀ (k = patch coordinate, lane =
/// output position), elements generated straight from the NCHW sample.
/// `capture` accumulates the spatial sum Σ_p cols(p, j) per patch
/// coordinate while the values stream through the pack (panel-major, lane
/// ascending — deterministic at any thread count because the whole pack is
/// per sample inside one chunk).
void pack_b_conv_forward(real_t* dst, const real_t* x, const ConvGeometry& g,
                         index_t k0, index_t kc, index_t s, index_t nr,
                         real_t* capture) {
  const index_t ow = g.out_w();
  const index_t hw = g.in_h * g.in_w;
  const index_t khw = g.kernel_h * g.kernel_w;
  index_t oy[kMaxNR], ox[kMaxNR];
  index_t off = 0;
  for (index_t p0 = 0; p0 < s; p0 += nr) {
    const index_t lanes = std::min(nr, s - p0);
    for (index_t l = 0; l < lanes; ++l) {
      oy[l] = (p0 + l) / ow;
      ox[l] = (p0 + l) % ow;
    }
    for (index_t kk = 0; kk < kc; ++kk) {
      const index_t j = k0 + kk;
      const index_t ch = j / khw, rem = j % khw;
      const index_t ky = rem / g.kernel_w, kx = rem % g.kernel_w;
      const real_t* plane = x + ch * hw;
      real_t* out = dst + off + kk * nr;
      real_t acc = 0.0;
      for (index_t l = 0; l < nr; ++l) {
        real_t v = 0.0;
        if (l < lanes) {
          const index_t iy = oy[l] * g.stride + ky - g.pad;
          const index_t ix = ox[l] * g.stride + kx - g.pad;
          if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
            v = plane[iy * g.in_w + ix];
        }
        out[l] = v;
        acc += v;
      }
      if (capture != nullptr) capture[j] += acc;
    }
    off += kc * nr;
  }
}

/// Weight-gradient B pack: logical operand [cols | 1] (k = output position,
/// lane = patch coordinate; lane == patch is the augmented ones column).
void pack_b_conv_t(real_t* dst, const real_t* x, const ConvGeometry& g,
                   index_t k0, index_t kc, index_t naug, index_t nr) {
  const index_t ow = g.out_w();
  const index_t hw = g.in_h * g.in_w;
  const index_t khw = g.kernel_h * g.kernel_w;
  const index_t patch = naug - 1;
  index_t ch[kMaxNR], ky[kMaxNR], kx[kMaxNR];
  index_t off = 0;
  for (index_t j0 = 0; j0 < naug; j0 += nr) {
    const index_t lanes = std::min(nr, naug - j0);
    for (index_t l = 0; l < lanes; ++l) {
      const index_t j = j0 + l;
      if (j == patch) continue;  // ones column, handled below
      ch[l] = j / khw;
      const index_t rem = j % khw;
      ky[l] = rem / g.kernel_w;
      kx[l] = rem % g.kernel_w;
    }
    for (index_t kk = 0; kk < kc; ++kk) {
      const index_t p = k0 + kk;
      const index_t oy = p / ow, ox = p % ow;
      real_t* out = dst + off + kk * nr;
      for (index_t l = 0; l < nr; ++l) {
        real_t v = 0.0;
        if (l < lanes) {
          if (j0 + l == patch) {
            v = 1.0;
          } else {
            const index_t iy = oy * g.stride + ky[l] - g.pad;
            const index_t ix = ox * g.stride + kx[l] - g.pad;
            if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
              v = x[ch[l] * hw + iy * g.in_w + ix];
          }
        }
        out[l] = v;
      }
    }
    off += kc * nr;
  }
}

/// Serial tile sweep shared by the conv entry points: C rows [m0, m1)
/// (ldc-strided) += packed A block · packed B block for one KC slice.
void conv_tiles(const TierCfg& cfg, index_t kc, const real_t* ablk,
                const real_t* bblk, real_t* cbase, index_t ldc, index_t m0,
                index_t m1, index_t n) {
  const index_t mr = cfg.mr, nr = cfg.nr;
  const index_t npanels = (n + nr - 1) / nr;
  for (index_t p = m0; p < m1; p += mr) {
    const real_t* ap = ablk + ((p - m0) / mr) * kc * mr;
    const index_t rows = std::min(mr, m1 - p);
    real_t* crow = cbase + p * ldc;
    for (index_t q = 0; q < npanels; ++q) {
      const real_t* bpan = bblk + q * kc * nr;
      const index_t j0 = q * nr;
      const index_t jw = std::min(nr, n - j0);
      if (rows == mr && jw == nr)
        cfg.micro(kc, ap, bpan, crow + j0, ldc);
      else
        micro_edge(cfg, kc, ap, bpan, crow + j0, ldc, rows, jw);
    }
  }
}

}  // namespace

void packed_gemm_nn(const Matrix& a, const Matrix& b, Matrix& c,
                    real_t alpha) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  const index_t lda = k, ldb = n;
  gemm_driver(
      m, n, k,
      [pa, lda, alpha](index_t i, index_t kk) { return alpha * pa[i * lda + kk]; },
      [pb, ldb](index_t kk, index_t j) { return pb[kk * ldb + j]; }, c,
      "tensor/gemm");
}

void packed_gemm_tn(const Matrix& a, const real_t* s, const Matrix& b,
                    Matrix& c, real_t alpha) {
  const index_t k = a.rows(), m = a.cols(), n = b.cols();
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  const index_t lda = m, ldb = n;
  if (s == nullptr) {
    gemm_driver(
        m, n, k,
        [pa, lda, alpha](index_t i, index_t kk) {
          return alpha * pa[kk * lda + i];
        },
        [pb, ldb](index_t kk, index_t j) { return pb[kk * ldb + j]; }, c,
        "tensor/gemm_tn");
  } else {
    // Fold the diagonal into the A pack with the same association as the
    // scalar kernel: (alpha * s_k) * a_ki.
    gemm_driver(
        m, n, k,
        [pa, lda, alpha, s](index_t i, index_t kk) {
          return (alpha * s[kk]) * pa[kk * lda + i];
        },
        [pb, ldb](index_t kk, index_t j) { return pb[kk * ldb + j]; }, c,
        "tensor/gemm_tn");
  }
}

void packed_gemm_nt(const Matrix& a, const Matrix& b, Matrix& c,
                    real_t alpha) {
  const index_t m = a.rows(), k = a.cols(), n = b.rows();
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  const index_t lda = k, ldb = k;
  gemm_driver(
      m, n, k,
      [pa, lda, alpha](index_t i, index_t kk) { return alpha * pa[i * lda + kk]; },
      [pb, ldb](index_t kk, index_t j) { return pb[j * ldb + kk]; }, c,
      "tensor/gemm_nt");
}

void packed_gram_nt(const Matrix& a, Matrix& c) {
  const index_t m = a.rows(), k = a.cols();
  HYLO_CHECK(c.rows() == m && c.cols() == m, "packed_gram_nt C shape");
  if (m == 0) return;
  const TierCfg cfg = tier_cfg(active());
  const index_t mr = cfg.mr, nr = cfg.nr;
  const index_t npanels = (m + nr - 1) / nr;
  const real_t* pa = a.data();

  std::vector<real_t>& bpack = tl_scratch(0);
  bpack.resize(static_cast<std::size_t>(std::max<index_t>(k, 1) * npanels * nr));
  for (index_t k0 = 0; k0 < k; k0 += kKC) {
    const index_t kc = std::min(kKC, k - k0);
    pack_b(bpack.data() + k0 * npanels * nr, k0, kc, m, nr,
           [pa, k](index_t kk, index_t j) { return pa[j * k + kk]; });
  }
  const real_t* bp_all = bpack.data();
  const index_t ldc = m;
  real_t* cp = c.data();

  par::parallel_for(
      0, m, mr,
      [&](index_t i0, index_t i1) {
        std::vector<real_t>& apack = tl_scratch(1);
        const index_t mc_pad =
            ((std::min(kMC, i1 - i0) + mr - 1) / mr) * mr;
        apack.resize(static_cast<std::size_t>(
            mc_pad * std::min(kKC, std::max<index_t>(k, 1))));
        for (index_t k0 = 0; k0 < k; k0 += kKC) {
          const index_t kc = std::min(kKC, k - k0);
          const real_t* bblk = bp_all + k0 * npanels * nr;
          for (index_t ic = i0; ic < i1; ic += kMC) {
            const index_t mc = std::min(kMC, i1 - ic);
            pack_a(apack.data(), ic, mc, k0, kc, mr,
                   [pa, k](index_t i, index_t kk) { return pa[i * k + kk]; });
            for (index_t p = 0; p < mc; p += mr) {
              const real_t* ap = apack.data() + (p / mr) * kc * mr;
              const index_t i = ic + p;
              const index_t rows = std::min(mr, mc - p);
              real_t* crow = cp + i * ldc;
              for (index_t q = 0; q < npanels; ++q) {
                const index_t j0 = q * nr;
                if (j0 + nr <= i) continue;  // tile fully below the diagonal
                const real_t* bpan = bblk + q * kc * nr;
                const index_t jw = std::min(nr, m - j0);
                if (rows == mr && jw == nr && j0 >= i + mr - 1)
                  cfg.micro(kc, ap, bpan, crow + j0, ldc);
                else
                  micro_edge_tri(cfg, kc, ap, bpan, crow + j0, ldc, rows, jw,
                                 i, j0);
              }
            }
          }
        }
        // Mirror the chunk's rows into the column tail once, after every
        // KC block has accumulated: C(j, i) = C(i, j) — the same double, so
        // symmetry is exact.
        for (index_t i = i0; i < i1; ++i) {
          const real_t* ri = cp + i * ldc;
          for (index_t j = i + 1; j < m; ++j) cp[j * ldc + i] = ri[j];
        }
      },
      "tensor/gram_nt",
      audit::Footprint([&c](index_t i0, index_t i1, audit::WriteSet& ws) {
        ws.add_row_tail(c, i0, i1);
        ws.add_col_tail(c, i0, i1);
      }));
}

// ---- Vector helpers ----------------------------------------------------

void vmul(real_t* a, const real_t* b, index_t n) {
  switch (active()) {
#if defined(__x86_64__) || defined(__i386__)
    case Tier::kAvx512:
      vmul_avx512(a, b, n);
      return;
    case Tier::kAvx2:
      vmul_avx2(a, b, n);
      return;
#endif
#if defined(__aarch64__)
    case Tier::kNeon:
      vmul_neon(a, b, n);
      return;
#endif
    default:
      break;
  }
  for (index_t i = 0; i < n; ++i) a[i] *= b[i];
}

void vscale(real_t* dst, const real_t* src, real_t s, index_t n) {
  switch (active()) {
#if defined(__x86_64__) || defined(__i386__)
    case Tier::kAvx512:
      vscale_avx512(dst, src, s, n);
      return;
    case Tier::kAvx2:
      vscale_avx2(dst, src, s, n);
      return;
#endif
#if defined(__aarch64__)
    case Tier::kNeon:
      vscale_neon(dst, src, s, n);
      return;
#endif
    default:
      break;
  }
  for (index_t i = 0; i < n; ++i) dst[i] = s * src[i];
}

real_t vdot(const real_t* a, const real_t* b, index_t n) {
  switch (active()) {
#if defined(__x86_64__) || defined(__i386__)
    case Tier::kAvx512:
      return vdot_avx512(a, b, n);
    case Tier::kAvx2:
      return vdot_avx2(a, b, n);
#endif
#if defined(__aarch64__)
    case Tier::kNeon:
      return vdot_neon(a, b, n);
#endif
    default:
      break;
  }
  real_t acc = 0.0;
  for (index_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// ---- Fused-im2col convolution ------------------------------------------

PackedW pack_conv_forward_w(const Matrix& w_aug) {
  const TierCfg cfg = tier_cfg(active());
  const index_t c_out = w_aug.rows(), patch = w_aug.cols() - 1;
  const index_t npan = (c_out + cfg.mr - 1) / cfg.mr;
  PackedW pw;
  pw.tier = active();
  pw.rows = c_out;
  pw.cols = patch;
  pw.data.resize(static_cast<std::size_t>(patch * npan * cfg.mr));
  const real_t* pw_ = w_aug.data();
  const index_t ldw = w_aug.cols();
  for (index_t k0 = 0; k0 < patch; k0 += kKC) {
    const index_t kc = std::min(kKC, patch - k0);
    pack_a(pw.data.data() + k0 * npan * cfg.mr, 0, c_out, k0, kc, cfg.mr,
           [pw_, ldw](index_t i, index_t kk) { return pw_[i * ldw + kk]; });
  }
  pw.bias.resize(static_cast<std::size_t>(c_out));
  for (index_t o = 0; o < c_out; ++o)
    pw.bias[static_cast<std::size_t>(o)] = w_aug(o, patch);
  return pw;
}

PackedW pack_conv_dgrad_w(const Matrix& w_aug) {
  const TierCfg cfg = tier_cfg(active());
  const index_t c_out = w_aug.rows(), patch = w_aug.cols() - 1;
  const index_t npan = (patch + cfg.nr - 1) / cfg.nr;
  PackedW pw;
  pw.tier = active();
  pw.rows = c_out;
  pw.cols = patch;
  pw.data.resize(static_cast<std::size_t>(c_out * npan * cfg.nr));
  const real_t* pw_ = w_aug.data();
  const index_t ldw = w_aug.cols();
  for (index_t k0 = 0; k0 < c_out; k0 += kKC) {
    const index_t kc = std::min(kKC, c_out - k0);
    pack_b(pw.data.data() + k0 * npan * cfg.nr, k0, kc, patch, cfg.nr,
           [pw_, ldw](index_t kk, index_t j) { return pw_[kk * ldw + j]; });
  }
  return pw;
}

void packed_conv_forward(const PackedW& pw, const real_t* x,
                         const ConvGeometry& g, real_t* out_plane,
                         real_t* capture_row) {
  HYLO_CHECK(pw.tier == active(),
             "conv weights packed for tier '" << tier_name(pw.tier)
                                              << "' but active tier is '"
                                              << tier_name(active()) << "'");
  const TierCfg cfg = tier_cfg(active());
  const index_t c_out = pw.rows, patch = pw.cols;
  const index_t s = g.out_h() * g.out_w();
  const index_t npan_m = (c_out + cfg.mr - 1) / cfg.mr;
  const index_t npan_s = (s + cfg.nr - 1) / cfg.nr;

  for (index_t o = 0; o < c_out; ++o)
    std::fill(out_plane + o * s, out_plane + (o + 1) * s,
              pw.bias[static_cast<std::size_t>(o)]);
  if (capture_row != nullptr) std::fill(capture_row, capture_row + patch, 0.0);

  std::vector<real_t>& bbuf = tl_scratch(2);
  bbuf.resize(static_cast<std::size_t>(std::min(kKC, patch) * npan_s * cfg.nr));
  for (index_t k0 = 0; k0 < patch; k0 += kKC) {
    const index_t kc = std::min(kKC, patch - k0);
    pack_b_conv_forward(bbuf.data(), x, g, k0, kc, s, cfg.nr, capture_row);
    const real_t* ablk = pw.data.data() + k0 * npan_m * cfg.mr;
    conv_tiles(cfg, kc, ablk, bbuf.data(), out_plane, s, 0, c_out, s);
  }
}

void packed_conv_wgrad(const real_t* gout_plane, const real_t* x,
                       const ConvGeometry& g, Matrix& gw, index_t o0,
                       index_t o1) {
  const TierCfg cfg = tier_cfg(active());
  const index_t naug = gw.cols();
  const index_t s = g.out_h() * g.out_w();
  const index_t npan_n = (naug + cfg.nr - 1) / cfg.nr;

  std::vector<real_t>& bbuf = tl_scratch(2);
  std::vector<real_t>& abuf = tl_scratch(3);
  bbuf.resize(static_cast<std::size_t>(std::min(kKC, s) * npan_n * cfg.nr));
  const index_t mc_max =
      ((o1 - o0 + cfg.mr - 1) / cfg.mr) * cfg.mr;  // padded panel rows
  abuf.resize(static_cast<std::size_t>(std::min(kKC, s) * mc_max));

  for (index_t k0 = 0; k0 < s; k0 += kKC) {
    const index_t kc = std::min(kKC, s - k0);
    pack_b_conv_t(bbuf.data(), x, g, k0, kc, naug, cfg.nr);
    pack_a(abuf.data(), o0, o1 - o0, k0, kc, cfg.mr,
           [gout_plane, s](index_t o, index_t kk) {
             return gout_plane[o * s + kk];
           });
    // conv_tiles indexes C rows absolutely from its base pointer.
    conv_tiles(cfg, kc, abuf.data(), bbuf.data(), gw.data(), naug, o0, o1,
               naug);
  }
}

void packed_conv_dcols(const real_t* gout_plane, const PackedW& pw,
                       const ConvGeometry& g, Matrix& dcols) {
  HYLO_CHECK(pw.tier == active(),
             "conv weights packed for tier '" << tier_name(pw.tier)
                                              << "' but active tier is '"
                                              << tier_name(active()) << "'");
  const TierCfg cfg = tier_cfg(active());
  const index_t c_out = pw.rows, patch = pw.cols;
  const index_t s = g.out_h() * g.out_w();
  HYLO_CHECK(dcols.rows() == s && dcols.cols() == patch, "dcols shape");
  const index_t npan_n = (patch + cfg.nr - 1) / cfg.nr;

  std::vector<real_t>& abuf = tl_scratch(3);
  for (index_t k0 = 0; k0 < c_out; k0 += kKC) {
    const index_t kc = std::min(kKC, c_out - k0);
    const real_t* bblk = pw.data.data() + k0 * npan_n * cfg.nr;
    for (index_t ic = 0; ic < s; ic += kMC) {
      const index_t mc = std::min(kMC, s - ic);
      abuf.resize(static_cast<std::size_t>(
          ((mc + cfg.mr - 1) / cfg.mr) * cfg.mr * kc));
      pack_a(abuf.data(), ic, mc, k0, kc, cfg.mr,
             [gout_plane, s](index_t p, index_t kk) {
               return gout_plane[kk * s + p];
             });
      conv_tiles(cfg, kc, abuf.data(), bblk, dcols.data(), patch, ic, ic + mc,
                 patch);
    }
  }
}

}  // namespace hylo::kern
