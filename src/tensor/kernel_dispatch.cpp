#include "hylo/tensor/kernel_dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "hylo/common/check.hpp"

namespace hylo::kern {

namespace {

// Compile-time capability: the microkernels in gemm_packed.cpp are emitted
// with GCC/Clang target attributes, so x86 tiers exist in any x86 build
// regardless of -march; NEON is baseline on aarch64.
#if defined(__x86_64__) || defined(__i386__)
constexpr bool kCompiledX86 = true;
#else
constexpr bool kCompiledX86 = false;
#endif
#if defined(__aarch64__)
constexpr bool kCompiledNeon = true;
#else
constexpr bool kCompiledNeon = false;
#endif

bool cpu_supports(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kNeon:
      return kCompiledNeon;  // NEON is architecturally baseline on aarch64
    case Tier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Tier::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
  }
  return false;
}

// Process-wide active tier: -1 = unresolved, else the Tier value. Resolution
// happens once under first use; set_tier stores directly.
std::atomic<int> g_tier{-1};

Tier resolve_from_env() {
  const char* env = std::getenv("HYLO_KERNEL");
  if (env == nullptr || *env == '\0') return best();
  const Tier t = parse_tier(env);  // throws on unknown names
  HYLO_CHECK(available(t), "HYLO_KERNEL=" << env
                                          << " requests a kernel tier this "
                                             "CPU/build cannot run");
  return t;
}

}  // namespace

bool available(Tier t) {
  if (t == Tier::kScalar) return true;
  if (t == Tier::kNeon) return kCompiledNeon;
  if (!kCompiledX86) return false;
  return cpu_supports(t);
}

Tier best() {
  if (cpu_supports(Tier::kAvx512)) return Tier::kAvx512;
  if (cpu_supports(Tier::kAvx2)) return Tier::kAvx2;
  if (cpu_supports(Tier::kNeon)) return Tier::kNeon;
  return Tier::kScalar;
}

Tier active() {
  int v = g_tier.load(std::memory_order_relaxed);
  if (v < 0) {
    const Tier t = resolve_from_env();
    // Racing first uses resolve to the same value; last store wins harmlessly.
    g_tier.store(static_cast<int>(t), std::memory_order_relaxed);
    return t;
  }
  return static_cast<Tier>(v);
}

Tier set_tier(Tier t) {
  HYLO_CHECK(available(t), "kernel tier '" << tier_name(t)
                                           << "' is not available on this "
                                              "CPU/build");
  const Tier prev = active();
  g_tier.store(static_cast<int>(t), std::memory_order_relaxed);
  return prev;
}

Tier parse_tier(const std::string& name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "neon") return Tier::kNeon;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "avx512") return Tier::kAvx512;
  if (name == "native") return best();
  HYLO_CHECK(false, "unknown kernel tier '"
                        << name
                        << "' (expected scalar|neon|avx2|avx512|native)");
  return Tier::kScalar;  // unreachable
}

Tier set_tier_by_name(const std::string& name) {
  return set_tier(parse_tier(name));
}

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kNeon:
      return "neon";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "?";
}

}  // namespace hylo::kern
