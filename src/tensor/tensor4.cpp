#include "hylo/tensor/tensor4.hpp"

#include <algorithm>

namespace hylo {

Matrix Tensor4::as_matrix() const {
  Matrix m(n_, sample_size());
  std::copy(data_.begin(), data_.end(), m.data());
  return m;
}

Tensor4 Tensor4::from_matrix(const Matrix& m, index_t c, index_t h, index_t w) {
  HYLO_CHECK(m.cols() == c * h * w, "from_matrix shape");
  Tensor4 t(m.rows(), c, h, w);
  std::copy(m.data(), m.data() + m.size(), t.data());
  return t;
}

void im2col(const real_t* sample, const ConvGeometry& g, Matrix& cols) {
  const index_t oh = g.out_h(), ow = g.out_w();
  if (cols.rows() != oh * ow || cols.cols() != g.patch_size())
    cols.resize(oh * ow, g.patch_size());
  const index_t hw = g.in_h * g.in_w;
  for (index_t oy = 0; oy < oh; ++oy) {
    for (index_t ox = 0; ox < ow; ++ox) {
      real_t* dst = cols.row_ptr(oy * ow + ox);
      index_t col = 0;
      for (index_t c = 0; c < g.in_c; ++c) {
        const real_t* plane = sample + c * hw;
        for (index_t ky = 0; ky < g.kernel_h; ++ky) {
          const index_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= g.in_h) {
            for (index_t kx = 0; kx < g.kernel_w; ++kx) dst[col++] = 0.0;
            continue;
          }
          const real_t* row = plane + iy * g.in_w;
          for (index_t kx = 0; kx < g.kernel_w; ++kx) {
            const index_t ix = ox * g.stride + kx - g.pad;
            dst[col++] = (ix < 0 || ix >= g.in_w) ? 0.0 : row[ix];
          }
        }
      }
    }
  }
}

void col2im_add(const Matrix& cols, const ConvGeometry& g, real_t* sample) {
  const index_t oh = g.out_h(), ow = g.out_w();
  HYLO_CHECK(cols.rows() == oh * ow && cols.cols() == g.patch_size(),
             "col2im shape");
  const index_t hw = g.in_h * g.in_w;
  for (index_t oy = 0; oy < oh; ++oy) {
    for (index_t ox = 0; ox < ow; ++ox) {
      const real_t* src = cols.row_ptr(oy * ow + ox);
      index_t col = 0;
      for (index_t c = 0; c < g.in_c; ++c) {
        real_t* plane = sample + c * hw;
        for (index_t ky = 0; ky < g.kernel_h; ++ky) {
          const index_t iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= g.in_h) {
            col += g.kernel_w;
            continue;
          }
          real_t* row = plane + iy * g.in_w;
          for (index_t kx = 0; kx < g.kernel_w; ++kx) {
            const index_t ix = ox * g.stride + kx - g.pad;
            if (ix >= 0 && ix < g.in_w) row[ix] += src[col];
            ++col;
          }
        }
      }
    }
  }
}

}  // namespace hylo
