#include "hylo/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace hylo {

namespace {
// Cache blocking parameters: tuned for ~32KB L1d with doubles. The kernels
// below use an i-k-j loop order so the innermost loop streams rows of B and
// C, which vectorizes well for row-major storage.
constexpr index_t kBlockI = 64;
constexpr index_t kBlockK = 64;
constexpr index_t kBlockJ = 256;
}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha,
          real_t beta) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  HYLO_CHECK(b.rows() == k, "gemm inner dim " << b.rows() << " != " << k);
  if (c.rows() != m || c.cols() != n) {
    HYLO_CHECK(beta == 0.0, "beta != 0 with mismatched C");
    c.resize(m, n);
  }
  if (beta == 0.0)
    c.zero();
  else if (beta != 1.0)
    c *= beta;

  for (index_t ib = 0; ib < m; ib += kBlockI)
    for (index_t kb = 0; kb < k; kb += kBlockK)
      for (index_t jb = 0; jb < n; jb += kBlockJ) {
        const index_t iend = std::min(ib + kBlockI, m);
        const index_t kend = std::min(kb + kBlockK, k);
        const index_t jend = std::min(jb + kBlockJ, n);
        for (index_t i = ib; i < iend; ++i) {
          real_t* ci = c.row_ptr(i);
          const real_t* ai = a.row_ptr(i);
          for (index_t kk = kb; kk < kend; ++kk) {
            const real_t aik = alpha * ai[kk];
            if (aik == 0.0) continue;
            const real_t* bk = b.row_ptr(kk);
            for (index_t j = jb; j < jend; ++j) ci[j] += aik * bk[j];
          }
        }
      }
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha,
             real_t beta) {
  // C = alpha * A^T B + beta * C, A: k x m, B: k x n.
  const index_t k = a.rows(), m = a.cols(), n = b.cols();
  HYLO_CHECK(b.rows() == k, "gemm_tn inner dim " << b.rows() << " != " << k);
  if (c.rows() != m || c.cols() != n) {
    HYLO_CHECK(beta == 0.0, "beta != 0 with mismatched C");
    c.resize(m, n);
  }
  if (beta == 0.0)
    c.zero();
  else if (beta != 1.0)
    c *= beta;

  // Loop over k outermost: rank-1 updates C += alpha * a_k^T b_k, where a_k
  // and b_k are contiguous rows — good locality without transposing A.
  for (index_t kk = 0; kk < k; ++kk) {
    const real_t* ak = a.row_ptr(kk);
    const real_t* bk = b.row_ptr(kk);
    for (index_t i = 0; i < m; ++i) {
      const real_t aik = alpha * ak[i];
      if (aik == 0.0) continue;
      real_t* ci = c.row_ptr(i);
      for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha,
             real_t beta) {
  // C = alpha * A B^T + beta * C, A: m x k, B: n x k. Inner loop is a dot of
  // two contiguous rows.
  const index_t m = a.rows(), k = a.cols(), n = b.rows();
  HYLO_CHECK(b.cols() == k, "gemm_nt inner dim " << b.cols() << " != " << k);
  if (c.rows() != m || c.cols() != n) {
    HYLO_CHECK(beta == 0.0, "beta != 0 with mismatched C");
    c.resize(m, n);
  }
  for (index_t i = 0; i < m; ++i) {
    const real_t* ai = a.row_ptr(i);
    real_t* ci = c.row_ptr(i);
    for (index_t j = 0; j < n; ++j) {
      const real_t* bj = b.row_ptr(j);
      real_t acc = 0.0;
      for (index_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] = alpha * acc + (beta == 0.0 ? 0.0 : beta * ci[j]);
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm(a, b, c);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm_tn(a, b, c);
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm_nt(a, b, c);
  return c;
}

Matrix gram_nt(const Matrix& a) {
  const index_t m = a.rows(), k = a.cols();
  Matrix c(m, m);
  for (index_t i = 0; i < m; ++i) {
    const real_t* ai = a.row_ptr(i);
    for (index_t j = i; j < m; ++j) {
      const real_t* aj = a.row_ptr(j);
      real_t acc = 0.0;
      for (index_t kk = 0; kk < k; ++kk) acc += ai[kk] * aj[kk];
      c(i, j) = acc;
      c(j, i) = acc;
    }
  }
  return c;
}

Matrix gram_tn(const Matrix& a) {
  const index_t m = a.rows(), k = a.cols();
  Matrix c(k, k);
  // Accumulate rank-1 updates over rows; fill upper triangle then mirror.
  for (index_t r = 0; r < m; ++r) {
    const real_t* ar = a.row_ptr(r);
    for (index_t i = 0; i < k; ++i) {
      const real_t v = ar[i];
      if (v == 0.0) continue;
      real_t* ci = c.row_ptr(i);
      for (index_t j = i; j < k; ++j) ci[j] += v * ar[j];
    }
  }
  for (index_t i = 0; i < k; ++i)
    for (index_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  return c;
}

void matvec(const Matrix& a, const std::vector<real_t>& x,
            std::vector<real_t>& y) {
  HYLO_CHECK(static_cast<index_t>(x.size()) == a.cols(), "matvec dim");
  y.assign(static_cast<std::size_t>(a.rows()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const real_t* ai = a.row_ptr(i);
    real_t acc = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) acc += ai[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
}

void matvec_t(const Matrix& a, const std::vector<real_t>& x,
              std::vector<real_t>& y) {
  HYLO_CHECK(static_cast<index_t>(x.size()) == a.rows(), "matvec_t dim");
  y.assign(static_cast<std::size_t>(a.cols()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const real_t xi = x[static_cast<std::size_t>(i)];
    if (xi == 0.0) continue;
    const real_t* ai = a.row_ptr(i);
    for (index_t j = 0; j < a.cols(); ++j) y[static_cast<std::size_t>(j)] += xi * ai[j];
  }
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  hadamard_inplace(out, b);
  return out;
}

void hadamard_inplace(Matrix& a, const Matrix& b) {
  HYLO_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "hadamard shape");
  real_t* pa = a.data();
  const real_t* pb = b.data();
  for (index_t i = 0; i < a.size(); ++i) pa[i] *= pb[i];
}

void axpy(Matrix& a, const Matrix& b, real_t alpha) {
  HYLO_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "axpy shape");
  real_t* pa = a.data();
  const real_t* pb = b.data();
  for (index_t i = 0; i < a.size(); ++i) pa[i] += alpha * pb[i];
}

void add_diagonal(Matrix& a, real_t alpha) {
  const index_t n = std::min(a.rows(), a.cols());
  for (index_t i = 0; i < n; ++i) a(i, i) += alpha;
}

real_t frobenius_norm_sq(const Matrix& a) {
  const real_t* p = a.data();
  real_t acc = 0.0;
  for (index_t i = 0; i < a.size(); ++i) acc += p[i] * p[i];
  return acc;
}

real_t frobenius_norm(const Matrix& a) { return std::sqrt(frobenius_norm_sq(a)); }

real_t dot(const Matrix& a, const Matrix& b) {
  HYLO_CHECK(a.size() == b.size(), "dot size");
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  real_t acc = 0.0;
  for (index_t i = 0; i < a.size(); ++i) acc += pa[i] * pb[i];
  return acc;
}

std::vector<real_t> row_norms(const Matrix& a) {
  std::vector<real_t> out(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i) {
    const real_t* ai = a.row_ptr(i);
    real_t acc = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) acc += ai[j] * ai[j];
    out[static_cast<std::size_t>(i)] = std::sqrt(acc);
  }
  return out;
}

real_t max_abs(const Matrix& a) {
  real_t best = 0.0;
  const real_t* p = a.data();
  for (index_t i = 0; i < a.size(); ++i) best = std::max(best, std::abs(p[i]));
  return best;
}

real_t trace(const Matrix& a) {
  HYLO_CHECK(a.rows() == a.cols(), "trace needs square");
  real_t acc = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) acc += a(i, i);
  return acc;
}

Matrix vstack(const std::vector<Matrix>& parts) {
  HYLO_CHECK(!parts.empty(), "vstack of nothing");
  const index_t cols = parts.front().cols();
  index_t rows = 0;
  for (const auto& p : parts) {
    HYLO_CHECK(p.cols() == cols, "vstack column mismatch");
    rows += p.rows();
  }
  Matrix out(rows, cols);
  index_t r = 0;
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.size(), out.row_ptr(r));
    r += p.rows();
  }
  return out;
}

Matrix block_diag(const std::vector<Matrix>& blocks) {
  HYLO_CHECK(!blocks.empty(), "block_diag of nothing");
  index_t n = 0;
  for (const auto& b : blocks) {
    HYLO_CHECK(b.rows() == b.cols(), "block_diag needs square blocks");
    n += b.rows();
  }
  Matrix out(n, n);
  index_t off = 0;
  for (const auto& b : blocks) {
    for (index_t i = 0; i < b.rows(); ++i)
      for (index_t j = 0; j < b.cols(); ++j) out(off + i, off + j) = b(i, j);
    off += b.rows();
  }
  return out;
}

real_t max_abs_diff(const Matrix& a, const Matrix& b) {
  HYLO_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "shape");
  real_t best = 0.0;
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  for (index_t i = 0; i < a.size(); ++i)
    best = std::max(best, std::abs(pa[i] - pb[i]));
  return best;
}

}  // namespace hylo
