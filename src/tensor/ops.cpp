#include "hylo/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "hylo/par/thread_pool.hpp"
#include "hylo/tensor/gemm_packed.hpp"
#include "hylo/tensor/kernel_dispatch.hpp"

namespace hylo {

namespace {
// Cache blocking parameters: tuned for ~32KB L1d with doubles. The kernels
// below use an i-k-j loop order so the innermost loop streams rows of B and
// C, which vectorizes well for row-major storage.
constexpr index_t kBlockI = 64;
constexpr index_t kBlockK = 64;
constexpr index_t kBlockJ = 256;

// Shared prologue of the three GEMM variants: shape the output and fold in
// beta. C(i,j) += alpha * (A·B)(i,j) afterwards is bitwise equal to the
// single-pass "alpha*acc + beta*c" epilogue because the addition commutes.
void prepare_c(Matrix& c, index_t m, index_t n, real_t beta,
               const char* kernel) {
  if (c.rows() != m || c.cols() != n) {
    HYLO_CHECK(beta == 0.0, "beta != 0 with mismatched C in " << kernel);
    c.resize(m, n);
  }
  if (beta == 0.0)
    c.zero();
  else if (beta != 1.0)  // hylo-lint: allow(float_compare: exactly 1.0 means skip the scale; a tolerance would corrupt C)
    c *= beta;
}

// C rows [i0, i1) of C = alpha * A B + (already-applied beta) * C. Each
// output row accumulates over k in ascending order whatever the row
// partition, so the parallel result is bitwise identical to the serial one.
void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha,
               index_t i0, index_t i1) {
  const index_t k = a.cols(), n = b.cols();
  for (index_t ib = i0; ib < i1; ib += kBlockI)
    for (index_t kb = 0; kb < k; kb += kBlockK)
      for (index_t jb = 0; jb < n; jb += kBlockJ) {
        const index_t iend = std::min(ib + kBlockI, i1);
        const index_t kend = std::min(kb + kBlockK, k);
        const index_t jend = std::min(jb + kBlockJ, n);
        for (index_t i = ib; i < iend; ++i) {
          real_t* ci = c.row_ptr(i);
          const real_t* ai = a.row_ptr(i);
          // No `aik == 0.0` early-out here: a data-dependent branch in the
          // hottest loop defeats vectorization and only pays off for
          // pathological sparsity (see BENCH_gemm.json notes.early_out).
          for (index_t kk = kb; kk < kend; ++kk) {
            const real_t aik = alpha * ai[kk];
            const real_t* bk = b.row_ptr(kk);
            for (index_t j = jb; j < jend; ++j) ci[j] += aik * bk[j];
          }
        }
      }
}

// Core of gemm_tn / gemm_tn_diag: C = alpha * A^T diag(s) B (+ beta * C,
// already applied), with s == nullptr meaning the identity scaling. The k
// loop stays outermost inside each thread's private row block of C, so per
// element the accumulation order is k-ascending — the serial order — at any
// thread count; the row blocks are disjoint, so the "merge" is free.
void gemm_tn_core(const Matrix& a, const Matrix& b, const real_t* s,
                  Matrix& c, real_t alpha) {
  if (kern::active() != kern::Tier::kScalar) {
    kern::packed_gemm_tn(a, s, b, c, alpha);
    return;
  }
  const index_t k = a.rows(), m = a.cols(), n = b.cols();
  par::parallel_for(
      0, m, kBlockI,
      [&](index_t i0, index_t i1) {
        for (index_t kk = 0; kk < k; ++kk) {
          const real_t* ak = a.row_ptr(kk);
          const real_t* bk = b.row_ptr(kk);
          const real_t scale = s == nullptr ? alpha : alpha * s[kk];
          for (index_t i = i0; i < i1; ++i) {
            const real_t aik = scale * ak[i];
            real_t* ci = c.row_ptr(i);
            for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
          }
        }
      },
      "tensor/gemm_tn", audit::row_block(c));
}
}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha,
          real_t beta) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  HYLO_CHECK(b.rows() == k, "gemm inner dim " << b.rows() << " != " << k);
  prepare_c(c, m, n, beta, "gemm");
  if (kern::active() != kern::Tier::kScalar) {
    kern::packed_gemm_nn(a, b, c, alpha);
    return;
  }
  par::parallel_for(
      0, m, kBlockI,
      [&](index_t i0, index_t i1) { gemm_rows(a, b, c, alpha, i0, i1); },
      "tensor/gemm", audit::row_block(c));
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha,
             real_t beta) {
  // C = alpha * A^T B + beta * C, A: k x m, B: k x n. Rank-1 updates over
  // rows of A and B — good locality without transposing A.
  const index_t k = a.rows(), m = a.cols(), n = b.cols();
  HYLO_CHECK(b.rows() == k, "gemm_tn inner dim " << b.rows() << " != " << k);
  prepare_c(c, m, n, beta, "gemm_tn");
  gemm_tn_core(a, b, nullptr, c, alpha);
}

void gemm_tn_diag(const Matrix& a, const Matrix& s, const Matrix& b, Matrix& c,
                  real_t alpha, real_t beta) {
  // C = alpha * A^T diag(s) B + beta * C. The scale folds into the rank-1
  // update coefficient, so no scaled copy of A is ever materialized.
  const index_t k = a.rows();
  HYLO_CHECK(b.rows() == k, "gemm_tn_diag inner dim " << b.rows() << " != " << k);
  HYLO_CHECK(s.size() == k, "gemm_tn_diag scale length " << s.size()
                                                         << " != " << k);
  prepare_c(c, a.cols(), b.cols(), beta, "gemm_tn_diag");
  gemm_tn_core(a, b, s.data(), c, alpha);
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha,
             real_t beta) {
  // C = alpha * A B^T + beta * C, A: m x k, B: n x k. Inner loop is a dot of
  // two contiguous rows; beta is folded by the shared prologue instead of a
  // re-test in the innermost loop.
  const index_t m = a.rows(), k = a.cols(), n = b.rows();
  HYLO_CHECK(b.cols() == k, "gemm_nt inner dim " << b.cols() << " != " << k);
  prepare_c(c, m, n, beta, "gemm_nt");
  if (kern::active() != kern::Tier::kScalar) {
    kern::packed_gemm_nt(a, b, c, alpha);
    return;
  }
  par::parallel_for(
      0, m, kBlockI,
      [&](index_t i0, index_t i1) {
        for (index_t i = i0; i < i1; ++i) {
          const real_t* ai = a.row_ptr(i);
          real_t* ci = c.row_ptr(i);
          for (index_t j = 0; j < n; ++j) {
            const real_t* bj = b.row_ptr(j);
            real_t acc = 0.0;
            for (index_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
            ci[j] += alpha * acc;
          }
        }
      },
      "tensor/gemm_nt", audit::row_block(c));
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm(a, b, c);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm_tn(a, b, c);
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c;
  gemm_nt(a, b, c);
  return c;
}

Matrix gram_nt(const Matrix& a) {
  const index_t m = a.rows(), k = a.cols();
  Matrix c(m, m);
  if (kern::active() != kern::Tier::kScalar) {
    kern::packed_gram_nt(a, c);
    return c;
  }
  // Each (i, j) pair with i <= j is computed by exactly one thread (the one
  // owning row i) and written to both mirror slots — disjoint elements, so
  // the row partition is race-free and bitwise deterministic. Grain 8 keeps
  // the triangular row costs reasonably balanced across chunks.
  par::parallel_for(
      0, m, 8,
      [&](index_t i0, index_t i1) {
        for (index_t i = i0; i < i1; ++i) {
          const real_t* ai = a.row_ptr(i);
          for (index_t j = i; j < m; ++j) {
            const real_t* aj = a.row_ptr(j);
            real_t acc = 0.0;
            for (index_t kk = 0; kk < k; ++kk) acc += ai[kk] * aj[kk];
            c(i, j) = acc;
            c(j, i) = acc;
          }
        }
      },
      "tensor/gram_nt",
      audit::Footprint([&c](index_t i0, index_t i1, audit::WriteSet& ws) {
        ws.add_row_tail(c, i0, i1);
        ws.add_col_tail(c, i0, i1);
      }));
  return c;
}

Matrix gram_tn(const Matrix& a) {
  const index_t m = a.rows(), k = a.cols();
  Matrix c(k, k);
  // Rank-1 accumulation over rows of A; the r loop stays outermost inside
  // each thread's private block of output rows, so every element sums in
  // r-ascending (serial) order. Fill upper triangle then mirror.
  par::parallel_for(
      0, k, 8,
      [&](index_t i0, index_t i1) {
        for (index_t r = 0; r < m; ++r) {
          const real_t* ar = a.row_ptr(r);
          for (index_t i = i0; i < i1; ++i) {
            const real_t v = ar[i];
            real_t* ci = c.row_ptr(i);
            for (index_t j = i; j < k; ++j) ci[j] += v * ar[j];
          }
        }
      },
      "tensor/gram_tn",
      audit::Footprint([&c](index_t i0, index_t i1, audit::WriteSet& ws) {
        ws.add_row_tail(c, i0, i1);
      }));
  for (index_t i = 0; i < k; ++i)
    for (index_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  return c;
}

void matvec(const Matrix& a, const std::vector<real_t>& x,
            std::vector<real_t>& y) {
  HYLO_CHECK(static_cast<index_t>(x.size()) == a.cols(), "matvec dim");
  y.assign(static_cast<std::size_t>(a.rows()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const real_t* ai = a.row_ptr(i);
    real_t acc = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) acc += ai[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
}

void matvec_t(const Matrix& a, const std::vector<real_t>& x,
              std::vector<real_t>& y) {
  HYLO_CHECK(static_cast<index_t>(x.size()) == a.rows(), "matvec_t dim");
  y.assign(static_cast<std::size_t>(a.cols()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const real_t xi = x[static_cast<std::size_t>(i)];
    if (xi == 0.0) continue;
    const real_t* ai = a.row_ptr(i);
    for (index_t j = 0; j < a.cols(); ++j) y[static_cast<std::size_t>(j)] += xi * ai[j];
  }
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  hadamard_inplace(out, b);
  return out;
}

void hadamard_inplace(Matrix& a, const Matrix& b) {
  HYLO_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "hadamard shape");
  real_t* pa = a.data();
  const real_t* pb = b.data();
  par::parallel_for(
      0, a.size(), 1 << 14,
      [&](index_t i0, index_t i1) { kern::vmul(pa + i0, pb + i0, i1 - i0); },
      "tensor/hadamard", audit::elem_block(pa));
}

void axpy(Matrix& a, const Matrix& b, real_t alpha) {
  HYLO_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "axpy shape");
  real_t* pa = a.data();
  const real_t* pb = b.data();
  for (index_t i = 0; i < a.size(); ++i) pa[i] += alpha * pb[i];
}

void add_diagonal(Matrix& a, real_t alpha) {
  const index_t n = std::min(a.rows(), a.cols());
  for (index_t i = 0; i < n; ++i) a(i, i) += alpha;
}

real_t frobenius_norm_sq(const Matrix& a) {
  const real_t* p = a.data();
  real_t acc = 0.0;
  for (index_t i = 0; i < a.size(); ++i) acc += p[i] * p[i];
  return acc;
}

real_t frobenius_norm(const Matrix& a) { return std::sqrt(frobenius_norm_sq(a)); }

real_t dot(const Matrix& a, const Matrix& b) {
  HYLO_CHECK(a.size() == b.size(), "dot size");
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  real_t acc = 0.0;
  for (index_t i = 0; i < a.size(); ++i) acc += pa[i] * pb[i];
  return acc;
}

std::vector<real_t> row_norms(const Matrix& a) {
  std::vector<real_t> out(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i) {
    const real_t* ai = a.row_ptr(i);
    real_t acc = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) acc += ai[j] * ai[j];
    out[static_cast<std::size_t>(i)] = std::sqrt(acc);
  }
  return out;
}

real_t max_abs(const Matrix& a) {
  real_t best = 0.0;
  const real_t* p = a.data();
  for (index_t i = 0; i < a.size(); ++i) best = std::max(best, std::abs(p[i]));
  return best;
}

real_t trace(const Matrix& a) {
  HYLO_CHECK(a.rows() == a.cols(), "trace needs square");
  real_t acc = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) acc += a(i, i);
  return acc;
}

Matrix vstack(const std::vector<Matrix>& parts) {
  HYLO_CHECK(!parts.empty(), "vstack of nothing");
  const index_t cols = parts.front().cols();
  index_t rows = 0;
  for (const auto& p : parts) {
    HYLO_CHECK(p.cols() == cols, "vstack column mismatch");
    rows += p.rows();
  }
  Matrix out(rows, cols);
  index_t r = 0;
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.size(), out.row_ptr(r));
    r += p.rows();
  }
  return out;
}

Matrix block_diag(const std::vector<Matrix>& blocks) {
  HYLO_CHECK(!blocks.empty(), "block_diag of nothing");
  index_t n = 0;
  for (const auto& b : blocks) {
    HYLO_CHECK(b.rows() == b.cols(), "block_diag needs square blocks");
    n += b.rows();
  }
  Matrix out(n, n);
  index_t off = 0;
  for (const auto& b : blocks) {
    for (index_t i = 0; i < b.rows(); ++i)
      for (index_t j = 0; j < b.cols(); ++j) out(off + i, off + j) = b(i, j);
    off += b.rows();
  }
  return out;
}

real_t max_abs_diff(const Matrix& a, const Matrix& b) {
  HYLO_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "shape");
  real_t best = 0.0;
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  for (index_t i = 0; i < a.size(); ++i)
    best = std::max(best, std::abs(pa[i] - pb[i]));
  return best;
}

}  // namespace hylo
