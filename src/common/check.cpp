#include "hylo/common/check.hpp"

namespace hylo::detail {

void throw_check_failure(const char* cond, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream oss;
  oss << "HYLO_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw Error(oss.str());
}

}  // namespace hylo::detail
