#include "hylo/common/csv.hpp"

#include <algorithm>

namespace hylo {

void CsvWriter::print_table(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      os << "  " << std::left << std::setw(static_cast<int>(width[c])) << r[c];
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& r : rows_) print_row(r);
}

}  // namespace hylo
