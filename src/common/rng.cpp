#include "hylo/common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

namespace hylo {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_cached_normal_ = false;
}

Rng Rng::split() {
  Rng child(next_u64() ^ 0xA0761D6478BD642FULL);
  return child;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

real_t Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<real_t>(next_u64() >> 11) * 0x1.0p-53;
}

real_t Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard u1 away from 0.
  real_t u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const real_t u2 = uniform();
  const real_t mag = std::sqrt(-2.0 * std::log(u1));
  const real_t ang = 2.0 * std::numbers::pi_v<real_t> * u2;
  cached_normal_ = mag * std::sin(ang);
  have_cached_normal_ = true;
  return mag * std::cos(ang);
}

index_t Rng::uniform_int(index_t n) {
  HYLO_CHECK(n > 0, "uniform_int requires n > 0, got " << n);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return static_cast<index_t>(v % un);
}

std::vector<index_t> Rng::sample_without_replacement(
    const std::vector<real_t>& weights, index_t k) {
  const index_t n = static_cast<index_t>(weights.size());
  HYLO_CHECK(k > 0 && k <= n, "need 0 < k <= n, got k=" << k << " n=" << n);
  // Efraimidis-Spirakis: key_i = u_i^(1/w_i); take the k largest keys.
  // Equivalent formulation with -log(u)/w (smallest k) is more stable.
  std::vector<std::pair<real_t, index_t>> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    if (weights[static_cast<std::size_t>(i)] <= 0) continue;
    real_t u = uniform();
    while (u <= 1e-300) u = uniform();
    keys.emplace_back(-std::log(u) / weights[static_cast<std::size_t>(i)], i);
  }
  HYLO_CHECK(static_cast<index_t>(keys.size()) >= k,
             "fewer than k strictly-positive weights");
  std::partial_sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(k),
                    keys.end());
  std::vector<index_t> out(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i)
    out[static_cast<std::size_t>(i)] = keys[static_cast<std::size_t>(i)].second;
  return out;
}

std::vector<index_t> Rng::permutation(index_t n) {
  std::vector<index_t> idx(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (index_t i = n - 1; i > 0; --i) {
    const index_t j = uniform_int(i + 1);
    std::swap(idx[static_cast<std::size_t>(i)], idx[static_cast<std::size_t>(j)]);
  }
  return idx;
}

}  // namespace hylo
