#include "hylo/par/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "hylo/audit/audit.hpp"
#include "hylo/common/check.hpp"
#include "hylo/common/thread_annotations.hpp"
#include "hylo/obs/metrics.hpp"

namespace hylo::par {

namespace {

// True while this thread is executing a parallel_for chunk; nested calls
// then run inline (one level of fan-out, no oversubscription).
thread_local bool tl_in_parallel = false;

int env_default_threads() {
  const char* env = std::getenv("HYLO_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Static partition: at most `participants` chunks, each a grain multiple
// (except the final partial one). Returns the chunk length.
index_t partition_chunk(index_t range, index_t grain, index_t participants) {
  const index_t nchunks =
      std::min<index_t>(participants, (range + grain - 1) / grain);
  const index_t chunk = (range + nchunks - 1) / nchunks;
  return ((chunk + grain - 1) / grain) * grain;
}

}  // namespace

struct ThreadPool::Impl {
  // Job slot: one in-flight parallel_for, broadcast to all workers by epoch.
  Mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t epoch HYLO_GUARDED_BY(mu) = 0;
  bool stop HYLO_GUARDED_BY(mu) = false;
  const RangeFn* fn HYLO_GUARDED_BY(mu) = nullptr;
  index_t begin HYLO_GUARDED_BY(mu) = 0;
  index_t end HYLO_GUARDED_BY(mu) = 0;
  index_t chunk HYLO_GUARDED_BY(mu) = 0;
  index_t nchunks HYLO_GUARDED_BY(mu) = 0;
  int pending HYLO_GUARDED_BY(mu) = 0;  ///< worker chunks not yet finished
  std::exception_ptr error HYLO_GUARDED_BY(mu);

  // Control-thread only: start_workers/stop_workers are documented as not
  // concurrent with parallel work, and workers never touch this vector.
  std::vector<std::thread> workers;

  // Telemetry, keyed by call-site label; touched once per parallel_for.
  mutable Mutex stats_mu;
  std::map<std::string, LabelStats> stats HYLO_GUARDED_BY(stats_mu);
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl) { set_threads(0); }

ThreadPool::~ThreadPool() {
  stop_workers();
  delete impl_;
}

void ThreadPool::set_threads(int n) {
  if (n <= 0) n = env_default_threads();
  if (n == threads_ && static_cast<int>(impl_->workers.size()) == n - 1)
    return;
  stop_workers();
  threads_ = n;
  start_workers(n - 1);
}

void ThreadPool::start_workers(int workers) {
  // Workers must start at the *current* epoch: after a set_threads() restart
  // the job-slot fields still describe the last job, and a worker born with
  // an older epoch would run that stale (already-freed) closure.
  std::uint64_t epoch = 0;
  {
    MutexLock lk(impl_->mu);
    impl_->stop = false;
    epoch = impl_->epoch;
  }
  impl_->workers.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    impl_->workers.emplace_back([this, w, epoch] { worker_loop(w, epoch); });
}

void ThreadPool::stop_workers() {
  {
    MutexLock lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& t : impl_->workers) t.join();
  impl_->workers.clear();
}

void ThreadPool::worker_loop(int worker_index, std::uint64_t seen) {
  for (;;) {
    UniqueLock lk(impl_->mu);
    // Manual predicate loop (not the lambda overload) so the guarded-field
    // reads stay visible to the thread-safety analysis.
    while (!impl_->stop && impl_->epoch == seen) impl_->cv_work.wait(lk.native());
    if (impl_->stop) return;
    seen = impl_->epoch;
    // Static assignment: worker w owns chunk w+1 (the caller runs chunk 0).
    const index_t c = static_cast<index_t>(worker_index) + 1;
    if (c >= impl_->nchunks) continue;
    const RangeFn* fn = impl_->fn;
    const index_t b = impl_->begin + c * impl_->chunk;
    const index_t e = std::min(impl_->end, b + impl_->chunk);
    lk.unlock();

    tl_in_parallel = true;
    std::exception_ptr err;
    try {
      (*fn)(b, e);
    } catch (...) {
      err = std::current_exception();
    }
    tl_in_parallel = false;

    lk.lock();
    if (err && !impl_->error) impl_->error = err;
    if (--impl_->pending == 0) impl_->cv_done.notify_one();
  }
}

void ThreadPool::note(const char* label, bool fanned, std::int64_t chunks) {
  MutexLock lk(impl_->stats_mu);
  LabelStats& s = impl_->stats[label];
  s.calls += 1;
  if (fanned) {
    s.split += 1;
    s.chunks += chunks;
  }
}

void ThreadPool::for_range(index_t begin, index_t end, index_t grain,
                           const RangeFn& fn, const char* label,
                           const audit::Footprint& fp) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const index_t range = end - begin;
  if (tl_in_parallel) {  // nested: always inline, never re-audited
    note(label, false, 1);
    fn(begin, end);
    return;
  }

  if (audit::enabled() && fp.checked()) {
    // Checked execution: partition as if at least 4 participants so overlap
    // detection is exercised even on single-thread hosts (any partition is
    // bitwise identical under the determinism contract), then hand the
    // chunks to the serial auditor. Chunks still count as "in parallel" so
    // nested calls keep their inline semantics.
    const index_t chunk =
        partition_chunk(range, grain, std::max<index_t>(threads_, 4));
    const index_t nchunks = (range + chunk - 1) / chunk;
    note(label, nchunks > 1, nchunks);
    audit::run_checked(
        label, begin, end, chunk, nchunks,
        [&fn](index_t b, index_t e) {
          tl_in_parallel = true;
          try {
            fn(b, e);
          } catch (...) {
            tl_in_parallel = false;
            throw;
          }
          tl_in_parallel = false;
        },
        fp);
    return;
  }

  if (threads_ <= 1 || range <= grain) {
    note(label, false, 1);
    fn(begin, end);
    return;
  }

  // Static partition: at most threads() chunks, each a grain multiple.
  const index_t chunk = partition_chunk(range, grain, threads_);
  const index_t nchunks = (range + chunk - 1) / chunk;
  if (nchunks <= 1) {
    note(label, false, 1);
    fn(begin, end);
    return;
  }
  note(label, true, nchunks);

  {
    MutexLock lk(impl_->mu);
    impl_->fn = &fn;
    impl_->begin = begin;
    impl_->end = end;
    impl_->chunk = chunk;
    impl_->nchunks = nchunks;
    impl_->pending = static_cast<int>(nchunks - 1);
    impl_->error = nullptr;
    impl_->epoch += 1;
  }
  impl_->cv_work.notify_all();

  // The caller is participant 0 and runs the first chunk itself.
  tl_in_parallel = true;
  std::exception_ptr err;
  try {
    fn(begin, std::min(end, begin + chunk));
  } catch (...) {
    err = std::current_exception();
  }
  tl_in_parallel = false;

  UniqueLock lk(impl_->mu);
  while (impl_->pending != 0) impl_->cv_done.wait(lk.native());
  impl_->fn = nullptr;
  if (!impl_->error && err) impl_->error = err;
  if (impl_->error) {
    std::exception_ptr rethrow = impl_->error;
    impl_->error = nullptr;
    lk.unlock();
    std::rethrow_exception(rethrow);
  }
}

std::map<std::string, ThreadPool::LabelStats> ThreadPool::stats() const {
  MutexLock lk(impl_->stats_mu);
  return impl_->stats;
}

void ThreadPool::reset_stats() {
  MutexLock lk(impl_->stats_mu);
  impl_->stats.clear();
}

void set_num_threads(int n) { ThreadPool::instance().set_threads(n); }

void export_metrics(obs::MetricsRegistry& reg) {
  ThreadPool& pool = ThreadPool::instance();
  reg.gauge("par/threads").set(static_cast<double>(pool.threads()));
  for (const auto& [label, s] : pool.stats()) {
    const std::string base = "par/for/" + label;
    auto set = [&reg](const std::string& name, std::int64_t want) {
      // Counters are monotonic: top up to the pool's cumulative value so
      // repeated exports into one registry stay consistent.
      auto& c = reg.counter(name);
      const std::int64_t have = c.value();
      if (want > have) c.inc(want - have);
    };
    set(base + ".calls", s.calls);
    set(base + ".split", s.split);
    set(base + ".chunks", s.chunks);
  }
}

}  // namespace hylo::par
