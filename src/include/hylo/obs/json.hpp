#pragma once
/// \file json.hpp
/// Minimal JSON value type for the telemetry layer: an order-preserving
/// builder used to emit trace/run-log records, plus a strict recursive-
/// descent parser so tests (and tools) can round-trip what was written.
/// Deliberately small — numbers are doubles, object keys stay in insertion
/// order, no surrogate-pair escapes. Not a general-purpose JSON library.

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/common/types.hpp"

namespace hylo::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(std::int64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  // --- builders ----------------------------------------------------------
  /// Array append; returns *this for chaining.
  Json& push(Json v) {
    HYLO_CHECK(type_ == Type::kArray, "push on non-array Json");
    arr_.push_back(std::move(v));
    return *this;
  }
  /// Object insert (insertion order preserved; duplicate keys overwrite).
  Json& set(const std::string& key, Json v) {
    HYLO_CHECK(type_ == Type::kObject, "set on non-object Json");
    for (auto& [k, old] : obj_) {
      if (k == key) {
        old = std::move(v);
        return *this;
      }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
  }

  // --- accessors ---------------------------------------------------------
  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool boolean() const {
    HYLO_CHECK(type_ == Type::kBool, "not a bool");
    return bool_;
  }
  double number() const {
    HYLO_CHECK(type_ == Type::kNumber, "not a number");
    return num_;
  }
  /// Numeric read that also accepts the non-finite sentinels the dumper
  /// emits ("NaN" / "Infinity" / "-Infinity" strings, and null → NaN), so
  /// health-probe values round-trip through JSONL. Throws on anything else.
  double to_double() const;
  const std::string& str() const {
    HYLO_CHECK(type_ == Type::kString, "not a string");
    return str_;
  }
  const std::vector<Json>& items() const {
    HYLO_CHECK(type_ == Type::kArray, "not an array");
    return arr_;
  }
  const std::vector<std::pair<std::string, Json>>& members() const {
    HYLO_CHECK(type_ == Type::kObject, "not an object");
    return obj_;
  }
  std::size_t size() const {
    return type_ == Type::kArray ? arr_.size() : obj_.size();
  }

  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : obj_)
      if (k == key) return &v;
    return nullptr;
  }
  /// Checked object lookup.
  const Json& at(const std::string& key) const {
    const Json* v = find(key);
    HYLO_CHECK(v != nullptr, "missing JSON key '" << key << "'");
    return *v;
  }

  // --- serialization -----------------------------------------------------
  void dump(std::ostream& os) const;
  std::string dump() const;

  /// Strict parse of a complete JSON document; throws hylo::Error with the
  /// offending offset on malformed input.
  static Json parse(const std::string& text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// JSON string escaping (quotes included).
std::string json_escape(const std::string& s);

}  // namespace hylo::obs
