#pragma once
/// \file obs.hpp
/// Umbrella header for hylo::obs, the structured telemetry layer:
///   - obs/metrics.hpp — counters, gauges, fixed-bucket histograms with
///     p50/p95/p99 readout, and the timing sections behind Profiler
///   - obs/trace.hpp   — simulated-timeline trace spans + Chrome trace
///     (Perfetto) JSON export
///   - obs/run_log.hpp — JSONL run log (one record per step/epoch) owning
///     the trace buffer
///   - obs/json.hpp    — the minimal JSON writer/parser they share
///   - obs/health.hpp  — cadence-gated per-layer training-health probes
///   - obs/alerts.hpp  — threshold/trend alert rules over the probe feed

#include "hylo/obs/alerts.hpp"
#include "hylo/obs/health.hpp"
#include "hylo/obs/json.hpp"
#include "hylo/obs/metrics.hpp"
#include "hylo/obs/run_log.hpp"
#include "hylo/obs/trace.hpp"
