#pragma once
/// \file run_log.hpp
/// Structured run log: a JSONL sink emitting one machine-readable record per
/// step / epoch / lifecycle event, the run's TraceBuffer, and an attach
/// point for the metrics registry whose final snapshot closes the log. The
/// Trainer owns one (configured through TrainConfig::telemetry); examples
/// and benches reach it via Trainer::run_log().
///
/// Artifact layout under `dir`:
///   run.jsonl   one JSON object per line: {"type": ..., "seq": N, ...}
///   trace.json  Chrome trace format (chrome://tracing, Perfetto)
///
/// Thread safety: record/console/finish serialize on an internal mutex, so
/// JSONL lines never interleave even when telemetry fires from concurrent
/// contexts; the TraceBuffer member is independently synchronized.

#include <fstream>
#include <string>

#include "hylo/obs/metrics.hpp"
#include "hylo/obs/trace.hpp"

namespace hylo::obs {

struct RunLogConfig {
  /// Output directory (created if missing). Empty disables the file sinks —
  /// the logger then swallows records and the trace buffer idles unused.
  std::string dir;
  std::string run_log_name = "run.jsonl";
  std::string trace_name = "trace.json";
  /// Emit per-step records (epoch/lifecycle records are always written).
  bool per_step = true;
  std::size_t trace_capacity = 1 << 16;
  /// Echo console() lines to stdout (the Trainer maps its `verbose` here).
  bool echo = false;
  /// Append to an existing run.jsonl instead of truncating it — a resumed
  /// run (Trainer::resume) continues the interrupted run's log in place,
  /// opening with a {"type":"resume"} record.
  bool append = false;
};

class RunLogger {
 public:
  /// Disabled logger (no directory): record() and finish() are no-ops,
  /// console() still honors `echo`.
  RunLogger() : RunLogger(RunLogConfig{}) {}
  explicit RunLogger(RunLogConfig cfg);
  ~RunLogger();

  RunLogger(const RunLogger&) = delete;
  RunLogger& operator=(const RunLogger&) = delete;

  bool enabled() const { return !cfg_.dir.empty(); }
  bool per_step() const { return enabled() && cfg_.per_step; }
  const RunLogConfig& config() const { return cfg_; }

  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

  /// Registry snapshotted into the final "metrics" record. Not owned; the
  /// natural choice is the CommSim profiler's registry so measured compute,
  /// modeled comm, and wire-byte counters land in one place.
  void attach_metrics(const MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Append one JSONL record. `fields` must be an object; "type" and a
  /// monotonically increasing "seq" are prepended. No-op when disabled.
  void record(const std::string& type, Json fields);

  /// Human-readable progress line (stdout when cfg.echo); also journaled
  /// as a {"type":"console"} record when the file sink is enabled.
  void console(const std::string& line);

  /// Flush run.jsonl, write trace.json, and append the closing "metrics"
  /// snapshot record. Idempotent; also invoked by the destructor.
  void finish();

  std::string run_log_path() const;
  std::string trace_path() const;
  std::int64_t records_written() const {
    MutexLock lk(mu_);
    return seq_;
  }

  /// Continue an interrupted run's sequence numbers (append mode): the next
  /// record gets `seq`, keeping the combined log monotonic. Never rewinds.
  void set_next_seq(std::int64_t seq) {
    MutexLock lk(mu_);
    HYLO_CHECK(seq >= seq_, "run log seq cannot rewind (have "
                                << seq_ << ", asked for " << seq << ")");
    seq_ = seq;
  }

 private:
  // finish() emits records itself, so the public entry points lock once and
  // delegate to these _locked internals (no recursive locking).
  void record_locked(const std::string& type, Json fields) HYLO_REQUIRES(mu_);
  void finish_locked() HYLO_REQUIRES(mu_);

  RunLogConfig cfg_;
  TraceBuffer trace_;
  const MetricsRegistry* metrics_ = nullptr;  ///< set once during setup
  mutable Mutex mu_;
  std::ofstream jsonl_ HYLO_GUARDED_BY(mu_);
  std::int64_t seq_ HYLO_GUARDED_BY(mu_) = 0;
  bool finished_ HYLO_GUARDED_BY(mu_) = false;
};

}  // namespace hylo::obs
