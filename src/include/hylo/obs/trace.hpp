#pragma once
/// \file trace.hpp
/// Trace spans on the *simulated* timeline. The lockstep runner executes the
/// P ranks sequentially, but the quantity of interest is the modeled
/// parallel schedule: each rank owns a track with its own time cursor,
/// measured compute spans advance only their rank's cursor, and modeled
/// collectives act as barriers — they start once every known track has
/// arrived and advance all cursors past their modeled wire time. Events land
/// in a bounded ring buffer (oldest dropped first) and export as Chrome
/// trace format JSON, loadable in chrome://tracing or https://ui.perfetto.dev.
///
/// TraceBuffer is internally synchronized: every public method takes the
/// buffer mutex, so spans recorded from concurrent hylo::par workers are
/// serialized (their relative order then depends on thread timing).

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "hylo/common/thread_annotations.hpp"
#include "hylo/common/timer.hpp"
#include "hylo/common/types.hpp"
#include "hylo/obs/json.hpp"

namespace hylo::obs {

struct TraceEvent {
  std::string name;
  std::string cat;      ///< "comp", "comm", "train", ...
  char ph = 'X';        ///< Chrome phase: 'X' complete span, 'i' instant
  int tid = 0;          ///< track id: simulated rank, or kCommTrack
  double ts_us = 0.0;   ///< start, microseconds on the simulated timeline
  double dur_us = 0.0;  ///< span length ('X' only)
  Json args = Json::object();
};

class TraceBuffer {
 public:
  /// Track id used for modeled collectives (the "interconnect" lane).
  static constexpr int kCommTrack = 1 << 20;

  explicit TraceBuffer(std::size_t capacity = 1 << 16);

  /// Simulated-clock position of a track (µs); 0 for unseen tracks.
  double track_now_us(int tid) const;

  /// Measured compute span on `tid`'s track: placed at that track's cursor,
  /// advances it by `dur_s`.
  void add_span(const std::string& name, const std::string& cat, int tid,
                double dur_s, Json args = Json::object());

  /// Modeled collective (barrier semantics): starts at the max cursor over
  /// all known tracks, occupies the kCommTrack lane for `dur_s`, then
  /// advances every known track to its end.
  void add_collective(const std::string& name, double dur_s,
                      Json args = Json::object());

  /// Span at an absolute position on the simulated timeline, no barrier:
  /// used by the async event simulator, whose operations carry their own
  /// modeled start times (comm overlapping compute would be misrendered by
  /// cursor placement). Advances `tid`'s cursor to the span end if the span
  /// ends beyond it, and no other cursor.
  void add_span_at(const std::string& name, const std::string& cat, int tid,
                   double start_s, double dur_s, Json args = Json::object());

  /// Instant event at `tid`'s cursor.
  void add_instant(const std::string& name, const std::string& cat, int tid,
                   Json args = Json::object());

  /// Label a track in the exported trace ("rank 0", "interconnect", ...).
  void set_track_name(int tid, std::string name);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const {
    MutexLock lk(mu_);
    return ring_.size();
  }
  /// Events evicted from the ring so far.
  std::int64_t dropped() const {
    MutexLock lk(mu_);
    return dropped_;
  }
  /// Oldest-first access, i in [0, size()). The reference stays valid only
  /// while no concurrent writer is recording.
  const TraceEvent& event(std::size_t i) const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} with thread_name
  /// metadata for every named track.
  void write_chrome_trace(std::ostream& os) const;
  void write_chrome_trace(const std::string& path) const;

  void clear();

 private:
  void record(TraceEvent e) HYLO_REQUIRES(mu_);

  mutable Mutex mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_ HYLO_GUARDED_BY(mu_);  ///< circular once full
  std::size_t head_ HYLO_GUARDED_BY(mu_) = 0;  ///< next write slot when full
  std::int64_t dropped_ HYLO_GUARDED_BY(mu_) = 0;
  std::map<int, double> cursor_us_ HYLO_GUARDED_BY(mu_);
  std::map<int, std::string> track_names_ HYLO_GUARDED_BY(mu_);
};

/// RAII measured span: wall-times its own lifetime and records it on the
/// given track at destruction. Null buffer makes it a no-op, so call sites
/// can stay unconditional.
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buf, std::string name, std::string cat, int tid)
      : buf_(buf), name_(std::move(name)), cat_(std::move(cat)), tid_(tid) {}
  ~TraceSpan() {
    if (buf_ != nullptr)
      buf_->add_span(name_, cat_, tid_, timer_.seconds(), std::move(args_));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach an argument shown in the trace viewer's detail pane.
  void arg(const std::string& key, Json v) {
    if (buf_ != nullptr) args_.set(key, std::move(v));
  }

 private:
  TraceBuffer* buf_;
  std::string name_, cat_;
  int tid_;
  Json args_ = Json::object();
  WallTimer timer_;
};

}  // namespace hylo::obs
