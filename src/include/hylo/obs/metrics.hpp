#pragma once
/// \file metrics.hpp
/// Typed metrics registry for the telemetry layer: monotonic counters
/// (collective calls, wire bytes), gauges (last-set values like the current
/// low rank), fixed-bucket histograms with quantile readout (per-layer
/// inversion time, selected ranks), and the named timing sections that the
/// legacy `Profiler` facade (common/timer.hpp) exposes. One registry backs
/// a whole simulated run; the run logger snapshots it into the JSONL log.
///
/// Thread safety: metric mutation (Counter::inc, Gauge::set,
/// Histogram::observe, add_timing) and get-or-create lookups are safe from
/// concurrent hylo::par workers — counters/gauges are atomic, histograms and
/// the registry maps are mutex-guarded, and returned metric references stay
/// valid for the registry's lifetime. The bulk read accessors that hand out
/// references to whole maps (counters(), gauges(), histograms(), timings())
/// still require external quiescence, as does reset().

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/common/thread_annotations.hpp"
#include "hylo/common/types.hpp"

namespace hylo::obs {

class Json;

/// Monotonically increasing integer metric. Lock-free.
class Counter {
 public:
  void inc(std::int64_t n = 1) {
    HYLO_CHECK(n >= 0, "counter increment must be non-negative");
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-value metric. Lock-free; value and set-count are individually
/// atomic (a reader may observe one set ahead of the other).
class Gauge {
 public:
  void set(double v) {
    value_.store(v, std::memory_order_relaxed);
    set_count_.fetch_add(1, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t set_count() const {
    return set_count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<std::int64_t> set_count_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations in
/// (bounds[i-1], bounds[i]]; one implicit overflow bucket catches the rest.
/// Quantiles are read back by linear interpolation inside the selected
/// bucket, tightened by the tracked min/max.
class Histogram {
 public:
  /// `bounds` must be strictly ascending upper bucket edges.
  explicit Histogram(std::vector<double> bounds);

  /// Moves/copies transfer the data but give the destination a fresh mutex
  /// (needed so the registry map can emplace; not concurrency-safe against
  /// writers of the source — hence exempt from the thread-safety analysis).
  Histogram(Histogram&& o) noexcept HYLO_NO_THREAD_SAFETY_ANALYSIS;
  Histogram(const Histogram& o) HYLO_NO_THREAD_SAFETY_ANALYSIS;

  /// Geometric bucket edges start, start*factor, ... (`count` edges) — the
  /// default shape for timing metrics spanning decades.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                int count);
  /// Evenly spaced edges over [lo, hi] (`count` edges) — for bounded
  /// quantities like ranks or layer indices.
  static std::vector<double> linear_bounds(double lo, double hi, int count);

  void observe(double v);

  std::int64_t count() const { return locked().count_; }
  double sum() const { return locked().sum_; }
  /// Empty-histogram contract: mean/min/max/quantile return NaN when no
  /// observation has landed (sum stays 0). NaN survives JSON emission as
  /// the "NaN" sentinel, so an empty summary is distinguishable from a
  /// histogram whose observations really were zero — per-layer health
  /// histograms on one-layer nets hit this constantly. A single-sample
  /// histogram reads that sample back exactly from every quantile.
  double mean() const {
    const State s = locked();
    return s.count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                         : s.sum_ / static_cast<double>(s.count_);
  }
  double min() const {
    const State s = locked();
    return s.count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : s.min_;
  }
  double max() const {
    const State s = locked();
    return s.count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : s.max_;
  }

  /// q in [0, 1]. Returns NaN with no observations.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; last is the overflow bucket. Returns a
  /// snapshot copy so concurrent observe() cannot invalidate the read.
  std::vector<std::int64_t> bucket_counts() const {
    MutexLock lk(mu_);
    return counts_;
  }

 private:
  struct State {
    std::int64_t count_;
    double sum_, min_, max_;
  };
  State locked() const {
    MutexLock lk(mu_);
    return State{count_, sum_, min_, max_};
  }

  std::vector<double> bounds_;  ///< immutable after construction
  std::vector<std::int64_t> counts_ HYLO_GUARDED_BY(mu_);
  std::int64_t count_ HYLO_GUARDED_BY(mu_) = 0;
  double sum_ HYLO_GUARDED_BY(mu_) = 0.0;
  double min_ HYLO_GUARDED_BY(mu_) = 0.0;
  double max_ HYLO_GUARDED_BY(mu_) = 0.0;
  mutable Mutex mu_;
};

/// Accumulated seconds + call count under a section name. This is the exact
/// entry type the legacy Profiler exposes, so the facade stays byte-
/// compatible with pre-registry bench output.
struct TimingEntry {
  double seconds = 0.0;
  std::int64_t calls = 0;
};

class MetricsRegistry {
 public:
  /// Get-or-create. Each metric type has its own namespace; references stay
  /// valid for the registry's lifetime (reset() notwithstanding).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used only on first creation; empty selects the default
  /// exponential timing buckets (1µs … ~100s).
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Timing sections (Profiler facade backend).
  void add_timing(const std::string& name, double seconds) {
    MutexLock lk(mu_);
    auto& e = timings_[name];
    e.seconds += seconds;
    e.calls += 1;
  }
  /// Overwrite a section with exact accumulated totals. add_timing bumps the
  /// call count, so snapshot restore (hylo::ckpt) needs this to reproduce an
  /// interrupted run's seconds *and* calls without off-by-one drift.
  void set_timing(const std::string& name, double seconds,
                  std::int64_t calls) {
    MutexLock lk(mu_);
    auto& e = timings_[name];
    e.seconds = seconds;
    e.calls = calls;
  }
  double timing_seconds(const std::string& name) const {
    MutexLock lk(mu_);
    const auto it = timings_.find(name);
    return it == timings_.end() ? 0.0 : it->second.seconds;
  }
  std::int64_t timing_calls(const std::string& name) const {
    MutexLock lk(mu_);
    const auto it = timings_.find(name);
    return it == timings_.end() ? 0 : it->second.calls;
  }
  /// Bulk accessors hand out unguarded references to the whole maps; the
  /// header contract requires external quiescence, so they are exempt from
  /// the thread-safety analysis rather than (uselessly) locking.
  const std::map<std::string, TimingEntry>& timings() const
      HYLO_NO_THREAD_SAFETY_ANALYSIS {
    return timings_;
  }

  std::int64_t counter_value(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const
      HYLO_NO_THREAD_SAFETY_ANALYSIS {
    return counters_;
  }
  const std::map<std::string, Gauge>& gauges() const
      HYLO_NO_THREAD_SAFETY_ANALYSIS {
    return gauges_;
  }
  const std::map<std::string, Histogram>& histograms() const
      HYLO_NO_THREAD_SAFETY_ANALYSIS {
    return histograms_;
  }

  /// Full dump (counters, gauges, histogram summaries, timing sections)
  /// as one JSON object — the shape the run log's "metrics" record uses.
  Json snapshot() const;

  void reset_timings() {
    MutexLock lk(mu_);
    timings_.clear();
  }
  void reset();

 private:
  mutable Mutex mu_;  ///< guards the four maps and timing entries
  std::map<std::string, Counter> counters_ HYLO_GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ HYLO_GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ HYLO_GUARDED_BY(mu_);
  std::map<std::string, TimingEntry> timings_ HYLO_GUARDED_BY(mu_);
};

}  // namespace hylo::obs
