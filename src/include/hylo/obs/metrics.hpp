#pragma once
/// \file metrics.hpp
/// Typed metrics registry for the telemetry layer: monotonic counters
/// (collective calls, wire bytes), gauges (last-set values like the current
/// low rank), fixed-bucket histograms with quantile readout (per-layer
/// inversion time, selected ranks), and the named timing sections that the
/// legacy `Profiler` facade (common/timer.hpp) exposes. One registry backs
/// a whole simulated run; the run logger snapshots it into the JSONL log.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/common/types.hpp"

namespace hylo::obs {

class Json;

/// Monotonically increasing integer metric.
class Counter {
 public:
  void inc(std::int64_t n = 1) {
    HYLO_CHECK(n >= 0, "counter increment must be non-negative");
    value_ += n;
  }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-value metric.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    set_count_ += 1;
  }
  double value() const { return value_; }
  std::int64_t set_count() const { return set_count_; }

 private:
  double value_ = 0.0;
  std::int64_t set_count_ = 0;
};

/// Fixed-bucket histogram. Bucket i counts observations in
/// (bounds[i-1], bounds[i]]; one implicit overflow bucket catches the rest.
/// Quantiles are read back by linear interpolation inside the selected
/// bucket, tightened by the tracked min/max.
class Histogram {
 public:
  /// `bounds` must be strictly ascending upper bucket edges.
  explicit Histogram(std::vector<double> bounds);

  /// Geometric bucket edges start, start*factor, ... (`count` edges) — the
  /// default shape for timing metrics spanning decades.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                int count);
  /// Evenly spaced edges over [lo, hi] (`count` edges) — for bounded
  /// quantities like ranks or layer indices.
  static std::vector<double> linear_bounds(double lo, double hi, int count);

  void observe(double v);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// q in [0, 1]. Returns 0 with no observations.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; last is the overflow bucket.
  const std::vector<std::int64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// Accumulated seconds + call count under a section name. This is the exact
/// entry type the legacy Profiler exposes, so the facade stays byte-
/// compatible with pre-registry bench output.
struct TimingEntry {
  double seconds = 0.0;
  std::int64_t calls = 0;
};

class MetricsRegistry {
 public:
  /// Get-or-create. Each metric type has its own namespace; references stay
  /// valid for the registry's lifetime (reset() notwithstanding).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used only on first creation; empty selects the default
  /// exponential timing buckets (1µs … ~100s).
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Timing sections (Profiler facade backend).
  void add_timing(const std::string& name, double seconds) {
    auto& e = timings_[name];
    e.seconds += seconds;
    e.calls += 1;
  }
  double timing_seconds(const std::string& name) const {
    const auto it = timings_.find(name);
    return it == timings_.end() ? 0.0 : it->second.seconds;
  }
  std::int64_t timing_calls(const std::string& name) const {
    const auto it = timings_.find(name);
    return it == timings_.end() ? 0 : it->second.calls;
  }
  const std::map<std::string, TimingEntry>& timings() const {
    return timings_;
  }

  std::int64_t counter_value(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Full dump (counters, gauges, histogram summaries, timing sections)
  /// as one JSON object — the shape the run log's "metrics" record uses.
  Json snapshot() const;

  void reset_timings() { timings_.clear(); }
  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimingEntry> timings_;
};

}  // namespace hylo::obs
