#pragma once
/// \file alerts.hpp
/// Declarative training-health alert rules (DESIGN.md §12) evaluated on the
/// simulated timeline. The engine consumes two feeds — per-probe aggregates
/// from the HealthMonitor and per-epoch stats from the Trainer — checks them
/// against fixed threshold/trend rules, and emits `alert` run-log records
/// with severity and firing context plus `obs/alerts/*` counters. It never
/// mutates training state; `--strict-health` in hylo_train turns critical
/// alerts into a non-zero exit after the run completes.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "hylo/common/types.hpp"

namespace hylo::obs {

class MetricsRegistry;
class RunLogger;

/// Alert rule catalogue: the closed set of rule names that may appear in
/// `alert` records and `obs/alerts/*` metric labels. Parsed by the
/// `health_catalogue` lint rule alongside the probe catalogue.
/// hylo-alert-catalogue-begin
inline constexpr const char* kAlertCatalogue[] = {
    "non_finite",         ///< NaN/Inf in loss, weights, grads, or factors
    "loss_divergence",    ///< train loss above factor x trailing-window mean
    "switch_oscillation", ///< KID/KIS mode flapping across recent epochs
    "staleness_budget",   ///< a layer served factors older than the budget
    "fault_budget",       ///< injected comm faults per epoch above budget
    "cond_blowup",        ///< factor condition estimate above threshold
};
/// hylo-alert-catalogue-end

enum class AlertSeverity { kWarning, kCritical };

const char* to_string(AlertSeverity s);

/// Rule thresholds. Defaults are deliberately loose: alerts should mark
/// runs that are actually sick, not tune-this-week noise.
struct AlertConfig {
  double loss_divergence_factor = 2.0;  ///< fire when loss > factor * mean
  index_t loss_window = 3;              ///< trailing epochs in that mean
  index_t oscillation_window = 6;       ///< epochs inspected for mode flips
  index_t oscillation_flips = 4;        ///< distinct flips that count as flapping
  index_t staleness_budget = 3;         ///< max refresh age before warning
  std::int64_t fault_budget = 64;       ///< injected faults per epoch
  double cond_warning = 1e8;            ///< condition estimate -> warning
  double cond_critical = 1e12;          ///< condition estimate -> critical
};

/// One fired alert (also serialized as an `alert` run-log record).
struct Alert {
  std::string rule;
  AlertSeverity severity = AlertSeverity::kWarning;
  index_t epoch = -1;
  index_t global_iter = -1;
  double value = 0.0;      ///< observed quantity that tripped the rule
  double threshold = 0.0;  ///< configured limit it was checked against
  std::string detail;      ///< human-readable firing context
};

/// Threshold/trend rule evaluator. Rules dedupe per (rule, epoch) so a
/// sick epoch produces one record per rule, not one per iteration.
class AlertEngine {
 public:
  AlertEngine() = default;
  explicit AlertEngine(AlertConfig cfg) : cfg_(cfg) {}

  void attach(MetricsRegistry* reg, RunLogger* log) {
    reg_ = reg;
    log_ = log;
  }
  const AlertConfig& config() const { return cfg_; }

  /// Probe-cadence feed: aggregates of the most recent HealthMonitor flush.
  void on_probe(index_t epoch, index_t global_iter, std::int64_t nonfinite,
                double max_cond, index_t max_staleness);

  /// Epoch feed: called once per epoch after stats are final. `mode` is the
  /// serving mode recorded in the epoch note ("kid"/"kis"/first-order tag);
  /// `faults_injected` is the epoch's delta of comm/faults/injected.
  void on_epoch(index_t epoch, index_t global_iter, double train_loss,
                const std::string& mode, std::int64_t faults_injected);

  const std::vector<Alert>& fired() const { return fired_; }
  index_t critical_count() const { return critical_; }

  /// One-line-per-rule rollup for the post-run console summary.
  std::string summary() const;

 private:
  bool already_fired(const std::string& rule, index_t epoch) const;
  void fire(Alert a);

  AlertConfig cfg_;
  MetricsRegistry* reg_ = nullptr;
  RunLogger* log_ = nullptr;
  std::vector<Alert> fired_;
  index_t critical_ = 0;
  std::deque<double> loss_window_;
  std::deque<std::string> mode_window_;
};

}  // namespace hylo::obs
