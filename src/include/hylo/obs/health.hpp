#pragma once
/// \file health.hpp
/// Training-health probes (DESIGN.md §12): cheap, cadence-gated per-layer
/// numerical diagnostics computed where the data already lives — condition-
/// number estimates read off the factorizations the curvature optimizers
/// hold anyway, captured-energy fractions of the low-rank factors vs. the
/// full kernel trace, gradient/update norm ratios, non-finite scans, and
/// the staleness age tracked since the fault-injection work.
///
/// The HealthMonitor is a pure observer: it never touches optimizer or
/// network state, probes compute into locals, and with `enabled == false`
/// (the default) every hook reduces to a single branch — training is then
/// bitwise identical to a build without the subsystem (locked by test).
/// Probe output lands in two places: `optim/<method>/health/*` metrics in
/// the registry and one `health` run-log record per probed refresh.

#include <algorithm>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/common/types.hpp"
#include "hylo/obs/alerts.hpp"
#include "hylo/tensor/matrix.hpp"

namespace hylo::obs {

class MetricsRegistry;
class RunLogger;

/// Probe catalogue: the closed set of per-layer probe names. Every
/// `optim/<method>/health/<probe>` metric and every per-layer field of a
/// `health` run-log record must use a name from this list — enforced by the
/// `health_catalogue` rule of tools/lint_hylo.py, which parses this block.
/// hylo-probe-catalogue-begin
inline constexpr const char* kProbeCatalogue[] = {
    "cond",             ///< served-factorization condition estimate (max)
    "cond_a",           ///< input-side Kronecker factor condition estimate
    "cond_g",           ///< gradient-side Kronecker factor condition estimate
    "energy_fraction",  ///< tr(K̂) of the low-rank factors / tr(K) of the
                        ///< full captured kernel (KID/KIS rank fidelity)
    "grad_norm",        ///< per-layer raw gradient Frobenius norm
    "update_norm",      ///< per-layer preconditioned update Frobenius norm
    "update_ratio",     ///< update_norm / grad_norm
    "nonfinite",        ///< NaN/Inf entries in served factors / weights /
                        ///< gradients
    "staleness",        ///< refreshes since the layer's factors last landed
};
/// hylo-probe-catalogue-end

/// Configuration for the probe layer + alert engine. Off by default so the
/// hot path takes no probe work; `cadence` then gates how many curvature
/// refreshes share one probe pass (first-order optimizers have no refresh,
/// so for them the cadence counts iterations).
struct HealthConfig {
  bool enabled = false;
  index_t cadence = 1;  ///< probe every Nth refresh opportunity (>= 1)
  AlertConfig alerts;   ///< rule thresholds (engine runs iff enabled)

  /// Parse the HYLO_HEALTH environment spec: an integer cadence ("1" =
  /// probe every refresh, "4" = every fourth). Unset/empty/"0" → nullopt.
  static std::optional<HealthConfig> from_env();
};

/// One layer's probe results for a single probed refresh. NaN marks a probe
/// that does not apply to the serving method (e.g. energy_fraction for the
/// exact SNGD kernel) or could not be read (layer not ready yet).
struct LayerHealth {
  index_t layer = -1;
  double cond = std::numeric_limits<double>::quiet_NaN();
  double cond_a = std::numeric_limits<double>::quiet_NaN();
  double cond_g = std::numeric_limits<double>::quiet_NaN();
  double energy_fraction = std::numeric_limits<double>::quiet_NaN();
  double grad_norm = std::numeric_limits<double>::quiet_NaN();
  double update_norm = std::numeric_limits<double>::quiet_NaN();
  index_t nonfinite = 0;  ///< non-finite entries in the served factors
  index_t staleness = 0;  ///< refresh age (0 = last refresh landed)
};

/// Collects one probed refresh's LayerHealth records plus the trainer-side
/// non-finite scan and flushes them as one `health` run-log record and a set
/// of `optim/<method>/health/*` metrics. Owned by the Trainer; the
/// optimizers hold a non-owning pointer (Optimizer::set_health) and consult
/// due() so probe work happens only on cadence-selected refreshes.
class HealthMonitor {
 public:
  HealthMonitor() = default;  ///< disabled: every hook is a cheap no-op
  explicit HealthMonitor(HealthConfig cfg) : cfg_(cfg) {}

  /// Metric/run-log sinks (not owned; either may be null — metrics still
  /// require a registry, run-log records a logger).
  void attach(MetricsRegistry* reg, RunLogger* log) {
    reg_ = reg;
    log_ = log;
  }
  /// Lowercase method tag used in metric names and records ("hylo",
  /// "kfac", ... — the trainer derives it from Optimizer::name()).
  void set_method(std::string method) { method_ = std::move(method); }

  bool enabled() const { return cfg_.enabled; }
  const HealthConfig& config() const { return cfg_; }

  /// Cadence gate: the trainer calls this once per refresh opportunity
  /// (curvature refresh iteration, or every iteration for first-order
  /// methods); due() then holds until flush() and tells the optimizers
  /// whether to compute probes this refresh.
  void begin_refresh() {
    due_ = cfg_.enabled && (refreshes_ % std::max<index_t>(1, cfg_.cadence)) == 0;
    ++refreshes_;
  }
  bool due() const { return due_; }

  /// Optimizer-side probe report for one layer (update_curvature, guarded
  /// by due()).
  void report_layer(LayerHealth h);
  /// Step-side norm report (CurvatureOptimizer::step, guarded by due()).
  void report_norms(index_t layer, double grad_norm, double update_norm);
  /// Trainer-side non-finite scan over live weights and gradients.
  void report_nonfinite(index_t weight_count, index_t grad_count) {
    nonfinite_weights_ += weight_count;
    nonfinite_grads_ += grad_count;
  }

  /// Emit the buffered probes (metrics + one `health` record), update the
  /// rolling aggregates the alert engine reads, and clear due().
  void flush(index_t epoch, index_t iter, index_t global_iter);

  // --- aggregates of the most recent flush (alert-engine feed) -----------
  std::int64_t last_nonfinite() const { return last_nonfinite_; }
  double last_max_cond() const { return last_max_cond_; }
  index_t last_max_staleness() const { return last_max_staleness_; }

  // --- whole-run aggregates (post-run summary) ----------------------------
  index_t probes() const { return probes_; }
  double worst_cond() const { return worst_cond_; }
  std::int64_t total_nonfinite() const { return total_nonfinite_; }

 private:
  HealthConfig cfg_;
  MetricsRegistry* reg_ = nullptr;
  RunLogger* log_ = nullptr;
  std::string method_ = "unknown";
  bool due_ = false;
  index_t refreshes_ = 0;
  std::vector<LayerHealth> buf_;
  index_t nonfinite_weights_ = 0, nonfinite_grads_ = 0;
  std::int64_t last_nonfinite_ = 0;
  double last_max_cond_ = std::numeric_limits<double>::quiet_NaN();
  index_t last_max_staleness_ = 0;
  index_t probes_ = 0;
  double worst_cond_ = std::numeric_limits<double>::quiet_NaN();
  std::int64_t total_nonfinite_ = 0;
};

// --- probe helpers (read existing factorizations; no factorization work) --

/// κ₂ estimate of the SPD matrix behind a Cholesky factor L:
/// (max|L_ii| / min|L_ii|)². NaN for an empty factor, +inf when a diagonal
/// entry is exactly zero.
double cond_from_cholesky(const Matrix& l);

/// κ estimate off a packed LU factorization's U diagonal:
/// max|U_ii| / min|U_ii|.
double cond_from_lu(const Matrix& lu);

/// κ∞ estimate ‖M‖∞ · ‖M⁻¹‖∞ for a matrix whose damped inverse is already
/// held (the KFAC/KBFGS factor pairs).
double cond_from_pair(const Matrix& m, const Matrix& m_inv);

/// Number of NaN/Inf entries.
index_t count_nonfinite(const Matrix& m);
index_t count_nonfinite(const std::vector<real_t>& v);

}  // namespace hylo::obs
