#pragma once
/// \file thread_pool.hpp
/// hylo::par — deterministic data parallelism for the dense kernels.
///
/// A process-wide pool of persistent worker threads executes
/// `parallel_for(begin, end, grain, fn)` by *static partition*: the range is
/// split into at most `threads()` contiguous chunks whose boundaries are
/// multiples of `grain`, chunk t always runs on participant t, and there is
/// no work stealing. Determinism contract (DESIGN.md §8): every call site
/// partitions only over *independent* output rows/samples/layers, so results
/// are bitwise identical at any thread count — including `HYLO_NUM_THREADS=1`,
/// which executes the body inline on the calling thread, reproducing the
/// serial seed path exactly.
///
/// The pool size defaults to `HYLO_NUM_THREADS` (else hardware concurrency)
/// and can be changed at runtime with `set_num_threads` (benches/tests).
/// Nested `parallel_for` from inside a pool worker runs inline — one level
/// of parallelism, no oversubscription, same bitwise results.
///
/// Call sites declare their write footprint (`audit::Footprint`, see
/// audit/write_set.hpp) or tag themselves `audit::unchecked(reason)`; in
/// audit mode (HYLO_AUDIT=1) declared regions execute under the checked
/// serial auditor, which detects inter-chunk write overlap and sampled
/// out-of-declaration writes. When audit mode is off the declaration costs
/// one cached-flag branch and is never materialized.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hylo/audit/write_set.hpp"
#include "hylo/common/types.hpp"

namespace hylo::obs {
class MetricsRegistry;
}

namespace hylo::par {

class ThreadPool {
 public:
  /// The process-wide pool. First use reads HYLO_NUM_THREADS.
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current participant count (calling thread + workers), >= 1.
  int threads() const { return threads_; }

  /// Resize the pool. n <= 0 restores the environment default. Must not be
  /// called concurrently with parallel work (benches/tests only).
  void set_threads(int n);

  using RangeFn = std::function<void(index_t, index_t)>;

  /// Run fn(chunk_begin, chunk_end) over a static partition of [begin, end).
  /// Chunk boundaries are multiples of `grain` (except the last); with one
  /// chunk, one thread, or from inside a worker, fn(begin, end) runs inline.
  /// Blocks until every chunk finished; the first exception thrown by any
  /// chunk is rethrown on the caller. `label` keys the per-kernel telemetry.
  /// `fp` declares the chunks' write footprint; in audit mode a checked
  /// footprint routes the call through audit::run_checked (serial, bitwise
  /// identical, throws hylo::Error on a contract violation).
  void for_range(index_t begin, index_t end, index_t grain, const RangeFn& fn,
                 const char* label, const audit::Footprint& fp = {});

  /// Per-label parallel_for accounting (exported as `par/for/<label>`).
  struct LabelStats {
    std::int64_t calls = 0;  ///< total parallel_for invocations
    std::int64_t split = 0;  ///< invocations that actually fanned out
    std::int64_t chunks = 0; ///< chunks executed across fanned-out calls
  };
  std::map<std::string, LabelStats> stats() const;
  void reset_stats();

 private:
  ThreadPool();
  void start_workers(int workers);
  void stop_workers();
  void worker_loop(int worker_index, std::uint64_t start_epoch);
  void note(const char* label, bool fanned, std::int64_t chunks);

  struct Impl;
  Impl* impl_;
  int threads_ = 1;
};

/// Pool size currently in effect.
inline int num_threads() { return ThreadPool::instance().threads(); }

/// Resize the process pool (0 restores the HYLO_NUM_THREADS default).
void set_num_threads(int n);

/// Chunked loop over [begin, end); see ThreadPool::for_range.
inline void parallel_for(index_t begin, index_t end, index_t grain,
                         const ThreadPool::RangeFn& fn,
                         const char* label = "anon",
                         const audit::Footprint& fp = {}) {
  ThreadPool::instance().for_range(begin, end, grain, fn, label, fp);
}

/// Deterministic chunked reduction. The range is cut into fixed chunks of
/// exactly `grain` elements (independent of the thread count), `map(b, e)`
/// produces one partial per chunk, and `combine` folds the partials in
/// ascending chunk order on the caller — so the result is identical at any
/// thread count. Note the chunk-wise fold may differ in the last bits from
/// an unchunked serial fold; call sites opt in explicitly.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(index_t begin, index_t end, index_t grain, T init,
                  const MapFn& map, const CombineFn& combine,
                  const char* label = "reduce") {
  if (end <= begin) return init;
  if (grain < 1) grain = 1;
  const index_t nchunks = (end - begin + grain - 1) / grain;
  std::vector<T> partials(static_cast<std::size_t>(nchunks), init);
  parallel_for(
      0, nchunks, 1,
      [&](index_t c0, index_t c1) {
        for (index_t c = c0; c < c1; ++c) {
          const index_t b = begin + c * grain;
          partials[static_cast<std::size_t>(c)] =
              map(b, std::min(end, b + grain));
        }
      },
      label, audit::elem_block(partials.data()));
  T acc = init;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

/// Publish pool telemetry into a registry: gauge `par/threads` plus, per
/// parallel_for label, counters `par/for/<label>.calls` / `.split` /
/// `.chunks`.
void export_metrics(obs::MetricsRegistry& reg);

}  // namespace hylo::par
