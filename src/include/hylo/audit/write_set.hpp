#pragma once
/// \file write_set.hpp
/// Declared write footprints for hylo::par call sites.
///
/// The pool's determinism contract (DESIGN.md §8) requires every
/// `parallel_for` chunk to write a *disjoint* region of the output. That
/// contract used to be unchecked; `hylo::audit` makes it declarative. A call
/// site attaches a `Footprint` — a function mapping a chunk range [b, e) to
/// the byte spans that chunk is allowed to write — and audit mode
/// (HYLO_AUDIT=1, see audit.hpp) verifies both that the declared spans of
/// different chunks never overlap and that sampled bytes outside a chunk's
/// declaration are untouched by it.
///
/// Building a Footprint costs one std::function; the WriteSet itself (span
/// vectors, shadow samples) is only ever materialized in audit mode, so a
/// disabled build pays nothing beyond one cached-flag branch per call.

#include <cstddef>
#include <functional>
#include <vector>

#include "hylo/common/types.hpp"
#include "hylo/tensor/matrix.hpp"
#include "hylo/tensor/tensor4.hpp"

namespace hylo::audit {

/// Contiguous byte range declared writable by one chunk.
struct Span {
  const unsigned char* begin = nullptr;
  std::size_t size = 0;
  const unsigned char* end() const { return begin + size; }
};

/// The declared write footprint of a single chunk: a list of byte spans,
/// plus the enclosing buffers registered for shadow sampling (bytes of a
/// registered buffer *outside* the declared spans must not change while the
/// chunk runs).
class WriteSet {
 public:
  /// Declare raw bytes writable. Does not register a shadow buffer.
  void add_bytes(const void* p, std::size_t n) {
    if (n == 0) return;
    spans_.push_back(Span{static_cast<const unsigned char*>(p), n});
  }

  /// Declare elements [b, e) of a flat array writable.
  template <typename T>
  void add_range(const T* base, index_t b, index_t e) {
    if (e > b) add_bytes(base + b, sizeof(T) * static_cast<std::size_t>(e - b));
  }

  /// Declare rows [r0, r1) of a row-major matrix writable.
  void add_rows(const Matrix& m, index_t r0, index_t r1) {
    track(m);
    if (r1 > r0)
      add_bytes(m.row_ptr(r0),
                sizeof(real_t) * static_cast<std::size_t>((r1 - r0) * m.cols()));
  }

  /// Declare columns [c0, c1) of every row writable (strided column block).
  void add_cols(const Matrix& m, index_t c0, index_t c1) {
    track(m);
    for (index_t r = 0; r < m.rows(); ++r)
      add_bytes(m.row_ptr(r) + c0,
                sizeof(real_t) * static_cast<std::size_t>(c1 - c0));
  }

  /// Declare the diagonal-and-right tail of rows [r0, r1) writable:
  /// elements (r, j) with j >= r. The upper-triangular Gram fill.
  void add_row_tail(const Matrix& m, index_t r0, index_t r1) {
    track(m);
    for (index_t r = r0; r < r1; ++r)
      add_bytes(m.row_ptr(r) + r,
                sizeof(real_t) * static_cast<std::size_t>(m.cols() - r));
  }

  /// Declare the below-diagonal tail of columns [c0, c1) writable: elements
  /// (r, c) with r > c. Together with add_row_tail this is the exact element
  /// set a symmetric-mirror kernel (gram_nt) owning rows [c0, c1) writes.
  void add_col_tail(const Matrix& m, index_t c0, index_t c1) {
    track(m);
    for (index_t c = c0; c < c1; ++c)
      for (index_t r = c + 1; r < m.rows(); ++r)
        add_bytes(m.row_ptr(r) + c, sizeof(real_t));
  }

  /// Declare samples [n0, n1) of an NCHW tensor writable.
  void add_samples(const Tensor4& t, index_t n0, index_t n1) {
    track(t.data(), sizeof(real_t) * static_cast<std::size_t>(t.size()));
    if (n1 > n0)
      add_bytes(t.sample_ptr(n0),
                sizeof(real_t) *
                    static_cast<std::size_t>((n1 - n0) * t.sample_size()));
  }

  /// Register a buffer for shadow sampling without declaring any of it
  /// writable (the matrix/tensor helpers call this themselves).
  void track(const void* base, std::size_t bytes) {
    if (bytes == 0) return;
    buffers_.push_back(Span{static_cast<const unsigned char*>(base), bytes});
  }
  void track(const Matrix& m) {
    track(m.data(), sizeof(real_t) * static_cast<std::size_t>(m.size()));
  }

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Span>& buffers() const { return buffers_; }

 private:
  std::vector<Span> spans_;
  std::vector<Span> buffers_;
};

/// Fills `ws` with the declared footprint of chunk [b, e).
using WriteSetFn = std::function<void(index_t b, index_t e, WriteSet& ws)>;

/// A call site's write declaration: either `checked` (carries a WriteSetFn),
/// explicitly `unchecked` (audited call sites that opt out, with a reason),
/// or empty (legacy/test call sites; the repo linter forbids these in src/).
class Footprint {
 public:
  Footprint() = default;
  /*implicit*/ Footprint(WriteSetFn fn) : fn_(std::move(fn)) {}

  bool checked() const { return static_cast<bool>(fn_); }
  const char* unchecked_reason() const { return unchecked_reason_; }

  void materialize(index_t b, index_t e, WriteSet& ws) const { fn_(b, e, ws); }

  static Footprint make_unchecked(const char* reason) {
    Footprint fp;
    fp.unchecked_reason_ = reason;
    return fp;
  }

 private:
  WriteSetFn fn_;
  const char* unchecked_reason_ = nullptr;
};

/// Explicit opt-out tag: the call site asserts its writes are safe but not
/// expressible as spans (or deliberately racy, e.g. in a negative test).
/// The repo linter accepts this in place of a WriteSet declaration.
inline Footprint unchecked(const char* reason) {
  return Footprint::make_unchecked(reason);
}

/// Chunk [i0, i1) writes rows [i0, i1) of `m` — the row-block-of-C shape
/// used by every GEMM-family kernel.
inline Footprint row_block(const Matrix& m) {
  return Footprint([&m](index_t b, index_t e, WriteSet& ws) {
    ws.add_rows(m, b, e);
  });
}

/// Chunk [n0, n1) writes samples [n0, n1) of `t` (batch-parallel NN passes).
inline Footprint sample_block(const Tensor4& t) {
  return Footprint([&t](index_t b, index_t e, WriteSet& ws) {
    ws.add_samples(t, b, e);
  });
}

/// Chunk [b, e) writes elements [b, e) of a flat array (per-chunk partials,
/// per-layer state objects).
template <typename T>
Footprint elem_block(const T* base) {
  return Footprint([base](index_t b, index_t e, WriteSet& ws) {
    ws.add_range(base, b, e);
  });
}

}  // namespace hylo::audit
