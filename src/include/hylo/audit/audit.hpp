#pragma once
/// \file audit.hpp
/// hylo::audit — checked execution for the hylo::par determinism contract.
///
/// Audit mode is off by default and costs one cached-flag branch per
/// parallel_for when disabled. It is enabled by the environment
/// (`HYLO_AUDIT=1`), by building with `-DHYLO_AUDIT=ON` (which flips the
/// compiled-in default), or programmatically via `set_enabled` (tests,
/// benches). When enabled, every `parallel_for` carrying a checked
/// `Footprint` executes its chunks *serially* on the calling thread — same
/// partition math, so results stay bitwise identical — while the auditor:
///
///   1. materializes every chunk's declared WriteSet up front and reports
///      any inter-chunk overlap of declared spans (label, chunk ids, byte
///      ranges), and
///   2. snapshots sampled bytes of each registered buffer *outside* the
///      running chunk's declaration before the chunk and verifies them
///      untouched after it — catching writes that escape the declaration.
///
/// Violations increment the `audit/violations` counter and throw
/// `hylo::Error` with a HYLO_CHECK-style diagnostic. `replay_check` is the
/// companion determinism harness: it reruns a region at 1/2/N threads and
/// fails on any bitwise divergence.

#include <cstdint>
#include <functional>

#include "hylo/audit/write_set.hpp"
#include "hylo/common/types.hpp"
#include "hylo/tensor/matrix.hpp"

namespace hylo::obs {
class MetricsRegistry;
}

namespace hylo::audit {

/// True when audit mode is active. First call resolves HYLO_AUDIT (else the
/// compiled-in default); afterwards a relaxed atomic load.
bool enabled();

/// Programmatic override (tests/benches). Returns the previous value.
bool set_enabled(bool on);

/// Total violations reported since process start (or reset_stats).
std::int64_t violations();
/// Regions executed under checked audit since process start.
std::int64_t checked_regions();
/// replay_check invocations since process start.
std::int64_t replays();
void reset_stats();

/// Publish auditor telemetry into a registry: counters `audit/violations`,
/// `audit/checked_regions`, `audit/replays` (top-up semantics, same as
/// par::export_metrics, so repeated exports never double count).
void export_metrics(obs::MetricsRegistry& reg);

/// A chunked region body, chunk-range in, as passed to parallel_for.
using RegionFn = std::function<void(index_t, index_t)>;

/// Checked serial execution of a partitioned region (called by the pool in
/// audit mode; not part of the public API). `fn` runs chunk c over
/// [begin + c*chunk, min(end, begin + (c+1)*chunk)) for c in [0, nchunks).
/// Throws hylo::Error on any declared-span overlap between chunks or any
/// sampled out-of-declaration write.
void run_checked(const char* label, index_t begin, index_t end, index_t chunk,
                 index_t nchunks, const RegionFn& fn, const Footprint& fp);

/// Determinism harness: runs `make` at 1, 2 and the currently configured
/// thread counts (deduplicated), HYLO_CHECKs every result bitwise identical
/// to the 1-thread reference, restores the original pool size, and returns
/// the reference. Wire hot paths (GEMM/conv/KID/KIS/SNGD) through this in
/// tests to pin the thread-count-invariance contract cheaply.
Matrix replay_check(const char* label, const std::function<Matrix()>& make);

}  // namespace hylo::audit
