#pragma once
/// \file datasets.hpp
/// Synthetic dataset generators. The paper trains on ImageNet-1k, CIFAR,
/// Fashion-MNIST and the LGG MRI segmentation set; none of those pixels are
/// available offline, so each task is replaced by a generator producing a
/// *trainable* supervised problem of the same modality with a controllable
/// difficulty knob (see DESIGN.md §2). Every generator is deterministic in
/// its seed so optimizer comparisons see identical data.

#include <cstdint>
#include <vector>

#include "hylo/tensor/tensor4.hpp"

namespace hylo {

/// A supervised dataset: classification (labels) or binary segmentation
/// (masks). Exactly one of labels/masks is populated.
struct Dataset {
  Tensor4 images;           ///< (N, C, H, W)
  std::vector<int> labels;  ///< classification targets, size N (or empty)
  Tensor4 masks;            ///< segmentation targets (N, 1, H, W) (or empty)

  index_t size() const { return images.n(); }
  bool is_segmentation() const { return !masks.empty(); }
};

struct DataSplit {
  Dataset train;
  Dataset test;
};

/// Interleaved k-arm spirals in 2-D (quickstart / MLP tests). Input shape
/// (2, 1, 1).
DataSplit make_spirals(index_t n_train, index_t n_test, index_t classes,
                       real_t noise, std::uint64_t seed);

/// Fashion-MNIST stand-in: per-class smooth random template images plus
/// Gaussian pixel noise. Larger `noise` makes the task harder.
DataSplit make_gaussian_images(index_t n_train, index_t n_test,
                               index_t classes, index_t channels, index_t h,
                               index_t w, real_t noise, std::uint64_t seed);

/// CIFAR stand-in: oriented sinusoidal gratings; the class determines the
/// orientation/frequency pair, per-sample phase is random, plus noise.
DataSplit make_texture_images(index_t n_train, index_t n_test, index_t classes,
                              index_t channels, index_t h, index_t w,
                              real_t noise, std::uint64_t seed);

/// LGG-MRI stand-in: random bright ellipses ("lesions") over a textured
/// background; the mask marks lesion pixels. Output mask shape (N, 1, H, W).
DataSplit make_blob_segmentation(index_t n_train, index_t n_test, index_t h,
                                 index_t w, real_t noise, std::uint64_t seed);

/// One minibatch handed to the training loop.
struct Batch {
  Tensor4 images;
  std::vector<int> labels;
  Tensor4 masks;
  index_t size() const { return images.n(); }
};

/// Deterministic shuffling minibatch loader with data-parallel sharding:
/// all ranks draw the same epoch permutation (same seed), each takes its
/// strided slice — the standard distributed sampler construction.
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, index_t batch_size, std::uint64_t seed,
             index_t rank = 0, index_t world = 1);

  /// Reshuffle for the given epoch (deterministic in seed + epoch) and
  /// rewind.
  void start_epoch(index_t epoch);

  /// Fetch the next local minibatch; returns false at epoch end.
  bool next(Batch& batch);

  /// Advance past `batches` already-consumed local minibatches (mid-epoch
  /// resume from a run snapshot). The epoch permutation is a pure function
  /// of (seed, epoch), so start_epoch + skip lands exactly where the
  /// interrupted run's cursor was.
  void skip(index_t batches);

  /// Number of local (per-rank) batches per epoch.
  index_t batches_per_epoch() const;

  index_t batch_size() const { return batch_size_; }

 private:
  const Dataset* dataset_;
  index_t batch_size_, rank_, world_;
  std::uint64_t seed_;
  std::vector<index_t> order_;  // this rank's sample indices, shuffled
  index_t cursor_ = 0;
};

}  // namespace hylo
