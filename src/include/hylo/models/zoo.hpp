#pragma once
/// \file zoo.hpp
/// Model zoo: CPU-scaled proxies of the paper's five architectures plus a
/// plain MLP. Each builder is deterministic in its seed (identical weights
/// across optimizer comparisons and across simulated workers).
///
/// The proxies keep the *topology* of the originals — residual adds
/// (ResNet), dense concatenations (DenseNet), encoder/decoder skips (U-Net),
/// conv-then-fc (3C1F) — at reduced width/depth so that a single CPU core
/// trains them in seconds. See DESIGN.md §2 for the substitution rationale.

#include <cstdint>
#include <string>
#include <vector>

#include "hylo/nn/network.hpp"

namespace hylo {

/// Plain MLP: hidden layers with ReLU, linear head.
Network make_mlp(Shape input, const std::vector<index_t>& hidden,
                 index_t classes, std::uint64_t seed);

/// 3C1F (paper's Fashion-MNIST model): three 3x3 conv+ReLU stages with
/// pooling, one fully-connected head.
Network make_c3f1(Shape input, index_t classes, index_t base_channels,
                  std::uint64_t seed);

/// CIFAR-style ResNet: depth = 6*blocks_per_stage + 2 (paper: ResNet-32 has
/// blocks_per_stage = 5). `width` scales the 16/32/64 channel progression.
Network make_resnet(Shape input, index_t classes, index_t blocks_per_stage,
                    index_t width, std::uint64_t seed);

/// DenseNet-style network: two dense blocks of `block_layers` 3x3 convs with
/// growth-rate concatenation, a 1x1 transition with 2x average pooling.
Network make_densenet(Shape input, index_t classes, index_t growth,
                      index_t block_layers, std::uint64_t seed);

/// U-Net-style encoder/decoder with `depth` pooling stages and skip
/// concatenations; 1-channel logits head for binary segmentation.
Network make_unet(Shape input, index_t base_channels, index_t depth,
                  std::uint64_t seed);

/// One preconditionable layer's dimensions (for the Fig. 2 bench): the
/// KFAC-relevant dimension is max(d_in+1, d_out) of the augmented block.
struct LayerDim {
  std::string model;
  std::string layer;
  index_t d_in = 0;   // augmented input dim (patch+1 for conv)
  index_t d_out = 0;
};

/// Layer-dimension inventory of a constructed network.
std::vector<LayerDim> layer_dims(Network& net, const std::string& model_name);

/// Hard-coded layer-dimension tables of the *full-size* architectures the
/// paper plots in Fig. 2 (ResNet-50/ImageNet, U-Net, DenseNet-121,
/// ResNet-32/CIFAR, 3C1F), derived from the published architectures. Used by
/// the Fig. 2 bench so the distribution matches the paper even though our
/// trainable proxies are narrower.
std::vector<LayerDim> reference_layer_dims(const std::string& model_name);

/// Names accepted by reference_layer_dims().
std::vector<std::string> reference_model_names();

}  // namespace hylo
