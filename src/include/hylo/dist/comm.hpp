#pragma once
/// \file comm.hpp
/// Lockstep-simulated communicator. Data movement between the P simulated
/// ranks happens in shared memory (the runner executes ranks sequentially,
/// bit-exactly), while each collective charges its modeled wire time to a
/// profiler section. Compute sections are measured and attributed separately
/// so benches can report the paper's computation/communication breakdowns.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "hylo/common/timer.hpp"
#include "hylo/dist/cost_model.hpp"
#include "hylo/dist/fault_plan.hpp"
#include "hylo/obs/trace.hpp"
#include "hylo/tensor/matrix.hpp"

namespace hylo {

/// What an unrecoverable injected fault (rank_down) does to a collective.
enum class FailMode {
  /// The collective aborts: the wasted attempt is charged and CommFailure is
  /// thrown for the caller to degrade on (curvature gathers/broadcasts).
  kMayFail,
  /// The fabric re-forms around the dead rank and retries until the
  /// collective completes — charged, never thrown (gradient allreduce).
  kRetryUntilSuccess,
};

class CommSim {
 public:
  CommSim(index_t world, InterconnectModel model)
      : world_(world), model_(std::move(model)) {
    HYLO_CHECK(world >= 1, "world must be >= 1");
  }

  index_t world() const { return world_; }
  const InterconnectModel& model() const { return model_; }

  /// Sum per-rank gradient buffers into their average (ring allreduce
  /// semantics); charges allreduce time under `section`. Buffers must be
  /// distinct non-null matrices: rank 0's buffer doubles as the accumulator,
  /// so an aliased entry would be summed into itself. The data movement has
  /// already happened in shared memory, so faults retry-until-success.
  void allreduce_mean(std::vector<Matrix*> bufs, const std::string& section);

  /// Gather per-rank row blocks into one stacked matrix on every rank
  /// (allgather); charges per-rank-contribution time under `section`
  /// (retry-until-success — the stacked result is returned by value).
  Matrix allgather_rows(const std::vector<const Matrix*>& locals,
                        const std::string& section);

  /// Charge a broadcast of `bytes` from one root under `section` (the data
  /// is already visible in shared memory). With an active fault plan and
  /// mode kMayFail, throws CommFailure on an unrecoverable injected fault.
  void charge_broadcast(index_t bytes, const std::string& section,
                        FailMode mode = FailMode::kMayFail);

  /// Charge an allgather where each rank contributes `bytes_per_rank`.
  void charge_allgather(index_t bytes_per_rank, const std::string& section,
                        FailMode mode = FailMode::kMayFail);

  /// Charge an allreduce of `bytes`.
  void charge_allreduce(index_t bytes, const std::string& section,
                        FailMode mode = FailMode::kMayFail);

  /// Install the deterministic fault schedule (disabled config removes it).
  /// Every subsequent collective consults the plan; comm/faults/* counters
  /// and trace instants record each injected event.
  void configure_faults(const FaultConfig& cfg);
  bool faults_active() const {
    return fault_plan_ != nullptr && fault_plan_->active();
  }
  const FaultPlan* fault_plan() const { return fault_plan_.get(); }
  FaultPlan* fault_plan() { return fault_plan_.get(); }

  /// Elastic world-shrink (rank_lost events). A permanently dead rank is
  /// recorded here when the fault fires, but the world does not shrink
  /// mid-iteration — collectives already in flight were sized for the old
  /// world. The trainer calls commit_shrinks() at the next iteration
  /// boundary, re-partitions layer ownership, and carries on with the
  /// survivors (DESIGN.md §11).
  bool has_pending_shrinks() const { return !pending_lost_.empty(); }

  /// Shrink the world by the pending dead ranks and return them (original
  /// rank numbers, in death order). Bumps `dist/elastic/world_shrinks` and
  /// the `dist/elastic/world` gauge per committed loss.
  std::vector<index_t> commit_shrinks();

  /// Ranks lost over the whole run so far (committed), in death order.
  const std::vector<index_t>& lost_ranks() const { return lost_ranks_; }

  /// Restore elastic state on resume: the surviving world size and the
  /// already-committed loss history of the interrupted run.
  void restore_world(index_t world, std::vector<index_t> lost);

  /// Modeled communication seconds accumulated so far (all comm sections).
  double comm_seconds() const;

  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }

  /// Wire-byte / message accounting per section, kept as registry counters
  /// `<section>.bytes` and `<section>.msgs` (PowerSGD/MKOR-style
  /// bytes-on-wire bookkeeping — the numbers that substantiate compression
  /// ratios, independent of the modeled seconds).
  std::int64_t wire_bytes_charged(const std::string& section) const {
    return profiler_.registry().counter_value(section + ".bytes");
  }
  std::int64_t messages(const std::string& section) const {
    return profiler_.registry().counter_value(section + ".msgs");
  }
  /// Totals across every comm/* section.
  std::int64_t total_wire_bytes() const;
  std::int64_t total_messages() const;

  /// Attach a trace buffer: every charged collective is then also recorded
  /// as a barrier span on the simulated timeline. Not owned; may be null.
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }
  obs::TraceBuffer* trace() { return trace_; }

  /// Default bytes per scalar on the wire: FP32, as KAISA communicates.
  static constexpr index_t kWireScalarBytes = 4;

  /// Configure the wire precision (4 = FP32, 2 = FP16, 2.625 = the 21-bit
  /// custom float of Ueno et al. [7]). Affects modeled time only — the
  /// shared-memory data stays full precision.
  void set_wire_scalar_bytes(double bytes) {
    HYLO_CHECK(bytes > 0.0, "wire scalar bytes must be positive");
    wire_scalar_bytes_ = bytes;
  }
  double wire_scalar_bytes() const { return wire_scalar_bytes_; }

  /// Modeled wire size of `scalars` values at the configured precision,
  /// rounded to the nearest byte (truncation undercounted the 2.625-byte
  /// custom-float mode).
  index_t wire_bytes(index_t scalars) const {
    return static_cast<index_t>(
        std::llround(static_cast<double>(scalars) * wire_scalar_bytes_));
  }

 private:
  /// Shared bookkeeping behind every charge_*: fault-plan consultation,
  /// profiler seconds, byte and message counters, and (when attached) the
  /// trace barrier span.
  void charge(const char* kind, index_t bytes, const std::string& section,
              double seconds, FailMode mode);

  /// Account an injected event (counters + trace instant) and return its
  /// extra modeled seconds; throws CommFailure for an unrecoverable event
  /// under kMayFail after charging the wasted attempts.
  double apply_fault(const char* kind, const FaultEvent& ev, index_t bytes,
                     const std::string& section, double seconds,
                     FailMode mode);

  index_t world_;
  InterconnectModel model_;
  Profiler profiler_;
  obs::TraceBuffer* trace_ = nullptr;
  double wire_scalar_bytes_ = kWireScalarBytes;
  std::unique_ptr<FaultPlan> fault_plan_;
  std::vector<index_t> pending_lost_;  ///< deaths awaiting commit_shrinks()
  std::vector<index_t> lost_ranks_;    ///< committed deaths, run lifetime
};

/// Round-robin layer-to-rank assignment used by both distributed KFAC
/// (KAISA) and HyLo for the inversion step.
class LayerAssignment {
 public:
  LayerAssignment(index_t layers, index_t world)
      : layers_(layers), world_(world) {
    HYLO_CHECK(layers >= 0 && world >= 1, "bad assignment args");
  }

  index_t owner(index_t layer) const {
    HYLO_CHECK(layer >= 0 && layer < layers_, "layer out of range");
    return layer % world_;
  }

  /// Number of layers owned by `rank` (load balance accounting).
  index_t owned_count(index_t rank) const {
    HYLO_CHECK(rank >= 0 && rank < world_, "rank out of range");
    return layers_ / world_ + ((layer_remainder() > rank) ? 1 : 0);
  }

 private:
  index_t layer_remainder() const { return layers_ % world_; }
  index_t layers_, world_;
};

}  // namespace hylo
