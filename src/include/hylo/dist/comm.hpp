#pragma once
/// \file comm.hpp
/// Simulated communicator. Data movement between the P simulated ranks
/// happens in shared memory (the runner executes ranks sequentially,
/// bit-exactly), while each collective charges its modeled wire time to a
/// profiler section. Compute sections are measured and attributed separately
/// so benches can report the paper's computation/communication breakdowns.
///
/// Two execution modes (DESIGN.md §15):
///  - kLockstep (default): every collective is a barrier; its modeled
///    seconds accumulate in the profiler and the epoch wall is recomposed
///    analytically. This is the seed behavior, bit for bit.
///  - kAsync: collectives issued through icharge_* become events on a
///    per-rank EventTimeline with a FIFO wire; completion is a (time, seq)
///    handle the caller polls, which is what lets curvature-factor gathers
///    overlap the next iteration's forward/backward.
///
/// Wire-byte ledger semantics (`<section>.bytes` counters): every charge
/// records the **total bytes crossing the wire**, summed over ranks and
/// ring/tree steps — allgather records (P-1)·Σ per-rank payloads, allreduce
/// and broadcast record their logical payload once (the reduction/fan-out
/// traffic is folded into modeled seconds, matching how KAISA reports
/// volumes). Retried attempts re-send bytes but land in the separate
/// total_retry_bytes() ledger so clean and faulty runs stay comparable.

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hylo/common/timer.hpp"
#include "hylo/dist/cost_model.hpp"
#include "hylo/dist/event_sim.hpp"
#include "hylo/dist/fault_plan.hpp"
#include "hylo/obs/trace.hpp"
#include "hylo/tensor/matrix.hpp"

namespace hylo {

/// What an unrecoverable injected fault (rank_down) does to a collective.
enum class FailMode {
  /// The collective aborts: the wasted attempt is charged and CommFailure is
  /// thrown for the caller to degrade on (curvature gathers/broadcasts).
  kMayFail,
  /// The fabric re-forms around the dead rank and retries until the
  /// collective completes — charged, never thrown (gradient allreduce).
  kRetryUntilSuccess,
};

/// How the communicator executes collectives (see file header).
enum class CommMode { kLockstep, kAsync };

const char* to_string(CommMode mode);

/// Parse HYLO_COMM ("lockstep"/"sync" or "async"/"event"); nullopt when the
/// variable is unset or empty, loud failure on anything else.
std::optional<CommMode> comm_mode_from_env();

/// Completion handle for a nonblocking (icharge_*) collective. In async
/// mode the caller keeps the handle and commits its dependent state once
/// ready_s is behind the rank clocks; `failed` marks a kMayFail collective
/// lost to an injected fault — the caller degrades exactly as it would on a
/// lockstep CommFailure.
struct CommEvent {
  std::uint64_t seq = 0;
  double start_s = 0.0;
  double ready_s = 0.0;
  bool failed = false;
};

class CommSim {
 public:
  CommSim(index_t world, InterconnectModel model)
      : world_(world), model_(std::move(model)) {
    HYLO_CHECK(world >= 1, "world must be >= 1");
  }

  index_t world() const { return world_; }
  const InterconnectModel& model() const { return model_; }

  /// Sum per-rank gradient buffers into their average (ring allreduce
  /// semantics); charges allreduce time under `section`. Buffers must be
  /// distinct non-null matrices: rank 0's buffer doubles as the accumulator,
  /// so an aliased entry would be summed into itself. The data movement has
  /// already happened in shared memory, so faults retry-until-success.
  void allreduce_mean(std::vector<Matrix*> bufs, const std::string& section);

  /// Gather per-rank row blocks into one stacked matrix on every rank
  /// (allgather); charges ring time paced by the largest per-rank block and
  /// ledgers the total wire traffic, (world-1)·Σ per-rank bytes
  /// (retry-until-success — the stacked result is returned by value).
  Matrix allgather_rows(const std::vector<const Matrix*>& locals,
                        const std::string& section);

  /// Charge a broadcast of `bytes` from one root under `section` (the data
  /// is already visible in shared memory). With an active fault plan and
  /// mode kMayFail, throws CommFailure on an unrecoverable injected fault.
  void charge_broadcast(index_t bytes, const std::string& section,
                        FailMode mode = FailMode::kMayFail);

  /// Charge an allgather where each rank contributes `bytes_per_rank`.
  /// Ledger: (world-1)·world·bytes_per_rank total wire bytes; the latency
  /// term uses bytes_per_rank (ring step size).
  void charge_allgather(index_t bytes_per_rank, const std::string& section,
                        FailMode mode = FailMode::kMayFail);

  /// Charge an allgather with per-rank payload sizes (HyLo/SNGD gather
  /// unequal row blocks). Ledger: (world-1)·Σ bytes; the latency term uses
  /// the max per-rank payload — the ring is paced by its largest block.
  void charge_allgather(const std::vector<index_t>& bytes_per_rank,
                        const std::string& section,
                        FailMode mode = FailMode::kMayFail);

  /// Charge an allreduce of `bytes`.
  void charge_allreduce(index_t bytes, const std::string& section,
                        FailMode mode = FailMode::kMayFail);

  /// --- Async (event-timeline) mode -------------------------------------

  /// Switch modes. kAsync creates the EventTimeline on first use; switching
  /// is only meaningful before any collective has been charged.
  void set_mode(CommMode mode);
  CommMode mode() const { return mode_; }
  bool async() const { return mode_ == CommMode::kAsync; }

  /// The event timeline (non-null iff async mode is active).
  EventTimeline* timeline() { return timeline_.get(); }
  const EventTimeline* timeline() const { return timeline_.get(); }

  /// Nonblocking collectives (async mode only). The operation is charged
  /// now (profiler seconds, wire-byte ledger, fault-plan draw) and placed
  /// on the wire no earlier than `earliest_start_s`; the returned handle
  /// carries its modeled completion. Unlike the blocking forms, a kMayFail
  /// fault does not throw — it comes back as event.failed.
  CommEvent icharge_allgather(const std::vector<index_t>& bytes_per_rank,
                              const std::string& section,
                              double earliest_start_s,
                              FailMode mode = FailMode::kMayFail);
  CommEvent icharge_broadcast(index_t bytes, const std::string& section,
                              double earliest_start_s,
                              FailMode mode = FailMode::kMayFail);
  CommEvent icharge_allreduce(index_t bytes, const std::string& section,
                              double earliest_start_s,
                              FailMode mode = FailMode::kMayFail);

  /// Install the deterministic fault schedule (disabled config removes it).
  /// Every subsequent collective consults the plan; comm/faults/* counters
  /// and trace instants record each injected event.
  void configure_faults(const FaultConfig& cfg);

  /// Silent-corruption ticket for the collective just charged. A
  /// silent_corrupt event that escaped the payload check does not throw —
  /// the collective "succeeds" — but the caller must then corrupt the
  /// payload it moved through shared memory: calling this after a charge
  /// returns-and-clears the bit-flip seed when the last charge escaped
  /// (nullopt otherwise). allreduce_mean / allgather_rows consume their own
  /// tickets; optimizers consume tickets for their charge_*/icharge_*
  /// curvature collectives via apply_escaped_corruption. An unconsumed
  /// ticket is cleared by the next charge — it never leaks across
  /// collectives.
  std::optional<std::uint64_t> take_silent_corruption() {
    auto t = pending_sdc_;
    pending_sdc_.reset();
    return t;
  }
  bool faults_active() const {
    return fault_plan_ != nullptr && fault_plan_->active();
  }
  const FaultPlan* fault_plan() const { return fault_plan_.get(); }
  FaultPlan* fault_plan() { return fault_plan_.get(); }

  /// Elastic world-shrink (rank_lost events). A permanently dead rank is
  /// recorded here when the fault fires, but the world does not shrink
  /// mid-iteration — collectives already in flight were sized for the old
  /// world. The trainer calls commit_shrinks() at the next iteration
  /// boundary, re-partitions layer ownership, and carries on with the
  /// survivors (DESIGN.md §11).
  bool has_pending_shrinks() const { return !pending_lost_.empty(); }

  /// Shrink the world by the pending dead ranks and return them (original
  /// rank numbers, in death order). Bumps `dist/elastic/world_shrinks` and
  /// the `dist/elastic/world` gauge per committed loss.
  std::vector<index_t> commit_shrinks();

  /// Ranks lost over the whole run so far (committed), in death order.
  const std::vector<index_t>& lost_ranks() const { return lost_ranks_; }

  /// Restore elastic state on resume: the surviving world size and the
  /// already-committed loss history of the interrupted run.
  void restore_world(index_t world, std::vector<index_t> lost);

  /// Modeled communication seconds accumulated so far (all comm sections).
  double comm_seconds() const;

  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }

  /// Wire-byte / message accounting per section, kept as registry counters
  /// `<section>.bytes` and `<section>.msgs` (PowerSGD/MKOR-style
  /// bytes-on-wire bookkeeping — the numbers that substantiate compression
  /// ratios, independent of the modeled seconds).
  std::int64_t wire_bytes_charged(const std::string& section) const {
    return profiler_.registry().counter_value(section + ".bytes");
  }
  std::int64_t messages(const std::string& section) const {
    return profiler_.registry().counter_value(section + ".msgs");
  }
  /// Totals across every comm/* section. Retried attempts are *excluded*
  /// by design (the fault suite pins clean and faulty runs to the same
  /// wire totals so compression ratios stay comparable); they are exposed
  /// separately via total_retry_bytes().
  std::int64_t total_wire_bytes() const;
  std::int64_t total_messages() const;

  /// Bytes re-sent by retried attempts (timeout / corrupt / rank_down
  /// recovery), i.e. the comm/faults/retry_bytes counter. Zero on clean
  /// runs; total_wire_bytes() + total_retry_bytes() is everything that
  /// crossed the modeled wire including waste.
  std::int64_t total_retry_bytes() const {
    return profiler_.registry().counter_value("comm/faults/retry_bytes");
  }

  /// Attach a trace buffer: every charged collective is then also recorded
  /// as a barrier span on the simulated timeline. Not owned; may be null.
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }
  obs::TraceBuffer* trace() { return trace_; }

  /// Default bytes per scalar on the wire: FP32, as KAISA communicates.
  static constexpr index_t kWireScalarBytes = 4;

  /// Configure the wire precision (4 = FP32, 2 = FP16, 2.625 = the 21-bit
  /// custom float of Ueno et al. [7]). Affects modeled time only — the
  /// shared-memory data stays full precision.
  void set_wire_scalar_bytes(double bytes) {
    HYLO_CHECK(bytes > 0.0, "wire scalar bytes must be positive");
    wire_scalar_bytes_ = bytes;
  }
  double wire_scalar_bytes() const { return wire_scalar_bytes_; }

  /// Modeled wire size of `scalars` values at the configured precision,
  /// rounded to the nearest byte (truncation undercounted the 2.625-byte
  /// custom-float mode).
  index_t wire_bytes(index_t scalars) const {
    return static_cast<index_t>(
        std::llround(static_cast<double>(scalars) * wire_scalar_bytes_));
  }

 private:
  /// Shared bookkeeping behind every charge_*: fault-plan consultation,
  /// profiler seconds, byte and message counters, and (when attached) the
  /// trace barrier span. In async mode this routes through icharge() and
  /// barriers every rank clock at the completion time (blocking-collective
  /// semantics on the event timeline).
  void charge(const char* kind, index_t bytes, const std::string& section,
              double seconds, FailMode mode);

  /// Async core behind icharge_* and async-mode charge(): draws the fault
  /// plan, reserves the wire, and books seconds/bytes/msgs plus an
  /// absolute-time trace span for completed operations.
  CommEvent icharge(const char* kind, index_t ledger_bytes,
                    const std::string& section, double seconds,
                    double earliest_start_s, FailMode mode);

  /// Account an injected event (counters + trace instant) and return its
  /// extra modeled seconds; throws CommFailure for an unrecoverable event
  /// under kMayFail after charging the wasted attempts.
  double apply_fault(const char* kind, const FaultEvent& ev, index_t bytes,
                     const std::string& section, double seconds,
                     FailMode mode);

  index_t world_;
  InterconnectModel model_;
  Profiler profiler_;
  obs::TraceBuffer* trace_ = nullptr;
  double wire_scalar_bytes_ = kWireScalarBytes;
  CommMode mode_ = CommMode::kLockstep;
  std::unique_ptr<EventTimeline> timeline_;
  std::unique_ptr<FaultPlan> fault_plan_;
  std::vector<index_t> pending_lost_;  ///< deaths awaiting commit_shrinks()
  std::vector<index_t> lost_ranks_;    ///< committed deaths, run lifetime
  std::optional<std::uint64_t> pending_sdc_;  ///< escaped-corruption ticket
};

/// Apply a seeded, deterministic corruption to a payload matrix: 1–3 bit
/// flips at Rng(seed)-chosen element/bit positions. The pure-function shape
/// (same seed + same matrix extents → same flips) is what keeps
/// silent-corruption runs bitwise replayable. No-op on an empty matrix.
void corrupt_values(Matrix& m, std::uint64_t seed);

/// Round-robin layer-to-rank assignment used by both distributed KFAC
/// (KAISA) and HyLo for the inversion step.
class LayerAssignment {
 public:
  LayerAssignment(index_t layers, index_t world)
      : layers_(layers), world_(world) {
    HYLO_CHECK(layers >= 0 && world >= 1, "bad assignment args");
  }

  index_t owner(index_t layer) const {
    HYLO_CHECK(layer >= 0 && layer < layers_, "layer out of range");
    return layer % world_;
  }

  /// Number of layers owned by `rank` (load balance accounting).
  index_t owned_count(index_t rank) const {
    HYLO_CHECK(rank >= 0 && rank < world_, "rank out of range");
    return layers_ / world_ + ((layer_remainder() > rank) ? 1 : 0);
  }

 private:
  index_t layer_remainder() const { return layers_ % world_; }
  index_t layers_, world_;
};

}  // namespace hylo
