#pragma once
/// \file fault_plan.hpp
/// Deterministic fault injection for the simulated fabric. A FaultPlan is a
/// seeded hylo::Rng-driven schedule of per-collective fault events that
/// CommSim consults on every charge: the k-th collective of a run always
/// draws the k-th event, so the same seed + config produces a byte-identical
/// fault schedule (and therefore an identical run log) on every replay.
///
/// Event taxonomy (DESIGN.md §10):
///   timeout         -- k lost attempts, each burning the collective's full
///                      modeled time plus an exponentially growing backoff
///                      (retry_seconds in cost_model.hpp); always recovers.
///   straggler(s×)   -- one slow participant stretches the collective by s×;
///                      always recovers.
///   corrupt_payload -- wire corruption caught by the transport checksum,
///                      forcing one retransmission of the payload; always
///                      recovers and no corrupted value ever flows (data in
///                      shared memory stays exact — the cost is modeled, like
///                      all wire time).
///   silent_corrupt  -- wire corruption that gets PAST the transport layer
///                      and reaches the application-level payload check (the
///                      modeled CRC pass in checksum_seconds). With
///                      probability 1-escape the check catches it: degradable
///                      collectives (curvature gathers/broadcasts) fail with
///                      CommFailure after charging the wasted attempt and the
///                      optimizer serves stale factors; must-complete
///                      collectives retry, charged but never failing. With
///                      probability `escape` the corruption is SILENT: the
///                      collective "succeeds" and a seeded, deterministic
///                      bit-flip is applied to the payload values post-charge
///                      (the only fault kind that ever corrupts data in
///                      shared memory). Off by default — opt in with a
///                      silent mix weight — so existing schedules replay
///                      byte-identically. Numeric commit gates in the
///                      curvature optimizers (OptimConfig::guard_gates) are
///                      the last line of defense against escaped events.
///   rank_down(r)    -- participant r dies mid-collective. Degradable
///                      collectives (curvature gathers/broadcasts) fail with
///                      CommFailure after charging the wasted attempt; the
///                      optimizer keeps serving stale factors. Must-complete
///                      collectives (gradient allreduce) re-form the ring and
///                      retry, charged but never failing.
///   rank_lost(r)    -- participant r dies *permanently*. The collective
///                      re-forms among the survivors and completes (the data
///                      already lives in shared memory), and the world
///                      shrinks by one at the next iteration boundary: the
///                      trainer re-partitions layer ownership and data
///                      shards and training continues (DESIGN.md §11). Off
///                      by default — opt in with a rank_lost mix weight —
///                      so existing transient-fault schedules replay
///                      byte-identically.
///
/// Configured programmatically (TrainConfig::faults) or via the environment:
///   HYLO_FAULTS=seed:rate[:mix]
/// where `mix` is a comma list of kind=weight pairs, e.g.
///   HYLO_FAULTS=42:0.1:timeout=1,rank_down=2
/// Silent corruption mixes in as `silent` (alias `silent_corrupt`); the
/// pseudo-key `escape` sets the detection-escape probability instead of a
/// weight, e.g.
///   HYLO_FAULTS=42:0.2:silent=1,escape=0.25
/// Unset/empty HYLO_FAULTS (and no config) means the plan is absent and the
/// comm path takes zero new branches — bitwise-identical to a fault-free
/// build.

#include <cstdint>
#include <optional>
#include <string>

#include "hylo/common/check.hpp"
#include "hylo/common/rng.hpp"
#include "hylo/common/types.hpp"

namespace hylo {

/// Thrown by CommSim when an injected fault makes a degradable collective
/// unrecoverable. CurvatureOptimizer subclasses catch it and fall back to
/// the previous refresh's factors (or the plain SGD direction).
class CommFailure : public Error {
 public:
  explicit CommFailure(const std::string& what) : Error(what) {}
};

enum class FaultKind {
  kNone,
  kTimeout,
  kStraggler,
  kCorruptPayload,
  kRankDown,
  kRankLost,  ///< permanent: the world shrinks around the dead rank
  kSilentCorrupt,  ///< payload corruption past the transport checksum
};

const char* to_string(FaultKind k);

/// One drawn per-collective fault event.
struct FaultEvent {
  FaultKind kind = FaultKind::kNone;
  index_t rank = 0;       ///< affected participant (straggler/rank_down)
  double slowdown = 1.0;  ///< straggler stretch factor
  int retries = 0;        ///< failed attempts before resolution
  bool recoverable = true;///< false: collective cannot complete (rank_down)
  bool detected = true;   ///< silent_corrupt: did the payload check catch it?
  std::uint64_t payload_seed = 0;  ///< seeds the bit-flips when it escaped
};

/// Schedule parameters. `rate` is the per-collective fault probability; the
/// weights set the relative frequency of each kind among injected events.
struct FaultConfig {
  std::uint64_t seed = 0;
  double rate = 0.0;
  double timeout_weight = 1.0;
  double straggler_weight = 1.0;
  double corrupt_weight = 1.0;
  double rank_down_weight = 1.0;
  /// Permanent rank loss is opt-in (default 0): mixing it in changes the
  /// shape of the run — the world shrinks — so a spec must ask for it.
  double rank_lost_weight = 0.0;
  /// Silent corruption is opt-in (default 0): mixing it in lets corrupted
  /// values actually flow into shared memory when an event escapes the
  /// payload check, so a spec must ask for it.
  double silent_weight = 0.0;
  /// Probability a silent_corrupt event escapes the application-level
  /// payload check (the deliberately imperfect CRC): 0 catches everything,
  /// 1 lets every event through silently.
  double sdc_escape = 0.25;

  bool enabled() const { return rate > 0.0; }
  double total_weight() const {
    return timeout_weight + straggler_weight + corrupt_weight +
           rank_down_weight + rank_lost_weight + silent_weight;
  }

  /// Parse "seed:rate[:mix]" (see file comment). Throws hylo::Error on a
  /// malformed spec, out-of-range rate, or unknown mix kind.
  static FaultConfig parse(const std::string& spec);

  /// The HYLO_FAULTS environment spec, or nullopt when unset/empty.
  static std::optional<FaultConfig> from_env();
};

/// The deterministic schedule itself: one event per next() call, drawn from
/// a private Rng seeded with the config seed. Collectives are issued in a
/// deterministic order by the lockstep simulator, so the schedule is a pure
/// function of (seed, config, collective sequence).
class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig cfg);

  bool active() const { return cfg_.enabled(); }
  const FaultConfig& config() const { return cfg_; }

  /// Draw the fault event for the next collective over `world` ranks.
  FaultEvent next(index_t world);

  /// Collectives consulted so far (drawn events, faulting or not).
  std::int64_t drawn() const { return drawn_; }

  /// Draw-cursor snapshot/restore for hylo::ckpt: the plan is a pure
  /// function of (config, rng state, drawn count), so restoring these two
  /// replays the exact remaining schedule of the interrupted run.
  Rng::State rng_state() const { return rng_.state(); }
  void restore(const Rng::State& rng, std::int64_t drawn) {
    HYLO_CHECK(drawn >= 0, "fault plan draw cursor must be non-negative");
    rng_.set_state(rng);
    drawn_ = drawn;
  }

 private:
  FaultConfig cfg_;
  Rng rng_;
  std::int64_t drawn_ = 0;
};

}  // namespace hylo
