#pragma once
/// \file event_sim.hpp
/// Event-timeline simulator behind CommSim's async mode (DESIGN.md §15).
/// Each simulated rank carries its own clock, advanced by *modeled* compute
/// seconds (dist/cost_model ComputeModel — never measured wall time, so
/// replays are bitwise). Collectives issued through icharge_* reserve the
/// shared interconnect as a FIFO resource: an operation starts at
/// max(its dependency time, the time the wire frees up) and occupies the
/// wire for its modeled duration. Every operation gets a monotonically
/// increasing sequence number at issue; all completion processing is ordered
/// by (ready time, seq), which totally orders the timeline — two runs with
/// the same seed and thread count produce byte-identical event histories.

#include <cstdint>
#include <string>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/common/types.hpp"

namespace hylo::ckpt {
class ByteWriter;
class ByteReader;
}  // namespace hylo::ckpt

namespace hylo {

/// One modeled operation on the shared interconnect. `failed` marks a
/// kMayFail collective lost to an injected rank_down: it never occupied the
/// wire (its wasted attempts were charged to comm/faults/wasted) and its
/// handle reports failure instead of a completion time.
struct TimelineEvent {
  std::uint64_t seq = 0;  ///< issue order; total-order tie-break
  double start_s = 0.0;   ///< when the wire picked the operation up
  double ready_s = 0.0;   ///< completion on the simulated timeline
  bool failed = false;
  std::string section;    ///< profiler section, e.g. "comm/gather"
};

class EventTimeline {
 public:
  explicit EventTimeline(index_t world);

  index_t world() const { return world_; }

  /// Elastic world change (rank loss commit). Clocks beyond the new world
  /// are dropped; growth extends with the current max clock.
  void set_world(index_t world);

  /// One rank's simulated clock (modeled seconds, never wall time).
  double rank_clock(index_t rank) const;

  /// Advance one rank's clock by modeled local compute.
  void advance(index_t rank, double seconds);

  double max_clock() const;

  /// Blocking-collective semantics: every rank waits until `t`.
  void barrier_at(double t);

  /// Reserve the wire for an operation that may start no earlier than
  /// `earliest_start_s` and runs `duration_s`. Failed operations are
  /// recorded in the history but do not occupy the wire. Returns the event
  /// (also appended to the issue-ordered history).
  TimelineEvent issue(const std::string& section, double earliest_start_s,
                      double duration_s, bool failed);

  /// When the wire next frees up.
  double wire_busy_until() const { return wire_busy_until_; }

  /// Latest modeled time anywhere: rank clocks or in-flight wire traffic.
  double horizon() const;

  /// Every issued operation, in seq order. Completion order is recovered by
  /// sorting on (ready_s, seq) — the queue ordering rule.
  const std::vector<TimelineEvent>& history() const { return history_; }

  /// Serialize clocks, wire reservation, and the seq counter so a resumed
  /// run continues the timeline bitwise. The event history itself is not
  /// persisted — it is diagnostic, and a resumed run only ever appends.
  void save(ckpt::ByteWriter& w) const;
  void load(ckpt::ByteReader& r);

 private:
  index_t world_;
  std::vector<double> clocks_;
  double wire_busy_until_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::vector<TimelineEvent> history_;
};

/// Stable completion order over a set of events: (ready_s, seq).
bool completes_before(const TimelineEvent& a, const TimelineEvent& b);

}  // namespace hylo
