#pragma once
/// \file cost_model.hpp
/// Analytical interconnect cost model (α-β / Hockney). The paper's clusters
/// (Mist: V100 + NVLink islands over InfiniBand EDR; AWS P2: K80 over PCIe)
/// are not available, so every collective in the simulator is *charged* a
/// wire time from this model while its data movement executes in shared
/// memory. Comparisons between optimizers depend on message volumes and
/// collective types, which the model preserves (DESIGN.md §2).

#include <string>

#include "hylo/common/types.hpp"

namespace hylo {

/// Point-to-point link parameters.
struct InterconnectModel {
  std::string name;
  double latency_s = 5e-6;        ///< α: per-message startup
  double bandwidth_bps = 10e9;    ///< β⁻¹: bytes per second per link
};

/// V100 cluster preset: NVLink inside a 4-GPU node, IB EDR across nodes.
/// Effective numbers are blended for a flat P-rank view.
InterconnectModel mist_v100();

/// AWS P2 preset: K80 GPUs over PCIe switch.
InterconnectModel aws_p2_k80();

/// Loopback for single-device runs (collectives cost nothing at P=1).
InterconnectModel loopback();

/// Ring allreduce: 2(P-1) steps of (bytes/P) each.
double allreduce_seconds(const InterconnectModel& m, index_t world,
                         index_t bytes);

/// Allgather (ring): each rank contributes `bytes_per_rank`, receives
/// (P-1)·bytes_per_rank in P-1 steps.
double allgather_seconds(const InterconnectModel& m, index_t world,
                         index_t bytes_per_rank);

/// Binomial-tree broadcast of `bytes` from one root.
double broadcast_seconds(const InterconnectModel& m, index_t world,
                         index_t bytes);

/// Tree reduce of `bytes` to one root. Modeled identically to
/// broadcast_seconds *by intention*: the binomial reduce tree moves the same
/// bytes over the same log₂(P) levels in the opposite direction, and the α-β
/// model is direction-agnostic.
double reduce_seconds(const InterconnectModel& m, index_t world, index_t bytes);

/// Modeled cost of `retries` failed attempts of a collective whose clean
/// duration is `base_seconds`, under retry-with-exponential-backoff: each
/// lost attempt burns the full collective time (failure is detected by a
/// timeout set at the attempt's modeled duration) plus a backoff delay that
/// starts at 100·α and doubles per attempt. Zero for retries == 0; strictly
/// increasing and superlinear in `retries` otherwise.
double retry_seconds(const InterconnectModel& m, double base_seconds,
                     int retries);

/// Modeled cost of one application-level CRC pass over `bytes` of payload
/// (the silent-corruption check in DESIGN.md §16): one launch latency plus a
/// memory-bound scan at 4× the wire bandwidth. Charged on every
/// silent_corrupt event, detected or escaped — the check runs either way.
double checksum_seconds(const InterconnectModel& m, index_t bytes);

/// Per-rank compute throughput. The event-timeline simulator (DESIGN.md §15)
/// advances each rank's clock by *modeled* compute time — never measured wall
/// time, which would break bitwise replay — so the same flop count always
/// advances a clock by the same amount.
struct ComputeModel {
  std::string name;
  double flops_per_s = 14e12;  ///< sustained dense-GEMM throughput
};

/// V100 sustained FP32 GEMM throughput (pairs with mist_v100()).
ComputeModel v100_fp32();

/// K80 sustained FP32 GEMM throughput (pairs with aws_p2_k80()).
ComputeModel k80_fp32();

/// Seconds to execute `flops` floating-point operations on one rank.
double compute_seconds(const ComputeModel& m, double flops);

/// Flop estimate for one training step (forward + backward) of a dense
/// network: the standard 6·params·batch rule (2 for forward, 4 for the two
/// backward GEMMs).
double train_step_flops(index_t params, index_t local_batch);

}  // namespace hylo
