#pragma once
/// \file kernels.hpp
/// Khatri-Rao kernel algebra shared by SNGD, KID, KIS and HyLo. The central
/// object is the kernel matrix K = U Uᵀ = (A Aᵀ) ∘ (G Gᵀ) where U = G ⊙ A is
/// the row-wise Khatri-Rao Jacobian (Eq. 5 of the paper): row i of U is
/// kron(g_i, a_i), matching the row-major vectorization of the per-sample
/// weight gradient dW_i = g_i a_iᵀ (W: d_out x d_in).

#include "hylo/tensor/matrix.hpp"

namespace hylo {

/// K = (A Aᵀ) ∘ (G Gᵀ); A, G: m x d_in / m x d_out with matching m.
Matrix kernel_matrix(const Matrix& a, const Matrix& g);

/// Materialized row-wise Khatri-Rao product U (m x d_out*d_in), with
/// U(i, o*d_in + j) = g(i,o) * a(i,j). Only used by tests/small paths —
/// production code applies U implicitly (see below).
Matrix khatri_rao_rowwise(const Matrix& g, const Matrix& a);

/// y = U · vec(V) without materializing U: y_i = g_iᵀ V a_i.
/// V is d_out x d_in (the gradient matrix being preconditioned).
Matrix apply_jacobian(const Matrix& a, const Matrix& g, const Matrix& v);

/// Vᵀy = Uᵀ y reshaped to d_out x d_in: Σ_i y_i g_i a_iᵀ = Gᵀ diag(y) A.
/// `y` must be m x 1.
Matrix apply_jacobian_t(const Matrix& a, const Matrix& g, const Matrix& y);

}  // namespace hylo
