#pragma once
/// \file id.hpp
/// Interpolative decomposition (ID). The row ID selects r physical rows S of
/// a matrix M and a projection P such that M ≈ P · M(S,:). KID (Algorithm 2
/// of the paper) applies this to the local Gram matrix Q = (AAᵀ)∘(GGᵀ): the
/// selected rows S identify the samples whose inputs/gradients are kept as
/// KID-factors, and P carries the interpolation coefficients.

#include <vector>

#include "hylo/tensor/matrix.hpp"

namespace hylo {

/// Row interpolative decomposition result: M ≈ projection * M(rows,:).
struct RowId {
  /// Selected row indices (size = rank), in pivot order.
  std::vector<index_t> rows;
  /// m x rank interpolation matrix P.
  Matrix projection;
  /// Achieved rank (== rows.size(); may be < requested on exact deficiency).
  index_t rank = 0;
};

/// Compute a rank-`r` row ID of M (m x n) using column-pivoted QR of Mᵀ.
/// Requires 1 <= r; r is clamped to min(m, n). When r == m the decomposition
/// is exact with P a permuted identity.
RowId row_interpolative_decomposition(const Matrix& m, index_t r);

/// Reconstruction helper: returns projection * M(rows,:) for error checks.
Matrix id_reconstruct(const RowId& id, const Matrix& m);

}  // namespace hylo
