#pragma once
/// \file eigh.hpp
/// Symmetric eigendecomposition via the cyclic Jacobi method. Used by EKFAC
/// (Kronecker eigenbasis), the kernel-rank analysis of Fig. 10, and the
/// KBFGS factor conditioning. Jacobi is O(n³) per sweep but unconditionally
/// stable and exact enough at the n ≤ few-hundred sizes this library uses.

#include <vector>

#include "hylo/tensor/matrix.hpp"

namespace hylo {

/// Result of eigh(): eigenvalues ascending; eigenvectors[:, i] pairs with
/// eigenvalues[i] (column eigenvectors, V diag(w) Vᵀ = A).
struct EighResult {
  std::vector<real_t> eigenvalues;
  Matrix eigenvectors;
};

/// Full symmetric eigendecomposition. `a` must be symmetric (only the upper
/// triangle is read). Converges when all off-diagonal mass is below
/// tol * frobenius_norm(a).
EighResult eigh(const Matrix& a, real_t tol = 1e-12, int max_sweeps = 64);

/// Eigenvalues only (same algorithm, skips vector accumulation).
std::vector<real_t> eigvalsh(const Matrix& a, real_t tol = 1e-12,
                             int max_sweeps = 64);

/// Numerical rank in the paper's Fig. 10 sense: the number of largest
/// eigenvalues whose partial sum reaches `coverage` (default 90%) of the
/// total eigenvalue sum. Negative eigenvalues are clamped to zero (K is PSD
/// up to roundoff).
index_t numerical_rank(const std::vector<real_t>& eigenvalues,
                       real_t coverage = 0.9);

}  // namespace hylo
