#pragma once
/// \file lu.hpp
/// LU factorization with partial pivoting for general square systems. The
/// KID middle matrix (K̂⁻¹ + Y) and the residual shift (R + αI) are not
/// symmetric, so they are solved here rather than via Cholesky.

#include <vector>

#include "hylo/tensor/matrix.hpp"

namespace hylo {

/// Packed LU factorization: `lu` holds L (unit diagonal, below) and U (on and
/// above the diagonal); `piv` is the row-permutation record.
struct LuFactor {
  Matrix lu;
  std::vector<index_t> piv;
};

/// Factor a square matrix. Throws hylo::Error on exact singularity.
LuFactor lu_factor(const Matrix& a);

/// Solve A x = b for one right-hand side.
std::vector<real_t> lu_solve(const LuFactor& f, const std::vector<real_t>& b);

/// Solve A X = B for a matrix of right-hand sides.
Matrix lu_solve(const LuFactor& f, const Matrix& b);

/// General inverse via LU.
Matrix lu_inverse(const Matrix& a);

/// X = A⁻¹ B for general square A.
Matrix general_solve(const Matrix& a, const Matrix& b);

}  // namespace hylo
