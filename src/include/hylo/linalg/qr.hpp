#pragma once
/// \file qr.hpp
/// Householder QR with column pivoting. The pivot order drives the row
/// selection of the interpolative decomposition (KID, Algorithm 2).

#include <vector>

#include "hylo/tensor/matrix.hpp"

namespace hylo {

/// Column-pivoted QR: A Π = Q R with |r_11| >= |r_22| >= ... The
/// factorization is truncated after `max_rank` columns when max_rank >= 0.
struct PivotedQr {
  /// Upper-trapezoidal R (k x n, k = min(m, n, max_rank)), already permuted:
  /// column j of `r` corresponds to original column piv[j] of A.
  Matrix r;
  /// Householder reflectors packed column-wise (m x k); v_j has an implicit
  /// unit leading entry at row j.
  Matrix reflectors;
  /// Householder scalars tau_j.
  std::vector<real_t> tau;
  /// piv[j] = original column index occupying position j after pivoting.
  std::vector<index_t> piv;
  /// Number of Householder steps performed.
  index_t rank = 0;
};

/// Compute the (possibly truncated) column-pivoted QR of A (m x n).
PivotedQr pivoted_qr(const Matrix& a, index_t max_rank = -1);

/// Apply Qᵀ to a matrix B (m x k) using the packed reflectors.
Matrix apply_qt(const PivotedQr& f, const Matrix& b);

/// Solve R11 X = B where R11 is the leading rank x rank block of f.r.
Matrix solve_r11(const PivotedQr& f, const Matrix& b);

}  // namespace hylo
