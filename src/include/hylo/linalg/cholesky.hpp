#pragma once
/// \file cholesky.hpp
/// Cholesky factorization and SPD solves. Used for every symmetric
/// positive-definite inversion in the library: damped kernel matrices
/// (K + αI), Kronecker factors (AᵀA + γI), and the KID residual shift.

#include <vector>

#include "hylo/tensor/matrix.hpp"

namespace hylo {

/// Lower-triangular Cholesky factor L with A = L Lᵀ. Throws hylo::Error if A
/// is not (numerically) positive definite.
Matrix cholesky(const Matrix& a);

/// Attempt factorization; returns false instead of throwing on a
/// non-positive pivot (caller typically increases damping and retries).
bool try_cholesky(const Matrix& a, Matrix& l);

/// Solve L Lᵀ x = b in place for one right-hand side (b.size() == n).
void cholesky_solve_inplace(const Matrix& l, std::vector<real_t>& b);

/// Solve L Lᵀ X = B for a matrix of right-hand sides (B: n x k).
Matrix cholesky_solve(const Matrix& l, const Matrix& b);

/// Inverse of an SPD matrix via Cholesky.
Matrix spd_inverse(const Matrix& a);

/// X = A⁻¹ B for SPD A.
Matrix spd_solve(const Matrix& a, const Matrix& b);

}  // namespace hylo
