#pragma once
/// \file snapshot.hpp
/// hylo::ckpt — crash-safe run snapshots. A RunSnapshot is a versioned,
/// sectioned, CRC-checked binary container holding everything a Trainer
/// needs to continue a run bitwise-identically: network weights + layer
/// state, the full optimizer state (momentum, curvature factors, RNG stream
/// positions), the data-order cursor, the fault-plan draw cursor, and the
/// accumulated simulated clock (DESIGN.md §11).
///
/// File layout ("HyLoSNP1"):
///   u64 magic | u32 version | u32 section_count
///   per section: u64 name_len | name | u64 payload_len | u32 crc32 | payload
///
/// Writes are atomic: the container is assembled in memory, streamed to a
/// `<path>.tmp` sibling, flushed, and renamed over the final path — a crash
/// at any point leaves either the previous snapshot or a `.tmp` file that
/// readers refuse to open. Every section's CRC32 is verified on load, and
/// any truncation or corruption fails loudly naming the offending section.

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/common/rng.hpp"
#include "hylo/common/types.hpp"
#include "hylo/tensor/matrix.hpp"

namespace hylo::ckpt {

constexpr std::uint64_t kSnapshotMagic = 0x48794C6F534E5031ULL;  // "HyLoSNP1"
constexpr std::uint32_t kSnapshotVersion = 1;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `len` bytes,
/// continuing from `crc` so payloads can be checksummed incrementally.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc = 0);

/// Little binary serializer: fixed-width scalars, length-prefixed strings
/// and real arrays, and Matrix dims+payload. Both trainer state and every
/// Optimizer::save_state write through this so the on-disk layout has one
/// source of truth.
class ByteWriter {
 public:
  void raw(const void* data, std::size_t len);
  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void real(real_t v) { raw(&v, sizeof(v)); }
  void str(const std::string& s);
  /// u64 count + raw payload; the reader checks the count against the
  /// destination size so shape mismatches fail before any copy.
  void reals(const real_t* data, index_t count);
  void real_vec(const std::vector<real_t>& v);
  void index_vec(const std::vector<index_t>& v);
  void matrix(const Matrix& m);

  const std::vector<unsigned char>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<unsigned char> buf_;
};

/// Mirror of ByteWriter over a section payload. Every read bounds-checks
/// against the payload end and throws hylo::Error naming the section, so a
/// torn or mislabeled section never silently yields garbage state.
class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t len, std::string what);

  std::uint8_t u8();
  bool b() { return u8() != 0; }
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  real_t real();
  std::string str();
  /// Reads a `reals` block written for exactly `count` scalars into `dst`.
  void reals_into(real_t* dst, index_t count, const char* field);
  /// Bounds-checked raw copy (container parsing).
  void raw_into(void* dst, std::size_t len, const char* field);
  std::vector<real_t> real_vec();
  std::vector<index_t> index_vec();
  Matrix matrix();

  std::size_t remaining() const { return len_ - pos_; }
  /// Reject trailing bytes — a section must be consumed exactly.
  void expect_done() const;
  const std::string& what() const { return what_; }

 private:
  void take(void* dst, std::size_t len, const char* field);

  const unsigned char* data_;
  std::size_t len_, pos_ = 0;
  std::string what_;
};

/// Atomic file replacement: stream into `<path>.tmp`, then commit() flushes
/// and renames over the final path. Destruction without commit removes the
/// temporary, so a crash or exception mid-write never clobbers the previous
/// file. Network::save_weights and the snapshot writer both route through
/// this (the lint bans raw std::ofstream checkpoint writes elsewhere).
class AtomicFile {
 public:
  explicit AtomicFile(std::string path);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  std::ostream& stream() { return out_; }
  const std::string& temp_path() const { return tmp_; }

  /// Flush, close and rename over the final path. Throws on any IO failure
  /// (leaving the final path untouched).
  void commit();

 private:
  std::string path_, tmp_;
  std::ofstream out_;
  bool committed_ = false;
};

/// Assembles named sections in memory and writes the container atomically.
class SnapshotWriter {
 public:
  /// Get-or-create the section's writer. Sections keep creation order.
  ByteWriter& section(const std::string& name);

  /// Atomic write (tmp + rename) of the full container to `path`.
  void write(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, ByteWriter>> sections_;
};

/// Parses a snapshot file, verifying magic, version, and every section's
/// CRC up front. Errors name the snapshot path and the offending section.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::string& path);

  std::uint32_t version() const { return version_; }
  bool has(const std::string& name) const;
  /// Reader over a section's payload; throws if the section is missing.
  ByteReader open(const std::string& name) const;
  const std::vector<std::string>& names() const { return names_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint32_t version_ = 0;
  std::vector<std::string> names_;
  std::map<std::string, std::vector<unsigned char>> sections_;
};

/// Trainer-facing cadence config (TrainConfig::checkpoint). Explicit config
/// wins over the environment: HYLO_CKPT_DIR / HYLO_CKPT_EVERY /
/// HYLO_CKPT_KEEP apply only when the config's dir is empty. `every == 0`
/// with a non-empty dir pins checkpointing off regardless of environment.
struct CkptConfig {
  std::string dir;     ///< snapshot directory (empty = disabled)
  index_t every = 0;   ///< snapshot cadence in iterations (0 = disabled)
  index_t keep = 3;    ///< retain the newest K snapshots (0 = keep all)

  bool enabled() const { return !dir.empty() && every > 0; }
  static std::optional<CkptConfig> from_env();
};

/// Rng stream-position serialization: the four xoshiro256** words plus the
/// Box-Muller cache, so every random stream resumes mid-sequence exactly.
void write_rng_state(ByteWriter& w, const Rng::State& st);
Rng::State read_rng_state(ByteReader& r);

/// Snapshot paths under `dir` matching the trainer's naming scheme
/// (snapshot-NNNNNNNN.hysnp), sorted oldest first.
std::vector<std::string> list_snapshots(const std::string& dir);

/// Delete all but the newest `keep` snapshots under `dir` (0 keeps all).
/// A non-empty `pin` names one path that is never deleted even when it
/// falls out of the keep window — the trainer pins its last verified-good
/// snapshot so a rollback target always survives rotation (DESIGN.md §16).
/// The pin does not count against `keep`: the newest `keep` snapshots are
/// retained in addition to it.
void retain_last(const std::string& dir, index_t keep,
                 const std::string& pin = "");

}  // namespace hylo::ckpt
