#pragma once
/// \file layers.hpp
/// Concrete layer types. Construction helpers return unique_ptrs ready for
/// Network::add. All initialization is He-normal from an explicit Rng so that
/// optimizer comparisons start from identical weights.

#include <memory>

#include "hylo/nn/layer.hpp"

namespace hylo {

/// Fully-connected layer y = W_aug [x; 1]; flattens any input shape.
class Linear : public Layer {
 public:
  Linear(index_t out_features, Rng& rng, std::string name = "linear");

  Shape infer_shape(const std::vector<Shape>& in) override;
  void forward(const std::vector<const Tensor4*>& in, Tensor4& out,
               const PassContext& ctx) override;
  void backward(const std::vector<const Tensor4*>& in, const Tensor4& out,
                const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                const PassContext& ctx) override;
  ParamBlock* param_block() override { return &params_; }
  std::string kind() const override { return "Linear"; }

 private:
  index_t out_features_;
  Rng* rng_;
  ParamBlock params_;
  Matrix x_aug_;  // cached augmented input of the last forward
};

/// 2-D convolution implemented as im2col + GEMM. Weight layout:
/// W_aug ∈ R^{c_out x (c_in*k*k + 1)}.
class Conv2d : public Layer {
 public:
  Conv2d(index_t out_channels, index_t kernel, index_t stride, index_t pad,
         Rng& rng, std::string name = "conv");

  Shape infer_shape(const std::vector<Shape>& in) override;
  void forward(const std::vector<const Tensor4*>& in, Tensor4& out,
               const PassContext& ctx) override;
  void backward(const std::vector<const Tensor4*>& in, const Tensor4& out,
                const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                const PassContext& ctx) override;
  ParamBlock* param_block() override { return &params_; }
  std::string kind() const override { return "Conv2d"; }

 private:
  index_t out_channels_, kernel_, stride_, pad_;
  Rng* rng_;
  ParamBlock params_;
  ConvGeometry geom_;
  // Per-sample im2col cache from forward — scalar kernel tier only. The
  // SIMD tiers fuse im2col into the packed conv GEMM (gemm_packed.hpp) and
  // keep this empty; backward regenerates patches from the layer input.
  std::vector<Matrix> cols_;
};

/// Per-channel batch normalization (NCHW). Scale/shift are first-order
/// parameters (excluded from preconditioning, as in distributed KFAC
/// implementations); running statistics are used in eval mode.
class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(real_t momentum = 0.1, real_t eps = 1e-5);

  Shape infer_shape(const std::vector<Shape>& in) override;
  void forward(const std::vector<const Tensor4*>& in, Tensor4& out,
               const PassContext& ctx) override;
  void backward(const std::vector<const Tensor4*>& in, const Tensor4& out,
                const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                const PassContext& ctx) override;
  std::vector<PlainParam> plain_params() override {
    return {{&gamma_, &grad_gamma_}, {&beta_, &grad_beta_}};
  }
  std::vector<std::vector<real_t>*> mutable_state() override {
    return {&running_mean_, &running_var_};
  }
  std::string kind() const override { return "BatchNorm2d"; }

 private:
  real_t momentum_, eps_;
  index_t channels_ = 0;
  std::vector<real_t> gamma_, beta_, grad_gamma_, grad_beta_;
  std::vector<real_t> running_mean_, running_var_;
  // Saved statistics from the last training forward (for backward).
  std::vector<real_t> saved_mean_, saved_inv_std_;
  Tensor4 x_hat_;
};

/// Elementwise max(x, 0).
class ReLU : public Layer {
 public:
  Shape infer_shape(const std::vector<Shape>& in) override;
  void forward(const std::vector<const Tensor4*>& in, Tensor4& out,
               const PassContext& ctx) override;
  void backward(const std::vector<const Tensor4*>& in, const Tensor4& out,
                const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                const PassContext& ctx) override;
  std::string kind() const override { return "ReLU"; }
};

/// Max pooling with square window.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(index_t kernel, index_t stride);
  Shape infer_shape(const std::vector<Shape>& in) override;
  void forward(const std::vector<const Tensor4*>& in, Tensor4& out,
               const PassContext& ctx) override;
  void backward(const std::vector<const Tensor4*>& in, const Tensor4& out,
                const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                const PassContext& ctx) override;
  std::string kind() const override { return "MaxPool2d"; }

 private:
  index_t kernel_, stride_;
  std::vector<index_t> argmax_;  // flat input index per output element
};

/// Average pooling with square window (kernel == stride, non-overlapping).
class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(index_t kernel);
  Shape infer_shape(const std::vector<Shape>& in) override;
  void forward(const std::vector<const Tensor4*>& in, Tensor4& out,
               const PassContext& ctx) override;
  void backward(const std::vector<const Tensor4*>& in, const Tensor4& out,
                const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                const PassContext& ctx) override;
  std::string kind() const override { return "AvgPool2d"; }

 private:
  index_t kernel_;
};

/// Collapse H x W to 1 x 1 by averaging.
class GlobalAvgPool : public Layer {
 public:
  Shape infer_shape(const std::vector<Shape>& in) override;
  void forward(const std::vector<const Tensor4*>& in, Tensor4& out,
               const PassContext& ctx) override;
  void backward(const std::vector<const Tensor4*>& in, const Tensor4& out,
                const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                const PassContext& ctx) override;
  std::string kind() const override { return "GlobalAvgPool"; }
};

/// Nearest-neighbour 2x spatial upsampling (U-Net decoder).
class Upsample2x : public Layer {
 public:
  Shape infer_shape(const std::vector<Shape>& in) override;
  void forward(const std::vector<const Tensor4*>& in, Tensor4& out,
               const PassContext& ctx) override;
  void backward(const std::vector<const Tensor4*>& in, const Tensor4& out,
                const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                const PassContext& ctx) override;
  std::string kind() const override { return "Upsample2x"; }
};

/// Channel-wise concatenation of two inputs with equal spatial dims
/// (U-Net skip connections, DenseNet dense blocks).
class Concat : public Layer {
 public:
  Shape infer_shape(const std::vector<Shape>& in) override;
  void forward(const std::vector<const Tensor4*>& in, Tensor4& out,
               const PassContext& ctx) override;
  void backward(const std::vector<const Tensor4*>& in, const Tensor4& out,
                const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                const PassContext& ctx) override;
  std::string kind() const override { return "Concat"; }

 private:
  std::vector<index_t> split_;  // channel counts per input
};

/// Elementwise sum of two equal-shape inputs (residual connections).
class Add : public Layer {
 public:
  Shape infer_shape(const std::vector<Shape>& in) override;
  void forward(const std::vector<const Tensor4*>& in, Tensor4& out,
               const PassContext& ctx) override;
  void backward(const std::vector<const Tensor4*>& in, const Tensor4& out,
                const Tensor4& gout, const std::vector<Tensor4*>& grad_in,
                const PassContext& ctx) override;
  std::string kind() const override { return "Add"; }
};

}  // namespace hylo
