#pragma once
/// \file layer.hpp
/// Layer abstraction for the static-DAG NN framework. Layers are added to a
/// Network with explicit input edges; shapes are inferred at construction.
///
/// Second-order capture: layers carrying a weight matrix (Linear, Conv2d)
/// own a ParamBlock holding the *augmented* weight W ∈ R^{d_out x (d_in+1)}
/// (bias folded in as the last column) and, when capture is enabled, the
/// per-sample input matrix A (m x (d_in+1)) and output-gradient matrix
/// G (m x d_out) that every NGD-family optimizer consumes. For conv layers
/// A/G follow the paper's Sec. IV spatial-sum construction.

#include <memory>
#include <string>
#include <vector>

#include "hylo/common/rng.hpp"
#include "hylo/tensor/matrix.hpp"
#include "hylo/tensor/tensor4.hpp"

namespace hylo {

/// Static per-sample shape (batch dimension is dynamic).
struct Shape {
  index_t c = 0, h = 0, w = 0;
  index_t numel() const { return c * h * w; }
  bool operator==(const Shape&) const = default;
};

/// Per-pass flags threaded through forward/backward.
struct PassContext {
  bool training = true;
  /// When true, Linear/Conv layers record per-sample A and G this pass.
  bool capture = false;
};

/// How a preconditionable layer interprets its weight matrix.
enum class ParamKind { kLinear, kConv };

/// Weight + gradient + second-order capture state for one preconditionable
/// layer. The weight is bias-augmented: column d_in holds the bias.
struct ParamBlock {
  std::string name;
  ParamKind kind = ParamKind::kLinear;
  index_t d_in = 0;   ///< un-augmented input dimension (patch size for conv)
  index_t d_out = 0;  ///< output dimension (channels for conv)

  Matrix w;   ///< d_out x (d_in + 1)
  Matrix gw;  ///< gradient of the mean-batch loss, same shape

  /// Per-sample capture (valid after a captured forward/backward pass):
  /// A: m x (d_in + 1)  — augmented inputs (spatial-summed for conv; the
  ///    augmentation column holds the number of spatial positions S so that
  ///    the bias column of the per-sample gradient ĝ_i â_iᵀ is exact).
  /// G: m x d_out — per-sample output gradients of the *sum* loss (i.e. the
  ///    mean-loss gradients scaled by m), spatial-summed for conv.
  Matrix a_samples;
  Matrix g_samples;

  index_t weight_count() const { return w.size(); }
};

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Infer and fix the output shape from the input shapes; called once when
  /// the layer is added to a Network. Must throw hylo::Error on mismatch.
  virtual Shape infer_shape(const std::vector<Shape>& in) = 0;

  /// Forward pass: `in` holds one tensor per declared input edge.
  virtual void forward(const std::vector<const Tensor4*>& in, Tensor4& out,
                       const PassContext& ctx) = 0;

  /// Backward pass: `gout` is dLoss/d(out); accumulate dLoss/d(in_k) into
  /// grad_in[k] (already zero-initialized by the Network) and parameter
  /// gradients into this layer's state.
  virtual void backward(const std::vector<const Tensor4*>& in,
                        const Tensor4& out, const Tensor4& gout,
                        const std::vector<Tensor4*>& grad_in,
                        const PassContext& ctx) = 0;

  /// Non-null for preconditionable layers (Linear, Conv2d).
  virtual ParamBlock* param_block() { return nullptr; }

  /// First-order-only parameters (BatchNorm scale/shift). Pairs of
  /// (parameter, gradient) vectors; empty by default.
  struct PlainParam {
    std::vector<real_t>* value = nullptr;
    std::vector<real_t>* grad = nullptr;
  };
  virtual std::vector<PlainParam> plain_params() { return {}; }

  /// Non-parameter persistent state that checkpoints must carry
  /// (BatchNorm running statistics). Empty by default.
  virtual std::vector<std::vector<real_t>*> mutable_state() { return {}; }

  /// Human-readable layer type for diagnostics and the Fig. 2 bench.
  virtual std::string kind() const = 0;
};

}  // namespace hylo
