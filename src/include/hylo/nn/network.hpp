#pragma once
/// \file network.hpp
/// Static computation graph. Layers are appended with explicit input edges
/// (which must reference earlier nodes), so insertion order is already a
/// topological order; forward walks it, backward walks it in reverse.

#include <memory>
#include <string>
#include <vector>

#include "hylo/nn/layer.hpp"

namespace hylo {

namespace ckpt {
class ByteReader;
class ByteWriter;
}  // namespace ckpt

class Network {
 public:
  explicit Network(std::string name = "net") : name_(std::move(name)) {}

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Declare the (single) input node; must be called first. Returns node 0.
  int add_input(Shape shape);

  /// Append a layer consuming the given earlier nodes; returns its node id.
  int add(std::unique_ptr<Layer> layer, std::vector<int> inputs);

  /// Convenience for single-input chains.
  int add(std::unique_ptr<Layer> layer, int input) {
    return add(std::move(layer), std::vector<int>{input});
  }

  /// Run the graph on a batch; returns the final node's activation.
  const Tensor4& forward(const Tensor4& x, const PassContext& ctx);

  /// Backpropagate dLoss/d(output); accumulates parameter gradients.
  /// Must follow a forward() with the same batch.
  void backward(const Tensor4& grad_out, const PassContext& ctx);

  /// Zero all parameter gradients (weights and plain params).
  void zero_grad();

  /// Final activation of the last forward pass.
  const Tensor4& output() const;

  /// Final activation flattened to (batch, features).
  Matrix output_matrix() const { return output().as_matrix(); }

  Shape output_shape() const;
  Shape input_shape() const;

  /// All preconditionable weight blocks, in graph order.
  std::vector<ParamBlock*> param_blocks();
  /// All first-order-only parameters (BatchNorm scale/shift).
  std::vector<Layer::PlainParam> plain_params();

  /// Total scalar parameter count (weights + plain params).
  index_t num_params();

  const std::string& name() const { return name_; }
  index_t num_nodes() const { return static_cast<index_t>(nodes_.size()); }
  const Layer* layer(index_t node) const { return nodes_[static_cast<std::size_t>(node)].layer.get(); }

  /// Save all weights, plain parameters and persistent layer state
  /// (BatchNorm running stats) to a binary checkpoint. The write is atomic
  /// (tmp + rename via ckpt::AtomicFile): a crash mid-save leaves the
  /// previous checkpoint intact, never a torn file.
  void save_weights(const std::string& path);

  /// Load a checkpoint produced by save_weights() into a structurally
  /// identical network. Throws hylo::Error on any shape mismatch, and
  /// refuses `.tmp` paths (a torn in-progress write left by a crash).
  void load_weights(const std::string& path);

  /// Write / restore the same payload into a run-snapshot section
  /// (hylo::ckpt): weights, plain params, and persistent layer state in
  /// graph order. Restoring into a structurally different network throws.
  void serialize_state(ckpt::ByteWriter& w);
  void deserialize_state(ckpt::ByteReader& r);

 private:
  struct Node {
    std::unique_ptr<Layer> layer;  // null for the input node
    std::vector<int> inputs;
    Shape shape;
    Tensor4 out;
    Tensor4 grad;
  };

  std::string name_;
  std::vector<Node> nodes_;
  bool ran_forward_ = false;
};

}  // namespace hylo
