#pragma once
/// \file loss.hpp
/// Loss heads. Each returns the scalar mean-batch loss, a task metric, and
/// the gradient of the *mean* loss with respect to the network output (the
/// convention every layer's backward expects).

#include <vector>

#include "hylo/tensor/tensor4.hpp"

namespace hylo {

struct LossResult {
  real_t loss = 0.0;
  /// Task metric in [0,1]: classification accuracy or Dice coefficient.
  real_t metric = 0.0;
  /// dLoss/d(network output), mean-loss convention.
  Tensor4 grad;
};

/// Multi-class softmax cross-entropy over logits shaped (N, classes, 1, 1).
/// Metric: top-1 accuracy.
class SoftmaxCrossEntropy {
 public:
  LossResult compute(const Tensor4& logits,
                     const std::vector<int>& labels) const;

  /// Loss + metric only (no gradient allocation) for evaluation loops.
  std::pair<real_t, real_t> evaluate(const Tensor4& logits,
                                     const std::vector<int>& labels) const;
};

/// Binary segmentation head on logits (N, 1, H, W): BCE + soft-Dice loss.
/// Metric: hard Dice similarity coefficient at threshold 0.5 (the U-Net /
/// LGG target measure in the paper).
class DiceBceLoss {
 public:
  explicit DiceBceLoss(real_t bce_weight = 0.5, real_t dice_weight = 0.5,
                       real_t smooth = 1.0)
      : bce_weight_(bce_weight), dice_weight_(dice_weight), smooth_(smooth) {}

  LossResult compute(const Tensor4& logits, const Tensor4& target) const;
  std::pair<real_t, real_t> evaluate(const Tensor4& logits,
                                     const Tensor4& target) const;

 private:
  real_t bce_weight_, dice_weight_, smooth_;
};

}  // namespace hylo
