#pragma once
/// \file recovery.hpp
/// Checkpoint-rollback self-healing policy (DESIGN.md §16).
///
/// The guards in dist/ (transport checksum) and optim/ (numeric commit
/// gates) stop most silent corruption at the door, but an escaped bit-flip
/// can still drive training non-finite or divergent. The RecoveryPolicy is
/// the trainer's last line of defense: when a critical trigger fires
/// (non-finite iteration loss, or a critical health alert — non_finite /
/// loss_divergence / cond_blowup), the trainer rolls back to its last
/// verified-good snapshot and re-runs the window under an escalating
/// action ladder:
///
///   rung 1  plain re-run — the fault plan's draw cursor is *not* rolled
///           back, so the re-run sees fresh fault draws and a transient
///           corruption does not repeat (and the run stays a pure function
///           of the seed: no livelock on the same event).
///   rung 2  re-run + serve first-order directions for `first_order_iters`
///           iterations (CurvatureOptimizer::set_first_order) — steps past
///           a poisoned curvature window without giving up preconditioning
///           for the rest of the run.
///   rung 3+ re-run + first-order window + multiply lr by `lr_backoff`
///           (persistent) — tames genuine optimization divergence that no
///           amount of re-running fixes.
///
/// The rung escalates only on *consecutive* rollbacks to the same
/// snapshot; recovering past the trigger resets the ladder (the next
/// incident starts again at rung 1). A bounded total budget
/// (`max_rollbacks`) caps the whole run; exhausting it fails loudly with a
/// recovery report — never a silent wrong result.
///
/// Off by default: with recovery disabled the trainer takes no rollback
/// branches and runs byte-identically to a build without this subsystem.

#include <optional>
#include <string>

#include "hylo/common/types.hpp"

namespace hylo {

/// Trainer-facing recovery config (TrainConfig::recovery). Explicit config
/// pins the policy (enabled == false pins it off); the HYLO_RECOVER
/// environment spec applies only when the config leaves it unset.
struct RecoveryConfig {
  bool enabled = false;
  /// Total rollbacks permitted for the run; exceeding it fails loudly.
  index_t max_rollbacks = 3;
  /// Rung-2 window: iterations served first-order after a repeat rollback.
  index_t first_order_iters = 20;
  /// Rung-3 action: lr *= lr_backoff (persistent) on a third consecutive
  /// rollback to the same snapshot.
  double lr_backoff = 0.5;

  /// Parse a spec string: "off" (disabled), "on" (defaults), or
  /// "BUDGET[:FO_ITERS[:LR_BACKOFF]]", e.g. "5:40:0.25". Throws
  /// hylo::Error on malformed input.
  static RecoveryConfig parse(const std::string& spec);

  /// HYLO_RECOVER environment spec; nullopt when unset or empty.
  static std::optional<RecoveryConfig> from_env();
};

/// What the trainer must do about one critical trigger.
struct RecoveryAction {
  index_t rung = 0;          ///< consecutive rollbacks to the same snapshot
  bool first_order = false;  ///< rung >= 2: serve first-order for a window
  bool reduce_lr = false;    ///< rung >= 3: back off the learning rate
  bool exhausted = false;    ///< budget spent — caller must fail loudly
};

/// The rollback decision engine: tracks the retry budget and the
/// consecutive-rollback rung per target snapshot. Pure bookkeeping — the
/// trainer owns the actual restore, so the policy stays unit-testable.
class RecoveryPolicy {
 public:
  RecoveryPolicy() = default;
  explicit RecoveryPolicy(RecoveryConfig cfg) : cfg_(cfg) {}

  bool enabled() const { return cfg_.enabled; }
  const RecoveryConfig& config() const { return cfg_; }

  /// Decide the response to a critical trigger that would roll back to
  /// `snapshot_path`. Consumes one unit of budget unless exhausted.
  RecoveryAction on_trigger(const std::string& snapshot_path);

  /// Reset the consecutive-rollback rung: training progressed past the
  /// last trigger (a fresh verified-good snapshot landed), so the next
  /// incident starts the ladder from rung 1 again.
  void note_progress() { rung_ = 0; }

  index_t rollbacks() const { return rollbacks_; }
  index_t budget_left() const {
    return rollbacks_ >= cfg_.max_rollbacks ? 0
                                            : cfg_.max_rollbacks - rollbacks_;
  }

 private:
  RecoveryConfig cfg_;
  index_t rollbacks_ = 0;
  index_t rung_ = 0;
  std::string last_target_;
};

}  // namespace hylo
