#pragma once
/// \file trainer.hpp
/// Training driver for the lockstep-simulated distributed setting. One
/// physical Network stands in for P bit-identical replicas (data-parallel
/// replicas stay identical under identical updates); each iteration runs P
/// local batches through it, averages gradients (allreduce), refreshes the
/// optimizer's curvature on schedule, and applies the update.
///
/// Simulated wall time =
///     measured parallel compute (fwd/bwd, factorization, inversion) / P
///   + measured replicated compute (precondition + update)
///   + modeled communication time (α-β cost model).
/// This is the time axis of the Fig. 3/5/7/8/9 reproductions.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hylo/ckpt/snapshot.hpp"
#include "hylo/core/recovery.hpp"
#include "hylo/data/datasets.hpp"
#include "hylo/nn/loss.hpp"
#include "hylo/obs/health.hpp"
#include "hylo/obs/run_log.hpp"
#include "hylo/optim/optimizer.hpp"

namespace hylo {

class CurvatureOptimizer;

/// Step decay: lr *= gamma at the start of each listed epoch.
struct LrSchedule {
  std::vector<index_t> milestones;
  real_t gamma = 0.1;

  bool decays_at(index_t epoch) const {
    for (const auto m : milestones)
      if (m == epoch) return true;
    return false;
  }
};

struct TrainConfig {
  index_t epochs = 10;
  index_t batch_size = 32;  ///< per worker (paper's local batch m)
  index_t world = 1;        ///< number of simulated workers P
  InterconnectModel interconnect = loopback();
  /// Modeled bytes per communicated scalar: 4 = FP32 (KAISA's wire format),
  /// 2 = FP16, 2.625 = the 21-bit custom float of Ueno et al. [7].
  double wire_scalar_bytes = 4.0;
  /// Comm execution mode (DESIGN.md §15). Set here to pin it — this takes
  /// precedence over the HYLO_COMM environment variable, which applies only
  /// when this is unset. With neither, the lockstep simulator runs and the
  /// trainer is bitwise-identical to builds without the async path.
  std::optional<CommMode> comm_mode;
  /// Modeled device throughput driving the async timeline's per-rank
  /// compute advance (never measured wall time, so replays are bitwise).
  /// Ignored in lockstep mode.
  ComputeModel compute = v100_fp32();
  LrSchedule lr_schedule;
  std::uint64_t data_seed = 1;
  /// Cap on iterations per epoch (-1 = full epoch); used by profiling
  /// benches that need a fixed, small iteration count.
  index_t max_iters_per_epoch = -1;
  /// Early-stop once the test metric reaches this value (<0 disables).
  real_t target_metric = -1.0;
  bool verbose = false;
  /// Structured telemetry (run.jsonl + trace.json). Set `telemetry.dir` to
  /// enable; `verbose` additionally echoes the epoch lines to stdout
  /// regardless of telemetry. See obs/run_log.hpp for the artifact layout.
  obs::RunLogConfig telemetry;
  /// Deterministic fault injection on the simulated fabric (see
  /// dist/fault_plan.hpp). Set here to pin the schedule programmatically —
  /// this takes precedence over the HYLO_FAULTS environment spec, which
  /// applies only when this is unset. With neither, the comm path takes no
  /// fault branches and runs bitwise-identically to a fault-free build.
  std::optional<FaultConfig> faults;
  /// Crash-safe run snapshots (hylo::ckpt, DESIGN.md §11). Set
  /// `checkpoint.dir` + `checkpoint.every` to write a RunSnapshot every N
  /// iterations; Trainer::resume(path) continues one bitwise-identically.
  /// Precedence mirrors `faults`: a non-empty dir here pins the cadence
  /// (every == 0 pins checkpointing off); the HYLO_CKPT_DIR /
  /// HYLO_CKPT_EVERY / HYLO_CKPT_KEEP environment applies only when the
  /// dir is left empty.
  ckpt::CkptConfig checkpoint;
  /// Training-health probes + alert engine (obs/health.hpp, DESIGN.md §12).
  /// Precedence mirrors `faults`: set here to pin probes programmatically
  /// (enabled == false pins them off); the HYLO_HEALTH environment cadence
  /// applies only when this is unset. With neither, the hot path takes no
  /// probe branches and training is bitwise identical to a probe-free build.
  std::optional<obs::HealthConfig> health;
  /// Checkpoint-rollback self-healing (core/recovery.hpp, DESIGN.md §16).
  /// Precedence mirrors `faults`: set here to pin the policy (enabled ==
  /// false pins it off); the HYLO_RECOVER environment spec applies only
  /// when this is unset. Requires an active checkpoint cadence — rollback
  /// needs snapshots to roll back to. With recovery off (the default) the
  /// trainer takes no rollback branches and training is byte-identical to
  /// a build without the subsystem.
  std::optional<RecoveryConfig> recovery;
};

struct EpochStats {
  index_t epoch = 0;
  real_t train_loss = 0.0, train_metric = 0.0;
  real_t test_loss = 0.0, test_metric = 0.0;
  double wall_seconds = 0.0;  ///< cumulative simulated time after this epoch
  std::string note;           ///< e.g. HyLo mode tag
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double total_seconds = 0.0;        ///< simulated
  double compute_seconds = 0.0;      ///< parallel-compute contribution
  double replicated_seconds = 0.0;   ///< precondition/update contribution
  double comm_seconds = 0.0;         ///< modeled wire contribution
  index_t iterations = 0;
  /// First simulated time at which test_metric >= target (if reached).
  std::optional<double> time_to_target;
  std::optional<index_t> epochs_to_target;
  /// Alert-engine rollup (0/0 when health probes are disabled).
  index_t alerts_fired = 0;
  index_t critical_alerts = 0;
  /// Self-healing rollbacks taken (0 unless recovery is enabled and a
  /// critical trigger fired).
  index_t rollbacks = 0;

  real_t best_metric() const;
};

class Trainer {
 public:
  /// `net` must match the dataset (classification logits or 1-channel
  /// segmentation). The optimizer is driven through the full distributed
  /// lifecycle; pass world=1 in `cfg` for the single-device setting.
  Trainer(Network& net, Optimizer& opt, const DataSplit& data,
          TrainConfig cfg);

  TrainResult run();

  /// Restore a run snapshot written by this configuration and continue
  /// training to cfg.epochs. The network, optimizer, and config must
  /// structurally match the snapshotting run; the continuation is then
  /// bitwise-identical to the uninterrupted run in every modeled quantity
  /// (weights, losses, metrics, modeled comm seconds, fault schedule).
  /// Measured comp/* timings restart from their as-of-snapshot totals.
  TrainResult resume(const std::string& path);

  /// Live world size: starts at cfg.world and shrinks as rank_lost faults
  /// are committed at iteration boundaries.
  index_t world() const { return world_; }

  /// The resolved snapshot cadence (explicit config or HYLO_CKPT_* env).
  const ckpt::CkptConfig& checkpoint_config() const { return ckpt_; }

  /// Evaluate on the test split (no gradient, eval-mode BN).
  std::pair<real_t, real_t> evaluate();

  /// Profiler with comp/* (measured) and comm/* (modeled) sections.
  const Profiler& profiler() const { return comm_.profiler(); }
  CommSim& comm() { return comm_; }

  /// The run's structured telemetry (disabled unless cfg.telemetry.dir is
  /// set). Finalized — trace.json written, metrics snapshot appended — when
  /// run() returns.
  obs::RunLogger& run_log() { return runlog_; }
  const obs::RunLogger& run_log() const { return runlog_; }

  /// Health-probe monitor and alert engine (both inert unless health is
  /// enabled via TrainConfig::health or HYLO_HEALTH).
  const obs::HealthMonitor& health() const { return health_; }
  const obs::AlertEngine& alerts() const { return alerts_; }

  /// The rollback policy (inert unless enabled via TrainConfig::recovery
  /// or HYLO_RECOVER) and the snapshot it would currently roll back to.
  const RecoveryPolicy& recovery() const { return recovery_; }
  const std::string& last_good_snapshot() const { return last_good_path_; }

  /// Optional per-epoch observer (benches log gradient norms etc.).
  using EpochHook = std::function<void(const EpochStats&, Network&)>;
  void set_epoch_hook(EpochHook hook) { hook_ = std::move(hook); }

 private:
  /// The training loop shared by run() and resume(): epochs from the start
  /// position (0, or the restored snapshot's) to cfg.epochs.
  TrainResult run_from();
  void run_epoch(index_t epoch, TrainResult& result);
  /// Write a RunSnapshot after the iteration that left the run at
  /// (epoch, next_iter); `loss_acc`/`metric_acc`/`rank_batches` are the
  /// epoch-in-progress accumulators a resume needs to finish the epoch.
  /// Returns the snapshot's path (for verified-good pinning).
  std::string write_snapshot(index_t epoch, index_t next_iter, real_t loss_acc,
                             real_t metric_acc, index_t rank_batches);
  /// Parse + verify a snapshot and load every section into live state.
  void restore_snapshot(const std::string& path);
  /// True when no live weight or bias holds a non-finite value — the
  /// trainer-side verification gate for pinning a snapshot as the
  /// verified-good rollback target.
  bool weights_finite() const;
  /// Decide and record the response to a critical trigger: consume one
  /// unit of rollback budget and throw RollbackSignal (caught by
  /// run_from), or fail loudly once the budget is exhausted.
  [[noreturn]] void initiate_rollback(index_t epoch, index_t iter,
                                      const char* why);
  /// Partial restore for a rollback: network, optimizer, and progress
  /// cursor only. Monotonic quantities (profiler clock, counters, fault
  /// draw cursor, async timeline) deliberately keep running — re-run work
  /// costs real simulated time and the fault schedule never rewinds (so a
  /// transient corruption does not repeat and the run stays a pure
  /// function of the seed).
  void rollback_restore(const std::string& path);
  /// Commit pending rank_lost deaths at an iteration boundary: shrink the
  /// world, re-partition data shards and layer ownership, log the event.
  void apply_world_shrink(index_t epoch, index_t next_iter);
  void log_epoch(const EpochStats& stats, index_t epoch);
  /// Per-collective {calls, bytes, modeled seconds} accumulated since the
  /// previous call (per-epoch deltas for the run log).
  obs::Json collective_deltas();
  /// Per-epoch deltas of the comm/faults/* counters plus the summed
  /// optim/*/stale_refreshes delta (via `stale`). Only called while fault
  /// injection is active, so fault-free run logs carry no new fields.
  obs::Json fault_deltas(std::int64_t* stale);

  Network* net_;
  Optimizer* opt_;
  const DataSplit* data_;
  TrainConfig cfg_;
  CommSim comm_;
  obs::RunLogger runlog_;
  obs::HealthMonitor health_;
  obs::AlertEngine alerts_;
  bool uses_capture_ = false;  ///< optimizer has curvature refreshes
  CurvatureOptimizer* curv_ = nullptr;  ///< non-null iff uses_capture_
  std::int64_t last_alert_faults_ = 0;  ///< fault-budget epoch delta base
  std::vector<DataLoader> loaders_;
  SoftmaxCrossEntropy ce_;
  DiceBceLoss dice_;
  bool segmentation_;
  index_t global_iter_ = 0;
  index_t world_;            ///< live world (== cfg_.world until rank loss)
  ckpt::CkptConfig ckpt_;    ///< resolved snapshot cadence (config or env)
  RecoveryPolicy recovery_;  ///< resolved rollback policy (config or env)
  std::string last_good_path_;     ///< pinned verified-good rollback target
  index_t last_crit_seen_ = 0;     ///< critical-alert trigger watermark
  index_t first_order_left_ = 0;   ///< rung-2 window countdown
  bool resumed_ = false;
  index_t start_epoch_ = 0, start_iter_ = 0;  ///< restored resume position
  real_t resume_loss_acc_ = 0.0, resume_metric_acc_ = 0.0;
  index_t resume_rank_batches_ = 0;
  double wall_seconds_ = 0.0;
  double comp_par_seconds_ = 0.0, comp_rep_seconds_ = 0.0, comm_seconds_ = 0.0;
  std::map<std::string, double> last_comm_seconds_;
  std::map<std::string, std::int64_t> last_comm_counters_;
  std::map<std::string, std::int64_t> last_fault_counters_;
  EpochHook hook_;
};

/// Construct an optimizer by paper name: "SGD", "ADAM", "KFAC", "EKFAC",
/// "KBFGS-L", "SNGD", "HyLo". KAISA is the distributed execution of "KFAC"
/// (pass world > 1 in TrainConfig).
std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          const OptimConfig& cfg);

}  // namespace hylo
