#pragma once
/// \file trainer.hpp
/// Training driver for the lockstep-simulated distributed setting. One
/// physical Network stands in for P bit-identical replicas (data-parallel
/// replicas stay identical under identical updates); each iteration runs P
/// local batches through it, averages gradients (allreduce), refreshes the
/// optimizer's curvature on schedule, and applies the update.
///
/// Simulated wall time =
///     measured parallel compute (fwd/bwd, factorization, inversion) / P
///   + measured replicated compute (precondition + update)
///   + modeled communication time (α-β cost model).
/// This is the time axis of the Fig. 3/5/7/8/9 reproductions.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hylo/data/datasets.hpp"
#include "hylo/nn/loss.hpp"
#include "hylo/obs/run_log.hpp"
#include "hylo/optim/optimizer.hpp"

namespace hylo {

/// Step decay: lr *= gamma at the start of each listed epoch.
struct LrSchedule {
  std::vector<index_t> milestones;
  real_t gamma = 0.1;

  bool decays_at(index_t epoch) const {
    for (const auto m : milestones)
      if (m == epoch) return true;
    return false;
  }
};

struct TrainConfig {
  index_t epochs = 10;
  index_t batch_size = 32;  ///< per worker (paper's local batch m)
  index_t world = 1;        ///< number of simulated workers P
  InterconnectModel interconnect = loopback();
  /// Modeled bytes per communicated scalar: 4 = FP32 (KAISA's wire format),
  /// 2 = FP16, 2.625 = the 21-bit custom float of Ueno et al. [7].
  double wire_scalar_bytes = 4.0;
  LrSchedule lr_schedule;
  std::uint64_t data_seed = 1;
  /// Cap on iterations per epoch (-1 = full epoch); used by profiling
  /// benches that need a fixed, small iteration count.
  index_t max_iters_per_epoch = -1;
  /// Early-stop once the test metric reaches this value (<0 disables).
  real_t target_metric = -1.0;
  bool verbose = false;
  /// Structured telemetry (run.jsonl + trace.json). Set `telemetry.dir` to
  /// enable; `verbose` additionally echoes the epoch lines to stdout
  /// regardless of telemetry. See obs/run_log.hpp for the artifact layout.
  obs::RunLogConfig telemetry;
  /// Deterministic fault injection on the simulated fabric (see
  /// dist/fault_plan.hpp). Set here to pin the schedule programmatically —
  /// this takes precedence over the HYLO_FAULTS environment spec, which
  /// applies only when this is unset. With neither, the comm path takes no
  /// fault branches and runs bitwise-identically to a fault-free build.
  std::optional<FaultConfig> faults;
};

struct EpochStats {
  index_t epoch = 0;
  real_t train_loss = 0.0, train_metric = 0.0;
  real_t test_loss = 0.0, test_metric = 0.0;
  double wall_seconds = 0.0;  ///< cumulative simulated time after this epoch
  std::string note;           ///< e.g. HyLo mode tag
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double total_seconds = 0.0;        ///< simulated
  double compute_seconds = 0.0;      ///< parallel-compute contribution
  double replicated_seconds = 0.0;   ///< precondition/update contribution
  double comm_seconds = 0.0;         ///< modeled wire contribution
  index_t iterations = 0;
  /// First simulated time at which test_metric >= target (if reached).
  std::optional<double> time_to_target;
  std::optional<index_t> epochs_to_target;

  real_t best_metric() const;
};

class Trainer {
 public:
  /// `net` must match the dataset (classification logits or 1-channel
  /// segmentation). The optimizer is driven through the full distributed
  /// lifecycle; pass world=1 in `cfg` for the single-device setting.
  Trainer(Network& net, Optimizer& opt, const DataSplit& data,
          TrainConfig cfg);

  TrainResult run();

  /// Evaluate on the test split (no gradient, eval-mode BN).
  std::pair<real_t, real_t> evaluate();

  /// Profiler with comp/* (measured) and comm/* (modeled) sections.
  const Profiler& profiler() const { return comm_.profiler(); }
  CommSim& comm() { return comm_; }

  /// The run's structured telemetry (disabled unless cfg.telemetry.dir is
  /// set). Finalized — trace.json written, metrics snapshot appended — when
  /// run() returns.
  obs::RunLogger& run_log() { return runlog_; }
  const obs::RunLogger& run_log() const { return runlog_; }

  /// Optional per-epoch observer (benches log gradient norms etc.).
  using EpochHook = std::function<void(const EpochStats&, Network&)>;
  void set_epoch_hook(EpochHook hook) { hook_ = std::move(hook); }

 private:
  void run_epoch(index_t epoch, TrainResult& result);
  void log_epoch(const EpochStats& stats, index_t epoch);
  /// Per-collective {calls, bytes, modeled seconds} accumulated since the
  /// previous call (per-epoch deltas for the run log).
  obs::Json collective_deltas();
  /// Per-epoch deltas of the comm/faults/* counters plus the summed
  /// optim/*/stale_refreshes delta (via `stale`). Only called while fault
  /// injection is active, so fault-free run logs carry no new fields.
  obs::Json fault_deltas(std::int64_t* stale);

  Network* net_;
  Optimizer* opt_;
  const DataSplit* data_;
  TrainConfig cfg_;
  CommSim comm_;
  obs::RunLogger runlog_;
  std::vector<DataLoader> loaders_;
  SoftmaxCrossEntropy ce_;
  DiceBceLoss dice_;
  bool segmentation_;
  index_t global_iter_ = 0;
  double wall_seconds_ = 0.0;
  double comp_par_seconds_ = 0.0, comp_rep_seconds_ = 0.0, comm_seconds_ = 0.0;
  std::map<std::string, double> last_comm_seconds_;
  std::map<std::string, std::int64_t> last_comm_counters_;
  std::map<std::string, std::int64_t> last_fault_counters_;
  EpochHook hook_;
};

/// Construct an optimizer by paper name: "SGD", "ADAM", "KFAC", "EKFAC",
/// "KBFGS-L", "SNGD", "HyLo". KAISA is the distributed execution of "KFAC"
/// (pass world > 1 in TrainConfig).
std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          const OptimConfig& cfg);

}  // namespace hylo
