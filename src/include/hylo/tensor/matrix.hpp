#pragma once
/// \file matrix.hpp
/// Dense row-major matrix of real_t. This is the workhorse container for the
/// whole library: per-sample input/gradient matrices (A, G), Kronecker
/// factors, kernel matrices, weights. Vectors are (n x 1) or (1 x n)
/// matrices; a few helpers treat a Matrix with one column as a vector.

#include <algorithm>
#include <initializer_list>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/common/types.hpp"

namespace hylo {

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), 0.0) {
    HYLO_CHECK(rows >= 0 && cols >= 0, "negative dims");
  }

  /// rows x cols filled with `fill`.
  Matrix(index_t rows, index_t cols, real_t fill)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), fill) {}

  /// Build from nested initializer list (row major), e.g.
  /// Matrix m{{1,2},{3,4}};
  Matrix(std::initializer_list<std::initializer_list<real_t>> rows);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  real_t& operator()(index_t r, index_t c) {
    HYLO_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                "index (" << r << "," << c << ") out of " << rows_ << "x"
                          << cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  real_t operator()(index_t r, index_t c) const {
    HYLO_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                "index (" << r << "," << c << ") out of " << rows_ << "x"
                          << cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  /// Flat element access (row-major), mainly for vectors.
  real_t& operator[](index_t i) {
    HYLO_DCHECK(i >= 0 && i < size(), "flat index out of range");
    return data_[static_cast<std::size_t>(i)];
  }
  real_t operator[](index_t i) const {
    HYLO_DCHECK(i >= 0 && i < size(), "flat index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  real_t* data() { return data_.data(); }
  const real_t* data() const { return data_.data(); }

  real_t* row_ptr(index_t r) { return data() + r * cols_; }
  const real_t* row_ptr(index_t r) const { return data() + r * cols_; }

  /// Set every element to v.
  void fill(real_t v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0); }

  /// Reshape in place; total size must be preserved.
  void reshape(index_t rows, index_t cols) {
    HYLO_CHECK(rows * cols == size(),
               "reshape " << rows_ << "x" << cols_ << " -> " << rows << "x"
                          << cols);
    rows_ = rows;
    cols_ = cols;
  }

  /// Resize, discarding contents (zero-filled).
  void resize(index_t rows, index_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows * cols), 0.0);
  }

  // ---- Small constructive helpers -------------------------------------

  static Matrix identity(index_t n);

  /// Diagonal matrix from vector d (d must be n x 1 or 1 x n).
  static Matrix diag(const Matrix& d);

  /// Copy of the r-th row as a 1 x cols matrix.
  Matrix row(index_t r) const;
  /// Copy of the c-th column as a rows x 1 matrix.
  Matrix col(index_t c) const;

  /// Copy rows [r0, r1) into a new matrix.
  Matrix rows_range(index_t r0, index_t r1) const;

  /// Copy of rows selected by idx (gather), preserving order.
  Matrix select_rows(const std::vector<index_t>& idx) const;

  /// Transposed copy.
  Matrix transposed() const;

  /// Append a column of ones (bias augmentation for Fisher blocks).
  Matrix with_ones_column() const;

  // ---- Elementwise arithmetic (allocating) ------------------------------

  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(real_t s) const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(real_t s);

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<real_t> data_;
};

}  // namespace hylo
