#pragma once
/// \file tensor4.hpp
/// 4-D NCHW tensor for the NN framework, plus im2col/col2im. Convolutions are
/// implemented as im2col + GEMM; the same im2col rows feed the SNGD-for-CNNs
/// extension (Sec. IV of the paper), which spatial-sums them into the
/// per-sample input matrix A.

#include <algorithm>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/tensor/matrix.hpp"

namespace hylo {

class Tensor4 {
 public:
  Tensor4() = default;

  Tensor4(index_t n, index_t c, index_t h, index_t w)
      : n_(n), c_(c), h_(h), w_(w),
        data_(static_cast<std::size_t>(n * c * h * w), 0.0) {
    HYLO_CHECK(n >= 0 && c >= 0 && h >= 0 && w >= 0, "negative dims");
  }

  index_t n() const { return n_; }
  index_t c() const { return c_; }
  index_t h() const { return h_; }
  index_t w() const { return w_; }
  index_t size() const { return n_ * c_ * h_ * w_; }
  bool empty() const { return size() == 0; }

  /// Elements per sample.
  index_t sample_size() const { return c_ * h_ * w_; }

  real_t& at(index_t n, index_t c, index_t h, index_t w) {
    HYLO_DCHECK(n >= 0 && n < n_ && c >= 0 && c < c_ && h >= 0 && h < h_ &&
                    w >= 0 && w < w_,
                "tensor index out of range");
    return data_[static_cast<std::size_t>(((n * c_ + c) * h_ + h) * w_ + w)];
  }
  real_t at(index_t n, index_t c, index_t h, index_t w) const {
    HYLO_DCHECK(n >= 0 && n < n_ && c >= 0 && c < c_ && h >= 0 && h < h_ &&
                    w >= 0 && w < w_,
                "tensor index out of range");
    return data_[static_cast<std::size_t>(((n * c_ + c) * h_ + h) * w_ + w)];
  }

  real_t& operator[](index_t i) { return data_[static_cast<std::size_t>(i)]; }
  real_t operator[](index_t i) const { return data_[static_cast<std::size_t>(i)]; }

  real_t* data() { return data_.data(); }
  const real_t* data() const { return data_.data(); }

  real_t* sample_ptr(index_t n) { return data() + n * sample_size(); }
  const real_t* sample_ptr(index_t n) const { return data() + n * sample_size(); }

  void zero() { std::fill(data_.begin(), data_.end(), 0.0); }

  void resize(index_t n, index_t c, index_t h, index_t w) {
    n_ = n;
    c_ = c;
    h_ = h;
    w_ = w;
    data_.assign(static_cast<std::size_t>(n * c * h * w), 0.0);
  }

  bool same_shape(const Tensor4& o) const {
    return n_ == o.n_ && c_ == o.c_ && h_ == o.h_ && w_ == o.w_;
  }

  /// Flatten to a (n, c*h*w) matrix (copy).
  Matrix as_matrix() const;

  /// Inverse of as_matrix.
  static Tensor4 from_matrix(const Matrix& m, index_t c, index_t h, index_t w);

 private:
  index_t n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  std::vector<real_t> data_;
};

/// Spatial geometry of a convolution / pooling window.
struct ConvGeometry {
  index_t in_c = 0, in_h = 0, in_w = 0;
  index_t kernel_h = 0, kernel_w = 0;
  index_t stride = 1;
  index_t pad = 0;

  index_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  index_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  /// im2col row length = C * kh * kw.
  index_t patch_size() const { return in_c * kernel_h * kernel_w; }
};

/// im2col for one sample: returns (out_h*out_w) x (C*kh*kw); row p holds the
/// receptive field of output position p, zero-padded at the borders.
void im2col(const real_t* sample, const ConvGeometry& g, Matrix& cols);

/// Accumulate the transpose operation: scatter the rows of `cols` back into
/// the (C,H,W) sample gradient (+=). Inverse data-movement of im2col.
void col2im_add(const Matrix& cols, const ConvGeometry& g, real_t* sample);

}  // namespace hylo
