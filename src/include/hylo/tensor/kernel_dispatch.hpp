#pragma once
/// \file kernel_dispatch.hpp
/// hylo::kern — runtime kernel-tier dispatch for the dense-compute core.
///
/// The GEMM family (DESIGN.md §13) ships with one scalar implementation and
/// a packed, register-tiled SIMD implementation per vector ISA. Which one
/// runs is a process-wide *tier*, resolved once at first use:
///
///   1. `HYLO_KERNEL` environment variable: `scalar`, `avx2`, `avx512`,
///      `neon`, or `native` (best tier the CPU supports). Unknown names and
///      tiers the hardware cannot run are rejected loudly (hylo::Error).
///   2. Unset/empty: `native`.
///   3. `set_tier()` / `set_tier_by_name()` override programmatically
///      (tests, benches); explicit config wins over the environment.
///
/// Determinism contract per tier (DESIGN.md §13): results are bitwise
/// identical at any thread count *within* a tier; the scalar tier preserves
/// the original serial accumulation order exactly (CI's bitwise lanes pin
/// `HYLO_KERNEL=scalar`). SIMD tiers reassociate k-accumulation relative to
/// scalar, so cross-tier comparisons use norm-relative tolerances.

#include <string>

namespace hylo::kern {

/// Kernel tiers, ordered by preference (higher = wider vectors).
enum class Tier {
  kScalar = 0,  ///< portable loop nests; the seed's bitwise-stable path
  kNeon = 1,    ///< aarch64 NEON, 2 doubles/vector
  kAvx2 = 2,    ///< x86 AVX2+FMA, 4 doubles/vector
  kAvx512 = 3,  ///< x86 AVX-512F/DQ, 8 doubles/vector
};

/// The tier currently driving the dense kernels. First call resolves
/// HYLO_KERNEL (throws hylo::Error on an unknown or unavailable name);
/// afterwards a relaxed atomic load.
Tier active();

/// True if this process can execute `t` on this CPU. kScalar is always
/// available; SIMD tiers require both compiler support (the microkernels
/// are compiled with target attributes) and runtime CPU capability.
bool available(Tier t);

/// Best tier the CPU supports (what `native` resolves to).
Tier best();

/// Programmatic override (tests/benches). Rejects unavailable tiers with
/// hylo::Error. Returns the previous tier.
Tier set_tier(Tier t);

/// Parse a tier name (`scalar`/`neon`/`avx2`/`avx512`/`native`). Throws
/// hylo::Error on unknown names; `native` resolves to best().
Tier parse_tier(const std::string& name);

/// set_tier(parse_tier(name)). Returns the previous tier.
Tier set_tier_by_name(const std::string& name);

/// Canonical name of a tier (the accepted HYLO_KERNEL spellings).
const char* tier_name(Tier t);

}  // namespace hylo::kern
