#pragma once
/// \file gemm_packed.hpp
/// Packed, cache-blocked GEMM with explicit SIMD microkernels — the
/// DESIGN.md §13 fast path behind hylo::gemm/gram_nt and the fused-im2col
/// convolution. Layout (BLIS-style):
///
///   * B is packed once per call into KC-deep blocks of NR-wide column
///     panels (`bpack[q][kk*NR + c]`), A is packed per (MC, KC) block into
///     MR-tall row panels (`apack[p][kk*MR + r]`), alpha folded into A.
///   * An MRxNR register-tiled microkernel (8x4 AVX2 / 8x8 AVX-512 /
///     8x4 NEON, selected by hylo::kern::active()) accumulates
///     C-tile += Apanel · Bpanel with the k loop innermost.
///   * Edge tiles (m % MR, n % NR, and gram_nt's diagonal straddle) run the
///     same microkernel on a copy-in/copy-out scratch tile, so every element
///     sees the identical fma chain regardless of tiling.
///
/// Determinism: for each C element the accumulation is strictly ascending in
/// k (KC blocks outermost, kk inside the microkernel), independent of the
/// thread partition, tile alignment, or edge handling — results are bitwise
/// identical at any thread count within a tier. Packed entry points
/// partition output rows through hylo::par with an MR-aligned grain and
/// declare the same audit footprints as the scalar kernels.
///
/// All packed_gemm_* entry points accumulate alpha * op(A)·op(B) onto an
/// already beta-prepared C and require kern::active() != Tier::kScalar.

#include <vector>

#include "hylo/tensor/kernel_dispatch.hpp"
#include "hylo/tensor/matrix.hpp"
#include "hylo/tensor/tensor4.hpp"

namespace hylo::kern {

/// C += alpha * A·B (A: m x k, B: k x n).
void packed_gemm_nn(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha);

/// C += alpha * Aᵀ·diag(s)·B (A: k x m, s: k or nullptr for identity).
void packed_gemm_tn(const Matrix& a, const real_t* s, const Matrix& b,
                    Matrix& c, real_t alpha);

/// C += alpha * A·Bᵀ (A: m x k, B: n x k).
void packed_gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha);

/// C = A·Aᵀ, exact-symmetric: the upper triangle is computed through the
/// packed kernel (tiles fully below the diagonal are skipped, straddling
/// tiles write only j >= i) and mirrored once per row block, so
/// C(i,j) and C(j,i) are the same double. C must be m x m, zeroed.
void packed_gram_nt(const Matrix& a, Matrix& c);

// ---- Tier-dispatched vector helpers -----------------------------------
// These dispatch on kern::active() internally; the scalar tier runs the
// plain ascending loop (bitwise identical to the seed kernels). vmul and
// vscale are elementwise and therefore bitwise identical across tiers;
// vdot uses lane-partial accumulators in SIMD tiers (fixed, deterministic
// reduction order within a tier, reassociated relative to scalar).

/// a[i] *= b[i].
void vmul(real_t* a, const real_t* b, index_t n);
/// dst[i] = s * src[i].
void vscale(real_t* dst, const real_t* src, real_t s, index_t n);
/// Dot product of two contiguous vectors.
real_t vdot(const real_t* a, const real_t* b, index_t n);

// ---- Fused-im2col convolution (SIMD tiers) ----------------------------
// The conv GEMM consumes im2col patches straight from the NCHW sample:
// pack_b generates each patch element on the fly, so no per-sample patch
// matrix (the old Conv2d::cols_ cache) is ever materialized. These
// functions are serial by design — Conv2d parallelizes over samples
// (forward/dgrad) and output channels (wgrad) around them.

/// Prepacked conv weight operand. `data` holds MR (A-side) or NR (B-side)
/// interleaved panels of W_main per KC block; `bias` is w(:, patch)
/// (forward packs only).
struct PackedW {
  Tier tier = Tier::kScalar;
  index_t rows = 0;  ///< logical row count of the packed operand
  index_t cols = 0;  ///< logical column count of the packed operand
  std::vector<real_t> data;
  std::vector<real_t> bias;
};

/// A-side pack of W_main (c_out x patch) for the forward GEMM
/// out_plane = W_main · colsᵀ; also captures the bias column.
PackedW pack_conv_forward_w(const Matrix& w_aug);

/// B-side pack of W_main (k = c_out, n = patch) for the data-gradient GEMM
/// dcols = goutᵀ · W_main.
PackedW pack_conv_dgrad_w(const Matrix& w_aug);

/// out_plane (c_out x s, NCHW plane of one sample) = W_main · cols(x)ᵀ +
/// bias, patches fused. capture_row != nullptr receives the spatial-sum
/// capture Σ_p cols(p, j) for j in [0, patch) (caller owns the bias slot).
void packed_conv_forward(const PackedW& pw, const real_t* x,
                         const ConvGeometry& g, real_t* out_plane,
                         real_t* capture_row);

/// gw rows [o0, o1) += gout_plane[o0:o1, :] · [cols(x) | 1] for one sample
/// (the augmented ones column accumulates the bias gradient).
void packed_conv_wgrad(const real_t* gout_plane, const real_t* x,
                       const ConvGeometry& g, Matrix& gw, index_t o0,
                       index_t o1);

/// dcols (s x patch, pre-zeroed) += gout_planeᵀ · W_main for one sample.
void packed_conv_dcols(const real_t* gout_plane, const PackedW& pw,
                       const ConvGeometry& g, Matrix& dcols);

}  // namespace hylo::kern
