#pragma once
/// \file ops.hpp
/// BLAS-style dense kernels on Matrix. All GEMM variants are blocked and
/// written cache-friendly for row-major storage; they are the compute
/// backbone of both the NN framework (conv = im2col + gemm) and the
/// second-order machinery (Gram/kernel matrices, SMW applications).
/// The GEMM/Gram family is multi-threaded over output row blocks through
/// hylo::par (HYLO_NUM_THREADS) and dispatches between the scalar loop
/// nests below and the packed SIMD microkernels (gemm_packed.hpp) via
/// hylo::kern::active() (HYLO_KERNEL). Results are bitwise deterministic at
/// any thread count *within a kernel tier*; the scalar tier preserves the
/// original serial accumulation order exactly — see DESIGN.md §8 and §13.

#include <vector>

#include "hylo/tensor/matrix.hpp"

namespace hylo {

/// C = alpha * A * B + beta * C.  A: m x k, B: k x n, C: m x n.
void gemm(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha = 1.0,
          real_t beta = 0.0);

/// C = alpha * A^T * B + beta * C.  A: k x m, B: k x n, C: m x n.
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha = 1.0,
             real_t beta = 0.0);

/// C = alpha * A * B^T + beta * C.  A: m x k, B: n x k, C: m x n.
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c, real_t alpha = 1.0,
             real_t beta = 0.0);

/// C = alpha * A^T * diag(s) * B + beta * C.  A: k x m, s: k-vector (k x 1
/// or 1 x k), B: k x n. The row scaling is fused into the rank-1 update
/// coefficients — no scaled copy of A is formed. With alpha == 1 the result
/// is bitwise identical to scaling A's rows first and calling gemm_tn.
void gemm_tn_diag(const Matrix& a, const Matrix& s, const Matrix& b, Matrix& c,
                  real_t alpha = 1.0, real_t beta = 0.0);

/// Allocating forms.
Matrix matmul(const Matrix& a, const Matrix& b);
Matrix matmul_tn(const Matrix& a, const Matrix& b);
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// Symmetric rank-k: C = A * A^T (m x m from m x k). Exploits symmetry.
Matrix gram_nt(const Matrix& a);
/// C = A^T * A (k x k from m x k). Exploits symmetry.
Matrix gram_tn(const Matrix& a);

/// y = A * x for x given as flat vector; y resized to a.rows().
void matvec(const Matrix& a, const std::vector<real_t>& x,
            std::vector<real_t>& y);
/// y = A^T * x; y resized to a.cols().
void matvec_t(const Matrix& a, const std::vector<real_t>& x,
              std::vector<real_t>& y);

/// Elementwise (Hadamard) product, used for kernel K = (AA^T) ∘ (GG^T).
Matrix hadamard(const Matrix& a, const Matrix& b);

/// In-place: a(i,j) *= b(i,j).
void hadamard_inplace(Matrix& a, const Matrix& b);

/// a += alpha * b  (axpy on matrices).
void axpy(Matrix& a, const Matrix& b, real_t alpha);

/// Add alpha to the diagonal in place (damping).
void add_diagonal(Matrix& a, real_t alpha);

/// Frobenius norm, squared Frobenius norm, dot product of flattened views.
real_t frobenius_norm(const Matrix& a);
real_t frobenius_norm_sq(const Matrix& a);
real_t dot(const Matrix& a, const Matrix& b);

/// Euclidean norm of each row; returns rows()-length vector. Used by KIS
/// scoring (score_j = ||A_j|| * ||G_j||).
std::vector<real_t> row_norms(const Matrix& a);

/// Largest absolute element.
real_t max_abs(const Matrix& a);

/// Trace of a square matrix.
real_t trace(const Matrix& a);

/// Stack matrices vertically (all must share cols). This is the "gather"
/// data movement in the distributed pipeline: A^s = [A_1^s; ...; A_P^s].
Matrix vstack(const std::vector<Matrix>& parts);

/// Block-diagonal assembly: Y = diag(Y_1, ..., Y_P). Used for KID factors.
Matrix block_diag(const std::vector<Matrix>& blocks);

/// Max |a - b| over elements; requires identical shape.
real_t max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace hylo
