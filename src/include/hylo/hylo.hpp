#pragma once
/// \file hylo.hpp
/// Umbrella header: the full public API of the HyLo reproduction library.
///
/// Quick tour:
///   - hylo/core/trainer.hpp    — Trainer, TrainConfig, make_optimizer()
///   - hylo/optim/*             — SGD/Adam, KFAC/EKFAC/KBFGS, SNGD, HyLo
///   - hylo/models/zoo.hpp      — model builders (mlp, c3f1, resnet, ...)
///   - hylo/data/datasets.hpp   — synthetic datasets + sharded DataLoader
///   - hylo/nn/*                — static-DAG NN framework with A/G capture
///   - hylo/dist/*              — simulated collectives + α-β cost model
///   - hylo/obs/*               — telemetry: metrics registry, trace spans
///                                (Perfetto export), JSONL run logs
///   - hylo/par/*               — deterministic thread-pool parallelism
///                                (HYLO_NUM_THREADS)
///   - hylo/audit/*             — checked-mode write-set race auditor and
///                                replay determinism harness (HYLO_AUDIT)
///   - hylo/ckpt/*              — crash-safe run snapshots with bitwise
///                                resume (HYLO_CKPT_DIR/HYLO_CKPT_EVERY)
///   - hylo/linalg/*            — cholesky/lu/eigh/pivoted-QR/ID/kernels
///   - hylo/tensor/*            — Matrix, Tensor4, GEMM kernels
///
/// See examples/quickstart.cpp for a five-minute end-to-end walkthrough.

#include "hylo/audit/audit.hpp"
#include "hylo/audit/write_set.hpp"
#include "hylo/ckpt/snapshot.hpp"
#include "hylo/common/csv.hpp"
#include "hylo/common/rng.hpp"
#include "hylo/common/timer.hpp"
#include "hylo/core/trainer.hpp"
#include "hylo/data/datasets.hpp"
#include "hylo/dist/comm.hpp"
#include "hylo/dist/cost_model.hpp"
#include "hylo/linalg/cholesky.hpp"
#include "hylo/linalg/eigh.hpp"
#include "hylo/linalg/id.hpp"
#include "hylo/linalg/kernels.hpp"
#include "hylo/linalg/lu.hpp"
#include "hylo/linalg/qr.hpp"
#include "hylo/models/zoo.hpp"
#include "hylo/nn/layers.hpp"
#include "hylo/nn/loss.hpp"
#include "hylo/nn/network.hpp"
#include "hylo/obs/obs.hpp"
#include "hylo/optim/hylo_optimizer.hpp"
#include "hylo/optim/kfac.hpp"
#include "hylo/optim/optimizer.hpp"
#include "hylo/optim/sngd.hpp"
#include "hylo/par/thread_pool.hpp"
#include "hylo/tensor/ops.hpp"
