#pragma once
/// \file check.hpp
/// Precondition/invariant checking. HYLO_CHECK is always on (these guard
/// user-facing API misuse, e.g. dimension mismatches); HYLO_DCHECK compiles
/// out in release builds and guards internal invariants on hot paths.

#include <sstream>
#include <stdexcept>
#include <string>

namespace hylo {

/// Exception thrown on any failed hylo precondition or invariant.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* cond, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace hylo

/// Always-on check with streaming message: HYLO_CHECK(m.rows()==n, "got " << m.rows());
#define HYLO_CHECK(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream hylo_check_oss_;                                  \
      hylo_check_oss_ << "" __VA_ARGS__;                                   \
      ::hylo::detail::throw_check_failure(#cond, __FILE__, __LINE__,       \
                                          hylo_check_oss_.str());          \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define HYLO_DCHECK(cond, ...) \
  do {                         \
  } while (false)
#else
#define HYLO_DCHECK(cond, ...) HYLO_CHECK(cond, __VA_ARGS__)
#endif
