#pragma once
/// \file types.hpp
/// Fundamental scalar and index types used across the hylo library.

#include <cstddef>
#include <cstdint>

namespace hylo {

/// Scalar type for all numerical work. Double keeps the Jacobi eigensolver,
/// pivoted QR and SMW solves well-conditioned; model sizes in this
/// reproduction are small enough that the bandwidth cost is irrelevant.
using real_t = double;

/// Signed index type (Core Guidelines ES.107: prefer signed for subscripts
/// involved in arithmetic).
using index_t = std::int64_t;

}  // namespace hylo
