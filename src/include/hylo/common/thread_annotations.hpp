#pragma once

// Clang thread-safety annotations (-Wthread-safety), no-ops elsewhere.
// The macro set mirrors the documented attribute names; DESIGN.md §14
// carries the table. Every mutex-protected region in obs/ and par/ is
// annotated with these, and CI's clang lane builds with
// -Werror=thread-safety so a guarded field accessed without its lock is
// a compile error, not a TSan coin flip.
//
// std::mutex itself carries no capability attribute in libstdc++, so the
// repo locks through the hylo::Mutex wrapper below; hylo::MutexLock and
// hylo::UniqueLock are the scoped guards (UniqueLock exposes the native
// std::unique_lock for condition_variable::wait, which the analysis
// treats as held across the wait — exactly the contract the predicate
// re-check gives you).

#include <mutex>

#if defined(__clang__)
#define HYLO_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define HYLO_THREAD_ANNOTATION_ATTRIBUTE__(x)
#endif

#define HYLO_CAPABILITY(x) \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#define HYLO_SCOPED_CAPABILITY \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)
#define HYLO_GUARDED_BY(x) \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
#define HYLO_PT_GUARDED_BY(x) \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))
#define HYLO_ACQUIRE(...) \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define HYLO_RELEASE(...) \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define HYLO_REQUIRES(...) \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define HYLO_EXCLUDES(...) \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#define HYLO_ACQUIRED_AFTER(...) \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))
#define HYLO_ACQUIRED_BEFORE(...) \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define HYLO_RETURN_CAPABILITY(x) \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))
#define HYLO_NO_THREAD_SAFETY_ANALYSIS \
  HYLO_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace hylo {

/// std::mutex with a capability attribute, so HYLO_GUARDED_BY(mu_) means
/// something to the analysis. Zero overhead: lock/unlock forward directly.
class HYLO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HYLO_ACQUIRE() { mu_.lock(); }
  void unlock() HYLO_RELEASE() { mu_.unlock(); }

  /// The wrapped mutex, for std::unique_lock/condition_variable plumbing.
  /// Callers go through UniqueLock so the acquisition stays visible to the
  /// analysis.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock (std::lock_guard shape) over hylo::Mutex.
class HYLO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HYLO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HYLO_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped lock with mid-scope unlock/relock and condition_variable support
/// (the std::unique_lock shape). `cv.wait(lk.native())` keeps the
/// capability held from the analysis' point of view — sound, because wait
/// returns with the lock reacquired.
class HYLO_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) HYLO_ACQUIRE(mu) : lk_(mu.native()) {}
  ~UniqueLock() HYLO_RELEASE() {}
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() HYLO_ACQUIRE() { lk_.lock(); }
  void unlock() HYLO_RELEASE() { lk_.unlock(); }
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

}  // namespace hylo
