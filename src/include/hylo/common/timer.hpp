#pragma once
/// \file timer.hpp
/// Wall-clock timing and a lightweight named-section profiler. The profiler
/// backs the computation/communication breakdowns reported by the Fig. 3 and
/// Fig. 7 benches: compute sections are *measured*, communication sections
/// are *charged* by the interconnect cost model (see dist/cost_model.hpp).

#include <chrono>
#include <map>
#include <string>

#include "hylo/common/types.hpp"

namespace hylo {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { restart(); }

  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates seconds and call counts under string keys. Not thread-safe by
/// design — the distributed simulator is lockstep-sequential.
class Profiler {
 public:
  /// Add `seconds` of measured (or modeled) time to section `name`.
  void add(const std::string& name, double seconds) {
    auto& e = sections_[name];
    e.seconds += seconds;
    e.calls += 1;
  }

  double seconds(const std::string& name) const {
    const auto it = sections_.find(name);
    return it == sections_.end() ? 0.0 : it->second.seconds;
  }

  std::int64_t calls(const std::string& name) const {
    const auto it = sections_.find(name);
    return it == sections_.end() ? 0 : it->second.calls;
  }

  void reset() { sections_.clear(); }

  struct Entry {
    double seconds = 0.0;
    std::int64_t calls = 0;
  };

  const std::map<std::string, Entry>& sections() const { return sections_; }

 private:
  std::map<std::string, Entry> sections_;
};

/// RAII helper: measures the lifetime of a scope into a profiler section.
class ScopedTimer {
 public:
  ScopedTimer(Profiler& profiler, std::string name)
      : profiler_(profiler), name_(std::move(name)) {}
  ~ScopedTimer() { profiler_.add(name_, timer_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler& profiler_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace hylo
