#pragma once
/// \file timer.hpp
/// Wall-clock timing and the named-section profiler. The profiler backs the
/// computation/communication breakdowns reported by the Fig. 3 and Fig. 7
/// benches: compute sections are *measured*, communication sections are
/// *charged* by the interconnect cost model (see dist/cost_model.hpp).
///
/// Profiler is a thin compatibility facade over obs::MetricsRegistry — the
/// same store that holds the telemetry counters/gauges/histograms — so
/// legacy section readouts and the structured run log observe one source of
/// truth. Section readout semantics (and bench CSV output) are unchanged.

#include <chrono>
#include <map>
#include <string>

#include "hylo/common/types.hpp"
#include "hylo/obs/metrics.hpp"

namespace hylo {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { restart(); }

  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates seconds and call counts under string keys. Backed by the
/// obs::MetricsRegistry timing sections, which are mutex-guarded, so adds
/// from concurrent hylo::par workers are safe (the lockstep simulator still
/// drives rank logic sequentially).
class Profiler {
 public:
  using Entry = obs::TimingEntry;

  /// Add `seconds` of measured (or modeled) time to section `name`.
  void add(const std::string& name, double seconds) {
    registry_.add_timing(name, seconds);
  }

  double seconds(const std::string& name) const {
    return registry_.timing_seconds(name);
  }

  std::int64_t calls(const std::string& name) const {
    return registry_.timing_calls(name);
  }

  /// Clears the timing sections (the registry's other metric families are
  /// untouched — use registry().reset() for a full wipe).
  void reset() { registry_.reset_timings(); }

  const std::map<std::string, Entry>& sections() const {
    return registry_.timings();
  }

  /// The backing metrics registry (counters, gauges, histograms live here
  /// alongside the timing sections).
  obs::MetricsRegistry& registry() { return registry_; }
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  obs::MetricsRegistry registry_;
};

/// RAII helper: measures the lifetime of a scope into a profiler section.
class ScopedTimer {
 public:
  ScopedTimer(Profiler& profiler, std::string name)
      : profiler_(profiler), name_(std::move(name)) {}
  ~ScopedTimer() { profiler_.add(name_, timer_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler& profiler_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace hylo
