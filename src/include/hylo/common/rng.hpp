#pragma once
/// \file rng.hpp
/// Deterministic random number generation. All stochastic components of the
/// library (data synthesis, weight init, importance sampling) draw from an
/// explicitly seeded Rng so that every experiment is bit-reproducible and
/// every optimizer comparison sees identical data.

#include <cstdint>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/common/types.hpp"

namespace hylo {

/// xoshiro256** — small, fast, high-quality PRNG with splittable seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize state from a single seed via SplitMix64 expansion.
  void reseed(std::uint64_t seed);

  /// Derive an independent child stream (for per-worker / per-layer rngs).
  Rng split();

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  real_t uniform();

  /// Uniform in [lo, hi).
  real_t uniform(real_t lo, real_t hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box-Muller (cached second value).
  real_t normal();

  /// Normal with the given mean and stddev.
  real_t normal(real_t mean, real_t stddev) { return mean + stddev * normal(); }

  /// Uniform integer in [0, n). Requires n > 0.
  index_t uniform_int(index_t n);

  /// Sample k distinct indices from [0, n) with probability proportional to
  /// weights[i] (without replacement). Used by KIS. Requires 0 < k <= n and
  /// at least k strictly-positive weights.
  std::vector<index_t> sample_without_replacement(
      const std::vector<real_t>& weights, index_t k);

  /// Fisher-Yates shuffle of indices 0..n-1.
  std::vector<index_t> permutation(index_t n);

  /// Full generator state: the xoshiro256** words plus the Box-Muller cache.
  /// Snapshotting both is what makes a resumed run replay the exact normal()
  /// sequence of the uninterrupted one (hylo::ckpt serializes this).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool have_cached_normal = false;
    real_t cached_normal = 0.0;
  };

  State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.have_cached_normal = have_cached_normal_;
    st.cached_normal = cached_normal_;
    return st;
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    have_cached_normal_ = st.have_cached_normal;
    cached_normal_ = st.cached_normal;
  }

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  real_t cached_normal_ = 0.0;
};

}  // namespace hylo
