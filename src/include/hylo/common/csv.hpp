#pragma once
/// \file csv.hpp
/// Minimal CSV emission used by the bench harness: every figure/table bench
/// prints its series both as an aligned human-readable table on stdout and,
/// optionally, as a CSV file for plotting.

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "hylo/common/check.hpp"

namespace hylo {

/// Row-oriented CSV writer with a fixed header.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> row) {
    HYLO_CHECK(row.size() == header_.size(),
               "row arity " << row.size() << " != header " << header_.size());
    rows_.push_back(std::move(row));
  }

  /// Convenience: convert each element with operator<<.
  template <typename... Ts>
  void add(const Ts&... vals) {
    std::vector<std::string> row;
    row.reserve(sizeof...(Ts));
    (row.push_back(to_cell(vals)), ...);
    add_row(std::move(row));
  }

  /// Write `header\nrow...` to the given path.
  void write_file(const std::string& path) const {
    // Bench CSVs are regenerable plot fodder, not recovery-critical
    // artifacts, so a torn write is harmless.
    std::ofstream out(path);  // hylo-lint: allow(ckpt_io: bench CSVs are regenerable plot fodder, a torn write is harmless)
    HYLO_CHECK(out.good(), "cannot open " << path);
    out << join(header_) << "\n";
    for (const auto& r : rows_) out << join(r) << "\n";
  }

  /// Print an aligned table to the stream (what bench binaries show).
  void print_table(std::ostream& os = std::cout) const;  // hylo-lint: allow(io: bench tables print to the console by design)

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream oss;
    oss << std::setprecision(6) << v;
    return oss.str();
  }

  static std::string join(const std::vector<std::string>& cells) {
    std::string out;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out += ",";
      out += cells[i];
    }
    return out;
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hylo
