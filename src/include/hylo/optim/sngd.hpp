#pragma once
/// \file sngd.hpp
/// Standard Sherman-Morrison-Woodbury NGD (Eq. 7 of the paper) with the
/// communication-optimized distributed pipeline of Fig. 1: per-sample
/// input/gradient matrices are allgathered, the global-batch kernel matrix
/// K = (AAᵀ)∘(GGᵀ) is inverted per assigned layer, and the inverse is
/// broadcast. Exact (no low-rank compression) — the baseline whose O(P³m³)
/// inversion and O(P²m²) broadcast HyLo eliminates.

#include "hylo/linalg/cholesky.hpp"
#include "hylo/optim/second_order.hpp"

namespace hylo {

class Sngd : public CurvatureOptimizer {
 public:
  explicit Sngd(OptimConfig cfg) : CurvatureOptimizer(cfg) {}
  std::string name() const override { return "SNGD"; }

  void update_curvature(const std::vector<ParamBlock*>& blocks,
                        const CaptureSet& capture, CommSim* comm) override;
  index_t state_bytes() const override;
  void save_state(Network& net, ckpt::ByteWriter& w) const override;
  void load_state(Network& net, ckpt::ByteReader& r) override;

  /// Preconditioned copy of a gradient without mutating it (shared with the
  /// Fig. 12 gradient-error bench).
  Matrix preconditioned(const Matrix& grad, index_t layer) const;

  index_t layer_staleness(index_t layer) const override {
    HYLO_CHECK(layer >= 0 && layer < static_cast<index_t>(layers_.size()),
               "SNGD layer " << layer << " unknown");
    return layers_[static_cast<std::size_t>(layer)].staleness;
  }

  void poll_async(CommSim& comm) override;
  index_t async_pending() const override {
    return static_cast<index_t>(pending_.size());
  }

 protected:
  void precondition_block(ParamBlock& pb, index_t layer) override;
  bool layer_ready(index_t layer) const override {
    return layer < static_cast<index_t>(layers_.size()) &&
           layers_[static_cast<std::size_t>(layer)].ready;
  }

 private:
  struct LayerState {
    Matrix a_glob, g_glob;  ///< gathered global-batch factors (P·m rows)
    Matrix kernel_chol;     ///< Cholesky of (K + αI), dimension P·m
    bool ready = false;
    index_t staleness = 0;  ///< refreshes since these factors last landed
  };
  std::vector<LayerState> layers_;

  struct Pending {
    index_t layer = 0;
    CommEvent event;
    LayerState state;
  };
  /// Commit completed pendings in (ready, seq) order; with `deadline`, a
  /// pending that has not completed degrades to stale factors.
  void resolve_pending(CommSim& comm, bool deadline);
  std::vector<Pending> pending_;
};

}  // namespace hylo
