#pragma once
/// \file hylo_optimizer.hpp
/// HyLo — the paper's contribution (Algorithm 1). A hybrid low-rank SNGD
/// method that compresses each worker's per-sample factors before any
/// communication, via either
///   KID (Algorithm 2): Khatri-Rao interpolative decomposition of the local
///     Gram matrix, with a projected residual correction Y, inverted through
///     Eq. 8: (F+αI)⁻¹ ≈ (1/α)(I − U^sᵀ (K̂ + Y⁻¹)⁻¹ U^s); or
///   KIS (Algorithm 3): norm-score importance sampling of the rows, with
///     1/√(ρp_j) scaling, inverted through Eq. 9.
/// A gradient-based heuristic (Sec. III-C) picks KID on "critical" epochs —
/// when the accumulated-gradient norm jumps by more than η, or right after a
/// learning-rate decay — and the cheaper KIS elsewhere.

#include <cstdint>

#include "hylo/linalg/cholesky.hpp"
#include "hylo/linalg/lu.hpp"
#include "hylo/optim/second_order.hpp"

namespace hylo {

enum class HyloMode { kKid, kKis };

inline const char* to_string(HyloMode m) {
  return m == HyloMode::kKid ? "KID" : "KIS";
}

/// One per-epoch KID/KIS decision with the evidence behind it (Alg. 1
/// lines 2-3): the run log journals these so Table III-style switching
/// analyses need no reconstruction.
struct SwitchDecision {
  index_t epoch = 0;
  real_t ratio = -1.0;      ///< R = |‖Δ_{e-1}‖−‖Δ_{e-2}‖|/‖Δ_{e-2}‖; <0 n/a
  real_t threshold = 0.0;   ///< η it was compared against
  bool lr_decayed = false;  ///< the schedule-trigger input
  bool critical = false;    ///< the decision: critical epoch → KID
  HyloMode mode = HyloMode::kKid;
  std::string reason;       ///< "warmup", "lr_decay", "ratio", "steady",
                            ///< or the non-gradient policy name
};

class HyloOptimizer : public CurvatureOptimizer {
 public:
  /// How the per-epoch KID/KIS decision is made. kGradientBased is the
  /// paper's heuristic; kRandom is the Table III ablation; the kAlways*
  /// policies serve the Fig. 7 / Fig. 12 per-method analyses.
  enum class Policy { kGradientBased, kRandom, kAlwaysKid, kAlwaysKis };

  explicit HyloOptimizer(OptimConfig cfg, std::uint64_t seed = 0x48794C6F)
      : CurvatureOptimizer(cfg), rng_(seed) {}

  std::string name() const override { return "HyLo"; }

  void update_curvature(const std::vector<ParamBlock*>& blocks,
                        const CaptureSet& capture, CommSim* comm) override;
  void begin_epoch(index_t epoch, bool lr_decayed) override;
  void accumulate_gradient(const std::vector<ParamBlock*>& blocks) override;
  index_t state_bytes() const override;
  void save_state(Network& net, ckpt::ByteWriter& w) const override;
  void load_state(Network& net, ckpt::ByteReader& r) override;

  void set_policy(Policy p) { policy_ = p; }
  HyloMode mode() const { return mode_; }
  const std::vector<HyloMode>& mode_history() const { return mode_history_; }
  /// Evidence for every per-epoch KID/KIS decision, oldest first (one entry
  /// per begin_epoch call). The trainer's run log emits the latest entry.
  const std::vector<SwitchDecision>& switch_history() const {
    return switch_history_;
  }
  const SwitchDecision& last_switch() const {
    HYLO_CHECK(!switch_history_.empty(), "no epoch started yet");
    return switch_history_.back();
  }
  /// ‖Δ_e‖ per completed epoch (the switching signal, Fig. 11 adjacent).
  const std::vector<real_t>& delta_norm_history() const { return delta_norms_; }

  /// Preconditioned copy of a gradient without mutating it (Fig. 12 bench).
  Matrix preconditioned(const Matrix& grad, index_t layer) const;

  /// The global low rank r used at the last curvature refresh.
  index_t last_rank() const { return last_rank_; }

  index_t layer_staleness(index_t layer) const override {
    HYLO_CHECK(layer >= 0 && layer < static_cast<index_t>(layers_.size()),
               "HyLo layer " << layer << " unknown");
    return layers_[static_cast<std::size_t>(layer)].staleness;
  }

  void poll_async(CommSim& comm) override;
  index_t async_pending() const override {
    return static_cast<index_t>(pending_.size());
  }

 protected:
  void precondition_block(ParamBlock& pb, index_t layer) override;
  bool layer_ready(index_t layer) const override {
    return layer < static_cast<index_t>(layers_.size()) &&
           layers_[static_cast<std::size_t>(layer)].ready;
  }

 private:
  struct LayerState {
    HyloMode mode = HyloMode::kKid;
    Matrix a_s, g_s;      ///< gathered low-rank factors (r rows)
    LuFactor kid_middle;  ///< LU of (K̂ + Y⁻¹)      [KID]
    Matrix kis_chol;      ///< Cholesky of (K̂ + αI)  [KIS]
    bool ready = false;
    index_t staleness = 0;  ///< refreshes since these factors last landed
  };

  Policy policy_ = Policy::kGradientBased;
  HyloMode mode_ = HyloMode::kKid;
  std::vector<HyloMode> mode_history_;
  std::vector<SwitchDecision> switch_history_;

  // Switching state: Δ_e accumulators per layer and their completed norms.
  std::vector<Matrix> delta_;
  bool delta_dirty_ = false;
  std::vector<real_t> delta_norms_;

  std::vector<LayerState> layers_;
  index_t last_rank_ = 0;
  Rng rng_;

  struct Pending {
    index_t layer = 0;
    CommEvent event;
    LayerState state;
  };
  /// Commit completed pendings in (ready, seq) order; with `deadline`, a
  /// pending that has not completed degrades to stale factors.
  void resolve_pending(CommSim& comm, bool deadline);
  std::vector<Pending> pending_;
};

}  // namespace hylo
