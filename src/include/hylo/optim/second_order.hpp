#pragma once
/// \file second_order.hpp
/// Shared machinery for the NGD family: capture scheduling, KL-clipped
/// trust-region application, and damped inversion helpers with escalation.

#include "hylo/optim/optimizer.hpp"

namespace hylo {

/// Base for every curvature-preconditioned optimizer. Subclasses implement
/// update_curvature() and precondition_block(); step() then snapshots the
/// raw gradient, preconditions, applies the KAISA-style KL clip
///   ν = min(1, sqrt(κ / (lr² Σ_l ⟨precond g_l, g_l⟩)))
/// and performs the common momentum update.
class CurvatureOptimizer : public Optimizer {
 public:
  explicit CurvatureOptimizer(OptimConfig cfg) : Optimizer(cfg) {}

  bool needs_capture(index_t iteration) const override {
    return cfg_.update_freq <= 1 || iteration % cfg_.update_freq == 0;
  }

  void step(Network& net, index_t iteration) override;

 protected:
  /// Replace pb.gw by the preconditioned gradient for layer index `layer`.
  /// Called only after at least one update_curvature() succeeded for that
  /// layer; before that, gradients pass through unchanged.
  virtual void precondition_block(ParamBlock& pb, index_t layer) = 0;

  /// True once layer `layer` has curvature state.
  virtual bool layer_ready(index_t layer) const = 0;
};

/// SPD inverse of (c + damping·I) with escalating damping retries (10× per
/// attempt). Throws only if the matrix stays numerically indefinite after
/// `attempts` escalations — which indicates NaNs rather than conditioning.
Matrix damped_spd_inverse(const Matrix& c, real_t damping, int attempts = 4);

/// Cholesky factor of (c + damping·I) with the same escalation.
Matrix damped_cholesky(const Matrix& c, real_t damping, int attempts = 4);

}  // namespace hylo
