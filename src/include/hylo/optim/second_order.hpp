#pragma once
/// \file second_order.hpp
/// Shared machinery for the NGD family: capture scheduling, KL-clipped
/// trust-region application, and damped inversion helpers with escalation.

#include "hylo/optim/optimizer.hpp"

namespace hylo {

/// Base for every curvature-preconditioned optimizer. Subclasses implement
/// update_curvature() and precondition_block(); step() then snapshots the
/// raw gradient, preconditions, applies the KAISA-style KL clip
///   ν = min(1, sqrt(κ / (lr² Σ_l ⟨precond g_l, g_l⟩)))
/// and performs the common momentum update.
class CurvatureOptimizer : public Optimizer {
 public:
  explicit CurvatureOptimizer(OptimConfig cfg) : Optimizer(cfg) {}

  bool needs_capture(index_t iteration) const override {
    return cfg_.update_freq <= 1 || iteration % cfg_.update_freq == 0;
  }

  void step(Network& net, index_t iteration) override;

  /// Refresh age of the curvature served for `layer`: 0 when the last
  /// refresh landed, k when the last k refreshes lost their collectives and
  /// the layer still serves factors from k refreshes ago (or, while
  /// layer_ready() is false, has none and passes gradients through as plain
  /// SGD directions).
  virtual index_t layer_staleness(index_t /*layer*/) const { return 0; }

 protected:
  /// Replace pb.gw by the preconditioned gradient for layer index `layer`.
  /// Called only after at least one update_curvature() succeeded for that
  /// layer; before that, gradients pass through unchanged.
  virtual void precondition_block(ParamBlock& pb, index_t layer) = 0;

  /// True once layer `layer` has curvature state.
  virtual bool layer_ready(index_t layer) const = 0;

  /// Bookkeeping for a curvature refresh whose collective was lost to an
  /// injected fault (CommFailure): counts optim/<method>/stale_refreshes and
  /// drops a trace instant naming the fallback the layer degrades to.
  void note_stale_refresh(CommSim& comm, const char* method,
                          index_t layer, bool has_previous) const;
};

/// SPD inverse of (c + damping·I) with escalating damping retries (10× per
/// attempt). Throws only if the matrix stays numerically indefinite after
/// `attempts` escalations — which indicates NaNs rather than conditioning.
Matrix damped_spd_inverse(const Matrix& c, real_t damping, int attempts = 4);

/// Cholesky factor of (c + damping·I) with the same escalation.
Matrix damped_cholesky(const Matrix& c, real_t damping, int attempts = 4);

}  // namespace hylo
