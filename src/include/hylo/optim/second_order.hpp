#pragma once
/// \file second_order.hpp
/// Shared machinery for the NGD family: capture scheduling, KL-clipped
/// trust-region application, damped inversion helpers with escalation, and
/// the async-refresh plumbing (pending-commit handles on the event
/// timeline, DESIGN.md §15).

#include <algorithm>

#include "hylo/optim/optimizer.hpp"

namespace hylo {

/// Base for every curvature-preconditioned optimizer. Subclasses implement
/// update_curvature() and precondition_block(); step() then snapshots the
/// raw gradient, preconditions, applies the KAISA-style KL clip
///   ν = min(1, sqrt(κ / (lr² Σ_l ⟨precond g_l, g_l⟩)))
/// and performs the common momentum update.
class CurvatureOptimizer : public Optimizer {
 public:
  explicit CurvatureOptimizer(OptimConfig cfg) : Optimizer(cfg) {}

  bool needs_capture(index_t iteration) const override {
    return cfg_.update_freq <= 1 || iteration % cfg_.update_freq == 0;
  }

  void step(Network& net, index_t iteration) override;

  /// Refresh age of the curvature served for `layer`: 0 when the last
  /// refresh landed, k when the last k refreshes lost their collectives and
  /// the layer still serves factors from k refreshes ago (or, while
  /// layer_ready() is false, has none and passes gradients through as plain
  /// SGD directions).
  virtual index_t layer_staleness(index_t /*layer*/) const { return 0; }

  /// Async comm mode only: commit every pending refresh whose collectives
  /// have completed by the timeline's current clock, in (ready time, seq)
  /// order. The trainer calls this each iteration so factor gathers issued
  /// at refresh t land while iterations t+1..t+f-1 compute; anything still
  /// in flight when the *next* refresh starts has missed its commit
  /// deadline and degrades to stale factors, exactly like a lost lockstep
  /// collective (PR-4 semantics).
  virtual void poll_async(CommSim& /*comm*/) {}

  /// Number of layers with an in-flight async refresh.
  virtual index_t async_pending() const { return 0; }

  /// Recovery-ladder rung 2 (DESIGN.md §16): while set, step() skips the
  /// preconditioning pass and applies the raw (momentum/KL-clipped)
  /// gradient direction — curvature state keeps refreshing and aging
  /// normally, it is just not served.
  void set_first_order(bool on) { first_order_ = on; }
  bool first_order() const { return first_order_; }

 protected:
  /// Replace pb.gw by the preconditioned gradient for layer index `layer`.
  /// Called only after at least one update_curvature() succeeded for that
  /// layer; before that, gradients pass through unchanged.
  virtual void precondition_block(ParamBlock& pb, index_t layer) = 0;

  /// True once layer `layer` has curvature state.
  virtual bool layer_ready(index_t layer) const = 0;

  /// Bookkeeping for a curvature refresh whose collective was lost to an
  /// injected fault (CommFailure): counts optim/<method>/stale_refreshes and
  /// drops a trace instant naming the fallback the layer degrades to.
  void note_stale_refresh(CommSim& comm, const char* method,
                          index_t layer, bool has_previous) const;

  /// Consume the communicator's escaped-corruption ticket (if the charges
  /// just issued for this layer's refresh left one) and apply the seeded
  /// bit-flips to one of the candidate matrices the collective carried. The
  /// ticket seed picks the target deterministically; a null or empty target
  /// is skipped. Call immediately after the charge_*/icharge_* calls whose
  /// payload the candidates model.
  static void apply_escaped_corruption(CommSim& comm,
                                       std::initializer_list<Matrix*> targets);

  /// Numeric commit gate (DESIGN.md §16): scan the candidate matrices about
  /// to be committed for non-finite values, absurd magnitudes, and factor
  /// norms exploding relative to the currently committed predecessors
  /// (position-matched; an empty/missing predecessor skips the ratio
  /// check). Returns true when the candidate may commit. A rejection books
  /// optim/<method>/guard_rejects (+ a trace instant) and the caller must
  /// degrade to stale factors exactly as for a lost collective. Always true
  /// when cfg_.guard_gates is off.
  bool guard_commit(CommSim& comm, const char* method, index_t layer,
                    std::initializer_list<const Matrix*> candidates,
                    std::initializer_list<const Matrix*> committed) const;

  /// Completion handle for a dependent chain of nonblocking collectives
  /// (e.g. factor allreduce → inverse broadcast): the chain starts with its
  /// first link, completes with its last, and fails if any link failed.
  static CommEvent chain_event(const CommEvent& first, const CommEvent& last) {
    CommEvent ev;
    ev.seq = last.seq;
    ev.start_s = first.start_s;
    ev.ready_s = last.ready_s;
    ev.failed = first.failed || last.failed;
    return ev;
  }

  /// The event-queue ordering rule: pendings commit in (ready time, seq)
  /// order, which totally orders the replayed timeline. `P` is any struct
  /// with a CommEvent member named `event`.
  template <typename P>
  static void sort_by_completion(std::vector<P>& pending) {
    std::sort(pending.begin(), pending.end(), [](const P& x, const P& y) {
      if (x.event.ready_s != y.event.ready_s)
        return x.event.ready_s < y.event.ready_s;
      return x.event.seq < y.event.seq;
    });
  }

  /// Pending-handle serialization (snapshots taken with gathers in flight
  /// must resume bitwise — DESIGN.md §15).
  static void write_event(ckpt::ByteWriter& w, const CommEvent& ev);
  static CommEvent read_event(ckpt::ByteReader& r);

 private:
  bool first_order_ = false;
};

/// SPD inverse of (c + damping·I) with escalating damping retries (10× per
/// attempt). Throws only if the matrix stays numerically indefinite after
/// `attempts` escalations — which indicates NaNs rather than conditioning.
Matrix damped_spd_inverse(const Matrix& c, real_t damping, int attempts = 4);

/// Cholesky factor of (c + damping·I) with the same escalation.
Matrix damped_cholesky(const Matrix& c, real_t damping, int attempts = 4);

}  // namespace hylo
