#pragma once
/// \file optimizer.hpp
/// Optimizer interface shared by first-order methods (SGD, Adam) and the
/// NGD family (KFAC, EKFAC, KBFGS, SNGD, HyLo). The distributed trainer
/// drives the split lifecycle:
///
///   1. forward/backward per simulated rank (capture on curvature refreshes)
///   2. gradient allreduce
///   3. update_curvature(blocks, capture, comm)   [refresh iterations only]
///   4. step(net, iteration) = precondition + apply update
///
/// Single-device training is the world=1 special case of the same flow.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hylo/dist/comm.hpp"
#include "hylo/nn/network.hpp"

namespace hylo::obs {
class HealthMonitor;
}  // namespace hylo::obs

namespace hylo {

/// Hyper-parameters for all methods (each uses its relevant subset).
struct OptimConfig {
  real_t lr = 0.1;
  real_t momentum = 0.9;
  real_t weight_decay = 0.0;

  // Second-order family.
  real_t damping = 0.03;         ///< α in (F + αI)⁻¹
  real_t factor_damping = 0.003; ///< γ for Kronecker factors
  index_t update_freq = 10;      ///< curvature refresh period (iterations)
  real_t stat_decay = 0.95;      ///< running-average factor for KFAC stats
  real_t kl_clip = 0.001;        ///< trust-region rescaling (KAISA-style)

  // HyLo.
  real_t rank_ratio = 0.1;       ///< r as a fraction of the global batch
  real_t switch_threshold = 0.25;///< η in the gradient-based heuristic

  // KBFGS.
  index_t bfgs_memory = 10;

  // Silent-corruption guard gates (DESIGN.md §16): numeric commit gates at
  // the compute-into-scratch/commit-after-charge boundary of every
  // curvature optimizer. On a clean run the gates never fire (they only
  // reject non-finite or exploding candidates), so the default-on setting
  // is bitwise-invisible; bench_chaos_recovery toggles it off for the
  // guards-off ablation arm.
  bool guard_gates = true;

  // Adam.
  real_t beta1 = 0.9;
  real_t beta2 = 0.999;
  real_t adam_eps = 1e-8;
};

/// Per-refresh capture across ranks: cap.a[layer][rank] is that rank's local
/// per-sample (augmented) input matrix, cap.g[layer][rank] the matching
/// per-sample output-gradient matrix.
struct CaptureSet {
  std::vector<std::vector<Matrix>> a;
  std::vector<std::vector<Matrix>> g;

  index_t layers() const { return static_cast<index_t>(a.size()); }
  index_t world() const {
    return a.empty() ? 0 : static_cast<index_t>(a.front().size());
  }
};

class Optimizer {
 public:
  explicit Optimizer(OptimConfig cfg) : cfg_(cfg) {}
  virtual ~Optimizer() = default;

  virtual std::string name() const = 0;

  /// Whether the trainer must run this iteration with per-sample capture.
  virtual bool needs_capture(index_t /*iteration*/) const { return false; }

  /// Refresh curvature state from a capture (only called when
  /// needs_capture() was true). `comm` charges the method's collectives and
  /// hosts the compute profiler; may be null for plain local runs.
  virtual void update_curvature(const std::vector<ParamBlock*>& /*blocks*/,
                                const CaptureSet& /*capture*/,
                                CommSim* /*comm*/) {}

  /// Precondition + apply the parameter update. Consumes `gw`/plain grads.
  virtual void step(Network& net, index_t iteration) = 0;

  /// Epoch boundary hook (HyLo switching; `lr_decayed` mirrors Alg. 1's
  /// "learning rate decays" criticality trigger).
  virtual void begin_epoch(index_t /*epoch*/, bool /*lr_decayed*/) {}

  /// Per-iteration hook after gradients are final (HyLo Δ_e accumulation).
  virtual void accumulate_gradient(const std::vector<ParamBlock*>& /*b*/) {}

  /// Optimizer-state footprint in bytes (Table IV). Includes momentum,
  /// curvature factors, gathered factors — not the weights themselves.
  virtual index_t state_bytes() const;

  /// Serialize everything accumulated across steps — momentum here, Adam
  /// moments / curvature factors / switch histories in the overrides — into
  /// a run-snapshot section (hylo::ckpt). State buffers are keyed by
  /// parameter address, so both directions walk `net` in graph order to fix
  /// a stable on-disk order. Overrides must invoke the base first (momentum
  /// prefix), then append their own payload; load_state mirrors exactly, so
  /// a restored optimizer continues the run bitwise-identically.
  virtual void save_state(Network& net, ckpt::ByteWriter& w) const;
  virtual void load_state(Network& net, ckpt::ByteReader& r);

  real_t lr() const { return cfg_.lr; }
  void set_lr(real_t lr) { cfg_.lr = lr; }
  const OptimConfig& config() const { return cfg_; }

  /// Non-owning health-probe sink (obs/health.hpp); the Trainer wires its
  /// monitor in when probes are enabled. Null (the default) or a monitor
  /// whose due() is false means probe blocks are skipped entirely — probes
  /// are pure observers reading committed state, never inputs to the math.
  void set_health(obs::HealthMonitor* health) { health_ = health; }

 protected:
  obs::HealthMonitor* health_ = nullptr;
  /// Shared momentum + weight-decay update over all parameters (used by SGD
  /// and, post-preconditioning, by the whole NGD family).
  /// `scale` multiplies the gradient (KL-clip factor).
  void apply_sgd_update(Network& net, real_t scale = 1.0);

  /// Bytes held by the momentum buffers.
  index_t momentum_bytes() const;

  OptimConfig cfg_;

 private:
  std::unordered_map<const void*, Matrix> momentum_w_;
  std::unordered_map<const void*, std::vector<real_t>> momentum_plain_;
};

/// Plain SGD with momentum and weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(OptimConfig cfg) : Optimizer(cfg) {}
  std::string name() const override { return "SGD"; }
  void step(Network& net, index_t iteration) override;
};

/// Adam (Kingma & Ba) with decoupled weight decay applied as L2.
class Adam : public Optimizer {
 public:
  explicit Adam(OptimConfig cfg) : Optimizer(cfg) {}
  std::string name() const override { return "ADAM"; }
  void step(Network& net, index_t iteration) override;
  index_t state_bytes() const override;
  void save_state(Network& net, ckpt::ByteWriter& w) const override;
  void load_state(Network& net, ckpt::ByteReader& r) override;

 private:
  struct State {
    Matrix m, v;
    std::vector<real_t> m_plain, v_plain;
  };
  std::unordered_map<const void*, State> state_;
  index_t t_ = 0;
};

}  // namespace hylo
