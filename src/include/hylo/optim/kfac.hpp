#pragma once
/// \file kfac.hpp
/// Kronecker-factored baselines:
///  - KFac: Martens & Grosse KFAC with the KAISA-style distributed pipeline
///    (factor allreduce, per-owner inversion, inverse broadcast).
///  - EKFac: KFAC in the Kronecker eigenbasis with per-entry second-moment
///    rescaling (George et al.).
///  - KBfgs: Kronecker factors with a limited-memory BFGS inverse on the
///    gradient side (re-derivation of Goldfarb et al.'s KBFGS-L; see
///    DESIGN.md §6).

#include <deque>

#include "hylo/optim/second_order.hpp"

namespace hylo {

class KFac : public CurvatureOptimizer {
 public:
  explicit KFac(OptimConfig cfg) : CurvatureOptimizer(cfg) {}
  std::string name() const override { return "KFAC"; }

  void update_curvature(const std::vector<ParamBlock*>& blocks,
                        const CaptureSet& capture, CommSim* comm) override;
  index_t state_bytes() const override;
  void save_state(Network& net, ckpt::ByteWriter& w) const override;
  void load_state(Network& net, ckpt::ByteReader& r) override;

  index_t layer_staleness(index_t layer) const override {
    HYLO_CHECK(layer >= 0 && layer < static_cast<index_t>(layers_.size()),
               "KFAC layer " << layer << " unknown");
    return layers_[static_cast<std::size_t>(layer)].staleness;
  }

  void poll_async(CommSim& comm) override;
  index_t async_pending() const override {
    return static_cast<index_t>(pending_.size());
  }

 protected:
  void precondition_block(ParamBlock& pb, index_t layer) override;
  bool layer_ready(index_t layer) const override {
    return layer < static_cast<index_t>(layers_.size()) &&
           layers_[static_cast<std::size_t>(layer)].ready;
  }

  struct LayerState {
    Matrix a_factor, g_factor;  ///< running E[aaᵀ], E[ggᵀ]
    Matrix a_inv, g_inv;        ///< damped inverses
    bool ready = false;
    index_t staleness = 0;      ///< refreshes since this layer last landed
  };
  std::vector<LayerState> layers_;

  /// Merged running-factor candidates for every layer (stat-decay blend of
  /// the capture's per-rank Gram sums into the committed running factors);
  /// charges comp/factorization. Pure compute — no collectives.
  std::vector<std::pair<Matrix, Matrix>> factor_candidates(
      const std::vector<ParamBlock*>& blocks, const CaptureSet& capture,
      CommSim* comm);

  /// Accumulate running factors from a capture (shared with EKFac): updates
  /// a_factor/g_factor in layers_ and charges the factor allreduce. A layer
  /// whose allreduce is lost to an injected fault keeps its previous running
  /// factors; the returned flags mark those layers (one entry per layer) so
  /// the caller folds the loss into its own staleness accounting.
  std::vector<char> refresh_factors(const std::vector<ParamBlock*>& blocks,
                                    const CaptureSet& capture, CommSim* comm);

  /// Health probes over the served (committed) factor/inverse pairs.
  void probe_health();

 private:
  /// Async-mode refresh: full candidate state (factors + inverses) is
  /// computed now, its allreduce→broadcast chain is issued as events, and
  /// the commit is deferred to the handle (poll_async / next-refresh
  /// deadline).
  void async_refresh(const std::vector<ParamBlock*>& blocks,
                     const CaptureSet& capture, CommSim& comm);

  struct Pending {
    index_t layer = 0;
    CommEvent event;
    LayerState state;
  };
  /// Commit completed pendings in (ready, seq) order; with `deadline`, a
  /// pending that has not completed degrades to stale factors.
  void resolve_pending(CommSim& comm, bool deadline);
  std::vector<Pending> pending_;
};

class EKFac : public KFac {
 public:
  explicit EKFac(OptimConfig cfg) : KFac(cfg) {}
  std::string name() const override { return "EKFAC"; }

  void update_curvature(const std::vector<ParamBlock*>& blocks,
                        const CaptureSet& capture, CommSim* comm) override;
  index_t state_bytes() const override;
  void save_state(Network& net, ckpt::ByteWriter& w) const override;
  void load_state(Network& net, ckpt::ByteReader& r) override;

  index_t layer_staleness(index_t layer) const override {
    HYLO_CHECK(layer >= 0 && layer < static_cast<index_t>(eig_.size()),
               "EKFAC layer " << layer << " unknown");
    return eig_[static_cast<std::size_t>(layer)].staleness;
  }

  void poll_async(CommSim& comm) override;
  index_t async_pending() const override {
    return static_cast<index_t>(epending_.size());
  }

 protected:
  void precondition_block(ParamBlock& pb, index_t layer) override;
  bool layer_ready(index_t layer) const override {
    return layer < static_cast<index_t>(eig_.size()) &&
           eig_[static_cast<std::size_t>(layer)].ready;
  }

 private:
  struct EigState {
    Matrix v_a, v_g;   ///< Kronecker eigenbases
    Matrix scaling;    ///< running E[(V_gᵀ g a V_a)²], d_out x (d_in+1)
    bool ready = false;
    index_t staleness = 0;  ///< refreshes since this layer last landed
  };
  std::vector<EigState> eig_;

  /// Candidate eigenbasis + merged second-moment scaling for layer `l`,
  /// computed from the given (candidate or committed) Kronecker factors and
  /// blended into the committed scaling with stat_decay. Pure compute.
  EigState build_eig(const Matrix& a_factor, const Matrix& g_factor,
                     const CaptureSet& capture, index_t l) const;

  /// Health probes over the served eigenbasis scalings.
  void probe_eig_health();

  void async_refresh(const std::vector<ParamBlock*>& blocks,
                     const CaptureSet& capture, CommSim& comm);

  /// One chain covers factors + eigenbasis for a layer, so a missed
  /// deadline keeps the old factors *and* the old basis (never half-new).
  struct EigPending {
    index_t layer = 0;
    CommEvent event;
    Matrix a_factor, g_factor;
    EigState eig;
  };
  void resolve_eig_pending(CommSim& comm, bool deadline);
  std::vector<EigPending> epending_;
};

class KBfgs : public CurvatureOptimizer {
 public:
  explicit KBfgs(OptimConfig cfg) : CurvatureOptimizer(cfg) {}
  std::string name() const override { return "KBFGS-L"; }

  void update_curvature(const std::vector<ParamBlock*>& blocks,
                        const CaptureSet& capture, CommSim* comm) override;
  index_t state_bytes() const override;
  void save_state(Network& net, ckpt::ByteWriter& w) const override;
  void load_state(Network& net, ckpt::ByteReader& r) override;

  index_t layer_staleness(index_t layer) const override {
    HYLO_CHECK(layer >= 0 && layer < static_cast<index_t>(layers_.size()),
               "KBFGS layer " << layer << " unknown");
    return layers_[static_cast<std::size_t>(layer)].staleness;
  }

  void poll_async(CommSim& comm) override;
  index_t async_pending() const override {
    return static_cast<index_t>(pending_.size());
  }

 protected:
  void precondition_block(ParamBlock& pb, index_t layer) override;
  bool layer_ready(index_t layer) const override {
    return layer < static_cast<index_t>(layers_.size()) &&
           layers_[static_cast<std::size_t>(layer)].ready;
  }

 private:
  struct LayerState {
    Matrix a_factor;  ///< running E[aaᵀ]
    Matrix a_inv;     ///< exact damped inverse of the input factor
    Matrix g_factor;  ///< running E[ggᵀ] (used to synthesize y = (C+γI)s)
    Matrix g_mean_prev;  ///< previous mean per-sample gradient (d_out x 1)
    std::deque<std::pair<std::vector<real_t>, std::vector<real_t>>> sy_pairs;
    real_t h0_scale = 1.0;  ///< initial inverse-Hessian scaling
    bool ready = false;
    index_t staleness = 0;  ///< refreshes since this layer last landed
  };

  /// Two-loop L-BFGS application of the inverse G-side Hessian to each
  /// column of `m` (in place).
  void apply_hg(const LayerState& st, Matrix& m) const;

  /// Full per-layer candidate refreshes from a capture (running factors,
  /// input-side inverse, BFGS pair update) — pure compute on copies.
  std::vector<LayerState> build_candidates(const CaptureSet& capture);

  /// Health probes over the served input-side factor/inverse pairs.
  void probe_health();

  void async_refresh(const CaptureSet& capture, CommSim& comm);

  struct Pending {
    index_t layer = 0;
    CommEvent event;
    LayerState state;
  };
  void resolve_pending(CommSim& comm, bool deadline);
  std::vector<Pending> pending_;

  std::vector<LayerState> layers_;
};

}  // namespace hylo
