#include "hylo/ckpt/snapshot.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iterator>

namespace hylo::ckpt {

namespace {

/// Table-driven CRC-32; the table is computed once on first use.
const std::uint32_t* crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t crc) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t* table = crc_table();
  std::uint32_t c = crc ^ 0xFFFFFFFFU;
  for (std::size_t i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFU;
}

// ---------------------------------------------------------------- ByteWriter

void ByteWriter::raw(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  raw(s.data(), s.size());
}

void ByteWriter::reals(const real_t* data, index_t count) {
  HYLO_CHECK(count >= 0, "negative real block size");
  u64(static_cast<std::uint64_t>(count));
  raw(data, sizeof(real_t) * static_cast<std::size_t>(count));
}

void ByteWriter::real_vec(const std::vector<real_t>& v) {
  reals(v.data(), static_cast<index_t>(v.size()));
}

void ByteWriter::index_vec(const std::vector<index_t>& v) {
  u64(v.size());
  raw(v.data(), sizeof(index_t) * v.size());
}

void ByteWriter::matrix(const Matrix& m) {
  u64(static_cast<std::uint64_t>(m.rows()));
  u64(static_cast<std::uint64_t>(m.cols()));
  raw(m.data(), sizeof(real_t) * static_cast<std::size_t>(m.size()));
}

// ---------------------------------------------------------------- ByteReader

ByteReader::ByteReader(const unsigned char* data, std::size_t len,
                       std::string what)
    : data_(data), len_(len), what_(std::move(what)) {}

void ByteReader::take(void* dst, std::size_t len, const char* field) {
  HYLO_CHECK(pos_ + len <= len_,
             "snapshot section '" << what_ << "' truncated while reading "
                                  << field << ": wanted " << len
                                  << " bytes at offset " << pos_ << ", have "
                                  << (len_ - pos_));
  std::memcpy(dst, data_ + pos_, len);
  pos_ += len;
}

std::uint8_t ByteReader::u8() {
  std::uint8_t v = 0;
  take(&v, sizeof(v), "u8");
  return v;
}

std::uint32_t ByteReader::u32() {
  std::uint32_t v = 0;
  take(&v, sizeof(v), "u32");
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t v = 0;
  take(&v, sizeof(v), "u64");
  return v;
}

std::int64_t ByteReader::i64() {
  std::int64_t v = 0;
  take(&v, sizeof(v), "i64");
  return v;
}

double ByteReader::f64() {
  double v = 0.0;
  take(&v, sizeof(v), "f64");
  return v;
}

real_t ByteReader::real() {
  real_t v = 0.0;
  take(&v, sizeof(v), "real");
  return v;
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  HYLO_CHECK(n <= remaining(),
             "snapshot section '" << what_ << "': string length " << n
                                  << " exceeds remaining payload");
  std::string s(n, '\0');
  take(s.data(), n, "string");
  return s;
}

void ByteReader::raw_into(void* dst, std::size_t len, const char* field) {
  take(dst, len, field);
}

void ByteReader::reals_into(real_t* dst, index_t count, const char* field) {
  const std::uint64_t n = u64();
  HYLO_CHECK(n == static_cast<std::uint64_t>(count),
             "snapshot section '" << what_ << "': " << field << " holds " << n
                                  << " scalars, expected " << count);
  take(dst, sizeof(real_t) * n, field);
}

std::vector<real_t> ByteReader::real_vec() {
  const std::uint64_t n = u64();
  HYLO_CHECK(sizeof(real_t) * n <= remaining(),
             "snapshot section '" << what_ << "': real vector of " << n
                                  << " exceeds remaining payload");
  std::vector<real_t> v(n);
  take(v.data(), sizeof(real_t) * n, "real vector");
  return v;
}

std::vector<index_t> ByteReader::index_vec() {
  const std::uint64_t n = u64();
  HYLO_CHECK(sizeof(index_t) * n <= remaining(),
             "snapshot section '" << what_ << "': index vector of " << n
                                  << " exceeds remaining payload");
  std::vector<index_t> v(n);
  take(v.data(), sizeof(index_t) * n, "index vector");
  return v;
}

Matrix ByteReader::matrix() {
  const std::uint64_t rows = u64();
  const std::uint64_t cols = u64();
  HYLO_CHECK(sizeof(real_t) * rows * cols <= remaining(),
             "snapshot section '" << what_ << "': matrix " << rows << "x"
                                  << cols << " exceeds remaining payload");
  Matrix m(static_cast<index_t>(rows), static_cast<index_t>(cols));
  take(m.data(), sizeof(real_t) * rows * cols, "matrix payload");
  return m;
}

void ByteReader::expect_done() const {
  HYLO_CHECK(pos_ == len_, "snapshot section '"
                               << what_ << "' has " << (len_ - pos_)
                               << " trailing bytes after its payload");
}

// ---------------------------------------------------------------- AtomicFile

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmp_(path_ + ".tmp") {
  out_.open(tmp_, std::ios::binary | std::ios::trunc);
  HYLO_CHECK(out_.good(), "cannot open " << tmp_ << " for writing");
}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    out_.close();
    std::remove(tmp_.c_str());  // abandoned write: drop the torn temp file
  }
}

void AtomicFile::commit() {
  HYLO_CHECK(!committed_, "AtomicFile::commit called twice for " << path_);
  out_.flush();
  HYLO_CHECK(out_.good(), "write failure on " << tmp_);
  out_.close();
  HYLO_CHECK(std::rename(tmp_.c_str(), path_.c_str()) == 0,
             "cannot rename " << tmp_ << " over " << path_);
  committed_ = true;
}

// ------------------------------------------------------------ SnapshotWriter

ByteWriter& SnapshotWriter::section(const std::string& name) {
  for (auto& [n, w] : sections_)
    if (n == name) return w;
  sections_.emplace_back(name, ByteWriter{});
  return sections_.back().second;
}

void SnapshotWriter::write(const std::string& path) const {
  ByteWriter out;
  out.u64(kSnapshotMagic);
  out.u32(kSnapshotVersion);
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, w] : sections_) {
    out.str(name);
    out.u64(w.size());
    out.u32(crc32(w.bytes().data(), w.size()));
    out.raw(w.bytes().data(), w.size());
  }
  AtomicFile file(path);
  file.stream().write(reinterpret_cast<const char*>(out.bytes().data()),
                      static_cast<std::streamsize>(out.size()));
  file.commit();
}

// ------------------------------------------------------------ SnapshotReader

SnapshotReader::SnapshotReader(const std::string& path) : path_(path) {
  HYLO_CHECK(path.size() < 4 ||
                 path.compare(path.size() - 4, 4, ".tmp") != 0,
             "refusing to load '" << path << "': a '.tmp' snapshot is a torn "
                                  << "in-progress write left by a crash");
  std::ifstream in(path, std::ios::binary);
  HYLO_CHECK(in.good(), "cannot open snapshot " << path);
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ByteReader r(bytes.data(), bytes.size(), "container");

  HYLO_CHECK(bytes.size() >= sizeof(std::uint64_t) && r.u64() == kSnapshotMagic,
             "not a hylo run snapshot: " << path);
  version_ = r.u32();
  HYLO_CHECK(version_ == kSnapshotVersion,
             "snapshot " << path << " has version " << version_
                         << ", this build reads version " << kSnapshotVersion);
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str();
    const std::uint64_t len = r.u64();
    const std::uint32_t want_crc = r.u32();
    HYLO_CHECK(len <= r.remaining(),
               "snapshot " << path << ": section '" << name
                           << "' truncated (payload of " << len
                           << " bytes, file has " << r.remaining() << ")");
    std::vector<unsigned char> payload(len);
    if (len > 0) r.raw_into(payload.data(), len, "section payload");
    const std::uint32_t got_crc = crc32(payload.data(), payload.size());
    HYLO_CHECK(got_crc == want_crc,
               "snapshot " << path << ": section '" << name
                           << "' failed its CRC check (stored " << want_crc
                           << ", computed " << got_crc
                           << ") — the file is corrupt");
    HYLO_CHECK(sections_.find(name) == sections_.end(),
               "snapshot " << path << ": duplicate section '" << name << "'");
    names_.push_back(name);
    sections_.emplace(name, std::move(payload));
  }
  HYLO_CHECK(r.remaining() == 0, "snapshot " << path << " has "
                                             << r.remaining()
                                             << " trailing bytes");
}

bool SnapshotReader::has(const std::string& name) const {
  return sections_.find(name) != sections_.end();
}

ByteReader SnapshotReader::open(const std::string& name) const {
  const auto it = sections_.find(name);
  HYLO_CHECK(it != sections_.end(),
             "snapshot " << path_ << " has no section '" << name << "'");
  return ByteReader(it->second.data(), it->second.size(), name);
}

void write_rng_state(ByteWriter& w, const Rng::State& st) {
  for (int i = 0; i < 4; ++i) w.u64(st.s[i]);
  w.b(st.have_cached_normal);
  w.real(st.cached_normal);
}

Rng::State read_rng_state(ByteReader& r) {
  Rng::State st;
  for (int i = 0; i < 4; ++i) st.s[i] = r.u64();
  st.have_cached_normal = r.b();
  st.cached_normal = r.real();
  return st;
}

// ------------------------------------------------------------------- config

std::optional<CkptConfig> CkptConfig::from_env() {
  const char* dir = std::getenv("HYLO_CKPT_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  CkptConfig cfg;
  cfg.dir = dir;
  cfg.every = 50;
  if (const char* every = std::getenv("HYLO_CKPT_EVERY");
      every != nullptr && *every != '\0')
    cfg.every = static_cast<index_t>(std::atoll(every));
  if (const char* keep = std::getenv("HYLO_CKPT_KEEP");
      keep != nullptr && *keep != '\0')
    cfg.keep = static_cast<index_t>(std::atoll(keep));
  HYLO_CHECK(cfg.every >= 0 && cfg.keep >= 0,
             "HYLO_CKPT_EVERY / HYLO_CKPT_KEEP must be non-negative");
  return cfg;
}

std::vector<std::string> list_snapshots(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0 && name.size() > 6 &&
        name.compare(name.size() - 6, 6, ".hysnp") == 0)
      out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void retain_last(const std::string& dir, index_t keep,
                 const std::string& pin) {
  if (keep <= 0) return;
  const auto snaps = list_snapshots(dir);
  const index_t n = static_cast<index_t>(snaps.size());
  for (index_t i = 0; i + keep < n; ++i) {
    const std::string& path = snaps[static_cast<std::size_t>(i)];
    if (!pin.empty() && path == pin) continue;
    std::remove(path.c_str());
  }
}

}  // namespace hylo::ckpt
