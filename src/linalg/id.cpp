#include "hylo/linalg/id.hpp"

#include <algorithm>

#include "hylo/linalg/qr.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

RowId row_interpolative_decomposition(const Matrix& m, index_t r) {
  const index_t rows = m.rows();
  HYLO_CHECK(rows > 0 && m.cols() > 0, "ID of empty matrix");
  HYLO_CHECK(r >= 1, "ID rank must be >= 1, got " << r);
  r = std::min({r, rows, m.cols()});

  // Row ID of M == column ID of Mᵀ. Column-pivoted QR of Mᵀ (n x m),
  // truncated at r steps: MᵀΠ = Q[R11 R12]. The first r pivots name the
  // selected rows; the interpolation coefficients are R11⁻¹R12.
  const PivotedQr f = pivoted_qr(m.transposed(), r);
  const index_t k = f.rank;  // achieved rank (<= r on exact deficiency)

  RowId id;
  id.rank = k;
  id.rows.assign(f.piv.begin(), f.piv.begin() + static_cast<std::ptrdiff_t>(k));

  // W_perm = [I_k | R11⁻¹ R12] in pivoted order, then unpermute columns so
  // that column j of W corresponds to original row j of M. P = Wᵀ.
  Matrix r12(k, rows - k);
  for (index_t i = 0; i < k; ++i)
    for (index_t j = 0; j < rows - k; ++j) r12(i, j) = f.r(i, k + j);
  const Matrix coeff = (rows - k) > 0 ? solve_r11(f, r12) : Matrix(k, 0);

  id.projection.resize(rows, k);
  for (index_t j = 0; j < k; ++j) {
    // Selected rows interpolate themselves exactly.
    id.projection(f.piv[static_cast<std::size_t>(j)], j) = 1.0;
  }
  for (index_t j = k; j < rows; ++j) {
    const index_t orig = f.piv[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < k; ++i)
      id.projection(orig, i) = coeff(i, j - k);
  }
  return id;
}

Matrix id_reconstruct(const RowId& id, const Matrix& m) {
  return matmul(id.projection, m.select_rows(id.rows));
}

}  // namespace hylo
