#include "hylo/linalg/qr.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace hylo {

PivotedQr pivoted_qr(const Matrix& a, index_t max_rank) {
  const index_t m = a.rows(), n = a.cols();
  index_t kmax = std::min(m, n);
  if (max_rank >= 0) kmax = std::min(kmax, max_rank);

  Matrix work = a;
  PivotedQr f;
  f.piv.resize(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) f.piv[static_cast<std::size_t>(j)] = j;
  f.reflectors.resize(m, kmax);
  f.tau.assign(static_cast<std::size_t>(kmax), 0.0);

  // Squared column norms of the trailing submatrix, downdated per step.
  std::vector<real_t> colnorm(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < m; ++i) {
    const real_t* wi = work.row_ptr(i);
    for (index_t j = 0; j < n; ++j)
      colnorm[static_cast<std::size_t>(j)] += wi[j] * wi[j];
  }

  for (index_t k = 0; k < kmax; ++k) {
    // Pivot: remaining column with the largest norm. Periodically recompute
    // norms exactly — downdating loses accuracy after heavy cancellation.
    index_t p = k;
    real_t best = colnorm[static_cast<std::size_t>(k)];
    for (index_t j = k + 1; j < n; ++j) {
      if (colnorm[static_cast<std::size_t>(j)] > best) {
        best = colnorm[static_cast<std::size_t>(j)];
        p = j;
      }
    }
    if (p != k) {
      for (index_t i = 0; i < m; ++i) std::swap(work(i, k), work(i, p));
      std::swap(colnorm[static_cast<std::size_t>(k)],
                colnorm[static_cast<std::size_t>(p)]);
      std::swap(f.piv[static_cast<std::size_t>(k)],
                f.piv[static_cast<std::size_t>(p)]);
    }

    // Householder vector for work[k:m, k].
    real_t norm_sq = 0.0;
    for (index_t i = k; i < m; ++i) norm_sq += work(i, k) * work(i, k);
    const real_t norm_x = std::sqrt(norm_sq);
    if (norm_x <= 1e-300) {
      f.tau[static_cast<std::size_t>(k)] = 0.0;
      f.rank = k;  // exact rank deficiency: stop early
      // Trim reflector storage bookkeeping: remaining taus stay zero.
      for (index_t kk = k; kk < kmax; ++kk)
        f.tau[static_cast<std::size_t>(kk)] = 0.0;
      kmax = k;
      break;
    }
    const real_t x0 = work(k, k);
    const real_t alpha = (x0 >= 0.0) ? -norm_x : norm_x;
    // v = x - alpha e1 (stored in reflectors column k).
    real_t vnorm_sq = 0.0;
    for (index_t i = k; i < m; ++i) {
      real_t v = work(i, k);
      if (i == k) v -= alpha;
      f.reflectors(i, k) = v;
      vnorm_sq += v * v;
    }
    const real_t tau = vnorm_sq > 0.0 ? 2.0 / vnorm_sq : 0.0;
    f.tau[static_cast<std::size_t>(k)] = tau;
    work(k, k) = alpha;
    for (index_t i = k + 1; i < m; ++i) work(i, k) = 0.0;

    // Apply H = I - tau v vᵀ to the trailing columns.
    for (index_t j = k + 1; j < n; ++j) {
      real_t dotv = 0.0;
      for (index_t i = k; i < m; ++i) dotv += f.reflectors(i, k) * work(i, j);
      dotv *= tau;
      if (dotv != 0.0)
        for (index_t i = k; i < m; ++i)
          work(i, j) -= dotv * f.reflectors(i, k);
      // Downdate the column norm (clamp at zero against roundoff).
      real_t& cn = colnorm[static_cast<std::size_t>(j)];
      cn -= work(k, j) * work(k, j);
      if (cn < 0.0) cn = 0.0;
    }
    f.rank = k + 1;
  }

  // R = leading kmax rows of the transformed matrix.
  f.r.resize(f.rank, n);
  for (index_t i = 0; i < f.rank; ++i)
    for (index_t j = 0; j < n; ++j) f.r(i, j) = work(i, j);
  return f;
}

Matrix apply_qt(const PivotedQr& f, const Matrix& b) {
  const index_t m = f.reflectors.rows();
  HYLO_CHECK(b.rows() == m, "apply_qt rows");
  Matrix x = b;
  const index_t k = f.rank, cols = b.cols();
  for (index_t j = 0; j < k; ++j) {
    const real_t tau = f.tau[static_cast<std::size_t>(j)];
    if (tau == 0.0) continue;
    for (index_t c = 0; c < cols; ++c) {
      real_t dotv = 0.0;
      for (index_t i = j; i < m; ++i) dotv += f.reflectors(i, j) * x(i, c);
      dotv *= tau;
      if (dotv != 0.0)
        for (index_t i = j; i < m; ++i) x(i, c) -= dotv * f.reflectors(i, j);
    }
  }
  return x;
}

Matrix solve_r11(const PivotedQr& f, const Matrix& b) {
  const index_t r = f.rank;
  HYLO_CHECK(b.rows() == r, "solve_r11 rows");
  Matrix x = b;
  const index_t cols = b.cols();
  for (index_t i = r - 1; i >= 0; --i) {
    const real_t rii = f.r(i, i);
    HYLO_CHECK(std::abs(rii) > 1e-300, "singular R11 at " << i);
    real_t* xi = x.row_ptr(i);
    for (index_t k = i + 1; k < r; ++k) {
      const real_t rik = f.r(i, k);
      if (rik == 0.0) continue;
      const real_t* xk = x.row_ptr(k);
      for (index_t c = 0; c < cols; ++c) xi[c] -= rik * xk[c];
    }
    const real_t inv = 1.0 / rii;
    for (index_t c = 0; c < cols; ++c) xi[c] *= inv;
  }
  return x;
}

}  // namespace hylo
