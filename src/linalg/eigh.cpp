#include "hylo/linalg/eigh.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "hylo/tensor/ops.hpp"

namespace hylo {

namespace {

// One cyclic Jacobi pass; returns remaining off-diagonal Frobenius mass.
// If v != nullptr, accumulates the rotations into it.
real_t jacobi_sweep(Matrix& a, Matrix* v) {
  const index_t n = a.rows();
  for (index_t p = 0; p < n - 1; ++p) {
    for (index_t q = p + 1; q < n; ++q) {
      const real_t apq = a(p, q);
      if (apq == 0.0) continue;
      const real_t app = a(p, p), aqq = a(q, q);
      const real_t tau = (aqq - app) / (2.0 * apq);
      // t = sign(tau) / (|tau| + sqrt(1 + tau^2)) — the smaller root.
      const real_t t = (tau >= 0.0)
                           ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                           : -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
      const real_t c = 1.0 / std::sqrt(1.0 + t * t);
      const real_t s = t * c;

      // Apply the rotation J(p,q,theta) on both sides: A <- JᵀAJ.
      for (index_t k = 0; k < n; ++k) {
        const real_t akp = a(k, p), akq = a(k, q);
        a(k, p) = c * akp - s * akq;
        a(k, q) = s * akp + c * akq;
      }
      for (index_t k = 0; k < n; ++k) {
        const real_t apk = a(p, k), aqk = a(q, k);
        a(p, k) = c * apk - s * aqk;
        a(q, k) = s * apk + c * aqk;
      }
      if (v != nullptr) {
        for (index_t k = 0; k < n; ++k) {
          const real_t vkp = (*v)(k, p), vkq = (*v)(k, q);
          (*v)(k, p) = c * vkp - s * vkq;
          (*v)(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  real_t off = 0.0;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) off += 2.0 * a(i, j) * a(i, j);
  return std::sqrt(off);
}

// Symmetrize from the upper triangle so callers can pass slightly
// non-symmetric inputs (accumulated roundoff in Gram products).
Matrix symmetrized(const Matrix& a) {
  HYLO_CHECK(a.rows() == a.cols(), "eigh needs square");
  Matrix s = a;
  for (index_t i = 0; i < s.rows(); ++i)
    for (index_t j = 0; j < i; ++j) s(i, j) = s(j, i);
  return s;
}

void run_jacobi(Matrix& work, Matrix* v, real_t tol, int max_sweeps) {
  const real_t scale = std::max(frobenius_norm(work), real_t{1e-300});
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    const real_t off = jacobi_sweep(work, v);
    if (off <= tol * scale) return;
  }
  // Non-convergence after max_sweeps is possible only for pathological
  // inputs; the residual off-diagonal mass is below sqrt(tol) levels in
  // practice, so return what we have rather than failing the training run.
}

}  // namespace

EighResult eigh(const Matrix& a, real_t tol, int max_sweeps) {
  Matrix work = symmetrized(a);
  const index_t n = work.rows();
  EighResult res;
  res.eigenvectors = Matrix::identity(n);
  run_jacobi(work, &res.eigenvectors, tol, max_sweeps);

  // Sort ascending, permuting the eigenvector columns to match.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return work(x, x) < work(y, y);
  });
  res.eigenvalues.resize(static_cast<std::size_t>(n));
  Matrix sorted_v(n, n);
  for (index_t i = 0; i < n; ++i) {
    const index_t src = order[static_cast<std::size_t>(i)];
    res.eigenvalues[static_cast<std::size_t>(i)] = work(src, src);
    for (index_t k = 0; k < n; ++k) sorted_v(k, i) = res.eigenvectors(k, src);
  }
  res.eigenvectors = std::move(sorted_v);
  return res;
}

std::vector<real_t> eigvalsh(const Matrix& a, real_t tol, int max_sweeps) {
  Matrix work = symmetrized(a);
  run_jacobi(work, nullptr, tol, max_sweeps);
  std::vector<real_t> w(static_cast<std::size_t>(work.rows()));
  for (index_t i = 0; i < work.rows(); ++i)
    w[static_cast<std::size_t>(i)] = work(i, i);
  std::sort(w.begin(), w.end());
  return w;
}

index_t numerical_rank(const std::vector<real_t>& eigenvalues, real_t coverage) {
  std::vector<real_t> w;
  w.reserve(eigenvalues.size());
  for (const real_t v : eigenvalues) w.push_back(std::max(v, real_t{0}));
  std::sort(w.begin(), w.end(), std::greater<>());
  real_t total = 0.0;
  for (const real_t v : w) total += v;
  if (total <= 0.0) return 0;
  real_t acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    acc += w[i];
    if (acc >= coverage * total) return static_cast<index_t>(i + 1);
  }
  return static_cast<index_t>(w.size());
}

}  // namespace hylo
