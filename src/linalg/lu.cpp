#include "hylo/linalg/lu.hpp"

#include <cmath>
#include <utility>

namespace hylo {

LuFactor lu_factor(const Matrix& a) {
  HYLO_CHECK(a.rows() == a.cols(), "lu needs square");
  const index_t n = a.rows();
  LuFactor f{a, std::vector<index_t>(static_cast<std::size_t>(n))};
  Matrix& m = f.lu;
  for (index_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    index_t p = k;
    real_t best = std::abs(m(k, k));
    for (index_t i = k + 1; i < n; ++i) {
      const real_t v = std::abs(m(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    HYLO_CHECK(best > 0.0 && std::isfinite(best),
               "singular matrix in lu_factor at k=" << k);
    f.piv[static_cast<std::size_t>(k)] = p;
    if (p != k)
      for (index_t j = 0; j < n; ++j) std::swap(m(k, j), m(p, j));
    const real_t inv = 1.0 / m(k, k);
    for (index_t i = k + 1; i < n; ++i) {
      const real_t lik = m(i, k) * inv;
      m(i, k) = lik;
      if (lik == 0.0) continue;
      const real_t* mk = m.row_ptr(k);
      real_t* mi = m.row_ptr(i);
      for (index_t j = k + 1; j < n; ++j) mi[j] -= lik * mk[j];
    }
  }
  return f;
}

std::vector<real_t> lu_solve(const LuFactor& f, const std::vector<real_t>& b) {
  const index_t n = f.lu.rows();
  HYLO_CHECK(static_cast<index_t>(b.size()) == n, "rhs size");
  std::vector<real_t> x = b;
  for (index_t k = 0; k < n; ++k)
    std::swap(x[static_cast<std::size_t>(k)],
              x[static_cast<std::size_t>(f.piv[static_cast<std::size_t>(k)])]);
  for (index_t i = 0; i < n; ++i) {
    const real_t* li = f.lu.row_ptr(i);
    real_t v = x[static_cast<std::size_t>(i)];
    for (index_t k = 0; k < i; ++k) v -= li[k] * x[static_cast<std::size_t>(k)];
    x[static_cast<std::size_t>(i)] = v;
  }
  for (index_t i = n - 1; i >= 0; --i) {
    const real_t* ui = f.lu.row_ptr(i);
    real_t v = x[static_cast<std::size_t>(i)];
    for (index_t k = i + 1; k < n; ++k) v -= ui[k] * x[static_cast<std::size_t>(k)];
    x[static_cast<std::size_t>(i)] = v / ui[i];
  }
  return x;
}

Matrix lu_solve(const LuFactor& f, const Matrix& b) {
  const index_t n = f.lu.rows(), k = b.cols();
  HYLO_CHECK(b.rows() == n, "rhs rows");
  Matrix x = b;
  for (index_t r = 0; r < n; ++r) {
    const index_t p = f.piv[static_cast<std::size_t>(r)];
    if (p != r)
      for (index_t c = 0; c < k; ++c) std::swap(x(r, c), x(p, c));
  }
  for (index_t i = 0; i < n; ++i) {
    const real_t* li = f.lu.row_ptr(i);
    real_t* xi = x.row_ptr(i);
    for (index_t kk = 0; kk < i; ++kk) {
      const real_t v = li[kk];
      if (v == 0.0) continue;
      const real_t* xk = x.row_ptr(kk);
      for (index_t c = 0; c < k; ++c) xi[c] -= v * xk[c];
    }
  }
  for (index_t i = n - 1; i >= 0; --i) {
    const real_t* ui = f.lu.row_ptr(i);
    real_t* xi = x.row_ptr(i);
    for (index_t kk = i + 1; kk < n; ++kk) {
      const real_t v = ui[kk];
      if (v == 0.0) continue;
      const real_t* xk = x.row_ptr(kk);
      for (index_t c = 0; c < k; ++c) xi[c] -= v * xk[c];
    }
    const real_t inv = 1.0 / ui[i];
    for (index_t c = 0; c < k; ++c) xi[c] *= inv;
  }
  return x;
}

Matrix lu_inverse(const Matrix& a) {
  return lu_solve(lu_factor(a), Matrix::identity(a.rows()));
}

Matrix general_solve(const Matrix& a, const Matrix& b) {
  return lu_solve(lu_factor(a), b);
}

}  // namespace hylo
