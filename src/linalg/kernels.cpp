#include "hylo/linalg/kernels.hpp"

#include "hylo/par/thread_pool.hpp"
#include "hylo/tensor/gemm_packed.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

Matrix kernel_matrix(const Matrix& a, const Matrix& g) {
  HYLO_CHECK(a.rows() == g.rows(), "kernel_matrix sample mismatch");
  Matrix k = gram_nt(a);
  hadamard_inplace(k, gram_nt(g));
  return k;
}

Matrix khatri_rao_rowwise(const Matrix& g, const Matrix& a) {
  HYLO_CHECK(a.rows() == g.rows(), "khatri_rao sample mismatch");
  const index_t m = a.rows(), din = a.cols(), dout = g.cols();
  Matrix u(m, dout * din);
  // Row i of U depends only on row i of A and G — disjoint writes, so the
  // batch partition is bitwise identical to the serial loop.
  par::parallel_for(
      0, m, 4,
      [&](index_t i0, index_t i1) {
        for (index_t i = i0; i < i1; ++i) {
          const real_t* gi = g.row_ptr(i);
          const real_t* ai = a.row_ptr(i);
          real_t* ui = u.row_ptr(i);
          for (index_t o = 0; o < dout; ++o)
            kern::vscale(ui + o * din, ai, gi[o], din);
        }
      },
      "linalg/khatri_rao", audit::row_block(u));
  return u;
}

Matrix apply_jacobian(const Matrix& a, const Matrix& g, const Matrix& v) {
  HYLO_CHECK(a.rows() == g.rows(), "apply_jacobian sample mismatch");
  HYLO_CHECK(v.rows() == g.cols() && v.cols() == a.cols(),
             "apply_jacobian V shape " << v.rows() << "x" << v.cols());
  // y_i = g_iᵀ V a_i  =>  compute M = G V (m x d_in), then rowwise dot with A.
  const Matrix m1 = matmul(g, v);
  const index_t m = a.rows();
  Matrix y(m, 1);
  par::parallel_for(
      0, m, 64,
      [&](index_t i0, index_t i1) {
        for (index_t i = i0; i < i1; ++i)
          y[i] = kern::vdot(m1.row_ptr(i), a.row_ptr(i), a.cols());
      },
      "linalg/rowdot", audit::row_block(y));
  return y;
}

Matrix apply_jacobian_t(const Matrix& a, const Matrix& g, const Matrix& y) {
  HYLO_CHECK(a.rows() == g.rows(), "apply_jacobian_t sample mismatch");
  HYLO_CHECK(y.rows() == a.rows() && y.cols() == 1, "y must be m x 1");
  // Gᵀ diag(y) A with the scaling fused into the rank-1 updates — no m x d
  // scaled copy of G is materialized.
  Matrix out;
  gemm_tn_diag(g, y, a, out);
  return out;
}

}  // namespace hylo
