#include "hylo/linalg/kernels.hpp"

#include "hylo/tensor/ops.hpp"

namespace hylo {

Matrix kernel_matrix(const Matrix& a, const Matrix& g) {
  HYLO_CHECK(a.rows() == g.rows(), "kernel_matrix sample mismatch");
  Matrix k = gram_nt(a);
  hadamard_inplace(k, gram_nt(g));
  return k;
}

Matrix khatri_rao_rowwise(const Matrix& g, const Matrix& a) {
  HYLO_CHECK(a.rows() == g.rows(), "khatri_rao sample mismatch");
  const index_t m = a.rows(), din = a.cols(), dout = g.cols();
  Matrix u(m, dout * din);
  for (index_t i = 0; i < m; ++i) {
    const real_t* gi = g.row_ptr(i);
    const real_t* ai = a.row_ptr(i);
    real_t* ui = u.row_ptr(i);
    for (index_t o = 0; o < dout; ++o) {
      const real_t go = gi[o];
      real_t* dst = ui + o * din;
      for (index_t j = 0; j < din; ++j) dst[j] = go * ai[j];
    }
  }
  return u;
}

Matrix apply_jacobian(const Matrix& a, const Matrix& g, const Matrix& v) {
  HYLO_CHECK(a.rows() == g.rows(), "apply_jacobian sample mismatch");
  HYLO_CHECK(v.rows() == g.cols() && v.cols() == a.cols(),
             "apply_jacobian V shape " << v.rows() << "x" << v.cols());
  // y_i = g_iᵀ V a_i  =>  compute M = G V (m x d_in), then rowwise dot with A.
  const Matrix m1 = matmul(g, v);
  const index_t m = a.rows();
  Matrix y(m, 1);
  for (index_t i = 0; i < m; ++i) {
    const real_t* mi = m1.row_ptr(i);
    const real_t* ai = a.row_ptr(i);
    real_t acc = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) acc += mi[j] * ai[j];
    y[i] = acc;
  }
  return y;
}

Matrix apply_jacobian_t(const Matrix& a, const Matrix& g, const Matrix& y) {
  HYLO_CHECK(a.rows() == g.rows(), "apply_jacobian_t sample mismatch");
  HYLO_CHECK(y.rows() == a.rows() && y.cols() == 1, "y must be m x 1");
  // Gᵀ diag(y) A: scale rows of G by y, then Gᵀ A.
  Matrix gs = g;
  for (index_t i = 0; i < gs.rows(); ++i) {
    const real_t yi = y[i];
    real_t* gi = gs.row_ptr(i);
    for (index_t j = 0; j < gs.cols(); ++j) gi[j] *= yi;
  }
  return matmul_tn(gs, a);
}

}  // namespace hylo
