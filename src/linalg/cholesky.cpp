#include "hylo/linalg/cholesky.hpp"

#include <cmath>

namespace hylo {

bool try_cholesky(const Matrix& a, Matrix& l) {
  HYLO_CHECK(a.rows() == a.cols(), "cholesky needs square");
  const index_t n = a.rows();
  l.resize(n, n);
  for (index_t j = 0; j < n; ++j) {
    real_t diag = a(j, j);
    const real_t* lj = l.row_ptr(j);
    for (index_t k = 0; k < j; ++k) diag -= lj[k] * lj[k];
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const real_t ljj = std::sqrt(diag);
    l(j, j) = ljj;
    const real_t inv = 1.0 / ljj;
    for (index_t i = j + 1; i < n; ++i) {
      real_t v = a(i, j);
      const real_t* li = l.row_ptr(i);
      for (index_t k = 0; k < j; ++k) v -= li[k] * lj[k];
      l(i, j) = v * inv;
    }
  }
  return true;
}

Matrix cholesky(const Matrix& a) {
  Matrix l;
  HYLO_CHECK(try_cholesky(a, l), "matrix not positive definite (n="
                                     << a.rows() << ")");
  return l;
}

void cholesky_solve_inplace(const Matrix& l, std::vector<real_t>& b) {
  const index_t n = l.rows();
  HYLO_CHECK(static_cast<index_t>(b.size()) == n, "rhs size");
  // Forward: L y = b.
  for (index_t i = 0; i < n; ++i) {
    real_t v = b[static_cast<std::size_t>(i)];
    const real_t* li = l.row_ptr(i);
    for (index_t k = 0; k < i; ++k) v -= li[k] * b[static_cast<std::size_t>(k)];
    b[static_cast<std::size_t>(i)] = v / li[i];
  }
  // Backward: Lᵀ x = y.
  for (index_t i = n - 1; i >= 0; --i) {
    real_t v = b[static_cast<std::size_t>(i)];
    for (index_t k = i + 1; k < n; ++k)
      v -= l(k, i) * b[static_cast<std::size_t>(k)];
    b[static_cast<std::size_t>(i)] = v / l(i, i);
  }
}

Matrix cholesky_solve(const Matrix& l, const Matrix& b) {
  const index_t n = l.rows(), k = b.cols();
  HYLO_CHECK(b.rows() == n, "rhs rows");
  Matrix x = b;
  // Forward substitution on all columns at once (row sweep keeps locality).
  for (index_t i = 0; i < n; ++i) {
    const real_t* li = l.row_ptr(i);
    real_t* xi = x.row_ptr(i);
    for (index_t kk = 0; kk < i; ++kk) {
      const real_t lik = li[kk];
      if (lik == 0.0) continue;
      const real_t* xk = x.row_ptr(kk);
      for (index_t c = 0; c < k; ++c) xi[c] -= lik * xk[c];
    }
    const real_t inv = 1.0 / li[i];
    for (index_t c = 0; c < k; ++c) xi[c] *= inv;
  }
  // Backward substitution with Lᵀ.
  for (index_t i = n - 1; i >= 0; --i) {
    real_t* xi = x.row_ptr(i);
    for (index_t kk = i + 1; kk < n; ++kk) {
      const real_t lki = l(kk, i);
      if (lki == 0.0) continue;
      const real_t* xk = x.row_ptr(kk);
      for (index_t c = 0; c < k; ++c) xi[c] -= lki * xk[c];
    }
    const real_t inv = 1.0 / l(i, i);
    for (index_t c = 0; c < k; ++c) xi[c] *= inv;
  }
  return x;
}

Matrix spd_inverse(const Matrix& a) {
  const Matrix l = cholesky(a);
  return cholesky_solve(l, Matrix::identity(a.rows()));
}

Matrix spd_solve(const Matrix& a, const Matrix& b) {
  const Matrix l = cholesky(a);
  return cholesky_solve(l, b);
}

}  // namespace hylo
