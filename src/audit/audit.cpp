#include "hylo/audit/audit.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "hylo/common/check.hpp"
#include "hylo/obs/metrics.hpp"
#include "hylo/par/thread_pool.hpp"

namespace hylo::audit {

namespace {

// -1 = unresolved; 0/1 = cached decision. Resolution is idempotent, so a
// first-use race between threads is benign.
std::atomic<int> g_enabled{-1};

std::atomic<std::int64_t> g_violations{0};
std::atomic<std::int64_t> g_checked{0};
std::atomic<std::int64_t> g_replays{0};

int resolve_enabled() {
  const char* env = std::getenv("HYLO_AUDIT");
  if (env != nullptr && *env != '\0') {
    const std::string_view v(env);
    return (v == "0" || v == "false" || v == "off" || v == "OFF") ? 0 : 1;
  }
#ifdef HYLO_AUDIT_DEFAULT
  return 1;
#else
  return 0;
#endif
}

// Report a violation: bump the counter, then throw with the same
// file:line-carrying diagnostic shape as HYLO_CHECK.
[[noreturn]] void fail(const std::string& msg) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  hylo::detail::throw_check_failure("HYLO_AUDIT", __FILE__, __LINE__, msg);
}

std::string range_str(const Span& s) {
  std::ostringstream oss;
  oss << "[" << static_cast<const void*>(s.begin) << ", +" << s.size << ")";
  return oss.str();
}

// Sort and coalesce one chunk's declared spans so (a) same-chunk
// re-declarations never mask a cross-chunk overlap in the sweep and (b)
// membership tests can binary-search.
void normalize(std::vector<Span>& spans) {
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.begin < b.begin; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (out > 0 && spans[i].begin <= spans[out - 1].end()) {
      const unsigned char* e = std::max(spans[out - 1].end(), spans[i].end());
      spans[out - 1].size = static_cast<std::size_t>(e - spans[out - 1].begin);
    } else {
      spans[out++] = spans[i];
    }
  }
  spans.resize(out);
}

bool contains(const std::vector<Span>& sorted, const unsigned char* p) {
  auto it = std::upper_bound(
      sorted.begin(), sorted.end(), p,
      [](const unsigned char* v, const Span& s) { return v < s.begin; });
  return it != sorted.begin() && p < std::prev(it)->end();
}

// One shadow sample: a byte outside the running chunk's declaration whose
// value must survive the chunk.
struct Sample {
  const unsigned char* ptr;
  unsigned char value;
};

// Cap on sampled positions per registered buffer per chunk; buffers at most
// this large are verified byte-exactly, larger ones at a deterministic
// stride phased by the chunk id (no rand(): audit must not perturb any rng
// stream, and reruns must sample identically).
constexpr std::size_t kMaxSamplesPerBuffer = 4096;

}  // namespace

bool enabled() {
  int s = g_enabled.load(std::memory_order_relaxed);
  if (s < 0) {
    s = resolve_enabled();
    g_enabled.store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

bool set_enabled(bool on) {
  const bool was = enabled();
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  return was;
}

std::int64_t violations() {
  return g_violations.load(std::memory_order_relaxed);
}
std::int64_t checked_regions() {
  return g_checked.load(std::memory_order_relaxed);
}
std::int64_t replays() { return g_replays.load(std::memory_order_relaxed); }

void reset_stats() {
  g_violations.store(0, std::memory_order_relaxed);
  g_checked.store(0, std::memory_order_relaxed);
  g_replays.store(0, std::memory_order_relaxed);
}

void export_metrics(obs::MetricsRegistry& reg) {
  const auto top_up = [&reg](const char* name, std::int64_t want) {
    auto& c = reg.counter(name);
    const std::int64_t have = c.value();
    if (want > have) c.inc(want - have);
  };
  top_up("audit/violations", violations());
  top_up("audit/checked_regions", checked_regions());
  top_up("audit/replays", replays());
}

void run_checked(const char* label, index_t begin, index_t end, index_t chunk,
                 index_t nchunks, const RegionFn& fn, const Footprint& fp) {
  g_checked.fetch_add(1, std::memory_order_relaxed);

  // Materialize and normalize every chunk's declaration up front.
  std::vector<WriteSet> sets(static_cast<std::size_t>(nchunks));
  std::vector<std::vector<Span>> declared(static_cast<std::size_t>(nchunks));
  for (index_t c = 0; c < nchunks; ++c) {
    const index_t b = begin + c * chunk;
    const index_t e = std::min(end, b + chunk);
    fp.materialize(b, e, sets[static_cast<std::size_t>(c)]);
    declared[static_cast<std::size_t>(c)] =
        sets[static_cast<std::size_t>(c)].spans();
    normalize(declared[static_cast<std::size_t>(c)]);
  }

  // Inter-chunk overlap sweep over all declared spans.
  struct Tagged {
    Span span;
    index_t chunk;
  };
  std::vector<Tagged> all;
  for (index_t c = 0; c < nchunks; ++c)
    for (const Span& s : declared[static_cast<std::size_t>(c)])
      all.push_back(Tagged{s, c});
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return a.span.begin < b.span.begin;
  });
  const unsigned char* max_end = nullptr;
  Tagged owner{};
  for (const Tagged& t : all) {
    if (max_end != nullptr && t.span.begin < max_end && t.chunk != owner.chunk)
      fail(std::string("write-set overlap in '") + label + "': chunk " +
           std::to_string(owner.chunk) + " declared " +
           range_str(owner.span) + " overlapping chunk " +
           std::to_string(t.chunk) + " declared " + range_str(t.span));
    if (max_end == nullptr || t.span.end() > max_end) {
      max_end = t.span.end();
      owner = t;
    }
  }

  // Serial chunk-by-chunk execution with sampled shadow verification:
  // between the snapshot and the compare only this chunk runs, so any
  // changed out-of-declaration byte is its doing.
  std::vector<Sample> shadow;
  std::vector<Span> buffers;
  for (index_t c = 0; c < nchunks; ++c) {
    const index_t b = begin + c * chunk;
    const index_t e = std::min(end, b + chunk);
    const std::vector<Span>& mine = declared[static_cast<std::size_t>(c)];

    buffers = sets[static_cast<std::size_t>(c)].buffers();
    std::sort(buffers.begin(), buffers.end(),
              [](const Span& x, const Span& y) { return x.begin < y.begin; });
    buffers.erase(std::unique(buffers.begin(), buffers.end(),
                              [](const Span& x, const Span& y) {
                                return x.begin == y.begin;
                              }),
                  buffers.end());
    shadow.clear();
    for (const Span& buf : buffers) {
      const std::size_t stride =
          std::max<std::size_t>(1, buf.size / kMaxSamplesPerBuffer);
      for (std::size_t off = static_cast<std::size_t>(c) % stride;
           off < buf.size; off += stride) {
        const unsigned char* p = buf.begin + off;
        if (!contains(mine, p)) shadow.push_back(Sample{p, *p});
      }
    }

    fn(b, e);

    for (const Sample& s : shadow) {
      if (*s.ptr != s.value)
        fail(std::string("out-of-declaration write in '") + label +
             "': chunk " + std::to_string(c) + " [" + std::to_string(b) +
             ", " + std::to_string(e) + ") modified undeclared byte at " +
             range_str(Span{s.ptr, 1}));
    }
  }
}

Matrix replay_check(const char* label, const std::function<Matrix()>& make) {
  g_replays.fetch_add(1, std::memory_order_relaxed);
  const int original = par::num_threads();
  struct Restore {
    int n;
    ~Restore() { par::set_num_threads(n); }
  } restore{original};

  par::set_num_threads(1);
  const Matrix ref = make();
  for (const int t : {2, original == 1 || original == 2 ? 7 : original}) {
    par::set_num_threads(t);
    const Matrix got = make();
    if (got.rows() != ref.rows() || got.cols() != ref.cols())
      fail(std::string("replay divergence in '") + label + "' at " +
           std::to_string(t) + " threads: shape " + std::to_string(got.rows()) +
           "x" + std::to_string(got.cols()) + " vs 1-thread " +
           std::to_string(ref.rows()) + "x" + std::to_string(ref.cols()));
    if (ref.size() != 0 &&
        std::memcmp(got.data(), ref.data(),
                    sizeof(real_t) * static_cast<std::size_t>(ref.size())) != 0) {
      index_t first = 0;
      while (first < ref.size() &&
             std::memcmp(&got.data()[first], &ref.data()[first],
                         sizeof(real_t)) == 0)
        ++first;
      fail(std::string("replay divergence in '") + label + "' at " +
           std::to_string(t) + " threads: first differing element " +
           std::to_string(first) + " of " + std::to_string(ref.size()));
    }
  }
  return ref;
}

}  // namespace hylo::audit
